(** Schedule-independent liveness and peak-memory bounds: envelope
    queries, admissibility of the lower bound against sampled random
    legal schedules and the zoo baselines, the bound ordering
    invariants, and the branch-and-bound pruning guarantee (bit-identical
    search results with pruning on or off, with [n_pruned_lb > 0] on a
    budgeted benchmark). *)

open Magis
open Helpers

(* ------------------------------------------------------------------ *)
(* Liveness envelopes                                                  *)
(* ------------------------------------------------------------------ *)

let test_chain_envelopes () =
  let g, x, r1, r2, r3 = chain3 () in
  let lv = Liveness.compute g in
  Alcotest.(check int) "chain length" 4 (Liveness.length lv);
  (* a chain is rigid: every node's earliest = latest *)
  List.iter
    (fun v -> Alcotest.(check int) "no mobility" 0 (Liveness.mobility lv v))
    [ x; r1; r2; r3 ];
  Alcotest.(check (pair int int)) "x alive until its consumer" (0, 1)
    (Liveness.envelope lv x);
  (* r3 is a graph output: pinned to the end *)
  Alcotest.(check bool) "sink pinned" true (Liveness.pinned lv r3);
  Alcotest.(check (pair int int)) "sink envelope" (3, 3)
    (Liveness.envelope lv r3);
  Alcotest.(check bool) "ordering constraint" true
    (Liveness.must_precede lv x r3);
  Alcotest.(check bool) "no reverse constraint" false
    (Liveness.must_precede lv r3 x)

let test_diamond_envelopes () =
  let g, x, l, r, j = diamond () in
  let lv = Liveness.compute g in
  (* each branch can run second or third; the join is always last *)
  List.iter
    (fun v -> Alcotest.(check int) "branch mobility" 1 (Liveness.mobility lv v))
    [ l; r ];
  Alcotest.(check int) "join earliest" 3 (fst (Liveness.envelope lv j));
  Alcotest.(check bool) "branches unordered" false
    (Liveness.must_precede lv l r || Liveness.must_precede lv r l);
  ignore x

(* ------------------------------------------------------------------ *)
(* Admissibility                                                       *)
(* ------------------------------------------------------------------ *)

(** [k] random legal schedules of [g] (Kahn's algorithm with a seeded
    random ready-pick). *)
let random_orders ?(k = 6) ~seed g =
  let rng = Random.State.make [| seed |] in
  List.init k (fun _ ->
      let indeg = Hashtbl.create 64 in
      List.iter
        (fun v -> Hashtbl.replace indeg v (List.length (Graph.pre g v)))
        (Graph.node_ids g);
      let ready =
        ref (List.filter (fun v -> Hashtbl.find indeg v = 0) (Graph.node_ids g))
      in
      let out = ref [] in
      while !ready <> [] do
        let i = Random.State.int rng (List.length !ready) in
        let v = List.nth !ready i in
        ready := List.filteri (fun j _ -> j <> i) !ready;
        out := v :: !out;
        List.iter
          (fun s ->
            let d = Hashtbl.find indeg s - 1 in
            Hashtbl.replace indeg s d;
            if d = 0 then ready := s :: !ready)
          (Graph.suc g v)
      done;
      List.rev !out)

let peak_of g order = Lifetime.peak_memory (Lifetime.analyze g order)

let test_lower_bound_admissible_random_orders () =
  List.iter
    (fun (what, g) ->
      let b = Membound.compute g in
      List.iteri
        (fun i order ->
          schedule_clean ~what g order;
          let peak = peak_of g order in
          if b.lower > peak then
            Alcotest.failf "%s order %d: lower %d > peak %d" what i b.lower
              peak;
          if peak > b.ub_total then
            Alcotest.failf "%s order %d: peak %d > ub_total %d" what i peak
              b.ub_total)
        (random_orders ~seed:42 g))
    [
      ("diamond", (fun (g, _, _, _, _) -> g) (diamond ()));
      ("mlp", mlp_training ());
      ("attention", (fun (g, _, _) -> g) (attention ()));
    ]

let test_bounds_hold_on_zoo () =
  let cache = cache () in
  List.iter
    (fun (w : Zoo.workload) ->
      let g = w.build Zoo.Quick in
      let b = Membound.compute g in
      let base = Simulator.run cache g (Graph.program_order g) in
      (match Diagnostic.errors (Membound.check b ~peak:base.peak_mem) with
      | [] -> ()
      | errs ->
          Alcotest.failf "%s: %s" w.name (Diagnostic.report_to_string errs));
      (* the DP scheduler must respect the same envelope *)
      let dp = Reorder.schedule ~max_states:64 g in
      let peak = peak_of g dp in
      if b.lower > peak then
        Alcotest.failf "%s: lower %d > DP peak %d" w.name b.lower peak)
    Zoo.all

let test_bound_ordering_invariants () =
  List.iter
    (fun (w : Zoo.workload) ->
      let g = w.build Zoo.Quick in
      let b = Membound.compute g in
      Alcotest.(check bool) (w.name ^ ": dom <= cut") true
        (b.lb_dom <= b.lb_cut);
      Alcotest.(check bool) (w.name ^ ": lower <= greedy ub") true
        (b.lower <= b.ub_greedy);
      Alcotest.(check bool) (w.name ^ ": greedy ub <= total ub") true
        (b.ub_greedy <= b.ub_total);
      Alcotest.(check bool) (w.name ^ ": weights pinned") true
        (b.lower >= Graph.weight_bytes g);
      (* the sampled probe never exceeds the full record's bound *)
      List.iter
        (fun sample ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: probe(%d) admissible" w.name sample)
            true
            (Membound.lower_bound ~sample g <= b.lower))
        [ 1; 4; 32 ])
    Zoo.all

let test_latency_lower_bound () =
  let c = cache () in
  let g = mlp_training () in
  let acc = Ftree.accounting c g Ftree.empty in
  let lb = Membound.latency_lower_bound ~cost_of:acc.cost_of g in
  Alcotest.(check bool) "positive" true (lb > 0.0);
  List.iter
    (fun order ->
      let res = Simulator.run c g order in
      Alcotest.(check bool) "latency floor holds" true (res.latency >= lb))
    (random_orders ~k:4 ~seed:7 g)

let test_empty_and_single () =
  Alcotest.(check int) "empty graph lower" 0
    (Membound.lower_bound Graph.empty);
  let b = Builder.create () in
  let x = Builder.input b [ 16 ] ~dtype:Shape.F32 in
  let g = Builder.finish b in
  let bounds = Membound.compute g in
  (* a lone placeholder: its output is the whole footprint *)
  Alcotest.(check int) "single node lower" (Graph.size_bytes g x) bounds.lower;
  Alcotest.(check int) "single node total" (Graph.size_bytes g x)
    bounds.ub_total

(* ------------------------------------------------------------------ *)
(* Branch-and-bound pruning                                            *)
(* ------------------------------------------------------------------ *)

let search_with ~prune ~mode_fn g =
  let config =
    { Search.default_config with
      time_budget = 1e9; max_iterations = 30; verify_states = true;
      prune_bounds = prune }
  in
  mode_fn ~config g

let check_pruning_invisible what ~mode_fn g =
  let r_on = search_with ~prune:true ~mode_fn g in
  let r_off = search_with ~prune:false ~mode_fn g in
  Alcotest.(check int) (what ^ ": identical peak") r_off.Search.best.peak_mem
    r_on.Search.best.peak_mem;
  Alcotest.(check (float 0.0)) (what ^ ": identical latency")
    r_off.best.latency r_on.best.latency;
  Alcotest.(check (list int)) (what ^ ": identical schedule")
    r_off.best.schedule r_on.best.schedule;
  Alcotest.(check bool) (what ^ ": structurally identical") true
    (Wl_hash.equal_structure r_off.best.graph r_on.best.graph);
  Alcotest.(check int) (what ^ ": off-run never prunes") 0
    r_off.stats.n_pruned_lb;
  (* pruned candidates are the only evaluation difference *)
  Alcotest.(check int) (what ^ ": sims skipped = candidates pruned")
    r_off.stats.n_simul
    (r_on.stats.n_simul + r_on.stats.n_pruned_lb);
  r_on

let lm () =
  Transformer.build_lm
    { Transformer.batch = 8; seq_len = 32; hidden = 64; heads = 4; layers = 2;
      vocab = 128; dtype = Shape.F32 }

let test_pruning_trajectory_preserving () =
  let c = cache () in
  (* seeded Randnets in memory mode... *)
  List.iter
    (fun seed ->
      let g =
        Randnet.build
          ~cfg:{ Randnet.default with cells = 1; nodes_per_cell = 4; seed }
          ()
      in
      ignore
        (check_pruning_invisible
           (Printf.sprintf "randnet-%d min-mem" seed)
           ~mode_fn:(fun ~config g ->
             Search.optimize_memory ~config c ~overhead:0.10 g)
           g))
    [ 1; 2 ];
  (* ...and the Table-2-style LM in both modes *)
  let g = lm () in
  ignore
    (check_pruning_invisible "lm min-mem"
       ~mode_fn:(fun ~config g -> Search.optimize_memory ~config c ~overhead:0.10 g)
       g);
  let r =
    check_pruning_invisible "lm min-lat"
      ~mode_fn:(fun ~config g -> Search.optimize_latency ~config c ~mem_ratio:0.7 g)
      g
  in
  (* the budgeted latency benchmark must actually exercise the pruner *)
  Alcotest.(check bool) "bound probes ran" true (r.stats.n_bound_calls > 0);
  Alcotest.(check bool) "pruning fires on the budgeted benchmark" true
    (r.stats.n_pruned_lb > 0)

let suite =
  [
    tc "chain envelopes" test_chain_envelopes;
    tc "diamond envelopes" test_diamond_envelopes;
    tc "lower bound admissible on random orders"
      test_lower_bound_admissible_random_orders;
    tc "bounds hold on the zoo" test_bounds_hold_on_zoo;
    tc "bound ordering invariants" test_bound_ordering_invariants;
    tc "latency lower bound" test_latency_lower_bound;
    tc "empty and single-node graphs" test_empty_and_single;
    tc "pruning is trajectory-preserving" test_pruning_trajectory_preserving;
  ]
