open Magis
open Helpers
module Int_set = Util.Int_set

let test_chain_dominators () =
  let g, x, r1, r2, r3 = chain3 () in
  let t = Dominator.compute g in
  Alcotest.(check (option int)) "idom r1 = x" (Some x) (Dominator.idom t r1);
  Alcotest.(check (option int)) "idom r2 = r1" (Some r1) (Dominator.idom t r2);
  Alcotest.(check (option int)) "idom r3 = r2" (Some r2) (Dominator.idom t r3);
  Alcotest.(check (option int)) "x rooted at virtual root"
    (Some Dominator.virtual_root) (Dominator.idom t x)

let test_diamond_dominators () =
  let g, x, l, r, j = diamond () in
  let t = Dominator.compute g in
  (* the join is dominated by x, not by either branch *)
  Alcotest.(check (option int)) "idom j = x" (Some x) (Dominator.idom t j);
  Alcotest.(check (option int)) "idom l = x" (Some x) (Dominator.idom t l);
  Alcotest.(check (option int)) "idom r = x" (Some x) (Dominator.idom t r);
  check_set "strict subtree of x" [ l; r; j ] (Dominator.strict_subtree t x);
  Alcotest.(check bool) "x dominates j" true (Dominator.dominates t x j);
  Alcotest.(check bool) "l does not dominate j" false (Dominator.dominates t l j);
  Alcotest.(check bool) "reflexive" true (Dominator.dominates t j j)

let test_training_graph_domination () =
  (* the property §4.3 relies on: with the primary input as entry, a
     layer input dominates its forward remainder AND the corresponding
     backward operators *)
  let g = mlp_training () in
  let t = Dominator.compute g in
  (* find the first dense node: it is dominated by the placeholder x *)
  let x =
    List.find
      (fun v -> (Graph.node g v).op = Op.Input Op.Placeholder
                && (Graph.node g v).label <> "grad_seed")
      (Graph.inputs g)
  in
  let sub = Dominator.strict_subtree t x in
  (* every descendant of x — forward ops AND the backward operators that
     consume x's activations — is dominated by x (gradients that flow only
     from the seed, like the last layer's data gradient, are not) *)
  let descendants = Graph.des g x in
  Graph.iter
    (fun n ->
      if (not (Op.is_input n.op)) && Int_set.mem n.id descendants then
        Alcotest.(check bool)
          (Printf.sprintf "node %d (%s) dominated by x" n.id (Op.name n.op))
          true (Int_set.mem n.id sub))
    g;
  Alcotest.(check bool) "some backward node is dominated" true
    (Int_set.exists
       (fun v -> Op.name (Graph.op g v) = "dense_bwd_weight")
       sub)

let test_members_restriction () =
  let g, x, l, r, j = diamond () in
  (* restricted to the branch {l, j}: l becomes the entry *)
  let t = Dominator.compute ~members:(int_set [ l; j ]) g in
  Alcotest.(check (option int)) "idom j = l in sub-graph" (Some l)
    (Dominator.idom t j);
  ignore (x, r)

let test_entries_override () =
  let g, x, l, _, j = diamond () in
  let t = Dominator.compute ~entries:[ x ] g in
  Alcotest.(check bool) "x dominates join" true (Dominator.dominates t x j);
  ignore l

let test_subtree_vs_strict () =
  let g, x, _, _, _ = diamond () in
  let t = Dominator.compute g in
  Alcotest.(check int) "subtree includes self"
    (Int_set.cardinal (Dominator.strict_subtree t x) + 1)
    (Int_set.cardinal (Dominator.subtree t x))

let test_single_node_graph () =
  let b = Builder.create () in
  let x = Builder.input b [ 4 ] ~dtype:Shape.F32 in
  let g = Builder.finish b in
  let t = Dominator.compute g in
  Alcotest.(check (option int)) "lone input rooted at virtual root"
    (Some Dominator.virtual_root) (Dominator.idom t x);
  Alcotest.(check bool) "reflexive on a singleton" true
    (Dominator.dominates t x x);
  check_set "empty strict subtree" [] (Dominator.strict_subtree t x)

let test_multi_sink_fanout () =
  (* x fans out to two independent sinks: both are immediately dominated
     by x, and neither sink dominates the other *)
  let b = Builder.create () in
  let x = Builder.input b [ 8 ] ~dtype:Shape.F32 in
  let a = Builder.relu b x in
  let c = Builder.tanh_ b x in
  let g = verified ~what:"two sinks" (Builder.finish b) in
  let t = Dominator.compute g in
  Alcotest.(check (option int)) "sink a under x" (Some x) (Dominator.idom t a);
  Alcotest.(check (option int)) "sink c under x" (Some x) (Dominator.idom t c);
  Alcotest.(check bool) "sinks do not dominate each other" false
    (Dominator.dominates t a c || Dominator.dominates t c a);
  check_set "x dominates both sinks" [ a; c ] (Dominator.strict_subtree t x)

let test_multi_sink_shared_interior () =
  (* diamond whose branches are ALSO graph outputs: the interior join has
     two dominating paths, so its idom stays the fork even though each
     branch is a sink *)
  let b = Builder.create () in
  let x = Builder.input b [ 8 ] ~dtype:Shape.F32 in
  let l = Builder.relu b x in
  let r = Builder.tanh_ b x in
  let j = Builder.add b l r in
  let l' = Builder.sigmoid b l in
  let r' = Builder.sigmoid b r in
  let g = verified ~what:"three sinks" (Builder.finish b) in
  let t = Dominator.compute g in
  Alcotest.(check (option int)) "join under the fork" (Some x)
    (Dominator.idom t j);
  Alcotest.(check (option int)) "sink l' under l" (Some l)
    (Dominator.idom t l');
  Alcotest.(check (option int)) "sink r' under r" (Some r)
    (Dominator.idom t r')

let test_weights_absent_from_tree () =
  (* weights are not entries: a weight node has no idom, and operators fed
     by both an activation and a weight are dominated through the
     activation path only *)
  let g = mlp_training () in
  let t = Dominator.compute g in
  Graph.iter
    (fun n ->
      if n.op = Op.Input Op.Weight then
        Alcotest.(check (option int))
          (Printf.sprintf "weight %d outside the tree" n.id)
          None (Dominator.idom t n.id))
    g

let test_dominator_soundness_random () =
  (* brute-force check on a small random DNN: u dominates v iff removing
     u disconnects v from all entries *)
  let cfg = { Randnet.default with cells = 1; nodes_per_cell = 3; seed = 7 } in
  let g = Randnet.build ~cfg () in
  let t = Dominator.compute g in
  let entries =
    List.filter
      (fun v -> (Graph.node g v).op = Op.Input Op.Placeholder)
      (Graph.inputs g)
  in
  let reaches_avoiding u v =
    (* BFS from entries avoiding u *)
    let visited = Hashtbl.create 64 in
    let rec go = function
      | [] -> false
      | w :: rest ->
          if w = v then true
          else if w = u || Hashtbl.mem visited w then go rest
          else begin
            Hashtbl.replace visited w ();
            go (Graph.suc g w @ rest)
          end
    in
    go entries
  in
  let nodes = Graph.node_ids g in
  List.iter
    (fun v ->
      if not (List.mem v entries) && reaches_avoiding (-2) v then
        List.iter
          (fun u ->
            if u <> v && reaches_avoiding (-2) u then
              let dom = Dominator.dominates t u v in
              let cut = not (reaches_avoiding u v) in
              Alcotest.(check bool)
                (Printf.sprintf "dominates(%d,%d)" u v)
                cut dom)
          (Util.take 15 nodes))
    (Util.take 15 nodes)

let suite =
  [
    tc "chain dominators" test_chain_dominators;
    tc "diamond dominators" test_diamond_dominators;
    tc "training graph domination" test_training_graph_domination;
    tc "sub-graph restriction" test_members_restriction;
    tc "entries override" test_entries_override;
    tc "subtree vs strict subtree" test_subtree_vs_strict;
    tc "single-node graph" test_single_node_graph;
    tc "multi-sink fan-out" test_multi_sink_fanout;
    tc "multi-sink with shared interior" test_multi_sink_shared_interior;
    tc "weights absent from the tree" test_weights_absent_from_tree;
    tc "soundness vs brute force" test_dominator_soundness_random;
  ]
