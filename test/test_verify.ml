(** Mutation tests for the analysis layer (ISSUE: each checker class
    must detect a seeded violation).  [Graph.replace_input] keeps the
    adjacency symmetric but validates neither acyclicity, source
    existence nor shape agreement — exactly the corruption channel the
    verifier is there to catch.  Schedule corruptions are seeded by
    permuting / duplicating a valid [Graph.program_order]. *)

open Magis
module H = Helpers

let has check msg diags =
  Alcotest.(check bool) msg true (Diagnostic.has_check check diags)

(* ------------------------------------------------------------------ *)
(* IR verifier                                                         *)
(* ------------------------------------------------------------------ *)

let test_clean () =
  let g, _, _, _, _ = H.chain3 () in
  Alcotest.(check (list string)) "chain3 clean" []
    (List.map Diagnostic.to_string (Verify.graph g));
  H.verify_clean ~what:"mlp" (H.mlp_training ());
  let g, _, _ = H.attention () in
  H.verify_clean ~what:"attention" g

let test_cycle () =
  let g, _, r1, r2, r3 = H.chain3 () in
  (* r2 consumed r1; making it consume its own consumer r3 closes the
     loop r2 -> r3 -> r2 *)
  let bad = Graph.replace_input g ~node_id:r2 ~old_src:r1 ~new_src:r3 in
  has "cycle" "cycle detected" (Verify.graph bad)

let test_dangling_input () =
  let g, _, r1, r2, _ = H.chain3 () in
  let bad = Graph.replace_input g ~node_id:r2 ~old_src:r1 ~new_src:9999 in
  has "dangling-input" "dangling operand detected" (Verify.graph bad)

let test_stale_shape () =
  let b = Builder.create () in
  let x = Builder.input b [ 16 ] ~dtype:Shape.F32 in
  let y = Builder.input b [ 8 ] ~dtype:Shape.F32 in
  let r = Builder.relu b x in
  let out = Builder.relu b r in
  ignore out;
  ignore y;
  let g = Builder.finish b in
  (* r's stored shape stays [16] but its operand becomes the 8-element
     input: re-inference must disagree with the record *)
  let bad = Graph.replace_input g ~node_id:r ~old_src:x ~new_src:y in
  has "shape-mismatch" "stale stored shape detected" (Verify.graph bad)

(* ------------------------------------------------------------------ *)
(* Schedule legality checker                                           *)
(* ------------------------------------------------------------------ *)

(** x -> relu -> Store -> Load -> add(load, x): the minimal swapped
    tensor, for the Store/Load ordering checks. *)
let swap_graph () =
  let g = Graph.empty in
  let g, x = Graph.add_input ~label:"x" g Op.Placeholder (Shape.create [ 16 ]) in
  let g, r = Graph.add g (Op.Unary Op.Relu) [ x ] in
  let g, store = Graph.add g Op.Store [ r ] in
  let g, load = Graph.add g Op.Load [ store ] in
  let g, out = Graph.add g (Op.Binary Op.Add) [ load; x ] in
  (g, [ x; r; store; load; out ])

let test_sched_clean () =
  let g = H.mlp_training () in
  H.schedule_clean g (Graph.program_order g);
  let g, order = swap_graph () in
  H.schedule_clean ~what:"swap graph" g order

let test_operand_after_use () =
  let g, x, r1, r2, r3 = H.chain3 () in
  has "operand-order" "consumer before operand detected"
    (Sched_check.schedule g [ x; r2; r1; r3 ])

let test_double_schedule () =
  let g, x, r1, r2, r3 = H.chain3 () in
  has "double-schedule" "duplicate step detected"
    (Sched_check.schedule g [ x; r1; r1; r2; r3 ])

let test_missing_node () =
  let g, x, r1, r2, r3 = H.chain3 () in
  ignore r3;
  has "missing-node" "missing step detected"
    (Sched_check.schedule g [ x; r1; r2 ])

let test_load_before_store () =
  let g, order = swap_graph () in
  match order with
  | [ x; r; store; load; out ] ->
      has "load-before-store" "Load before its Store detected"
        (Sched_check.schedule g [ x; r; load; store; out ])
  | _ -> Alcotest.fail "unexpected swap graph order"

(* ------------------------------------------------------------------ *)
(* Property: generated graphs and their program orders are clean       *)
(* ------------------------------------------------------------------ *)

let test_randnet_clean () =
  for seed = 1 to 50 do
    let g =
      Randnet.build
        ~cfg:
          { Randnet.cells = 1; nodes_per_cell = 3; channels = 8; image = 8;
            batch = 2; seed }
        ()
    in
    let what = Printf.sprintf "randnet seed %d" seed in
    H.verify_clean ~what g;
    H.schedule_clean ~what g (Graph.program_order g)
  done

(* ------------------------------------------------------------------ *)
(* Rule lint on a small corpus                                         *)
(* ------------------------------------------------------------------ *)

let test_rule_lint_clean () =
  let att, _, _ = H.attention () in
  let corpus = [ ("mlp", H.mlp_training ()); ("attention", att) ] in
  let rules = Taso_rules.all @ Sched_rules.all in
  let report = Rule_lint.lint ~rules corpus in
  if not (Rule_lint.is_clean report) then
    Alcotest.failf "rule lint not clean:@\n%a" Rule_lint.pp_report report;
  Alcotest.(check bool) "some rewrites were linted" true
    (report.n_rewrites > 0)

let suite =
  [
    H.tc "clean graphs produce no diagnostics" test_clean;
    H.tc "cycle is detected" test_cycle;
    H.tc "dangling input is detected" test_dangling_input;
    H.tc "stale stored shape is detected" test_stale_shape;
    H.tc "clean schedules pass" test_sched_clean;
    H.tc "operand after use is detected" test_operand_after_use;
    H.tc "double schedule is detected" test_double_schedule;
    H.tc "missing node is detected" test_missing_node;
    H.tc "Load before Store is detected" test_load_before_store;
    H.tc "50 random graphs verify clean" test_randnet_clean;
    H.tc "rule lint clean on small corpus" test_rule_lint_clean;
  ]
