(** Optimization service: protocol codec, request lifecycle, request
    isolation, admission control, deadlines, cancellation, fault
    injection at the socket layer, chaos coverage, and crash recovery
    (SIGKILL'd daemon, restarted against the same checkpoint directory,
    must resume a re-submitted id bit-identically and answer
    [incompatible] for a changed spec under the same id). *)

open Magis
module P = Magis_serve.Protocol
module Server = Magis_serve.Server
module Client = Magis_serve.Client
module Loadgen = Magis_serve.Loadgen

let tc name f = Alcotest.test_case name `Quick f

(* Every server gets its own socket path and checkpoint directory. *)
let next = ref 0

let fresh_cfg ?(workers = 2) ?(queue_cap = 8) ?(per_client = 8) name =
  incr next;
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "magis-test-serve-%d-%s-%d" (Unix.getpid ()) name !next)
  in
  {
    Server.addr = P.Unix_sock (base ^ ".sock");
    workers;
    queue_cap;
    per_client_limit = per_client;
    ckpt_dir = base ^ ".ckpt";
    ckpt_every = 0.0;
    (* snapshot at every boundary: crash tests want fresh checkpoints *)
    slice_iterations = 2;
    write_timeout = 5.0;
    verbose = false;
  }

let with_server cfg f =
  let t = Server.create cfg in
  let d = Domain.spawn (fun () -> Server.run t) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Domain.join d)
    (fun () -> f cfg.Server.addr)

let req ?(model = "unet") ?(iters = 3) ?deadline ?(progress = 0) id =
  {
    (P.request ~id ~model) with
    max_iterations = iters;
    deadline_s = deadline;
    progress_every = progress;
  }

let with_client addr f =
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let expect_result = function
  | P.Result o -> o
  | r -> Alcotest.failf "expected a result, got %s" (P.reply_to_string r)

(* ------------------------------------------------------------------ *)
(* Protocol codec                                                      *)
(* ------------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let full_req =
    {
      P.id = "r-1";
      model = "unet";
      scale = Zoo.Full;
      mode = P.Latency 0.5;
      deadline_s = Some 1.5;
      max_iterations = 40;
      progress_every = 4;
      sched_states = 128;
    }
  in
  let full_frontier =
    {
      P.f_id = "f-1";
      f_model = "unet++";
      f_scale = Zoo.Full;
      f_hw = "tiered";
      f_budget_ratio = 0.45;
      f_max_iterations = 24;
      f_sched_states = 64;
    }
  in
  List.iter
    (fun cmd ->
      Alcotest.(check bool)
        (P.command_to_string cmd) true
        (P.command_of_string (P.command_to_string cmd) = cmd))
    [
      P.Optimize full_req;
      P.Optimize (P.request ~id:"r-2" ~model:"bert-base");
      P.Frontier full_frontier;
      P.Frontier (P.frontier_request ~id:"f-2" ~model:"unet");
      P.Health;
      P.Metrics;
      P.Pause;
      P.Resume;
      P.Shutdown;
    ];
  List.iter
    (fun reply ->
      Alcotest.(check bool)
        (P.reply_to_string reply) true
        (P.reply_of_string (P.reply_to_string reply) = reply))
    [
      P.Ack "pause";
      P.Progress
        {
          p_id = "r-1";
          p_iterations = 7;
          p_peak = 123456;
          p_latency = 0.25;
          p_elapsed = 1.5;
        };
      P.Result
        {
          o_id = "r-1";
          o_initial_peak = 1000;
          o_peak = 750;
          o_latency = 0.125;
          o_iterations = 40;
          o_interrupted = true;
          o_resumed = true;
          o_deadline_hit = false;
          o_quarantined = 2;
        };
      P.Frontier_reply
        {
          fr_id = "f-1";
          fr_cache_hit = true;
          fr_points = 11;
          fr_budget = 52_428_800;
          fr_feasible = true;
          fr_peak = 48_000_000;
          fr_latency = 0.0125;
        };
      P.Frontier_reply
        {
          fr_id = "f-2";
          fr_cache_hit = false;
          fr_points = 0;
          fr_budget = 0;
          fr_feasible = false;
          fr_peak = 0;
          fr_latency = 0.0;
        };
      P.Error { e_id = Some "r-1"; kind = P.Overloaded; detail = "queue full" };
      P.Error { e_id = None; kind = P.Malformed; detail = "trailing garbage" };
      P.Health_reply
        {
          status = "ok";
          queue_depth = 3;
          inflight = 2;
          shed_level = 1;
          served = 10;
          rejected = 4;
          quarantined = 1;
          cache_hit_rate = 0.5;
        };
      P.Metrics_reply "serve.served 10\nserve.rejected 4\n";
    ]

let test_protocol_rejects_hostile_input () =
  let parse_error s =
    match P.command_of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "parsed hostile input %S" s
  in
  let invalid s =
    match P.command_of_string s with
    | exception P.Invalid _ -> ()
    | _ -> Alcotest.failf "accepted ill-typed input %S" s
  in
  parse_error "this is not json";
  parse_error "{\"op\":";
  (* nesting beyond the protocol's depth cap must be rejected by the
     hardened parser, not by a stack overflow *)
  parse_error (String.make 64 '[' ^ String.make 64 ']');
  invalid "[1,2,3]";
  invalid "{\"op\":\"frobnicate\"}";
  invalid "{\"op\":\"optimize\",\"model\":\"unet\"}";
  (* id missing *)
  invalid "{\"op\":\"optimize\",\"id\":\"x\",\"model\":7}";
  invalid "{\"op\":\"optimize\",\"id\":\"x\",\"model\":\"unet\",\"mode\":\"x\"}";
  Alcotest.(check bool)
    "reply decoder rejects unknown kinds" true
    (match P.reply_of_string "{\"reply\":\"nope\"}" with
    | exception P.Invalid _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let test_lifecycle () =
  let cfg = fresh_cfg "lifecycle" in
  with_server cfg @@ fun addr ->
  with_client addr @@ fun c ->
  let progresses = ref 0 in
  let o =
    expect_result
      (Client.optimize
         ~on_progress:(fun p ->
           incr progresses;
           Alcotest.(check string) "progress id" "life-1" p.P.p_id)
         c
         (req ~iters:4 ~progress:2 "life-1"))
  in
  Alcotest.(check string) "result id" "life-1" o.o_id;
  Alcotest.(check int) "all iterations ran" 4 o.o_iterations;
  Alcotest.(check int) "one progress event at the halfway slice" 1 !progresses;
  Alcotest.(check bool) "peak improved or held" true
    (o.o_peak <= o.o_initial_peak);
  Alcotest.(check bool) "not resumed/interrupted/deadline" false
    (o.o_resumed || o.o_interrupted || o.o_deadline_hit);
  Alcotest.(check bool) "checkpoint removed after completion" false
    (Sys.file_exists (Server.ckpt_path cfg "life-1"));
  let h = Client.health c in
  Alcotest.(check string) "healthy" "ok" h.status;
  Alcotest.(check int) "one served" 1 h.served;
  Alcotest.(check int) "nothing in flight" 0 (h.inflight + h.queue_depth);
  let m = Client.metrics_text c in
  let contains needle =
    let nl = String.length needle and ml = String.length m in
    let rec go i = i + nl <= ml && (String.sub m i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " exposed") true (contains needle))
    [ "serve.served"; "serve.requests"; "search.iterations" ]

(* ------------------------------------------------------------------ *)
(* Request isolation                                                   *)
(* ------------------------------------------------------------------ *)

let test_isolation_malformed () =
  with_server (fresh_cfg "isolation") @@ fun addr ->
  (with_client addr @@ fun c1 ->
   Client.send_raw c1 "this is not json\n";
   (match Client.recv c1 with
   | P.Error { kind = P.Malformed; e_id = None; _ } -> ()
   | r -> Alcotest.failf "expected malformed, got %s" (P.reply_to_string r));
   match Client.recv c1 with
   | exception End_of_file -> ()
   | r ->
       Alcotest.failf "connection should be closed, got %s"
         (P.reply_to_string r));
  (* the daemon took a quarantine record and keeps serving *)
  with_client addr @@ fun c2 ->
  let h = Client.health c2 in
  Alcotest.(check int) "one quarantine record" 1 h.quarantined;
  let o = expect_result (Client.optimize c2 (req ~iters:2 "iso-after")) in
  Alcotest.(check string) "still serving" "iso-after" o.o_id

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let test_admission_overload () =
  let cfg = fresh_cfg ~queue_cap:4 ~per_client:32 "admission" in
  with_server cfg @@ fun addr ->
  with_client addr @@ fun c ->
  Client.send c P.Pause;
  for i = 0 to 5 do
    Client.send c (P.Optimize (req ~iters:2 (Printf.sprintf "adm-%d" i)))
  done;
  Client.send c (P.Optimize (req ~iters:2 "adm-0"));
  (* duplicate *)
  Client.send c P.Health;
  let overloaded = ref 0 and dup = ref 0 and results = ref [] in
  while List.length !results < cfg.Server.queue_cap do
    match Client.recv c with
    | P.Error { kind = P.Overloaded; _ } -> incr overloaded
    | P.Error { kind = P.Duplicate; e_id = Some id; _ } ->
        Alcotest.(check string) "duplicate id reported" "adm-0" id;
        incr dup
    | P.Health_reply h ->
        (* observed while paused with the queue full *)
        Alcotest.(check string) "paused" "paused" h.status;
        Alcotest.(check int) "queue at capacity" 4 h.queue_depth;
        Alcotest.(check int) "top of the shed ladder" 2 h.shed_level;
        Client.send c P.Resume
    | P.Result o -> results := o.P.o_id :: !results
    | _ -> ()
  done;
  Alcotest.(check int) "beyond-capacity requests rejected" 2 !overloaded;
  Alcotest.(check int) "duplicate rejected once" 1 !dup;
  Alcotest.(check (slist string compare)) "every queued request served"
    [ "adm-0"; "adm-1"; "adm-2"; "adm-3" ]
    !results;
  let h = Client.health c in
  Alcotest.(check int) "served = capacity" 4 h.served;
  Alcotest.(check int) "rejected = overflow + duplicate" 3 h.rejected

let test_admission_per_client_limit () =
  with_server (fresh_cfg ~per_client:1 "perclient") @@ fun addr ->
  with_client addr @@ fun c ->
  Client.send c P.Pause;
  Client.send c (P.Optimize (req ~iters:2 "pc-0"));
  Client.send c (P.Optimize (req ~iters:2 "pc-1"));
  Client.send c P.Resume;
  let overloaded = ref 0 and results = ref 0 in
  while !results < 1 do
    match Client.recv c with
    | P.Error { kind = P.Overloaded; e_id = Some "pc-1"; _ } ->
        incr overloaded
    | P.Result _ -> incr results
    | _ -> ()
  done;
  Alcotest.(check int) "second in-flight request rejected" 1 !overloaded

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)
(* ------------------------------------------------------------------ *)

let test_deadlines () =
  with_server (fresh_cfg "deadline") @@ fun addr ->
  with_client addr @@ fun c ->
  (match Client.optimize c (req ~iters:2 ~deadline:0.0 "dl-0") with
  | P.Error { kind = P.Deadline; e_id = Some "dl-0"; _ } -> ()
  | r -> Alcotest.failf "expected deadline error, got %s" (P.reply_to_string r));
  (* an in-flight expiry returns best-so-far, flagged *)
  let o =
    expect_result (Client.optimize c (req ~iters:1_000_000 ~deadline:0.3 "dl-1"))
  in
  Alcotest.(check bool) "deadline flagged" true o.o_deadline_hit;
  Alcotest.(check bool) "made progress before expiry" true (o.o_iterations > 0);
  Alcotest.(check bool) "best-so-far is real" true
    (o.o_peak <= o.o_initial_peak)

(* ------------------------------------------------------------------ *)
(* Cancellation and in-process resume                                  *)
(* ------------------------------------------------------------------ *)

let test_disconnect_cancels_then_resumes () =
  let cfg = fresh_cfg "cancel" in
  with_server cfg @@ fun addr ->
  let c = Client.connect addr in
  Client.send c (P.Optimize (req ~iters:500 ~progress:1 "can-1"));
  (match Client.recv c with
  | P.Progress _ -> ()
  | r -> Alcotest.failf "expected progress, got %s" (P.reply_to_string r));
  Client.close c;
  (* the daemon cancels at the next expansion boundary *)
  with_client addr @@ fun c2 ->
  let rec settle tries =
    let h = Client.health c2 in
    if h.inflight = 0 && h.queue_depth = 0 then h
    else if tries = 0 then Alcotest.fail "cancelled request never settled"
    else begin
      Unix.sleepf 0.1;
      settle (tries - 1)
    end
  in
  let h = settle 100 in
  Alcotest.(check int) "cancelled, not served" 0 h.served;
  Alcotest.(check bool) "checkpoint kept for the comeback" true
    (Sys.file_exists (Server.ckpt_path cfg "can-1"));
  (* same id, same spec (the iteration budget is outside the trajectory
     fingerprint, so a smaller comeback budget still resumes) *)
  let o = expect_result (Client.optimize c2 (req ~iters:4 ~progress:0 "can-1")) in
  Alcotest.(check bool) "resumed from the checkpoint" true o.o_resumed

(* ------------------------------------------------------------------ *)
(* Socket-layer fault injection                                        *)
(* ------------------------------------------------------------------ *)

let test_torn_read_quarantined () =
  with_server (fresh_cfg "fault") @@ fun addr ->
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  (with_client addr @@ fun c ->
   Fault.arm [ { Fault.site = "sock_read"; at = 1; kind = Fault.Exception } ];
   Client.send c P.Health;
   match Client.recv c with
   | exception End_of_file -> ()
   | r ->
       Alcotest.failf "torn read should close the connection, got %s"
         (P.reply_to_string r));
  Fault.disarm ();
  with_client addr @@ fun c2 ->
  let h = Client.health c2 in
  Alcotest.(check int) "torn read quarantined" 1 h.quarantined;
  Alcotest.(check string) "daemon healthy" "ok" h.status

(* ------------------------------------------------------------------ *)
(* Frontier queries                                                    *)
(* ------------------------------------------------------------------ *)

let expect_frontier = function
  | P.Frontier_reply a -> a
  | r ->
      Alcotest.failf "expected a frontier reply, got %s" (P.reply_to_string r)

let test_frontier_miss_builds_then_hits () =
  let cfg = fresh_cfg "frontier" in
  with_server cfg @@ fun addr ->
  with_client addr @@ fun c ->
  let fq id =
    { (P.frontier_request ~id ~model:"unet") with P.f_max_iterations = 3 }
  in
  let a = expect_frontier (Client.frontier c (fq "fr-1")) in
  Alcotest.(check string) "first reply id" "fr-1" a.fr_id;
  Alcotest.(check bool) "first query builds" false a.fr_cache_hit;
  Alcotest.(check bool) "the sweep left resident points" true (a.fr_points > 0);
  let b = expect_frontier (Client.frontier c (fq "fr-2")) in
  Alcotest.(check bool) "second query hits the cache" true b.fr_cache_hit;
  Alcotest.(check int) "same point count from the cache" a.fr_points b.fr_points;
  Alcotest.(check int) "same resolved budget" a.fr_budget b.fr_budget;
  Alcotest.(check bool) "same feasibility" a.fr_feasible b.fr_feasible;
  Alcotest.(check int) "same answer peak" a.fr_peak b.fr_peak;
  Alcotest.(check (float 0.0)) "same answer latency" a.fr_latency b.fr_latency;
  if a.fr_feasible then
    Alcotest.(check bool) "answer fits the budget" true (a.fr_peak <= a.fr_budget);
  (* an unknown hardware profile is a structured rejection, not a crash,
     and the connection stays usable *)
  (match Client.frontier c { (fq "fr-3") with P.f_hw = "not-a-device" } with
  | P.Error { kind = P.Malformed; e_id = Some "fr-3"; _ } -> ()
  | r -> Alcotest.failf "expected malformed, got %s" (P.reply_to_string r));
  let h = Client.health c in
  Alcotest.(check string) "daemon healthy after the frontier mix" "ok" h.status;
  Alcotest.(check int) "build and hit both served" 2 h.served

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)
(* ------------------------------------------------------------------ *)

let test_chaos_daemon_survives () =
  with_server (fresh_cfg ~queue_cap:16 "chaos") @@ fun addr ->
  let r = Loadgen.run_chaos ~addr ~seed:3 in
  List.iter
    (fun (name, ok) ->
      Alcotest.(check bool) ("chaos scenario " ^ name) true ok)
    r.scenarios;
  Alcotest.(check int) "no scenario failed" 0 r.failed

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)
(* ------------------------------------------------------------------ *)

(* Daemon A runs in a child process (the real [magis_serve] binary —
   [Unix.fork] is unavailable once domains exist) and is SIGKILL'd
   mid-request — no drain, no cleanup, the hard-crash case.  A
   restarted daemon on the same checkpoint directory must answer
   [incompatible] for the same id with a different spec, and resume the
   original spec to a result bit-identical with an uninterrupted run of
   the same budget. *)
(* resolved against the test binary, so it works under both
   [dune runtest] and [dune exec] from any directory *)
let serve_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat (Filename.concat ".." "bin") "magis_serve.exe")

let test_sigkill_restart_resume () =
  let cfg = fresh_cfg "crash" in
  let sock =
    match cfg.Server.addr with P.Unix_sock p -> p | P.Tcp _ -> assert false
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process serve_exe
      [|
        serve_exe; "daemon"; "--socket"; sock; "--ckpt-dir";
        cfg.Server.ckpt_dir; "--ckpt-every"; "0"; "--slice"; "2";
      |]
      devnull devnull devnull
  in
  Unix.close devnull;
  Fun.protect ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
  @@ fun () ->
  let k =
    let c = Client.connect cfg.Server.addr in
    Client.send c (P.Optimize (req ~iters:500 ~progress:1 "crash-1"));
    let k =
      match Client.recv c with
      | P.Progress p -> p.p_iterations
      | r -> Alcotest.failf "expected progress, got %s" (P.reply_to_string r)
    in
    (* the first slice checkpointed (atomic rename); crash NOW *)
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    Client.close c;
    k
  in
  let total = k + 10 in
  let resumed =
    with_server cfg @@ fun addr ->
    with_client addr @@ fun c ->
    (match
       Client.optimize c
         { (req ~iters:total "crash-1") with mode = P.Latency 0.7 }
     with
    | P.Error { kind = P.Incompatible; e_id = Some "crash-1"; _ } -> ()
    | r ->
        Alcotest.failf "changed spec should be incompatible, got %s"
          (P.reply_to_string r));
    let o = expect_result (Client.optimize c (req ~iters:total "crash-1")) in
    Alcotest.(check bool) "restart resumed the checkpoint" true o.o_resumed;
    o
  in
  let fresh =
    with_server (fresh_cfg "crash-fresh") @@ fun addr ->
    with_client addr @@ fun c ->
    expect_result (Client.optimize c (req ~iters:total "crash-1"))
  in
  Alcotest.(check bool) "fresh run is not a resume" false fresh.o_resumed;
  Alcotest.(check int) "same iteration count" fresh.o_iterations
    resumed.o_iterations;
  Alcotest.(check int) "bit-identical peak" fresh.o_peak resumed.o_peak;
  Alcotest.(check (float 0.0)) "bit-identical latency" fresh.o_latency
    resumed.o_latency

let suite =
  [
    tc "protocol commands and replies round-trip" test_protocol_roundtrip;
    tc "protocol rejects hostile input structurally"
      test_protocol_rejects_hostile_input;
    tc "request lifecycle: progress, result, health, metrics"
      test_lifecycle;
    tc "malformed line: structured error, quarantine, daemon survives"
      test_isolation_malformed;
    tc "bounded queue: exact overload, duplicate and shed accounting"
      test_admission_overload;
    tc "per-client in-flight limit rejects the second request"
      test_admission_per_client_limit;
    tc "deadlines: pre-dispatch rejection and best-so-far expiry"
      test_deadlines;
    tc "client disconnect cancels; same id resumes the checkpoint"
      test_disconnect_cancels_then_resumes;
    tc "torn socket read is quarantined, never fatal"
      test_torn_read_quarantined;
    tc "frontier: miss builds and persists, repeat hits the cache"
      test_frontier_miss_builds_then_hits;
    tc "chaos scenarios all survive" test_chaos_daemon_survives;
    tc "SIGKILL'd daemon restarts and resumes bit-identically"
      test_sigkill_restart_resume;
  ]
