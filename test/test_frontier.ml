(** Frontier service tests: dominance/query/merge invariants (QCheck),
    JSON and on-disk cache round-trips, harvest trajectory-invisibility
    (A/B-enforced), the one-search-many-budgets acceptance path, and the
    hardware-zoo registry with its all-field fingerprint. *)

open Magis

let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(** Random harvest streams: small (peak, latency, iteration, sched)
    tuples drawn from deliberately narrow ranges so ties, dominations
    and evictions all occur often. *)
let gen_point =
  QCheck2.Gen.(
    let* peak = int_range 1 40 in
    let* lat10 = int_range 1 40 in
    let* iteration = int_range 0 5 in
    let* sched = list_size (int_range 1 6) (int_range 0 9) in
    return
      {
        Frontier.peak;
        latency = float_of_int lat10 /. 10.;
        iteration;
        sched;
      })

let gen_points = QCheck2.Gen.(list_size (int_range 0 40) gen_point)

let frontier_of pts =
  let fr = Frontier.create () in
  List.iter (fun p -> ignore (Frontier.insert_point fr p)) pts;
  fr

let count = 60

let prop name gen f = QCheck2.Test.make ~name ~count gen f

(* ------------------------------------------------------------------ *)
(* Frontier invariants                                                 *)
(* ------------------------------------------------------------------ *)

let dominates (a : Frontier.point) (b : Frontier.point) =
  a.peak <= b.peak && a.latency <= b.latency
  && (a.peak, a.latency) <> (b.peak, b.latency)

let no_resident_dominated =
  prop "no resident point dominates another" gen_points (fun pts ->
      let resident = Frontier.points (frontier_of pts) in
      List.for_all
        (fun a ->
          List.for_all (fun b -> not (dominates a b)) resident)
        resident)

let sorted_peak_up_latency_down =
  prop "residents sort peak ascending, latency strictly descending"
    gen_points (fun pts ->
      let rec ok = function
        | (a : Frontier.point) :: (b : Frontier.point) :: rest ->
            a.peak < b.peak && a.latency > b.latency && ok (b :: rest)
        | _ -> true
      in
      ok (Frontier.points (frontier_of pts)))

let insert_order_invisible =
  prop "resident set ignores insertion order" gen_points (fun pts ->
      Frontier.points (frontier_of pts)
      = Frontier.points (frontier_of (List.rev pts)))

let counters_account =
  prop "harvested = size + pruned + evicted" gen_points (fun pts ->
      let fr = frontier_of pts in
      let c = Frontier.counters fr in
      c.Frontier.harvested
      = Frontier.size fr + c.Frontier.pruned + c.Frontier.evicted)

let query_matches_linear_scan =
  prop "query agrees with a linear scan"
    QCheck2.Gen.(pair gen_points (int_range 0 45))
    (fun (pts, budget) ->
      let fr = frontier_of pts in
      let reference =
        List.fold_left
          (fun best (p : Frontier.point) ->
            if p.peak > budget then best
            else
              match best with
              | Some (b : Frontier.point) when b.latency <= p.latency ->
                  best
              | _ -> Some p)
          None (Frontier.points fr)
      in
      Frontier.query fr ~budget = reference)

let budget_monotone =
  prop "a larger budget never answers with worse latency"
    QCheck2.Gen.(triple gen_points (int_range 0 45) (int_range 0 45))
    (fun (pts, b1, b2) ->
      let lo = min b1 b2 and hi = max b1 b2 in
      let fr = frontier_of pts in
      match (Frontier.query fr ~budget:lo, Frontier.query fr ~budget:hi) with
      | None, _ -> true
      | Some _, None -> false (* feasibility must be monotone *)
      | Some a, Some b -> b.Frontier.latency <= a.Frontier.latency)

let merge_commutes =
  prop "merge is commutative (resident points)"
    QCheck2.Gen.(pair gen_points gen_points)
    (fun (xs, ys) ->
      let a = frontier_of xs and b = frontier_of ys in
      Frontier.points (Frontier.merge a b)
      = Frontier.points (Frontier.merge b a))

let merge_idempotent =
  prop "merge is idempotent (resident points)" gen_points (fun pts ->
      let a = frontier_of pts in
      Frontier.points (Frontier.merge a a) = Frontier.points a)

let json_roundtrip =
  prop "JSON round-trip preserves points and counters" gen_points
    (fun pts ->
      let fr = frontier_of pts in
      (* exercise the query counters too *)
      ignore (Frontier.query fr ~budget:20);
      let back = Frontier.of_json (Frontier.to_json fr) in
      Frontier.points back = Frontier.points fr
      && Frontier.counters back = Frontier.counters fr)

let props =
  [
    no_resident_dominated;
    sorted_peak_up_latency_down;
    insert_order_invisible;
    counters_account;
    query_matches_linear_scan;
    budget_monotone;
    merge_commutes;
    merge_idempotent;
    json_roundtrip;
  ]

(* ------------------------------------------------------------------ *)
(* JSON / cache edge cases                                             *)
(* ------------------------------------------------------------------ *)

let test_of_json_rejects_bad_version () =
  let doc =
    match Frontier.to_json (Frontier.create ()) with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | "version", _ -> ("version", Json.Int 999)
               | kv -> kv)
             fields)
    | _ -> Alcotest.fail "to_json did not produce an object"
  in
  match Frontier.of_json doc with
  | exception Frontier.Invalid _ -> ()
  | _ -> Alcotest.fail "of_json accepted a wrong-version document"

let fresh_dir =
  let next = ref 0 in
  fun name ->
    incr next;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "magis-test-frontier-%d-%s-%d" (Unix.getpid ()) name
         !next)

let test_cache_miss_on_empty_dir () =
  match Frontier_cache.load ~dir:(fresh_dir "miss") ~key:42L with
  | None -> ()
  | Some _ -> Alcotest.fail "loaded a frontier from an empty cache dir"

let test_cache_roundtrip_and_key_isolation () =
  let dir = fresh_dir "rt" in
  let fr =
    frontier_of
      [
        { Frontier.peak = 10; latency = 3.0; iteration = 1; sched = [ 0; 1 ] };
        { Frontier.peak = 20; latency = 1.0; iteration = 2; sched = [ 1; 0 ] };
      ]
  in
  Frontier_cache.save ~dir ~key:7L fr;
  (match Frontier_cache.load ~dir ~key:7L with
  | Some back ->
      Alcotest.(check bool)
        "points survive the disk round-trip" true
        (Frontier.points back = Frontier.points fr)
  | None -> Alcotest.fail "cache miss right after save");
  match Frontier_cache.load ~dir ~key:8L with
  | None -> ()
  | Some _ -> Alcotest.fail "a different key hit the cached entry"

(* ------------------------------------------------------------------ *)
(* Harvesting: trajectory-invisible, one search answers every budget   *)
(* ------------------------------------------------------------------ *)

let unet_quick () = (Zoo.find "unet").Zoo.build Zoo.Quick

let frontier_mode = Search.Min_memory { lat_limit = infinity }

let test_harvest_ab_bit_identical () =
  let g = unet_quick () in
  let config = { Search.default_config with max_iterations = 6 } in
  let hw = Hardware.default in
  let plain = Search.run ~config (Op_cost.create hw) frontier_mode g in
  let fr, harvested =
    Frontier_build.build ~config (Op_cost.create hw) frontier_mode g
  in
  Alcotest.(check int)
    "best peak identical with harvesting on"
    plain.Search.best.Mstate.peak_mem harvested.Search.best.Mstate.peak_mem;
  Alcotest.(check (float 0.0))
    "best latency identical with harvesting on"
    plain.Search.best.Mstate.latency harvested.Search.best.Mstate.latency;
  Alcotest.(check (list int))
    "best schedule identical with harvesting on"
    plain.Search.best.Mstate.schedule harvested.Search.best.Mstate.schedule;
  Alcotest.(check bool)
    "the sweep harvested more than the single best point" true
    ((Frontier.counters fr).Frontier.harvested > 1)

let test_one_search_many_budgets () =
  let dir = fresh_dir "acceptance" in
  let g = unet_quick () in
  let config = { Search.default_config with max_iterations = 12 } in
  let ladder = [ 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ] in
  (* first call searches once and persists the swept frontier *)
  let built, outcome1 =
    Frontier_build.cached_or_build ~config ~dir (Op_cost.create Hardware.default)
      frontier_mode g
  in
  (match outcome1 with
  | `Built _ -> ()
  | `Hit -> Alcotest.fail "first frontier call hit a cold cache");
  (* second call answers from the cache with zero additional searches *)
  let cached, outcome2 =
    Frontier_build.cached_or_build ~config ~dir (Op_cost.create Hardware.default)
      frontier_mode g
  in
  (match outcome2 with
  | `Hit -> ()
  | `Built _ -> Alcotest.fail "second frontier call searched again");
  Alcotest.(check bool)
    "cached frontier carries the built points" true
    (Frontier.points cached = Frontier.points built);
  let answers =
    List.map (fun ratio -> Frontier_build.query_ratio cached ~ratio) ladder
  in
  Alcotest.(check int)
    "all eight budget queries feasible from the cache"
    (List.length ladder)
    (List.length (List.filter Option.is_some answers));
  Alcotest.(check bool)
    "cached answers match the freshly built frontier's" true
    (answers
    = List.map (fun ratio -> Frontier_build.query_ratio built ~ratio) ladder);
  (* the ladder is answered by meaningfully distinct operating points *)
  let distinct =
    List.sort_uniq compare
      (List.filter_map
         (Option.map (fun (p : Frontier.point) -> (p.Frontier.peak, p.latency)))
         answers)
  in
  Alcotest.(check bool)
    "the ladder spans more than one operating point" true
    (List.length distinct > 1);
  (* baseline rides along as iteration 0, so ratio 1.0 is the baseline *)
  match Frontier_build.query_ratio cached ~ratio:1.0 with
  | Some p ->
      Alcotest.(check int)
        "ratio 1.0 answers with the baseline peak"
        (snd (Option.get (Frontier.peak_range cached)))
        p.Frontier.peak
  | None -> Alcotest.fail "ratio 1.0 must always be feasible"

let test_key_sensitivity () =
  let g = unet_quick () in
  let base = Frontier_build.key frontier_mode ~hw:Hardware.default g in
  let other_hw = Frontier_build.key frontier_mode ~hw:Hardware.mobile g in
  let other_mode =
    Frontier_build.key (Search.Min_latency { mem_limit = max_int })
      ~hw:Hardware.default g
  in
  (* max_iterations caps the trajectory's length, not its path, so it is
     deliberately outside the key; sched_states changes the path *)
  let other_config =
    Frontier_build.key
      ~config:
        {
          Search.default_config with
          sched_states = Search.default_config.Search.sched_states + 1;
        }
      frontier_mode ~hw:Hardware.default g
  in
  Alcotest.(check bool)
    "hardware, mode and config all perturb the cache key" true
    (List.length
       (List.sort_uniq Int64.compare
          [ base; other_hw; other_mode; other_config ])
    = 4)

(* ------------------------------------------------------------------ *)
(* Hardware zoo                                                        *)
(* ------------------------------------------------------------------ *)

let test_zoo_registry () =
  Alcotest.(check int) "five registered profiles" 5
    (List.length Hardware.profiles);
  Alcotest.(check (list string))
    "names track the registry order" Hardware.names
    (List.map (fun (h : Hardware.t) -> h.Hardware.name) Hardware.profiles);
  let fps = List.map Hardware.fingerprint Hardware.profiles in
  Alcotest.(check int) "all profile fingerprints distinct"
    (List.length Hardware.profiles)
    (List.length (List.sort_uniq Int64.compare fps))

let test_fingerprint_covers_every_field () =
  let base = Hardware.rtx3090 in
  let mutants =
    [
      ("name", { base with Hardware.name = "rtx3090'" });
      ("peak_flops", { base with Hardware.peak_flops = base.peak_flops *. 2. });
      ( "mem_bandwidth",
        { base with Hardware.mem_bandwidth = base.mem_bandwidth +. 1.0 } );
      ( "swap_bandwidth",
        { base with Hardware.swap_bandwidth = base.swap_bandwidth +. 1.0 } );
      ( "launch_overhead",
        { base with Hardware.launch_overhead = base.launch_overhead *. 2. } );
      ( "device_memory",
        { base with Hardware.device_memory = base.device_memory + 1 } );
      ("fast_memory", { base with Hardware.fast_memory = base.fast_memory - 1 });
    ]
  in
  let fp = Hardware.fingerprint base in
  List.iter
    (fun (field, mutant) ->
      if Hardware.fingerprint mutant = fp then
        Alcotest.failf "mutating %s left the fingerprint unchanged" field)
    mutants

let test_find_and_fast_memory_knob () =
  Alcotest.(check string)
    "find is case-insensitive" Hardware.a100.Hardware.name
    (Hardware.find "A100").Hardware.name;
  (match Hardware.find "not-a-device" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "find accepted an unknown profile");
  let shrunk =
    Hardware.with_fast_memory Hardware.tiered ~bytes:(512 * 1024 * 1024)
  in
  Alcotest.(check int)
    "with_fast_memory sets the knob"
    (512 * 1024 * 1024)
    shrunk.Hardware.fast_memory;
  Alcotest.(check bool)
    "with_fast_memory renames the derived profile" true
    (shrunk.Hardware.name <> Hardware.tiered.Hardware.name);
  Alcotest.(check bool)
    "with_fast_memory changes the fingerprint" true
    (Hardware.fingerprint shrunk <> Hardware.fingerprint Hardware.tiered)

let test_batch_sweep () =
  let w = Zoo.find "UNet" in
  (match Zoo.with_batch w ~batch:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "with_batch accepted a non-positive batch");
  let sweep = Zoo.batch_sweep w ~batches:[ 1; 2; 4 ] in
  Alcotest.(check (list int))
    "batch_sweep carries the requested batches" [ 1; 2; 4 ]
    (List.map (fun (sw : Zoo.workload) -> sw.Zoo.batch) sweep);
  let same = Zoo.with_batch w ~batch:w.Zoo.batch in
  Alcotest.(check int)
    "with_batch at the native batch rebuilds the same graph"
    (Graph.n_nodes (w.Zoo.build Zoo.Quick))
    (Graph.n_nodes (same.Zoo.build Zoo.Quick))

(* ------------------------------------------------------------------ *)

let suite =
  [
    tc "of_json rejects wrong-version documents" test_of_json_rejects_bad_version;
    tc "cache load on an empty dir is a miss" test_cache_miss_on_empty_dir;
    tc "cache round-trips and isolates keys" test_cache_roundtrip_and_key_isolation;
    tc "harvesting is trajectory-invisible (A/B)" test_harvest_ab_bit_identical;
    tc "one UNet search answers the whole budget ladder from cache"
      test_one_search_many_budgets;
    tc "hardware, mode and config all perturb the cache key" test_key_sensitivity;
    tc "hardware zoo: five profiles, distinct fingerprints" test_zoo_registry;
    tc "fingerprint digests every profile field"
      test_fingerprint_covers_every_field;
    tc "find / with_fast_memory behave" test_find_and_fast_memory_knob;
    tc "batch sweep helpers" test_batch_sweep;
  ]
  @ List.map QCheck_alcotest.to_alcotest props
