open Magis
open Helpers

let infer_ok op ins =
  match Op.infer op (Array.of_list ins) with
  | Ok s -> s
  | Error e -> Alcotest.failf "infer %s failed: %s" (Op.name op) e

let infer_err op ins =
  match Op.infer op (Array.of_list ins) with
  | Ok _ -> Alcotest.failf "infer %s unexpectedly succeeded" (Op.name op)
  | Error _ -> ()

let test_matmul_infer () =
  let s = infer_ok (Op.Matmul { trans_a = false; trans_b = false })
      [ shape [ 3; 4 ]; shape [ 4; 5 ] ] in
  Alcotest.(check (list int)) "m,n" [ 3; 5 ] (Array.to_list (Shape.dims s));
  let s = infer_ok (Op.Matmul { trans_a = true; trans_b = false })
      [ shape [ 4; 3 ]; shape [ 4; 5 ] ] in
  Alcotest.(check (list int)) "trans_a" [ 3; 5 ] (Array.to_list (Shape.dims s));
  let s = infer_ok (Op.Matmul { trans_a = false; trans_b = true })
      [ shape [ 3; 4 ]; shape [ 5; 4 ] ] in
  Alcotest.(check (list int)) "trans_b" [ 3; 5 ] (Array.to_list (Shape.dims s));
  infer_err (Op.Matmul { trans_a = false; trans_b = false })
    [ shape [ 3; 4 ]; shape [ 5; 5 ] ]

let test_dense_infer () =
  let s = infer_ok (Op.Dense { trans_w = false })
      [ shape [ 2; 7; 4 ]; shape [ 4; 9 ] ] in
  Alcotest.(check (list int)) "dense keeps leading dims" [ 2; 7; 9 ]
    (Array.to_list (Shape.dims s));
  let s = infer_ok (Op.Dense { trans_w = true })
      [ shape [ 2; 7; 4 ]; shape [ 9; 4 ] ] in
  Alcotest.(check (list int)) "dense_tw" [ 2; 7; 9 ] (Array.to_list (Shape.dims s));
  infer_err (Op.Dense { trans_w = false }) [ shape [ 2; 7; 4 ]; shape [ 5; 9 ] ];
  let s = infer_ok Op.Dense_bwd_weight [ shape [ 2; 7; 4 ]; shape [ 2; 7; 9 ] ] in
  Alcotest.(check (list int)) "dense_bwd_weight" [ 4; 9 ] (Array.to_list (Shape.dims s))

let test_bmm_infer () =
  let s = infer_ok (Op.Batch_matmul { trans_a = false; trans_b = true })
      [ shape [ 2; 3; 8; 16 ]; shape [ 2; 3; 8; 16 ] ] in
  Alcotest.(check (list int)) "qk^t" [ 2; 3; 8; 8 ] (Array.to_list (Shape.dims s));
  infer_err (Op.Batch_matmul { trans_a = false; trans_b = false })
    [ shape [ 2; 3; 8; 16 ]; shape [ 2; 4; 16; 8 ] ]

let test_conv_infer () =
  let s = infer_ok (Op.Conv2d { stride = 2; padding = 3 })
      [ shape [ 8; 3; 224; 224 ]; shape [ 64; 3; 7; 7 ] ] in
  Alcotest.(check (list int)) "resnet stem" [ 8; 64; 112; 112 ]
    (Array.to_list (Shape.dims s));
  let s = infer_ok (Op.Conv2d { stride = 1; padding = 1 })
      [ shape [ 8; 16; 32; 32 ]; shape [ 16; 16; 3; 3 ] ] in
  Alcotest.(check (list int)) "same conv" [ 8; 16; 32; 32 ]
    (Array.to_list (Shape.dims s));
  infer_err (Op.Conv2d { stride = 1; padding = 0 })
    [ shape [ 8; 3; 8; 8 ]; shape [ 4; 5; 3; 3 ] ]

let test_conv_bwd_data_shape_carrier () =
  (* a strided conv floors away the extent; the 3-operand form recovers it *)
  let x = shape [ 8; 16; 5; 5 ] in
  let w = shape [ 32; 16; 3; 3 ] in
  let dy = infer_ok (Op.Conv2d { stride = 2; padding = 1 }) [ x; w ] in
  Alcotest.(check (list int)) "fwd" [ 8; 32; 3; 3 ] (Array.to_list (Shape.dims dy));
  let dx = infer_ok (Op.Conv2d_bwd_data { stride = 2; padding = 1 }) [ dy; w; x ] in
  Alcotest.(check bool) "dx = x shape" true (Shape.equal_dims dx x)

let test_deconv_infer () =
  (* two-operand conv_bwd_data = transposed convolution upsampling *)
  let s = infer_ok (Op.Conv2d_bwd_data { stride = 2; padding = 0 })
      [ shape [ 4; 64; 16; 16 ]; shape [ 64; 32; 2; 2 ] ] in
  Alcotest.(check (list int)) "2x upsample" [ 4; 32; 32; 32 ]
    (Array.to_list (Shape.dims s))

let test_elementwise_infer () =
  let a = shape [ 4; 4 ] in
  let s = infer_ok (Op.Binary Op.Add) [ a; a ] in
  Alcotest.(check bool) "add" true (Shape.equal_dims a s);
  infer_err (Op.Binary Op.Add) [ a; shape [ 4; 5 ] ];
  let s = infer_ok (Op.Unary Op.Relu) [ a ] in
  Alcotest.(check bool) "relu" true (Shape.equal_dims a s);
  let s = infer_ok (Op.Bias_add 1) [ a; shape [ 4 ] ] in
  Alcotest.(check bool) "bias_add" true (Shape.equal_dims a s);
  infer_err (Op.Bias_add 1) [ a; shape [ 5 ] ]

let test_reduce_broadcast_roundtrip () =
  let a = shape [ 4; 6; 8 ] in
  let r = infer_ok (Op.Reduce (Op.R_sum, [ 1 ])) [ a ] in
  Alcotest.(check (list int)) "reduce" [ 4; 8 ] (Array.to_list (Shape.dims r));
  let b = infer_ok (Op.Broadcast { dims = [| 4; 6; 8 |]; axes = [ 1 ] }) [ r ] in
  Alcotest.(check bool) "broadcast back" true (Shape.equal_dims a b);
  let full = infer_ok (Op.Reduce (Op.R_sum, [ 0; 1; 2 ])) [ a ] in
  Alcotest.(check (list int)) "full reduce keeps [1]" [ 1 ]
    (Array.to_list (Shape.dims full))

let test_structural_ops () =
  let a = shape [ 2; 3; 4 ] in
  let t = infer_ok (Op.Transpose [| 2; 0; 1 |]) [ a ] in
  Alcotest.(check (list int)) "transpose" [ 4; 2; 3 ] (Array.to_list (Shape.dims t));
  infer_err (Op.Transpose [| 0; 0; 1 |]) [ a ];
  let r = infer_ok (Op.Reshape [| 6; 4 |]) [ a ] in
  Alcotest.(check (list int)) "reshape" [ 6; 4 ] (Array.to_list (Shape.dims r));
  infer_err (Op.Reshape [| 5; 5 |]) [ a ];
  let s = infer_ok (Op.Slice { axis = 1; lo = 1; hi = 3 }) [ a ] in
  Alcotest.(check (list int)) "slice" [ 2; 2; 4 ] (Array.to_list (Shape.dims s));
  infer_err (Op.Slice { axis = 1; lo = 2; hi = 2 }) [ a ];
  let c = infer_ok (Op.Concat 1) [ a; a; a ] in
  Alcotest.(check (list int)) "concat" [ 2; 9; 4 ] (Array.to_list (Shape.dims c))

let test_embedding_infer () =
  let table = shape [ 100; 8 ] in
  let ids = Shape.create ~dtype:Shape.I64 [ 4; 10 ] in
  let e = infer_ok Op.Embedding [ table; ids ] in
  Alcotest.(check (list int)) "embedding" [ 4; 10; 8 ] (Array.to_list (Shape.dims e));
  let d = infer_ok Op.Embedding_bwd [ e; ids; table ] in
  Alcotest.(check bool) "embedding_bwd" true (Shape.equal_dims d table)

let test_flops_monotone () =
  (* splitting a matmul along m halves its flops *)
  let full = Op.flops (Op.Matmul { trans_a = false; trans_b = false })
      [| shape [ 8; 4 ]; shape [ 4; 6 ] |] (shape [ 8; 6 ]) in
  let half = Op.flops (Op.Matmul { trans_a = false; trans_b = false })
      [| shape [ 4; 4 ]; shape [ 4; 6 ] |] (shape [ 4; 6 ]) in
  Alcotest.(check (float 1e-9)) "half the flops" (full /. 2.0) half;
  Alcotest.(check (float 1e-9)) "matmul flops" (2.0 *. 8.0 *. 6.0 *. 4.0) full

let test_view_and_swap_predicates () =
  Alcotest.(check bool) "transpose is view" true (Op.is_view (Op.Transpose [| 0 |]));
  Alcotest.(check bool) "store is swap" true (Op.is_swap Op.Store);
  Alcotest.(check bool) "load is swap" true (Op.is_swap Op.Load);
  Alcotest.(check bool) "matmul is neither" false
    (Op.is_view (Op.Matmul { trans_a = false; trans_b = false })
    || Op.is_swap (Op.Matmul { trans_a = false; trans_b = false }));
  Alcotest.(check bool) "weight" true (Op.is_weight (Op.Input Op.Weight));
  Alcotest.(check bool) "placeholder is input" true (Op.is_input (Op.Input Op.Placeholder))

let test_dim_links_matmul () =
  let ins = [| shape [ 3; 4 ]; shape [ 4; 5 ] |] in
  let out = shape [ 3; 5 ] in
  let links = Op.links (Op.Matmul { trans_a = false; trans_b = false }) ins out in
  Alcotest.(check int) "4 links" 4 (List.length links);
  Alcotest.(check bool) "a.m -> out0" true
    (List.mem (0, 0, Op.To_out 0) links);
  Alcotest.(check bool) "a.k -> reduce0" true
    (List.mem (0, 1, Op.To_reduce 0) links);
  Alcotest.(check bool) "b.k -> reduce0" true
    (List.mem (1, 0, Op.To_reduce 0) links);
  Alcotest.(check bool) "b.n -> out1" true (List.mem (1, 1, Op.To_out 1) links)

let test_dim_links_dense_bwd_weight () =
  (* leading dims of x and dy are reduce axes (the Fig. 5 pattern) *)
  let ins = [| shape [ 8; 16; 4 ]; shape [ 8; 16; 6 ] |] in
  let out = shape [ 4; 6 ] in
  let links = Op.links Op.Dense_bwd_weight ins out in
  Alcotest.(check bool) "x batch -> reduce0" true
    (List.mem (0, 0, Op.To_reduce 0) links);
  Alcotest.(check bool) "x seq -> reduce1" true
    (List.mem (0, 1, Op.To_reduce 1) links);
  Alcotest.(check bool) "x last -> out0" true (List.mem (0, 2, Op.To_out 0) links);
  Alcotest.(check bool) "dy last -> out1" true (List.mem (1, 2, Op.To_out 1) links);
  Alcotest.(check int) "reduce arity" 2
    (Op.reduce_arity Op.Dense_bwd_weight ins)

let test_unsplittable_dims () =
  let x = shape [ 4; 8 ] in
  Alcotest.(check (list int)) "softmax axis" [ 1 ]
    (Op.unsplittable_out_dims (Op.Softmax 1) [| x |] x);
  let nchw = shape [ 2; 3; 8; 8 ] in
  Alcotest.(check (list int)) "conv window dims" [ 2; 3 ]
    (Op.unsplittable_out_dims (Op.Conv2d { stride = 1; padding = 1 })
       [| nchw; shape [ 3; 3; 3; 3 ] |] nchw);
  Alcotest.(check (list int)) "layer_norm trailing" [ 1 ]
    (Op.unsplittable_out_dims (Op.Layer_norm 1) [| x; shape [ 8 ]; shape [ 8 ] |] x)

let test_reduce_merge () =
  Alcotest.(check bool) "matmul sums" true
    (Op.reduce_merge (Op.Matmul { trans_a = false; trans_b = false }) = `Sum);
  Alcotest.(check bool) "reduce max merges with max" true
    (Op.reduce_merge (Op.Reduce (Op.R_max, [ 0 ])) = `Max);
  Alcotest.(check bool) "mean cannot merge" true
    (Op.reduce_merge (Op.Reduce (Op.R_mean, [ 0 ])) = `No_merge);
  Alcotest.(check bool) "relu has no reduce" true
    (Op.reduce_merge (Op.Unary Op.Relu) = `No_merge)

let test_reshape_links_prefix_suffix () =
  (* [B,T,C] -> [B,T,H,h]: B and T stay linked, C is opaque *)
  let ins = [| shape [ 4; 8; 6 ] |] in
  let out = shape [ 4; 8; 2; 3 ] in
  let links = Op.links (Op.Reshape [| 4; 8; 2; 3 |]) ins out in
  Alcotest.(check bool) "B linked" true (List.mem (0, 0, Op.To_out 0) links);
  Alcotest.(check bool) "T linked" true (List.mem (0, 1, Op.To_out 1) links);
  Alcotest.(check bool) "C not linked" false
    (List.exists (fun (_, d, _) -> d = 2) links)

(* ---- abstract shape inference (Op.Abstract over Op.Int_dims) ---- *)

module A = Op.Abstract (Op.Int_dims)

let to_abstract s = (Shape.dims s, Shape.dtype s)

(** On the concrete [Int_dims] domain the abstract interpreter is a
    prover over decidable facts: whenever it answers [Ok] the concrete
    {!Op.infer} must agree exactly, and whenever the concrete inference
    rejects, the abstract one must too (it never proves a false fact).
    The one asymmetry is flooring division (conv/pool with a non-dividing
    stride): concrete floors, abstract refuses to prove. *)
let agree ?(expect_abstract_gap = false) op ins =
  let concrete = Op.infer op (Array.of_list ins) in
  let abstract = A.infer op (Array.of_list (List.map to_abstract ins)) in
  match (concrete, abstract) with
  | Ok s, Ok (dims, dt) ->
      Alcotest.(check (list int))
        (Op.name op ^ " dims")
        (Array.to_list (Shape.dims s))
        (Array.to_list dims);
      Alcotest.(check string)
        (Op.name op ^ " dtype")
        (Shape.dtype_name (Shape.dtype s))
        (Shape.dtype_name dt)
  | Error _, Error _ -> ()
  | Ok _, Error e ->
      if not expect_abstract_gap then
        Alcotest.failf "%s: concrete Ok but abstract cannot prove: %s"
          (Op.name op) e
  | Error e, Ok _ ->
      Alcotest.failf "%s: abstract proved what concrete rejects (%s)"
        (Op.name op) e

let test_abstract_agreement () =
  agree (Op.Matmul { trans_a = false; trans_b = false })
    [ shape [ 3; 4 ]; shape [ 4; 5 ] ];
  agree (Op.Matmul { trans_a = true; trans_b = true })
    [ shape [ 4; 3 ]; shape [ 5; 4 ] ];
  agree (Op.Dense { trans_w = false }) [ shape [ 2; 7; 4 ]; shape [ 4; 9 ] ];
  agree Op.Dense_bwd_weight [ shape [ 2; 4 ]; shape [ 2; 9 ] ];
  agree (Op.Batch_matmul { trans_a = false; trans_b = false })
    [ shape [ 2; 3; 4 ]; shape [ 2; 4; 5 ] ];
  agree (Op.Conv2d { stride = 1; padding = 0 })
    [ shape [ 1; 3; 8; 8 ]; shape [ 4; 3; 3; 3 ] ];
  agree (Op.Conv2d { stride = 2; padding = 1 })
    [ shape [ 1; 3; 9; 9 ]; shape [ 4; 3; 3; 3 ] ];
  agree (Op.Conv2d_bwd_data { stride = 2; padding = 0 })
    [ shape [ 1; 4; 4; 4 ]; shape [ 4; 3; 2; 2 ] ];
  agree (Op.Pool2d { p_kind = Op.P_max; kernel = 2; p_stride = 2 })
    [ shape [ 1; 3; 8; 8 ] ];
  agree (Op.Unary Op.Relu) [ shape [ 5; 5 ] ];
  agree (Op.Binary Op.Add) [ shape [ 5; 5 ]; shape [ 5; 5 ] ];
  agree (Op.Bias_add 1) [ shape [ 2; 7 ]; shape [ 7 ] ];
  agree (Op.Softmax 1) [ shape [ 2; 7 ] ];
  agree (Op.Reduce (Op.R_sum, [ 0 ])) [ shape [ 4; 6 ] ];
  agree (Op.Transpose [| 1; 0 |]) [ shape [ 3; 7 ] ];
  agree (Op.Reshape [| 6; 2 |]) [ shape [ 3; 4 ] ];
  agree (Op.Slice { axis = 0; lo = 1; hi = 3 }) [ shape [ 4; 2 ] ];
  agree (Op.Concat 1) [ shape [ 2; 3 ]; shape [ 2; 5 ] ];
  agree Op.Store [ shape [ 4 ] ];
  (* rejections must agree too *)
  agree (Op.Matmul { trans_a = false; trans_b = false })
    [ shape [ 3; 4 ]; shape [ 5; 5 ] ];
  agree (Op.Binary Op.Add) [ shape [ 5; 5 ]; shape [ 5; 4 ] ];
  agree (Op.Reshape [| 7 |]) [ shape [ 3; 4 ] ];
  agree (Op.Slice { axis = 0; lo = 0; hi = 9 }) [ shape [ 4; 2 ] ];
  (* the documented gap: flooring stride division *)
  agree ~expect_abstract_gap:true
    (Op.Conv2d { stride = 2; padding = 0 })
    [ shape [ 1; 3; 8; 8 ]; shape [ 4; 3; 3; 3 ] ]

let test_infer_edge_cases () =
  (* size-1 extents everywhere they are legal *)
  let s = infer_ok (Op.Matmul { trans_a = false; trans_b = false })
      [ shape [ 1; 1 ]; shape [ 1; 1 ] ] in
  Alcotest.(check (list int)) "1x1 matmul" [ 1; 1 ]
    (Array.to_list (Shape.dims s));
  let s = infer_ok (Op.Slice { axis = 1; lo = 0; hi = 1 }) [ shape [ 3; 1 ] ] in
  Alcotest.(check (list int)) "slice of size-1 axis" [ 3; 1 ]
    (Array.to_list (Shape.dims s));
  let s = infer_ok (Op.Concat 0) [ shape [ 1; 4 ]; shape [ 1; 4 ] ] in
  Alcotest.(check (list int)) "concat of size-1 rows" [ 2; 4 ]
    (Array.to_list (Shape.dims s));
  let s = infer_ok (Op.Reduce (Op.R_sum, [ 0; 1 ])) [ shape [ 2; 3 ] ] in
  Alcotest.(check (list int)) "full reduce keeps rank 1" [ 1 ]
    (Array.to_list (Shape.dims s));
  (* dtype mismatches are rejected, not silently coerced *)
  infer_err (Op.Binary Op.Add)
    [ shape [ 4 ]; Shape.create ~dtype:Shape.BF16 [ 4 ] ];
  infer_err (Op.Concat 0)
    [ shape [ 2; 4 ]; Shape.create ~dtype:Shape.F16 [ 2; 4 ] ];
  (* reshape element-count violations *)
  infer_err (Op.Reshape [| 5; 2 |]) [ shape [ 3; 4 ] ];
  infer_err (Op.Reshape [| 0 |]) [ shape [ 3; 4 ] ];
  (* slices past the extent and empty ranges *)
  infer_err (Op.Slice { axis = 0; lo = 2; hi = 2 }) [ shape [ 4 ] ];
  infer_err (Op.Slice { axis = 1; lo = 0; hi = 2 }) [ shape [ 3; 1 ] ]

let suite =
  [
    tc "matmul infer" test_matmul_infer;
    tc "abstract/concrete agreement" test_abstract_agreement;
    tc "infer edge cases" test_infer_edge_cases;
    tc "dense infer" test_dense_infer;
    tc "batch matmul infer" test_bmm_infer;
    tc "conv2d infer" test_conv_infer;
    tc "conv_bwd_data shape carrier" test_conv_bwd_data_shape_carrier;
    tc "deconv upsampling" test_deconv_infer;
    tc "elementwise infer" test_elementwise_infer;
    tc "reduce/broadcast roundtrip" test_reduce_broadcast_roundtrip;
    tc "structural ops" test_structural_ops;
    tc "embedding infer" test_embedding_infer;
    tc "flops monotonicity" test_flops_monotone;
    tc "view/swap predicates" test_view_and_swap_predicates;
    tc "matmul dim links" test_dim_links_matmul;
    tc "dense_bwd_weight dim links" test_dim_links_dense_bwd_weight;
    tc "unsplittable dims" test_unsplittable_dims;
    tc "reduce merge" test_reduce_merge;
    tc "reshape prefix/suffix links" test_reshape_links_prefix_suffix;
  ]
