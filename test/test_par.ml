(** Parallel runtime and simulation cache: the domain pool's ordered
    map, the striped table under concurrent writers, Sim_cache keying,
    and the headline guarantee — [Search.run] with [jobs = 4] returns
    bit-identical best states to [jobs = 1]. *)

open Magis
open Helpers

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_map_ordered () =
  let pool = Pool.create 4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let xs = Array.init 500 (fun i -> i) in
  let ys = Pool.map pool (fun i -> i * i) xs in
  Alcotest.(check (array int))
    "results in input order"
    (Array.map (fun i -> i * i) xs)
    ys;
  Alcotest.(check int) "size" 4 (Pool.size pool);
  Alcotest.(check int) "one busy cell per worker" 4
    (Array.length (Pool.busy_time pool))

let test_pool_inline () =
  let pool = Pool.create 1 in
  let ys = Pool.map pool string_of_int [| 1; 2; 3 |] in
  Alcotest.(check (array string)) "inline map" [| "1"; "2"; "3" |] ys;
  Alcotest.(check int) "inline pool has size 1" 1 (Pool.size pool);
  Alcotest.(check int) "inline busy cell" 1 (Array.length (Pool.busy_time pool));
  Pool.shutdown pool

let test_pool_reuse_and_empty () =
  let pool = Pool.create 2 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.(check (array int)) "empty input" [||] (Pool.map pool succ [||]);
  for round = 1 to 5 do
    let ys = Pool.map pool succ (Array.make 40 round) in
    Alcotest.(check int) "batch survives reuse" (round + 1) ys.(39)
  done

let test_pool_exception_lowest_index () =
  let pool = Pool.create 3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.check_raises "lowest-indexed failure is re-raised"
    (Pool.Task_error { index = 2; exn = Failure "boom2" })
    (fun () ->
      ignore
        (Pool.map pool
           (fun i -> if i >= 2 then failwith (Printf.sprintf "boom%d" i))
           [| 0; 1; 2; 3; 4 |]));
  (* the pool stays usable after a failing batch *)
  Alcotest.(check (array int)) "pool usable after failure" [| 2; 3 |]
    (Pool.map pool succ [| 1; 2 |])

let test_pool_map_result_isolates () =
  let pool = Pool.create 3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let rs =
    Pool.map_result pool
      (fun i -> if i mod 2 = 1 then failwith (string_of_int i) else i * 10)
      [| 0; 1; 2; 3; 4 |]
  in
  Array.iteri
    (fun i r ->
      match (i mod 2, r) with
      | 0, Ok v -> Alcotest.(check int) "survivor value" (i * 10) v
      | 1, Error (Failure msg, _) ->
          Alcotest.(check string) "failure carries its own input"
            (string_of_int i) msg
      | _, Ok _ -> Alcotest.failf "task %d should have failed" i
      | _, Error _ -> Alcotest.failf "task %d failed or raised wrongly" i)
    rs;
  (* inline pools isolate identically *)
  let inline = Pool.create 1 in
  let rs1 =
    Pool.map_result inline
      (fun i -> if i = 0 then raise Not_found else i)
      [| 0; 7 |]
  in
  (match rs1.(0) with
  | Error (Not_found, _) -> ()
  | _ -> Alcotest.fail "inline failure not captured");
  (match rs1.(1) with
  | Ok 7 -> ()
  | _ -> Alcotest.fail "inline survivor lost");
  Pool.shutdown inline

(* ------------------------------------------------------------------ *)
(* Striped table                                                       *)
(* ------------------------------------------------------------------ *)

let test_striped_basic () =
  let t = Striped.create ~stripes:8 () in
  Alcotest.(check (option int)) "empty" None (Striped.find t 5L);
  Striped.add t 5L 50;
  Striped.add t 6L 60;
  Striped.add t 5L 51;
  Alcotest.(check (option int)) "replace" (Some 51) (Striped.find t 5L);
  Alcotest.(check (option int)) "other key" (Some 60) (Striped.find t 6L);
  Alcotest.(check int) "length" 2 (Striped.length t);
  Striped.clear t;
  Alcotest.(check int) "cleared" 0 (Striped.length t)

let test_striped_concurrent_writers () =
  let t = Striped.create ~stripes:16 () in
  let pool = Pool.create 4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let n = 2_000 in
  ignore
    (Pool.map pool
       (fun i -> Striped.add t (Int64.of_int i) (i * 3))
       (Array.init n (fun i -> i)));
  Alcotest.(check int) "all bindings present" n (Striped.length t);
  for i = 0 to n - 1 do
    if Striped.find t (Int64.of_int i) <> Some (i * 3) then
      Alcotest.failf "binding %d lost or corrupted" i
  done

(** Stress: 8 domains hammering a 4-stripe table through a 64-key space,
    so nearly every operation contends on a stripe lock.  Values are a
    pure function of the key, so any lost update, phantom binding or
    torn read is detectable after (and during) the storm. *)
let test_striped_colliding_stress () =
  let t = Striped.create ~stripes:4 () in
  let pool = Pool.create 8 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let n = 4_000 and keys = 64 in
  ignore
    (Pool.map pool
       (fun i ->
         let k = i mod keys in
         Striped.add t (Int64.of_int k) (k * 1009);
         let probe = i * 31 mod keys in
         match Striped.find t (Int64.of_int probe) with
         | None -> ()
         | Some v ->
             if v <> probe * 1009 then
               Alcotest.failf "key %d read %d (torn or misfiled write)" probe v)
       (Array.init n (fun i -> i)));
  Alcotest.(check int) "no lost or phantom keys" keys (Striped.length t);
  for k = 0 to keys - 1 do
    if Striped.find t (Int64.of_int k) <> Some (k * 1009) then
      Alcotest.failf "key %d lost its value" k
  done

(* ------------------------------------------------------------------ *)
(* Simulation cache                                                    *)
(* ------------------------------------------------------------------ *)

let mk_key ?(state = 11L) ?(parent_sched = 22L) ?(mutated = 33L)
    ?(sched_states = 0) ?(mode = 1L) ?(hw = 44L) () =
  Sim_cache.key ~state ~parent_sched ~mutated ~sched_states ~mode ~hw

let a_value =
  { Sim_cache.schedule = [ 0; 1; 2 ]; peak_mem = 640; latency = 0.25;
    hotspots = [ 1; 2 ] }

let test_sim_cache_hit_after_identical_key () =
  let c = Sim_cache.create () in
  Alcotest.(check bool) "cold miss" true (Sim_cache.find c (mk_key ()) = None);
  Sim_cache.add c (mk_key ()) a_value;
  (match Sim_cache.find c (mk_key ()) with
  | None -> Alcotest.fail "identical key must hit"
  | Some v ->
      Alcotest.(check (list int)) "schedule round-trips" [ 0; 1; 2 ] v.schedule;
      Alcotest.(check int) "peak round-trips" 640 v.peak_mem);
  Alcotest.(check (pair int int)) "one hit, one miss" (1, 1)
    (Sim_cache.stats c);
  Sim_cache.reset_stats c;
  Alcotest.(check (pair int int)) "counters reset" (0, 0) (Sim_cache.stats c);
  Alcotest.(check int) "one entry" 1 (Sim_cache.length c)

let test_sim_cache_miss_after_rewrite () =
  (* a rewrite changes the WL hash, hence the [state] digest *)
  let c = Sim_cache.create () in
  Sim_cache.add c (mk_key ~state:11L ()) a_value;
  Alcotest.(check bool) "rewritten graph misses" true
    (Sim_cache.find c (mk_key ~state:12L ()) = None)

let test_sim_cache_no_cross_mode_collision () =
  let c = Sim_cache.create () in
  Sim_cache.add c (mk_key ~mode:1L ()) a_value;
  Alcotest.(check bool) "other mode misses" true
    (Sim_cache.find c (mk_key ~mode:2L ()) = None);
  Alcotest.(check bool) "other hardware misses" true
    (Sim_cache.find c (mk_key ~hw:45L ()) = None);
  Alcotest.(check bool) "other DP budget misses" true
    (Sim_cache.find c (mk_key ~sched_states:100 ()) = None)

(** Stress the cache's concurrent find/add accounting: 8 domains race
    find-then-add over 64 colliding keys.  Hit/miss counters are
    atomic, so after the storm [hits + misses] must equal the exact
    number of finds issued — a lost increment fails the check — and
    every key must hold the value derived from it. *)
let test_sim_cache_concurrent_accounting () =
  let c = Sim_cache.create ~stripes:4 () in
  let pool = Pool.create 8 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let n = 4_000 and keys = 64 in
  let key_of k = mk_key ~state:(Int64.of_int k) () in
  let value_of k =
    { Sim_cache.schedule = [ k; k + 1 ]; peak_mem = k * 13;
      latency = float_of_int k; hotspots = [ k ] }
  in
  ignore
    (Pool.map pool
       (fun i ->
         let k = i mod keys in
         match Sim_cache.find c (key_of k) with
         | Some v ->
             if v.peak_mem <> k * 13 || v.schedule <> [ k; k + 1 ] then
               Alcotest.failf "key %d returned another key's value" k
         | None -> Sim_cache.add c (key_of k) (value_of k))
       (Array.init n (fun i -> i)));
  let hits, misses = Sim_cache.stats c in
  Alcotest.(check int) "every find accounted exactly once" n (hits + misses);
  Alcotest.(check bool) "each key missed at least once" true (misses >= keys);
  Alcotest.(check int) "one binding per key" keys (Sim_cache.length c);
  for k = 0 to keys - 1 do
    match Sim_cache.find c (key_of k) with
    | None -> Alcotest.failf "key %d lost" k
    | Some v ->
        if v.peak_mem <> k * 13 || v.hotspots <> [ k ] then
          Alcotest.failf "key %d holds a foreign value" k
  done

let test_hardware_fingerprint () =
  Alcotest.(check bool) "fingerprint is stable" true
    (Hardware.fingerprint Hardware.rtx3090
    = Hardware.fingerprint Hardware.rtx3090);
  Alcotest.(check bool) "devices are distinguished" true
    (Hardware.fingerprint Hardware.rtx3090
    <> Hardware.fingerprint Hardware.mobile)

(* ------------------------------------------------------------------ *)
(* Serial/parallel determinism of the search                           *)
(* ------------------------------------------------------------------ *)

let randnet seed =
  Randnet.build
    ~cfg:
      { Randnet.cells = 1; nodes_per_cell = 4; channels = 8; image = 8;
        batch = 2; seed }
    ()

let run_with ?sim_cache ~jobs g =
  let config =
    { Search.default_config with
      max_iterations = 12; time_budget = 1e9; jobs; sim_cache }
  in
  Search.optimize_memory ~config (cache ()) ~overhead:0.10 g

let check_same_best what (r1 : Search.result) (r2 : Search.result) =
  Alcotest.(check int)
    (what ^ ": identical peak memory")
    r1.best.peak_mem r2.best.peak_mem;
  Alcotest.(check (float 0.0))
    (what ^ ": identical latency")
    r1.best.latency r2.best.latency;
  Alcotest.(check (list int))
    (what ^ ": identical schedule")
    r1.best.schedule r2.best.schedule;
  Alcotest.(check bool)
    (what ^ ": structurally identical graph")
    true
    (Wl_hash.equal_structure r1.best.graph r2.best.graph)

let test_parallel_determinism () =
  List.iter
    (fun seed ->
      let what = Printf.sprintf "randnet seed %d" seed in
      let g = randnet seed in
      let r1 = run_with ~jobs:1 g in
      let r4 = run_with ~jobs:4 g in
      check_same_best what r1 r4;
      (* work accounting is count-identical, not just result-identical *)
      Alcotest.(check int) (what ^ ": same schedules run")
        r1.stats.n_sched r4.stats.n_sched;
      Alcotest.(check int) (what ^ ": same simulations run")
        r1.stats.n_simul r4.stats.n_simul;
      Alcotest.(check int) (what ^ ": same duplicates filtered")
        r1.stats.n_filtered r4.stats.n_filtered;
      Alcotest.(check int) (what ^ ": per-domain wall time recorded") 4
        (Array.length r4.stats.domain_time))
    [ 1; 2; 3 ]

let test_shared_sim_cache_short_circuits () =
  let g = randnet 1 in
  let sim = Sim_cache.create () in
  let r1 = run_with ~jobs:1 ~sim_cache:sim g in
  Alcotest.(check int) "cold run has no hits" 0 r1.stats.n_sim_hit;
  Alcotest.(check bool) "cold run fills the cache" true
    (r1.stats.n_sim_miss > 0 && Sim_cache.length sim > 0);
  (* an identical search over a warm cache replays the trajectory
     without a single reschedule or simulation *)
  let r2 = run_with ~jobs:2 ~sim_cache:sim g in
  check_same_best "warm replay" r1 r2;
  Alcotest.(check int) "warm run never misses" 0 r2.stats.n_sim_miss;
  Alcotest.(check int) "warm run never reschedules" 0 r2.stats.n_sched;
  Alcotest.(check int) "warm run never simulates" 0 r2.stats.n_simul;
  Alcotest.(check bool) "warm run only hits" true (r2.stats.n_sim_hit > 0)

let suite =
  [
    tc "pool map preserves order" test_pool_map_ordered;
    tc "pool inline path" test_pool_inline;
    tc "pool reuse and empty batches" test_pool_reuse_and_empty;
    tc "pool re-raises lowest-index failure" test_pool_exception_lowest_index;
    tc "pool map_result isolates failures" test_pool_map_result_isolates;
    tc "striped table basics" test_striped_basic;
    tc "striped table concurrent writers" test_striped_concurrent_writers;
    tc "striped table colliding-key stress" test_striped_colliding_stress;
    tc "sim cache hits identical key" test_sim_cache_hit_after_identical_key;
    tc "sim cache concurrent accounting stress"
      test_sim_cache_concurrent_accounting;
    tc "sim cache misses after rewrite" test_sim_cache_miss_after_rewrite;
    tc "sim cache mode/hw/budget isolation"
      test_sim_cache_no_cross_mode_collision;
    tc "hardware fingerprint" test_hardware_fingerprint;
    tc "jobs=4 reproduces jobs=1 bit-identically" test_parallel_determinism;
    tc "shared sim cache short-circuits a replay"
      test_shared_sim_cache_short_circuits;
  ]
