open Magis
open Helpers

let subject () =
  Transformer.build_lm
    { Transformer.batch = 8; seq_len = 32; hidden = 64; heads = 4;
      layers = 2; vocab = 128; dtype = Shape.F32 }

(* verify_states: every M-state the search accepts is run through the
   IR verifier and schedule checker (cheap at test scale) *)
let config budget =
  { Search.default_config with
    time_budget = budget; max_iterations = 200; verify_states = true }

let test_memory_mode_respects_constraint () =
  let c = cache () in
  let g = subject () in
  let base = Simulator.run c g (Graph.program_order g) in
  let r = Search.optimize_memory ~config:(config 2.0) c ~overhead:0.10 g in
  Alcotest.(check bool) "peak reduced" true (r.best.peak_mem < base.peak_mem);
  Alcotest.(check bool) "latency within 10%" true
    (r.best.latency <= base.latency *. 1.10 *. 1.0001);
  Alcotest.(check bool) "schedule valid" true
    (Graph.is_valid_order r.best.graph r.best.schedule)

let test_latency_mode_respects_constraint () =
  let c = cache () in
  let g = subject () in
  let base = Simulator.run c g (Graph.program_order g) in
  (* state verification roughly halves search throughput; give this
     constraint-tightest test a correspondingly larger budget (the
     iteration cap, not the wall clock, bounds it on fast machines) *)
  let r = Search.optimize_latency ~config:(config 16.0) c ~mem_ratio:0.7 g in
  let limit = int_of_float (float_of_int base.peak_mem *. 0.7) in
  Alcotest.(check bool) "memory within 70%" true (r.best.peak_mem <= limit);
  Alcotest.(check bool) "schedule valid" true
    (Graph.is_valid_order r.best.graph r.best.schedule)

let test_better_than_ordering () =
  let mk peak lat : Mstate.t =
    { graph = Graph.empty; ftree = Ftree.empty; schedule = [];
      peak_mem = peak; latency = lat; hotspots = Util.Int_set.empty;
      ftree_stale = false }
  in
  let mode = Search.Min_latency { mem_limit = 100 } in
  (* both under the limit: latency decides *)
  Alcotest.(check bool) "latency decides under limit" true
    (Search.better_than mode (mk 80 1.0) (mk 90 2.0));
  (* over the limit: memory decides *)
  Alcotest.(check bool) "memory decides over limit" true
    (Search.better_than mode (mk 150 5.0) (mk 200 1.0));
  (* under beats over *)
  Alcotest.(check bool) "under beats over" true
    (Search.better_than mode (mk 100 9.0) (mk 101 1.0))

let test_history_monotone () =
  let c = cache () in
  let g = subject () in
  let r = Search.optimize_memory ~config:(config 2.0) c ~overhead:0.10 g in
  (* the recorded history of bests never regresses in the objective *)
  let rec check = function
    | (_, p1, _) :: ((_, p2, _) :: _ as rest) ->
        Alcotest.(check bool) "peak non-increasing" true (p2 <= p1);
        check rest
    | _ -> ()
  in
  check r.history;
  Alcotest.(check bool) "history non-empty" true (r.history <> [])

let test_stats_populated () =
  let c = cache () in
  let g = subject () in
  let r = Search.optimize_memory ~config:(config 1.0) c ~overhead:0.10 g in
  let st = r.stats in
  Alcotest.(check bool) "iterations > 0" true (st.iterations > 0);
  Alcotest.(check bool) "transforms counted" true (st.n_transform > 0);
  Alcotest.(check bool) "schedules counted" true (st.n_sched > 0);
  Alcotest.(check bool) "simulations counted" true (st.n_simul > 0);
  Alcotest.(check bool) "hashes counted" true (st.n_hash > 0)

let test_ablation_settings_run () =
  let c = cache () in
  let g = subject () in
  List.iter
    (fun ablation ->
      let config = { (config 0.6) with ablation } in
      let r = Search.optimize_memory ~config c ~overhead:0.10 g in
      Alcotest.(check bool) "valid best schedule" true
        (Graph.is_valid_order r.best.graph r.best.schedule))
    [
      { Search.default_ablation with use_ftree_heuristic = false };
      { Search.default_ablation with restrict_sched_rules = false };
      { Search.default_ablation with max_level = 2 };
      { Search.default_ablation with max_level = 8 };
    ]

let test_deterministic () =
  let c = cache () in
  let g = subject () in
  let cfg = { (config 1e9) with max_iterations = 25 } in
  let r1 = Search.optimize_memory ~config:cfg c ~overhead:0.10 g in
  let r2 = Search.optimize_memory ~config:cfg c ~overhead:0.10 g in
  Alcotest.(check int) "same peak with iteration-bounded budget"
    r1.best.peak_mem r2.best.peak_mem

let test_latency_history_improves () =
  let c = cache () in
  let g = subject () in
  let base = Simulator.run c g (Graph.program_order g) in
  let r = Search.optimize_latency ~config:(config 2.0) c ~mem_ratio:0.8 g in
  let limit = int_of_float (float_of_int base.peak_mem *. 0.8) in
  (* once the budget is met, recorded bests have non-increasing latency *)
  let feasible =
    List.filter (fun (_, p, _) -> p <= limit) r.history
  in
  let rec check = function
    | (_, _, l1) :: ((_, _, l2) :: _ as rest) ->
        Alcotest.(check bool) "latency non-increasing" true (l2 <= l1 +. 1e-12);
        check rest
    | _ -> ()
  in
  check feasible

let suite =
  [
    tc "memory mode respects constraint" test_memory_mode_respects_constraint;
    tc "latency-mode history improves" test_latency_history_improves;
    tc "latency mode respects constraint" test_latency_mode_respects_constraint;
    tc "BetterThan ordering" test_better_than_ordering;
    tc "history monotone" test_history_monotone;
    tc "stats populated" test_stats_populated;
    tc "ablation settings run" test_ablation_settings_run;
    tc "deterministic under iteration budget" test_deterministic;
  ]
