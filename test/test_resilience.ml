(** Resilience: fault-injector mechanics, bounded retry, crash-safe
    checkpoints — and the chaos guarantees of the supervised search:
    transient injected faults leave the result bit-identical, persistent
    ones are quarantined with diagnostics, budget exhaustion returns
    best-so-far, and a SIGTERM'd search resumes from its checkpoint. *)

open Magis
open Helpers

(* ------------------------------------------------------------------ *)
(* Fault injector                                                      *)
(* ------------------------------------------------------------------ *)

let test_fault_injector () =
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  Fault.arm [ { Fault.site = "s"; at = 2; kind = Fault.Exception } ];
  Fault.hit "s";
  Alcotest.check_raises "second visit fires"
    (Fault.Injected ("s", 2))
    (fun () -> Fault.hit "s");
  (* the trigger count is consumed: the site is clean again *)
  Fault.hit "s";
  Alcotest.(check int) "visits counted" 3 (Fault.visits "s");
  Alcotest.(check int) "one fault fired" 1 (List.length (Fault.fired ()));
  Fault.arm [ { Fault.site = "c"; at = 1; kind = Fault.Nan_cost } ];
  Alcotest.(check bool) "cost corrupted to nan" true
    (Float.is_nan (Fault.cost "c" 1.0));
  Alcotest.(check (float 0.0)) "next cost clean" 1.0 (Fault.cost "c" 1.0);
  Fault.disarm ();
  Alcotest.(check int) "disarmed counts nothing" 0 (Fault.visits "c");
  (* disarmed sites are free *)
  Fault.hit "s";
  Alcotest.(check (float 0.0)) "disarmed cost is identity" 2.5
    (Fault.cost "c" 2.5)

let test_fault_seeded_and_burst () =
  let pairs = [ ("a", Fault.Exception); ("b", Fault.Nan_cost) ] in
  let p1 = Fault.seeded ~seed:9 ~lo:10 ~hi:50 pairs in
  let p2 = Fault.seeded ~seed:9 ~lo:10 ~hi:50 pairs in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  Alcotest.(check int) "one spec per pair" 2 (List.length p1);
  List.iter
    (fun (s : Fault.spec) ->
      if s.at < 10 || s.at >= 50 then
        Alcotest.failf "site %s planted outside [10, 50): %d" s.site s.at)
    p1;
  Alcotest.(check bool) "different seed, different plan" true
    (p1 <> Fault.seeded ~seed:10 ~lo:10 ~hi:50 pairs);
  let b = Fault.burst ~site:"x" ~at:7 ~len:3 Fault.Exception in
  Alcotest.(check (list int)) "burst covers consecutive visits" [ 7; 8; 9 ]
    (List.map (fun (s : Fault.spec) -> s.at) b)

(* ------------------------------------------------------------------ *)
(* Retry                                                               *)
(* ------------------------------------------------------------------ *)

let fast = { Retry.attempts = 3; base_delay = 0.0; multiplier = 1.0 }

let test_retry_transient () =
  let n = ref 0 in
  match
    Retry.run ~policy:fast (fun () ->
        incr n;
        if !n < 3 then failwith "flaky";
        !n)
  with
  | Ok v -> Alcotest.(check int) "succeeded on third execution" 3 v
  | Error _ -> Alcotest.fail "transient failure must be retried through"

let test_retry_exhausted () =
  let n = ref 0 in
  match
    Retry.run
      ~policy:{ fast with attempts = 2 }
      (fun () ->
        incr n;
        failwith "down")
  with
  | Ok _ -> Alcotest.fail "persistent failure cannot succeed"
  | Error f ->
      Alcotest.(check int) "executions = 1 + attempts" 3 f.attempts;
      Alcotest.(check int) "function ran that many times" 3 !n;
      (match f.exn with
      | Failure msg -> Alcotest.(check string) "last exception kept" "down" msg
      | e -> Alcotest.failf "wrong exception kept: %s" (Printexc.to_string e))

let test_retry_fatal_reraises () =
  let n = ref 0 in
  (try
     ignore
       (Retry.run ~policy:fast (fun () ->
            incr n;
            raise (Assert_failure ("never retry me", 0, 0))));
     Alcotest.fail "fatal exception must escape"
   with Assert_failure _ -> ());
  Alcotest.(check int) "fatal ran exactly once" 1 !n

(* ------------------------------------------------------------------ *)
(* Checkpoint files                                                    *)
(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "magis_test" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () -> f path

let expect_incompatible what f =
  match f () with
  | _ -> Alcotest.failf "%s: load must raise Incompatible" what
  | exception Checkpoint.Incompatible _ -> ()

let test_checkpoint_roundtrip () =
  with_temp_file @@ fun path ->
  let payload = List.init 100 string_of_int in
  Checkpoint.save ~path ~version:3 ~fingerprint:42L payload;
  Alcotest.(check bool) "exists" true (Checkpoint.exists path);
  let restored : string list =
    Checkpoint.load ~path ~version:3 ~fingerprint:42L
  in
  Alcotest.(check (list string)) "payload round-trips" payload restored;
  expect_incompatible "version mismatch" (fun () ->
      (Checkpoint.load ~path ~version:4 ~fingerprint:42L : string list));
  expect_incompatible "fingerprint mismatch" (fun () ->
      (Checkpoint.load ~path ~version:3 ~fingerprint:43L : string list));
  expect_incompatible "missing file" (fun () ->
      (Checkpoint.load ~path:(path ^ ".nope") ~version:3 ~fingerprint:42L
        : string list))

let test_checkpoint_detects_corruption () =
  with_temp_file @@ fun path ->
  Checkpoint.save ~path ~version:1 ~fingerprint:7L [| 1.5; 2.5; 3.5 |];
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let bytes = Bytes.create len in
  really_input ic bytes 0 len;
  close_in ic;
  (* flip a bit in the payload's last byte: the digest must catch it *)
  Bytes.set bytes (len - 1)
    (Char.chr (Char.code (Bytes.get bytes (len - 1)) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc;
  expect_incompatible "corrupted payload" (fun () ->
      (Checkpoint.load ~path ~version:1 ~fingerprint:7L : float array));
  (* truncation is detected too *)
  let oc = open_out_bin path in
  output_bytes oc (Bytes.sub bytes 0 (len - 4));
  close_out oc;
  expect_incompatible "truncated file" (fun () ->
      (Checkpoint.load ~path ~version:1 ~fingerprint:7L : float array))

(* ------------------------------------------------------------------ *)
(* Chaos: the supervised search under injected faults                  *)
(* ------------------------------------------------------------------ *)

let randnet ?(cells = 1) seed =
  Randnet.build
    ~cfg:
      { Randnet.cells; nodes_per_cell = 4; channels = 8; image = 8; batch = 2;
        seed }
    ()

let run_with ?(max_iterations = 8) ?(cfg = fun c -> c) ~jobs g =
  let config =
    cfg
      { Search.default_config with max_iterations; time_budget = 1e9; jobs }
  in
  Search.optimize_memory ~config (cache ()) ~overhead:0.10 g

let check_same_best what (r1 : Search.result) (r2 : Search.result) =
  Alcotest.(check int)
    (what ^ ": identical peak memory")
    r1.best.peak_mem r2.best.peak_mem;
  Alcotest.(check (float 0.0))
    (what ^ ": identical latency")
    r1.best.latency r2.best.latency;
  Alcotest.(check (list int))
    (what ^ ": identical schedule")
    r1.best.schedule r2.best.schedule

(** One planted transient fault per site: the supervisor's retry must
    absorb it and reproduce the fault-free search exactly — same best,
    same iteration count, nothing quarantined — at any jobs count. *)
let test_chaos_transient_identity () =
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  let g = randnet 5 in
  Fault.observe ();
  let clean = run_with ~jobs:1 g in
  let visits =
    (* sites the search never reaches (e.g. the socket-layer sites,
       exercised by test_serve instead) cannot fire here *)
    List.filter_map
      (fun s ->
        let v = Fault.visits s in
        if v = 0 then None else Some (s, v))
      Fault.sites
  in
  Fault.disarm ();
  Alcotest.(check (list string)) "fault-free run has no diagnostics" []
    (List.map Diagnostic.to_string clean.diagnostics);
  List.iter
    (fun (site, v) ->
      (* skip the early visits: the baseline simulation and initial
         M-state run outside the supervised expansion *)
      let lo = max 4 (v / 3) and hi = max 5 (2 * v / 3) in
      let kinds =
        [ ("exception", Fault.Exception) ]
        @ (if site = "op_cost" then [ ("nan", Fault.Nan_cost) ] else [])
      in
      List.iter
        (fun (kname, kind) ->
          List.iter
            (fun jobs ->
              let what = Printf.sprintf "%s@%s jobs=%d" kname site jobs in
              Fault.arm (Fault.seeded ~seed:5 ~lo ~hi [ (site, kind) ]);
              let r = run_with ~jobs g in
              let fired = List.length (Fault.fired ()) in
              Fault.disarm ();
              Alcotest.(check int) (what ^ ": fault fired") 1 fired;
              check_same_best what clean r;
              Alcotest.(check int)
                (what ^ ": same iterations")
                clean.stats.iterations r.stats.iterations;
              Alcotest.(check bool) (what ^ ": retried") true
                (r.stats.n_retried >= 1);
              Alcotest.(check int) (what ^ ": nothing quarantined") 0
                r.stats.n_quarantined)
            [ 1; 2 ])
        kinds)
    visits

(** A long burst no bounded retry can outrun: candidates must be
    quarantined with structured diagnostics, and the search must still
    return a usable result instead of crashing. *)
let test_chaos_persistent_quarantine () =
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Trace.clear ())
  @@ fun () ->
  let g = randnet 5 in
  Fault.observe ();
  let clean = run_with ~jobs:1 g in
  let v = Fault.visits "simulator" in
  Fault.disarm ();
  Fault.arm
    (Fault.burst ~site:"simulator" ~at:(max 4 (v / 3)) ~len:400
       Fault.Exception);
  (* a chaos run under tracing must leave its marks in the event stream *)
  Trace.enable ();
  let r = run_with ~jobs:1 g in
  Trace.disable ();
  Fault.disarm ();
  let names =
    List.map (fun (e : Trace.event) -> e.name) (Trace.events ())
  in
  Alcotest.(check bool) "trace records quarantine instants" true
    (List.mem "quarantine" names);
  Alcotest.(check bool) "trace records injected faults" true
    (List.mem "fault-injected" names);
  Alcotest.(check bool) "candidates quarantined" true
    (r.stats.n_quarantined > 0);
  Alcotest.(check bool) "injected-fault diagnostics recorded" true
    (Diagnostic.has_check "injected-fault" r.diagnostics);
  Alcotest.(check int) "one diagnostic per quarantine" r.stats.n_quarantined
    (List.length r.diagnostics);
  Alcotest.(check bool) "still returns a valid best" true
    (r.best.peak_mem > 0 && r.best.peak_mem <= clean.initial.peak_mem)

(** With supervision off, the legacy all-or-nothing semantics are
    preserved: the first failing candidate aborts the whole search. *)
let test_chaos_unsupervised_aborts () =
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  let g = randnet 5 in
  Fault.observe ();
  let _ = run_with ~jobs:1 g in
  let v = Fault.visits "simulator" in
  Fault.disarm ();
  Fault.arm
    (Fault.seeded ~seed:5
       ~lo:(max 4 (v / 3))
       ~hi:(max 5 (2 * v / 3))
       [ ("simulator", Fault.Exception) ]);
  (match
     run_with ~cfg:(fun c -> { c with Search.supervise = false }) ~jobs:1 g
   with
  | _ -> Alcotest.fail "unsupervised search must re-raise the failure"
  | exception Pool.Task_error _ -> ());
  Fault.disarm ()

(* ------------------------------------------------------------------ *)
(* Graceful degradation                                                *)
(* ------------------------------------------------------------------ *)

(** Budget exhaustion never raises: the search returns best-so-far with
    at least one completed iteration and records the ladder step. *)
let test_budget_exhaustion_best_so_far () =
  let g = randnet ~cells:2 11 in
  let r =
    run_with
      ~max_iterations:max_int
      ~cfg:(fun c -> { c with Search.time_budget = 0.3 })
      ~jobs:1 g
  in
  Alcotest.(check bool) "made progress" true (r.stats.iterations > 0);
  Alcotest.(check bool) "returned a state" true (r.best.peak_mem > 0);
  Alcotest.(check bool) "ladder recorded best-so-far" true
    (List.exists (fun (_, step) -> step = "best-so-far") r.stats.degrade_steps);
  Alcotest.(check bool) "not an interrupt" false r.interrupted

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume of the search                                   *)
(* ------------------------------------------------------------------ *)

let ckpt path resume =
  Some { Search.ckpt_path = path; ckpt_every = 1e9; ckpt_resume = resume }

(** Stopping after N iterations and resuming for M more reproduces the
    uninterrupted (N+M)-iteration search bit-identically — including
    the work counters, which the snapshot carries forward. *)
let test_checkpoint_resume_identity () =
  with_temp_file @@ fun path ->
  Sys.remove path;
  let g = randnet 7 in
  let r6 =
    run_with ~max_iterations:6
      ~cfg:(fun c -> { c with Search.checkpoint = ckpt path false })
      ~jobs:1 g
  in
  Alcotest.(check bool) "final checkpoint written" true
    (r6.stats.n_checkpoints >= 1 && Checkpoint.exists path);
  let resumed =
    run_with ~max_iterations:12
      ~cfg:(fun c -> { c with Search.checkpoint = ckpt path true })
      ~jobs:1 g
  in
  let fresh = run_with ~max_iterations:12 ~jobs:1 g in
  check_same_best "resumed vs fresh" resumed fresh;
  Alcotest.(check int) "iterations continue across the resume" 12
    resumed.stats.iterations;
  Alcotest.(check int) "same schedules run in total" fresh.stats.n_sched
    resumed.stats.n_sched;
  Alcotest.(check int) "same simulations run in total" fresh.stats.n_simul
    resumed.stats.n_simul;
  Alcotest.(check int) "same duplicates filtered" fresh.stats.n_filtered
    resumed.stats.n_filtered

(** A checkpoint of one workload must refuse to resume another. *)
let test_checkpoint_rejects_foreign_run () =
  with_temp_file @@ fun path ->
  Sys.remove path;
  let _ =
    run_with ~max_iterations:3
      ~cfg:(fun c -> { c with Search.checkpoint = ckpt path false })
      ~jobs:1 (randnet 7)
  in
  match
    run_with ~max_iterations:6
      ~cfg:(fun c -> { c with Search.checkpoint = ckpt path true })
      ~jobs:1 (randnet 8)
  with
  | _ -> Alcotest.fail "foreign checkpoint must be rejected"
  | exception Checkpoint.Incompatible _ -> ()

(** SIGTERM mid-search: the run returns early with [interrupted], the
    checkpoint holds the frontier, and resuming continues exactly where
    the uninterrupted search would have been. *)
let test_sigterm_checkpoint_resume () =
  with_temp_file @@ fun path ->
  Sys.remove path;
  (* backstop handler: if the search somehow finishes before the killer
     fires, the stray SIGTERM must not take down the test runner *)
  let prev = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> ())) in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigterm prev)
  @@ fun () ->
  let g = randnet ~cells:2 13 in
  let pid = Unix.getpid () in
  let killer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.4;
        Unix.kill pid Sys.sigterm)
  in
  let r =
    run_with ~max_iterations:max_int
      ~cfg:(fun c -> { c with Search.checkpoint = ckpt path false })
      ~jobs:1 g
  in
  Domain.join killer;
  Alcotest.(check bool) "run reports the interrupt" true r.interrupted;
  Alcotest.(check bool) "made progress before the interrupt" true
    (r.stats.iterations > 0);
  Alcotest.(check bool) "checkpoint written" true (Checkpoint.exists path);
  let total = r.stats.iterations + 2 in
  let resumed =
    run_with ~max_iterations:total
      ~cfg:(fun c -> { c with Search.checkpoint = ckpt path true })
      ~jobs:1 g
  in
  let fresh = run_with ~max_iterations:total ~jobs:1 g in
  check_same_best "post-interrupt resume vs fresh" resumed fresh;
  Alcotest.(check int) "iterations continue" total resumed.stats.iterations

let suite =
  [
    tc "fault injector fires by visit count" test_fault_injector;
    tc "seeded plans and bursts are deterministic" test_fault_seeded_and_burst;
    tc "retry absorbs transient failures" test_retry_transient;
    tc "retry gives up after the budget" test_retry_exhausted;
    tc "retry re-raises fatal exceptions" test_retry_fatal_reraises;
    tc "checkpoint round-trips and rejects mismatches"
      test_checkpoint_roundtrip;
    tc "checkpoint detects corruption and truncation"
      test_checkpoint_detects_corruption;
    tc "transient faults leave the search bit-identical"
      test_chaos_transient_identity;
    tc "persistent faults are quarantined, never fatal"
      test_chaos_persistent_quarantine;
    tc "unsupervised mode keeps legacy abort semantics"
      test_chaos_unsupervised_aborts;
    tc "budget exhaustion returns best-so-far" test_budget_exhaustion_best_so_far;
    tc "checkpoint/resume reproduces the uninterrupted run"
      test_checkpoint_resume_identity;
    tc "checkpoints of foreign runs are rejected"
      test_checkpoint_rejects_foreign_run;
    tc "SIGTERM saves state and resumes bit-identically"
      test_sigterm_checkpoint_resume;
  ]
