(** Allocator interference checker: clean on every zoo model, and each
    corruption of a valid plan is caught by the matching check. *)

open Magis
open Helpers

(** Diamond with two simultaneously live interior tensors. *)
let diamond () =
  let g = Graph.empty in
  let sh = Shape.create [ 8; 8 ] in
  let g, x = Graph.add_input ~label:"x" g Op.Placeholder sh in
  let g, a = Graph.add g (Op.Unary Op.Relu) [ x ] in
  let g, b = Graph.add g (Op.Unary Op.Exp) [ a ] in
  let g, c = Graph.add g (Op.Unary Op.Neg) [ a ] in
  let g, _ = Graph.add g (Op.Binary Op.Add) [ b; c ] in
  verified ~what:"diamond" g

let plan_of g =
  let order = Graph.topo_order g in
  let lt = Lifetime.analyze g order in
  (lt, Allocator.plan lt)

let assert_caught what check diags =
  if Diagnostic.is_clean diags then
    Alcotest.failf "%s: corruption not caught" what;
  if not (Diagnostic.has_check check diags) then
    Alcotest.failf "%s: expected a %s error, got:@\n%s" what check
      (Diagnostic.report_to_string diags)

let test_clean_plan () =
  let g = diamond () in
  let r = Interfere.check g (Graph.topo_order g) in
  Alcotest.(check bool) "clean" true (Interfere.is_clean r);
  Alcotest.(check bool) "has buffers" true (r.Interfere.n_buffers > 0);
  Alcotest.(check bool) "plan valid" true (Allocator.is_valid r.Interfere.arena)

(** Every Table-2 zoo workload, program order and the memory-greedy
    reorder: the planner must produce interference-free layouts on all
    of them. *)
let test_zoo_interference_free () =
  List.iter
    (fun (w : Zoo.workload) ->
      let g = w.build Zoo.Quick in
      List.iter
        (fun (sched_name, order) ->
          let r = Interfere.check g order in
          if not (Interfere.is_clean r) then
            Alcotest.failf "%s (%s): %s" w.name sched_name
              (Diagnostic.report_to_string
                 (Diagnostic.errors r.Interfere.diags)))
        [ ("program order", Graph.program_order g);
          ("greedy reorder", Reorder.schedule ~max_states:0 g) ])
    Zoo.all

let test_corrupt_overlap () =
  let g = diamond () in
  let lt, alloc = plan_of g in
  (* collapse every buffer onto offset 0: simultaneously live tensors
     now share addresses *)
  let corrupt =
    { alloc with
      Allocator.placements =
        List.map
          (fun (p : Allocator.placement) -> { p with Allocator.offset = 0 })
          alloc.Allocator.placements }
  in
  assert_caught "overlap" "alloc-overlap" (Interfere.check_plan g lt corrupt);
  Alcotest.(check bool) "is_valid rejects it" false
    (Allocator.is_valid corrupt);
  Alcotest.(check bool) "overlaps lists pairs" true
    (Allocator.overlaps corrupt <> [])

let test_corrupt_arena_overflow () =
  let g = diamond () in
  let lt, alloc = plan_of g in
  let corrupt = { alloc with Allocator.arena_size = 1 } in
  assert_caught "overflow" "arena-overflow" (Interfere.check_plan g lt corrupt)

let test_corrupt_interval () =
  let g = diamond () in
  let lt, alloc = plan_of g in
  let corrupt =
    match alloc.Allocator.placements with
    | p :: rest ->
        { alloc with
          Allocator.placements =
            { p with Allocator.birth = p.Allocator.birth + 1 } :: rest }
    | [] -> Alcotest.fail "no placements"
  in
  assert_caught "stale interval" "interval-mismatch"
    (Interfere.check_plan g lt corrupt)

let test_corrupt_missing_placement () =
  let g = diamond () in
  let lt, alloc = plan_of g in
  let corrupt =
    { alloc with
      Allocator.placements = List.tl alloc.Allocator.placements }
  in
  assert_caught "missing placement" "missing-placement"
    (Interfere.check_plan g lt corrupt)

let test_corrupt_size () =
  let g = diamond () in
  let lt, alloc = plan_of g in
  let corrupt =
    match alloc.Allocator.placements with
    | p :: rest ->
        { alloc with
          Allocator.placements =
            { p with Allocator.bytes = p.Allocator.bytes / 2 } :: rest }
    | [] -> Alcotest.fail "no placements"
  in
  assert_caught "wrong size" "size-mismatch"
    (Interfere.check_plan g lt corrupt)

(** A view outliving its base's buffer is the hazard an eliding runtime
    would hit: reported as a warning, never an error. *)
let test_view_alias_warning () =
  let g = Graph.empty in
  let sh = Shape.create [ 4; 6 ] in
  let g, x = Graph.add_input ~label:"x" g Op.Placeholder sh in
  let g, a = Graph.add g (Op.Unary Op.Relu) [ x ] in
  let g, v = Graph.add g (Op.Transpose [| 1; 0 |]) [ a ] in
  let g, _ = Graph.add g (Op.Unary Op.Relu) [ v ] in
  let g = verified ~what:"view chain" g in
  let r = Interfere.check g (Graph.topo_order g) in
  Alcotest.(check bool) "no errors" true (Interfere.is_clean r);
  if not (Diagnostic.has_check "view-alias" r.Interfere.diags) then
    Alcotest.failf "expected a view-alias warning, got:@\n%s"
      (Diagnostic.report_to_string r.Interfere.diags)

let suite =
  [
    tc "clean plan" test_clean_plan;
    tc "zoo models interference-free" test_zoo_interference_free;
    tc "corrupt: overlapping offsets" test_corrupt_overlap;
    tc "corrupt: arena overflow" test_corrupt_arena_overflow;
    tc "corrupt: stale interval" test_corrupt_interval;
    tc "corrupt: missing placement" test_corrupt_missing_placement;
    tc "corrupt: wrong size" test_corrupt_size;
    tc "view-alias warning" test_view_alias_warning;
  ]
