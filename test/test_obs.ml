(** Observability: JSON round-trips, span nesting and ordering, the
    zero-allocation disabled fast path, histogram bucket edges,
    Chrome-trace well-formedness (parsed back with the strict parser),
    the memory-timeline/simulator peak cross-check, and the search
    profile JSONL round-trip on a seeded Randnet. *)

open Magis
open Helpers

(* Every test that touches the process-wide tracer or metrics registry
   restores the default (disabled) state on exit so the rest of the
   suite keeps its zero-overhead baseline. *)
let with_trace f =
  Fun.protect ~finally:Trace.clear @@ fun () ->
  Trace.enable ();
  f ()

let with_metrics f =
  Fun.protect ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
  @@ fun () ->
  Metrics.set_enabled true;
  f ()

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("s", Json.String "a\"b\\c\n\t\x01é");
        ("i", Json.Int (-42));
        ("f", Json.Float 2.5);
        ("whole", Json.Float 3.0);
        ("l", Json.List [ Json.Null; Json.Bool true; Json.Bool false ]);
        ("nested", Json.Obj [ ("empty", Json.List []) ]) ]
  in
  let s = Json.to_string v in
  Alcotest.(check bool) "round-trips exactly" true (Json.of_string s = v);
  (* whole floats must stay floats across the round-trip *)
  Alcotest.(check bool) "3.0 renders with a fractional part" true
    (let sub = "\"whole\":3.0" in
     let rec find i =
       i + String.length sub <= String.length s
       && (String.sub s i (String.length sub) = sub || find (i + 1))
     in
     find 0);
  (* non-finite floats degrade to null instead of invalid JSON *)
  Alcotest.(check string) "nan becomes null" "null"
    (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf becomes null" "null"
    (Json.to_string (Json.Float Float.infinity))

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | v -> Alcotest.failf "%S parsed as %s" s (Json.to_string v)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1,}";
  bad "tru";
  bad "1 2";
  (* trailing garbage *)
  bad "\"\\x\"";
  Alcotest.(check bool) "big literal parses as float" true
    (match Json.of_string "123456789012345678901234567890" with
    | Json.Float _ -> true
    | _ -> false)

let test_json_resource_limits () =
  (* A document nested deeper than the cap must raise a structured
     error, not blow the stack: build one 4x deeper than the default. *)
  let depth = 4 * Json.default_max_depth in
  let deep =
    String.make depth '[' ^ "1" ^ String.make depth ']'
  in
  (match Json.of_string deep with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "hostile nesting accepted");
  (* same for objects *)
  let deep_obj =
    let b = Buffer.create (8 * depth) in
    for _ = 1 to depth do Buffer.add_string b "{\"k\":" done;
    Buffer.add_string b "0";
    for _ = 1 to depth do Buffer.add_char b '}' done;
    Buffer.contents b
  in
  (match Json.of_string deep_obj with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "hostile object nesting accepted");
  (* a custom cap applies: depth 3 is fine at the default, rejected at 2 *)
  Alcotest.(check bool) "shallow doc passes default cap" true
    (Json.of_string "[[[1]]]" = Json.List [ Json.List [ Json.List [ Json.Int 1 ] ] ]);
  (match Json.of_string ~max_depth:2 "[[[1]]]" with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "max_depth:2 accepted depth-3 document");
  (* max_len rejects before parsing; at the limit it parses *)
  (match Json.of_string ~max_len:4 "[1,2,3]" with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "over-length document accepted");
  Alcotest.(check bool) "document at the length limit parses" true
    (Json.of_string ~max_len:7 "[1,2,3]" = Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ])

(* Seeded fuzz: random values must survive emit→parse bit-identically,
   and random byte soup must either parse or raise [Parse_error] — any
   other exception (stack overflow, [Invalid_argument], …) is a bug in
   the parser's input validation. *)
let test_json_fuzz () =
  let rng = Random.State.make [| 0x0b5; 9 |] in
  let rand_string () =
    String.init (Random.State.int rng 12) (fun _ ->
        Char.chr (Random.State.int rng 256))
  in
  let rec rand_value depth =
    match Random.State.int rng (if depth >= 4 then 5 else 7) with
    | 0 -> Json.Null
    | 1 -> Json.Bool (Random.State.bool rng)
    | 2 -> Json.Int (Random.State.int rng 10_000 - 5_000)
    | 3 ->
        (* finite floats only: non-finite deliberately emit as null *)
        Json.Float (Random.State.float rng 1e6 -. 5e5)
    | 4 -> Json.String (rand_string ())
    | 5 ->
        Json.List
          (List.init (Random.State.int rng 4) (fun _ -> rand_value (depth + 1)))
    | _ ->
        Json.Obj
          (List.init (Random.State.int rng 4) (fun i ->
               (Printf.sprintf "k%d" i, rand_value (depth + 1))))
  in
  for _ = 1 to 500 do
    let v = rand_value 0 in
    let s = Json.to_string v in
    if Json.of_string s <> v then
      Alcotest.failf "round-trip changed %s" s
  done;
  for _ = 1 to 2_000 do
    let s = String.init (Random.State.int rng 64) (fun _ ->
        Char.chr (Random.State.int rng 256))
    in
    match Json.of_string ~max_depth:32 ~max_len:64 s with
    | _ -> ()
    | exception Json.Parse_error _ -> ()
    | exception e ->
        Alcotest.failf "parser leaked %s on %S" (Printexc.to_string e) s
  done

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_monotonic () =
  let prev = ref (Trace.now ()) in
  for _ = 1 to 10_000 do
    let t = Trace.now () in
    if t < !prev then Alcotest.failf "clock went backwards: %g < %g" t !prev;
    prev := t
  done

let test_span_nesting_and_ordering () =
  with_trace @@ fun () ->
  Trace.with_span ~cat:"t" "outer" (fun () ->
      Trace.instant ~cat:"t" ~args:[ ("k", "v") ] "mark";
      Trace.with_span ~cat:"t" "inner" (fun () -> ignore (Sys.opaque_identity 0)));
  Trace.disable ();
  let evs = Trace.events () in
  Alcotest.(check (list string)) "completion order: instant, inner, outer"
    [ "mark"; "inner"; "outer" ]
    (List.map (fun (e : Trace.event) -> e.name) evs);
  let find n = List.find (fun (e : Trace.event) -> e.name = n) evs in
  let dur e =
    match (e : Trace.event).kind with
    | Trace.Span d -> d
    | Trace.Instant -> Alcotest.failf "%s is not a span" e.name
  in
  let outer = find "outer" and inner = find "inner" and mark = find "mark" in
  Alcotest.(check bool) "inner starts after outer" true
    (inner.ts >= outer.ts);
  Alcotest.(check bool) "inner nested within outer" true
    (inner.ts +. dur inner <= outer.ts +. dur outer +. 1e-9);
  Alcotest.(check bool) "instant inside outer" true
    (mark.ts >= outer.ts && mark.ts <= outer.ts +. dur outer);
  (match mark.kind with
  | Trace.Instant -> ()
  | Trace.Span _ -> Alcotest.fail "mark must be an instant");
  Alcotest.(check (list (pair string string))) "args preserved"
    [ ("k", "v") ] mark.args;
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ())

let test_ring_overflow_keeps_newest () =
  with_trace @@ fun () ->
  Trace.clear ();
  Trace.enable ~capacity:4 ();
  for i = 1 to 10 do
    Trace.instant (string_of_int i)
  done;
  Trace.disable ();
  Alcotest.(check (list string)) "last four, oldest first"
    [ "7"; "8"; "9"; "10" ]
    (List.map (fun (e : Trace.event) -> e.name) (Trace.events ()));
  Alcotest.(check int) "overflow counted" 6 (Trace.dropped ())

let span_body () = ignore (Sys.opaque_identity 1)

let test_disabled_tracer_allocates_nothing () =
  (* the suite default is disabled; make it explicit anyway *)
  Trace.clear ();
  Metrics.set_enabled false;
  let c = Metrics.counter "test.obs.noalloc" in
  let h = Metrics.histogram "test.obs.noalloc_h" in
  (* warm up so any one-time allocation is out of the measured window *)
  Trace.instant "x";
  Trace.with_span "x" span_body;
  Metrics.incr c;
  Metrics.observe h 1.0;
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Trace.instant "x";
    Trace.with_span "x" span_body;
    Metrics.incr c;
    Metrics.observe h 1.0
  done;
  let dw = Gc.minor_words () -. w0 in
  (* 40k disabled calls: anything per-call would cost >= 80k words.  A
     small constant slack absorbs the Gc.minor_words boxing itself. *)
  if dw > 100.0 then
    Alcotest.failf "disabled instrumentation allocated %.0f minor words" dw;
  Alcotest.(check int) "disabled counter never moved" 0 (Metrics.counter_value c)

let test_chrome_trace_parses_back () =
  with_trace @@ fun () ->
  Trace.with_span ~cat:"t" ~args:[ ("a", "1") ] "work" (fun () ->
      Trace.instant "tick");
  Trace.disable ();
  let doc = Json.of_string (Trace.to_chrome ()) in
  let evs =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let phases =
    List.filter_map
      (fun e ->
        match Json.member "ph" e with
        | Some (Json.String p) -> Some p
        | _ -> None)
    evs
  in
  Alcotest.(check int) "every event has a phase" (List.length evs)
    (List.length phases);
  Alcotest.(check bool) "has a complete event" true (List.mem "X" phases);
  Alcotest.(check bool) "has an instant" true (List.mem "i" phases);
  List.iter
    (fun e ->
      match (Json.member "ph" e, Json.member "ts" e) with
      | Some (Json.String "M"), _ -> ()
      | _, Some ts ->
          let ts = Option.get (Json.to_float ts) in
          if ts < 0.0 then Alcotest.failf "negative timestamp %g" ts
      | _ -> Alcotest.fail "event without timestamp")
    evs

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_and_gauge () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test.obs.c" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "counter sums" 42 (Metrics.counter_value c);
  Alcotest.(check bool) "same name, same counter" true
    (Metrics.counter_value (Metrics.counter "test.obs.c") = 42);
  let g = Metrics.gauge "test.obs.g" in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge holds last write" 2.5
    (Metrics.gauge_value g);
  (match Metrics.gauge "test.obs.c" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must raise");
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes counters" 0 (Metrics.counter_value c)

let test_histogram_bucket_edges () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "test.obs.h" in
  (* bucket i covers (edges.(i-1), edges.(i)]: boundary values land in
     the bucket they bound from above *)
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.0000001; 2.0; 4.0; 4.5 ];
  Alcotest.(check (array int)) "boundary observations inclusive above"
    [| 2; 2; 1; 1 |]
    (Metrics.histogram_counts h);
  Alcotest.(check (float 1e-6)) "sum accumulates" 13.0000001
    (Metrics.histogram_sum h);
  (match Metrics.histogram ~buckets:[| 3.0 |] "test.obs.h" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "edge mismatch must raise");
  (match Metrics.histogram ~buckets:[| 2.0; 2.0 |] "test.obs.h2" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-increasing edges must raise")

let test_metrics_json_snapshot () =
  with_metrics @@ fun () ->
  Metrics.add (Metrics.counter "test.obs.snap") 7;
  Metrics.set (Metrics.gauge "test.obs.snapg") 0.5;
  Metrics.observe (Metrics.histogram "test.obs.snaph") 1e-3;
  let doc = Json.of_string (Metrics.to_json ()) in
  let field section name =
    match Json.member section doc with
    | Some o -> Json.member name o
    | None -> None
  in
  Alcotest.(check (option int)) "counter exported" (Some 7)
    (Option.bind (field "counters" "test.obs.snap") Json.to_int);
  Alcotest.(check bool) "gauge exported" true
    (Option.bind (field "gauges" "test.obs.snapg") Json.to_float = Some 0.5);
  Alcotest.(check bool) "histogram exported" true
    (field "histograms" "test.obs.snaph" <> None);
  let text = Metrics.to_text () in
  Alcotest.(check bool) "text rendering mentions the counter" true
    (let sub = "test.obs.snap 7" in
     let rec find i =
       i + String.length sub <= String.length text
       && (String.sub text i (String.length sub) = sub || find (i + 1))
     in
     find 0)

(* ------------------------------------------------------------------ *)
(* Timeline and the simulator cross-check                              *)
(* ------------------------------------------------------------------ *)

let test_timeline_chrome_lanes () =
  let spans =
    [ { Timeline.name = "a"; lane = Timeline.Compute; t_start = 0.0;
        t_dur = 1e-3; bytes = 64 };
      { Timeline.name = "b"; lane = Timeline.Copy; t_start = 5e-4;
        t_dur = 2e-3; bytes = 0 } ]
  in
  let doc = Json.of_string (Timeline.chrome spans) in
  let evs =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let tids =
    List.filter_map
      (fun e ->
        match (Json.member "ph" e, Json.member "tid" e) with
        | Some (Json.String "X"), Some t -> Json.to_int t
        | _ -> None)
      evs
  in
  Alcotest.(check (list int)) "compute lane 0, copy lane 1" [ 0; 1 ] tids;
  let names =
    List.filter_map
      (fun e ->
        match (Json.member "ph" e, Json.member "name" e) with
        | Some (Json.String "M"), Some (Json.String n) -> Some n
        | _ -> None)
      evs
  in
  (* both lanes are named up front even when one is empty *)
  Alcotest.(check int) "process + two lane metadata records" 3
    (List.length names)

let test_memory_timeline_matches_simulator () =
  let c = cache () in
  let g = mlp_training () in
  let order = Graph.topo_order g in
  let sim, events = Simulator.run_events c g order in
  let tl = Lifetime.timeline sim.analysis in
  Alcotest.(check int) "timeline max is the simulator peak" sim.peak_mem
    (Timeline.memory_max tl);
  let non_input =
    List.length
      (List.filter
         (fun (n : Graph.node) ->
           match n.op with Op.Input _ -> false | _ -> true)
         (Graph.nodes g))
  in
  Alcotest.(check int) "one event per scheduled non-input node" non_input
    (List.length events);
  List.iter
    (fun (e : Simulator.event) ->
      if e.ev_start < 0.0 || e.ev_finish < e.ev_start then
        Alcotest.failf "node %d: bad interval [%g, %g]" e.ev_node e.ev_start
          e.ev_finish;
      if e.ev_finish > sim.latency +. 1e-9 then
        Alcotest.failf "node %d finishes after the makespan" e.ev_node)
    events;
  let csv = Timeline.memory_csv ~lower:1 ~upper:sim.peak_mem tl in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "csv header" "step,bytes,lower_bound,upper_bound"
    (List.hd lines);
  Alcotest.(check int) "one csv line per step" (Array.length tl)
    (List.length (List.tl lines))

(* ------------------------------------------------------------------ *)
(* Profile JSONL round-trip on a seeded Randnet                        *)
(* ------------------------------------------------------------------ *)

let randnet seed =
  Randnet.build
    ~cfg:
      { Randnet.cells = 1; nodes_per_cell = 4; channels = 8; image = 8;
        batch = 2; seed }
    ()

let test_profile_jsonl_roundtrip () =
  let path = Filename.temp_file "magis_obs" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let sink = Profile.create path in
  let g = randnet 7 in
  let config =
    { Search.default_config with max_iterations = 6; time_budget = 1e9;
      profile = Some sink }
  in
  let r = Search.optimize_memory ~config (cache ()) ~overhead:0.10 g in
  Profile.close sink;
  let records = Profile.read path in
  Alcotest.(check int) "one record per iteration" r.stats.iterations
    (List.length records);
  let int_field name rec_ =
    match Option.bind (Json.member name rec_) Json.to_int with
    | Some v -> v
    | None -> Alcotest.failf "record missing int field %s" name
  in
  List.iteri
    (fun i rec_ ->
      Alcotest.(check int) "iterations count up from 1" (i + 1)
        (int_field "iter" rec_);
      Alcotest.(check bool) "best peak is positive" true
        (int_field "best_peak" rec_ > 0))
    records;
  let last = List.nth records (List.length records - 1) in
  Alcotest.(check int) "final record carries the best peak"
    r.best.peak_mem (int_field "best_peak" last);
  (* the stats JSON export agrees with the run *)
  let sj = Search.stats_json r.stats in
  Alcotest.(check (option int)) "stats_json iterations"
    (Some r.stats.iterations)
    (Option.bind (Json.member "iterations" sj) Json.to_int);
  Alcotest.(check bool) "stats_json parses back" true
    (Json.of_string (Json.to_string sj) = sj)

let suite =
  [
    tc "json values round-trip through the parser" test_json_roundtrip;
    tc "json parser rejects malformed documents" test_json_parse_errors;
    tc "json parser enforces depth and length limits"
      test_json_resource_limits;
    tc "json fuzz: round-trip and parse-or-reject" test_json_fuzz;
    tc "monotonized clock never goes backwards" test_clock_monotonic;
    tc "spans nest and complete in order" test_span_nesting_and_ordering;
    tc "ring buffer overflow keeps the newest events"
      test_ring_overflow_keeps_newest;
    tc "disabled tracer and metrics allocate nothing"
      test_disabled_tracer_allocates_nothing;
    tc "chrome trace export parses back" test_chrome_trace_parses_back;
    tc "counters and gauges register by name" test_counter_and_gauge;
    tc "histogram bucket edges are inclusive above"
      test_histogram_bucket_edges;
    tc "metrics snapshot exports json and text" test_metrics_json_snapshot;
    tc "timeline export names both lanes" test_timeline_chrome_lanes;
    tc "memory timeline matches the simulator peak"
      test_memory_timeline_matches_simulator;
    tc "search profile JSONL round-trips" test_profile_jsonl_roundtrip;
  ]
