(** Shared graph fixtures and assertion helpers for the test suite. *)

open Magis
module B = Builder

(* Arm the analysis hooks for the whole suite: every schedule a baseline
   emits is verified before it reaches the simulator. *)
let () = Analysis_hooks.set true

let cache () = Op_cost.create Hardware.default

let shape dims = Shape.create dims

(** Fail the test with the diagnostic report unless the IR verifier
    finds the graph clean (warnings allowed). *)
let verify_clean ?(what = "graph") g =
  let diags = Verify.graph g in
  if not (Diagnostic.is_clean diags) then
    Alcotest.failf "%s: %s" what (Diagnostic.report_to_string diags)

(** Same for the schedule legality checker. *)
let schedule_clean ?(what = "schedule") g order =
  let diags = Sched_check.schedule g order in
  if not (Diagnostic.is_clean diags) then
    Alcotest.failf "%s: %s" what (Diagnostic.report_to_string diags)

(** [verified g] returns [g] after asserting verifier-cleanliness —
    wraps the fixture builders below so every suite using them gets the
    check for free. *)
let verified ?what g =
  verify_clean ?what g;
  g

(** [a -> b -> c] chain of unary ops over a [n]-element tensor. *)
let chain3 ?(n = 16) () =
  let b = B.create () in
  let x = B.input b [ n ] ~dtype:Shape.F32 in
  let r1 = B.relu b x in
  let r2 = B.relu b r1 in
  let r3 = B.relu b r2 in
  (verified ~what:"chain3" (B.finish b), x, r1, r2, r3)

(** Diamond: x feeding two branches that join in an add. *)
let diamond ?(n = 16) () =
  let b = B.create () in
  let x = B.input b [ n ] ~dtype:Shape.F32 in
  let l = B.relu b x in
  let r = B.tanh_ b x in
  let j = B.add b l r in
  (verified ~what:"diamond" (B.finish b), x, l, r, j)

(** A two-layer MLP training graph (the Fig. 5 structure): two dense
    layers with ReLU, sum loss, full backward pass. *)
let mlp_training ?(batch = 8) ?(hidden = 16) () =
  let b = B.create () in
  let x = B.input b [ batch; hidden ] ~dtype:Shape.F32 in
  let w1 = B.weight b [ hidden; hidden ] ~dtype:Shape.F32 in
  let w2 = B.weight b [ hidden; hidden ] ~dtype:Shape.F32 in
  let h = B.relu b (B.dense b x w1) in
  let y = B.dense b h w2 in
  let loss = B.sum_loss b y in
  verified ~what:"mlp_training" (Autodiff.backward (B.finish b) ~loss)

(** Self-attention block graph of the paper's Fig. 4. *)
let attention ?(batch = 4) ?(seq = 8) ?(hidden = 16) ?(heads = 2) () =
  let c =
    { Transformer.batch; seq_len = seq; hidden; heads; layers = 1; vocab = 32;
      dtype = Shape.F32 }
  in
  let b = B.create () in
  let x = B.input b [ batch; seq; hidden ] ~dtype:Shape.F32 in
  let y = Transformer.block b x c in
  (verified ~what:"attention" (B.finish b), x, y)

let int_set = Util.Int_set.of_list

let check_set msg expected actual =
  Alcotest.(check (list int)) msg
    (List.sort compare expected)
    (List.sort compare (Util.Int_set.elements actual))

let check_sorted msg expected actual =
  Alcotest.(check (list int)) msg (List.sort compare expected)
    (List.sort compare actual)

let valid_order_of g order = Alcotest.(check bool) "valid order" true
    (Graph.is_valid_order g order)

let tc name f = Alcotest.test_case name `Quick f

(** The budgeted Table-2-style LM benchmark shared by the search-level
    suites (small enough for bounded-iteration A/B runs, large enough
    that every rewrite family fires). *)
let lm_small () =
  Transformer.build_lm
    { Transformer.batch = 8; seq_len = 32; hidden = 64; heads = 4; layers = 2;
      vocab = 128; dtype = Shape.F32 }
