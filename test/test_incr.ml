(** Incremental search core: the O(Δ) structures must be invisible.

    Property tests asserting (1) {!Liveness.delta_update} ≡ a scratch
    {!Liveness.compute} and {!Membound.probe_update} ≡ a scratch
    {!Membound.probe_create} across seeded rewrite sequences on three
    Randnets and the two smallest zoo models; (2) the delta-encoded
    {!Sim_cache} round-trips schedules bit-identically; (3) a search
    with [config.incremental] on or off finds bit-identical best
    states; (4) the cheap tier only ever surfaces exactly-evaluated,
    legal best states; (5) {!Listsched} emits valid, deterministic
    orders; (6) {!Incremental.reschedule} reports fallbacks without
    discarding the attempted window. *)

open Magis
open Helpers

(* ------------------------------------------------------------------ *)
(* delta_update / probe_update vs. scratch                             *)
(* ------------------------------------------------------------------ *)

let rule_ctx g =
  let hot =
    Util.Int_set.of_list
      (List.filteri (fun i _ -> i mod 3 = 0) (Graph.topo_order g))
  in
  {
    Rule.hotspots = hot;
    frozen = Util.Int_set.empty;
    schedule_pos = (fun _ -> None);
    max_per_rule = 3;
    restrict_to_hotspots = false;
  }

(** All rewrites of [g] under the full rule set, a few per rule. *)
let rewrites g =
  let ctx = rule_ctx g in
  List.concat_map
    (fun (r : Rule.t) -> r.apply ctx g)
    (Sched_rules.all @ Taso_rules.all)

(** Check one delta step against the scratch oracle; returns the
    updated analysis so sequences can chain delta-on-delta (slot holes,
    slot reuse, capacity growth). *)
let check_delta what lv probe (rw : Rule.rewrite) =
  match Liveness.delta_update lv rw.graph ~mutated:rw.touched_old with
  | None -> Alcotest.failf "%s: delta_update bailed without max_dirty" what
  | Some (lv', delta) ->
      let scratch = Liveness.compute rw.graph in
      Alcotest.(check bool)
        (what ^ ": delta ≡ scratch liveness")
        true
        (Liveness.equivalent lv' scratch);
      let probe' = Membound.probe_update probe lv' ~delta in
      Alcotest.(check int)
        (what ^ ": probe_update ≡ probe_create")
        (Membound.probe_lower (Membound.probe_create ~sample:8 scratch))
        (Membound.probe_lower probe');
      (lv', probe')

let check_model what g =
  let lv0 = Liveness.compute g in
  let probe0 = Membound.probe_create ~sample:8 lv0 in
  let n_checked = ref 0 in
  (* level 1: every rewrite of the root, each checked against scratch *)
  let level1 = rewrites g in
  List.iter
    (fun rw ->
      incr n_checked;
      ignore (check_delta what lv0 probe0 rw))
    level1;
  (* level 2 and 3: follow one seeded trajectory, chaining the delta
     result forward so later updates run against a delta-built parent *)
  let pick seed l = List.nth l (seed mod List.length l) in
  let rec descend depth seed g lv probe =
    if depth > 0 then
      match rewrites g with
      | [] -> ()
      | l ->
          let rw : Rule.rewrite = pick seed l in
          incr n_checked;
          let lv', probe' = check_delta what lv probe rw in
          descend (depth - 1) ((seed * 7) + 3) rw.graph lv' probe'
  in
  descend 2 1 g lv0 probe0;
  descend 2 5 g lv0 probe0;
  Alcotest.(check bool) (what ^ ": exercised") true (!n_checked > 10)

let test_delta_randnets () =
  List.iter
    (fun seed ->
      let g =
        Randnet.build ~cfg:{ Randnet.default with seed } ()
      in
      check_model (Printf.sprintf "randnet-%d" seed) g)
    [ 1; 2; 3 ]

let test_delta_zoo () =
  List.iter
    (fun name ->
      let w = Zoo.find name in
      check_model w.name (w.build Zoo.Quick))
    Zoo.smoke_pair

(** The [max_dirty] cap returns [None] rather than a wrong analysis,
    and a cap of [max_int] never bails. *)
let test_delta_max_dirty () =
  let g = lm_small () in
  let lv = Liveness.compute g in
  List.iter
    (fun (rw : Rule.rewrite) ->
      (match Liveness.delta_update ~max_dirty:0 lv rw.graph
               ~mutated:rw.touched_old
       with
      | None -> ()
      | Some _ ->
          (* only possible when the rewrite dirtied nothing at all *)
          ());
      match Liveness.delta_update lv rw.graph ~mutated:rw.touched_old with
      | None -> Alcotest.fail "uncapped delta_update bailed"
      | Some (lv', _) ->
          Alcotest.(check bool) "capped≡uncapped when both succeed" true
            (Liveness.equivalent lv' (Liveness.compute rw.graph)))
    (rewrites g)

(* ------------------------------------------------------------------ *)
(* Sim_cache delta round-trip                                          *)
(* ------------------------------------------------------------------ *)

(** Seeded schedule-like int lists sharing prefixes/suffixes with a
    parent, plus adversarial cases (empty, disjoint, identical). *)
let test_sim_cache_roundtrip () =
  let cache = Sim_cache.create () in
  let rng = Random.State.make [| 42 |] in
  let value sched =
    {
      Sim_cache.schedule = sched;
      peak_mem = List.fold_left ( + ) 0 sched;
      latency = float_of_int (List.length sched);
      hotspots = List.filter (fun v -> v mod 3 = 0) sched;
    }
  in
  let cases = ref [] in
  let add_case ?parent key sched =
    Sim_cache.add ?parent cache key (value sched);
    cases := (key, sched) :: !cases
  in
  let parent = List.init 40 (fun i -> i) in
  add_case 1L parent;
  (* middle rewritten, ends shared *)
  add_case ~parent 2L (List.init 40 (fun i -> if i >= 10 && i < 14 then 100 + i else i));
  (* insertion (longer than parent) and deletion (shorter) *)
  add_case ~parent 3L (List.init 43 (fun i -> if i >= 20 && i < 23 then 200 + i else if i >= 23 then i - 3 else i));
  add_case ~parent 4L (List.init 37 (fun i -> if i < 18 then i else i + 3));
  (* disjoint, identical, empty, singleton *)
  add_case ~parent 5L (List.init 40 (fun i -> 1000 + i));
  add_case ~parent 6L parent;
  add_case ~parent 7L [];
  add_case ~parent 8L [ 7 ];
  (* random windows against random parents *)
  for k = 0 to 19 do
    let n = 10 + Random.State.int rng 50 in
    let p = List.init n (fun _ -> Random.State.int rng 500) in
    let lo = Random.State.int rng n in
    let hi = lo + Random.State.int rng (n - lo) in
    let child =
      List.mapi (fun i v -> if i >= lo && i < hi then v + 1000 else v) p
    in
    add_case ~parent:p (Int64.of_int (100 + (2 * k))) p;
    add_case ~parent:p (Int64.of_int (101 + (2 * k))) child
  done;
  List.iter
    (fun (key, sched) ->
      match Sim_cache.find cache key with
      | None -> Alcotest.failf "entry %Ld lost" key
      | Some v ->
          Alcotest.(check (list int))
            (Printf.sprintf "entry %Ld round-trips bit-identically" key)
            sched v.Sim_cache.schedule;
          Alcotest.(check int) "peak survives" (List.fold_left ( + ) 0 sched)
            v.Sim_cache.peak_mem)
    !cases;
  let fulls, deltas = Sim_cache.delta_stats cache in
  Alcotest.(check bool) "some entries stored as deltas" true (deltas > 0);
  Alcotest.(check bool) "some entries stored in full" true (fulls > 0);
  Alcotest.(check bool) "resident footprint accounted" true
    (Sim_cache.resident_ints cache > 0)

(* ------------------------------------------------------------------ *)
(* Search A/B: incremental on/off is invisible                         *)
(* ------------------------------------------------------------------ *)

let ab_config incremental =
  {
    Search.default_config with
    time_budget = 1e9;
    max_iterations = 20;
    verify_states = true;
    incremental;
  }

let check_incremental_invisible what ~mode_fn g =
  let r_on = mode_fn ~config:(ab_config true) g in
  let r_off = mode_fn ~config:(ab_config false) g in
  Alcotest.(check int) (what ^ ": identical peak") r_off.Search.best.peak_mem
    r_on.Search.best.peak_mem;
  Alcotest.(check (float 0.0)) (what ^ ": identical latency")
    r_off.best.latency r_on.best.latency;
  Alcotest.(check (list int)) (what ^ ": identical schedule")
    r_off.best.schedule r_on.best.schedule;
  Alcotest.(check bool) (what ^ ": structurally identical") true
    (Wl_hash.equal_structure r_off.best.graph r_on.best.graph);
  Alcotest.(check int) (what ^ ": off-run never deltas") 0
    r_off.stats.n_lv_delta;
  r_on

let test_incremental_invisible () =
  let c = cache () in
  let g =
    Randnet.build ~cfg:{ Randnet.default with cells = 1; nodes_per_cell = 4; seed = 1 } ()
  in
  ignore
    (check_incremental_invisible "randnet min-mem"
       ~mode_fn:(fun ~config g ->
         Search.optimize_memory ~config c ~overhead:0.10 g)
       g);
  let r =
    check_incremental_invisible "lm min-lat"
      ~mode_fn:(fun ~config g ->
        Search.optimize_latency ~config c ~mem_ratio:0.7 g)
      (lm_small ())
  in
  Alcotest.(check bool) "incremental path exercised" true
    (r.stats.n_lv_delta > 0)

(* ------------------------------------------------------------------ *)
(* Cheap tier                                                          *)
(* ------------------------------------------------------------------ *)

let test_cheap_tier_exact_best () =
  let c = cache () in
  let config =
    {
      Search.default_config with
      time_budget = 1e9;
      max_iterations = 20;
      verify_states = true;
      cheap_tier = true;
    }
  in
  let r = Search.optimize_latency ~config c ~mem_ratio:0.7 (lm_small ()) in
  let best = r.Search.best in
  schedule_clean ~what:"cheap-tier best schedule" best.graph best.schedule;
  (* the best state must carry exact-tier numbers: re-simulating its
     own schedule reproduces them bit-identically *)
  let re = Mstate.evaluate c best.graph best.ftree best.schedule in
  Alcotest.(check int) "peak is exact" re.Mstate.peak_mem best.peak_mem;
  Alcotest.(check (float 0.0)) "latency is exact" re.Mstate.latency
    best.latency;
  Alcotest.(check bool) "cheap tier exercised" true
    (r.stats.n_cheap_sched > 0)

(* ------------------------------------------------------------------ *)
(* List scheduler                                                      *)
(* ------------------------------------------------------------------ *)

let test_listsched_valid_deterministic () =
  let c = cache () in
  List.iter
    (fun (what, g) ->
      let cost_of v = Op_cost.node_cost c g v in
      let s1 = Listsched.schedule ~cost_of g in
      let s2 = Listsched.schedule ~cost_of g in
      Alcotest.(check (list int)) (what ^ ": deterministic") s1 s2;
      schedule_clean ~what:(what ^ ": valid") g s1;
      Alcotest.(check int)
        (what ^ ": complete")
        (Graph.n_nodes g) (List.length s1))
    [
      ("lm", lm_small ());
      ("unet", (Zoo.find "unet").build Zoo.Quick);
      ("randnet", Randnet.build ~cfg:{ Randnet.default with seed = 4 } ());
    ]

(* ------------------------------------------------------------------ *)
(* Reschedule fallback reporting                                       *)
(* ------------------------------------------------------------------ *)

let test_fallback_reports_window () =
  let g, _, _, _, _ = chain3 () in
  let size_of = Lifetime.default_size g in
  (* no old schedule: the fallback must still report a usable window
     covering the whole new order, not a discarded interval *)
  let order, st =
    Incremental.reschedule ~old_graph:g ~new_graph:g ~old_schedule:[]
      ~mutated_old:(int_set [ 0 ]) ~size_of ()
  in
  Alcotest.(check bool) "fallback flagged" true st.Incremental.fallback;
  Alcotest.(check (pair int int)) "window spans the full schedule"
    (0, List.length order)
    st.Incremental.interval;
  Alcotest.(check int) "everything rescheduled" (List.length order)
    st.Incremental.rescheduled;
  schedule_clean ~what:"fallback schedule" g order;
  (* a clean splice reports a proper sub-window and no fallback *)
  let base = Reorder.schedule ~size_of g in
  let order2, st2 =
    Incremental.reschedule ~old_graph:g ~new_graph:g ~old_schedule:base
      ~mutated_old:(int_set [ List.nth base 1 ]) ~size_of ()
  in
  Alcotest.(check bool) "no fallback on a clean splice" false
    st2.Incremental.fallback;
  schedule_clean ~what:"spliced schedule" g order2

let suite =
  [
    Alcotest.test_case "delta vs scratch: randnets" `Quick test_delta_randnets;
    Alcotest.test_case "delta vs scratch: zoo" `Quick test_delta_zoo;
    Alcotest.test_case "delta max_dirty cap" `Quick test_delta_max_dirty;
    Alcotest.test_case "sim-cache delta round-trip" `Quick
      test_sim_cache_roundtrip;
    Alcotest.test_case "incremental on/off invisible" `Quick
      test_incremental_invisible;
    Alcotest.test_case "cheap tier surfaces exact bests" `Quick
      test_cheap_tier_exact_best;
    Alcotest.test_case "list scheduler valid + deterministic" `Quick
      test_listsched_valid_deterministic;
    Alcotest.test_case "reschedule fallback reporting" `Quick
      test_fallback_reports_window;
  ]
