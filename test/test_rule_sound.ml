(** Symbolic rule-soundness verifier: the shipped rules must all prove
    (or carry corpus-backed waivers), and seeded unsound variants must be
    caught by the specific obligation they violate. *)

open Magis
open Helpers
module S = Rule.Spec

let all_rules = Taso_rules.all @ Sched_rules.all

let find name = List.find (fun (r : Rule.t) -> r.name = name) all_rules

let entry_of rule = Rule_sound.check_rule ~corpus:(Rule_lint.builtin_corpus ()) rule

let assert_caught what check (e : Rule_sound.entry) =
  if Diagnostic.is_clean e.diags then
    Alcotest.failf "%s: mutation not caught (no errors)" what;
  if not (Diagnostic.has_check check e.diags) then
    Alcotest.failf "%s: expected a %s error, got:@\n%s" what check
      (Diagnostic.report_to_string e.diags)

(* ---- the shipped rules ---- *)

let test_builtin_rules_prove () =
  let report =
    Rule_sound.check_rules ~corpus:(Rule_lint.builtin_corpus ()) all_rules
  in
  if not (Rule_sound.is_clean report) then
    Alcotest.failf "built-in rules not clean:@\n%a" Rule_sound.pp_report report;
  Alcotest.(check int) "eight rules proven" 8 report.Rule_sound.n_proven;
  Alcotest.(check int) "two rules waived" 2 report.Rule_sound.n_waived;
  Alcotest.(check (list string)) "no unbacked waivers" []
    (Rule_sound.unbacked_waivers report)

(* ---- seeded unsound variants ---- *)

(** Declaring the wrong memory delta must fail the memory-delta
    obligation. *)
let test_mutation_wrong_delta () =
  let rule = find "swap" in
  let mutated =
    match rule.spec with
    | S.Sound [ t ] ->
        { rule with
          name = "swap-bad-delta";
          spec = S.Sound [ { t with S.t_delta = S.K 0 } ] }
    | _ -> Alcotest.fail "swap should have one template"
  in
  assert_caught "wrong delta" "memory-delta" (entry_of mutated)

(** Dropping the [same_as] recomputation witness from remat's template
    loses the v-before-consumer ordering: dependency refinement fails. *)
let test_mutation_lost_dependency () =
  let rule = find "remat" in
  let mutated =
    match rule.spec with
    | S.Sound [ t ] ->
        { rule with
          name = "remat-lost-dep";
          spec =
            S.Sound
              [ { t with
                  S.t_rhs =
                    List.map
                      (fun (n : S.snode) -> { n with S.same_as = None })
                      t.t_rhs } ] }
    | _ -> Alcotest.fail "remat should have one template"
  in
  assert_caught "lost dependency" "dep-refinement" (entry_of mutated)

(** A template whose declared replacement has a different symbolic shape
    must fail out-shape: here a transpose "removed" as if it were the
    identity. *)
let test_mutation_wrong_shape () =
  let rule =
    { Rule.name = "drop-transpose";
      spec =
        S.Sound
          [ { S.t_name = "not-an-identity";
              t_sources = [ S.src 0 [ S.V "m"; S.V "n" ] ];
              t_lhs = [ S.node 10 (S.Fixed (Op.Transpose [| 1; 0 |])) [ 0 ] ];
              t_rhs = [];
              t_guards = [];
              t_keep = [];
              t_out = [ (10, 0) ];
              t_delta = S.Sub (S.K 0, S.Mul (S.V "m", S.V "n"));
              t_ground = [ ("m", 2); ("n", 3) ] } ];
      apply = (fun _ _ -> []) }
  in
  assert_caught "wrong shape" "out-shape" (entry_of rule)

(** A spec whose [apply] does something else entirely (here: nothing
    that matches) must fail grounding conformance — the proof is about
    the template, the conformance check ties it to the implementation. *)
let test_mutation_apply_mismatch () =
  let swap = find "swap" and de_swap = find "de-swap" in
  let mutated =
    { swap with name = "swap-wrong-apply"; apply = de_swap.apply }
  in
  assert_caught "apply mismatch" "ground-conformance" (entry_of mutated)

(** A waiver is only as good as its differential coverage: a waived rule
    that never fires on the corpus is flagged. *)
let test_waiver_without_coverage () =
  let rule =
    { Rule.name = "never-fires";
      spec = S.Waiver "hypothetical rule for the coverage test";
      apply = (fun _ _ -> []) }
  in
  let e = entry_of rule in
  assert_caught "unbacked waiver" "waiver-no-coverage" e;
  let report =
    Rule_sound.check_rules ~corpus:(Rule_lint.builtin_corpus ()) [ rule ]
  in
  Alcotest.(check (list string)) "listed as unbacked" [ "never-fires" ]
    (Rule_sound.unbacked_waivers report)

(** Sound with an empty template list proves nothing and says so. *)
let test_sound_without_templates () =
  let rule =
    { Rule.name = "vacuous"; spec = S.Sound []; apply = (fun _ _ -> []) }
  in
  assert_caught "vacuous Sound" "template-form"
    (Rule_sound.check_rule ~corpus:[] rule)

let suite =
  [
    tc "built-in rules prove or waive" test_builtin_rules_prove;
    tc "mutation: wrong delta" test_mutation_wrong_delta;
    tc "mutation: lost dependency" test_mutation_lost_dependency;
    tc "mutation: wrong out shape" test_mutation_wrong_shape;
    tc "mutation: apply mismatch" test_mutation_apply_mismatch;
    tc "waiver without coverage" test_waiver_without_coverage;
    tc "sound without templates" test_sound_without_templates;
  ]
