(** Test-suite entry point: one alcotest run over every module suite. *)

let () =
  Alcotest.run "magis"
    [
      ("shape", Test_shape.suite);
      ("op", Test_op.suite);
      ("dim-semantics", Test_dim_semantics.suite);
      ("graph", Test_graph.suite);
      ("dominator", Test_dominator.suite);
      ("wl_hash", Test_wl_hash.suite);
      ("cost", Test_cost.suite);
      ("lifetime", Test_lifetime.suite);
      ("simulator", Test_simulator.suite);
      ("dgraph", Test_dgraph.suite);
      ("fission", Test_fission.suite);
      ("ftree", Test_ftree.suite);
      ("spatial", Test_spatial.suite);
      ("sched", Test_sched.suite);
      ("incremental", Test_incremental.suite);
      ("incr-core", Test_incr.suite);
      ("rules", Test_rules.suite);
      ("verify", Test_verify.suite);
      ("symshape", Test_symshape.suite);
      ("rule-sound", Test_rule_sound.suite);
      ("interfere", Test_interfere.suite);
      ("membound", Test_membound.suite);
      ("autodiff", Test_autodiff.suite);
      ("models", Test_models.suite);
      ("baselines", Test_baselines.suite);
      ("outcome", Test_outcome.suite);
      ("search", Test_search.suite);
      ("par", Test_par.suite);
      ("resilience", Test_resilience.suite);
      ("serve", Test_serve.suite);
      ("frontier", Test_frontier.suite);
      ("obs", Test_obs.suite);
      ("properties", Test_props.suite);
      ("codegen", Test_codegen.suite);
      ("parser", Test_parser.suite);
      ("allocator", Test_allocator.suite);
      ("equivalence", Test_equivalence.suite);
      ("integration", Test_integration.suite);
    ]
