open Magis
open Helpers

let test_create_and_access () =
  let s = Shape.create ~dtype:Shape.F32 [ 2; 3; 4 ] in
  Alcotest.(check int) "rank" 3 (Shape.rank s);
  Alcotest.(check int) "dim 0" 2 (Shape.dim s 0);
  Alcotest.(check int) "dim 2" 4 (Shape.dim s 2);
  Alcotest.(check int) "numel" 24 (Shape.numel s);
  Alcotest.(check int) "bytes f32" 96 (Shape.size_bytes s)

let test_dtype_sizes () =
  let numel = 10 in
  let check dtype expect =
    let s = Shape.create ~dtype [ numel ] in
    Alcotest.(check int) (Shape.dtype_name dtype) expect (Shape.size_bytes s)
  in
  check Shape.F32 40;
  check Shape.TF32 40;
  check Shape.BF16 20;
  check Shape.F16 20;
  check Shape.I64 80;
  check Shape.I32 40;
  check Shape.Bool 10

let test_invalid_shapes () =
  Alcotest.check_raises "empty" (Invalid_argument "Shape.create: empty shape")
    (fun () -> ignore (Shape.create []));
  Alcotest.check_raises "zero dim"
    (Invalid_argument "Shape.create: non-positive dim") (fun () ->
      ignore (Shape.create [ 2; 0 ]))

let test_split_dim () =
  let s = Shape.create [ 8; 6 ] in
  let half = Shape.split_dim s 0 2 in
  Alcotest.(check int) "split 0 by 2" 4 (Shape.dim half 0);
  Alcotest.(check int) "other dim unchanged" 6 (Shape.dim half 1);
  let third = Shape.split_dim s 1 3 in
  Alcotest.(check int) "split 1 by 3" 2 (Shape.dim third 1);
  Alcotest.(check bool) "indivisible raises" true
    (try ignore (Shape.split_dim s 0 3); false
     with Invalid_argument _ -> true)

let test_with_dim_and_concat () =
  let s = Shape.create [ 4; 5 ] in
  let t = Shape.with_dim s 1 9 in
  Alcotest.(check int) "with_dim" 9 (Shape.dim t 1);
  let u = Shape.concat_dim s 0 4 in
  Alcotest.(check int) "concat_dim" 8 (Shape.dim u 0);
  Alcotest.(check bool) "original untouched" true (Shape.dim s 1 = 5)

let test_equal () =
  let a = Shape.create ~dtype:Shape.F32 [ 2; 2 ] in
  let b = Shape.create ~dtype:Shape.F32 [ 2; 2 ] in
  let c = Shape.create ~dtype:Shape.BF16 [ 2; 2 ] in
  let d = Shape.create ~dtype:Shape.F32 [ 2; 3 ] in
  Alcotest.(check bool) "equal" true (Shape.equal a b);
  Alcotest.(check bool) "dtype differs" false (Shape.equal a c);
  Alcotest.(check bool) "dims differ" false (Shape.equal a d);
  Alcotest.(check bool) "equal_dims ignores dtype" true (Shape.equal_dims a c)

let test_hash_stability () =
  let a = Shape.create [ 3; 7 ] in
  let b = Shape.create [ 3; 7 ] in
  let c = Shape.create [ 7; 3 ] in
  Alcotest.(check bool) "same shapes same hash" true (Shape.hash a = Shape.hash b);
  Alcotest.(check bool) "transposed dims differ" true (Shape.hash a <> Shape.hash c)

let test_to_string () =
  let s = Shape.create ~dtype:Shape.BF16 [ 2; 3 ] in
  Alcotest.(check string) "printing" "bf16[2,3]" (Shape.to_string s)

let test_factorize () =
  Alcotest.(check (list int)) "1" [] (Shape.factorize 1);
  Alcotest.(check (list int)) "2" [ 2 ] (Shape.factorize 2);
  Alcotest.(check (list int)) "12" [ 2; 2; 3 ] (Shape.factorize 12);
  Alcotest.(check (list int)) "97 prime" [ 97 ] (Shape.factorize 97);
  Alcotest.(check (list int)) "360" [ 2; 2; 2; 3; 3; 5 ] (Shape.factorize 360);
  (* ascending with multiplicity, and the product reconstructs *)
  let f = Shape.factorize 9240 in
  Alcotest.(check (list int)) "sorted" (List.sort compare f) f;
  Alcotest.(check int) "product" 9240 (List.fold_left ( * ) 1 f);
  Alcotest.(check bool) "non-positive raises" true
    (try ignore (Shape.factorize 0); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative raises" true
    (try ignore (Shape.factorize (-6)); false with Invalid_argument _ -> true)

let suite =
  [
    tc "create and access" test_create_and_access;
    tc "factorize" test_factorize;
    tc "dtype sizes" test_dtype_sizes;
    tc "invalid shapes" test_invalid_shapes;
    tc "split_dim" test_split_dim;
    tc "with_dim / concat_dim" test_with_dim_and_concat;
    tc "equality" test_equal;
    tc "hash stability" test_hash_stability;
    tc "to_string" test_to_string;
  ]
