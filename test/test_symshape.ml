(** Symbolic shape domain: normal-form algebra, entailment under guards,
    divisibility, and consistency with concrete evaluation. *)

open Magis
module S = Rule.Spec

let a = Symshape.var "a"
let b = Symshape.var "b"
let k = Symshape.const
let ( + ) = Symshape.add
let ( - ) = Symshape.sub
let ( * ) = Symshape.mul

let test_normal_form () =
  (* (a+b)*(a-b) = a^2 - b^2 *)
  Alcotest.(check bool) "difference of squares" true
    (Symshape.equal ((a + b) * (a - b)) ((a * a) - (b * b)));
  Alcotest.(check bool) "commutative" true (Symshape.equal (a * b) (b * a));
  Alcotest.(check bool) "cancellation" true
    (Symshape.equal ((a + b) - b) a);
  Alcotest.(check bool) "a <> b" false (Symshape.equal a b);
  Alcotest.(check bool) "zero" true (Symshape.equal (a - a) Symshape.zero)

let test_const_and_vars () =
  Alcotest.(check (option int)) "const" (Some 6) (Symshape.to_const (k 2 * k 3));
  Alcotest.(check (option int)) "zero const" (Some 0)
    (Symshape.to_const Symshape.zero);
  Alcotest.(check (option int)) "not const" None (Symshape.to_const (a + k 1));
  Alcotest.(check (list string)) "vars" [ "a"; "b" ]
    (Symshape.vars ((a * b) + a))

let test_eval () =
  let env = [ ("a", 5); ("b", 3) ] in
  Alcotest.(check int) "poly eval" 19
    (Symshape.eval ~env ((a * b) + (k 2 * b) - k 2));
  Alcotest.(check bool) "unbound raises" true
    (try ignore (Symshape.eval ~env:[] a); false
     with Invalid_argument _ -> true);
  (* of_sdim and eval agree with direct sdim arithmetic *)
  let sd = S.Mul (S.Add (S.V "a", S.K 1), S.V "b") in
  Alcotest.(check int) "of_sdim eval" 18
    (Symshape.eval ~env (Symshape.of_sdim sd))

let test_geq () =
  let geq = Symshape.geq ~guards:[] in
  Alcotest.(check bool) "a >= 1" true (geq a (k 1));
  Alcotest.(check bool) "a+1 >= a" true (geq (a + k 1) a);
  Alcotest.(check bool) "2a >= a" true (geq (k 2 * a) a);
  Alcotest.(check bool) "a*b >= 1" true (geq (a * b) (k 1));
  Alcotest.(check bool) "a >= b unprovable" false (geq a b);
  Alcotest.(check bool) "a >= a+1 false" false (geq a (a + k 1));
  (* a guard h >= r makes h - r + 1 >= 1 provable *)
  let guards = [ S.Ge (S.V "h", S.V "r") ] in
  let h = Symshape.var "h" and r = Symshape.var "r" in
  Alcotest.(check bool) "guarded h >= r" true
    (Symshape.geq ~guards h r);
  Alcotest.(check bool) "guarded h+1-r >= 1" true
    (Symshape.geq ~guards ((h + k 1) - r) (k 1));
  Alcotest.(check bool) "still not h >= r+1" false
    (Symshape.geq ~guards h (r + k 1))

let test_divides () =
  Alcotest.(check bool) "2 | 2ab" true
    (Symshape.divides ~guards:[] 2 (k 2 * a * b));
  Alcotest.(check bool) "2 | 6a+4" true
    (Symshape.divides ~guards:[] 2 ((k 6 * a) + k 4));
  Alcotest.(check bool) "2 | a unprovable" false
    (Symshape.divides ~guards:[] 2 a);
  let guards = [ S.Divides (4, S.V "a") ] in
  Alcotest.(check bool) "guarded 2 | a" true (Symshape.divides ~guards 2 a);
  Alcotest.(check bool) "guarded 8 | a still unprovable" false
    (Symshape.divides ~guards 8 a);
  Alcotest.(check bool) "guard names a, not b" false
    (Symshape.divides ~guards 2 b)

let test_div_exact_and_factors () =
  (match Symshape.div_exact 3 (k 6 * a) with
  | Some q -> Alcotest.(check bool) "6a/3 = 2a" true (Symshape.equal q (k 2 * a))
  | None -> Alcotest.fail "6a/3 should divide");
  Alcotest.(check bool) "a/2 = None" true (Symshape.div_exact 2 a = None);
  Alcotest.(check (list int)) "const_factors 12ab+6b" [ 2; 3 ]
    (Symshape.const_factors ((k 12 * a * b) + (k 6 * b)));
  Alcotest.(check (list int)) "const_factors a" []
    (Symshape.const_factors a)

let test_guard_sat () =
  let env = [ ("h", 5); ("r", 3) ] in
  Alcotest.(check bool) "ge sat" true
    (Symshape.guard_sat ~env (S.Ge (S.V "h", S.V "r")));
  Alcotest.(check bool) "ge unsat" false
    (Symshape.guard_sat ~env (S.Ge (S.V "r", S.V "h")));
  Alcotest.(check bool) "divides sat" false
    (Symshape.guard_sat ~env (S.Divides (2, S.V "h")));
  Alcotest.(check bool) "divides unsat" true
    (Symshape.guard_sat ~env:[ ("h", 6) ] (S.Divides (2, S.V "h")))

(** The symbolic interpreter proves what concrete inference computes:
    inferring with polynomial dims, then evaluating, equals inferring
    after evaluation. *)
let test_abstract_matches_concrete_eval () =
  let module D = (val Symshape.dim_domain [] : Symshape.DOMAIN) in
  let module A = Op.Abstract (D) in
  let sym_shape dims = (Array.of_list dims, S.Dt_const Shape.F32) in
  let env = [ ("m", 4); ("p", 2); ("q", 3) ] in
  let m = Symshape.var "m" and p = Symshape.var "p" and q = Symshape.var "q" in
  match
    A.infer (Op.Concat 0)
      [| sym_shape [ p; m ]; sym_shape [ q; m ] |]
  with
  | Error e -> Alcotest.failf "symbolic concat failed: %s" e
  | Ok (dims, _) ->
      let evaled = Array.map (Symshape.eval ~env) dims in
      (match
         Op.infer (Op.Concat 0)
           [| Shape.create [ 2; 4 ]; Shape.create [ 3; 4 ] |]
       with
      | Error e -> Alcotest.failf "concrete concat failed: %s" e
      | Ok s ->
          Alcotest.(check (list int)) "concat agrees"
            (Array.to_list (Shape.dims s))
            (Array.to_list evaled))

let tc = Helpers.tc

let suite =
  [
    tc "normal form" test_normal_form;
    tc "const and vars" test_const_and_vars;
    tc "eval" test_eval;
    tc "geq entailment" test_geq;
    tc "divisibility" test_divides;
    tc "div_exact / const_factors" test_div_exact_and_factors;
    tc "guard_sat" test_guard_sat;
    tc "symbolic infer matches concrete" test_abstract_matches_concrete_eval;
  ]
