(** Entry point of the optimization service.

    - [magis_serve daemon] — run the daemon until SIGTERM/SIGINT or a
      [shutdown] command drains it (DESIGN.md §13);
    - [magis_serve request MODEL] — submit one optimization request and
      stream its progress/result (exit 2 on an error reply);
    - [magis_serve health] / [magis_serve metrics] — one-shot probes of
      a running daemon (Prometheus text on stdout for [metrics]);
    - [magis_serve load] — the load generator: N concurrent clients,
      mixed zoo workloads, p50/p99 latency, rejection and cache-hit
      rates;
    - [magis_serve chaos] — the seeded client-side chaos harness (exit
      1 when any scenario fails to get a structured answer);
    - [magis_serve shutdown] — ask a running daemon to drain and exit. *)

module P = Magis_serve.Protocol
module Server = Magis_serve.Server
module Client = Magis_serve.Client
module Loadgen = Magis_serve.Loadgen
open Cmdliner

let addr_term =
  let socket =
    Arg.(value & opt string "magis.sock"
         & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket path.")
  in
  let tcp =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT"
             ~doc:"Listen/connect on 127.0.0.1:$(docv) instead of the Unix \
                   socket.")
  in
  let make socket tcp =
    match tcp with Some port -> P.Tcp port | None -> P.Unix_sock socket
  in
  Term.(const make $ socket $ tcp)

let cmd_daemon addr workers queue_cap per_client ckpt_dir ckpt_every slice
    write_timeout verbose =
  let cfg =
    {
      Server.addr;
      workers;
      queue_cap;
      per_client_limit = per_client;
      ckpt_dir;
      ckpt_every;
      slice_iterations = slice;
      write_timeout;
      verbose;
    }
  in
  let t = Server.create cfg in
  (match addr with
  | P.Unix_sock path -> Fmt.pr "magis-serve: listening on %s@." path
  | P.Tcp port -> Fmt.pr "magis-serve: listening on 127.0.0.1:%d@." port);
  Server.run t;
  0

let daemon_cmd =
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~doc:"Request-executor domains.")
  in
  let queue_cap =
    Arg.(value & opt int 16
         & info [ "queue-cap" ] ~doc:"Bounded admission queue capacity.")
  in
  let per_client =
    Arg.(value & opt int 4
         & info [ "per-client" ] ~doc:"Max in-flight requests per connection.")
  in
  let ckpt_dir =
    Arg.(value & opt string "_serve_ckpt"
         & info [ "ckpt-dir" ] ~docv:"DIR"
             ~doc:"Checkpoint directory (one file per in-flight request id; \
                   restart against the same directory to resume).")
  in
  let ckpt_every =
    Arg.(value & opt float 0.25
         & info [ "ckpt-every" ] ~doc:"Seconds between periodic snapshots.")
  in
  let slice =
    Arg.(value & opt int 8
         & info [ "slice" ]
             ~doc:"Iteration granularity of cancellation/drain checks.")
  in
  let write_timeout =
    Arg.(value & opt float 5.0
         & info [ "write-timeout" ]
             ~doc:"Seconds before a blocked reply write declares the client \
                   dead (slow-loris guard).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Log lifecycle events.")
  in
  Cmd.v
    (Cmd.info "daemon"
       ~doc:"Run the optimization daemon until drained by SIGTERM/shutdown")
    Term.(const cmd_daemon $ addr_term $ workers $ queue_cap $ per_client
          $ ckpt_dir $ ckpt_every $ slice $ write_timeout $ verbose)

let pp_reply reply =
  match reply with
  | P.Progress p ->
      Fmt.pr "progress %s: %d iterations, peak %.1f MB, latency %.2f ms \
              (%.1fs)@."
        p.p_id p.p_iterations
        (float_of_int p.p_peak /. 1e6)
        (p.p_latency *. 1e3) p.p_elapsed
  | P.Result o ->
      Fmt.pr "result %s: peak %.1f MB (from %.1f MB), latency %.2f ms, %d \
              iterations%s%s%s@."
        o.o_id
        (float_of_int o.o_peak /. 1e6)
        (float_of_int o.o_initial_peak /. 1e6)
        (o.o_latency *. 1e3) o.o_iterations
        (if o.o_resumed then " [resumed]" else "")
        (if o.o_interrupted then " [interrupted]" else "")
        (if o.o_deadline_hit then " [deadline: best-so-far]" else "")
  | P.Error { e_id; kind; detail } ->
      Fmt.pr "error%a %s: %s@."
        Fmt.(option (fun ppf -> pf ppf " %s"))
        e_id
        (P.error_kind_name kind) detail
  | P.Frontier_reply f ->
      if f.fr_feasible then
        Fmt.pr "frontier %s: %d points%s, budget %.1f MB -> peak %.1f MB, \
                latency %.2f ms@."
          f.fr_id f.fr_points
          (if f.fr_cache_hit then " [cache hit]" else "")
          (float_of_int f.fr_budget /. 1e6)
          (float_of_int f.fr_peak /. 1e6)
          (f.fr_latency *. 1e3)
      else
        Fmt.pr "frontier %s: %d points%s, budget %.1f MB -> infeasible@."
          f.fr_id f.fr_points
          (if f.fr_cache_hit then " [cache hit]" else "")
          (float_of_int f.fr_budget /. 1e6)
  | P.Ack op -> Fmt.pr "ack %s@." op
  | P.Health_reply _ | P.Metrics_reply _ -> ()

let cmd_request addr model id full latency_mode overhead mem_ratio deadline
    iterations progress_every sched_states =
  let req =
    {
      (P.request ~id ~model) with
      scale = (if full then Magis_models.Zoo.Full else Magis_models.Zoo.Quick);
      mode =
        (if latency_mode then P.Latency mem_ratio else P.Memory overhead);
      deadline_s = deadline;
      max_iterations = iterations;
      progress_every;
      sched_states;
    }
  in
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.optimize ~on_progress:(fun p -> pp_reply (P.Progress p)) c req with
  | P.Result _ as r ->
      pp_reply r;
      0
  | r ->
      pp_reply r;
      2

let request_cmd =
  let model =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL")
  in
  let id =
    Arg.(value & opt string "cli" & info [ "id" ] ~doc:"Request id.")
  in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale graph.") in
  let latency_mode =
    Arg.(value & flag
         & info [ "latency" ] ~doc:"Minimize latency instead of memory.")
  in
  let overhead =
    Arg.(value & opt float 0.1
         & info [ "max-overhead" ] ~doc:"Latency overhead bound (memory mode).")
  in
  let mem_ratio =
    Arg.(value & opt float 0.5
         & info [ "mem-ratio" ] ~doc:"Peak-memory bound (latency mode).")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Deadline; expiry returns best-so-far.")
  in
  let iterations =
    Arg.(value & opt int 32 & info [ "iterations" ] ~doc:"Iteration budget.")
  in
  let progress_every =
    Arg.(value & opt int 8
         & info [ "progress-every" ]
             ~doc:"Iterations between progress events (0 = none).")
  in
  let sched_states =
    Arg.(value & opt int 0 & info [ "sched-states" ] ~doc:"DP state budget.")
  in
  Cmd.v
    (Cmd.info "request" ~doc:"Submit one optimization request to the daemon")
    Term.(const cmd_request $ addr_term $ model $ id $ full $ latency_mode
          $ overhead $ mem_ratio $ deadline $ iterations $ progress_every
          $ sched_states)

let cmd_health addr =
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let h = Client.health c in
  Fmt.pr
    "status=%s queue=%d inflight=%d shed=%d served=%d rejected=%d \
     quarantined=%d cache_hit_rate=%.3f@."
    h.status h.queue_depth h.inflight h.shed_level h.served h.rejected
    h.quarantined h.cache_hit_rate;
  if h.status = "ok" || h.status = "paused" || h.status = "draining" then 0
  else 1

let health_cmd =
  Cmd.v
    (Cmd.info "health" ~doc:"Probe a running daemon's health snapshot")
    Term.(const cmd_health $ addr_term)

let cmd_metrics addr =
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  print_string (Client.metrics_text c);
  0

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Scrape a running daemon's metrics (Prometheus text)")
    Term.(const cmd_metrics $ addr_term)

let cmd_load addr clients per_client models iterations deadline =
  let r =
    Loadgen.run_load ~addr ~clients ~per_client
      ~models:(String.split_on_char ',' models)
      ~max_iterations:iterations ?deadline_s:deadline ()
  in
  Fmt.pr
    "sent=%d completed=%d overloaded=%d deadline=%d errors=%d p50=%.1fms \
     p99=%.1fms rejection_rate=%.3f cache_hit_rate=%.3f wall=%.1fs@."
    r.sent r.completed r.overloaded r.deadline r.errors r.p50_ms r.p99_ms
    r.rejection_rate r.cache_hit_rate r.wall_s;
  if r.completed + r.overloaded + r.deadline + r.errors = r.sent then 0 else 1

let load_cmd =
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Concurrent clients.")
  in
  let per_client =
    Arg.(value & opt int 4 & info [ "per-client" ] ~doc:"Requests per client.")
  in
  let models =
    Arg.(value & opt string "unet,resnet-50"
         & info [ "models" ] ~doc:"Comma-separated workload mix.")
  in
  let iterations =
    Arg.(value & opt int 6
         & info [ "iterations" ] ~doc:"Iteration budget per request.")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~doc:"Per-request deadline seconds.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Drive the daemon with concurrent clients and report latency \
             percentiles, rejection rate and cache hit rate")
    Term.(const cmd_load $ addr_term $ clients $ per_client $ models
          $ iterations $ deadline)

let cmd_chaos addr seed =
  let r = Loadgen.run_chaos ~addr ~seed in
  List.iter
    (fun (name, ok) -> Fmt.pr "%-12s %s@." name (if ok then "PASS" else "FAIL"))
    r.scenarios;
  Fmt.pr "chaos: %d/%d scenarios survived@." r.passed (r.passed + r.failed);
  if r.failed = 0 then 0 else 1

let chaos_cmd =
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Garbage generator seed.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Client-side chaos harness: garbage, oversized lines, \
             disconnects, slow requests, duplicate ids — each asserting the \
             daemon survives and answers")
    Term.(const cmd_chaos $ addr_term $ seed)

let cmd_shutdown addr =
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  Client.send c P.Shutdown;
  (match Client.recv c with P.Ack "shutdown" -> () | _ -> ());
  Fmt.pr "draining@.";
  0

let shutdown_cmd =
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Ask a running daemon to drain and exit")
    Term.(const cmd_shutdown $ addr_term)

let () =
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "magis_serve"
             ~doc:"Crash-tolerant optimization service for MAGIS")
          [ daemon_cmd; request_cmd; health_cmd; metrics_cmd; load_cmd;
            chaos_cmd; shutdown_cmd ]))
