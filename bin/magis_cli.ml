(** MAGIS command-line interface.

    - [magis_cli list] — available workloads (Table 2);
    - [magis_cli inspect WORKLOAD] — graph statistics, D-Graph dimensions
      and F-Tree candidates;
    - [magis_cli optimize WORKLOAD (--max-overhead P | --mem-ratio R)] —
      run the optimizer and print the resulting plan
      ([--stats-json]/[--trace]/[--metrics] export the run's telemetry);
    - [magis_cli profile WORKLOAD -o DIR] — optimize with tracing,
      metrics and per-iteration telemetry enabled; writes trace.json,
      metrics.json, memtl.csv and search.jsonl;
    - [magis_cli verify WORKLOAD] — run the IR verifier and schedule
      legality checker on a workload graph;
    - [magis_cli analyze [WORKLOAD]] — schedule-independent liveness and
      peak-memory bound analysis, with the bound-invariant check against
      two concrete schedules;
    - [magis_cli lint-rules] — differential lint of every rewrite rule
      over the model corpus ([dune build @lint]);
    - [magis_cli check-rules] — prove every rule's symbolic soundness
      obligations or validate its waiver's corpus coverage (exit 1 on a
      failed obligation, 2 on an unbacked waiver); [--interfere W] also
      replays W's memory plan through the allocator interference
      checker; [verify], [lint-rules] and [check-rules] accept [--json];
    - [magis_cli chaos --seed N] — fault-injection self test: a seeded
      search must survive every fault class (CI's chaos-smoke job).

    [optimize] exit codes: 3 = interrupted by SIGINT/SIGTERM after
    writing its checkpoint (rerun with [--resume]); 4 = the checkpoint
    file is incompatible with the requested run. *)

open Magis

let mb b = float_of_int b /. 1e6
let ms s = s *. 1e3

let load name full =
  let w = Zoo.find name in
  (w, w.build (if full then Zoo.Full else Zoo.Quick))

let cmd_list () =
  Printf.printf "%-12s %6s  %s\n" "Name" "Batch" "Configuration";
  List.iter
    (fun (w : Zoo.workload) ->
      Printf.printf "%-12s %6d  %s\n" w.name w.batch w.config)
    Zoo.all

let cmd_inspect name full =
  let w, g = load name full in
  let cache = Op_cost.create Hardware.default in
  let base = Simulator.run cache g (Graph.program_order g) in
  Printf.printf "%s (batch %d, %s)\n" w.name w.batch w.config;
  Printf.printf "  operators:   %d\n" (Graph.n_nodes g);
  Printf.printf "  weights:     %.1f MB\n" (mb (Graph.weight_bytes g));
  Printf.printf "  peak memory: %.1f MB (unoptimized)\n" (mb base.peak_mem);
  Printf.printf "  step time:   %.2f ms (unoptimized)\n" (ms base.latency);
  let dg = Dgraph.build g in
  let comps = Dgraph.components dg in
  Printf.printf "  graph-level dimensions: %d\n" (List.length comps);
  let hot = Lifetime.hotspots base.analysis in
  Printf.printf "  memory hot-spots: %d tensors, %.1f MB\n"
    (Util.Int_set.cardinal hot)
    (mb (Lifetime.hotspot_bytes base.analysis));
  let t = Ftree.construct g ~hotspots:hot in
  Printf.printf "  fission candidates (F-Tree): %d\n" (Ftree.n_entries t);
  for i = 0 to Ftree.n_entries t - 1 do
    let e = Ftree.entry t i in
    Printf.printf "    [%d] parent=%d |S|=%d\n" i e.parent
      (Util.Int_set.cardinal (Fission.members e.fission))
  done

(* exit codes of [optimize] (documented in the README): 3 = the search
   was interrupted by a signal after writing its checkpoint, 4 = the
   checkpoint on disk is incompatible with this run *)
let exit_interrupted = 3
let exit_incompatible = 4

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)

let cmd_optimize name full overhead mem_ratio budget iters jobs ckpt resume
    ckpt_every no_supervise cheap_tier scratch_eval stats_json_path trace_path
    metrics_path =
  let w, g = load name full in
  let cache = Op_cost.create Hardware.default in
  if trace_path <> None then Trace.enable ();
  if metrics_path <> None then Metrics.set_enabled true;
  let base = Simulator.run cache g (Graph.program_order g) in
  if resume && ckpt = None then begin
    prerr_endline "magis: --resume requires --checkpoint FILE";
    exit 2
  end;
  let checkpoint =
    Option.map
      (fun path ->
        { Search.ckpt_path = path; ckpt_every; ckpt_resume = resume })
      ckpt
  in
  let config =
    { Search.default_config with time_budget = budget; jobs;
      max_iterations = iters; checkpoint; supervise = not no_supervise;
      cheap_tier; incremental = not scratch_eval }
  in
  let result =
    try
      match (overhead, mem_ratio) with
      | Some o, _ -> Search.optimize_memory ~config cache ~overhead:o g
      | None, Some r -> Search.optimize_latency ~config cache ~mem_ratio:r g
      | None, None -> Search.optimize_memory ~config cache ~overhead:0.10 g
    with Checkpoint.Incompatible reason ->
      Printf.eprintf "magis: incompatible checkpoint: %s\n" reason;
      exit exit_incompatible
  in
  let best = result.best in
  Printf.printf "%s: %.1f MB / %.2f ms  ->  %.1f MB / %.2f ms\n" w.name
    (mb base.peak_mem) (ms base.latency) (mb best.peak_mem) (ms best.latency);
  Printf.printf "  memory ratio %.2f, latency %+.1f%%\n"
    (float_of_int best.peak_mem /. float_of_int base.peak_mem)
    (100.0 *. (best.latency -. base.latency) /. base.latency);
  Printf.printf "  plan: %d fission region(s), %d swap(s); searched %d states\n"
    (List.length (Ftree.enabled_indices best.ftree))
    (Graph.fold (fun n a -> if n.op = Op.Store then a + 1 else a) best.graph 0)
    result.stats.iterations;
  List.iter
    (fun i ->
      let f = Ftree.fission_at best.ftree i in
      Printf.printf "    fission: %d ops into %d parts\n"
        (Util.Int_set.cardinal (Fission.members f))
        (Fission.fission_number f))
    (Ftree.enabled_indices best.ftree);
  (* the single stat renderer shared with the Fig. 15 bench replaces
     the ad-hoc expansion/resilience/degradation lines this command
     used to assemble itself *)
  Format.printf "%a%!" Search.pp_stats result.stats;
  List.iter
    (fun d -> Fmt.pr "%a@." Diagnostic.pp d)
    result.diagnostics;
  (match stats_json_path with
  | None -> ()
  | Some path ->
      write_file path (Json.to_string (Search.stats_json result.stats));
      Printf.printf "  stats written to %s\n" path);
  (match trace_path with
  | None -> ()
  | Some path ->
      Trace.disable ();
      write_file path (Trace.to_chrome ());
      Printf.printf "  trace written to %s\n" path);
  (match metrics_path with
  | None -> ()
  | Some path ->
      Metrics.set_enabled false;
      write_file path (Metrics.to_json ());
      Printf.printf "  metrics written to %s\n" path);
  if result.stats.n_checkpoints > 0 then
    Printf.printf "  checkpoints: %d written to %s\n"
      result.stats.n_checkpoints
      (match ckpt with Some p -> p | None -> "?");
  if result.interrupted then begin
    Printf.printf "  interrupted by %s; state saved, rerun with --resume\n"
      (match Interrupt.signal_name () with Some s -> s | None -> "signal");
    exit exit_interrupted
  end

(** Profile a full optimization run: tracing and metrics enabled, a
    per-iteration telemetry sink wired into the search, and the best
    schedule replayed with event capture.  Writes four artifacts into
    the output directory: trace.json (Chrome trace: schedule lanes on
    the compute/copy streams plus the wall-clock span view),
    metrics.json, memtl.csv (memory over schedule steps with the
    Membound lower/upper bound columns) and search.jsonl (one record
    per search iteration).  Exits non-zero when the exported memory
    timeline's peak disagrees with the simulator's. *)
let cmd_profile name full overhead mem_ratio budget iters jobs outdir =
  let w, g = load name full in
  let cache = Op_cost.create Hardware.default in
  if not (Sys.file_exists outdir) then Unix.mkdir outdir 0o755;
  Trace.enable ();
  Metrics.set_enabled true;
  let sink = Profile.create (Filename.concat outdir "search.jsonl") in
  let config =
    { Search.default_config with time_budget = budget; jobs;
      max_iterations = iters; profile = Some sink }
  in
  let result =
    Fun.protect ~finally:(fun () -> Profile.close sink) (fun () ->
        match (overhead, mem_ratio) with
        | Some o, _ -> Search.optimize_memory ~config cache ~overhead:o g
        | None, Some r -> Search.optimize_latency ~config cache ~mem_ratio:r g
        | None, None -> Search.optimize_memory ~config cache ~overhead:0.10 g)
  in
  let best = result.best in
  (* replay the best schedule with event capture, under the same F-Tree
     accounting hooks the search evaluated it with *)
  let acc = Ftree.accounting cache best.graph best.ftree in
  let sim, events =
    Simulator.run_events ~size_of:acc.size_of ~cost_of:acc.cost_of cache
      best.graph best.schedule
  in
  Trace.disable ();
  Metrics.set_enabled false;
  let spans =
    List.map
      (fun (e : Simulator.event) ->
        let n = Graph.node best.graph e.ev_node in
        { Timeline.name = Printf.sprintf "%s#%d" (Op.name n.op) e.ev_node;
          lane = (if e.ev_copy then Timeline.Copy else Timeline.Compute);
          t_start = e.ev_start;
          t_dur = e.ev_finish -. e.ev_start;
          bytes = Shape.size_bytes n.shape })
      events
  in
  let out file = Filename.concat outdir file in
  write_file (out "trace.json")
    (Timeline.chrome ~extra:(Trace.chrome_events ()) spans);
  let tl = Lifetime.timeline sim.analysis in
  let bound = Membound.compute ~size_of:acc.size_of best.graph in
  write_file (out "memtl.csv")
    (Timeline.memory_csv ~lower:bound.lower ~upper:bound.ub_total tl);
  write_file (out "metrics.json") (Metrics.to_json ());
  Printf.printf "%s: %d iteration(s) profiled; best %.1f MB / %.2f ms\n" w.name
    result.stats.iterations (mb best.peak_mem) (ms best.latency);
  Printf.printf "  %s: %d schedule event(s), %d trace event(s)%s\n"
    (out "trace.json") (List.length spans)
    (List.length (Trace.events ()))
    (let d = Trace.dropped () in
     if d > 0 then Printf.sprintf " (%d dropped)" d else "");
  Printf.printf "  %s: %d step(s), peak %.1f MB\n" (out "memtl.csv")
    (Array.length tl)
    (mb (Timeline.memory_max tl));
  Printf.printf "  %s: %d record(s)\n" (out "search.jsonl") (Profile.count sink);
  Printf.printf "  %s\n" (out "metrics.json");
  (* cross-check the exported artifacts against the simulator *)
  if Timeline.memory_max tl <> sim.peak_mem then begin
    Printf.eprintf
      "magis: memory timeline peak %d disagrees with simulator peak %d\n"
      (Timeline.memory_max tl) sim.peak_mem;
    exit 1
  end;
  (* and replay the optimized schedule's memory plan through the
     allocator interference checker *)
  let itf =
    Interfere.check ~size_of:acc.Ftree.size_of best.graph best.schedule
  in
  Fmt.pr "  interference: @[<v>%a@]@." Interfere.pp_report itf;
  if not (Interfere.is_clean itf) then exit 1

(** Chaos harness: a seeded Randnet search is run fault-free, then once
    per (site, fault kind) with a transient fault planted at a
    pseudo-random visit inside the fault-free visit range.  Transient
    faults must leave the result bit-identical (the supervisor retries
    them); a persistent burst must quarantine — never crash — and a
    NaN burst must surface as a nonfinite-cost diagnostic.  Exits
    non-zero on the first violated expectation. *)
let cmd_chaos seed jobs iters =
  let g =
    Randnet.build
      ~cfg:
        { Randnet.cells = 2; nodes_per_cell = 4; channels = 8; image = 8;
          batch = 2; seed }
      ()
  in
  let config =
    { Search.default_config with time_budget = 1e9; max_iterations = iters;
      jobs }
  in
  let run_once () =
    (* fresh cost cache per run: fault-site visit counts and results
       must not depend on warmth left by a previous run *)
    let cache = Op_cost.create Hardware.default in
    Search.optimize_memory ~config cache ~overhead:0.10 g
  in
  Fault.observe ();
  let clean = run_once () in
  let visits = List.map (fun s -> (s, Fault.visits s)) Fault.sites in
  Fault.disarm ();
  Printf.printf "chaos: seed %d, %d iteration(s), clean best %.1f MB / %.2f ms\n"
    seed clean.stats.iterations
    (mb clean.best.peak_mem) (ms clean.best.latency);
  List.iter (fun (s, v) -> Printf.printf "  site %-12s %d visit(s)\n" s v)
    visits;
  let failures = ref 0 in
  let case label specs check =
    Fault.arm specs;
    let outcome = try Ok (run_once ()) with e -> Error e in
    let fired = List.length (Fault.fired ()) in
    Fault.disarm ();
    match outcome with
    | Error e ->
        incr failures;
        Printf.printf "FAIL %-28s crashed: %s\n" label (Printexc.to_string e)
    | Ok r when fired = 0 ->
        incr failures;
        Printf.printf "FAIL %-28s no fault fired (%d quarantined)\n" label
          r.stats.n_quarantined
    | Ok r -> (
        match check r with
        | None -> Printf.printf "ok   %-28s %d fired, %d retried, %d quarantined\n"
                    label fired r.stats.n_retried r.stats.n_quarantined
        | Some why ->
            incr failures;
            Printf.printf "FAIL %-28s %s (%d fired, %d retried, %d quarantined)\n"
              label why fired r.stats.n_retried r.stats.n_quarantined)
  in
  let identical (r : Search.result) =
    if
      r.best.peak_mem = clean.best.peak_mem
      && r.best.latency = clean.best.latency
      && r.stats.iterations = clean.stats.iterations
    then None
    else
      Some
        (Printf.sprintf "diverged: %.1f MB / %.2f ms (clean %.1f / %.2f)"
           (mb r.best.peak_mem) (ms r.best.latency)
           (mb clean.best.peak_mem) (ms clean.best.latency))
  in
  let window site =
    let v = List.assoc site visits in
    (* skip the early visits: the baseline simulation and the initial
       M-state are evaluated outside the supervised expansion loop *)
    (max 4 (v / 3), max 5 (2 * v / 3))
  in
  (* transient faults: one planted visit per site; the supervisor's
     retry must reproduce the fault-free result exactly *)
  List.iter
    (fun site ->
      let lo, hi = window site in
      let kinds =
        [ ("exception", Fault.Exception); ("delay", Fault.Delay 0.002);
          ("stall", Fault.Stall 0.02) ]
        @ if site = "op_cost" then [ ("nan", Fault.Nan_cost) ] else []
      in
      List.iter
        (fun (kname, kind) ->
          case
            (Printf.sprintf "transient %s @ %s" kname site)
            (Fault.seeded ~seed ~lo ~hi [ (site, kind) ])
            identical)
        kinds)
    Fault.sites;
  (* Persistent faults: every visit of the site fails for a long
     stretch, so no bounded retry can outrun it — candidates must be
     quarantined with the right diagnostic, and the search must still
     return.  The burst must outlast a whole batch pass plus the retry
     chain of at least one candidate (each failing execution consumes
     exactly one visit, and the pool pass spreads the first failures
     across the batch before any retry runs). *)
  let persistent_len = 400 in
  (let site = "simulator" in
   let lo, _ = window site in
   case "persistent exception burst"
     (Fault.burst ~site ~at:lo ~len:persistent_len Fault.Exception)
     (fun r ->
       if r.stats.n_quarantined = 0 then Some "nothing was quarantined"
       else if
         not
           (List.exists
              (fun (d : Diagnostic.t) -> d.check = "injected-fault")
              r.diagnostics)
       then Some "no injected-fault diagnostic"
       else None));
  (let site = "op_cost" in
   let lo, _ = window site in
   case "persistent nan burst"
     (Fault.burst ~site ~at:lo ~len:persistent_len Fault.Nan_cost)
     (fun r ->
       if r.stats.n_quarantined = 0 then Some "nothing was quarantined"
       else if
         not
           (List.exists
              (fun (d : Diagnostic.t) -> d.check = "nonfinite-cost")
              r.diagnostics)
       then Some "no nonfinite-cost diagnostic"
       else None));
  if !failures > 0 then begin
    Printf.printf "chaos: %d failure(s)\n" !failures;
    exit 1
  end
  else print_endline "chaos: all fault classes survived"

let cmd_codegen name full budget output =
  let _, g = load name full in
  let cache = Op_cost.create Hardware.default in
  let config = { Search.default_config with time_budget = budget } in
  let result = Search.optimize_memory ~config cache ~overhead:0.10 g in
  let best = result.best in
  let code =
    Pytorch_codegen.emit_expanded
      ~module_doc:
        (Printf.sprintf "MAGIS-optimized %s (peak %.1f MB, %+.1f%% latency)"
           name
           (mb best.peak_mem)
           (100.0
           *. (best.latency -. (Simulator.run cache g (Graph.program_order g)).latency)
           /. (Simulator.run cache g (Graph.program_order g)).latency))
      best.graph best.ftree
      ~reschedule:(fun g' -> Reorder.schedule ~max_states:0 g')
  in
  match output with
  | None -> print_string code
  | Some path ->
      let oc = open_out path in
      output_string oc code;
      close_out oc;
      Printf.printf "wrote %s (%d lines)\n" path
        (List.length (String.split_on_char '\n' code))

(** Static bound analysis of one graph: liveness mobility histogram,
    the full {!Membound} record, and the gap between the bounds and two
    concrete schedules (program order and the memory-greedy reorder).
    Returns the bound-invariant diagnostics. *)
let analyze_one cache name g =
  let base = Simulator.run cache g (Graph.program_order g) in
  let lv = Liveness.compute g in
  let b = Membound.of_liveness lv in
  let greedy_order = Reorder.schedule ~max_states:0 g in
  let greedy = Simulator.run cache g greedy_order in
  Printf.printf "%s: %d operator(s)\n" name (Graph.n_nodes g);
  Printf.printf "  weights: %.1f MB pinned; outputs: %.1f MB pinned\n"
    (mb (Liveness.weight_bytes lv))
    (mb (Liveness.pinned_bytes lv - Liveness.weight_bytes lv));
  Fmt.pr "  %a@." Membound.pp b;
  let acc = Ftree.accounting cache g Ftree.empty in
  let lat_lb = Membound.latency_lower_bound ~cost_of:acc.cost_of g in
  Printf.printf "  latency: %.2f ms simulated, %.2f ms lower bound\n"
    (ms base.latency) (ms lat_lb);
  Printf.printf
    "  peak: %.1f MB program order, %.1f MB greedy; lower-bound gap %.2fx / \
     %.2fx\n"
    (mb base.peak_mem) (mb greedy.peak_mem)
    (float_of_int base.peak_mem /. float_of_int (max 1 b.lower))
    (float_of_int greedy.peak_mem /. float_of_int (max 1 b.lower));
  (* mobility histogram: how much schedule freedom the tensors have *)
  let buckets = [| 0; 0; 0; 0; 0 |] in
  let bucket_of m =
    if m = 0 then 0 else if m <= 2 then 1 else if m <= 7 then 2
    else if m <= 15 then 3 else 4
  in
  Liveness.fold
    (fun v () ->
      let i = bucket_of (Liveness.mobility lv v) in
      buckets.(i) <- buckets.(i) + 1)
    lv ();
  Printf.printf
    "  mobility: %d fixed, %d of 1-2 steps, %d of 3-7, %d of 8-15, %d of 16+\n"
    buckets.(0) buckets.(1) buckets.(2) buckets.(3) buckets.(4);
  let diags =
    Membound.check b ~peak:base.peak_mem
    @ Membound.check b ~peak:greedy.peak_mem
  in
  if not (Diagnostic.is_clean diags) then
    Fmt.pr "%a@." Diagnostic.pp_report diags;
  diags

let cmd_analyze name full =
  let cache = Op_cost.create Hardware.default in
  let targets =
    match name with Some n -> [ Zoo.find n ] | None -> Zoo.all
  in
  let diags =
    List.concat_map
      (fun (w : Zoo.workload) ->
        analyze_one cache w.name
          (w.build (if full then Zoo.Full else Zoo.Quick)))
      targets
  in
  if Diagnostic.is_clean diags then print_endline "bound invariants clean"
  else exit 1

let diags_json diags =
  Json.List (List.map Diagnostic.to_json diags)

let cmd_verify name full json =
  let w, g = load name full in
  let order = Graph.program_order g in
  let diags = Verify.graph g @ Sched_check.schedule g order in
  if json then
    print_endline
      (Json.to_string
         (Json.Obj
            [ ("workload", Json.String w.name);
              ("operators", Json.Int (Graph.n_nodes g));
              ("steps", Json.Int (List.length order));
              ("clean", Json.Bool (Diagnostic.is_clean diags));
              ("diagnostics", diags_json diags) ]))
  else begin
    Printf.printf "%s: %d operator(s), %d scheduled step(s)\n" w.name
      (Graph.n_nodes g) (List.length order);
    if diags = [] then print_endline "verification clean"
    else Fmt.pr "%a@." Diagnostic.pp_report diags
  end;
  if not (Diagnostic.is_clean diags) then exit 1

(** Hand-built graph exercising the rewrite patterns the model zoo never
    produces: a transpose∘transpose pair, a concat of contiguous slices
    of one tensor, and a Store/Load swap pair (the de-swap rule). *)
let patterns_graph () =
  let g = Graph.empty in
  let sh = Shape.create [ 2; 4; 8 ] in
  let g, x = Graph.add_input ~label:"x" g Op.Placeholder sh in
  let g, t1 = Graph.add g (Op.Transpose [| 0; 2; 1 |]) [ x ] in
  let g, t2 = Graph.add g (Op.Transpose [| 0; 2; 1 |]) [ t1 ] in
  let g, s1 = Graph.add g (Op.Slice { axis = 1; lo = 0; hi = 2 }) [ t2 ] in
  let g, s2 = Graph.add g (Op.Slice { axis = 1; lo = 2; hi = 4 }) [ t2 ] in
  let g, cat = Graph.add g (Op.Concat 1) [ s1; s2 ] in
  let g, relu = Graph.add g (Op.Unary Op.Relu) [ cat ] in
  let g, store = Graph.add g Op.Store [ relu ] in
  let g, load = Graph.add g Op.Load [ store ] in
  let g, _ = Graph.add g (Op.Binary Op.Add) [ load; x ] in
  g

(** Lint corpus: every Table 2 workload at [Quick] scale, a few seeded
    random NASNet-like graphs (small enough for the numeric equivalence
    check to run on them), and materialized fission variants of the
    smallest subjects (the slice/part/merge seams F-Trans produces). *)
let lint_corpus seeds =
  let base =
    [ ("patterns", patterns_graph ()) ]
    @ List.map
        (fun (w : Zoo.workload) -> (w.name, w.build Zoo.Quick))
        Zoo.all
    @ List.map
        (fun seed ->
          ( Printf.sprintf "randnet-%d" seed,
            Randnet.build
              ~cfg:
                { Randnet.cells = 1; nodes_per_cell = 3; channels = 8;
                  image = 8; batch = 2; seed }
              () ))
        seeds
  in
  let small =
    List.filter (fun (_, g) -> Graph.n_nodes g <= 80) base
  in
  base @ Rule_lint.builtin_corpus () @ Rule_lint.fission_corpus ~max_graphs:6 small

let cmd_lint_rules seeds max_per_rule interp_limit json =
  let corpus = lint_corpus (List.init seeds (fun i -> i + 1)) in
  if not json then
    Printf.printf "corpus: %s\n%!"
      (String.concat ", "
         (List.map
            (fun (name, g) -> Printf.sprintf "%s(%d)" name (Graph.n_nodes g))
            corpus));
  let rules = Taso_rules.all @ Sched_rules.all in
  let report = Rule_lint.lint ~max_per_rule ~interp_limit ~rules corpus in
  if json then
    print_endline
      (Json.to_string
         (Json.Obj
            [ ("corpus",
               Json.List (List.map (fun (n, _) -> Json.String n) corpus));
              ("rules", Json.Int report.Rule_lint.n_rules);
              ("rewrites", Json.Int report.Rule_lint.n_rewrites);
              ("errors", Json.Int report.Rule_lint.n_errors);
              ("warnings", Json.Int report.Rule_lint.n_warnings);
              ("diagnostics",
               diags_json
                 (List.concat_map
                    (fun (e : Rule_lint.entry) -> e.diags)
                    report.Rule_lint.entries)) ]))
  else Fmt.pr "%a@." Rule_lint.pp_report report;
  if not (Rule_lint.is_clean report) then exit 1

(* exit codes of [check-rules] (documented in the README): 1 = a
   soundness obligation or the interference check failed, 2 = every
   obligation holds but some waiver lacks corpus coverage *)
let exit_unsound = 1
let exit_unbacked_waiver = 2

(** Interference probe for [check-rules --interfere]: the workload's
    program-order baseline, plus the schedule an actual (short) memory
    optimization produced — swap/remat output is where allocator bugs
    would surface. *)
let interfere_probe name budget =
  let w = Zoo.find name in
  let g = w.build Zoo.Quick in
  let base = Interfere.check g (Graph.program_order g) in
  let cache = Op_cost.create Hardware.default in
  let config = { Search.default_config with time_budget = budget } in
  let result = Search.optimize_memory ~config cache ~overhead:0.10 g in
  let best = result.Search.best in
  let acc = Ftree.accounting cache best.Mstate.graph best.Mstate.ftree in
  let opt =
    Interfere.check ~size_of:acc.Ftree.size_of best.Mstate.graph
      best.Mstate.schedule
  in
  [ (Printf.sprintf "%s (program order)" w.name, base);
    (Printf.sprintf "%s (optimized)" w.name, opt) ]

let cmd_check_rules json interfere_wl budget =
  let corpus = Rule_lint.builtin_corpus () in
  let rules = Taso_rules.all @ Sched_rules.all in
  let report = Rule_sound.check_rules ~corpus rules in
  let probes =
    match interfere_wl with
    | None -> []
    | Some name -> interfere_probe name budget
  in
  if json then begin
    let entry (e : Rule_sound.entry) =
      Json.Obj
        (( "rule", Json.String e.rule )
         :: (match e.status with
            | Rule_sound.Proven n ->
                [ ("status", Json.String "proven"); ("templates", Json.Int n) ]
            | Rule_sound.Waived reason ->
                [ ("status", Json.String "waived");
                  ("reason", Json.String reason) ])
        @ [ ("diagnostics", diags_json e.diags) ])
    in
    let probe (name, (r : Interfere.report)) =
      Json.Obj
        [ ("subject", Json.String name);
          ("buffers", Json.Int r.Interfere.n_buffers);
          ("arena_bytes", Json.Int r.Interfere.arena.Allocator.arena_size);
          ("peak_live", Json.Int r.Interfere.arena.Allocator.peak_live);
          ("clean", Json.Bool (Interfere.is_clean r));
          ("diagnostics", diags_json r.Interfere.diags) ]
    in
    print_endline
      (Json.to_string
         (Json.Obj
            [ ("proven", Json.Int report.Rule_sound.n_proven);
              ("waived", Json.Int report.Rule_sound.n_waived);
              ("errors", Json.Int report.Rule_sound.n_errors);
              ("warnings", Json.Int report.Rule_sound.n_warnings);
              ("unbacked_waivers",
               Json.List
                 (List.map
                    (fun r -> Json.String r)
                    (Rule_sound.unbacked_waivers report)));
              ("rules", Json.List (List.map entry report.Rule_sound.entries));
              ("interference", Json.List (List.map probe probes)) ]))
  end
  else begin
    Fmt.pr "%a@." Rule_sound.pp_report report;
    List.iter
      (fun (name, r) -> Fmt.pr "interference %s:@.  @[<v>%a@]@." name
          Interfere.pp_report r)
      probes
  end;
  let unbacked = Rule_sound.unbacked_waivers report in
  let interfere_bad =
    List.exists (fun (_, r) -> not (Interfere.is_clean r)) probes
  in
  (* unbacked waivers account for all their errors; anything beyond that
     is a real soundness failure *)
  let n_unbacked_errors =
    List.length
      (List.filter
         (fun (d : Diagnostic.t) -> d.check = "waiver-no-coverage")
         (Diagnostic.errors
            (List.concat_map
               (fun (e : Rule_sound.entry) -> e.diags)
               report.Rule_sound.entries)))
  in
  if report.Rule_sound.n_errors > n_unbacked_errors || interfere_bad then
    exit exit_unsound
  else if unbacked <> [] then exit exit_unbacked_waiver

let cmd_export name full fmt_ =
  let _, g = load name full in
  match fmt_ with
  | "dot" -> print_string (Export.to_dot g)
  | "text" -> print_string (Export.to_text g)
  | "summary" -> print_endline (Export.summary g)
  | other -> Printf.eprintf "unknown format %s (dot|text|summary)\n" other

(* exit code of [frontier] (documented in the README): 5 = some
   requested budget has no feasible point on the frontier *)
let exit_infeasible = 5

let cmd_frontier name full hw_name batch budgets cache_dir iters sched_states
    json =
  let w = Zoo.find name in
  let w = match batch with None -> w | Some b -> Zoo.with_batch w ~batch:b in
  let hw = Hardware.find hw_name in
  let scale = if full then Zoo.Full else Zoo.Quick in
  let graph = w.build scale in
  let cache = Op_cost.create hw in
  let config =
    { Search.default_config with max_iterations = iters; sched_states }
  in
  let mode = Search.Min_memory { lat_limit = infinity } in
  let fr, status =
    Frontier_build.cached_or_build ~config ~dir:cache_dir cache mode graph
  in
  let budgets =
    if budgets <> [] then budgets
    else [ 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]
  in
  let answers =
    List.map
      (fun ratio -> (ratio, Frontier_build.query_ratio fr ~ratio))
      budgets
  in
  let searches = match status with `Hit -> 0 | `Built _ -> 1 in
  if json then begin
    let c = Frontier.counters fr in
    let answer (ratio, ans) =
      Json.Obj
        (( "budget_ratio", Json.Float ratio )
         :: ("budget_bytes",
             Json.Int (Frontier_build.budget_of_ratio fr ~ratio))
         ::
         (match ans with
         | Some (p : Frontier.point) ->
             [ ("feasible", Json.Bool true);
               ("peak_mem", Json.Int p.peak);
               ("latency", Json.Float p.latency) ]
         | None -> [ ("feasible", Json.Bool false) ]))
    in
    print_endline
      (Json.to_string
         (Json.Obj
            [ ("workload", Json.String w.name);
              ("hw", Json.String hw.Hardware.name);
              ("cache_hit", Json.Bool (searches = 0));
              ("searches", Json.Int searches);
              ("points", Json.Int (Frontier.size fr));
              ("harvested", Json.Int c.Frontier.harvested);
              ("answers", Json.List (List.map answer answers)) ]))
  end
  else begin
    Printf.printf "%s on %s: %s, %d frontier points (%d searches)\n" w.name
      hw.Hardware.name
      (match status with `Hit -> "cache hit" | `Built _ -> "built")
      (Frontier.size fr) searches;
    (match Frontier.peak_range fr with
    | Some (lo, hi) ->
        Printf.printf "  peak range %.1f-%.1f MB\n" (mb lo) (mb hi)
    | None -> ());
    List.iter
      (fun (ratio, ans) ->
        match ans with
        | Some (p : Frontier.point) ->
            Printf.printf "  budget %.2f (%.1f MB): %.1f MB / %.2f ms\n" ratio
              (mb (Frontier_build.budget_of_ratio fr ~ratio))
              (mb p.peak) (ms p.latency)
        | None ->
            Printf.printf "  budget %.2f (%.1f MB): infeasible\n" ratio
              (mb (Frontier_build.budget_of_ratio fr ~ratio)))
      answers
  end;
  if List.exists (fun (_, ans) -> ans = None) answers then exit exit_infeasible

open Cmdliner

let workload = Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale model configuration.")

let list_cmd = Cmd.v (Cmd.info "list" ~doc:"List workloads") Term.(const cmd_list $ const ())

let inspect_cmd =
  Cmd.v (Cmd.info "inspect" ~doc:"Analyze a workload")
    Term.(const cmd_inspect $ workload $ full)

let optimize_cmd =
  let overhead =
    Arg.(value & opt (some float) None
         & info [ "max-overhead" ] ~doc:"Minimize memory; allow this latency overhead (e.g. 0.10).")
  in
  let mem_ratio =
    Arg.(value & opt (some float) None
         & info [ "mem-ratio" ] ~doc:"Minimize latency; cap memory at this ratio of the unoptimized peak.")
  in
  let budget =
    Arg.(value & opt float 10.0 & info [ "budget" ] ~doc:"Search seconds.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ]
             ~doc:"Worker domains for candidate expansion (1 = serial).")
  in
  let iters =
    Arg.(value & opt int max_int
         & info [ "iters" ] ~doc:"Maximum search iterations.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ]
             ~doc:"Write crash-safe search snapshots to this file.")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Resume from the checkpoint file when one exists \
                   (requires --checkpoint; exit code 4 when the file is \
                   incompatible with this run).")
  in
  let ckpt_every =
    Arg.(value & opt float 30.0
         & info [ "ckpt-every" ] ~doc:"Seconds between periodic snapshots.")
  in
  let no_supervise =
    Arg.(value & flag
         & info [ "no-supervise" ]
             ~doc:"Disable supervised expansion: the first candidate \
                   failure aborts the whole search (legacy semantics).")
  in
  let cheap_tier =
    Arg.(value & flag
         & info [ "cheap-tier" ]
             ~doc:"Two-tier candidate evaluation: score every candidate \
                   with the critical-path list scheduler and promote only \
                   admitted ones to the exact incremental reschedule.")
  in
  let scratch_eval =
    Arg.(value & flag
         & info [ "scratch-eval" ]
             ~doc:"Disable the O(Δ) incremental bound structures and \
                   recompute every candidate's analyses from scratch \
                   (A/B baseline; the search trajectory is unchanged).")
  in
  let stats_json =
    Arg.(value & opt (some string) None
         & info [ "stats-json" ]
             ~doc:"Write the per-phase search statistics as JSON to this file.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ]
             ~doc:"Enable tracing and write a Chrome trace-event file here.")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ]
             ~doc:"Enable metrics and write the registry snapshot (JSON) here.")
  in
  Cmd.v (Cmd.info "optimize" ~doc:"Optimize a workload")
    Term.(const cmd_optimize $ workload $ full $ overhead $ mem_ratio $ budget
          $ iters $ jobs $ checkpoint $ resume $ ckpt_every $ no_supervise
          $ cheap_tier $ scratch_eval $ stats_json $ trace $ metrics)

let profile_cmd =
  let overhead =
    Arg.(value & opt (some float) None
         & info [ "max-overhead" ] ~doc:"Minimize memory; allow this latency overhead (e.g. 0.10).")
  in
  let mem_ratio =
    Arg.(value & opt (some float) None
         & info [ "mem-ratio" ] ~doc:"Minimize latency; cap memory at this ratio of the unoptimized peak.")
  in
  let budget =
    Arg.(value & opt float 10.0 & info [ "budget" ] ~doc:"Search seconds.")
  in
  let iters =
    Arg.(value & opt int max_int
         & info [ "iters" ] ~doc:"Maximum search iterations.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ]
             ~doc:"Worker domains for candidate expansion (1 = serial).")
  in
  let outdir =
    Arg.(value & opt string "magis-profile"
         & info [ "o"; "output" ]
             ~doc:"Directory for trace.json, metrics.json, memtl.csv and \
                   search.jsonl (created when missing).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Optimize a workload with tracing, metrics and per-iteration \
          telemetry enabled; write the Chrome trace (schedule lanes + \
          wall-clock spans), metrics snapshot, memory timeline and search \
          JSONL into a directory")
    Term.(const cmd_profile $ workload $ full $ overhead $ mem_ratio $ budget
          $ iters $ jobs $ outdir)

let chaos_cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Randnet and fault-plan seed.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ]
             ~doc:"Worker domains for candidate expansion (1 = serial).")
  in
  let iters =
    Arg.(value & opt int 8 & info [ "iters" ] ~doc:"Search iterations per run.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Fault-injection self test: a seeded search must survive every \
          fault class, reproducing the fault-free result exactly under \
          transient faults and quarantining persistent ones")
    Term.(const cmd_chaos $ seed $ jobs $ iters)

let codegen_cmd =
  let budget =
    Arg.(value & opt float 10.0 & info [ "budget" ] ~doc:"Search seconds.")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~doc:"Write the Python module here.")
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Optimize a workload and emit PyTorch code for the result")
    Term.(const cmd_codegen $ workload $ full $ budget $ output)

let export_cmd =
  let fmt_ =
    Arg.(value & opt string "summary"
         & info [ "format" ] ~doc:"dot, text or summary.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a workload graph")
    Term.(const cmd_export $ workload $ full $ fmt_)

let json_flag =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Emit the report as a single JSON object on stdout.")

let frontier_cmd =
  let hw =
    Arg.(value & opt string "rtx3090"
         & info [ "hw" ]
             ~doc:"Hardware profile (see [magis list] docs: rtx3090, a100, \
                   mobile, edge-lb, tiered).")
  in
  let batch =
    Arg.(value & opt (some int) None
         & info [ "batch" ] ~doc:"Rebuild the workload at this batch size.")
  in
  let budgets =
    Arg.(value & opt_all float []
         & info [ "budget" ]
             ~doc:"Memory budget as a ratio of the baseline peak, in (0, 1]; \
                   repeatable.  Default: an 8-step ladder from 0.30 to 1.00.")
  in
  let cache_dir =
    Arg.(value & opt string "_frontier_cache"
         & info [ "cache-dir" ]
             ~doc:"Frontier cache directory: a repeated invocation answers \
                   every budget from the cached frontier with zero searches.")
  in
  let iters =
    Arg.(value & opt int 32
         & info [ "iters" ]
             ~doc:"Maximum search iterations for a cache-miss build (part \
                   of the cache key).")
  in
  let sched_states =
    Arg.(value & opt int 0
         & info [ "sched-states" ]
             ~doc:"DP budget per scheduling call (part of the cache key).")
  in
  Cmd.v
    (Cmd.info "frontier"
       ~doc:
         "Sweep (or reload) the memory-latency Pareto frontier of a \
          workload and answer one or more memory-budget queries from it; \
          one search populates a cache that answers every later budget \
          with zero searches (exit 5 when a budget is infeasible)")
    Term.(const cmd_frontier $ workload $ full $ hw $ batch $ budgets
          $ cache_dir $ iters $ sched_states $ json_flag)

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Run the IR verifier and schedule legality checker on a workload")
    Term.(const cmd_verify $ workload $ full $ json_flag)

let analyze_cmd =
  let workload_opt =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Schedule-independent liveness and peak-memory bound analysis of a \
          workload (all workloads when omitted); exits non-zero on any \
          bound-invariant violation")
    Term.(const cmd_analyze $ workload_opt $ full)

let lint_rules_cmd =
  let seeds =
    Arg.(value & opt int 3
         & info [ "seeds" ] ~doc:"Number of seeded random graphs in the corpus.")
  in
  let max_per_rule =
    Arg.(value & opt int 4
         & info [ "max-per-rule" ] ~doc:"Rewrites checked per rule and corpus graph.")
  in
  let interp_limit =
    Arg.(value & opt int 80
         & info [ "interp-limit" ]
             ~doc:"Largest node count checked numerically on the interpreter.")
  in
  Cmd.v
    (Cmd.info "lint-rules"
       ~doc:"Differential lint of every rewrite rule over the model corpus")
    Term.(const cmd_lint_rules $ seeds $ max_per_rule $ interp_limit $ json_flag)

let check_rules_cmd =
  let interfere =
    Arg.(value & opt (some string) None
         & info [ "interfere" ] ~docv:"WORKLOAD"
             ~doc:"Also replay the memory plan for this workload (program \
                   order and a short optimization) through the allocator \
                   interference checker.")
  in
  let budget =
    Arg.(value & opt float 2.0
         & info [ "budget" ]
             ~doc:"Search seconds for the --interfere optimization probe.")
  in
  Cmd.v
    (Cmd.info "check-rules"
       ~doc:
         "Prove every rewrite rule's symbolic soundness obligations \
          (output shapes, dtypes, memory delta, dependency refinement, \
          grounding conformance) or validate its waiver's differential \
          coverage; exit 1 on a failed obligation, 2 on an unbacked waiver")
    Term.(const cmd_check_rules $ json_flag $ interfere $ budget)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "magis" ~doc:"MAGIS memory optimizer for DNN graphs")
          [ list_cmd; inspect_cmd; optimize_cmd; profile_cmd; codegen_cmd;
            export_cmd; verify_cmd; analyze_cmd; lint_rules_cmd;
            check_rules_cmd; frontier_cmd; chaos_cmd ]))
