(** MAGIS command-line interface.

    - [magis_cli list] — available workloads (Table 2);
    - [magis_cli inspect WORKLOAD] — graph statistics, D-Graph dimensions
      and F-Tree candidates;
    - [magis_cli optimize WORKLOAD (--max-overhead P | --mem-ratio R)] —
      run the optimizer and print the resulting plan;
    - [magis_cli verify WORKLOAD] — run the IR verifier and schedule
      legality checker on a workload graph;
    - [magis_cli analyze [WORKLOAD]] — schedule-independent liveness and
      peak-memory bound analysis, with the bound-invariant check against
      two concrete schedules;
    - [magis_cli lint-rules] — differential lint of every rewrite rule
      over the model corpus ([dune build @lint]). *)

open Magis

let mb b = float_of_int b /. 1e6
let ms s = s *. 1e3

let load name full =
  let w = Zoo.find name in
  (w, w.build (if full then Zoo.Full else Zoo.Quick))

let cmd_list () =
  Printf.printf "%-12s %6s  %s\n" "Name" "Batch" "Configuration";
  List.iter
    (fun (w : Zoo.workload) ->
      Printf.printf "%-12s %6d  %s\n" w.name w.batch w.config)
    Zoo.all

let cmd_inspect name full =
  let w, g = load name full in
  let cache = Op_cost.create Hardware.default in
  let base = Simulator.run cache g (Graph.program_order g) in
  Printf.printf "%s (batch %d, %s)\n" w.name w.batch w.config;
  Printf.printf "  operators:   %d\n" (Graph.n_nodes g);
  Printf.printf "  weights:     %.1f MB\n" (mb (Graph.weight_bytes g));
  Printf.printf "  peak memory: %.1f MB (unoptimized)\n" (mb base.peak_mem);
  Printf.printf "  step time:   %.2f ms (unoptimized)\n" (ms base.latency);
  let dg = Dgraph.build g in
  let comps = Dgraph.components dg in
  Printf.printf "  graph-level dimensions: %d\n" (List.length comps);
  let hot = Lifetime.hotspots base.analysis in
  Printf.printf "  memory hot-spots: %d tensors, %.1f MB\n"
    (Util.Int_set.cardinal hot)
    (mb (Lifetime.hotspot_bytes base.analysis));
  let t = Ftree.construct g ~hotspots:hot in
  Printf.printf "  fission candidates (F-Tree): %d\n" (Ftree.n_entries t);
  for i = 0 to Ftree.n_entries t - 1 do
    let e = Ftree.entry t i in
    Printf.printf "    [%d] parent=%d |S|=%d\n" i e.parent
      (Util.Int_set.cardinal (Fission.members e.fission))
  done

let cmd_optimize name full overhead mem_ratio budget jobs =
  let w, g = load name full in
  let cache = Op_cost.create Hardware.default in
  let base = Simulator.run cache g (Graph.program_order g) in
  let config = { Search.default_config with time_budget = budget; jobs } in
  let result =
    match (overhead, mem_ratio) with
    | Some o, _ -> Search.optimize_memory ~config cache ~overhead:o g
    | None, Some r -> Search.optimize_latency ~config cache ~mem_ratio:r g
    | None, None -> Search.optimize_memory ~config cache ~overhead:0.10 g
  in
  let best = result.best in
  Printf.printf "%s: %.1f MB / %.2f ms  ->  %.1f MB / %.2f ms\n" w.name
    (mb base.peak_mem) (ms base.latency) (mb best.peak_mem) (ms best.latency);
  Printf.printf "  memory ratio %.2f, latency %+.1f%%\n"
    (float_of_int best.peak_mem /. float_of_int base.peak_mem)
    (100.0 *. (best.latency -. base.latency) /. base.latency);
  Printf.printf "  plan: %d fission region(s), %d swap(s); searched %d states\n"
    (List.length (Ftree.enabled_indices best.ftree))
    (Graph.fold (fun n a -> if n.op = Op.Store then a + 1 else a) best.graph 0)
    result.stats.iterations;
  if jobs > 1 then
    Printf.printf "  expansion: %d worker domain(s), sim cache %d hits / %d misses\n"
      jobs result.stats.n_sim_hit result.stats.n_sim_miss;
  List.iter
    (fun i ->
      let f = Ftree.fission_at best.ftree i in
      Printf.printf "    fission: %d ops into %d parts\n"
        (Util.Int_set.cardinal (Fission.members f))
        (Fission.fission_number f))
    (Ftree.enabled_indices best.ftree)

let cmd_codegen name full budget output =
  let _, g = load name full in
  let cache = Op_cost.create Hardware.default in
  let config = { Search.default_config with time_budget = budget } in
  let result = Search.optimize_memory ~config cache ~overhead:0.10 g in
  let best = result.best in
  let code =
    Pytorch_codegen.emit_expanded
      ~module_doc:
        (Printf.sprintf "MAGIS-optimized %s (peak %.1f MB, %+.1f%% latency)"
           name
           (mb best.peak_mem)
           (100.0
           *. (best.latency -. (Simulator.run cache g (Graph.program_order g)).latency)
           /. (Simulator.run cache g (Graph.program_order g)).latency))
      best.graph best.ftree
      ~reschedule:(fun g' -> Reorder.schedule ~max_states:0 g')
  in
  match output with
  | None -> print_string code
  | Some path ->
      let oc = open_out path in
      output_string oc code;
      close_out oc;
      Printf.printf "wrote %s (%d lines)\n" path
        (List.length (String.split_on_char '\n' code))

(** Static bound analysis of one graph: liveness mobility histogram,
    the full {!Membound} record, and the gap between the bounds and two
    concrete schedules (program order and the memory-greedy reorder).
    Returns the bound-invariant diagnostics. *)
let analyze_one cache name g =
  let base = Simulator.run cache g (Graph.program_order g) in
  let lv = Liveness.compute g in
  let b = Membound.of_liveness lv in
  let greedy_order = Reorder.schedule ~max_states:0 g in
  let greedy = Simulator.run cache g greedy_order in
  Printf.printf "%s: %d operator(s)\n" name (Graph.n_nodes g);
  Printf.printf "  weights: %.1f MB pinned; outputs: %.1f MB pinned\n"
    (mb (Liveness.weight_bytes lv))
    (mb (Liveness.pinned_bytes lv - Liveness.weight_bytes lv));
  Fmt.pr "  %a@." Membound.pp b;
  let acc = Ftree.accounting cache g Ftree.empty in
  let lat_lb = Membound.latency_lower_bound ~cost_of:acc.cost_of g in
  Printf.printf "  latency: %.2f ms simulated, %.2f ms lower bound\n"
    (ms base.latency) (ms lat_lb);
  Printf.printf
    "  peak: %.1f MB program order, %.1f MB greedy; lower-bound gap %.2fx / \
     %.2fx\n"
    (mb base.peak_mem) (mb greedy.peak_mem)
    (float_of_int base.peak_mem /. float_of_int (max 1 b.lower))
    (float_of_int greedy.peak_mem /. float_of_int (max 1 b.lower));
  (* mobility histogram: how much schedule freedom the tensors have *)
  let buckets = [| 0; 0; 0; 0; 0 |] in
  let bucket_of m =
    if m = 0 then 0 else if m <= 2 then 1 else if m <= 7 then 2
    else if m <= 15 then 3 else 4
  in
  Liveness.fold
    (fun v () ->
      let i = bucket_of (Liveness.mobility lv v) in
      buckets.(i) <- buckets.(i) + 1)
    lv ();
  Printf.printf
    "  mobility: %d fixed, %d of 1-2 steps, %d of 3-7, %d of 8-15, %d of 16+\n"
    buckets.(0) buckets.(1) buckets.(2) buckets.(3) buckets.(4);
  let diags =
    Membound.check b ~peak:base.peak_mem
    @ Membound.check b ~peak:greedy.peak_mem
  in
  if not (Diagnostic.is_clean diags) then
    Fmt.pr "%a@." Diagnostic.pp_report diags;
  diags

let cmd_analyze name full =
  let cache = Op_cost.create Hardware.default in
  let targets =
    match name with Some n -> [ Zoo.find n ] | None -> Zoo.all
  in
  let diags =
    List.concat_map
      (fun (w : Zoo.workload) ->
        analyze_one cache w.name
          (w.build (if full then Zoo.Full else Zoo.Quick)))
      targets
  in
  if Diagnostic.is_clean diags then print_endline "bound invariants clean"
  else exit 1

let cmd_verify name full =
  let w, g = load name full in
  let order = Graph.program_order g in
  let diags = Verify.graph g @ Sched_check.schedule g order in
  Printf.printf "%s: %d operator(s), %d scheduled step(s)\n" w.name
    (Graph.n_nodes g) (List.length order);
  if diags = [] then print_endline "verification clean"
  else Fmt.pr "%a@." Diagnostic.pp_report diags;
  if not (Diagnostic.is_clean diags) then exit 1

(** Hand-built graph exercising the rewrite patterns the model zoo never
    produces: a transpose∘transpose pair, a concat of contiguous slices
    of one tensor, and a Store/Load swap pair (the de-swap rule). *)
let patterns_graph () =
  let g = Graph.empty in
  let sh = Shape.create [ 2; 4; 8 ] in
  let g, x = Graph.add_input ~label:"x" g Op.Placeholder sh in
  let g, t1 = Graph.add g (Op.Transpose [| 0; 2; 1 |]) [ x ] in
  let g, t2 = Graph.add g (Op.Transpose [| 0; 2; 1 |]) [ t1 ] in
  let g, s1 = Graph.add g (Op.Slice { axis = 1; lo = 0; hi = 2 }) [ t2 ] in
  let g, s2 = Graph.add g (Op.Slice { axis = 1; lo = 2; hi = 4 }) [ t2 ] in
  let g, cat = Graph.add g (Op.Concat 1) [ s1; s2 ] in
  let g, relu = Graph.add g (Op.Unary Op.Relu) [ cat ] in
  let g, store = Graph.add g Op.Store [ relu ] in
  let g, load = Graph.add g Op.Load [ store ] in
  let g, _ = Graph.add g (Op.Binary Op.Add) [ load; x ] in
  g

(** Lint corpus: every Table 2 workload at [Quick] scale, a few seeded
    random NASNet-like graphs (small enough for the numeric equivalence
    check to run on them), and materialized fission variants of the
    smallest subjects (the slice/part/merge seams F-Trans produces). *)
let lint_corpus seeds =
  let base =
    [ ("patterns", patterns_graph ()) ]
    @ List.map
        (fun (w : Zoo.workload) -> (w.name, w.build Zoo.Quick))
        Zoo.all
    @ List.map
        (fun seed ->
          ( Printf.sprintf "randnet-%d" seed,
            Randnet.build
              ~cfg:
                { Randnet.cells = 1; nodes_per_cell = 3; channels = 8;
                  image = 8; batch = 2; seed }
              () ))
        seeds
  in
  let small =
    List.filter (fun (_, g) -> Graph.n_nodes g <= 80) base
  in
  base @ Rule_lint.fission_corpus ~max_graphs:6 small

let cmd_lint_rules seeds max_per_rule interp_limit =
  let corpus = lint_corpus (List.init seeds (fun i -> i + 1)) in
  Printf.printf "corpus: %s\n%!"
    (String.concat ", "
       (List.map
          (fun (name, g) -> Printf.sprintf "%s(%d)" name (Graph.n_nodes g))
          corpus));
  let rules = Taso_rules.all @ Sched_rules.all in
  let report = Rule_lint.lint ~max_per_rule ~interp_limit ~rules corpus in
  Fmt.pr "%a@." Rule_lint.pp_report report;
  if not (Rule_lint.is_clean report) then exit 1

let cmd_export name full fmt_ =
  let _, g = load name full in
  match fmt_ with
  | "dot" -> print_string (Export.to_dot g)
  | "text" -> print_string (Export.to_text g)
  | "summary" -> print_endline (Export.summary g)
  | other -> Printf.eprintf "unknown format %s (dot|text|summary)\n" other

open Cmdliner

let workload = Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale model configuration.")

let list_cmd = Cmd.v (Cmd.info "list" ~doc:"List workloads") Term.(const cmd_list $ const ())

let inspect_cmd =
  Cmd.v (Cmd.info "inspect" ~doc:"Analyze a workload")
    Term.(const cmd_inspect $ workload $ full)

let optimize_cmd =
  let overhead =
    Arg.(value & opt (some float) None
         & info [ "max-overhead" ] ~doc:"Minimize memory; allow this latency overhead (e.g. 0.10).")
  in
  let mem_ratio =
    Arg.(value & opt (some float) None
         & info [ "mem-ratio" ] ~doc:"Minimize latency; cap memory at this ratio of the unoptimized peak.")
  in
  let budget =
    Arg.(value & opt float 10.0 & info [ "budget" ] ~doc:"Search seconds.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ]
             ~doc:"Worker domains for candidate expansion (1 = serial).")
  in
  Cmd.v (Cmd.info "optimize" ~doc:"Optimize a workload")
    Term.(const cmd_optimize $ workload $ full $ overhead $ mem_ratio $ budget
          $ jobs)

let codegen_cmd =
  let budget =
    Arg.(value & opt float 10.0 & info [ "budget" ] ~doc:"Search seconds.")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~doc:"Write the Python module here.")
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Optimize a workload and emit PyTorch code for the result")
    Term.(const cmd_codegen $ workload $ full $ budget $ output)

let export_cmd =
  let fmt_ =
    Arg.(value & opt string "summary"
         & info [ "format" ] ~doc:"dot, text or summary.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a workload graph")
    Term.(const cmd_export $ workload $ full $ fmt_)

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Run the IR verifier and schedule legality checker on a workload")
    Term.(const cmd_verify $ workload $ full)

let analyze_cmd =
  let workload_opt =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Schedule-independent liveness and peak-memory bound analysis of a \
          workload (all workloads when omitted); exits non-zero on any \
          bound-invariant violation")
    Term.(const cmd_analyze $ workload_opt $ full)

let lint_rules_cmd =
  let seeds =
    Arg.(value & opt int 3
         & info [ "seeds" ] ~doc:"Number of seeded random graphs in the corpus.")
  in
  let max_per_rule =
    Arg.(value & opt int 4
         & info [ "max-per-rule" ] ~doc:"Rewrites checked per rule and corpus graph.")
  in
  let interp_limit =
    Arg.(value & opt int 80
         & info [ "interp-limit" ]
             ~doc:"Largest node count checked numerically on the interpreter.")
  in
  Cmd.v
    (Cmd.info "lint-rules"
       ~doc:"Differential lint of every rewrite rule over the model corpus")
    Term.(const cmd_lint_rules $ seeds $ max_per_rule $ interp_limit)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "magis" ~doc:"MAGIS memory optimizer for DNN graphs")
          [ list_cmd; inspect_cmd; optimize_cmd; codegen_cmd; export_cmd;
            verify_cmd; analyze_cmd; lint_rules_cmd ]))
