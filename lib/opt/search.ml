(** Top-level search (Algorithm 3 of the paper).

    A greedy best-first search over M-States: a priority queue ordered by
    [BetterThan] (lexicographic on (constrained objective, other
    objective)), Weisfeiler-Lehman hashing to skip duplicate graphs,
    F-Tree refresh after graph rewrites, and incremental scheduling
    (Algorithm 2) after every transformation.

    Two modes: minimize latency under a memory limit, or minimize peak
    memory under a latency limit.  Per-phase time accounting reproduces
    the Fig. 15 breakdown; the history of best results over elapsed time
    reproduces the Fig. 13 curves.

    Candidate expansion is embarrassingly parallel: each child state is
    an independent (rewrite → F-Tree refresh → reschedule → simulate →
    WL-hash) pipeline sharing nothing but the frontier.  With
    [config.jobs > 1] the per-iteration candidates fan out over a fixed
    pool of OCaml 5 domains ({!Magis_par.Pool}); candidates are
    generated, deduplicated and merged serially in candidate order, and
    each worker accumulates into its own [stats] folded at the merge, so
    a parallel run returns bit-identical best states (and per-phase
    totals) to a serial one.  Evaluations are memoized in a
    {!Sim_cache} shared across domains — and, when the caller passes one
    in, across searches.

    Resilience (see DESIGN.md §9): with [config.supervise] (the
    default) a candidate whose evaluation raises is retried with
    bounded backoff and, if it keeps failing, quarantined with a
    structured {!Magis_analysis.Diagnostic} — the surviving candidates
    of the batch are kept, where the legacy path re-raised and lost
    them all.  [config.checkpoint] periodically (and on SIGINT/SIGTERM)
    serializes the full frontier to a crash-safe file from which a
    later run resumes bit-identically.  [config.degrade] steps search
    effort down as the time budget nears exhaustion instead of letting
    the final iterations overshoot it. *)

open Magis_ir
open Magis_cost
open Magis_ftree
open Magis_rules
module Pool = Magis_par.Pool
module Fault = Magis_resilience.Fault
module Retry = Magis_resilience.Retry
module Checkpoint = Magis_resilience.Checkpoint
module Interrupt = Magis_resilience.Interrupt
module Diagnostic = Magis_analysis.Diagnostic
module Int_set = Util.Int_set
module Trace = Magis_obs.Trace
module Metrics = Magis_obs.Metrics
module Profile = Magis_obs.Profile
module Json = Magis_obs.Json

let m_iterations = Metrics.counter "search.iterations"
let m_retried = Metrics.counter "search.retried"
let m_quarantined = Metrics.counter "search.quarantined"
let m_sched_fallbacks = Metrics.counter "search.sched_fallbacks"

type mode =
  | Min_latency of { mem_limit : int }
      (** optimize latency, peak memory must stay below the limit *)
  | Min_memory of { lat_limit : float }
      (** optimize peak memory, latency must stay below the limit *)

type ablation = {
  use_ftree_heuristic : bool;  (** false = "naïve-fission" of Fig. 13 *)
  restrict_sched_rules : bool;  (** false = "naïve-sch-rule" of Fig. 13 *)
  max_level : int;  (** F-Tree max level L *)
}

let default_ablation =
  { use_ftree_heuristic = true; restrict_sched_rules = true; max_level = 4 }

(** Raised (never quarantined) when [verify_states] finds an invalid
    accepted state: a verification failure is a bug in the optimizer,
    not a runtime fault to be retried around. *)
exception Verification_failure of string

type stats = {
  mutable n_transform : int;
  mutable t_transform : float;
  mutable n_sched : int;
  mutable t_sched : float;
  mutable n_simul : int;
  mutable t_simul : float;
  mutable n_hash : int;
  mutable t_hash : float;
  mutable n_filtered : int;
  mutable iterations : int;
  mutable n_sim_hit : int;
  mutable n_sim_miss : int;
  mutable n_bound_calls : int;
  mutable t_bound : float;
  mutable n_pruned_lb : int;
  mutable n_lv_delta : int;
      (** bound probes answered by the O(Δ) liveness delta-update path
          instead of a scratch analysis *)
  mutable n_cut_reused : int;
      (** probe cut evaluations inherited from the parent state *)
  mutable n_cut_recomputed : int;  (** probe cut evaluations actually run *)
  mutable n_sched_fallback : int;
      (** incremental reschedules that fell back to a full reschedule
          (window splice produced an illegal order) *)
  mutable n_resched_nodes : int;
      (** nodes actually re-placed by the incremental rescheduler *)
  mutable n_sched_nodes : int;
      (** total nodes across the produced schedules (denominator of the
          rescheduled-node fraction) *)
  mutable n_cheap_sched : int;
      (** candidates evaluated by the cheap list-scheduling tier *)
  mutable n_promoted : int;
      (** cheap-tier candidates that passed δ-admission and were
          re-evaluated by the exact tier *)
  mutable domain_time : float array;
      (** cumulative busy seconds per expansion worker *)
  mutable n_retried : int;
  mutable n_quarantined : int;
  mutable n_checkpoints : int;
  mutable degrade_steps : (float * string) list;
      (** graceful-degradation ladder steps taken, in order: (elapsed
          seconds, step name) *)
}

let fresh_stats () =
  {
    n_transform = 0;
    t_transform = 0.0;
    n_sched = 0;
    t_sched = 0.0;
    n_simul = 0;
    t_simul = 0.0;
    n_hash = 0;
    t_hash = 0.0;
    n_filtered = 0;
    iterations = 0;
    n_sim_hit = 0;
    n_sim_miss = 0;
    n_bound_calls = 0;
    t_bound = 0.0;
    n_pruned_lb = 0;
    n_lv_delta = 0;
    n_cut_reused = 0;
    n_cut_recomputed = 0;
    n_sched_fallback = 0;
    n_resched_nodes = 0;
    n_sched_nodes = 0;
    n_cheap_sched = 0;
    n_promoted = 0;
    domain_time = [||];
    n_retried = 0;
    n_quarantined = 0;
    n_checkpoints = 0;
    degrade_steps = [];
  }

(** Fold a worker-local accumulator into the run totals.  Workers never
    write the shared record; the fold happens on the orchestrating
    domain, in candidate order, so float sums are reproducible.  The
    supervision counters (retries, quarantines, checkpoints, ladder
    steps) belong to the orchestrator alone and are not folded. *)
let merge_stats (dst : stats) (src : stats) =
  dst.n_transform <- dst.n_transform + src.n_transform;
  dst.t_transform <- dst.t_transform +. src.t_transform;
  dst.n_sched <- dst.n_sched + src.n_sched;
  dst.t_sched <- dst.t_sched +. src.t_sched;
  dst.n_simul <- dst.n_simul + src.n_simul;
  dst.t_simul <- dst.t_simul +. src.t_simul;
  dst.n_hash <- dst.n_hash + src.n_hash;
  dst.t_hash <- dst.t_hash +. src.t_hash;
  dst.n_filtered <- dst.n_filtered + src.n_filtered;
  dst.n_sim_hit <- dst.n_sim_hit + src.n_sim_hit;
  dst.n_sim_miss <- dst.n_sim_miss + src.n_sim_miss;
  dst.n_bound_calls <- dst.n_bound_calls + src.n_bound_calls;
  dst.t_bound <- dst.t_bound +. src.t_bound;
  dst.n_pruned_lb <- dst.n_pruned_lb + src.n_pruned_lb;
  dst.n_lv_delta <- dst.n_lv_delta + src.n_lv_delta;
  dst.n_cut_reused <- dst.n_cut_reused + src.n_cut_reused;
  dst.n_cut_recomputed <- dst.n_cut_recomputed + src.n_cut_recomputed;
  dst.n_sched_fallback <- dst.n_sched_fallback + src.n_sched_fallback;
  dst.n_resched_nodes <- dst.n_resched_nodes + src.n_resched_nodes;
  dst.n_sched_nodes <- dst.n_sched_nodes + src.n_sched_nodes;
  dst.n_cheap_sched <- dst.n_cheap_sched + src.n_cheap_sched;
  dst.n_promoted <- dst.n_promoted + src.n_promoted

type result = {
  best : Mstate.t;
  initial : Mstate.t;
  stats : stats;
  history : (float * int * float) list;
      (** (elapsed seconds, best peak bytes, best latency) after each
          improvement *)
  diagnostics : Diagnostic.t list;
      (** quarantine reports of the supervised expansion, oldest first
          ([] in a fault-free run) *)
  interrupted : bool;
      (** true when the run was cut short by SIGINT/SIGTERM (the
          checkpoint, if configured, was written before returning) *)
}

(* ------------------------------------------------------------------ *)
(* Stats export                                                        *)
(* ------------------------------------------------------------------ *)

let sim_hit_rate (st : stats) =
  let total = st.n_sim_hit + st.n_sim_miss in
  if total = 0 then 0.0 else float_of_int st.n_sim_hit /. float_of_int total

(** Fraction of scheduled nodes the incremental rescheduler actually
    re-placed (0 when nothing was scheduled) — the O(Δ) headline. *)
let resched_frac (st : stats) =
  if st.n_sched_nodes = 0 then 0.0
  else float_of_int st.n_resched_nodes /. float_of_int st.n_sched_nodes

(** Fraction of probe cut evaluations inherited from the parent. *)
let cut_reuse_rate (st : stats) =
  let total = st.n_cut_reused + st.n_cut_recomputed in
  if total = 0 then 0.0 else float_of_int st.n_cut_reused /. float_of_int total

let stats_json (st : stats) : Json.t =
  Json.Obj
    [
      ("iterations", Json.Int st.iterations);
      ("n_transform", Json.Int st.n_transform);
      ("t_transform", Json.Float st.t_transform);
      ("n_sched", Json.Int st.n_sched);
      ("t_sched", Json.Float st.t_sched);
      ("n_simul", Json.Int st.n_simul);
      ("t_simul", Json.Float st.t_simul);
      ("n_hash", Json.Int st.n_hash);
      ("t_hash", Json.Float st.t_hash);
      ("n_filtered", Json.Int st.n_filtered);
      ("n_sim_hit", Json.Int st.n_sim_hit);
      ("n_sim_miss", Json.Int st.n_sim_miss);
      ("sim_hit_rate", Json.Float (sim_hit_rate st));
      ("n_bound_calls", Json.Int st.n_bound_calls);
      ("t_bound", Json.Float st.t_bound);
      ("n_pruned_lb", Json.Int st.n_pruned_lb);
      ("n_lv_delta", Json.Int st.n_lv_delta);
      ("n_cut_reused", Json.Int st.n_cut_reused);
      ("n_cut_recomputed", Json.Int st.n_cut_recomputed);
      ("cut_reuse_rate", Json.Float (cut_reuse_rate st));
      ("n_sched_fallback", Json.Int st.n_sched_fallback);
      ("n_resched_nodes", Json.Int st.n_resched_nodes);
      ("n_sched_nodes", Json.Int st.n_sched_nodes);
      ("resched_frac", Json.Float (resched_frac st));
      ("n_cheap_sched", Json.Int st.n_cheap_sched);
      ("n_promoted", Json.Int st.n_promoted);
      ("n_retried", Json.Int st.n_retried);
      ("n_quarantined", Json.Int st.n_quarantined);
      ("n_checkpoints", Json.Int st.n_checkpoints);
      ( "domain_time",
        Json.List
          (Array.to_list (Array.map (fun t -> Json.Float t) st.domain_time)) );
      ( "degrade_steps",
        Json.List
          (List.map
             (fun (t, name) ->
               Json.Obj
                 [ ("elapsed", Json.Float t); ("step", Json.String name) ])
             st.degrade_steps) );
    ]

(** Fig. 15 layout — counts and cumulative seconds per search phase —
    followed by the cache, worker and resilience summary lines.  The
    single stat renderer shared by [magis_cli optimize] and the Fig. 15
    bench (which used to duplicate it). *)
let pp_stats ppf (st : stats) =
  let total =
    st.t_transform +. st.t_sched +. st.t_simul +. st.t_hash +. st.t_bound
  in
  Format.fprintf ppf "%-10s %10s %10s %10s %10s %10s %10s %10s %10s@\n" ""
    "Total" "Trans." "Sched." "Simul." "Hash" "Bound" "Filtered" "PrunedLB";
  Format.fprintf ppf "%-10s %10d %10d %10d %10d %10d %10d %10d %10d@\n" "Count"
    (st.n_transform + st.n_sched + st.n_simul + st.n_hash + st.n_bound_calls)
    st.n_transform st.n_sched st.n_simul st.n_hash st.n_bound_calls
    st.n_filtered st.n_pruned_lb;
  Format.fprintf ppf "%-10s %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f %10s %10s@\n"
    "Cost(secs)" total st.t_transform st.t_sched st.t_simul st.t_hash
    st.t_bound "/" "/";
  Format.fprintf ppf "Iterations: %d@\n" st.iterations;
  Format.fprintf ppf "Simulation cache: %d hits, %d misses (%.0f%% hit rate)@\n"
    st.n_sim_hit st.n_sim_miss
    (100.0 *. sim_hit_rate st);
  if st.n_lv_delta > 0 then
    Format.fprintf ppf
      "Incremental bounds: %d delta updates; cuts %d reused / %d recomputed \
       (%.0f%% reuse)@\n"
      st.n_lv_delta st.n_cut_reused st.n_cut_recomputed
      (100.0 *. cut_reuse_rate st);
  if st.n_sched_nodes > 0 then
    Format.fprintf ppf
      "Incremental scheduling: %.1f%% of nodes re-placed; %d fallback(s) to \
       full reschedule@\n"
      (100.0 *. resched_frac st)
      st.n_sched_fallback;
  if st.n_cheap_sched > 0 then
    Format.fprintf ppf "Cheap tier: %d list-scheduled, %d promoted to exact@\n"
      st.n_cheap_sched st.n_promoted;
  if Array.length st.domain_time > 0 then
    Format.fprintf ppf "Expansion workers: %d; per-domain busy seconds: [%s]@\n"
      (Array.length st.domain_time)
      (String.concat "; "
         (Array.to_list (Array.map (Printf.sprintf "%.2f") st.domain_time)));
  if st.n_retried > 0 || st.n_quarantined > 0 then
    Format.fprintf ppf "Resilience: %d candidate(s) retried, %d quarantined@\n"
      st.n_retried st.n_quarantined;
  if st.n_checkpoints > 0 then
    Format.fprintf ppf "Checkpoints: %d written@\n" st.n_checkpoints;
  List.iter
    (fun (t, step) -> Format.fprintf ppf "Degraded at %.1fs: %s@\n" t step)
    st.degrade_steps

(* ------------------------------------------------------------------ *)
(* Ordering                                                            *)
(* ------------------------------------------------------------------ *)

(** BetterThan of Algorithm 3: compare the constrained objective clamped
    at the limit first, the free objective second.  [delta] relaxes the
    right-hand side (the paper's δ = 1.1 queue-admission slack). *)
let key (mode : mode) (s : Mstate.t) : float * float =
  match mode with
  | Min_latency { mem_limit } ->
      (float_of_int (max s.peak_mem mem_limit), s.latency)
  | Min_memory { lat_limit } ->
      (Float.max s.latency lat_limit, float_of_int s.peak_mem)

let better_than (mode : mode) ?(delta = 1.0) (a : Mstate.t) (b : Mstate.t) :
    bool =
  let ka1, ka2 = key mode a and kb1, kb2 = key mode b in
  (ka1, ka2) < (delta *. kb1, delta *. kb2)

(** The paper's δ = 1.1 queue-admission slack.  Shared between the
    push test and the bound-pruning test: a candidate is dropped before
    evaluation only when its admissible lower bound already proves it
    would fail [better_than mode ~delta:queue_delta] against the
    incumbent — which (key components being non-negative) also implies
    it cannot become the new best, so pruning never changes the search
    trajectory. *)
let queue_delta = 1.1

module Pq = Map.Make (struct
  type t = float * float

  let compare = compare
end)

(* ------------------------------------------------------------------ *)
(* Neighbor generation                                                 *)
(* ------------------------------------------------------------------ *)

type checkpoint = {
  ckpt_path : string;  (** snapshot file, atomically replaced *)
  ckpt_every : float;  (** seconds between periodic snapshots *)
  ckpt_resume : bool;
      (** restore from [ckpt_path] when a compatible snapshot exists
          (a missing file silently starts fresh; an incompatible or
          corrupt one raises {!Magis_resilience.Checkpoint.Incompatible}) *)
}

type config = {
  ablation : ablation;
  sched_states : int;  (** DP state budget per scheduling call *)
  max_per_rule : int;
  time_budget : float;  (** seconds *)
  max_iterations : int;
  diversify_pops : bool;
      (** every few pops, take a random queue bucket instead of the best
          (escapes local optima created by aggressive early rewrites) *)
  use_sweep_rules : bool;  (** compound swap/remat rules *)
  verify_states : bool;
      (** debug: run the IR verifier and schedule legality checker on
          every accepted M-state, raising on the first violation (tests
          and CI turn this on; benchmarks leave it off) *)
  jobs : int;
      (** worker domains for candidate expansion; 1 (the default) spawns
          no domains and is the exact legacy serial path *)
  sim_cache : Sim_cache.t option;
      (** simulation cache; [None] (the default) uses a fresh private
          cache per run, [Some c] shares [c] across runs *)
  prune_bounds : bool;
      (** branch-and-bound pruning: drop candidates whose
          schedule-independent lower bound ({!Magis_analysis.Membound})
          proves they cannot pass the δ-relaxed queue admission test,
          before rescheduling and simulation.  Trajectory-preserving:
          the returned best state is bit-identical with pruning on or
          off. *)
  incremental : bool;
      (** answer memory-bound probes by {!Magis_analysis.Liveness}
          delta-update + {!Magis_analysis.Membound} probe-update against
          the popped parent (default on) instead of a per-candidate
          scratch analysis.  The probe bound is identical to the scratch
          probe bound (asserted under [verify_states]), so this too is
          trajectory-preserving — only the per-candidate cost drops from
          O(n) to O(Δ). *)
  cheap_tier : bool;
      (** two-tier evaluation (default off): score every candidate with
          the O((V+E) log V) critical-path list scheduler
          ({!Magis_sched.Listsched}) first, and promote only candidates
          that pass δ-admission against the incumbent to the exact tier
          (incremental reschedule + cached simulation).  Exact numbers
          drive the best state and the queue; cheap ones only gate
          promotion, so every reported state is exactly evaluated —
          but the trajectory may differ from the one-tier search (a
          cheap schedule can overshoot δ on a candidate the exact tier
          would have admitted). *)
  supervise : bool;
      (** per-candidate exception isolation (default on): a failing
          candidate is retried, then quarantined with a diagnostic,
          and the rest of the batch survives.  Off = the all-or-nothing
          legacy semantics where the first failure aborts the search. *)
  max_retries : int;
      (** bounded-backoff re-executions of a failed candidate before it
          is quarantined *)
  checkpoint : checkpoint option;  (** crash-safe snapshots; [None] = off *)
  degrade : bool;
      (** graceful-degradation ladder (default on): past 85% of
          [time_budget] the DP budget steps down to a quarter, past 95%
          bound probes are disabled, and exhaustion returns best-so-far
          — each step recorded in [stats.degrade_steps] *)
  profile : Profile.t option;
      (** per-iteration telemetry sink (JSONL); [None] (the default) =
          off.  Purely observational: excluded from the trajectory
          fingerprint, never changes the search *)
  harvest : (iteration:int -> Mstate.t -> unit) option;
      (** side channel fed every exactly-evaluated candidate at the
          serial phase-4 merge, in candidate order, before and
          regardless of admission ({!Magis_frontier} collects them into
          a Pareto frontier).  Purely observational: excluded from the
          trajectory fingerprint, never changes the search *)
  cancel : unit -> bool;
      (** cooperative cancellation hook, polled at every expansion
          boundary alongside {!Magis_resilience.Interrupt.requested}:
          returning [true] makes the run checkpoint (if configured) and
          return best-so-far with [interrupted] set.  A server maps
          client disconnects onto this.  Default: [fun () -> false]. *)
}

let default_config =
  {
    ablation = default_ablation;
    sched_states = 0;
    max_per_rule = 6;
    time_budget = 10.0;
    max_iterations = max_int;
    diversify_pops = true;
    use_sweep_rules = true;
    verify_states = false;
    jobs = 1;
    sim_cache = None;
    prune_bounds = true;
    incremental = true;
    cheap_tier = false;
    supervise = true;
    max_retries = 3;
    checkpoint = None;
    degrade = true;
    profile = None;
    harvest = None;
    cancel = (fun () -> false);
  }

let timed _stats fld_t fld_n f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  fld_t dt;
  fld_n ();
  r

type proposal = {
  p_graph : Graph.t;
  p_ftree : Ftree.t;
  p_mutated : Int_set.t;  (** old nodes affected, for incremental sched *)
  p_stale : bool;
}

(** Proposals reached by F-Tree mutations: the graph is unchanged, the
    virtual fission state moves. *)
let ftree_proposals _cfg stats (s : Mstate.t) : proposal list =
  let muts =
    timed stats
      (fun dt -> stats.t_transform <- stats.t_transform +. dt)
      (fun () -> ())
      (fun () -> Ftree.mutations s.graph s.ftree)
  in
  List.filter_map
    (fun m ->
      stats.n_transform <- stats.n_transform + 1;
      match Ftree.apply s.graph s.ftree m with
      | None -> None
      | Some ftree' ->
          let affected =
            match m with
            | Ftree.Enable i | Ftree.Disable i | Ftree.Mutate i ->
                Fission.members (Ftree.fission_at ftree' i)
            | Ftree.Lift i ->
                let e = Ftree.entry ftree' i in
                if e.parent >= 0 then
                  Fission.members (Ftree.fission_at ftree' e.parent)
                else Fission.members (Ftree.fission_at ftree' i)
          in
          Some
            { p_graph = s.graph; p_ftree = ftree'; p_mutated = affected;
              p_stale = s.ftree_stale })
    muts

(** Proposals reached by graph rewrites (scheduling-based and TASO rules). *)
let rewrite_proposals (cfg : config) stats (s : Mstate.t) : proposal list =
  let pos = Hashtbl.create (List.length s.schedule) in
  List.iteri (fun i v -> Hashtbl.replace pos v i) s.schedule;
  let ctx =
    {
      Rule.hotspots = s.hotspots;
      frozen = Ftree.frozen_region s.ftree;
      schedule_pos = (fun v -> Hashtbl.find_opt pos v);
      max_per_rule = cfg.max_per_rule;
      restrict_to_hotspots = cfg.ablation.restrict_sched_rules;
    }
  in
  let rules =
    (if cfg.use_sweep_rules then Sched_rules.all else Sched_rules.basic)
    @ Taso_rules.all
  in
  List.concat_map
    (fun (rule : Rule.t) ->
      let rewrites =
        timed stats
          (fun dt -> stats.t_transform <- stats.t_transform +. dt)
          (fun () -> ())
          (fun () -> rule.apply ctx s.graph)
      in
      List.map
        (fun (rw : Rule.rewrite) ->
          stats.n_transform <- stats.n_transform + 1;
          { p_graph = rw.graph; p_ftree = Ftree.prune rw.graph s.ftree;
            p_mutated = rw.touched_old; p_stale = true })
        rewrites)
    rules

(** Everything a worker needs to evaluate proposals: the operator-cost
    cache, the simulation cache and the constant key ingredients. *)
type eval_ctx = {
  ec_cache : Op_cost.t;
  ec_sim : Sim_cache.t;
  ec_mode : int64;  (** mode fingerprint (cross-mode collision guard) *)
  ec_hw : int64;  (** hardware fingerprint *)
}

(** Digest of the mode, including its limit, for the simulation-cache
    key: the two optimization modes can never share an entry. *)
let mode_fingerprint : mode -> int64 = function
  | Min_latency { mem_limit } ->
      Util.hash_combine 1L (Int64.of_int mem_limit)
  | Min_memory { lat_limit } ->
      Util.hash_combine 2L (Int64.bits_of_float lat_limit)

(* ------------------------------------------------------------------ *)
(* Branch-and-bound pruning                                            *)
(* ------------------------------------------------------------------ *)

(** Cut-candidate sample size for the hot-path memory lower bound.  Any
    subset of cut positions yields an admissible (if weaker) bound, so a
    small deterministic sample keeps the probe cheaper than the
    reschedule + simulate it replaces. *)
let bound_sample = 8

(** Multiplicative safety margin on the float-summed latency lower
    bound: the simulator accumulates the same per-op costs in schedule
    order interleaved with maxes, so the two sums can differ by ulps.
    Shrinking the bound by one part in 10⁹ keeps it admissible without
    weakening it measurably. *)
let lat_lb_margin = 1.0 -. 1e-9

(** Pruning decision context, frozen on the orchestrating domain once
    per iteration (so every worker prunes against the same incumbent and
    a parallel run stays bit-identical to a serial one).  [threshold] is
    [queue_delta *. fst (key mode !best)]: a candidate whose clamped
    first key component provably exceeds it fails the push test — and,
    components being non-negative, the δ = 1 best-update test too. *)
type bound_check =
  | No_prune
  | Prune_mem of { threshold : float; mem_limit : int }
  | Prune_lat of { threshold : float; lat_limit : float }

let bound_check_of ~prune (mode : mode) (best : Mstate.t) : bound_check =
  if not prune then No_prune
  else
    let threshold = queue_delta *. fst (key mode best) in
    match mode with
    | Min_latency { mem_limit } -> Prune_mem { threshold; mem_limit }
    | Min_memory { lat_limit } -> Prune_lat { threshold; lat_limit }

(** Admissible latency floor of a proposal: serialized compute time of
    every non-swap operator plus the F-Tree's virtual-fission overhead.
    The simulator's latency is [max t_compute t_copy >= t_compute], and
    [t_compute] sums exactly these costs over the schedule. *)
let proposal_latency_lb (acc : Ftree.accounting) (g : Graph.t) : float =
  (Magis_analysis.Membound.latency_lower_bound ~cost_of:acc.cost_of g
  +. acc.extra_latency)
  *. lat_lb_margin

(** The popped state's liveness analysis and memory-bound probe, built
    once per iteration on the orchestrating domain so every candidate's
    probe is an O(Δ) update against it rather than an O(n) scratch
    analysis.  Immutable after construction (delta updates share rows by
    reference but never write them), so workers read it concurrently
    without synchronization. *)
type incr_parent = {
  ip_lv : Magis_analysis.Liveness.t;
  ip_probe : Magis_analysis.Membound.probe;
}

(** Memory lower bound of a proposal: the O(Δ) incremental path when a
    parent probe is available, the scratch sampled probe otherwise.
    Under [verify_states] the incremental result is checked against the
    scratch-recompute oracle ({!Magis_analysis.Liveness.equivalent} plus
    probe-bound equality), raising {!Verification_failure} on any
    divergence.  The oracle costs the very O(n) analysis the delta path
    avoids, so it runs on a deterministic 1-in-8 sample of candidates,
    keyed by [state_hash] — independent of [jobs] and stable across
    runs; the property tests cover every candidate exhaustively. *)
let oracle_this_candidate state_hash = Int64.logand state_hash 7L = 0L

(** Dirty-cone cap for the delta path, as a fraction of the graph: a
    rewrite whose reachability cone covers more than a third of the
    nodes would rebuild most bitset rows — slower than the dense
    scratch probe — so such candidates fall back to it.  Both bounds
    are admissible, so the choice only affects counters, never the
    search trajectory.  Deterministic in the graph alone: independent
    of [jobs] and stable across runs. *)
let delta_max_dirty n = n / 3

let proposal_mem_lb (cfg : config) stats ~(incr_parent : incr_parent option)
    ~state_hash (acc : Ftree.accounting) (p : proposal) : int =
  let incr_result =
    match incr_parent with
    | None -> None
    | Some ip ->
        Magis_analysis.Liveness.delta_update ~size_of:acc.size_of
          ~max_dirty:(delta_max_dirty (Magis_analysis.Liveness.length ip.ip_lv))
          ip.ip_lv p.p_graph ~mutated:p.p_mutated
        |> Option.map (fun (lv', delta) -> (ip, lv', delta))
  in
  match incr_result with
  | Some (ip, lv', delta) ->
      stats.n_lv_delta <- stats.n_lv_delta + 1;
      let probe' =
        Magis_analysis.Membound.probe_update ip.ip_probe lv' ~delta
      in
      let reused, recomputed =
        Magis_analysis.Membound.probe_counters probe'
      in
      stats.n_cut_reused <- stats.n_cut_reused + reused;
      stats.n_cut_recomputed <- stats.n_cut_recomputed + recomputed;
      let lb = Magis_analysis.Membound.probe_lower probe' in
      if cfg.verify_states && oracle_this_candidate state_hash then begin
        let scratch =
          Magis_analysis.Liveness.compute ~size_of:acc.size_of p.p_graph
        in
        if not (Magis_analysis.Liveness.equivalent lv' scratch) then
          raise
            (Verification_failure
               "Liveness.delta_update diverged from the scratch analysis");
        let scratch_lb =
          Magis_analysis.Membound.probe_lower
            (Magis_analysis.Membound.probe_create ~sample:bound_sample scratch)
        in
        if lb <> scratch_lb then
          raise
            (Verification_failure
               (Printf.sprintf
                  "Membound.probe_update bound %d <> scratch probe bound %d"
                  lb scratch_lb))
      end;
      lb
  | None ->
      Magis_analysis.Membound.lower_bound ~size_of:acc.size_of
        ~sample:bound_sample p.p_graph

(** Does the admissible lower bound already prove this proposal fails
    the δ-relaxed admission test?  Shared by the exact and cheap tiers. *)
let bound_prunes (cfg : config) stats ~bound_check ~incr_parent ~state_hash
    (acc : Ftree.accounting) (p : proposal) : bool =
  match bound_check with
  | No_prune -> false
  | Prune_mem { threshold; mem_limit } ->
      timed stats
        (fun dt -> stats.t_bound <- stats.t_bound +. dt)
        (fun () -> stats.n_bound_calls <- stats.n_bound_calls + 1)
        (fun () ->
          let lb = proposal_mem_lb cfg stats ~incr_parent ~state_hash acc p in
          float_of_int (max lb mem_limit) > threshold)
  | Prune_lat { threshold; lat_limit } ->
      timed stats
        (fun dt -> stats.t_bound <- stats.t_bound +. dt)
        (fun () -> stats.n_bound_calls <- stats.n_bound_calls + 1)
        (fun () ->
          let lb = proposal_latency_lb acc p.p_graph in
          Float.max lb lat_limit > threshold)

(** Evaluate a proposal: incremental reschedule + simulation, memoized
    in the simulation cache.  [state_hash] is the proposal's dedup hash
    (WL ⊕ F-Tree fingerprint), already computed by the hash phase;
    [parent_sched_hash] digests the schedule being incrementally
    rewritten; [sched_states] is the effective DP budget (the config's,
    unless the degradation ladder stepped it down).  Returns [None]
    when the bound probe prunes the candidate: on a cache miss only, an
    admissible lower bound already above the δ-relaxed incumbent
    threshold proves the evaluation could neither improve the best
    state nor enter the queue.  Pruned candidates touch neither the
    hit/miss counters nor the cache (a later, tighter incumbent must
    not find a poisoned entry).  Runs on a worker domain: it must only
    write [stats] (a worker-local accumulator) and the domain-safe
    caches. *)
let evaluate_proposal (cfg : config) (ec : eval_ctx) stats ~bound_check
    ~incr_parent ~sched_states ~iteration ~state_hash ~parent_sched_hash
    (s : Mstate.t) (p : proposal) : Mstate.t option =
  let key =
    Sim_cache.key ~state:state_hash ~parent_sched:parent_sched_hash
      ~mutated:(Util.hash_int_list (Int_set.elements p.p_mutated))
      ~sched_states ~mode:ec.ec_mode ~hw:ec.ec_hw
  in
  match Sim_cache.find ec.ec_sim key with
  | Some v ->
      stats.n_sim_hit <- stats.n_sim_hit + 1;
      Some (Mstate.of_cached ~ftree_stale:p.p_stale p.p_graph p.p_ftree v)
  | None ->
      let acc = Ftree.accounting ec.ec_cache p.p_graph p.p_ftree in
      if bound_prunes cfg stats ~bound_check ~incr_parent ~state_hash acc p
      then begin
        stats.n_pruned_lb <- stats.n_pruned_lb + 1;
        None
      end
      else begin
        stats.n_sim_miss <- stats.n_sim_miss + 1;
        let schedule, (rstats : Magis_sched.Incremental.stats) =
          timed stats
            (fun dt -> stats.t_sched <- stats.t_sched +. dt)
            (fun () -> stats.n_sched <- stats.n_sched + 1)
            (fun () ->
              Magis_sched.Incremental.reschedule ~max_states:sched_states
                ~old_graph:s.graph ~new_graph:p.p_graph
                ~old_schedule:s.schedule ~mutated_old:p.p_mutated
                ~size_of:acc.size_of ())
        in
        if rstats.fallback then begin
          stats.n_sched_fallback <- stats.n_sched_fallback + 1;
          Metrics.incr m_sched_fallbacks
        end;
        stats.n_resched_nodes <- stats.n_resched_nodes + rstats.rescheduled;
        stats.n_sched_nodes <- stats.n_sched_nodes + List.length schedule;
        let s' =
          timed stats
            (fun dt -> stats.t_simul <- stats.t_simul +. dt)
            (fun () -> stats.n_simul <- stats.n_simul + 1)
            (fun () ->
              Mstate.evaluate ~ftree_stale:p.p_stale ~acc ec.ec_cache
                p.p_graph p.p_ftree schedule)
        in
        if cfg.verify_states then begin
          try
            let what = Printf.sprintf "M-state (iteration %d)" iteration in
            Magis_analysis.Hooks.assert_state ~what s'.graph s'.schedule;
            Magis_analysis.Hooks.assert_bounds ~exact:false ~what
              ~size_of:acc.size_of s'.graph ~peak:s'.peak_mem ();
            let lat_lb = proposal_latency_lb acc p.p_graph in
            if s'.latency < lat_lb then
              failwith
                (Printf.sprintf
                   "%s violated the latency lower bound: simulated %.9f < \
                    bound %.9f"
                   what s'.latency lat_lb)
          with Failure msg ->
            (* never quarantined: an invalid accepted state is an
               optimizer bug, not a transient runtime fault *)
            raise (Verification_failure msg)
        end;
        Sim_cache.add ~parent:s.schedule ec.ec_sim key (Mstate.to_cached s');
        Some s'
      end

(** Cheap-tier evaluation: bound-prune, then a whole-graph critical-path
    list schedule ({!Magis_sched.Listsched}) and one simulation — no DP,
    no window computation, no cache entry (cheap numbers must never
    masquerade as exact ones under the exact tier's key).  The schedule
    is a legal topological order, so the simulated peak and latency are
    real, merely unoptimized; the merge promotes candidates whose cheap
    numbers pass δ-admission to {!evaluate_proposal}. *)
let cheap_evaluate (cfg : config) (ec : eval_ctx) stats ~bound_check
    ~incr_parent ~state_hash (p : proposal) : Mstate.t option =
  let acc = Ftree.accounting ec.ec_cache p.p_graph p.p_ftree in
  if bound_prunes cfg stats ~bound_check ~incr_parent ~state_hash acc p
  then begin
    stats.n_pruned_lb <- stats.n_pruned_lb + 1;
    None
  end
  else begin
    let schedule =
      timed stats
        (fun dt -> stats.t_sched <- stats.t_sched +. dt)
        (fun () -> stats.n_cheap_sched <- stats.n_cheap_sched + 1)
        (fun () ->
          Magis_sched.Listsched.schedule ~size_of:acc.size_of
            ~cost_of:acc.cost_of p.p_graph)
    in
    let s' =
      timed stats
        (fun dt -> stats.t_simul <- stats.t_simul +. dt)
        (fun () -> stats.n_simul <- stats.n_simul + 1)
        (fun () ->
          Mstate.evaluate ~ftree_stale:p.p_stale ~acc ec.ec_cache p.p_graph
            p.p_ftree schedule)
    in
    Some s'
  end

(** Outcome of phase 3 for one surviving candidate. *)
type tier = Exact of Mstate.t | Cheap of Mstate.t

(* ------------------------------------------------------------------ *)
(* Checkpoint format                                                   *)
(* ------------------------------------------------------------------ *)

(** Bump whenever {!snapshot} (or anything it reaches: {!Mstate.t},
    {!stats}, …) changes shape. *)
let ckpt_version = 2

(** The complete loop state: restoring it continues the search
    bit-identically — frontier, dedup set, diversification RNG, pop
    parity, accounting and the degradation level all survive. *)
type snapshot = {
  snap_best : Mstate.t;
  snap_initial : Mstate.t;
  snap_queue : Mstate.t list Pq.t;
  snap_seen : (int64, unit) Hashtbl.t;
  snap_rng : Random.State.t;
  snap_pops : int;
  snap_stats : stats;
  snap_history : (float * int * float) list;  (** newest first *)
  snap_diags : Diagnostic.t list;  (** newest first *)
  snap_elapsed : float;
  snap_degrade : int;
}

(** Digest of everything that must match for a snapshot to continue
    this run's trajectory: the hardware model, the input graph, the
    mode (with its limit) and every trajectory-relevant configuration
    knob.  [jobs], caching and verification flags are excluded — they
    are result-preserving by construction — as are the observation-only
    hooks ([profile], [harvest], [cancel]). *)
let trajectory_fingerprint (cfg : config) (mode : mode) ~(hw : int64)
    (graph : Graph.t) : int64 =
  let bit b i = if b then 1 lsl i else 0 in
  let flags =
    bit cfg.ablation.use_ftree_heuristic 0
    lor bit cfg.ablation.restrict_sched_rules 1
    lor bit cfg.diversify_pops 2
    lor bit cfg.use_sweep_rules 3
    lor bit cfg.prune_bounds 4
    lor bit cfg.degrade 5
    lor bit cfg.incremental 6
    lor bit cfg.cheap_tier 7
  in
  let h = Util.hash_combine (Wl_hash.hash graph) hw in
  let h = Util.hash_combine h (mode_fingerprint mode) in
  let h = Util.hash_combine h (Int64.of_int cfg.sched_states) in
  let h = Util.hash_combine h (Int64.of_int cfg.max_per_rule) in
  let h = Util.hash_combine h (Int64.of_int cfg.ablation.max_level) in
  Util.hash_combine h (Int64.of_int flags)

(* ------------------------------------------------------------------ *)
(* Graceful degradation                                                *)
(* ------------------------------------------------------------------ *)

(** Budget fractions at which the ladder steps down: reduce the DP
    scheduling budget, then stop paying for bound probes, then (at
    exhaustion, by the loop condition) return best-so-far. *)
let degrade_sched_frac = 0.85

let degrade_bounds_frac = 0.95

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let state_hash stats (s : Mstate.t) : int64 =
  let t0 = Unix.gettimeofday () in
  let h =
    Util.hash_combine (Wl_hash.hash s.graph) (Ftree.fingerprint s.ftree)
  in
  stats.t_hash <- stats.t_hash +. (Unix.gettimeofday () -. t0);
  stats.n_hash <- stats.n_hash + 1;
  h

(** Run the search.  Returns the best state found within the time budget,
    the initial state, per-phase statistics and the improvement history. *)
let run ?(config = default_config) (cache : Op_cost.t) (mode : mode)
    (graph : Graph.t) : result =
  let ec =
    {
      ec_cache = cache;
      ec_sim =
        (match config.sim_cache with
        | Some c -> c
        | None -> Sim_cache.create ());
      ec_mode = mode_fingerprint mode;
      ec_hw = Hardware.fingerprint cache.hw;
    }
  in
  let fingerprint = trajectory_fingerprint config mode ~hw:ec.ec_hw graph in
  let snap : snapshot option =
    match config.checkpoint with
    | Some { ckpt_path; ckpt_resume = true; _ }
      when Checkpoint.exists ckpt_path ->
        Some
          (Checkpoint.load ~path:ckpt_path ~version:ckpt_version ~fingerprint)
    | _ -> None
  in
  let stats =
    match snap with Some s -> s.snap_stats | None -> fresh_stats ()
  in
  let pool = Pool.create config.jobs in
  Fun.protect ~finally:(fun () ->
      stats.domain_time <- Pool.busy_time pool;
      Pool.shutdown pool)
  @@ fun () ->
  let t_start =
    Unix.gettimeofday ()
    -. (match snap with Some s -> s.snap_elapsed | None -> 0.0)
  in
  let elapsed () = Unix.gettimeofday () -. t_start in
  let init =
    match snap with
    | Some s -> s.snap_initial
    | None ->
        let s = Mstate.init ~max_level:config.ablation.max_level
            ~sched_states:config.sched_states cache graph
        in
        if config.ablation.use_ftree_heuristic then s
        else { s with ftree = Ftree.construct_naive graph }
  in
  if config.verify_states && snap = None then begin
    Magis_analysis.Hooks.assert_state ~what:"initial M-state" init.graph
      init.schedule;
    let acc = Ftree.accounting cache init.graph init.ftree in
    Magis_analysis.Hooks.assert_bounds ~what:"initial M-state"
      ~size_of:acc.size_of init.graph ~peak:init.peak_mem ();
    Magis_analysis.Hooks.assert_interference ~what:"initial M-state"
      ~size_of:acc.size_of init.graph init.schedule
  end;
  let best = ref (match snap with Some s -> s.snap_best | None -> init) in
  let history =
    ref
      (match snap with
      | Some s -> s.snap_history
      | None -> [ (elapsed (), init.peak_mem, init.latency) ])
  in
  let diags = ref (match snap with Some s -> s.snap_diags | None -> []) in
  let seen =
    match snap with Some s -> s.snap_seen | None -> Hashtbl.create 1024
  in
  let q =
    ref
      (match snap with
      | Some s -> s.snap_queue
      | None -> Pq.singleton (key mode init) [ init ])
  in
  let rng =
    match snap with
    | Some s -> s.snap_rng
    | None -> Random.State.make [| 0x4d41 |]
  in
  let pops = ref (match snap with Some s -> s.snap_pops | None -> 0) in
  if snap = None then Hashtbl.replace seen (state_hash stats init) ();
  let take k l =
    match l with
    | [ s ] ->
        q := Pq.remove k !q;
        Some s
    | s :: rest ->
        q := Pq.add k rest !q;
        Some s
    | [] -> None
  in
  (* Mostly greedy best-first; every few pops take a random bucket instead,
     so an early aggressive rewrite cannot permanently starve alternative
     trade-off paths (e.g. the gradual F-Tree ladder). *)
  let pop () =
    incr pops;
    if config.diversify_pops && !pops mod 4 = 0 && Pq.cardinal !q > 1 then begin
      let n = Pq.cardinal !q in
      let idx = Random.State.int rng n in
      let chosen = ref None in
      let i = ref 0 in
      Pq.iter
        (fun k l ->
          if !i = idx && !chosen = None then chosen := Some (k, l);
          incr i)
        !q;
      match !chosen with
      | Some (k, l) -> take k l
      | None -> (
          match Pq.min_binding_opt !q with
          | None -> None
          | Some (k, l) -> take k l)
    end
    else
      match Pq.min_binding_opt !q with
      | None -> None
      | Some (k, l) -> take k l
  in
  let push s =
    q :=
      Pq.update (key mode s)
        (function None -> Some [ s ] | Some l -> Some (s :: l))
        !q
  in
  (* -------------------------------------------------------------- *)
  (* Graceful-degradation ladder                                     *)
  (* -------------------------------------------------------------- *)
  let degrade_level =
    ref (match snap with Some s -> s.snap_degrade | None -> 0)
  in
  let record_step name =
    stats.degrade_steps <- stats.degrade_steps @ [ (elapsed (), name) ]
  in
  let update_ladder () =
    if config.degrade then begin
      let frac = elapsed () /. config.time_budget in
      if !degrade_level < 1 && frac >= degrade_sched_frac then begin
        degrade_level := 1;
        record_step "reduce-sched-states"
      end;
      if !degrade_level < 2 && frac >= degrade_bounds_frac then begin
        degrade_level := 2;
        record_step "disable-bound-probes"
      end
    end
  in
  let eff_sched_states () =
    if !degrade_level >= 1 then config.sched_states / 4
    else config.sched_states
  in
  let eff_prune () = config.prune_bounds && !degrade_level < 2 in
  (* -------------------------------------------------------------- *)
  (* Checkpointing                                                   *)
  (* -------------------------------------------------------------- *)
  let last_ckpt = ref (elapsed ()) in
  let write_checkpoint () =
    match config.checkpoint with
    | None -> ()
    | Some { ckpt_path; _ } ->
        Checkpoint.save ~path:ckpt_path ~version:ckpt_version ~fingerprint
          {
            snap_best = !best;
            snap_initial = init;
            snap_queue = !q;
            snap_seen = seen;
            snap_rng = rng;
            snap_pops = !pops;
            snap_stats = stats;
            snap_history = !history;
            snap_diags = !diags;
            snap_elapsed = elapsed ();
            snap_degrade = !degrade_level;
          };
        stats.n_checkpoints <- stats.n_checkpoints + 1;
        last_ckpt := elapsed ()
  in
  (* -------------------------------------------------------------- *)
  (* Supervision                                                     *)
  (* -------------------------------------------------------------- *)
  let fatal = function
    | Verification_failure _ -> true
    | e -> Retry.fatal e
  in
  let quarantine ~phase ~index (f : Retry.failure) =
    stats.n_quarantined <- stats.n_quarantined + 1;
    Metrics.incr m_quarantined;
    Trace.instant ~cat:"search"
      ~args:
        [ ("phase", phase); ("index", string_of_int index);
          ("exn", Printexc.to_string f.exn) ]
      "quarantine";
    let check =
      match f.exn with
      | Fault.Injected _ -> "injected-fault"
      | Op_cost.Non_finite _ -> "nonfinite-cost"
      | _ -> "worker-exception"
    in
    let bt = Printexc.raw_backtrace_to_string f.backtrace in
    let d =
      Diagnostic.errorf ~pass:"resilience" ~check
        "iteration %d: %s candidate %d quarantined after %d execution(s): %s%s"
        stats.iterations phase index f.attempts
        (Printexc.to_string f.exn)
        (if bt = "" then "" else "\n" ^ String.trim bt)
    in
    diags := d :: !diags
  in
  (* Run one expansion phase over the pool.  Supervised mode isolates
     per-candidate failures: a failed task is retried with bounded
     backoff on the orchestrating domain (a transient fault passes on
     re-execution) and a persistently failing candidate is quarantined
     with a structured diagnostic — the survivors of the batch are
     kept.  The legacy mode re-raises the first failure, aborting the
     batch. *)
  let supervised_map ~phase f xs =
    if not config.supervise then Array.map Option.some (Pool.map pool f xs)
    else
      Array.mapi
        (fun index r ->
          match r with
          | Ok v -> Some v
          | Error (e, bt) when fatal e -> Printexc.raise_with_backtrace e bt
          | Error _ -> (
              stats.n_retried <- stats.n_retried + 1;
              Metrics.incr m_retried;
              let policy =
                { Retry.default with attempts = config.max_retries }
              in
              match Retry.run ~policy (fun () -> f xs.(index)) with
              | Ok v -> Some v
              | Error failure ->
                  quarantine ~phase ~index failure;
                  None))
        (Pool.map_result pool f xs)
  in
  let interrupted = ref false in
  let loop () =
    try
      while elapsed () < config.time_budget
            && stats.iterations < config.max_iterations do
       if Interrupt.requested () || config.cancel () then begin
         interrupted := true;
         raise Exit
       end;
       update_ladder ();
       (match config.checkpoint with
       | Some { ckpt_every; _ } when elapsed () -. !last_ckpt >= ckpt_every ->
           write_checkpoint ()
       | _ -> ());
       match pop () with
       | None -> raise Exit
       | Some s ->
           stats.iterations <- stats.iterations + 1;
           Metrics.incr m_iterations;
           if Sys.getenv_opt "MAGIS_TRACE" <> None then
             Fmt.epr "[%d] pop mem=%.1fMB lat=%.2fms entries=%d enabled=%d stale=%b@."
               stats.iterations
               (float_of_int s.peak_mem /. 1e6)
               (s.latency *. 1e3)
               (Ftree.n_entries s.ftree)
               (List.length (Ftree.enabled_indices s.ftree))
               s.ftree_stale;
           (* refresh a stale F-Tree (Algorithm 3 line 13-14) *)
           let s =
             if s.ftree_stale && config.ablation.use_ftree_heuristic then
               let ftree =
                 Ftree.refresh ~max_level:config.ablation.max_level s.graph
                   ~old_tree:s.ftree ~hotspots:s.hotspots
               in
               { s with ftree; ftree_stale = false }
             else { s with ftree_stale = false }
           in
           let proposals =
             Trace.with_span ~cat:"search" "phase-transform" @@ fun () ->
             Array.of_list
               ((if Ftree.n_entries s.ftree > 0 then
                   ftree_proposals config stats s
                 else [])
               @ rewrite_proposals config stats s)
           in
           (* Phase 1 (parallel): structural hash of every candidate.
              Hash test FIRST: duplicate graphs skip scheduling and
              simulation entirely (the Fig. 15 "Filtered" column). *)
           let hashed =
             Trace.with_span ~cat:"search" "phase-hash" @@ fun () ->
             supervised_map ~phase:"hash"
               (fun (p : proposal) ->
                 let t0 = Unix.gettimeofday () in
                 let h =
                   Util.hash_combine (Wl_hash.hash p.p_graph)
                     (Ftree.fingerprint p.p_ftree)
                 in
                 (p, h, Unix.gettimeofday () -. t0))
               proposals
           in
           Array.iter
             (function
               | None -> ()
               | Some (_, _, dt) ->
                   stats.t_hash <- stats.t_hash +. dt;
                   stats.n_hash <- stats.n_hash + 1)
             hashed;
           (* Phase 2 (serial, candidate order): dedup against every
              state seen so far.  First occurrence wins, exactly as in a
              serial run. *)
           let survivors =
             Array.to_list hashed
             |> List.filter_map (function
                  | None -> None (* quarantined in the hash phase *)
                  | Some ((p : proposal), h, _) ->
                      if Hashtbl.mem seen h then begin
                        stats.n_filtered <- stats.n_filtered + 1;
                        None
                      end
                      else begin
                        Hashtbl.replace seen h ();
                        Some (p, h)
                      end)
             |> Array.of_list
           in
           (* Phase 3 (parallel): reschedule + simulate the survivors.
              Each worker accumulates into its own stats record.  The
              pruning threshold is frozen here, against the incumbent at
              the start of the phase: the incumbent only improves during
              phase 4, so the frozen threshold is conservative, and
              freezing it keeps prune decisions independent of worker
              scheduling. *)
           let parent_sched_hash = Util.hash_int_list s.schedule in
           let iteration = stats.iterations in
           let sched_states = eff_sched_states () in
           let bound_check =
             bound_check_of ~prune:(eff_prune ()) mode !best
           in
           (* One liveness analysis + probe of the popped parent serves
              every candidate of the iteration as the base of its O(Δ)
              bound update.  Built only when a memory bound will actually
              be probed, and amortized across the survivors. *)
           let incr_parent =
             match bound_check with
             | Prune_mem _ when config.incremental
                                && Array.length survivors > 0 ->
                 let t0 = Unix.gettimeofday () in
                 let acc = Ftree.accounting cache s.graph s.ftree in
                 let lv =
                   Magis_analysis.Liveness.compute ~size_of:acc.size_of
                     s.graph
                 in
                 let probe =
                   Magis_analysis.Membound.probe_create ~sample:bound_sample
                     lv
                 in
                 stats.t_bound <-
                   stats.t_bound +. (Unix.gettimeofday () -. t0);
                 Some { ip_lv = lv; ip_probe = probe }
             | _ -> None
           in
           let evaluated =
             Trace.with_span ~cat:"search" "phase-evaluate" @@ fun () ->
             supervised_map ~phase:"evaluate"
               (fun ((p : proposal), h) ->
                 Trace.with_span ~cat:"search" "candidate" @@ fun () ->
                 let local = fresh_stats () in
                 let r =
                   if config.cheap_tier then
                     Option.map
                       (fun st -> Cheap st)
                       (cheap_evaluate config ec local ~bound_check
                          ~incr_parent ~state_hash:h p)
                   else
                     Option.map
                       (fun st -> Exact st)
                       (evaluate_proposal config ec local ~bound_check
                          ~incr_parent ~sched_states ~iteration ~state_hash:h
                          ~parent_sched_hash s p)
                 in
                 (r, local))
               survivors
           in
           (* Phase 4 (serial, candidate order): fold worker stats and
              merge into best/queue — bit-identical to the serial loop.
              Quarantined candidates contribute nothing.  Under the
              cheap tier, candidates whose list-scheduled numbers pass
              δ-admission are promoted here (serially, in candidate
              order) to the exact tier; only exact numbers ever reach
              the best state or the queue. *)
           (Trace.with_span ~cat:"search" "phase-merge" @@ fun () ->
            let admit (s' : Mstate.t) =
              (* observation-only side channel: sees every exactly
                 evaluated candidate in candidate order, never feeds
                 back into best/queue *)
              (match config.harvest with
              | Some f -> f ~iteration:stats.iterations s'
              | None -> ());
              if better_than mode s' !best then begin
                (* only accepted bests reach the caller, so proving
                   their memory plan interference-free here covers every
                   reported result without paying the allocator replay
                   per candidate *)
                if config.verify_states then begin
                  let acc = Ftree.accounting cache s'.graph s'.ftree in
                  try
                    Magis_analysis.Hooks.assert_interference
                      ~what:
                        (Printf.sprintf "accepted best (iteration %d)"
                           stats.iterations)
                      ~size_of:acc.size_of s'.graph s'.schedule
                  with Failure msg -> raise (Verification_failure msg)
                end;
                best := s';
                history := (elapsed (), s'.peak_mem, s'.latency) :: !history
              end;
              if better_than mode ~delta:queue_delta s' !best then push s'
            in
            Array.iteri
              (fun index r ->
                match r with
                | None -> ()
                | Some ((r : tier option), local) -> (
                    merge_stats stats local;
                    match r with
                    | None -> ()
                    | Some (Exact s') -> admit s'
                    | Some (Cheap sc) ->
                        if better_than mode ~delta:queue_delta sc !best
                        then begin
                          stats.n_promoted <- stats.n_promoted + 1;
                          let p, h = survivors.(index) in
                          match
                            evaluate_proposal config ec stats ~bound_check
                              ~incr_parent ~sched_states ~iteration
                              ~state_hash:h ~parent_sched_hash s p
                          with
                          | None -> ()
                          | Some s' -> admit s'
                        end))
              evaluated);
           (* Per-iteration telemetry, after the merge so the record
              sees the iteration's final best and queue. *)
           (match config.profile with
           | None -> ()
           | Some sink ->
               let el = elapsed () in
               let queue_depth =
                 Pq.fold (fun _ l acc -> acc + List.length l) !q 0
               in
               let busy_frac =
                 Array.map
                   (fun b -> if el > 0.0 then b /. el else 0.0)
                   (Pool.busy_time pool)
               in
               Profile.record sink
                 [
                   ("iter", Json.Int stats.iterations);
                   ("elapsed", Json.Float el);
                   ("queue_depth", Json.Int queue_depth);
                   ("candidates", Json.Int (Array.length proposals));
                   ("survivors", Json.Int (Array.length survivors));
                   ("best_peak", Json.Int !best.peak_mem);
                   ("best_latency", Json.Float !best.latency);
                   ("sim_hits", Json.Int stats.n_sim_hit);
                   ("sim_misses", Json.Int stats.n_sim_miss);
                   ("sim_hit_rate", Json.Float (sim_hit_rate stats));
                   ("filtered", Json.Int stats.n_filtered);
                   ("pruned_lb", Json.Int stats.n_pruned_lb);
                   ("retried", Json.Int stats.n_retried);
                   ("quarantined", Json.Int stats.n_quarantined);
                   ("t_transform", Json.Float stats.t_transform);
                   ("t_sched", Json.Float stats.t_sched);
                   ("t_simul", Json.Float stats.t_simul);
                   ("t_hash", Json.Float stats.t_hash);
                   ("t_bound", Json.Float stats.t_bound);
                   ( "pool_busy_frac",
                     Json.List
                       (Array.to_list
                          (Array.map (fun f -> Json.Float f) busy_frac)) );
                 ])
      done
    with Exit -> ()
  in
  (* signal handlers are installed only when the run can do something
     useful with an interrupt: write its checkpoint and return early *)
  (match config.checkpoint with
  | None -> loop ()
  | Some _ -> Interrupt.with_guard loop);
  if config.degrade && (not !interrupted) && elapsed () >= config.time_budget
  then record_step "best-so-far";
  write_checkpoint ();
  {
    best = !best;
    initial = init;
    stats;
    history = List.rev !history;
    diagnostics = List.rev !diags;
    interrupted = !interrupted;
  }

(* ------------------------------------------------------------------ *)
(* Convenience wrappers                                                *)
(* ------------------------------------------------------------------ *)

(** Optimize peak memory subject to a latency-overhead bound relative to
    the unoptimized graph (e.g. [0.10] allows 10% overhead). *)
let optimize_memory ?config (cache : Op_cost.t) ~(overhead : float)
    (graph : Graph.t) : result =
  let base = Simulator.run cache graph (Graph.topo_order graph) in
  run ?config cache
    (Min_memory { lat_limit = base.latency *. (1.0 +. overhead) })
    graph

(** Optimize latency subject to a peak-memory bound relative to the
    unoptimized graph (e.g. [0.4] caps memory at 40%). *)
let optimize_latency ?config (cache : Op_cost.t) ~(mem_ratio : float)
    (graph : Graph.t) : result =
  let base = Simulator.run cache graph (Graph.topo_order graph) in
  run ?config cache
    (Min_latency
       { mem_limit = int_of_float (float_of_int base.peak_mem *. mem_ratio) })
    graph
