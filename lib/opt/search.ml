(** Top-level search (Algorithm 3 of the paper).

    A greedy best-first search over M-States: a priority queue ordered by
    [BetterThan] (lexicographic on (constrained objective, other
    objective)), Weisfeiler-Lehman hashing to skip duplicate graphs,
    F-Tree refresh after graph rewrites, and incremental scheduling
    (Algorithm 2) after every transformation.

    Two modes: minimize latency under a memory limit, or minimize peak
    memory under a latency limit.  Per-phase time accounting reproduces
    the Fig. 15 breakdown; the history of best results over elapsed time
    reproduces the Fig. 13 curves. *)

open Magis_ir
open Magis_cost
open Magis_ftree
open Magis_rules
module Int_set = Util.Int_set

type mode =
  | Min_latency of { mem_limit : int }
      (** optimize latency, peak memory must stay below the limit *)
  | Min_memory of { lat_limit : float }
      (** optimize peak memory, latency must stay below the limit *)

type ablation = {
  use_ftree_heuristic : bool;  (** false = "naïve-fission" of Fig. 13 *)
  restrict_sched_rules : bool;  (** false = "naïve-sch-rule" of Fig. 13 *)
  max_level : int;  (** F-Tree max level L *)
}

let default_ablation =
  { use_ftree_heuristic = true; restrict_sched_rules = true; max_level = 4 }

type stats = {
  mutable n_transform : int;
  mutable t_transform : float;
  mutable n_sched : int;
  mutable t_sched : float;
  mutable n_simul : int;
  mutable t_simul : float;
  mutable n_hash : int;
  mutable t_hash : float;
  mutable n_filtered : int;
  mutable iterations : int;
}

let fresh_stats () =
  {
    n_transform = 0;
    t_transform = 0.0;
    n_sched = 0;
    t_sched = 0.0;
    n_simul = 0;
    t_simul = 0.0;
    n_hash = 0;
    t_hash = 0.0;
    n_filtered = 0;
    iterations = 0;
  }

type result = {
  best : Mstate.t;
  initial : Mstate.t;
  stats : stats;
  history : (float * int * float) list;
      (** (elapsed seconds, best peak bytes, best latency) after each
          improvement *)
}

(* ------------------------------------------------------------------ *)
(* Ordering                                                            *)
(* ------------------------------------------------------------------ *)

(** BetterThan of Algorithm 3: compare the constrained objective clamped
    at the limit first, the free objective second.  [delta] relaxes the
    right-hand side (the paper's δ = 1.1 queue-admission slack). *)
let key (mode : mode) (s : Mstate.t) : float * float =
  match mode with
  | Min_latency { mem_limit } ->
      (float_of_int (max s.peak_mem mem_limit), s.latency)
  | Min_memory { lat_limit } ->
      (Float.max s.latency lat_limit, float_of_int s.peak_mem)

let better_than (mode : mode) ?(delta = 1.0) (a : Mstate.t) (b : Mstate.t) :
    bool =
  let ka1, ka2 = key mode a and kb1, kb2 = key mode b in
  (ka1, ka2) < (delta *. kb1, delta *. kb2)

module Pq = Map.Make (struct
  type t = float * float

  let compare = compare
end)

(* ------------------------------------------------------------------ *)
(* Neighbor generation                                                 *)
(* ------------------------------------------------------------------ *)

type config = {
  ablation : ablation;
  sched_states : int;  (** DP state budget per scheduling call *)
  max_per_rule : int;
  time_budget : float;  (** seconds *)
  max_iterations : int;
  diversify_pops : bool;
      (** every few pops, take a random queue bucket instead of the best
          (escapes local optima created by aggressive early rewrites) *)
  use_sweep_rules : bool;  (** compound swap/remat rules *)
  verify_states : bool;
      (** debug: run the IR verifier and schedule legality checker on
          every accepted M-state, raising on the first violation (tests
          and CI turn this on; benchmarks leave it off) *)
}

let default_config =
  {
    ablation = default_ablation;
    sched_states = 0;
    max_per_rule = 6;
    time_budget = 10.0;
    max_iterations = max_int;
    diversify_pops = true;
    use_sweep_rules = true;
    verify_states = false;
  }

let timed _stats fld_t fld_n f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  fld_t dt;
  fld_n ();
  r

type proposal = {
  p_graph : Graph.t;
  p_ftree : Ftree.t;
  p_mutated : Int_set.t;  (** old nodes affected, for incremental sched *)
  p_stale : bool;
}

(** Proposals reached by F-Tree mutations: the graph is unchanged, the
    virtual fission state moves. *)
let ftree_proposals _cfg stats (s : Mstate.t) : proposal list =
  let muts =
    timed stats
      (fun dt -> stats.t_transform <- stats.t_transform +. dt)
      (fun () -> ())
      (fun () -> Ftree.mutations s.graph s.ftree)
  in
  List.filter_map
    (fun m ->
      stats.n_transform <- stats.n_transform + 1;
      match Ftree.apply s.graph s.ftree m with
      | None -> None
      | Some ftree' ->
          let affected =
            match m with
            | Ftree.Enable i | Ftree.Disable i | Ftree.Mutate i ->
                Fission.members (Ftree.fission_at ftree' i)
            | Ftree.Lift i ->
                let e = Ftree.entry ftree' i in
                if e.parent >= 0 then
                  Fission.members (Ftree.fission_at ftree' e.parent)
                else Fission.members (Ftree.fission_at ftree' i)
          in
          Some
            { p_graph = s.graph; p_ftree = ftree'; p_mutated = affected;
              p_stale = s.ftree_stale })
    muts

(** Proposals reached by graph rewrites (scheduling-based and TASO rules). *)
let rewrite_proposals (cfg : config) stats (s : Mstate.t) : proposal list =
  let pos = Hashtbl.create (List.length s.schedule) in
  List.iteri (fun i v -> Hashtbl.replace pos v i) s.schedule;
  let ctx =
    {
      Rule.hotspots = s.hotspots;
      frozen = Ftree.frozen_region s.ftree;
      schedule_pos = (fun v -> Hashtbl.find_opt pos v);
      max_per_rule = cfg.max_per_rule;
      restrict_to_hotspots = cfg.ablation.restrict_sched_rules;
    }
  in
  let rules =
    (if cfg.use_sweep_rules then Sched_rules.all else Sched_rules.basic)
    @ Taso_rules.all
  in
  List.concat_map
    (fun (rule : Rule.t) ->
      let rewrites =
        timed stats
          (fun dt -> stats.t_transform <- stats.t_transform +. dt)
          (fun () -> ())
          (fun () -> rule.apply ctx s.graph)
      in
      List.map
        (fun (rw : Rule.rewrite) ->
          stats.n_transform <- stats.n_transform + 1;
          { p_graph = rw.graph; p_ftree = Ftree.prune rw.graph s.ftree;
            p_mutated = rw.touched_old; p_stale = true })
        rewrites)
    rules

(** Evaluate a proposal: incremental reschedule + simulation. *)
let evaluate_proposal (cfg : config) (cache : Op_cost.t) stats
    (s : Mstate.t) (p : proposal) : Mstate.t =
  let acc = Ftree.accounting cache p.p_graph p.p_ftree in
  let schedule, _ =
    timed stats
      (fun dt -> stats.t_sched <- stats.t_sched +. dt)
      (fun () -> stats.n_sched <- stats.n_sched + 1)
      (fun () ->
        Magis_sched.Incremental.reschedule ~max_states:cfg.sched_states
          ~old_graph:s.graph ~new_graph:p.p_graph ~old_schedule:s.schedule
          ~mutated_old:p.p_mutated ~size_of:acc.size_of ())
  in
  let s' =
    timed stats
      (fun dt -> stats.t_simul <- stats.t_simul +. dt)
      (fun () -> stats.n_simul <- stats.n_simul + 1)
      (fun () ->
        Mstate.evaluate ~ftree_stale:p.p_stale cache p.p_graph p.p_ftree
          schedule)
  in
  if cfg.verify_states then
    Magis_analysis.Hooks.assert_state
      ~what:(Printf.sprintf "M-state (iteration %d)" stats.iterations)
      s'.graph s'.schedule;
  s'

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let state_hash stats (s : Mstate.t) : int64 =
  let t0 = Unix.gettimeofday () in
  let h =
    Util.hash_combine (Wl_hash.hash s.graph) (Ftree.fingerprint s.ftree)
  in
  stats.t_hash <- stats.t_hash +. (Unix.gettimeofday () -. t0);
  stats.n_hash <- stats.n_hash + 1;
  h

(** Run the search.  Returns the best state found within the time budget,
    the initial state, per-phase statistics and the improvement history. *)
let run ?(config = default_config) (cache : Op_cost.t) (mode : mode)
    (graph : Graph.t) : result =
  let stats = fresh_stats () in
  let t_start = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t_start in
  let init =
    let s = Mstate.init ~max_level:config.ablation.max_level
        ~sched_states:config.sched_states cache graph
    in
    if config.ablation.use_ftree_heuristic then s
    else { s with ftree = Ftree.construct_naive graph }
  in
  if config.verify_states then
    Magis_analysis.Hooks.assert_state ~what:"initial M-state" init.graph
      init.schedule;
  let best = ref init in
  let history = ref [ (elapsed (), init.peak_mem, init.latency) ] in
  let seen = Hashtbl.create 1024 in
  Hashtbl.replace seen (state_hash stats init) ();
  let q = ref (Pq.singleton (key mode init) [ init ]) in
  let rng = Random.State.make [| 0x4d41 |] in
  let pops = ref 0 in
  let take k l =
    match l with
    | [ s ] ->
        q := Pq.remove k !q;
        Some s
    | s :: rest ->
        q := Pq.add k rest !q;
        Some s
    | [] -> None
  in
  (* Mostly greedy best-first; every few pops take a random bucket instead,
     so an early aggressive rewrite cannot permanently starve alternative
     trade-off paths (e.g. the gradual F-Tree ladder). *)
  let pop () =
    incr pops;
    if config.diversify_pops && !pops mod 4 = 0 && Pq.cardinal !q > 1 then begin
      let n = Pq.cardinal !q in
      let idx = Random.State.int rng n in
      let chosen = ref None in
      let i = ref 0 in
      Pq.iter
        (fun k l ->
          if !i = idx && !chosen = None then chosen := Some (k, l);
          incr i)
        !q;
      match !chosen with
      | Some (k, l) -> take k l
      | None -> (
          match Pq.min_binding_opt !q with
          | None -> None
          | Some (k, l) -> take k l)
    end
    else
      match Pq.min_binding_opt !q with
      | None -> None
      | Some (k, l) -> take k l
  in
  let push s = q := Pq.update (key mode s) (function
      | None -> Some [ s ]
      | Some l -> Some (s :: l)) !q
  in
  (try
     while elapsed () < config.time_budget
           && stats.iterations < config.max_iterations do
       match pop () with
       | None -> raise Exit
       | Some s ->
           stats.iterations <- stats.iterations + 1;
           if Sys.getenv_opt "MAGIS_TRACE" <> None then
             Fmt.epr "[%d] pop mem=%.1fMB lat=%.2fms entries=%d enabled=%d stale=%b@."
               stats.iterations
               (float_of_int s.peak_mem /. 1e6)
               (s.latency *. 1e3)
               (Ftree.n_entries s.ftree)
               (List.length (Ftree.enabled_indices s.ftree))
               s.ftree_stale;
           (* refresh a stale F-Tree (Algorithm 3 line 13-14) *)
           let s =
             if s.ftree_stale && config.ablation.use_ftree_heuristic then
               let ftree =
                 Ftree.refresh ~max_level:config.ablation.max_level s.graph
                   ~old_tree:s.ftree ~hotspots:s.hotspots
               in
               { s with ftree; ftree_stale = false }
             else { s with ftree_stale = false }
           in
           let proposals =
             (if Ftree.n_entries s.ftree > 0 then
                ftree_proposals config stats s
              else [])
             @ rewrite_proposals config stats s
           in
           (* hash test FIRST: duplicate graphs skip scheduling and
              simulation entirely (the Fig. 15 "Filtered" column) *)
           List.iter
             (fun (p : proposal) ->
               let h =
                 let t0 = Unix.gettimeofday () in
                 let h =
                   Util.hash_combine (Wl_hash.hash p.p_graph)
                     (Ftree.fingerprint p.p_ftree)
                 in
                 stats.t_hash <- stats.t_hash +. (Unix.gettimeofday () -. t0);
                 stats.n_hash <- stats.n_hash + 1;
                 h
               in
               if Hashtbl.mem seen h then
                 stats.n_filtered <- stats.n_filtered + 1
               else begin
                 Hashtbl.replace seen h ();
                 let s' = evaluate_proposal config cache stats s p in
                 if better_than mode s' !best then begin
                   best := s';
                   history :=
                     (elapsed (), s'.peak_mem, s'.latency) :: !history
                 end;
                 if better_than mode ~delta:1.1 s' !best then push s'
               end)
             proposals
     done
   with Exit -> ());
  { best = !best; initial = init; stats; history = List.rev !history }

(* ------------------------------------------------------------------ *)
(* Convenience wrappers                                                *)
(* ------------------------------------------------------------------ *)

(** Optimize peak memory subject to a latency-overhead bound relative to
    the unoptimized graph (e.g. [0.10] allows 10% overhead). *)
let optimize_memory ?config (cache : Op_cost.t) ~(overhead : float)
    (graph : Graph.t) : result =
  let base = Simulator.run cache graph (Graph.topo_order graph) in
  run ?config cache
    (Min_memory { lat_limit = base.latency *. (1.0 +. overhead) })
    graph

(** Optimize latency subject to a peak-memory bound relative to the
    unoptimized graph (e.g. [0.4] caps memory at 40%). *)
let optimize_latency ?config (cache : Op_cost.t) ~(mem_ratio : float)
    (graph : Graph.t) : result =
  let base = Simulator.run cache graph (Graph.topo_order graph) in
  run ?config cache
    (Min_latency
       { mem_limit = int_of_float (float_of_int base.peak_mem *. mem_ratio) })
    graph
