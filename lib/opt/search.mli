(** Top-level search (Algorithm 3): best-first exploration of M-States
    with BetterThan ordering, WL-hash deduplication, F-Tree refresh and
    incremental scheduling after every transformation.

    Resilience (DESIGN.md §9): supervised candidate expansion with
    quarantine and bounded retry, crash-safe checkpoint/resume, and a
    graceful-degradation ladder near time-budget exhaustion. *)

open Magis_ir
open Magis_cost

type mode =
  | Min_latency of { mem_limit : int }
      (** optimize latency; peak memory must stay below the limit *)
  | Min_memory of { lat_limit : float }
      (** optimize peak memory; latency must stay below the limit *)

type ablation = {
  use_ftree_heuristic : bool;  (** false = "naïve-fission" (Fig. 13) *)
  restrict_sched_rules : bool;  (** false = "naïve-sch-rule" (Fig. 13) *)
  max_level : int;  (** the F-Tree max level L *)
}

val default_ablation : ablation

(** Raised when [verify_states] finds an invalid accepted state.  Never
    retried or quarantined by the supervised expansion: a verification
    failure is an optimizer bug, not a runtime fault. *)
exception Verification_failure of string

type stats = {
  mutable n_transform : int;
  mutable t_transform : float;
  mutable n_sched : int;
  mutable t_sched : float;
  mutable n_simul : int;
  mutable t_simul : float;
  mutable n_hash : int;
  mutable t_hash : float;
  mutable n_filtered : int;  (** duplicate graphs skipped by hash test *)
  mutable iterations : int;
  mutable n_sim_hit : int;  (** evaluations served by the simulation cache *)
  mutable n_sim_miss : int;  (** evaluations computed and then cached *)
  mutable n_bound_calls : int;
      (** lower-bound probes run on simulation-cache misses *)
  mutable t_bound : float;  (** seconds spent in bound probes *)
  mutable n_pruned_lb : int;
      (** candidates dropped before reschedule/simulate because their
          admissible lower bound already failed the δ-relaxed admission
          test (counted in neither [n_sim_hit] nor [n_sim_miss]) *)
  mutable n_lv_delta : int;
      (** bound probes answered by the O(Δ) liveness delta-update path
          ({!Magis_analysis.Liveness.delta_update}) instead of a
          per-candidate scratch analysis *)
  mutable n_cut_reused : int;
      (** probe cut evaluations inherited from the popped parent *)
  mutable n_cut_recomputed : int;
      (** probe cut evaluations actually run by incremental probes *)
  mutable n_sched_fallback : int;
      (** incremental reschedules whose window splice produced an
          illegal order and fell back to a full reschedule *)
  mutable n_resched_nodes : int;
      (** nodes actually re-placed by the incremental rescheduler *)
  mutable n_sched_nodes : int;
      (** total nodes across produced schedules (denominator of the
          rescheduled-node fraction) *)
  mutable n_cheap_sched : int;
      (** candidates evaluated by the cheap list-scheduling tier *)
  mutable n_promoted : int;
      (** cheap-tier candidates promoted to the exact tier at the merge *)
  mutable domain_time : float array;
      (** cumulative busy seconds per expansion worker ([jobs] cells;
          one cell for a serial run) *)
  mutable n_retried : int;
      (** candidates whose first execution failed and were re-executed
          by the supervisor *)
  mutable n_quarantined : int;
      (** candidates dropped after exhausting their retries; each one
          has a diagnostic in [result.diagnostics] *)
  mutable n_checkpoints : int;  (** snapshots written this run *)
  mutable degrade_steps : (float * string) list;
      (** graceful-degradation ladder steps taken, in order: (elapsed
          seconds, step name) — ["reduce-sched-states"],
          ["disable-bound-probes"], ["best-so-far"] *)
}

type result = {
  best : Mstate.t;
  initial : Mstate.t;
  stats : stats;
  history : (float * int * float) list;
      (** (elapsed seconds, peak bytes, latency) after each improvement *)
  diagnostics : Magis_analysis.Diagnostic.t list;
      (** quarantine reports from the supervised expansion, oldest
          first ([] in a fault-free run); pass ["resilience"], checks
          ["injected-fault"], ["nonfinite-cost"], ["worker-exception"] *)
  interrupted : bool;
      (** true when the run was cut short by SIGINT/SIGTERM (the
          checkpoint, if configured, was written before returning) *)
}

(** Crash-safe snapshot configuration. *)
type checkpoint = {
  ckpt_path : string;  (** snapshot file, atomically replaced *)
  ckpt_every : float;  (** seconds between periodic snapshots *)
  ckpt_resume : bool;
      (** restore from [ckpt_path] when a compatible snapshot exists.
          A missing file silently starts fresh; a corrupt file or one
          written by a different workload/hardware/configuration raises
          {!Magis_resilience.Checkpoint.Incompatible}.  A resumed
          search continues bit-identically: running N iterations,
          checkpointing and resuming for M more returns the same best
          state as an uninterrupted (N+M)-iteration run. *)
}

type config = {
  ablation : ablation;
  sched_states : int;  (** DP budget per scheduling call; 0 = greedy only *)
  max_per_rule : int;
  time_budget : float;  (** seconds *)
  max_iterations : int;
  diversify_pops : bool;
      (** every few pops, take a random queue bucket instead of the best
          (escapes local optima created by aggressive early rewrites) *)
  use_sweep_rules : bool;  (** compound swap/remat rules *)
  verify_states : bool;
      (** debug: run {!Magis_analysis.Verify} and
          {!Magis_analysis.Sched_check} on every accepted M-state, and
          additionally assert the bound invariant
          [Membound.lower <= simulated peak <= Membound.ub_total] (plus
          the latency floor) via {!Magis_analysis.Hooks.assert_bounds},
          raising {!Verification_failure} on the first violation
          (tests/CI on, benchmarks off) *)
  jobs : int;
      (** worker domains for the per-iteration candidate expansion;
          1 (the default) spawns no domains — the exact legacy serial
          path.  Any [jobs] value returns bit-identical best states:
          candidates are generated, deduplicated and merged serially in
          candidate order. *)
  sim_cache : Sim_cache.t option;
      (** memoizes (reschedule → simulate) evaluations.  [None] (the
          default) uses a fresh private cache per run; pass [Some c] to
          share hits across searches (ablation sweeps, repeated runs). *)
  prune_bounds : bool;
      (** branch-and-bound pruning (default [true]): on a
          simulation-cache miss, probe the candidate with the
          schedule-independent {!Magis_analysis.Membound} lower bound
          (peak memory in [Min_latency] mode, serialized compute time in
          [Min_memory] mode) and drop it before reschedule/simulate when
          the bound proves it would fail the δ-relaxed queue admission
          against the incumbent.  Because the bound is admissible and
          the threshold uses the same δ as the push test,
          pruning never changes the returned best state — only
          [n_pruned_lb]/[n_bound_calls] and the time spent. *)
  incremental : bool;
      (** incremental candidate evaluation (default [true]): memory
          bound probes run as O(Δ) updates against the popped parent's
          liveness analysis and probe
          ({!Magis_analysis.Liveness.delta_update} +
          {!Magis_analysis.Membound.probe_update}) instead of an O(n)
          scratch analysis per candidate.  The incremental bound equals
          the scratch bound exactly (checked against the
          scratch-recompute oracle under [verify_states]), so the
          returned best state is bit-identical with the flag on or
          off — only [n_lv_delta]/[n_cut_reused] and the time spent
          differ. *)
  cheap_tier : bool;
      (** two-tier candidate evaluation (default [false]): every
          survivor is first scored by the O((V+E) log V) critical-path
          list scheduler ({!Magis_sched.Listsched}); only candidates
          whose cheap numbers pass δ-admission against the incumbent
          are promoted to the exact tier (incremental reschedule +
          cached simulation).  Exact numbers alone drive the best state
          and the queue, so every reported state is exactly evaluated,
          but the trajectory may differ from the one-tier search: a
          cheap schedule can overshoot δ on a candidate the exact tier
          would have admitted. *)
  supervise : bool;
      (** per-candidate exception isolation (default [true]): a failing
          candidate is re-executed up to [max_retries] times with
          bounded backoff on the orchestrating domain, then quarantined
          with a structured diagnostic — the surviving candidates of
          the batch are kept.  Fatal exceptions (out-of-memory,
          {!Verification_failure}, …) always re-raise immediately.
          [false] restores the all-or-nothing legacy semantics where
          the first worker failure aborts the whole search.  Retries
          run serially at the merge, so supervision preserves the
          bit-identical-across-[jobs] guarantee. *)
  max_retries : int;
      (** bounded-backoff re-executions of a failed candidate before it
          is quarantined (default 3) *)
  checkpoint : checkpoint option;
      (** crash-safe snapshots: written every [ckpt_every] seconds, on
          SIGINT/SIGTERM (the run then returns early with
          [interrupted = true]) and once at normal exit.  [None]
          (the default) = off; signal handlers are only installed when
          set. *)
  degrade : bool;
      (** graceful-degradation ladder (default [true]): past 85% of
          [time_budget] the DP scheduling budget steps down to a
          quarter, past 95% bound probes are disabled, and budget
          exhaustion returns best-so-far — each step recorded in
          [stats.degrade_steps].  Runs with effectively unlimited
          budgets never reach the thresholds, so determinism tests are
          unaffected. *)
  profile : Magis_obs.Profile.t option;
      (** per-iteration telemetry sink ([None], the default, = off):
          after each iteration's merge one JSONL record is written with
          the queue depth, candidate/survivor counts, best-so-far peak
          and latency, cumulative cache/prune/quarantine counters,
          per-phase seconds and per-worker busy fractions.  Purely
          observational — excluded from the trajectory fingerprint and
          never changes the search. *)
  harvest : (iteration:int -> Mstate.t -> unit) option;
      (** frontier side channel ([None], the default, = off): called
          once for every exactly-evaluated candidate at the serial
          phase-4 merge, in candidate order, before and regardless of
          δ-admission — so the callback observes the same states in the
          same order for any [jobs] value.  {!Magis_frontier} uses it
          to collect the memory–latency Pareto frontier a search sweeps
          past.  Purely observational: excluded from the trajectory
          fingerprint, and the returned best state is bit-identical
          with the hook on or off (A/B-enforced in the tests). *)
  cancel : unit -> bool;
      (** cooperative cancellation hook, polled at every expansion
          boundary alongside {!Magis_resilience.Interrupt.requested}:
          returning [true] makes the run checkpoint (if configured) and
          return best-so-far with [interrupted] set.  {!Magis_serve}
          maps client disconnects and deadline overruns onto this; the
          default never cancels.  Excluded from the trajectory
          fingerprint (it carries no search-relevant state). *)
}

val default_config : config

(** Digest of everything that must match for two runs to follow the
    same trajectory: the input graph (WL hash), the hardware
    fingerprint, the mode with its limit, and every trajectory-relevant
    configuration knob.  [jobs], caching/verification flags and the
    observation-only hooks ([profile], [harvest], [cancel]) are
    excluded — they are result-preserving by construction.  Keys both
    search checkpoints and cached frontiers
    ({!Magis_frontier.Frontier_cache}). *)
val trajectory_fingerprint : config -> mode -> hw:int64 -> Graph.t -> int64

(** Fraction of evaluations served by the simulation cache (0 when none
    ran). *)
val sim_hit_rate : stats -> float

(** Fraction of scheduled nodes the incremental rescheduler actually
    re-placed (0 when nothing was scheduled). *)
val resched_frac : stats -> float

(** Fraction of probe cut evaluations inherited from the parent state
    (0 when no incremental probes ran). *)
val cut_reuse_rate : stats -> float

(** Stats as a flat JSON object (plus [domain_time] and
    [degrade_steps] arrays) — the payload of
    [magis_cli optimize --stats-json]. *)
val stats_json : stats -> Magis_obs.Json.t

(** Human-readable stat block: the Fig. 15 phase table (counts and
    cumulative seconds for transformation / scheduling / simulation /
    hashing / bound probes) followed by cache, worker, resilience,
    checkpoint and degradation summary lines.  Shared by
    [magis_cli optimize] and the Fig. 15 bench. *)
val pp_stats : Format.formatter -> stats -> unit

(** Comparison key of a state under the given mode. *)
val key : mode -> Mstate.t -> float * float

(** The Algorithm 3 BetterThan, with the paper's δ relaxation. *)
val better_than : mode -> ?delta:float -> Mstate.t -> Mstate.t -> bool

val run : ?config:config -> Op_cost.t -> mode -> Graph.t -> result

(** Minimize memory with at most [overhead] extra latency relative to the
    unoptimized graph (Fig. 9 mode). *)
val optimize_memory :
  ?config:config -> Op_cost.t -> overhead:float -> Graph.t -> result

(** Minimize latency with peak memory at most [mem_ratio] of the
    unoptimized peak (Fig. 10 mode). *)
val optimize_latency :
  ?config:config -> Op_cost.t -> mem_ratio:float -> Graph.t -> result
