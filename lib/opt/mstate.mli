(** M-State (§3): the optimizer's search state — computation graph,
    fission hierarchy tree, best schedule and simulation result. *)

open Magis_ir
open Magis_cost
open Magis_ftree
module Int_set = Util.Int_set

type t = {
  graph : Graph.t;
  ftree : Ftree.t;
  schedule : int list;
  peak_mem : int;  (** device bytes at the memory peak *)
  latency : float;  (** simulated seconds per iteration *)
  hotspots : Int_set.t;
  ftree_stale : bool;  (** graph changed since the F-Tree was built *)
}

(** Simulate [schedule] under the tree's fission accounting.  [acc]
    reuses an accounting the caller already computed for this
    (graph, ftree) pair. *)
val evaluate :
  ?ftree_stale:bool ->
  ?acc:Ftree.accounting ->
  Op_cost.t ->
  Graph.t ->
  Ftree.t ->
  int list ->
  t

(** Rebuild a state from a simulation-cache hit; bit-identical to
    re-evaluating, because the cache key digests every evaluation input. *)
val of_cached : ?ftree_stale:bool -> Graph.t -> Ftree.t -> Sim_cache.value -> t

(** The cacheable part of a state, inverse of {!of_cached}. *)
val to_cached : t -> Sim_cache.value

(** Initial state: schedule, analyze, build the F-Tree (Algorithm 1). *)
val init : ?max_level:int -> ?sched_states:int -> Op_cost.t -> Graph.t -> t

val memory_ratio : t -> baseline:int -> float
val pp : Format.formatter -> t -> unit
