(** M-State: the optimization state of MAGIS (§3).

    Bundles the computation graph, the fission hierarchy tree, the best
    schedule found for this graph, and the simulation result (peak memory,
    latency).  The fission tree is *virtual*: the graph is unchanged; the
    simulator accounts for enabled fissions through {!Ftree.accounting}. *)

open Magis_ir
open Magis_cost
open Magis_ftree
open Magis_sched
module Int_set = Util.Int_set

type t = {
  graph : Graph.t;
  ftree : Ftree.t;
  schedule : int list;
  peak_mem : int;  (** device bytes at the memory peak *)
  latency : float;  (** simulated seconds per iteration *)
  hotspots : Int_set.t;
  ftree_stale : bool;  (** graph changed since the F-Tree was built *)
}

(** Simulate [schedule] on [graph] under the fission accounting of
    [ftree] and package the result.  [acc] lets callers that already
    computed {!Ftree.accounting} (the search's evaluation path needs it
    for the bound probe and the reschedule) pass it in instead of
    recomputing. *)
let evaluate ?(ftree_stale = false) ?acc (cache : Op_cost.t) (graph : Graph.t)
    (ftree : Ftree.t) (schedule : int list) : t =
  let acc =
    match acc with
    | Some a -> a
    | None -> Ftree.accounting cache graph ftree
  in
  let res =
    Simulator.run ~size_of:acc.size_of ~cost_of:acc.cost_of cache graph
      schedule
  in
  {
    graph;
    ftree;
    schedule;
    peak_mem = res.peak_mem;
    latency = res.latency +. acc.extra_latency;
    hotspots = Lifetime.hotspots res.analysis;
    ftree_stale;
  }

(** Rebuild a state from a {!Magis_cost.Sim_cache} hit: the graph,
    F-Tree and staleness come from the proposal being evaluated, the
    schedule and simulation outcome from the cache.  Because the cache
    key digests every evaluation input, this is bit-identical to calling
    {!evaluate} again. *)
let of_cached ?(ftree_stale = false) (graph : Graph.t) (ftree : Ftree.t)
    (v : Sim_cache.value) : t =
  {
    graph;
    ftree;
    schedule = v.schedule;
    peak_mem = v.peak_mem;
    latency = v.latency;
    hotspots = Int_set.of_list v.hotspots;
    ftree_stale;
  }

(** The cacheable part of a state, inverse of {!of_cached}. *)
let to_cached (t : t) : Sim_cache.value =
  {
    schedule = t.schedule;
    peak_mem = t.peak_mem;
    latency = t.latency;
    hotspots = Int_set.elements t.hotspots;
  }

(** Initial state: schedule the input graph, analyze it, build the F-Tree
    (Algorithm 1). *)
let init ?(max_level = 4) ?(sched_states = 4_000) (cache : Op_cost.t)
    (graph : Graph.t) : t =
  let schedule = Reorder.schedule ~max_states:sched_states graph in
  let pre = evaluate cache graph Ftree.empty schedule in
  let ftree = Ftree.construct ~max_level graph ~hotspots:pre.hotspots in
  { pre with ftree }

(** Fraction of device memory relative to a baseline (for reporting). *)
let memory_ratio t ~baseline = float_of_int t.peak_mem /. float_of_int baseline

let pp ppf t =
  Fmt.pf ppf "mstate(n=%d, peak=%.1fMB, lat=%.2fms, ftree=%d)"
    (Graph.n_nodes t.graph)
    (float_of_int t.peak_mem /. 1e6)
    (t.latency *. 1e3) (Ftree.n_entries t.ftree)
