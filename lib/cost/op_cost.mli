(** Analytic operator latency with a memoizing cache — the role of the
    paper's operator performance cache (§6.2).  Domain-safe: the memo
    table is shared by the parallel expansion workers behind [lock]. *)

open Magis_ir

(** Raised when a computed cost is NaN, infinite or negative — from the
    analytic model itself, a fission-accounting hook built on it, or an
    injected [Nan_cost] fault.  The supervised search quarantines the
    offending candidate with a ["nonfinite-cost"] diagnostic instead of
    letting the value poison the priority queue. *)
exception Non_finite of { what : string; value : float }

(** [check_finite ~what v] raises {!Non_finite} unless [0 <= v < ∞].
    Exposed for the simulator and other cost-consuming layers. *)
val check_finite : what:string -> float -> unit

type t = {
  hw : Hardware.t;
  cache : (int64, float) Hashtbl.t;  (** guarded by [lock] *)
  lock : Mutex.t;
  mutable hits : int;  (** guarded by [lock] *)
  mutable misses : int;  (** guarded by [lock] *)
}

val create : Hardware.t -> t

(** Latency (seconds) of one execution on the compute stream; Store/Load
    cost nothing here (they run on the copy stream). *)
val cost : t -> Op.kind -> Shape.t array -> Shape.t -> float

val node_cost : t -> Graph.t -> int -> float

(** Host<->device transfer time for [bytes]. *)
val swap_time : t -> int -> float

(** Sum of node costs ([cost(G) ≈ Σ cost(v)], §2.1). *)
val graph_cost : t -> Graph.t -> float

val stats : t -> int * int
val reset_stats : t -> unit
