(** Static memory planning: turn tensor lifetimes into concrete arena
    offsets, the job of TVM's memory planner (whose allocation records the
    paper reads for its TVM baseline).

    The peak of the lifetime analysis is a lower bound on the arena a
    runtime really needs; an offset allocator can lose more to
    fragmentation.  [plan] lays every tensor out with one of three
    strategies and reports the high-water arena size, so the gap between
    planned and live bytes (the fragmentation overhead) is measurable. *)

open Magis_ir

type strategy =
  | Best_fit  (** smallest free gap that fits (default) *)
  | First_fit  (** lowest free offset that fits *)
  | Bump  (** never reuse: every tensor gets fresh space *)

type placement = {
  node : int;
  offset : int;
  bytes : int;
  birth : int;
  free : int;
}

type t = {
  arena_size : int;  (** high-water mark of the arena *)
  peak_live : int;  (** lower bound: peak of live bytes *)
  placements : placement list;
}

(** Fragmentation overhead: planned arena relative to live peak (1.0 = no
    waste). *)
let fragmentation t =
  if t.peak_live = 0 then 1.0
  else float_of_int t.arena_size /. float_of_int t.peak_live

(** Do two placements conflict (overlapping lifetime and address range)? *)
let conflicts a b =
  a.birth <= b.free && b.birth <= a.free
  && a.offset < b.offset + b.bytes
  && b.offset < a.offset + a.bytes

let plan ?(strategy = Best_fit) (analysis : Lifetime.t) : t =
  let order = analysis.order in
  let n = Array.length order in
  let tensors =
    List.init n (fun i ->
        let birth, free = Lifetime.interval analysis i in
        { node = order.(i); offset = 0; bytes = analysis.sizes.(i); birth; free })
    |> List.filter (fun p -> p.bytes > 0)
    |> List.sort (fun a b -> compare (a.birth, b.birth) (b.birth, a.birth))
  in
  (* active placements sorted by offset; find a gap for [bytes] *)
  let place active bytes ~birth ~free =
    let live =
      List.filter (fun p -> p.birth <= free && birth <= p.free) active
      |> List.sort (fun a b -> compare a.offset b.offset)
    in
    match strategy with
    | Bump ->
        List.fold_left (fun acc p -> max acc (p.offset + p.bytes)) 0 active
    | First_fit | Best_fit ->
        (* candidate gaps: 0 and after each live placement *)
        let gaps =
          let rec walk at = function
            | [] -> [ (at, max_int) ]
            | p :: rest ->
                if p.offset > at then (at, p.offset - at) :: walk (max at (p.offset + p.bytes)) rest
                else walk (max at (p.offset + p.bytes)) rest
          in
          walk 0 live
        in
        let fitting = List.filter (fun (_, sz) -> sz >= bytes) gaps in
        (match strategy with
        | First_fit | Bump -> (
            match fitting with (o, _) :: _ -> o | [] -> assert false)
        | Best_fit ->
            (match
               List.sort (fun (_, a) (_, b) -> compare a b) fitting
             with
            | (o, _) :: _ -> o
            | [] -> assert false))
  in
  let placements =
    List.fold_left
      (fun acc p ->
        let offset = place acc p.bytes ~birth:p.birth ~free:p.free in
        { p with offset } :: acc)
      [] tensors
  in
  let arena_size =
    List.fold_left (fun m p -> max m (p.offset + p.bytes)) 0 placements
  in
  {
    arena_size;
    peak_live = Lifetime.peak_memory analysis;
    placements = List.rev placements;
  }

(** All conflicting pairs, for diagnosis rather than a bare boolean.
    Placements are swept in offset order, so each pair is compared only
    while the address ranges can still overlap. *)
let overlaps t =
  let by_offset =
    List.sort (fun a b -> compare (a.offset, a.bytes) (b.offset, b.bytes))
      t.placements
  in
  let rec sweep acc = function
    | [] -> acc
    | p :: rest ->
        let acc =
          List.fold_left
            (fun acc q ->
              if q.offset >= p.offset + p.bytes then acc
              else if conflicts p q then (p, q) :: acc
              else acc)
            acc rest
        in
        sweep acc rest
  in
  List.rev (sweep [] by_offset)

let placement_of t node = List.find_opt (fun p -> p.node = node) t.placements

(** Sanity check used by tests: no two live-overlapping tensors share
    addresses. *)
let is_valid t = overlaps t = []

(** Convenience: plan a graph under a given schedule. *)
let plan_schedule ?strategy (g : Graph.t) (schedule : int list) : t =
  plan ?strategy (Lifetime.analyze g schedule)
