(** Static memory planning: tensor lifetimes → concrete arena offsets (the
    job of TVM's memory planner).  Quantifies the fragmentation gap
    between the live-byte peak and the arena a runtime really needs. *)

open Magis_ir

type strategy =
  | Best_fit  (** smallest free gap that fits (default) *)
  | First_fit  (** lowest free offset that fits *)
  | Bump  (** never reuse *)

type placement = {
  node : int;
  offset : int;
  bytes : int;
  birth : int;
  free : int;
}

type t = {
  arena_size : int;  (** high-water mark of the arena *)
  peak_live : int;  (** lower bound: peak of live bytes *)
  placements : placement list;
}

(** Planned arena relative to the live peak (1.0 = no waste). *)
val fragmentation : t -> float

val conflicts : placement -> placement -> bool
val plan : ?strategy:strategy -> Lifetime.t -> t

(** All conflicting placement pairs (overlapping lifetimes {e and}
    address ranges), found by an offset-ordered sweep.  Empty for a
    correct plan; the interference checker reports each pair. *)
val overlaps : t -> (placement * placement) list

(** The placement of a node's output buffer, if it was planned (zero-byte
    tensors are not). *)
val placement_of : t -> int -> placement option

(** No two live-overlapping tensors share addresses (test hook). *)
val is_valid : t -> bool

val plan_schedule : ?strategy:strategy -> Graph.t -> int list -> t
