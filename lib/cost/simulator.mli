(** Schedule simulator: a two-stream device model (compute + copy) in
    which Store/Load overlap with computation, synchronizing only through
    data dependencies — the paper's asynchronous swapping.  [cost_of] and
    [size_of] let the fission layer reshape costs and sizes.

    Every scheduled duration and the final latency pass through
    {!Op_cost.check_finite}, so a NaN from any cost hook raises
    {!Op_cost.Non_finite} instead of propagating silently.  [run] is
    also a fault-injection site (["simulator"],
    {!Magis_resilience.Fault}). *)

open Magis_ir

type result = {
  latency : float;  (** seconds per iteration of the schedule *)
  peak_mem : int;  (** peak device bytes *)
  compute_busy : float;  (** compute-stream busy time *)
  copy_busy : float;  (** copy-stream busy time *)
  analysis : Lifetime.t;
}

val run :
  ?size_of:(int -> int) ->
  ?cost_of:(int -> float) ->
  Op_cost.t ->
  Graph.t ->
  int list ->
  result
