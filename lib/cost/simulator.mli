(** Schedule simulator: a two-stream device model (compute + copy) in
    which Store/Load overlap with computation, synchronizing only through
    data dependencies — the paper's asynchronous swapping.  [cost_of] and
    [size_of] let the fission layer reshape costs and sizes.

    Every scheduled duration and the final latency pass through
    {!Op_cost.check_finite}, so a NaN from any cost hook raises
    {!Op_cost.Non_finite} instead of propagating silently.  [run] is
    also a fault-injection site (["simulator"],
    {!Magis_resilience.Fault}). *)

open Magis_ir

type result = {
  latency : float;  (** seconds per iteration of the schedule *)
  peak_mem : int;  (** peak device bytes *)
  compute_busy : float;  (** compute-stream busy time *)
  copy_busy : float;  (** copy-stream busy time *)
  analysis : Lifetime.t;
}

(** One scheduled non-Input node's placement on the device model. *)
type event = {
  ev_node : int;
  ev_copy : bool;  (** true: copy stream (Store/Load); false: compute *)
  ev_start : float;  (** seconds from schedule start *)
  ev_finish : float;
}

val run :
  ?size_of:(int -> int) ->
  ?cost_of:(int -> float) ->
  Op_cost.t ->
  Graph.t ->
  int list ->
  result

(** Like {!run}, additionally returning the per-node placements in
    schedule order — the input of {!Magis_obs.Timeline} lane export.
    Traced as a ["simulate"] span. *)
val run_events :
  ?size_of:(int -> int) ->
  ?cost_of:(int -> float) ->
  Op_cost.t ->
  Graph.t ->
  int list ->
  result * event list
