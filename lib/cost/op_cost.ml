(** Analytic operator latency with a memoizing cache.

    [cost] plays the role of the paper's operator performance cache: the
    first query for an (operator, shapes) key computes the latency from the
    hardware model; later queries hit the cache.  The cache hit/miss
    counters feed the Fig. 15 time-breakdown experiment.

    The table is shared by every domain of the parallel expansion pool
    ({!Magis_par.Pool}), so lookups and insertions take [lock]; the
    analytic latency itself is computed outside the critical section.
    A race between two domains computing the same key is benign — both
    compute the same deterministic value and the second [replace] is a
    no-op in effect. *)

open Magis_ir
module Fault = Magis_resilience.Fault
module Metrics = Magis_obs.Metrics

let m_hits = Metrics.counter "op_cost.hits"
let m_misses = Metrics.counter "op_cost.misses"

exception Non_finite of { what : string; value : float }

let () =
  Printexc.register_printer (function
    | Non_finite { what; value } ->
        Some
          (Printf.sprintf "Magis_cost.Op_cost.Non_finite(%s = %h)" what value)
    | _ -> None)

(** Finiteness guard: every cost this module (or a cost hook built on
    it) hands to the search must be a finite non-negative number of
    seconds.  A NaN would silently poison every comparison downstream —
    the priority queue, the δ-admission test, the bound probes — so it
    is converted to a structured exception at the source, which the
    supervised search quarantines as a diagnostic. *)
let check_finite ~what value =
  if not (Float.is_finite value) || value < 0.0 then
    raise (Non_finite { what; value })

type t = {
  hw : Hardware.t;
  cache : (int64, float) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let create hw =
  { hw; cache = Hashtbl.create 1024; lock = Mutex.create (); hits = 0;
    misses = 0 }

let key (op : Op.kind) (ins : Shape.t array) =
  let h = Op.fingerprint op in
  Array.fold_left (fun h s -> Util.hash_combine h (Shape.hash s)) h ins

(** Latency (seconds) of one execution of the operator on the device
    compute stream.  Store/Load cost nothing here: they run on the copy
    stream (see {!Simulator}). *)
let compute_raw (hw : Hardware.t) (op : Op.kind) (ins : Shape.t array)
    (out : Shape.t) : float =
  match op with
  | Op.Input _ | Op.Store | Op.Load -> 0.0
  | _ ->
      let fl = Op.flops op ins out in
      let by = Op.bytes_moved op ins out in
      (* two-tier memory: traffic beyond the fast-tier capacity streams
         at the slow-tier rate.  Flat profiles have
         [fast_memory = device_memory], far above any single operator's
         traffic, so this reduces to the plain roofline term there. *)
      let fast = float_of_int hw.fast_memory in
      let mem_t =
        if by <= fast then by /. hw.mem_bandwidth
        else (fast /. hw.mem_bandwidth) +. ((by -. fast) /. hw.swap_bandwidth)
      in
      hw.launch_overhead +. (fl /. hw.peak_flops) +. mem_t

let cost t (op : Op.kind) (ins : Shape.t array) (out : Shape.t) : float =
  let k = key op ins in
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.cache k with
  | Some c ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      Metrics.incr m_hits;
      (* the fault site covers hits and misses alike, so a site visit
         count is independent of cache warmth *)
      let c = Fault.cost "op_cost" c in
      check_finite ~what:(Op.name op ^ " cost") c;
      c
  | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      Metrics.incr m_misses;
      let c = Fault.cost "op_cost" (compute_raw t.hw op ins out) in
      (* guard before caching: a corrupted value must never be memoized *)
      check_finite ~what:(Op.name op ^ " cost") c;
      Mutex.lock t.lock;
      Hashtbl.replace t.cache k c;
      Mutex.unlock t.lock;
      c

(** Latency of a node of graph [g]. *)
let node_cost t (g : Graph.t) (id : int) : float =
  let n = Graph.node g id in
  let ins = Array.map (fun i -> Graph.shape g i) n.inputs in
  cost t n.op ins n.shape

(** Time to move a tensor of [bytes] over the host<->device link. *)
let swap_time t (bytes : int) : float =
  float_of_int bytes /. t.hw.swap_bandwidth

(** Sum of node costs — the graph latency lower bound (§2.1:
    [cost(G) ≈ Σ cost(v)]). *)
let graph_cost t (g : Graph.t) : float =
  Graph.fold (fun n acc -> acc +. node_cost t g n.id) g 0.0

let stats t =
  Mutex.lock t.lock;
  let r = (t.hits, t.misses) in
  Mutex.unlock t.lock;
  r

let reset_stats t =
  Mutex.lock t.lock;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.lock
