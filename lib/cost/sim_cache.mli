(** Simulation cache: memoizes the (reschedule → simulate) evaluation of
    an M-state so repeated searches over the same workload — ablation
    sweeps, budget sweeps, serial/parallel A-B runs — skip both phases
    on states they have already evaluated.

    The key digests everything the evaluation depends on: the state's
    structural identity (WL hash of the graph ⊕ F-Tree fingerprint), the
    parent schedule and mutated-node set driving the incremental
    reschedule, the DP state budget, the search mode (so the two
    optimization modes can never collide) and the hardware fingerprint.
    All inputs being digested, a hit returns bit-identical results to a
    recomputation; searches sharing a cache stay deterministic.

    The table is a striped-lock table ({!Magis_par.Striped}) shared
    across the expansion pool's domains; hit/miss counters are atomic
    and surface through [Search.stats] and the Fig. 15 bench output.
    [find] is a fault-injection site (["sim_cache"],
    {!Magis_resilience.Fault}).

    Entries are stored delta-encoded against the parent schedule when
    the caller supplies one (see [add]): children of one parent share a
    single interned copy of its schedule and store only the rewritten
    window.  Encoding is validated by reconstruct-and-compare, so [find]
    always returns the bit-identical schedule that was added. *)

(** Cached outcome of evaluating one M-state. *)
type value = {
  schedule : int list;  (** result of the incremental reschedule *)
  peak_mem : int;
  latency : float;
  hotspots : int list;  (** sorted elements of the hot-spot set *)
}

(** The prefix/middle/suffix schedule codec by itself, for callers that
    store many schedules derived from a shared parent outside this
    table (the frontier's harvested-schedule store).  [encode] validates
    by reconstruct-and-compare and falls back to a full copy whenever
    the delta would not be smaller, so [decode] is always bit-identical
    to the encoded schedule.  Unlike [add], no interning happens here:
    the [parent] list the caller passes is held as-is, so passing one
    shared physical list per parent preserves the aliasing the cache's
    pool would provide. *)
module Codec : sig
  type code

  (** Store [sched] as-is (no parent). *)
  val full : int list -> code

  (** Delta against [parent] when profitable and exact, else full. *)
  val encode : parent:int list -> int list -> code

  val decode : code -> int list
  val is_delta : code -> bool

  (** [int]s this code holds beyond its (possibly shared) parent. *)
  val stored_ints : code -> int
end

type t

val create : ?stripes:int -> unit -> t

(** Digest of every evaluation input (see the module doc). *)
val key :
  state:int64 ->
  parent_sched:int64 ->
  mutated:int64 ->
  sched_states:int ->
  mode:int64 ->
  hw:int64 ->
  int64

(** [find t k] is the cached evaluation under [k]; bumps the hit or miss
    counter. *)
val find : t -> int64 -> value option

(** [add ?parent t k v] caches [v].  When [parent] — the schedule of the
    state [v] was derived from — is given and [v.schedule] shares a
    prefix/suffix with it, the entry is stored as a delta against an
    interned copy of [parent]; otherwise (or when the delta would not be
    smaller) it is stored in full.  Either way a later {!find} returns
    [v.schedule] bit-identically. *)
val add : ?parent:int list -> t -> int64 -> value -> unit

(** [(hits, misses)] since creation or the last {!reset_stats}. *)
val stats : t -> int * int

(** [hits / (hits + misses)] since creation or the last {!reset_stats}
    (0 when no lookup ran) — the cross-request effectiveness number a
    shared cache ({!Magis_serve}, [bench serve]) reports. *)
val hit_rate : t -> float

(** [(full_entries, delta_entries)] stored since creation or {!clear} —
    the compression-effectiveness counters of the [bench incr] report. *)
val delta_stats : t -> int * int

(** Approximate count of [int]s held by stored schedules (codes +
    interned pool + hotspot lists) — the resident-footprint counter the
    delta encoding exists to shrink. *)
val resident_ints : t -> int

val reset_stats : t -> unit

(** Number of cached evaluations. *)
val length : t -> int

val clear : t -> unit
