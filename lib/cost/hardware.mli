(** Device model: an additive roofline
    ([t = launch + flops/peak + bytes/bw]) plus a separate host<->device
    link used by the asynchronous copy stream.  Splitting an operator
    multiplies launches and re-reads shared operands — the fission
    latency tax. *)

type t = {
  name : string;
  peak_flops : float;  (** attainable FLOP/s *)
  mem_bandwidth : float;  (** device memory bytes/s *)
  swap_bandwidth : float;  (** host<->device bytes/s (PCIe) *)
  launch_overhead : float;  (** seconds per kernel launch *)
  device_memory : int;  (** device memory capacity, bytes *)
}

(** Roughly an RTX 3090 running TF32/BF16 kernels (the paper's testbed). *)
val rtx3090 : t

(** A phone-class device, for the edge-deployment experiments. *)
val mobile : t

val default : t

(** Stable 64-bit digest of the device model; equal fingerprints mean
    identical simulator behaviour (used to key the simulation cache). *)
val fingerprint : t -> int64

val pp : Format.formatter -> t -> unit
