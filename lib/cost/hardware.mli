(** Device model: an additive roofline
    ([t = launch + flops/peak + bytes/bw]) plus a separate host<->device
    link used by the asynchronous copy stream.  Splitting an operator
    multiplies launches and re-reads shared operands — the fission
    latency tax.

    Profiles form a small heterogeneous zoo (datacenter, consumer,
    mobile, edge low-bandwidth, multi-tier memory) addressable by name;
    {!fingerprint} digests every field, so any two distinct profiles key
    distinct simulation-cache and frontier-cache entries. *)

type t = {
  name : string;
  peak_flops : float;  (** attainable FLOP/s *)
  mem_bandwidth : float;  (** device memory bytes/s *)
  swap_bandwidth : float;  (** host<->device bytes/s (PCIe) *)
  launch_overhead : float;  (** seconds per kernel launch *)
  device_memory : int;  (** device memory capacity, bytes *)
  fast_memory : int;
      (** fast-tier capacity, bytes; operator traffic beyond it streams
          at [swap_bandwidth].  Equal to [device_memory] on flat-memory
          devices. *)
}

(** Roughly an RTX 3090 running TF32/BF16 kernels (the paper's testbed). *)
val rtx3090 : t

(** A datacenter-class accelerator (A100-like), the zoo's baseline. *)
val a100 : t

(** A phone-class device, for the edge-deployment experiments. *)
val mobile : t

(** An edge-class low-bandwidth device: memory-system-bound throughout. *)
val edge_lb : t

(** A multi-tier memory system: small fast tier over a large slow one;
    [fast_memory] is the capacity knob. *)
val tiered : t

val default : t

(** The named profile registry, [rtx3090] first. *)
val profiles : t list

(** Registry names, in {!profiles} order. *)
val names : string list

(** Case-insensitive registry lookup; raises [Invalid_argument] on
    unknown names. *)
val find : string -> t

(** Turn the fast-tier capacity knob; the profile is renamed
    ["<name>/fast<MB>M"] so derived profiles stay distinguishable in
    reports (the fingerprint would differ regardless). *)
val with_fast_memory : t -> bytes:int -> t

(** Stable 64-bit digest of the device model; equal fingerprints mean
    identical simulator behaviour (used to key the simulation cache and
    the frontier cache).  Digests every field of [t]. *)
val fingerprint : t -> int64

val pp : Format.formatter -> t -> unit
