(** Device model.

    The paper profiles real kernels on an RTX 3090 and caches their
    latencies (§6.2).  We replace the profile-filled cache with an analytic
    model with the same qualitative behaviour:

    - an additive roofline: [t = launch_overhead + flops/peak + bytes/bw].
      Splitting an operator into [n] parts multiplies the launch overhead
      and re-reads shared operands, so fission costs latency — exactly the
      "lower hardware utilization" the paper describes;
    - a separate host↔device link ([swap_bandwidth]) used by Store/Load on
      an asynchronous copy stream. *)

type t = {
  name : string;
  peak_flops : float;  (** attainable FLOP/s of the compute units *)
  mem_bandwidth : float;  (** device memory bytes/s *)
  swap_bandwidth : float;  (** host<->device bytes/s (PCIe) *)
  launch_overhead : float;  (** seconds per kernel launch *)
  device_memory : int;  (** device memory capacity, bytes *)
}

(** Roughly an RTX 3090 running TF32/BF16 kernels. *)
let rtx3090 =
  {
    name = "rtx3090";
    peak_flops = 35.6e12;
    mem_bandwidth = 936.0e9;
    swap_bandwidth = 16.0e9;
    launch_overhead = 6.0e-6;
    device_memory = 24_000_000_000;
  }

(** A mobile-class device (Snapdragon-like): useful for edge experiments. *)
let mobile =
  {
    name = "mobile";
    peak_flops = 1.2e12;
    mem_bandwidth = 51.2e9;
    swap_bandwidth = 3.0e9;
    launch_overhead = 20.0e-6;
    device_memory = 6_000_000_000;
  }

let default = rtx3090

(** Stable 64-bit digest of the full device model.  Two hardware values
    with the same fingerprint produce identical simulator results, so
    the fingerprint can key cached simulations ({!Magis_cost.Sim_cache}). *)
let fingerprint (t : t) : int64 =
  let open Magis_ir.Util in
  let h = hash_string t.name in
  let h = hash_combine h (Int64.bits_of_float t.peak_flops) in
  let h = hash_combine h (Int64.bits_of_float t.mem_bandwidth) in
  let h = hash_combine h (Int64.bits_of_float t.swap_bandwidth) in
  let h = hash_combine h (Int64.bits_of_float t.launch_overhead) in
  hash_combine h (Int64.of_int t.device_memory)

let pp ppf t =
  Fmt.pf ppf "%s(%.1f TFLOPs, %.0f GB/s mem, %.0f GB/s swap, %d GB)" t.name
    (t.peak_flops /. 1e12)
    (t.mem_bandwidth /. 1e9)
    (t.swap_bandwidth /. 1e9)
    (t.device_memory / 1_000_000_000)
