(** Device model.

    The paper profiles real kernels on an RTX 3090 and caches their
    latencies (§6.2).  We replace the profile-filled cache with an analytic
    model with the same qualitative behaviour:

    - an additive roofline: [t = launch_overhead + flops/peak + bytes/bw].
      Splitting an operator into [n] parts multiplies the launch overhead
      and re-reads shared operands, so fission costs latency — exactly the
      "lower hardware utilization" the paper describes;
    - a separate host↔device link ([swap_bandwidth]) used by Store/Load on
      an asynchronous copy stream;
    - a two-tier memory model: bytes beyond the fast-tier capacity
      ([fast_memory]) stream at the slow-tier ([swap_bandwidth]) rate.
      Flat-memory devices set [fast_memory = device_memory], which makes
      the tier term vanish. *)

type t = {
  name : string;
  peak_flops : float;  (** attainable FLOP/s of the compute units *)
  mem_bandwidth : float;  (** device memory bytes/s *)
  swap_bandwidth : float;  (** host<->device bytes/s (PCIe) *)
  launch_overhead : float;  (** seconds per kernel launch *)
  device_memory : int;  (** device memory capacity, bytes *)
  fast_memory : int;
      (** fast-tier capacity, bytes; operator traffic beyond it streams
          at [swap_bandwidth].  Equal to [device_memory] on flat-memory
          devices, so the knob only bites on tiered profiles. *)
}

(** Roughly an RTX 3090 running TF32/BF16 kernels. *)
let rtx3090 =
  {
    name = "rtx3090";
    peak_flops = 35.6e12;
    mem_bandwidth = 936.0e9;
    swap_bandwidth = 16.0e9;
    launch_overhead = 6.0e-6;
    device_memory = 24_000_000_000;
    fast_memory = 24_000_000_000;
  }

(** A datacenter-class accelerator (A100-like): the baseline profile of
    the heterogeneous deployment zoo. *)
let a100 =
  {
    name = "a100";
    peak_flops = 156.0e12;
    mem_bandwidth = 1.555e12;
    swap_bandwidth = 32.0e9;
    launch_overhead = 4.0e-6;
    device_memory = 40_000_000_000;
    fast_memory = 40_000_000_000;
  }

(** A mobile-class device (Snapdragon-like): useful for edge experiments. *)
let mobile =
  {
    name = "mobile";
    peak_flops = 1.2e12;
    mem_bandwidth = 51.2e9;
    swap_bandwidth = 3.0e9;
    launch_overhead = 20.0e-6;
    device_memory = 6_000_000_000;
    fast_memory = 6_000_000_000;
  }

(** An edge-class low-bandwidth device: the memory system, not the
    compute units, is the bottleneck for everything. *)
let edge_lb =
  {
    name = "edge-lb";
    peak_flops = 0.5e12;
    mem_bandwidth = 12.8e9;
    swap_bandwidth = 0.8e9;
    launch_overhead = 40.0e-6;
    device_memory = 4_000_000_000;
    fast_memory = 4_000_000_000;
  }

(** A multi-tier memory system: a small fast tier (HBM-like) in front of
    a large slow tier, à la the memory-aware-scheduling literature for
    irregular wired networks.  [fast_memory] is the capacity knob
    ({!with_fast_memory} turns it). *)
let tiered =
  {
    name = "tiered";
    peak_flops = 25.0e12;
    mem_bandwidth = 1.2e12;
    swap_bandwidth = 24.0e9;
    launch_overhead = 6.0e-6;
    device_memory = 64_000_000_000;
    fast_memory = 8_000_000_000;
  }

let default = rtx3090

let profiles = [ rtx3090; a100; mobile; edge_lb; tiered ]

let names = List.map (fun t -> t.name) profiles

let find name =
  match
    List.find_opt
      (fun t -> String.lowercase_ascii t.name = String.lowercase_ascii name)
      profiles
  with
  | Some t -> t
  | None ->
      invalid_arg
        (Printf.sprintf
           "Hardware.find: unknown profile %s (expected one of %s)" name
           (String.concat ", " names))

let with_fast_memory t ~bytes =
  {
    t with
    fast_memory = bytes;
    name = Printf.sprintf "%s/fast%dM" t.name (bytes / 1_000_000);
  }

(** Stable 64-bit digest of the full device model.  Two hardware values
    with the same fingerprint produce identical simulator results, so
    the fingerprint can key cached simulations ({!Magis_cost.Sim_cache})
    and cached frontiers ({!Magis_frontier.Frontier_cache}).  Every
    field participates: a silently-uncovered field would poison both
    caches (asserted by the test suite). *)
let fingerprint (t : t) : int64 =
  let open Magis_ir.Util in
  let h = hash_string t.name in
  let h = hash_combine h (Int64.bits_of_float t.peak_flops) in
  let h = hash_combine h (Int64.bits_of_float t.mem_bandwidth) in
  let h = hash_combine h (Int64.bits_of_float t.swap_bandwidth) in
  let h = hash_combine h (Int64.bits_of_float t.launch_overhead) in
  let h = hash_combine h (Int64.of_int t.device_memory) in
  hash_combine h (Int64.of_int t.fast_memory)

let pp ppf t =
  Fmt.pf ppf "%s(%.1f TFLOPs, %.0f GB/s mem, %.0f GB/s swap, %d GB%s)" t.name
    (t.peak_flops /. 1e12)
    (t.mem_bandwidth /. 1e9)
    (t.swap_bandwidth /. 1e9)
    (t.device_memory / 1_000_000_000)
    (if t.fast_memory < t.device_memory then
       Printf.sprintf ", %d GB fast tier" (t.fast_memory / 1_000_000_000)
     else "")
