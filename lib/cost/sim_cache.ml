(** Simulation cache (see the interface for the keying discipline).

    Storage is delta-encoded: most cached evaluations are children of an
    already-cached parent state, and the incremental reschedule changes
    only a window of the parent schedule.  Instead of a full [int list]
    per entry, a child stores (shared parent schedule, common prefix
    length, rewritten middle, common suffix length).  Parent schedules
    are interned in a pool keyed by {!Magis_ir.Util.hash_int_list}, so
    all children of one parent alias a single physical list; the
    [Delta] constructor holds the interned list itself (not the pool
    key), so decoding never consults the pool and a pool hash collision
    can only cost sharing, never correctness.  Encoding is validated by
    reconstruct-and-compare at [add] time — any mismatch (or a delta
    bigger than the schedule itself) silently falls back to [Full].
    Chains stay depth 1: a delta's parent is always a materialized
    list. *)

open Magis_ir
module Metrics = Magis_obs.Metrics

let m_hits = Metrics.counter "sim_cache.hits"
let m_misses = Metrics.counter "sim_cache.misses"
let m_deltas = Metrics.counter "sim_cache.delta_entries"

type value = {
  schedule : int list;
  peak_mem : int;
  latency : float;
  hotspots : int list;
}

type code =
  | Full of int list
  | Delta of { parent : int list; prefix : int; middle : int list; suffix : int }

type entry = {
  e_code : code;
  e_peak_mem : int;
  e_latency : float;
  e_hotspots : int list;
}

type t = {
  tbl : entry Magis_par.Striped.t;
  pool : int list Magis_par.Striped.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  fulls : int Atomic.t;
  deltas : int Atomic.t;
  resident : int Atomic.t;  (** ints held by codes + hotspots + pool *)
}

let create ?stripes () =
  {
    tbl = Magis_par.Striped.create ?stripes ();
    pool = Magis_par.Striped.create ?stripes ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    fulls = Atomic.make 0;
    deltas = Atomic.make 0;
    resident = Atomic.make 0;
  }

let key ~state ~parent_sched ~mutated ~sched_states ~mode ~hw =
  let h = Util.hash_combine state parent_sched in
  let h = Util.hash_combine h mutated in
  let h = Util.hash_combine h (Int64.of_int sched_states) in
  let h = Util.hash_combine h mode in
  Util.hash_combine h hw

(* ------------------------------------------------------------------ *)
(* Delta codec                                                         *)
(* ------------------------------------------------------------------ *)

let decode = function
  | Full s -> s
  | Delta { parent; prefix; middle; suffix } ->
      Util.take prefix parent
      @ middle
      @ Util.drop (List.length parent - suffix) parent

(** Intern [sched] in the pool, returning the physical list every other
    child of the same parent shares.  A (vanishingly unlikely) 64-bit
    hash collision just returns the caller's own list unshared. *)
let intern t sched =
  let h = Util.hash_int_list sched in
  match Magis_par.Striped.find t.pool h with
  | Some s when s = sched -> s
  | Some _ -> sched
  | None ->
      Magis_par.Striped.add t.pool h sched;
      ignore (Atomic.fetch_and_add t.resident (List.length sched));
      sched

let common_prefix_len pa ca =
  let n = min (Array.length pa) (Array.length ca) in
  let i = ref 0 in
  while !i < n && pa.(!i) = ca.(!i) do incr i done;
  !i

let common_suffix_len ~limit pa ca =
  let np = Array.length pa and nc = Array.length ca in
  let n = min limit (min np nc) in
  let i = ref 0 in
  while !i < n && pa.(np - 1 - !i) = ca.(nc - 1 - !i) do incr i done;
  !i

(* The codec alone, without the intern pool: the [Delta] parent is
   whatever physical list the caller passes, so callers that keep one
   shared parent (the frontier's harvested-schedule store) get the same
   aliasing the pool provides here. *)
module Codec = struct
  type nonrec code = code

  let full sched = Full sched

  let encode ~parent sched =
    let pa = Array.of_list parent and ca = Array.of_list sched in
    let prefix = common_prefix_len pa ca in
    let suffix =
      common_suffix_len ~limit:(min (Array.length pa) (Array.length ca) - prefix)
        pa ca
    in
    let middle =
      Array.to_list (Array.sub ca prefix (Array.length ca - prefix - suffix))
    in
    if List.length middle >= List.length sched then Full sched
    else
      let d = Delta { parent; prefix; middle; suffix } in
      if decode d = sched then d else Full sched

  let decode = decode
  let is_delta = function Delta _ -> true | Full _ -> false

  let stored_ints = function
    | Full s -> List.length s
    | Delta { middle; _ } -> List.length middle + 2
end

let encode t ?parent sched =
  match parent with
  | None -> Full sched
  | Some p -> Codec.encode ~parent:(intern t p) sched

(* ------------------------------------------------------------------ *)
(* Table operations                                                    *)
(* ------------------------------------------------------------------ *)

let find t k =
  Magis_resilience.Fault.hit "sim_cache";
  match Magis_par.Striped.find t.tbl k with
  | Some e ->
      Atomic.incr t.hits;
      Metrics.incr m_hits;
      Some
        {
          schedule = decode e.e_code;
          peak_mem = e.e_peak_mem;
          latency = e.e_latency;
          hotspots = e.e_hotspots;
        }
  | None ->
      Atomic.incr t.misses;
      Metrics.incr m_misses;
      None

let add ?parent t k v =
  let code = encode t ?parent v.schedule in
  let stored =
    match code with
    | Full s ->
        Atomic.incr t.fulls;
        List.length s
    | Delta { middle; _ } ->
        Atomic.incr t.deltas;
        Metrics.incr m_deltas;
        List.length middle + 2
  in
  ignore (Atomic.fetch_and_add t.resident (stored + List.length v.hotspots));
  Magis_par.Striped.add t.tbl k
    {
      e_code = code;
      e_peak_mem = v.peak_mem;
      e_latency = v.latency;
      e_hotspots = v.hotspots;
    }

let stats t = (Atomic.get t.hits, Atomic.get t.misses)

let hit_rate t =
  let h, m = stats t in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
let delta_stats t = (Atomic.get t.fulls, Atomic.get t.deltas)
let resident_ints t = Atomic.get t.resident

let reset_stats t =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0

let length t = Magis_par.Striped.length t.tbl

let clear t =
  Magis_par.Striped.clear t.tbl;
  Magis_par.Striped.clear t.pool;
  Atomic.set t.fulls 0;
  Atomic.set t.deltas 0;
  Atomic.set t.resident 0
