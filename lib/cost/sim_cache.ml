(** Simulation cache (see the interface for the keying discipline). *)

open Magis_ir
module Metrics = Magis_obs.Metrics

let m_hits = Metrics.counter "sim_cache.hits"
let m_misses = Metrics.counter "sim_cache.misses"

type value = {
  schedule : int list;
  peak_mem : int;
  latency : float;
  hotspots : int list;
}

type t = {
  tbl : value Magis_par.Striped.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create ?stripes () =
  {
    tbl = Magis_par.Striped.create ?stripes ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let key ~state ~parent_sched ~mutated ~sched_states ~mode ~hw =
  let h = Util.hash_combine state parent_sched in
  let h = Util.hash_combine h mutated in
  let h = Util.hash_combine h (Int64.of_int sched_states) in
  let h = Util.hash_combine h mode in
  Util.hash_combine h hw

let find t k =
  Magis_resilience.Fault.hit "sim_cache";
  match Magis_par.Striped.find t.tbl k with
  | Some _ as r ->
      Atomic.incr t.hits;
      Metrics.incr m_hits;
      r
  | None ->
      Atomic.incr t.misses;
      Metrics.incr m_misses;
      None

let add t k v = Magis_par.Striped.add t.tbl k v
let stats t = (Atomic.get t.hits, Atomic.get t.misses)

let reset_stats t =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0

let length t = Magis_par.Striped.length t.tbl
let clear t = Magis_par.Striped.clear t.tbl
