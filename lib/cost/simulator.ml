(** Schedule simulator.

    Executes a schedule on a two-stream device model: ordinary operators
    run sequentially on the *compute* stream; Store/Load run on the *copy*
    stream and overlap with compute, synchronizing only through data
    dependencies.  This reproduces the paper's asynchronous-swapping
    implementation ("place the Store as early as possible and the Load as
    late as the data transfer latency can be just hidden", §6.2): a Load
    scheduled well before its consumer hides its transfer entirely; a Load
    scheduled too late stalls the compute stream by the remaining transfer
    time.

    Latency and peak memory can be reshaped by the fission layer through
    the optional [cost_of] and [size_of] hooks.

    [run_events] additionally returns the per-node placement (stream,
    start, finish) the simulation computed, for timeline export; [run]
    keeps the allocation-free hot path used by the search loop. *)

open Magis_ir
module Trace = Magis_obs.Trace
module Metrics = Magis_obs.Metrics

let runs_total = Metrics.counter "simulator.runs"

type result = {
  latency : float;  (** seconds for one iteration of the schedule *)
  peak_mem : int;  (** peak device bytes *)
  compute_busy : float;  (** compute-stream busy time *)
  copy_busy : float;  (** copy-stream busy time *)
  analysis : Lifetime.t;
}

type event = {
  ev_node : int;
  ev_copy : bool;  (** true: copy stream (Store/Load); false: compute *)
  ev_start : float;
  ev_finish : float;
}

(** [sink], when given, receives one event per scheduled non-Input node
    (in schedule order, accumulated newest-first). *)
let simulate ?size_of ?cost_of ?sink (cache : Op_cost.t) (g : Graph.t)
    (order : int list) : result =
  Magis_resilience.Fault.hit "simulator";
  Metrics.incr runs_total;
  let cost_of =
    match cost_of with
    | Some f -> f
    | None -> fun id -> Op_cost.node_cost cache g id
  in
  let emit ev = match sink with None -> () | Some r -> r := ev :: !r in
  let finish = Hashtbl.create (Graph.n_nodes g) in
  let ready v =
    List.fold_left
      (fun acc p ->
        match Hashtbl.find_opt finish p with
        | Some t -> max acc t
        | None -> acc)
      0.0 (Graph.pre g v)
  in
  let t_compute = ref 0.0 and t_copy = ref 0.0 in
  let compute_busy = ref 0.0 and copy_busy = ref 0.0 in
  List.iter
    (fun v ->
      let n = Graph.node g v in
      match n.op with
      | Op.Store | Op.Load ->
          let bytes = Shape.size_bytes n.shape in
          let dur = Op_cost.swap_time cache bytes in
          let start = max !t_copy (ready v) in
          t_copy := start +. dur;
          copy_busy := !copy_busy +. dur;
          Hashtbl.replace finish v !t_copy;
          emit { ev_node = v; ev_copy = true; ev_start = start;
                 ev_finish = !t_copy }
      | Op.Input _ -> Hashtbl.replace finish v 0.0
      | _ ->
          let dur = cost_of v in
          (* the [cost_of] hook may come from fission accounting or any
             other caller-supplied model: guard it like Op_cost guards
             its own values, so a NaN duration surfaces as a structured
             exception instead of a poisoned latency *)
          Op_cost.check_finite
            ~what:(Printf.sprintf "node %d scheduled cost" v)
            dur;
          let start = max !t_compute (ready v) in
          t_compute := start +. dur;
          compute_busy := !compute_busy +. dur;
          Hashtbl.replace finish v !t_compute;
          emit { ev_node = v; ev_copy = false; ev_start = start;
                 ev_finish = !t_compute })
    order;
  let latency = max !t_compute !t_copy in
  Op_cost.check_finite ~what:"simulated latency" latency;
  let analysis = Lifetime.analyze ?size_of g order in
  {
    latency;
    peak_mem = Lifetime.peak_memory analysis;
    compute_busy = !compute_busy;
    copy_busy = !copy_busy;
    analysis;
  }

let run ?size_of ?cost_of cache g order =
  simulate ?size_of ?cost_of cache g order

let run_events ?size_of ?cost_of cache g order =
  Trace.with_span ~cat:"cost" "simulate" @@ fun () ->
  let sink = ref [] in
  let r = simulate ?size_of ?cost_of ~sink cache g order in
  (r, List.rev !sink)
