(** A fixed-size pool of OCaml 5 domains with a deterministic parallel
    map.

    The pool exists to fan the per-candidate (reschedule → simulate →
    hash) pipeline of the search loop across cores without changing its
    results: {!map} always returns results in input order, so callers
    that merge sequentially see the same sequence as a serial run.

    A pool of size [<= 1] spawns no domains at all and executes tasks
    inline on the calling domain, in input order — the exact legacy
    serial path. *)

type t

(** Raised by {!map} when a task failed: carries the index of the
    failing input and the task's exception.  The re-raise preserves the
    worker's backtrace. *)
exception Task_error of { index : int; exn : exn }

(** [create n] starts a pool of [n] worker domains ([n <= 1] → inline
    execution, no domains). *)
val create : int -> t

(** Number of workers (1 for an inline pool). *)
val size : t -> int

(** [map pool f xs] applies [f] to every element of [xs], possibly in
    parallel, and returns the results in input order.  If one or more
    applications raise, all tasks are still drained and the failure of
    the lowest-indexed failing element is re-raised as {!Task_error}
    with the worker's backtrace.  Must not be called after {!shutdown},
    nor from inside a task of the same pool. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** Like {!map}, but failures are isolated per input instead of
    aborting the batch: element [i] of the result is [Error (e, bt)]
    when [f xs.(i)] raised [e] at backtrace [bt], and every other
    element is computed normally.  The supervised search builds its
    quarantine/retry logic on this. *)
val map_result :
  t ->
  ('a -> 'b) ->
  'a array ->
  ('b, exn * Printexc.raw_backtrace) result array

(** Cumulative seconds each worker has spent executing tasks, one cell
    per worker.  For an inline pool this is the single-cell task time of
    the calling domain. *)
val busy_time : t -> float array

(** Stop the workers and join their domains.  Idempotent.  Pending work
    is drained before the workers exit. *)
val shutdown : t -> unit
