(** Fixed-size domain pool (see the interface for the contract).

    One mutex guards the job queue, the shutdown flag and every
    completion counter; two conditions signal "work available" (workers
    wait on it) and "a batch finished" (the caller of [map] waits on
    it).  Workers never touch results concurrently: each task writes a
    distinct cell of the result array, and the happens-before edge from
    the counter update under the mutex makes those writes visible to the
    caller when the batch count reaches zero. *)

module Fault = Magis_resilience.Fault
module Trace = Magis_obs.Trace
module Metrics = Magis_obs.Metrics

(* Busy accounting uses {!Trace.now} (monotonized) rather than raw
   [Unix.gettimeofday]: a backwards clock step must not produce a
   negative task duration.  Each worker's cumulative busy time is
   mirrored into a gauge so an enabled metrics run can see per-worker
   load without calling {!busy_time}. *)
let tasks_total = Metrics.counter "pool.tasks"
let busy_gauge i = Metrics.gauge (Printf.sprintf "pool.busy_seconds.%d" i)

exception Task_error of { index : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Task_error { index; exn } ->
        Some
          (Printf.sprintf "Magis_par.Pool.Task_error(task %d: %s)" index
             (Printexc.to_string exn))
    | _ -> None)

type shared = {
  lock : Mutex.t;
  work : Condition.t;  (** queue non-empty, or shutting down *)
  batch_done : Condition.t;  (** some batch counter reached zero *)
  queue : (int -> unit) Queue.t;  (** jobs, applied to the worker index *)
  mutable stop : bool;
  busy : float array;  (** per-worker cumulative task seconds *)
  gauges : Metrics.gauge array;  (** mirrors [busy] when metrics are on *)
}

type t =
  | Inline of { busy : float array; gauge : Metrics.gauge }
  | Domains of {
      shared : shared;
      domains : unit Domain.t array;
      mutable joined : bool;
    }

let rec worker_loop (sh : shared) (widx : int) =
  Mutex.lock sh.lock;
  while Queue.is_empty sh.queue && not sh.stop do
    Condition.wait sh.work sh.lock
  done;
  if Queue.is_empty sh.queue then Mutex.unlock sh.lock (* stop, queue drained *)
  else begin
    let job = Queue.pop sh.queue in
    Mutex.unlock sh.lock;
    job widx;
    worker_loop sh widx
  end

let create n =
  if n <= 1 then Inline { busy = [| 0.0 |]; gauge = busy_gauge 0 }
  else
    let shared =
      {
        lock = Mutex.create ();
        work = Condition.create ();
        batch_done = Condition.create ();
        queue = Queue.create ();
        stop = false;
        busy = Array.make n 0.0;
        gauges = Array.init n busy_gauge;
      }
    in
    let domains =
      Array.init n (fun i -> Domain.spawn (fun () -> worker_loop shared i))
    in
    Domains { shared; domains; joined = false }

let size = function
  | Inline _ -> 1
  | Domains { domains; _ } -> Array.length domains

let busy_time = function
  | Inline { busy; _ } -> Array.copy busy
  | Domains { shared; _ } ->
      Mutex.lock shared.lock;
      let b = Array.copy shared.busy in
      Mutex.unlock shared.lock;
      b

(** Run one task body under the injector's worker site; failures carry
    their backtrace out of the worker so the caller can re-raise or
    report with the original trace intact. *)
let run_task f x =
  try
    Fault.hit "pool_worker";
    Ok (f x)
  with e -> Error (e, Printexc.get_raw_backtrace ())

let unwrap results =
  Array.map
    (function
      | Some r -> r
      | None -> assert false (* the batch counter reached zero *))
    results

let map_result t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else
    match t with
    | Inline { busy; gauge } ->
        Array.map
          (fun x ->
            let t0 = Trace.now () in
            let r = run_task f x in
            busy.(0) <- busy.(0) +. (Trace.now () -. t0);
            Metrics.incr tasks_total;
            Metrics.set gauge busy.(0);
            r)
          xs
    | Domains { shared = sh; joined; _ } ->
        if joined || sh.stop then
          invalid_arg "Magis_par.Pool.map: pool is shut down";
        let results = Array.make n None in
        let remaining = ref n in
        let job i widx =
          let t0 = Trace.now () in
          let r = run_task f xs.(i) in
          let dt = Trace.now () -. t0 in
          Mutex.lock sh.lock;
          sh.busy.(widx) <- sh.busy.(widx) +. dt;
          let total = sh.busy.(widx) in
          results.(i) <- Some r;
          decr remaining;
          if !remaining = 0 then Condition.broadcast sh.batch_done;
          Mutex.unlock sh.lock;
          Metrics.incr tasks_total;
          Metrics.set sh.gauges.(widx) total
        in
        Mutex.lock sh.lock;
        for i = 0 to n - 1 do
          Queue.add (job i) sh.queue
        done;
        Condition.broadcast sh.work;
        while !remaining > 0 do
          Condition.wait sh.batch_done sh.lock
        done;
        Mutex.unlock sh.lock;
        unwrap results

let map t f xs =
  let results = map_result t f xs in
  (* first failure by input index wins, wrapped in {!Task_error} with
     that index and re-raised with the worker's backtrace — after the
     whole batch has drained, so no task outlives the [map] call *)
  Array.iteri
    (fun index r ->
      match r with
      | Error (exn, bt) ->
          Printexc.raise_with_backtrace (Task_error { index; exn }) bt
      | Ok _ -> ())
    results;
  Array.map (function Ok v -> v | Error _ -> assert false) results

let shutdown = function
  | Inline _ -> ()
  | Domains d ->
      if not d.joined then begin
        d.joined <- true;
        Mutex.lock d.shared.lock;
        d.shared.stop <- true;
        Condition.broadcast d.shared.work;
        Mutex.unlock d.shared.lock;
        Array.iter Domain.join d.domains
      end
