(** A hash table with 64-bit keys sharded over independently locked
    stripes, so domains hitting different stripes never contend.  Used
    by the simulation cache ({!Magis_cost.Sim_cache}), which is read and
    written concurrently by the expansion workers. *)

type 'a t

(** [create ?stripes ()] makes an empty table.  [stripes] is rounded up
    to a power of two (default 64). *)
val create : ?stripes:int -> unit -> 'a t

(** [find t k] is the binding of [k], if any. *)
val find : 'a t -> int64 -> 'a option

(** [add t k v] binds [k] to [v], replacing any previous binding. *)
val add : 'a t -> int64 -> 'a -> unit

(** Total number of bindings (takes every stripe lock in order). *)
val length : 'a t -> int

(** Remove every binding. *)
val clear : 'a t -> unit
