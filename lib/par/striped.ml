(** Striped-lock hash table over [int64] keys. *)

type 'a t = {
  mask : int;
  locks : Mutex.t array;
  tables : (int64, 'a) Hashtbl.t array;
}

let rec pow2_ge n acc = if acc >= n then acc else pow2_ge n (acc * 2)

let create ?(stripes = 64) () =
  let n = pow2_ge (max 1 stripes) 1 in
  {
    mask = n - 1;
    locks = Array.init n (fun _ -> Mutex.create ());
    tables = Array.init n (fun _ -> Hashtbl.create 64);
  }

let stripe t (k : int64) = Int64.to_int k land t.mask

let find t k =
  let i = stripe t k in
  Mutex.lock t.locks.(i);
  let r = Hashtbl.find_opt t.tables.(i) k in
  Mutex.unlock t.locks.(i);
  r

let add t k v =
  let i = stripe t k in
  Mutex.lock t.locks.(i);
  Hashtbl.replace t.tables.(i) k v;
  Mutex.unlock t.locks.(i)

let length t =
  let n = ref 0 in
  Array.iteri
    (fun i l ->
      Mutex.lock l;
      n := !n + Hashtbl.length t.tables.(i);
      Mutex.unlock l)
    t.locks;
  !n

let clear t =
  Array.iteri
    (fun i l ->
      Mutex.lock l;
      Hashtbl.reset t.tables.(i);
      Mutex.unlock l)
    t.locks
