(** Micro-batching pre-processing (the Fig. 12 experiment): split the whole
    network along the batch dimension into [factor] sub-graphs, feed one
    sub-graph to POFO, and multiply the execution latency by the factor —
    exactly how the paper integrates a "simple F-Trans" into a baseline. *)

open Magis_ir
open Magis_cost

(** [run cache ~build ~batch ~factor ~budget] builds the model at batch
    size [batch/factor], lets POFO optimize it under [budget], and scales
    latency by [factor].  Weight gradients are accumulated across
    micro-batches, so the budget applies to a single micro-batch. *)
let run (cache : Op_cost.t) ~(build : int -> Graph.t) ~(batch : int)
    ~(factor : int) ~(budget : int) : Outcome.t =
  if batch mod factor <> 0 then
    invalid_arg "Microbatch.run: factor must divide the batch size";
  let sub = build (batch / factor) in
  (* the micro-batch sub-graph is freshly built: verify it (and its
     execution order) before handing it to POFO when hooks are on *)
  ignore
    (Magis_analysis.Hooks.schedule ~what:"micro-batch sub-graph" sub
       (Graph.program_order sub));
  let o = Pofo.run cache sub ~budget in
  let name = Printf.sprintf "POFO(factor=%d)" factor in
  if not o.feasible then Outcome.infeasible name
  else
    {
      o with
      system = name;
      latency = o.latency *. float_of_int factor;
    }

let min_memory (cache : Op_cost.t) ~build ~batch ~factor
    ~(lat_limit : float) : Outcome.t =
  let sub = build (batch / factor) in
  let base = Simulator.run cache sub (Graph.program_order sub) in
  Outcome.min_memory_under_latency
    ~run:(fun budget -> run cache ~build ~batch ~factor ~budget)
    ~lo:(Graph.weight_bytes sub) ~hi:base.peak_mem ~lat_limit
