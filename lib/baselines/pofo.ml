(** POFO-style baseline (Beaumont et al., NeurIPS'21): optimal combination
    of re-materialization and offloading over a *sequentialized* network.

    POFO views the model as a chain of stages and decides, per stage,
    what to do with the activations the backward pass will need:

    - [Keep]      — stay resident until their backward step;
    - [Recompute] — free them, re-run the stage's forward during backward;
    - [Offload]   — stream them to host memory and back, overlapping the
                    transfers with compute (extra latency only once the
                    link saturates).

    The implementation chainifies the forward graph at its narrow waists
    ({!Chain}) and solves the per-stage policy assignment by dynamic
    programming over (stage, kept-bytes) — the same structure as POFO's
    DP, against our cost model.  Networks whose skip connections prevent
    chainification (U-Net, U-Net++) get one giant stage and POFO has
    almost nothing to trade — the failure mode the paper reports. *)

open Magis_cost
open Magis_ir

type policy = Keep | Recompute | Offload

(** Outcome of running the training graph under a memory [budget]. *)
let run (cache : Op_cost.t) (g : Graph.t) ~(budget : int) : Outcome.t =
  let base =
    Simulator.run cache g
      (Magis_analysis.Hooks.schedule ~what:"POFO baseline" g
         (Graph.program_order g))
  in
  if base.peak_mem <= budget then
    { Outcome.system = "POFO"; peak_mem = base.peak_mem;
      latency = base.latency; feasible = true }
  else
    let chain = Chain.analyze cache g in
    let stages = Array.of_list chain.stages in
    let n = Array.length stages in
    let need_to_free = base.peak_mem - budget in
    let total_saved = Chain.total_saved chain in
    if total_saved < need_to_free then Outcome.infeasible "POFO"
    else begin
      (* DP over (stage, freed bucket, offloaded bucket), minimizing the
         added recompute latency; the offload stall is computed from the
         offloaded volume at the end (transfers overlap compute until the
         link saturates). *)
      let buckets = 48 in
      let unit = max 1 ((total_saved / buckets) + 1) in
      let to_b bytes = min buckets ((bytes + unit - 1) / unit) in
      let inf = infinity in
      let hw = cache.Op_cost.hw in
      let dp =
        Array.init (n + 1) (fun _ ->
            Array.make_matrix (buckets + 1) (buckets + 1) inf)
      in
      dp.(0).(0).(0) <- 0.0;
      (* a stage's activations can only be freed if re-materializing or
         reloading them later fits in the budget next to the pinned
         weights and accumulated gradients (the backward re-peak) *)
      let floor_resident = chain.resident_bytes + chain.output_bytes in
      for i = 0 to n - 1 do
        let st = stages.(i) in
        let fb = to_b st.saved_bytes in
        let can_free = floor_resident + st.saved_bytes <= budget in
        for k = 0 to buckets do
          for o = 0 to buckets do
            let lat = dp.(i).(k).(o) in
            if lat < inf then begin
              let relax k' o' v =
                let k' = min buckets k' and o' = min buckets o' in
                if v < dp.(i + 1).(k').(o') then dp.(i + 1).(k').(o') <- v
              in
              relax k o lat;  (* Keep *)
              if can_free then begin
                relax (k + fb) o (lat +. st.cost);  (* Recompute *)
                relax (k + fb) (o + fb) lat  (* Offload *)
              end
            end
          done
        done
      done;
      (* cheapest plan freeing enough bytes, pricing the offload stall *)
      let needed = to_b need_to_free in
      let best = ref None in
      for k = needed to buckets do
        for o = 0 to buckets do
          let lat = dp.(n).(k).(o) in
          if lat < inf then begin
            (* stores must hide under the forward pass, loads under the
               backward pass: the link saturates per direction *)
            let transfer =
              float_of_int (o * unit) /. hw.Hardware.swap_bandwidth
            in
            let stall =
              Float.max 0.0 (transfer -. chain.fwd_compute)
              +. Float.max 0.0 (transfer -. chain.bwd_compute)
            in
            let total = lat +. stall in
            match !best with
            | Some b when b <= total -> ()
            | _ -> best := Some total
          end
        done
      done;
      match !best with
      | None -> Outcome.infeasible "POFO"
      | Some added ->
          {
            Outcome.system = "POFO";
            peak_mem = budget;
            latency = base.latency +. added;
            feasible = true;
          }
    end

(** Latency-constrained variant (Fig. 9): the smallest budget whose plan
    stays within the latency limit. *)
let min_memory (cache : Op_cost.t) (g : Graph.t) ~(lat_limit : float) :
    Outcome.t =
  let base = Simulator.run cache g (Graph.program_order g) in
  Outcome.min_memory_under_latency
    ~run:(fun budget -> run cache g ~budget)
    ~lo:(Graph.weight_bytes g) ~hi:base.peak_mem ~lat_limit
