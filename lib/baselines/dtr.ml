(** DTR baseline (Kirisame et al., ICLR'21): Dynamic Tensor
    Rematerialization, simulated as the runtime it is.

    The training graph executes in program order against a device with a
    hard memory [budget].  When an allocation does not fit, the runtime
    evicts the resident (non-pinned) tensor with the smallest DTR
    heuristic value [h(t) = recompute_cost(t) / (size(t) · staleness(t))];
    an evicted tensor needed later is recomputed on demand, recursively
    recomputing its evicted operands.  Latency is the sum of all operator
    executions, including recomputations.  Runs whose recomputation count
    explodes are reported as failures — the behaviour the paper hits on
    U-Net++/GPT-Neo/BTLM at the 40% limit. *)

open Magis_ir
open Magis_cost
module Int_set = Util.Int_set

type tensor_state = { mutable resident : bool; mutable last_access : int }

let run ?(thrash_factor = 25) (cache : Op_cost.t) (g : Graph.t)
    ~(budget : int) : Outcome.t =
  let order =
    Array.of_list
      (Magis_analysis.Hooks.schedule ~what:"DTR baseline" g
         (Graph.program_order g))
  in
  let n = Array.length order in
  let states = Hashtbl.create n in
  let state v =
    match Hashtbl.find_opt states v with
    | Some s -> s
    | None ->
        let s = { resident = false; last_access = 0 } in
        Hashtbl.replace states v s;
        s
  in
  let size v = Lifetime.default_size g v in
  let pinned v = Magis_sched.Partition.pinned g v in
  let used = ref 0 in
  let clock = ref 0 in
  let latency = ref 0.0 in
  let recomputes = ref 0 in
  let max_recomputes = thrash_factor * n in
  let exception Oom in
  let exception Thrash in
  (* remaining-use counts for basic free-when-dead *)
  let remaining = Hashtbl.create n in
  Array.iter
    (fun v -> Hashtbl.replace remaining v (Graph.out_degree g v))
    order;
  let free v =
    let s = state v in
    if s.resident then begin
      s.resident <- false;
      used := !used - size v
    end
  in
  let evict_one ~protect =
    (* smallest h = cost / (size * staleness) evicted first *)
    let best = ref None in
    Hashtbl.iter
      (fun v s ->
        if
          s.resident
          && (not (Int_set.mem v protect))
          && (not (pinned v))
          && size v > 0
        then begin
          let cost = Op_cost.node_cost cache g v +. 1e-9 in
          let staleness = float_of_int (!clock - s.last_access + 1) in
          let h = cost /. (float_of_int (size v) *. staleness) in
          match !best with
          | Some (hb, _) when hb <= h -> ()
          | _ -> best := Some (h, v)
        end)
      states;
    match !best with
    | Some (_, v) ->
        free v;
        true
    | None -> false
  in
  let allocate v ~protect =
    let sz = size v in
    let guard = ref 0 in
    while !used + sz > budget do
      incr guard;
      if !guard > Hashtbl.length states + 1 || not (evict_one ~protect) then
        raise Oom
    done;
    let s = state v in
    if not s.resident then begin
      s.resident <- true;
      used := !used + sz
    end
  in
  (* execute v, recursively materializing evicted operands *)
  let rec materialize v ~protect =
    let s = state v in
    s.last_access <- !clock;
    if not s.resident then begin
      incr recomputes;
      if !recomputes > max_recomputes then raise Thrash;
      let protect = Int_set.add v protect in
      List.iter (fun u -> materialize u ~protect) (Graph.pre g v);
      latency := !latency +. Op_cost.node_cost cache g v;
      allocate v ~protect:(List.fold_left (fun a u -> Int_set.add u a) protect (Graph.pre g v))
    end
  in
  try
    Array.iter
      (fun v ->
        incr clock;
        let preds = Graph.pre g v in
        let protect = Int_set.of_list (v :: preds) in
        List.iter (fun u -> materialize u ~protect) preds;
        latency := !latency +. Op_cost.node_cost cache g v;
        allocate v ~protect;
        (state v).last_access <- !clock;
        (* basic free-when-dead *)
        List.iter
          (fun u ->
            let r = Hashtbl.find remaining u - 1 in
            Hashtbl.replace remaining u r;
            if r = 0 && not (pinned u) then free u)
          preds)
      order;
    {
      Outcome.system = "DTR";
      peak_mem = min budget (Simulator.run cache g (Array.to_list order)).peak_mem;
      latency = !latency;
      feasible = true;
    }
  with Oom | Thrash -> Outcome.infeasible "DTR"

let min_memory (cache : Op_cost.t) (g : Graph.t) ~(lat_limit : float) :
    Outcome.t =
  let base = Simulator.run cache g (Graph.program_order g) in
  Outcome.min_memory_under_latency
    ~run:(fun budget -> run cache g ~budget)
    ~lo:(Graph.weight_bytes g) ~hi:base.peak_mem ~lat_limit
