(** XLA-style baseline (§7.1): a *greedy* rematerialization pass.

    XLA walks the saved activations and greedily discards/recomputes the
    largest ones until the budget is met, without weighing recompute cost
    — which is why its latency blows up under tight limits and why
    re-computing one tensor can transitively force recomputing others
    (modelled as a compounding factor on the recompute cost, cf. the
    near-exponential tail of its curve in Fig. 11). *)

open Magis_ir
open Magis_cost

let run (cache : Op_cost.t) (g : Graph.t) ~(budget : int) : Outcome.t =
  let base =
    Simulator.run cache g
      (Magis_analysis.Hooks.schedule ~what:"XLA baseline" g
         (Graph.program_order g))
  in
  if base.peak_mem <= budget then
    { Outcome.system = "XLA"; peak_mem = base.peak_mem;
      latency = base.latency; feasible = true }
  else
    let chain = Chain.analyze cache g in
    (* greedy: largest saved activations evicted first, one tensor at a
       time, ignoring recompute cost *)
    let tensors =
      List.sort
        (fun (a, _, _) (b, _, _) -> compare b a)
        (Chain.saved_tensors cache g chain)
    in
    let total = Util.sum_by (fun (b, _, _) -> b) tensors in
    let need = base.peak_mem - budget in
    let floor_resident = chain.resident_bytes + chain.output_bytes in
    let rec go freed added evicted total_left = function
      | [] -> None
      | (bytes, cost, stage_saved) :: rest ->
          (* evicting a tensor transiently re-materializes its stage at
             backward time: the whole segment must fit under the budget *)
          if bytes = 0 || floor_resident + stage_saved > budget then
            go freed added evicted total_left rest
          else
            (* the more of the graph is already evicted, the likelier a
               recompute transitively re-runs evicted producers *)
            let evicted_fraction =
              float_of_int evicted /. float_of_int (max 1 total)
            in
            let factor = 1.0 +. (3.0 *. evicted_fraction) in
            let freed = freed + bytes in
            let added = added +. (cost *. factor) in
            if freed >= need then Some added
            else go freed added (evicted + bytes) total_left rest
    in
    match go 0 0.0 0 total tensors with
    | None -> Outcome.infeasible "XLA"
    | Some added ->
        {
          Outcome.system = "XLA";
          peak_mem = budget;
          latency = base.latency +. added;
          feasible = true;
        }

let min_memory (cache : Op_cost.t) (g : Graph.t) ~(lat_limit : float) :
    Outcome.t =
  let base = Simulator.run cache g (Graph.program_order g) in
  Outcome.min_memory_under_latency
    ~run:(fun budget -> run cache g ~budget)
    ~lo:(Graph.weight_bytes g) ~hi:base.peak_mem ~lat_limit
