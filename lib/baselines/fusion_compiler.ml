(** TVM / Torch-Inductor stand-ins (§7.1).

    Both compilers perform only *basic memory saving* (free-when-dead, same
    as the PyTorch baseline) but improve latency by fusing chains of
    memory-bound operators: a fused intermediate is never written to device
    memory, saving its bytes and its kernel launch.  We implement the
    fusion analysis for real: maximal single-consumer chains of
    element-wise/view operators collapse into one kernel.  Torch-Inductor
    (Triton) additionally fuses through softmax/layer-norm style reductions,
    fusing a wider class — hence slightly better latency than TVM, as in
    Fig. 11.

    Fused intermediates still *do not* reduce the reported peak memory:
    these compilers plan memory conservatively at graph granularity (the
    paper measures their memory ratio at ≈ 1.0). *)

open Magis_ir
open Magis_cost
module Int_set = Util.Int_set

type aggressiveness = Tvm | Torch_inductor

let fusable aggressiveness (k : Op.kind) =
  match k with
  | Op.Unary _ | Op.Binary _ | Op.Bias_add _ | Op.Transpose _ | Op.Reshape _
  | Op.Slice _ | Op.Broadcast _ ->
      true
  | Op.Softmax _ | Op.Softmax_bwd _ | Op.Layer_norm _ | Op.Layer_norm_bwd _
  | Op.Batch_norm | Op.Reduce _ ->
      aggressiveness = Torch_inductor
  | _ -> false

(** Nodes whose output stays in registers: fusable, single consumer, and
    the consumer is fusable too (it continues the kernel). *)
let fused_intermediates aggressiveness (g : Graph.t) : Int_set.t =
  Graph.fold
    (fun n acc ->
      if fusable aggressiveness n.op then
        match Graph.suc g n.id with
        | [ c ] when fusable aggressiveness (Graph.op g c) ->
            Int_set.add n.id acc
        | _ -> acc
      else acc)
    g Int_set.empty

let run aggressiveness (cache : Op_cost.t) (g : Graph.t) : Outcome.t =
  let fused = fused_intermediates aggressiveness g in
  let hw = cache.Op_cost.hw in
  let cost_of v =
    let n = Graph.node g v in
    let base = Op_cost.node_cost cache g v in
    if base = 0.0 then base
    else
      (* producer fused into its consumer: no launch, no output write *)
      let output_write =
        float_of_int (Shape.size_bytes n.shape) /. hw.Hardware.mem_bandwidth
      in
      let fused_out = Int_set.mem v fused in
      (* inputs that are fused intermediates are read from registers *)
      let fused_in =
        Array.fold_left
          (fun acc u ->
            if Int_set.mem u fused then
              acc
              +. float_of_int (Shape.size_bytes (Graph.shape g u))
                 /. hw.Hardware.mem_bandwidth
            else acc)
          0.0 n.inputs
      in
      let c = base -. fused_in in
      let c = if fused_out then c -. output_write -. hw.Hardware.launch_overhead else c in
      Float.max (hw.Hardware.launch_overhead /. 4.0) c
  in
  let res =
    Simulator.run ~cost_of cache g
      (Magis_analysis.Hooks.schedule ~what:"fusion-compiler baseline" g
         (Graph.program_order g))
  in
  {
    Outcome.system =
      (match aggressiveness with Tvm -> "TVM" | Torch_inductor -> "TI");
    peak_mem = res.peak_mem;
    latency = res.latency;
    feasible = true;
  }

(** Fig. 9/10 use these compilers under memory constraints they cannot
    meet (they only do basic memory saving): [constrained] reports failure
    when the budget is below their natural peak. *)
let constrained aggressiveness cache g ~(mem_limit : int) : Outcome.t =
  let o = run aggressiveness cache g in
  if o.peak_mem <= mem_limit then o else { o with feasible = false }
