(** The unoptimized PyTorch baseline of §7.1: the graph is executed in
    simple topological order with basic memory saving (tensors are freed
    as soon as their last consumer has run — exactly what the lifetime
    analysis models). *)

open Magis_ir
open Magis_cost

let run (cache : Op_cost.t) (g : Graph.t) : Outcome.t =
  let order =
    Magis_analysis.Hooks.schedule ~what:"PyTorch baseline" g
      (Graph.program_order g)
  in
  let res = Simulator.run cache g order in
  {
    Outcome.system = "PyTorch";
    peak_mem = res.peak_mem;
    latency = res.latency;
    feasible = true;
  }
