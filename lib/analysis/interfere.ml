(** Allocator interference checker (see the interface). *)

open Magis_ir
open Magis_cost

let pass = "interfere"

type report = {
  arena : Allocator.t;
  n_buffers : int;
  diags : Diagnostic.t list;
}

let err ?node check fmt =
  Fmt.kstr (fun m -> Diagnostic.error ?node ~pass ~check m) fmt

let warn ?node check fmt =
  Fmt.kstr (fun m -> Diagnostic.warning ?node ~pass ~check m) fmt

(** Every placement must restate the lifetime analysis: same birth/free
    steps, same byte size.  A disagreement means the plan was laid out
    against stale liveness, which voids the non-overlap argument. *)
let check_against_lifetime (lt : Lifetime.t) (alloc : Allocator.t) :
    Diagnostic.t list =
  List.concat_map
    (fun (p : Allocator.placement) ->
      match Lifetime.position lt p.node with
      | None ->
          [ err ~node:p.node "interval-mismatch"
              "placed buffer's node is not in the schedule" ]
      | Some i ->
          let birth, free = Lifetime.interval lt i in
          (if p.birth = birth && p.free = free then []
           else
             [
               err ~node:p.node "interval-mismatch"
                 "placement live over steps [%d, %d] but liveness says [%d, \
                  %d]"
                 p.birth p.free birth free;
             ])
          @
          if p.bytes = lt.sizes.(i) then []
          else
            [
              err ~node:p.node "size-mismatch"
                "placed %d bytes but the lifetime analysis sizes it at %d"
                p.bytes lt.sizes.(i);
            ])
    alloc.placements

(** Every device tensor of the schedule must have a placement. *)
let check_coverage (lt : Lifetime.t) (alloc : Allocator.t) : Diagnostic.t list
    =
  Array.to_list lt.order
  |> List.mapi (fun i v -> (i, v))
  |> List.filter_map (fun (i, v) ->
         if lt.sizes.(i) > 0 && Allocator.placement_of alloc v = None then
           Some
             (err ~node:v "missing-placement"
                "device tensor (%d bytes) has no arena placement"
                lt.sizes.(i))
         else None)

(** The core obligation: no two buffers with overlapping live intervals
    may share addresses, and nothing may spill past the reported arena
    high-water mark. *)
let check_layout (alloc : Allocator.t) : Diagnostic.t list =
  List.map
    (fun ((p : Allocator.placement), (q : Allocator.placement)) ->
      err ~node:p.node "alloc-overlap"
        "buffers of nodes %d ([%d, %d) bytes, steps [%d, %d]) and %d ([%d, \
         %d) bytes, steps [%d, %d]) overlap while both live"
        p.node p.offset (p.offset + p.bytes) p.birth p.free q.node q.offset
        (q.offset + q.bytes) q.birth q.free)
    (Allocator.overlaps alloc)
  @ List.filter_map
      (fun (p : Allocator.placement) ->
        if p.offset < 0 || p.offset + p.bytes > alloc.arena_size then
          Some
            (err ~node:p.node "arena-overflow"
               "buffer [%d, %d) spills outside the arena of %d bytes"
               p.offset (p.offset + p.bytes) alloc.arena_size)
        else None)
      alloc.placements

(** View outputs ({!Op.is_view}) are materialized copies in this cost
    model, but a runtime eliding them aliases the base's storage.  If
    the base buffer is reclaimed (or separately missing) while the view
    is still live, that eliding runtime would read reused memory — a
    latent hazard worth a warning, not an error. *)
let check_view_aliases (g : Graph.t) (alloc : Allocator.t) : Diagnostic.t list
    =
  Graph.fold
    (fun (n : Graph.node) acc ->
      match (Op.is_view n.op, Array.to_list n.inputs) with
      | true, base :: _ -> (
          match
            ( Allocator.placement_of alloc n.id,
              Allocator.placement_of alloc base )
          with
          | Some pv, Some pb when pb.free < pv.free ->
              warn ~node:n.id "view-alias"
                "view of node %d outlives its base (steps %d > %d): a \
                 runtime eliding the copy would alias reclaimed memory"
                base pv.free pb.free
              :: acc
          | _ -> acc)
      | _ -> acc)
    g []
  |> List.rev

let check_plan (g : Graph.t) (lt : Lifetime.t) (alloc : Allocator.t) :
    Diagnostic.t list =
  check_against_lifetime lt alloc
  @ check_coverage lt alloc @ check_layout alloc
  @ check_view_aliases g alloc

let check ?strategy ?size_of (g : Graph.t) (schedule : int list) : report =
  let lt = Lifetime.analyze ?size_of g schedule in
  let alloc = Allocator.plan ?strategy lt in
  { arena = alloc;
    n_buffers = List.length alloc.placements;
    diags = check_plan g lt alloc }

let is_clean r = Diagnostic.errors r.diags = []

let pp_report ppf (r : report) =
  Fmt.pf ppf "@[<v>%d buffer(s), arena %d bytes (peak live %d, frag %.3f)"
    r.n_buffers r.arena.Allocator.arena_size r.arena.Allocator.peak_live
    (Allocator.fragmentation r.arena);
  if r.diags <> [] then Fmt.pf ppf "@,%a" Diagnostic.pp_report r.diags
  else Fmt.pf ppf "@,no interference";
  Fmt.pf ppf "@]"
