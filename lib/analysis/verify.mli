(** LLVM-style well-formedness verifier for {!Magis_ir.Graph.t}.

    [graph g] re-derives every structural invariant the IR relies on and
    returns the violations as diagnostics instead of raising:

    - ["dangling-input"]: an operand slot references an id that is not in
      the graph (reachable through {!Graph.replace_input} with a bogus
      target);
    - ["input-with-operands"]: an [Input]-kind node has operand slots;
    - ["succ-missing"] / ["succ-stale"]: the [inputs] arrays and the
      successor sets disagree (adjacency must be a consistent pair of
      views of the same edge set);
    - ["cycle"]: the graph is not a DAG;
    - ["shape-infer"] / ["shape-mismatch"]: re-running {!Magis_ir.Op.infer}
      on the stored operand shapes fails, or yields a shape different
      from the stored one (stale shapes after an unchecked rewire).

    The verifier never raises on malformed graphs — that is its point. *)

open Magis_ir

(** All diagnostics for [g], deterministic order (by node id, then
    check). *)
val graph : Graph.t -> Diagnostic.t list

(** [assert_ok ?what g] raises [Failure] with a rendered report when
    {!graph} finds errors. *)
val assert_ok : ?what:string -> Graph.t -> unit
