(** Global verification switch for debug builds and tests.

    Production call sites thread schedules through {!schedule}, which is
    the identity when verification is off (the default) and a full
    {!Verify} + {!Sched_check} pass that raises on errors when it is on.
    Enable with {!set}, or by setting the [MAGIS_VERIFY] environment
    variable before start-up.  The test suite turns it on globally, so
    every baseline and optimizer schedule exercised by the tests is
    checked; benchmarks leave it off. *)

open Magis_ir

val enabled : unit -> bool
val set : bool -> unit

(** [schedule ~what g order] returns [order]; when verification is on it
    first runs both passes and raises [Failure] (tagged [what]) on any
    error. *)
val schedule : ?what:string -> Graph.t -> int list -> int list

(** Unconditional combined check (used by [Search.config.verify_states]):
    raises [Failure] on IR or schedule errors regardless of {!enabled}. *)
val assert_state : what:string -> Graph.t -> int list -> unit

(** [assert_bounds ~what ?size_of g ~peak ()] recomputes the
    schedule-independent memory bounds and raises [Failure] unless
    [lower <= peak <= ub_total].  With [~exact:true] (the default) the
    full {!Membound.compute} record is checked, including the internal
    [lower <= ub_greedy] and [lb_dom <= lb_cut] cross-checks; with
    [~exact:false] only the cheap probe invariant
    ({!Membound.quick_check}) runs — the form
    [Search.config.verify_states] uses on every accepted M-state, where
    the full record would dominate the search loop. *)
val assert_bounds :
  ?exact:bool ->
  what:string -> ?size_of:(int -> int) -> Graph.t -> peak:int -> unit -> unit

(** [assert_interference ~what ?size_of g order] replays the static
    memory plan for [g] under [order] and raises [Failure] on any
    {!Interfere} error (overlapping live buffers, stale intervals, arena
    overflow).  The other [Search.config.verify_states] obligation:
    bounds say how much memory, interference says the plan realizing it
    is consistent. *)
val assert_interference :
  ?strategy:Magis_cost.Allocator.strategy ->
  what:string -> ?size_of:(int -> int) -> Graph.t -> int list -> unit
