(** Global verification switch for debug builds and tests.

    Production call sites thread schedules through {!schedule}, which is
    the identity when verification is off (the default) and a full
    {!Verify} + {!Sched_check} pass that raises on errors when it is on.
    Enable with {!set}, or by setting the [MAGIS_VERIFY] environment
    variable before start-up.  The test suite turns it on globally, so
    every baseline and optimizer schedule exercised by the tests is
    checked; benchmarks leave it off. *)

open Magis_ir

val enabled : unit -> bool
val set : bool -> unit

(** [schedule ~what g order] returns [order]; when verification is on it
    first runs both passes and raises [Failure] (tagged [what]) on any
    error. *)
val schedule : ?what:string -> Graph.t -> int list -> int list

(** Unconditional combined check (used by [Search.config.verify_states]):
    raises [Failure] on IR or schedule errors regardless of {!enabled}. *)
val assert_state : what:string -> Graph.t -> int list -> unit
