(** Peak-memory bounds (see the interface for the bound catalogue and
    the admissibility argument of each term). *)

open Magis_ir
open Magis_cost

let pass = "membound"

type t = {
  lb_workset : int;
  lb_cut : int;
  lb_dom : int;
  lb_pinned : int;
  lower : int;
  ub_greedy : int;
  ub_total : int;
  cut_node : int;
}

(* ------------------------------------------------------------------ *)
(* Lower-bound terms                                                   *)
(* ------------------------------------------------------------------ *)

(** Working set of one operator: pinned weights + distinct non-weight
    operands + its own output.  All of it is live while [v] runs. *)
let workset (lv : Liveness.t) g v =
  if Op.is_weight (Graph.op g v) then Liveness.weight_bytes lv
  else
    List.fold_left
      (fun acc p ->
        if Op.is_weight (Graph.op g p) then acc else acc + Liveness.size lv p)
      (Liveness.weight_bytes lv + Liveness.size lv v)
      (Graph.pre g v)

(** Nodes ordered by decreasing working set (ties by id, so sampling is
    deterministic); the max cut is overwhelmingly attained at one of the
    fattest worksets, so they are the sampling candidates. *)
let cut_candidates lv g =
  Liveness.fold (fun v acc -> (workset lv g v, v) :: acc) lv []
  |> List.sort (fun (wa, va) (wb, vb) -> compare (wb, va) (wa, vb))
  |> List.map snd

let max_cut ?sample (lv : Liveness.t) g : int * int =
  let candidates =
    match sample with
    | None -> cut_candidates lv g
    | Some k -> Util.take k (cut_candidates lv g)
  in
  List.fold_left
    (fun ((best, _) as acc) v ->
      let c = Liveness.always_live_bytes lv v in
      if c > best then (c, v) else acc)
    (0, -1) candidates

(** The dominator-tree relaxation of the cut: only ancestors that are
    dominators of [v], held only by consumers [v] dominates.  A strict
    subset of the exact cut's terms, hence [lb_dom <= lb_cut]; disagreement
    the other way indicts one of the two reachability structures. *)
let dom_cut (lv : Liveness.t) g : int =
  let t = Dominator.compute g in
  (* O(1) dominance via an Euler interval labelling of the tree *)
  let tin = Hashtbl.create 64 and tout = Hashtbl.create 64 in
  let clock = ref 0 in
  let rec dfs v =
    Hashtbl.replace tin v !clock;
    incr clock;
    Util.Int_set.iter dfs (Dominator.children t v);
    Hashtbl.replace tout v !clock
  in
  let in_tree = List.filter (fun v -> Dominator.idom t v <> None) (Graph.node_ids g) in
  List.iter
    (fun v ->
      if Dominator.idom t v = Some Dominator.virtual_root then dfs v)
    in_tree;
  let dominates u v =
    match (Hashtbl.find_opt tin u, Hashtbl.find_opt tin v) with
    | Some tu, Some tv -> tu <= tv && tv < Hashtbl.find tout u
    | _ -> false
  in
  let cut v =
    let base =
      Liveness.weight_bytes lv
      + (if Op.is_weight (Graph.op g v) then 0 else Liveness.size lv v)
    in
    let rec climb u acc =
      match Dominator.idom t u with
      | None -> acc
      | Some d when d = Dominator.virtual_root -> acc
      | Some d ->
          let held =
            (not (Op.is_weight (Graph.op g d)))
            && List.exists (fun c -> c = v || dominates v c) (Graph.suc g d)
          in
          climb d (if held then acc + Liveness.size lv d else acc)
    in
    climb v base
  in
  List.fold_left (fun acc v -> max acc (cut v)) 0 in_tree

(* ------------------------------------------------------------------ *)
(* Bound records                                                       *)
(* ------------------------------------------------------------------ *)

let of_liveness (lv : Liveness.t) : t =
  let g = Liveness.graph lv in
  let size_of v = Liveness.size lv v in
  let lb_workset = Liveness.fold (fun v acc -> max acc (workset lv g v)) lv 0 in
  let lb_cut, cut_node = max_cut lv g in
  let lb_dom = dom_cut lv g in
  let lb_pinned = Liveness.pinned_bytes lv in
  let ub_total = Liveness.fold (fun v acc -> acc + size_of v) lv 0 in
  let ub_greedy =
    if Liveness.length lv = 0 then 0
    else
      let order = Magis_sched.Reorder.schedule ~max_states:0 ~size_of g in
      Lifetime.peak_memory (Lifetime.analyze ~size_of g order)
  in
  {
    lb_workset;
    lb_cut;
    lb_dom;
    lb_pinned;
    lower = max (max lb_workset lb_cut) (max lb_dom lb_pinned);
    ub_greedy;
    ub_total;
    cut_node;
  }

let compute ?size_of (g : Graph.t) : t =
  of_liveness (Liveness.compute ?size_of g)

(* ------------------------------------------------------------------ *)
(* Hot-path probe                                                      *)
(* ------------------------------------------------------------------ *)

(** Dense scratch representation for the search-loop probe.  The probe
    runs on every simulation-cache miss, so it must stay well under the
    reschedule + simulate cost it tries to save: one pass over the node
    map into flat arrays, then array-only arithmetic — no [Liveness]
    bitsets, no per-query [Graph.pre]/[Graph.suc] list allocation. *)
type dense = {
  n : int;
  size : int array;
  d_is_weight : bool array;
  preds : int list array;  (** distinct operand indices *)
  succs : int list array;
  d_weight_bytes : int;
  d_pinned_bytes : int;
  total_bytes : int;
}

let densify ?size_of (g : Graph.t) : dense =
  let size_of =
    match size_of with Some f -> f | None -> Lifetime.default_size g
  in
  let n = Graph.n_nodes g in
  let index = Hashtbl.create n in
  let next = ref 0 in
  Graph.iter
    (fun nd ->
      Hashtbl.replace index nd.Graph.id !next;
      incr next)
    g;
  let size = Array.make n 0 in
  let d_is_weight = Array.make n false in
  let is_input = Array.make n false in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  Graph.iter
    (fun nd ->
      let i = Hashtbl.find index nd.Graph.id in
      size.(i) <- size_of nd.Graph.id;
      d_is_weight.(i) <- Op.is_weight nd.Graph.op;
      is_input.(i) <- Op.is_input nd.Graph.op;
      Array.iter
        (fun p ->
          let pi = Hashtbl.find index p in
          if not (List.mem pi preds.(i)) then begin
            preds.(i) <- pi :: preds.(i);
            succs.(pi) <- i :: succs.(pi)
          end)
        nd.Graph.inputs)
    g;
  let d_weight_bytes = ref 0 and d_pinned_bytes = ref 0 and total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + size.(i);
    if d_is_weight.(i) then d_weight_bytes := !d_weight_bytes + size.(i);
    if d_is_weight.(i) || (succs.(i) = [] && not is_input.(i)) then
      d_pinned_bytes := !d_pinned_bytes + size.(i)
  done;
  {
    n;
    size;
    d_is_weight;
    preds;
    succs;
    d_weight_bytes = !d_weight_bytes;
    d_pinned_bytes = !d_pinned_bytes;
    total_bytes = !total;
  }

let dense_workset (d : dense) i =
  if d.d_is_weight.(i) then d.d_weight_bytes
  else
    List.fold_left
      (fun acc p -> if d.d_is_weight.(p) then acc else acc + d.size.(p))
      (d.d_weight_bytes + d.size.(i))
      d.preds.(i)

(** The cut at candidate [v], from two stamped graph walks: descendants
    of [v] (forward over [succs]) and ancestors (backward over [preds]).
    Same value as {!Liveness.always_live_bytes}, without the bitsets. *)
let dense_cut (d : dense) ~des_stamp ~anc_stamp ~stamp v =
  let rec walk adj stamps acc = function
    | [] -> acc
    | u :: rest ->
        let acc, rest =
          List.fold_left
            (fun (acc, rest) w ->
              if stamps.(w) = stamp then (acc, rest)
              else begin
                stamps.(w) <- stamp;
                (w :: acc, w :: rest)
              end)
            (acc, rest) adj.(u)
        in
        walk adj stamps acc rest
  in
  des_stamp.(v) <- stamp;
  ignore (walk d.succs des_stamp [] [ v ]);
  let ancs = walk d.preds anc_stamp [] [ v ] in
  let base =
    d.d_weight_bytes + (if d.d_is_weight.(v) then 0 else d.size.(v))
  in
  List.fold_left
    (fun acc w ->
      if
        (not d.d_is_weight.(w))
        && List.exists (fun c -> des_stamp.(c) = stamp) d.succs.(w)
      then acc + d.size.(w)
      else acc)
    base ancs

let dense_lower ?sample (d : dense) : int =
  if d.n = 0 then 0
  else begin
    let worksets = Array.init d.n (fun i -> dense_workset d i) in
    let lb_workset = Array.fold_left max 0 worksets in
    (* candidates by decreasing working set, ties by dense index *)
    let by_workset = Array.init d.n (fun i -> i) in
    Array.sort
      (fun a b -> compare (worksets.(b), a) (worksets.(a), b))
      by_workset;
    let k = match sample with None -> d.n | Some k -> min k d.n in
    let des_stamp = Array.make d.n (-1) and anc_stamp = Array.make d.n (-1) in
    let lb_cut = ref 0 in
    for c = 0 to k - 1 do
      let cut =
        dense_cut d ~des_stamp ~anc_stamp ~stamp:c by_workset.(c)
      in
      if cut > !lb_cut then lb_cut := cut
    done;
    max (max lb_workset !lb_cut) d.d_pinned_bytes
  end

let lower_bound ?size_of ?sample (g : Graph.t) : int =
  dense_lower ?sample (densify ?size_of g)

(* ------------------------------------------------------------------ *)
(* Incremental probe                                                   *)
(* ------------------------------------------------------------------ *)

(** Incremental form of the probe, for the search hot path: per-node
    worksets and the sampled cut values are kept keyed by node id, and a
    {!probe_update} against a {!Liveness.delta_update} recomputes only
    the entries the rewrite could have changed.  Ties in the sample
    selection break by node id (not dense index, which a delta reshuffles),
    so [probe_update] is {e exactly} [probe_create] on the new liveness —
    the equality the property tests assert. *)
type probe = {
  pr_lv : Liveness.t;
  pr_sample : int;
  pr_worksets : (int, int) Hashtbl.t;  (** node id -> workset bytes *)
  pr_cuts : (int * int) list;  (** sampled candidates: (id, cut bytes) *)
  pr_lower : int;
  pr_reused : int;  (** cut evaluations inherited from the parent *)
  pr_recomputed : int;  (** cut evaluations actually run *)
}

(** Workset from the liveness tables alone (no [Graph.op] calls), so an
    update can run against a child liveness whose size function differs
    from the graph's default. *)
let lv_workset (lv : Liveness.t) g v =
  if Liveness.is_weight lv v then Liveness.weight_bytes lv
  else
    List.fold_left
      (fun acc p ->
        if Liveness.is_weight lv p then acc else acc + Liveness.size lv p)
      (Liveness.weight_bytes lv + Liveness.size lv v)
      (Graph.pre g v)

(** Top-[sample] node ids by (workset desc, id asc) — the shared,
    slot-assignment-independent selection rule of the probe. *)
let probe_select (worksets : (int, int) Hashtbl.t) k =
  Hashtbl.fold (fun v w acc -> (w, v) :: acc) worksets []
  |> List.sort (fun (wa, va) (wb, vb) -> compare (wb, va) (wa, vb))
  |> List.map snd |> Util.take k

let probe_finish ~lv ~sample ~worksets ~cuts ~reused ~recomputed =
  let lb_workset = Hashtbl.fold (fun _ w acc -> max acc w) worksets 0 in
  let lb_cut = List.fold_left (fun acc (_, c) -> max acc c) 0 cuts in
  {
    pr_lv = lv;
    pr_sample = sample;
    pr_worksets = worksets;
    pr_cuts = cuts;
    pr_lower = max (max lb_workset lb_cut) (Liveness.pinned_bytes lv);
    pr_reused = reused;
    pr_recomputed = recomputed;
  }

let probe_create ?(sample = 8) (lv : Liveness.t) : probe =
  let g = Liveness.graph lv in
  let worksets = Hashtbl.create (Liveness.length lv) in
  Liveness.fold
    (fun v () -> Hashtbl.replace worksets v (lv_workset lv g v))
    lv ();
  let cuts =
    List.map
      (fun v -> (v, Liveness.always_live_bytes lv v))
      (probe_select worksets sample)
  in
  probe_finish ~lv ~sample ~worksets ~cuts ~reused:0
    ~recomputed:(List.length cuts)

let probe_update (p : probe) (lv' : Liveness.t)
    ~(delta : Liveness.delta) : probe =
  let old = p.pr_lv in
  if Liveness.weight_bytes lv' <> Liveness.weight_bytes old then
    (* the pinned-weight total feeds every workset and cut: rebuild *)
    probe_create ~sample:p.pr_sample lv'
  else begin
    let g' = Liveness.graph lv' in
    (* survivors whose byte size or weight classification moved (the
       child's size function — F-Tree accounting — differs per state) *)
    let changed =
      Liveness.fold
        (fun v acc ->
          if
            Liveness.mem old v
            && (Liveness.size old v <> Liveness.size lv' v
               || Liveness.is_weight old v <> Liveness.is_weight lv' v)
          then Util.Int_set.add v acc
          else acc)
        lv' Util.Int_set.empty
    in
    (* worksets to recompute: structurally dirty nodes, nodes that are
       new, size-changed nodes and their consumers (operand sums) *)
    let needs_ws v =
      Util.Int_set.mem v delta.d_dirty
      || Util.Int_set.mem v changed
      || (not (Liveness.mem old v))
      || List.exists (fun u -> Util.Int_set.mem u changed) (Graph.pre g' v)
    in
    let worksets = Hashtbl.create (Liveness.length lv') in
    Liveness.fold
      (fun v () ->
        let w =
          if needs_ws v then lv_workset lv' g' v
          else Hashtbl.find p.pr_worksets v
        in
        Hashtbl.replace worksets v w)
      lv' ();
    (* a cut is stale when the candidate's own reachability rows moved,
       or when a node whose size or adjacency changed sits at or above
       it (its held-ancestor sum reads those) *)
    let suspects =
      Util.Int_set.elements
        (Util.Int_set.union changed delta.d_adj_changed)
    in
    let cut_stale c =
      Util.Int_set.mem c delta.d_dirty
      || List.exists
           (fun w -> w = c || Liveness.must_precede lv' w c)
           suspects
    in
    let reused = ref 0 and recomputed = ref 0 in
    let cuts =
      List.map
        (fun c ->
          match List.assoc_opt c p.pr_cuts with
          | Some cut when not (cut_stale c) ->
              incr reused;
              (c, cut)
          | _ ->
              incr recomputed;
              (c, Liveness.always_live_bytes lv' c))
        (probe_select worksets p.pr_sample)
    in
    probe_finish ~lv:lv' ~sample:p.pr_sample ~worksets ~cuts ~reused:!reused
      ~recomputed:!recomputed
  end

let probe_lower (p : probe) : int = p.pr_lower
let probe_counters (p : probe) : int * int = (p.pr_reused, p.pr_recomputed)

let quick_check ?size_of ?sample (g : Graph.t) ~peak : Diagnostic.t list =
  let d = densify ?size_of g in
  let lower = dense_lower ?sample d in
  let err ~check fmt = Diagnostic.errorf ~pass ~check fmt in
  List.concat
    [
      (if lower > peak then
         [
           err ~check:"lb-exceeds-peak"
             "lower bound %d exceeds the simulated peak %d (inadmissible \
              bound or broken cost model)"
             lower peak;
         ]
       else []);
      (if peak > d.total_bytes then
         [
           err ~check:"peak-exceeds-total"
             "simulated peak %d exceeds the total-bytes upper bound %d" peak
             d.total_bytes;
         ]
       else []);
    ]

let latency_lower_bound ~(cost_of : int -> float) (g : Graph.t) : float =
  Graph.fold
    (fun (n : Graph.node) acc ->
      match n.op with
      | Op.Input _ | Op.Store | Op.Load -> acc
      | _ -> acc +. cost_of n.id)
    g 0.0

(* ------------------------------------------------------------------ *)
(* Invariant checking and printing                                     *)
(* ------------------------------------------------------------------ *)

let check ?node (t : t) ~peak : Diagnostic.t list =
  let err ~check fmt = Diagnostic.errorf ?node ~pass ~check fmt in
  List.concat
    [
      (if t.lower > peak then
         [
           err ~check:"lb-exceeds-peak"
             "lower bound %d exceeds the simulated peak %d (inadmissible \
              bound or broken cost model)"
             t.lower peak;
         ]
       else []);
      (if peak > t.ub_total then
         [
           err ~check:"peak-exceeds-total"
             "simulated peak %d exceeds the total-bytes upper bound %d" peak
             t.ub_total;
         ]
       else []);
      (if t.lower > t.ub_greedy then
         [
           err ~check:"lb-exceeds-greedy"
             "lower bound %d exceeds the greedy-schedule peak %d \
              (inadmissible bound caught by a concrete schedule)"
             t.lower t.ub_greedy;
         ]
       else []);
      (if t.lb_dom > t.lb_cut then
         [
           err ~check:"dom-exceeds-cut"
             "dominator cut %d exceeds the exact reachability cut %d" t.lb_dom
             t.lb_cut;
         ]
       else []);
    ]

let pp ppf (t : t) =
  Fmt.pf ppf
    "bounds(lower=%.1fMB [workset=%.1f cut=%.1f@%d dom=%.1f pinned=%.1f], \
     ub_greedy=%.1fMB, ub_total=%.1fMB)"
    (float_of_int t.lower /. 1e6)
    (float_of_int t.lb_workset /. 1e6)
    (float_of_int t.lb_cut /. 1e6)
    t.cut_node
    (float_of_int t.lb_dom /. 1e6)
    (float_of_int t.lb_pinned /. 1e6)
    (float_of_int t.ub_greedy /. 1e6)
    (float_of_int t.ub_total /. 1e6)
