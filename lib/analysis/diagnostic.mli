(** Structured diagnostics shared by every analysis pass.

    Passes report problems as values rather than raising, so callers can
    collect, filter, and render them — the LLVM [-verify] model.  Each
    diagnostic carries the pass that produced it, a stable check name
    (tests match on it), and optionally the offending node and the
    rewrite rule under lint. *)

type severity = Error | Warning

type t = {
  severity : severity;
  pass : string;  (** producing pass: ["verify"], ["sched-check"], … *)
  check : string;  (** stable check identifier, e.g. ["cycle"] *)
  node : int option;  (** offending node id, when there is one *)
  rule : string option;  (** rewrite rule under lint, when applicable *)
  message : string;
}

val error : ?node:int -> ?rule:string -> pass:string -> check:string -> string -> t
val warning : ?node:int -> ?rule:string -> pass:string -> check:string -> string -> t

(** Printf-style constructors. *)
val errorf :
  ?node:int -> ?rule:string -> pass:string -> check:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val warningf :
  ?node:int -> ?rule:string -> pass:string -> check:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val is_error : t -> bool

(** Only the errors of a report. *)
val errors : t list -> t list

(** No errors (warnings allowed). *)
val is_clean : t list -> bool

(** Does some diagnostic of this check name appear? *)
val has_check : string -> t list -> bool

(** Structured rendering for [--json] CLI output: an object with
    [severity], [pass], [check], [node], [rule], [message] (absent
    options as [null]). *)
val to_json : t -> Magis_obs.Json.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Multi-line report, one diagnostic per line. *)
val pp_report : Format.formatter -> t list -> unit

val report_to_string : t list -> string
