(** Schedule-independent tensor liveness.

    {!Magis_cost.Lifetime} analyzes one concrete schedule; this module
    derives, by abstract interpretation of the graph in topological
    order, liveness facts that hold for {e every} legal schedule (every
    topological order of the DAG):

    - [must_precede t u v]: [u] executes before [v] in every schedule
      (DAG reachability, kept as per-node ancestor/descendant bitsets);
    - [earliest]/[latest]: the range of schedule positions a node can
      occupy ([|anc v|] … [n - 1 - |des v|]);
    - [envelope]: an interval of positions guaranteed to contain the
      node's live interval in every schedule;
    - [always_live_bytes t v]: bytes that are provably resident at the
      step executing [v], in every schedule — the per-node cut bound
      {!Membound} maximizes over.

    Sizes follow the {!Magis_cost.Lifetime} conventions (weights pinned,
    graph outputs live to the end, [size_of] overridable so the fission
    layer's virtual accounting applies unchanged). *)

open Magis_ir

type t

(** [compute ?size_of g] runs the analysis.  [size_of] defaults to
    {!Magis_cost.Lifetime.default_size}[ g]. *)
val compute : ?size_of:(int -> int) -> Graph.t -> t

val graph : t -> Graph.t

(** Number of nodes ([n]); positions range over [0 .. n-1]. *)
val length : t -> int

(** Device bytes of a node under the analysis' size function. *)
val size : t -> int -> int

(** Total bytes pinned for the whole run (weight tensors). *)
val weight_bytes : t -> int

(** Bytes live at the final step of every schedule: weights plus graph
    outputs. *)
val pinned_bytes : t -> int

(** Is the node's tensor live to the end of every schedule (weight or
    graph output)? *)
val pinned : t -> int -> bool

(** [must_precede t u v]: does [u] execute strictly before [v] in every
    legal schedule (i.e. is [u] an ancestor of [v])? *)
val must_precede : t -> int -> int -> bool

(** Earliest position [v] can occupy in any schedule ([|anc v|]). *)
val earliest : t -> int -> int

(** Latest position [v] can occupy ([n - 1 - |des v|]). *)
val latest : t -> int -> int

(** [latest - earliest]: scheduling freedom of the node. *)
val mobility : t -> int -> int

(** [(lo, hi)] such that in every schedule, [v]'s tensor is live only
    within positions [lo .. hi]: [lo = earliest v]; [hi] is the latest
    position of its last consumer, or [n - 1] when pinned. *)
val envelope : t -> int -> int * int

(** Bytes provably resident at the step executing [v], valid for every
    legal schedule: all weights, [v]'s output, and every ancestor tensor
    that still has a consumer at or below [v] (a consumer in
    [{v} ∪ des v]).  The per-node "cut" the lower bound maximizes. *)
val always_live_bytes : t -> int -> int

(** Fold over the node ids in the topological order used internally. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
