(** Schedule-independent tensor liveness.

    {!Magis_cost.Lifetime} analyzes one concrete schedule; this module
    derives, by abstract interpretation of the graph in topological
    order, liveness facts that hold for {e every} legal schedule (every
    topological order of the DAG):

    - [must_precede t u v]: [u] executes before [v] in every schedule
      (DAG reachability, kept as per-node ancestor/descendant bitsets);
    - [earliest]/[latest]: the range of schedule positions a node can
      occupy ([|anc v|] … [n - 1 - |des v|]);
    - [envelope]: an interval of positions guaranteed to contain the
      node's live interval in every schedule;
    - [always_live_bytes t v]: bytes that are provably resident at the
      step executing [v], in every schedule — the per-node cut bound
      {!Membound} maximizes over.

    Sizes follow the {!Magis_cost.Lifetime} conventions (weights pinned,
    graph outputs live to the end, [size_of] overridable so the fission
    layer's virtual accounting applies unchanged). *)

open Magis_ir

type t

(** [compute ?size_of g] runs the analysis.  [size_of] defaults to
    {!Magis_cost.Lifetime.default_size}[ g]. *)
val compute : ?size_of:(int -> int) -> Graph.t -> t

(** What a {!delta_update} actually touched, for downstream incremental
    consumers ({!Membound.probe_update}). *)
type delta = {
  d_dirty : Util.Int_set.t;
      (** nodes whose ancestor or descendant row was recomputed; every
          other node's reachability sets are provably unchanged *)
  d_adj_changed : Util.Int_set.t;
      (** nodes of the new graph whose direct predecessor or successor
          list changed (⊆ the rewrite's blast radius); needed by
          consumers whose values read adjacency, not just reachability *)
}

(** [delta_update ?size_of t g' ~mutated] rebuilds the analysis for the
    child graph [g'] of a single rewrite in O(Δ): surviving nodes keep
    their dense slots and share their ancestor/descendant bitsets with
    the parent by reference; only rows reachable from the structural
    diff (plus the caller's [mutated] hint) are recomputed.  The result
    is {!equivalent} to [compute ?size_of g'] — the scratch-recompute
    oracle the property tests and [verify_states] assert.  [size_of]
    may differ from the parent's (bitsets are size-independent; the
    size tables are rebuilt).  O(V+E) id-level bookkeeping plus bitset
    work proportional to the dirty rows, vs. [compute]'s O(V·E/64).

    [max_dirty] caps the dirty-row union: if the rewrite's reachability
    cone exceeds it, the update returns [None] before any bitset work —
    a near-total rebuild is slower than a scratch analysis, so the
    caller should fall back to one.  Default: no cap. *)
val delta_update :
  ?size_of:(int -> int) ->
  ?max_dirty:int ->
  t ->
  Graph.t ->
  mutated:Util.Int_set.t ->
  (t * delta) option

val graph : t -> Graph.t

(** Is the node part of the analyzed graph? *)
val mem : t -> int -> bool

(** Number of nodes ([n]); positions range over [0 .. n-1]. *)
val length : t -> int

(** Device bytes of a node under the analysis' size function. *)
val size : t -> int -> int

(** Total bytes pinned for the whole run (weight tensors). *)
val weight_bytes : t -> int

(** Bytes live at the final step of every schedule: weights plus graph
    outputs. *)
val pinned_bytes : t -> int

(** Is the node's tensor live to the end of every schedule (weight or
    graph output)? *)
val pinned : t -> int -> bool

(** Is the node a weight tensor (under the analyzed graph's ops)? *)
val is_weight : t -> int -> bool

(** [must_precede t u v]: does [u] execute strictly before [v] in every
    legal schedule (i.e. is [u] an ancestor of [v])? *)
val must_precede : t -> int -> int -> bool

(** Earliest position [v] can occupy in any schedule ([|anc v|]). *)
val earliest : t -> int -> int

(** Latest position [v] can occupy ([n - 1 - |des v|]). *)
val latest : t -> int -> int

(** [latest - earliest]: scheduling freedom of the node. *)
val mobility : t -> int -> int

(** [(lo, hi)] such that in every schedule, [v]'s tensor is live only
    within positions [lo .. hi]: [lo = earliest v]; [hi] is the latest
    position of its last consumer, or [n - 1] when pinned. *)
val envelope : t -> int -> int * int

(** Bytes provably resident at the step executing [v], valid for every
    legal schedule: all weights, [v]'s output, and every ancestor tensor
    that still has a consumer at or below [v] (a consumer in
    [{v} ∪ des v]).  The per-node "cut" the lower bound maximizes. *)
val always_live_bytes : t -> int -> int

(** Fold over the node ids in the (slot) order used internally; after a
    {!delta_update} this is no longer necessarily a topological order,
    only a deterministic enumeration of the nodes. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** Materialize one node's reachability sets (test/oracle use; queries
    above are the O(1) hot path). *)
val ancestors : t -> int -> Util.Int_set.t

val descendants : t -> int -> Util.Int_set.t

(** Semantic equality of two analyses over the same node ids: same
    reachability sets, sizes, weight/pinned classification and pinned
    totals — regardless of internal slot assignment.  The equivalence
    oracle for {!delta_update}. *)
val equivalent : t -> t -> bool
