(** Schedule-independent peak-memory bounds and branch-and-bound pruning
    support (the "analyze before you execute" pass of DESIGN.md §8).

    From the graph alone — no schedule, no simulation — this module
    derives an {e admissible lower bound} on the peak resident memory of
    {e every} legal schedule, and two upper bounds.  All figures use the
    {!Magis_cost.Lifetime} size conventions, with [size_of] overridable
    so the F-Tree's virtual accounting applies unchanged; the bounds are
    therefore directly comparable with the simulator's [peak_mem].

    Lower-bound terms (the reported [lower] is their maximum):
    - [lb_workset]: pinned weights + the largest single-operator working
      set (distinct operands + output) — every operator's operands are
      live while it runs;
    - [lb_cut]: the weighted max-antichain relaxation: for each node
      [v], {!Liveness.always_live_bytes} sums the tensors provably
      resident when [v] executes (ancestors still needed at or below
      [v]); the bound maximizes over nodes;
    - [lb_dom]: the same cut evaluated through the
      {!Magis_ir.Dominator} tree only (dominators of [v] held by
      consumers [v] dominates) — weaker than [lb_cut] by construction,
      kept as a cross-check on both structures;
    - [lb_pinned]: weights + graph outputs, all live at the final step.

    Upper bounds:
    - [ub_greedy]: the {!Magis_cost.Lifetime} peak of the memory-greedy
      list schedule ({!Magis_sched.Reorder} with a zero DP budget) — an
      upper bound on the {e optimal} schedule's peak, so
      [lower <= ub_greedy] always;
    - [ub_total]: the sum of all tensor sizes — an upper bound on the
      peak of {e any} schedule, so [simulated peak <= ub_total]. *)

open Magis_ir

type t = {
  lb_workset : int;
  lb_cut : int;
  lb_dom : int;
  lb_pinned : int;
  lower : int;  (** max of the four lower-bound terms *)
  ub_greedy : int;
  ub_total : int;
  cut_node : int;  (** node id attaining [lb_cut]; [-1] on empty graphs *)
}

(** Full bound record (includes the greedy-schedule upper bound and the
    dominator cross-check; prefer {!lower_bound} on hot paths). *)
val compute : ?size_of:(int -> int) -> Graph.t -> t

(** Same, sharing an already-computed liveness analysis. *)
val of_liveness : Liveness.t -> t

(** [lower_bound ?size_of ?sample g] is just the admissible lower bound,
    skipping the upper bounds and the dominator pass.  [sample] caps the
    number of cut evaluations (the candidates with the largest working
    sets are tried, a superset heuristic of where the max-cut lives);
    any cap keeps the bound admissible, merely possibly looser.  This is
    the search's branch-and-bound probe. *)
val lower_bound : ?size_of:(int -> int) -> ?sample:int -> Graph.t -> int

(** Incremental form of the probe bound, for the search hot path.  A
    [probe] memoizes per-node worksets and the sampled cut evaluations
    keyed by node id; {!probe_update} advances it across one rewrite
    using the {!Liveness.delta} of a {!Liveness.delta_update},
    recomputing only entries the rewrite could have changed.  The
    invariant (asserted by the property tests) is exact:
    [probe_update p lv' ~delta] yields the same bound, worksets and cut
    values as [probe_create ~sample lv'] from scratch. *)
type probe

(** [probe_create ?sample lv] builds the probe from a liveness analysis.
    [sample] (default 8) caps cut evaluations as in {!lower_bound};
    candidates are the [sample] largest worksets, ties by node id. *)
val probe_create : ?sample:int -> Liveness.t -> probe

(** Advance the probe to the child liveness [lv'] produced by
    {!Liveness.delta_update}, reusing every workset and cut evaluation
    the delta proves unchanged. *)
val probe_update : probe -> Liveness.t -> delta:Liveness.delta -> probe

(** The admissible lower bound held by the probe (max of workset, cut
    and pinned terms — the same terms as {!lower_bound}). *)
val probe_lower : probe -> int

(** [(reused, recomputed)] cut-evaluation counts of the last create or
    update, for the search's incremental-efficiency counters. *)
val probe_counters : probe -> int * int

(** Admissible lower bound on the simulated latency of any schedule:
    the compute stream is serial, so latency is at least the sum of
    [cost_of] over compute operators (swaps overlap and inputs are
    free — both excluded).  Add the fission accounting's
    [extra_latency] for states with enabled fissions. *)
val latency_lower_bound : cost_of:(int -> float) -> Graph.t -> float

(** Bound-invariant diagnostics for an observed simulated peak:
    ["lb-exceeds-peak"] when [lower > peak] (the analyzer or the cost
    model is wrong), ["peak-exceeds-total"] when [peak > ub_total], and
    ["lb-exceeds-greedy"] when [lower > ub_greedy] (an inadmissible
    bound caught by a concrete schedule).  Empty when the invariant
    [lower <= peak <= ub_total] holds. *)
val check : ?node:int -> t -> peak:int -> Diagnostic.t list

(** [quick_check ?size_of ?sample g ~peak] is the hot-path form of
    {!check}: it verifies [lower_bound <= peak <= ub_total] using the
    probe bound only (no dominator pass, no greedy schedule), cheap
    enough to run on every state the search accepts under
    [verify_states].  Same diagnostic codes as {!check}. *)
val quick_check :
  ?size_of:(int -> int) -> ?sample:int -> Graph.t -> peak:int ->
  Diagnostic.t list

val pp : Format.formatter -> t -> unit
