(** Differential lint for rewrite rules.

    Every rewrite a rule produces on a corpus graph is checked three
    ways:

    - the rewritten graph must pass {!Verify} (["rule-lint"]-tagged
      re-reports of the verifier's findings);
    - ["touched-coverage"]: [touched_old] must cover the changed region —
      every old node that was removed or whose record (operator, operand
      slots, shape) changed must be in it, since Algorithm 2 derives its
      re-scheduling window from that set (a Weisfeiler–Lehman label diff
      is also computed; label drift *outside* the record-diff is expected
      downstream of a change and not flagged);
    - ["value-drift"]: on graphs small enough to interpret, every node id
      present in both graphs must compute the same value (within
      [tolerance]) under a shared input environment
      ({!Magis_exec.Interp.max_diff}) — rewrites only rewire around
      surviving nodes, so a surviving node's value must not change.

    The corpus is supplied by the caller (the CLI uses the model zoo plus
    seeded random graphs). *)

open Magis_ir
open Magis_rules

type entry = {
  rule : string;  (** rule name *)
  subject : string;  (** corpus graph name *)
  n_rewrites : int;  (** rewrites produced on this subject *)
  n_interp : int;  (** rewrites checked numerically *)
  diags : Diagnostic.t list;
}

type report = {
  entries : entry list;
  n_rules : int;
  n_rewrites : int;
  n_errors : int;
  n_warnings : int;
}

(** Rule context for linting [g]: deterministic topological schedule,
    hot-spots from the lifetime analysis. *)
val ctx_for : ?max_per_rule:int -> Graph.t -> Rule.ctx

(** Lint one rewrite of [g].  [interp_limit] bounds the node count for
    the numeric check (bigger graphs skip it); [tolerance] is the allowed
    element-wise drift. *)
val lint_rewrite :
  ?interp_limit:int -> ?tolerance:float -> Graph.t -> Rule.rewrite ->
  Diagnostic.t list

(** Run every rule on every (named) corpus graph. *)
val lint :
  ?max_per_rule:int -> ?interp_limit:int -> ?tolerance:float ->
  rules:Rule.t list -> (string * Graph.t) list -> report

val is_clean : report -> bool
val pp_report : Format.formatter -> report -> unit

(** [fission_corpus corpus] derives additional corpus graphs by
    materializing each subject's F-Tree candidate fissions
    ({!Magis_ftree.Fission.expand}) at fission numbers 2 and 3 — graphs
    with the slice/per-part/merge seams that F-Trans produces, which no
    hand-built or zoo graph exhibits.  Invalid or verifier-unclean
    expansions are skipped; at most [max_graphs] (default 8) are
    returned, named ["<subject>-f<entry>x<n>"]. *)
val fission_corpus :
  ?max_graphs:int -> (string * Graph.t) list -> (string * Graph.t) list

(** Long elementwise chains with skip connections — the distance-gated
    D-Trans rules (remat/swap and the compound sweeps) fire on these
    where the shallow zoo graphs never trigger them. *)
val elementwise_corpus : unit -> (string * Graph.t) list

(** Graphs already containing Store/Load seams, the subjects of de-swap
    and the sweep rules. *)
val swap_corpus : unit -> (string * Graph.t) list

(** Both built-in corpora; backs waiver coverage in [Rule_sound] and
    extends the CLI lint corpus. *)
val builtin_corpus : unit -> (string * Graph.t) list
