(** Symbolic rule-soundness verifier (see the interface). *)

open Magis_ir
open Magis_rules
module S = Rule.Spec
module Int_set = Util.Int_set

let pass = "rule-sound"

type status = Proven of int | Waived of string

type entry = { rule : string; status : status; diags : Diagnostic.t list }

type report = {
  entries : entry list;
  n_proven : int;
  n_waived : int;
  n_errors : int;
  n_warnings : int;
}

type sshape = Symshape.t array * Symshape.sdt

(* ------------------------------------------------------------------ *)
(* Template plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let rec sdim_vars acc : S.sdim -> string list = function
  | S.K _ -> acc
  | S.V x -> x :: acc
  | S.Add (a, b) | S.Sub (a, b) | S.Mul (a, b) -> sdim_vars (sdim_vars acc a) b

let skind_sdims = function
  | S.Fixed _ -> []
  | S.Slice_s { lo; hi; _ } -> [ lo; hi ]

let template_vars (t : S.template) : string list =
  let of_guard = function
    | S.Divides (_, e) -> [ e ]
    | S.Ge (a, b) -> [ a; b ]
  in
  let dims =
    List.concat_map (fun (s : S.source) -> s.src_dims) t.t_sources
    @ List.concat_map (fun (n : S.snode) -> skind_sdims n.skind)
        (t.t_lhs @ t.t_rhs)
    @ List.concat_map of_guard t.t_guards
    @ [ t.t_delta ]
  in
  List.sort_uniq compare (List.fold_left sdim_vars [] dims)

(** Template ids must be unique and operands must reference earlier
    entities; one bad reference poisons everything downstream, so these
    are reported and the template skipped. *)
let well_formed (t : S.template) : string option =
  let seen = Hashtbl.create 16 in
  let declare what id =
    if Hashtbl.mem seen id then
      Some (Printf.sprintf "%s id %d reused" what id)
    else (
      Hashtbl.replace seen id ();
      None)
  in
  let check_side side nodes =
    List.fold_left
      (fun err (n : S.snode) ->
        match err with
        | Some _ -> err
        | None -> (
            match
              List.find_opt (fun i -> not (Hashtbl.mem seen i)) n.sins
            with
            | Some i ->
                Some
                  (Printf.sprintf "%s node %d references undeclared id %d"
                     side n.sid i)
            | None -> declare side n.sid))
      None nodes
  in
  let srcs =
    List.fold_left
      (fun err (s : S.source) ->
        match err with Some _ -> err | None -> declare "source" s.src_id)
      None t.t_sources
  in
  match srcs with
  | Some _ as e -> e
  | None -> (
      match check_side "lhs" t.t_lhs with
      | Some _ as e -> e
      | None ->
          (* RHS shares the source namespace but not the LHS nodes *)
          List.iter
            (fun (n : S.snode) -> Hashtbl.remove seen n.sid)
            t.t_lhs;
          check_side "rhs" t.t_rhs)

(* ------------------------------------------------------------------ *)
(* Symbolic interpretation                                            *)
(* ------------------------------------------------------------------ *)

(** Interpret one template side over the symbolic domain: sources bind
    their declared shapes, nodes run the abstract operator inference
    ({!Magis_ir.Op.Abstract} over {!Symshape}), slices with symbolic
    bounds additionally discharge their range obligations under the
    guards. *)
let interp_side ~guards (sources : S.source list) (nodes : S.snode list) :
    ((int, sshape) Hashtbl.t, string) result =
  let module D = (val Symshape.dim_domain guards : Symshape.DOMAIN) in
  let module A = Op.Abstract (D) in
  let tbl : (int, sshape) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : S.source) ->
      Hashtbl.replace tbl s.src_id
        (Array.of_list (List.map Symshape.of_sdim s.src_dims), s.src_dt))
    sources;
  let step (n : S.snode) : (unit, string) result =
    let ins = Array.of_list (List.map (Hashtbl.find tbl) n.sins) in
    let res =
      match n.skind with
      | S.Fixed k -> A.infer k ins
      | S.Slice_s { axis; lo; hi } ->
          if Array.length ins <> 1 then Error "slice expects 1 input"
          else
            let dims, dt = ins.(0) in
            let lo = Symshape.of_sdim lo and hi = Symshape.of_sdim hi in
            if axis < 0 || axis >= Array.length dims then
              Error "slice: bad axis"
            else if not (Symshape.geq ~guards lo Symshape.zero) then
              Error "slice: cannot prove lo >= 0"
            else if
              not
                (Symshape.geq ~guards hi
                   (Symshape.add lo (Symshape.const 1)))
            then Error "slice: cannot prove lo < hi"
            else if not (Symshape.geq ~guards dims.(axis) hi) then
              Error "slice: cannot prove the extent covers hi"
            else
              let out = Array.copy dims in
              out.(axis) <- Symshape.sub hi lo;
              Ok (out, dt)
    in
    Result.map (fun s -> Hashtbl.replace tbl n.sid s) res
  in
  let rec go = function
    | [] -> Ok tbl
    | n :: rest -> (
        match step n with
        | Ok () -> go rest
        | Error e -> Error (Printf.sprintf "node %d: %s" n.S.sid e))
  in
  go nodes

(** Device elements of a template node's output; [Store] outputs live
    host-side and count 0 — the convention the cost layer's accounting
    uses throughout. *)
let numel_of tbl (n : S.snode) : Symshape.t =
  match n.skind with
  | S.Fixed Op.Store -> Symshape.zero
  | _ ->
      let dims, _ = Hashtbl.find tbl n.sid in
      Array.fold_left Symshape.mul (Symshape.const 1) dims

(* ------------------------------------------------------------------ *)
(* Dependency refinement                                              *)
(* ------------------------------------------------------------------ *)

(** Strict-ancestor sets of one template side, keyed by template id. *)
let ancestors (sources : S.source list) (nodes : S.snode list) :
    (int, Int_set.t) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : S.source) -> Hashtbl.replace tbl s.src_id Int_set.empty)
    sources;
  List.iter
    (fun (n : S.snode) ->
      let anc =
        List.fold_left
          (fun acc i ->
            Int_set.add i
              (Int_set.union acc
                 (Option.value ~default:Int_set.empty
                    (Hashtbl.find_opt tbl i))))
          Int_set.empty n.sins
      in
      Hashtbl.replace tbl n.sid anc)
    nodes;
  tbl

(** The refinement obligation: for every surviving entity [a] (source or
    kept node) that must precede a surviving/result entity [b] on the
    LHS, the RHS must order [a]'s representative — or an RHS node
    declared to recompute [a]'s value ([same_as]) — before [b]'s.
    [prec_lhs]/[prec_rhs] are must-precede oracles over template ids, so
    the same walk runs both symbolically (template ancestors) and on the
    grounded instance ({!Liveness.must_precede}). *)
let check_refinement ~(t : S.template) ~prec_lhs ~prec_rhs ~what :
    Diagnostic.t list =
  let sources = List.map (fun (s : S.source) -> s.src_id) t.t_sources in
  let lhs_entities = sources @ List.map fst t.t_keep in
  let targets = t.t_keep @ t.t_out in
  let rep a = if List.mem a sources then Some a else List.assoc_opt a t.t_keep in
  let recomputers a =
    List.filter_map
      (fun (n : S.snode) -> if n.same_as = Some a then Some n.sid else None)
      t.t_rhs
  in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun (b, b') ->
          if a = b || not (prec_lhs a b) then None
          else
            let candidates =
              (match rep a with Some r -> [ r ] | None -> []) @ recomputers a
            in
            let ok =
              List.exists (fun c -> c = b' || prec_rhs c b') candidates
            in
            if ok then None
            else
              Some
                (Diagnostic.errorf ~rule:t.t_name ~pass
                   ~check:"dep-refinement"
                   "%s: LHS orders entity %d before %d, but no RHS \
                    counterpart of %d precedes %d's"
                   what a b a b))
        targets)
    lhs_entities

(* ------------------------------------------------------------------ *)
(* Grounding                                                          *)
(* ------------------------------------------------------------------ *)

let ground_dtype = function S.Dt_const d -> d | S.Dt_var _ -> Shape.F32

let ground_kind ~env = function
  | S.Fixed k -> k
  | S.Slice_s { axis; lo; hi } ->
      Op.Slice
        {
          axis;
          lo = Symshape.eval ~env (Symshape.of_sdim lo);
          hi = Symshape.eval ~env (Symshape.of_sdim hi);
        }

(** Instantiate one side with the witness assignment.  Returns the graph
    and the template-id -> graph-id map.  Materialized sources sit
    behind a producer node (rules like [swap] skip graph inputs). *)
let ground_side ~env (sources : S.source list) (nodes : S.snode list) :
    Graph.t * (int, int) Hashtbl.t =
  let ids = Hashtbl.create 16 in
  let g =
    List.fold_left
      (fun g (s : S.source) ->
        let shape =
          Shape.create ~dtype:(ground_dtype s.src_dt)
            (List.map (fun d -> Symshape.eval ~env (Symshape.of_sdim d)) s.src_dims)
        in
        let g, id = Graph.add_input g s.src_kind shape in
        let g, id =
          if s.src_mat then Graph.add g (Op.Unary Op.Relu) [ id ] else (g, id)
        in
        Hashtbl.replace ids s.src_id id;
        g)
      Graph.empty sources
  in
  let g =
    List.fold_left
      (fun g (n : S.snode) ->
        let g, id =
          Graph.add g (ground_kind ~env n.skind)
            (List.map (Hashtbl.find ids) n.sins)
        in
        Hashtbl.replace ids n.sid id;
        g)
      g nodes
  in
  (g, ids)

(** Permissive context for grounding: every node is a candidate (no
    hot-spot restriction) and the synthetic schedule spaces nodes far
    apart so distance heuristics always pass. *)
let ground_ctx : Rule.ctx =
  {
    Rule.hotspots = Int_set.empty;
    frozen = Int_set.empty;
    schedule_pos = (fun v -> Some (v * 16));
    max_per_rule = 64;
    restrict_to_hotspots = false;
  }

(** Differential conformance: the real [apply], run on the grounded LHS,
    must reproduce the declared RHS (up to isomorphism), and that
    rewrite must pass the full differential lint.  The grounded pair
    also re-runs the refinement walk with {!Liveness.must_precede} as
    the oracle — the abstract check and the concrete semantics must
    agree. *)
let check_grounding (rule : Rule.t) (t : S.template) : Diagnostic.t list =
  let err check fmt =
    Fmt.kstr (fun m -> [ Diagnostic.error ~rule:rule.name ~pass ~check m ]) fmt
  in
  let env = t.t_ground in
  match
    List.find_opt (fun g -> not (Symshape.guard_sat ~env g)) t.t_guards
  with
  | Some _ ->
      err "ground-witness" "%s: witness does not satisfy the guards" t.t_name
  | None -> (
      match
        ( ground_side ~env t.t_sources t.t_lhs,
          ground_side ~env t.t_sources t.t_rhs )
      with
      | exception e ->
          err "ground-witness" "%s: instantiation raised %s" t.t_name
            (Printexc.to_string e)
      | (lhs_g, lmap), (rhs_g, rmap) -> (
          match
            Diagnostic.errors (Verify.graph lhs_g)
            @ Diagnostic.errors (Verify.graph rhs_g)
          with
          | _ :: _ ->
              err "ground-witness" "%s: grounded template is not verifier-clean"
                t.t_name
          | [] -> (
              let rewrites = rule.apply ground_ctx lhs_g in
              match
                List.find_opt
                  (fun (rw : Rule.rewrite) ->
                    Wl_hash.equal_structure rw.graph rhs_g)
                  rewrites
              with
              | None ->
                  err "ground-conformance"
                    "%s: apply produced %d rewrite(s) on the grounded \
                     template, none isomorphic to the declared RHS"
                    t.t_name (List.length rewrites)
              | Some rw ->
                  let lint =
                    List.map
                      (fun (d : Diagnostic.t) -> { d with Diagnostic.pass })
                      (Diagnostic.errors (Rule_lint.lint_rewrite lhs_g rw))
                  in
                  let lv_l = Liveness.compute lhs_g
                  and lv_r = Liveness.compute rhs_g in
                  let prec side ids a b =
                    match (Hashtbl.find_opt ids a, Hashtbl.find_opt ids b) with
                    | Some ga, Some gb -> Liveness.must_precede side ga gb
                    | _ -> false
                  in
                  lint
                  @ check_refinement ~t ~prec_lhs:(prec lv_l lmap)
                      ~prec_rhs:(prec lv_r rmap)
                      ~what:(t.t_name ^ " (grounded)"))))

(* ------------------------------------------------------------------ *)
(* Per-template obligations                                           *)
(* ------------------------------------------------------------------ *)

let check_template (rule : Rule.t) (t : S.template) : Diagnostic.t list =
  let err check fmt =
    Fmt.kstr (fun m -> [ Diagnostic.error ~rule:rule.name ~pass ~check m ]) fmt
  in
  match well_formed t with
  | Some e -> err "template-form" "%s: %s" t.t_name e
  | None -> (
      let unbound =
        List.filter
          (fun v -> not (List.mem_assoc v t.t_ground))
          (template_vars t)
      in
      if unbound <> [] then
        err "ground-witness" "%s: witness leaves %s unbound" t.t_name
          (String.concat ", " unbound)
      else
        let guards = t.t_guards in
        match
          ( interp_side ~guards t.t_sources t.t_lhs,
            interp_side ~guards t.t_sources t.t_rhs )
        with
        | Error e, _ -> err "symbolic-infer" "%s: LHS: %s" t.t_name e
        | _, Error e -> err "symbolic-infer" "%s: RHS: %s" t.t_name e
        | Ok ltbl, Ok rtbl ->
            let out_diags =
              List.concat_map
                (fun (l, r) ->
                  let ldims, ldt = Hashtbl.find ltbl l in
                  let rdims, rdt =
                    match Hashtbl.find_opt rtbl r with
                    | Some s -> s
                    | None -> Hashtbl.find ltbl r
                  in
                  let shape_ok =
                    Array.length ldims = Array.length rdims
                    && Array.for_all2 Symshape.equal ldims rdims
                  in
                  (if shape_ok then []
                   else
                     err "out-shape"
                       "%s: result %d's symbolic shape differs from its \
                        replacement %d's"
                       t.t_name l r)
                  @
                  if ldt = rdt then []
                  else
                    err "out-dtype"
                      "%s: result %d's dtype differs from its replacement %d's"
                      t.t_name l r)
                t.t_out
            in
            let keep_rhs = List.map snd t.t_keep in
            let keep_lhs = List.map fst t.t_keep in
            let added =
              List.filter
                (fun (n : S.snode) -> not (List.mem n.sid keep_rhs))
                t.t_rhs
            and removed =
              List.filter
                (fun (n : S.snode) -> not (List.mem n.sid keep_lhs))
                t.t_lhs
            in
            let total tbl ns =
              List.fold_left
                (fun acc n -> Symshape.add acc (numel_of tbl n))
                Symshape.zero ns
            in
            let delta =
              Symshape.sub (total rtbl added) (total ltbl removed)
            in
            let delta_diags =
              if Symshape.equal delta (Symshape.of_sdim t.t_delta) then []
              else
                err "memory-delta"
                  "%s: declared element delta %s but the template yields %s"
                  t.t_name
                  (Symshape.to_string (Symshape.of_sdim t.t_delta))
                  (Symshape.to_string delta)
            in
            let lanc = ancestors t.t_sources t.t_lhs
            and ranc = ancestors t.t_sources t.t_rhs in
            let prec tbl a b =
              match Hashtbl.find_opt tbl b with
              | Some s -> Int_set.mem a s
              | None -> false
            in
            let dep_diags =
              check_refinement ~t ~prec_lhs:(prec lanc) ~prec_rhs:(prec ranc)
                ~what:t.t_name
              |> List.map (fun (d : Diagnostic.t) ->
                     { d with Diagnostic.rule = Some rule.name })
            in
            let sym = out_diags @ delta_diags @ dep_diags in
            (* ground only templates whose symbolic side is clean: a
               broken template would fail conformance for noise *)
            if sym <> [] then sym else check_grounding rule t)

(* ------------------------------------------------------------------ *)
(* Rules and reports                                                  *)
(* ------------------------------------------------------------------ *)

(** Differential coverage for a waived rule: it must actually fire on
    the corpus — a waiver whose rule is never exercised is a silent
    soundness gap, reported as ["waiver-no-coverage"] — and every
    rewrite it produces there must lint clean. *)
let check_waiver (rule : Rule.t) reason corpus : Diagnostic.t list =
  let fired = ref 0 and diags = ref [] in
  List.iter
    (fun (_, g) ->
      let ctx = Rule_lint.ctx_for g in
      List.iter
        (fun (rw : Rule.rewrite) ->
          incr fired;
          diags :=
            Diagnostic.errors (Rule_lint.lint_rewrite g rw) @ !diags)
        (rule.apply ctx g))
    corpus;
  let cov =
    if !fired > 0 then []
    else
      [
        Diagnostic.errorf ~rule:rule.name ~pass ~check:"waiver-no-coverage"
          "waived (%s) but no corpus subject exercises it — the waiver is \
           unbacked"
          reason;
      ]
  in
  cov @ List.map (fun (d : Diagnostic.t) -> { d with Diagnostic.pass }) !diags

let check_rule ?(corpus = []) (rule : Rule.t) : entry =
  match rule.spec with
  | S.Waiver reason ->
      { rule = rule.name; status = Waived reason;
        diags = check_waiver rule reason corpus }
  | S.Sound [] ->
      {
        rule = rule.name;
        status = Proven 0;
        diags =
          [
            Diagnostic.errorf ~rule:rule.name ~pass ~check:"template-form"
              "declared Sound with no templates — nothing is proven";
          ];
      }
  | S.Sound templates ->
      {
        rule = rule.name;
        status = Proven (List.length templates);
        diags = List.concat_map (check_template rule) templates;
      }

let check_rules ?corpus (rules : Rule.t list) : report =
  let entries = List.map (check_rule ?corpus) rules in
  let all = List.concat_map (fun e -> e.diags) entries in
  {
    entries;
    n_proven =
      List.length
        (List.filter (fun e -> match e.status with Proven _ -> true | _ -> false)
           entries);
    n_waived =
      List.length
        (List.filter (fun e -> match e.status with Waived _ -> true | _ -> false)
           entries);
    n_errors = List.length (Diagnostic.errors all);
    n_warnings =
      List.length (List.filter (fun d -> not (Diagnostic.is_error d)) all);
  }

let is_clean r = r.n_errors = 0

let unbacked_waivers r =
  List.filter_map
    (fun e ->
      if Diagnostic.has_check "waiver-no-coverage" e.diags then Some e.rule
      else None)
    r.entries

let pp_entry ppf (e : entry) =
  let status ppf = function
    | Proven n -> Fmt.pf ppf "proven (%d template%s)" n (if n = 1 then "" else "s")
    | Waived reason -> Fmt.pf ppf "waived: %s" reason
  in
  Fmt.pf ppf "%-22s %a" e.rule status e.status;
  if not (Diagnostic.is_clean e.diags) then
    Fmt.pf ppf "@,%a" Diagnostic.pp_report (Diagnostic.errors e.diags)

let pp_report ppf (r : report) =
  Fmt.pf ppf "@[<v>%a@,total: %d proven, %d waived, %d error(s), %d warning(s)@]"
    (Fmt.list ~sep:Fmt.cut pp_entry)
    r.entries r.n_proven r.n_waived r.n_errors r.n_warnings
