(** Structured diagnostics shared by every analysis pass. *)

type severity = Error | Warning

type t = {
  severity : severity;
  pass : string;
  check : string;
  node : int option;
  rule : string option;
  message : string;
}

let make severity ?node ?rule ~pass ~check message =
  { severity; pass; check; node; rule; message }

let error ?node ?rule ~pass ~check message =
  make Error ?node ?rule ~pass ~check message

let warning ?node ?rule ~pass ~check message =
  make Warning ?node ?rule ~pass ~check message

let errorf ?node ?rule ~pass ~check fmt =
  Fmt.kstr (error ?node ?rule ~pass ~check) fmt

let warningf ?node ?rule ~pass ~check fmt =
  Fmt.kstr (warning ?node ?rule ~pass ~check) fmt

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
let is_clean ds = not (List.exists is_error ds)
let has_check name ds = List.exists (fun d -> d.check = name) ds

let to_json d =
  let module J = Magis_obs.Json in
  let opt f = function None -> J.Null | Some v -> f v in
  J.Obj
    [
      ("severity",
       J.String (match d.severity with Error -> "error" | Warning -> "warning"));
      ("pass", J.String d.pass);
      ("check", J.String d.check);
      ("node", opt (fun n -> J.Int n) d.node);
      ("rule", opt (fun r -> J.String r) d.rule);
      ("message", J.String d.message);
    ]

let pp ppf d =
  Fmt.pf ppf "%s: %s[%s]%a%a: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.pass d.check
    (Fmt.option (fun ppf n -> Fmt.pf ppf " node %d" n))
    d.node
    (Fmt.option (fun ppf r -> Fmt.pf ppf " rule %s" r))
    d.rule d.message

let to_string d = Fmt.str "%a" pp d

let pp_report ppf ds =
  match ds with
  | [] -> Fmt.pf ppf "clean"
  | ds -> Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp) ds

let report_to_string ds = Fmt.str "%a" pp_report ds
