(** Differential lint for rewrite rules (see the interface).

    The three checks are ordered from cheapest to most expensive: the IR
    verifier, the touched-region coverage diff, and — on graphs small
    enough — numeric equivalence on the reference interpreter. *)

open Magis_ir
open Magis_cost
open Magis_rules
module Interp = Magis_exec.Interp
module Int_map = Util.Int_map
module Int_set = Util.Int_set

let pass = "rule-lint"

type entry = {
  rule : string;
  subject : string;
  n_rewrites : int;
  n_interp : int;
  diags : Diagnostic.t list;
}

type report = {
  entries : entry list;
  n_rules : int;
  n_rewrites : int;
  n_errors : int;
  n_warnings : int;
}

let ctx_for ?(max_per_rule = 4) (g : Graph.t) : Rule.ctx =
  let order = Graph.topo_order g in
  let lt = Lifetime.analyze g order in
  let pos = Hashtbl.create (Graph.n_nodes g) in
  List.iteri (fun i v -> Hashtbl.replace pos v i) order;
  {
    Rule.hotspots = Lifetime.hotspots lt;
    frozen = Int_set.empty;
    schedule_pos = (fun v -> Hashtbl.find_opt pos v);
    max_per_rule;
    restrict_to_hotspots = true;
  }

(* ------------------------------------------------------------------ *)
(* Touched-region coverage                                             *)
(* ------------------------------------------------------------------ *)

let record_changed (a : Graph.node) (b : Graph.node) =
  a.op <> b.op || a.inputs <> b.inputs || not (Shape.equal a.shape b.shape)

(** Every old node that was removed or whose record changed must be in
    [touched_old]; WL-label drift must stay downstream of the declared
    region. *)
let check_coverage g (rw : Rule.rewrite) =
  let rule = rw.rule in
  let err ?node ~check fmt = Diagnostic.errorf ?node ~rule ~pass ~check fmt in
  let old_labels = Wl_hash.node_labels g in
  let new_labels = Wl_hash.node_labels rw.graph in
  let touched_des = Graph.des_of_set g rw.touched_old in
  let covered v =
    Int_set.mem v rw.touched_old || Int_set.mem v touched_des
  in
  Graph.fold
    (fun (n : Graph.node) acc ->
      match Graph.node_opt rw.graph n.id with
      | None ->
          if Int_set.mem n.id rw.touched_old then acc
          else
            err ~node:n.id ~check:"touched-coverage"
              "node %d was removed by %s but is not in touched_old" n.id rule
            :: acc
      | Some n' ->
          if record_changed n n' then
            if Int_set.mem n.id rw.touched_old then acc
            else
              err ~node:n.id ~check:"touched-coverage"
                "node %d was rewired by %s but is not in touched_old" n.id
                rule
              :: acc
          else if
            (* unchanged record but drifted WL label: must be explained by
               an ancestor inside the declared region *)
            (not (covered n.id))
            && Int_map.find_opt n.id old_labels
               <> Int_map.find_opt n.id new_labels
          then
            err ~node:n.id ~check:"touched-coverage"
              "node %d's WL label drifted under %s outside the declared \
               touched region"
              n.id rule
            :: acc
          else acc)
    g []

(* ------------------------------------------------------------------ *)
(* Numeric equivalence                                                  *)
(* ------------------------------------------------------------------ *)

(** Every node id surviving the rewrite must compute the same value:
    rules only rewire *around* surviving nodes, so a drifted value means
    the rewrite changed semantics. *)
let check_values ~tolerance g (rw : Rule.rewrite) =
  let rule = rw.rule in
  try
    let env = Interp.default_env g in
    let vals = Interp.run g ~env in
    let vals' = Interp.run rw.graph ~env in
    Graph.fold
      (fun (n : Graph.node) acc ->
        match
          (Hashtbl.find_opt vals n.id, Hashtbl.find_opt vals' n.id)
        with
        | Some a, Some b ->
            let d = Interp.max_diff a b in
            if d <= tolerance then acc
            else
              Diagnostic.errorf ~node:n.id ~rule ~pass ~check:"value-drift"
                "node %d's value drifted by %.3e under %s" n.id d rule
              :: acc
        | _ -> acc)
      g []
  with e ->
    [
      Diagnostic.errorf ~rule ~pass ~check:"interp-crash"
        "interpreting the rewrite raised %s" (Printexc.to_string e);
    ]

let lint_rewrite ?(interp_limit = 80) ?(tolerance = 1e-4) g
    (rw : Rule.rewrite) =
  let verify =
    List.map
      (fun (d : Diagnostic.t) -> { d with Diagnostic.rule = Some rw.rule })
      (Verify.graph rw.graph)
  in
  let coverage = check_coverage g rw in
  let values =
    if
      Diagnostic.is_clean verify
      && Graph.n_nodes g <= interp_limit
      && Graph.n_nodes rw.graph <= interp_limit
    then check_values ~tolerance g rw
    else []
  in
  verify @ coverage @ values

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let lint ?(max_per_rule = 4) ?(interp_limit = 80) ?(tolerance = 1e-4)
    ~(rules : Rule.t list) (corpus : (string * Graph.t) list) : report =
  let entries =
    List.concat_map
      (fun (subject, g) ->
        let ctx = ctx_for ~max_per_rule g in
        List.map
          (fun (rule : Rule.t) ->
            let rewrites = rule.apply ctx g in
            let interpretable (rw : Rule.rewrite) =
              Graph.n_nodes g <= interp_limit
              && Graph.n_nodes rw.graph <= interp_limit
            in
            let diags =
              List.concat_map (lint_rewrite ~interp_limit ~tolerance g)
                rewrites
            in
            {
              rule = rule.name;
              subject;
              n_rewrites = List.length rewrites;
              n_interp = List.length (List.filter interpretable rewrites);
              diags;
            })
          rules)
      corpus
  in
  let all = List.concat_map (fun e -> e.diags) entries in
  {
    entries;
    n_rules =
      List.length
        (List.sort_uniq compare (List.map (fun e -> e.rule) entries));
    n_rewrites =
      List.fold_left (fun a (e : entry) -> a + e.n_rewrites) 0 entries;
    n_errors = List.length (Diagnostic.errors all);
    n_warnings =
      List.length (List.filter (fun d -> not (Diagnostic.is_error d)) all);
  }

let is_clean r = r.n_errors = 0

(* ------------------------------------------------------------------ *)
(* Fission corpus                                                      *)
(* ------------------------------------------------------------------ *)

(** Materialized fission variants of the corpus graphs: each F-Tree
    candidate fission, expanded at small fission numbers with
    {!Magis_ftree.Fission.expand}.  The results contain the
    slice/per-part/merge seams F-Trans produces — a structure neither
    the hand-built patterns nor the zoo graphs exhibit — so linting over
    them checks that no rule mis-rewrites across a fission boundary.
    Only verifier-clean expansions are kept (an unclean one is
    {!Magis_ftree.Fission}'s bug, reported by its own tests). *)
let fission_corpus ?(max_graphs = 8) (corpus : (string * Graph.t) list) :
    (string * Graph.t) list =
  let module Ftree = Magis_ftree.Ftree in
  let module Fission = Magis_ftree.Fission in
  let out = ref [] and count = ref 0 in
  List.iter
    (fun (name, g) ->
      let order = Graph.topo_order g in
      let hotspots = Lifetime.hotspots (Lifetime.analyze g order) in
      let t = Ftree.construct g ~hotspots in
      for i = 0 to Ftree.n_entries t - 1 do
        List.iter
          (fun n ->
            if !count < max_graphs then
              let f = Fission.with_n (Ftree.fission_at t i) n in
              if Fission.is_valid g f then begin
                let e = Fission.expand g f in
                if Diagnostic.is_clean (Verify.graph e.Fission.graph) then begin
                  incr count;
                  out :=
                    (Printf.sprintf "%s-f%dx%d" name i n, e.Fission.graph)
                    :: !out
                end
              end)
          [ 2; 3 ]
      done)
    corpus;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Built-in corpora                                                    *)
(* ------------------------------------------------------------------ *)

(** Long elementwise chains with skip connections: cheap tensors whose
    consumers sit far apart in any topological schedule.  These are the
    subjects the D-Trans rules (remat/swap and their compound sweeps)
    actually fire on — the zoo graphs are too shallow for the
    distance-gated sweeps — so they back those rules' waivers with
    differential coverage. *)
let elementwise_corpus () : (string * Graph.t) list =
  let sh = Shape.create [ 32; 32 ] in
  let chain g n seed =
    let rec go g v i =
      if i = 0 then (g, v)
      else
        let g, v = Graph.add g (Op.Unary Op.Relu) [ v ] in
        go g v (i - 1)
    in
    go g seed n
  in
  let skip =
    let g = Graph.empty in
    let g, x = Graph.add_input ~label:"x" g Op.Placeholder sh in
    let g, a = Graph.add ~label:"a" g (Op.Unary Op.Exp) [ x ] in
    let g, b = Graph.add ~label:"b" g (Op.Unary Op.Neg) [ x ] in
    let g, c0 = Graph.add g (Op.Binary Op.Add) [ a; b ] in
    let g, c = chain g 10 c0 in
    let g, e1 = Graph.add g (Op.Binary Op.Add) [ c; a ] in
    let g, _ = Graph.add g (Op.Binary Op.Add) [ e1; b ] in
    g
  in
  let fork =
    let g = Graph.empty in
    let g, x = Graph.add_input ~label:"x" g Op.Placeholder sh in
    let g, v = Graph.add ~label:"v" g (Op.Unary Op.Exp) [ x ] in
    let g, w = Graph.add g (Op.Unary Op.Sqrt) [ v ] in
    let g, c = chain g 9 w in
    let g, _ = Graph.add g (Op.Binary Op.Mul) [ v; c ] in
    g
  in
  [ ("ew-skip", skip); ("ew-fork", fork) ]

(** Graphs that already contain Store/Load seams (what a prior swap
    application leaves behind), at depths where the swap-family rules
    both fire and invert: subjects for de-swap and the sweep rules. *)
let swap_corpus () : (string * Graph.t) list =
  let sh = Shape.create [ 16; 64 ] in
  let seam g v =
    let g, s = Graph.add g Op.Store [ v ] in
    Graph.add g Op.Load [ s ]
  in
  let swapped =
    let g = Graph.empty in
    let g, x = Graph.add_input ~label:"x" g Op.Placeholder sh in
    let g, a = Graph.add ~label:"a" g (Op.Unary Op.Exp) [ x ] in
    let g, l = seam g a in
    let rec go g v i = if i = 0 then (g, v)
      else let g, v = Graph.add g (Op.Unary Op.Relu) [ v ] in go g v (i - 1)
    in
    let g, c = go g a 8 in
    let g, _ = Graph.add g (Op.Binary Op.Add) [ c; l ] in
    g
  in
  let double =
    let g = Graph.empty in
    let g, x = Graph.add_input ~label:"x" g Op.Placeholder sh in
    let g, a = Graph.add ~label:"a" g (Op.Unary Op.Exp) [ x ] in
    let g, b = Graph.add ~label:"b" g (Op.Unary Op.Neg) [ a ] in
    let g, la = seam g a in
    let g, lb = seam g b in
    let rec go g v i = if i = 0 then (g, v)
      else let g, v = Graph.add g (Op.Unary Op.Relu) [ v ] in go g v (i - 1)
    in
    let g, c = go g b 9 in
    let g, e = Graph.add g (Op.Binary Op.Add) [ c; la ] in
    let g, _ = Graph.add g (Op.Binary Op.Add) [ e; lb ] in
    g
  in
  [ ("swapped", swapped); ("swapped-double", double) ]

(** The union the waiver-coverage check and the CLI lint run over. *)
let builtin_corpus () = elementwise_corpus () @ swap_corpus ()

let pp_report ppf (r : report) =
  let by_rule = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let n, ni, ds =
        Option.value ~default:(0, 0, [])
          (Hashtbl.find_opt by_rule e.rule)
      in
      Hashtbl.replace by_rule e.rule
        (n + e.n_rewrites, ni + e.n_interp, ds @ e.diags))
    r.entries;
  let rules =
    List.sort_uniq compare (List.map (fun e -> e.rule) r.entries)
  in
  Fmt.pf ppf "@[<v>%-22s %9s %8s %7s %9s@," "rule" "rewrites" "checked"
    "errors" "warnings";
  List.iter
    (fun rule ->
      let n, ni, ds = Hashtbl.find by_rule rule in
      Fmt.pf ppf "%-22s %9d %8d %7d %9d@," rule n ni
        (List.length (Diagnostic.errors ds))
        (List.length (List.filter (fun d -> not (Diagnostic.is_error d)) ds)))
    rules;
  Fmt.pf ppf "total: %d rule(s), %d rewrite(s), %d error(s), %d warning(s)"
    r.n_rules r.n_rewrites r.n_errors r.n_warnings;
  let errs =
    Diagnostic.errors (List.concat_map (fun e -> e.diags) r.entries)
  in
  if errs <> [] then Fmt.pf ppf "@,%a" Diagnostic.pp_report errs;
  Fmt.pf ppf "@]"
