(** Symbolic rule-soundness verifier (translation validation for
    M-Rules).

    Every rule carries a {!Magis_rules.Rule.Spec.decl}: either symbolic
    pre/post templates ([Sound]) or an explicit [Waiver].  For each
    template this pass proves, for {e every} assignment of the dimension
    variables satisfying the guards:

    - {b out-shape / out-dtype} — each rewritten result's symbolic shape
      and dtype match its replacement's, via the abstract operator
      inference {!Magis_ir.Op.Abstract} over {!Symshape};
    - {b memory-delta} — the declared element delta equals the RHS-added
      minus LHS-removed totals ([Store] outputs count 0, host-side);
    - {b dep-refinement} — no must-precede ordering between surviving
      entities is lost: each is preserved by the kept node's RHS
      counterpart or by a declared recomputation ([same_as]), checked
      both symbolically (template ancestors) and on the grounded pair
      via {!Liveness.must_precede};
    - {b ground-conformance} — instantiating the witness and running the
      rule's real [apply] reproduces the declared RHS up to isomorphism
      ({!Magis_ir.Wl_hash.equal_structure}), and that rewrite passes the
      full differential lint ({!Rule_lint.lint_rewrite}).

    Waived rules must instead show differential coverage: they must fire
    (and lint clean) on the supplied corpus, else a
    ["waiver-no-coverage"] error marks the waiver unbacked. *)

open Magis_rules

val pass : string
(** Diagnostic pass name, ["rule-sound"]. *)

type status =
  | Proven of int  (** number of templates verified *)
  | Waived of string  (** waiver reason *)

type entry = { rule : string; status : status; diags : Diagnostic.t list }

type report = {
  entries : entry list;
  n_proven : int;
  n_waived : int;
  n_errors : int;
  n_warnings : int;
}

val check_rule : ?corpus:(string * Magis_ir.Graph.t) list -> Rule.t -> entry
(** Verify one rule.  [corpus] backs waiver-coverage checks (default
    empty: any waived rule is then reported unbacked). *)

val check_rules :
  ?corpus:(string * Magis_ir.Graph.t) list -> Rule.t list -> report

val is_clean : report -> bool
(** No errors. *)

val unbacked_waivers : report -> string list
(** Rules whose waiver lacks corpus coverage (drives the CLI's distinct
    exit code). *)

val pp_entry : Format.formatter -> entry -> unit
val pp_report : Format.formatter -> report -> unit
