(** Symbolic shape domain (see the interface).

    Extents are multivariate polynomials with integer coefficients over
    dimension variables, kept in a canonical normal form: a map from
    monomials (sorted variable lists, repetition = power) to non-zero
    coefficients.  Equality of normal forms decides equality of the
    symbolic extents; entailment exploits only that every variable is at
    least 1. *)

open Magis_ir
module Spec = Magis_rules.Rule.Spec

module Mono = struct
  type t = string list (* sorted, with multiplicity *)

  let compare = compare
end

module Mmap = Map.Make (Mono)

type t = int Mmap.t

let zero = Mmap.empty
let const n = if n = 0 then zero else Mmap.singleton [] n
let var x = Mmap.singleton [ x ] 1

let add (a : t) (b : t) : t =
  Mmap.union (fun _ ca cb -> if ca + cb = 0 then None else Some (ca + cb)) a b

let scale k (a : t) : t =
  if k = 0 then zero else Mmap.map (fun c -> c * k) a

let sub a b = add a (scale (-1) b)

let mul (a : t) (b : t) : t =
  Mmap.fold
    (fun ma ca acc ->
      Mmap.fold
        (fun mb cb acc ->
          let m = List.sort compare (ma @ mb) in
          add acc (if ca * cb = 0 then zero else Mmap.singleton m (ca * cb)))
        b acc)
    a zero

let equal = Mmap.equal Int.equal

let to_const (p : t) : int option =
  if Mmap.is_empty p then Some 0
  else if Mmap.cardinal p = 1 then Mmap.find_opt [] p
  else None

let rec of_sdim : Spec.sdim -> t = function
  | Spec.K n -> const n
  | Spec.V x -> var x
  | Spec.Add (a, b) -> add (of_sdim a) (of_sdim b)
  | Spec.Sub (a, b) -> sub (of_sdim a) (of_sdim b)
  | Spec.Mul (a, b) -> mul (of_sdim a) (of_sdim b)

let vars (p : t) : string list =
  Mmap.fold (fun m _ acc -> m @ acc) p []
  |> List.sort_uniq compare

let eval ~env (p : t) : int =
  Mmap.fold
    (fun m c acc ->
      let v =
        List.fold_left
          (fun acc x ->
            match List.assoc_opt x env with
            | Some n -> acc * n
            | None -> invalid_arg (Printf.sprintf "Symshape.eval: unbound %s" x))
          1 m
      in
      acc + (c * v))
    p 0

(* ------------------------------------------------------------------ *)
(* Entailment                                                         *)
(* ------------------------------------------------------------------ *)

(** [p >= 0] for every assignment with all variables [>= 1]: every
    non-constant monomial has a non-negative coefficient (so [p] is
    minimized at the all-ones point) and the value there — the sum of
    all coefficients — is non-negative. *)
let nonneg_base (p : t) : bool =
  Mmap.for_all (fun m c -> m = [] || c >= 0) p
  && Mmap.fold (fun _ c acc -> acc + c) p 0 >= 0

let guard_polys guards =
  List.filter_map
    (function
      | Spec.Ge (a, b) -> Some (sub (of_sdim a) (of_sdim b))
      | Spec.Divides _ -> None)
    guards

(** [geq ~guards p q]: provable [p >= q].  Base criterion on [p - q];
    failing that, subtract small positive multiples of guard
    inequalities (each [Ge (a, b)] contributes [a - b >= 0]) and retry —
    enough for the affine side conditions rule templates carry. *)
let geq ~guards (p : t) (q : t) : bool =
  let d = sub p q in
  nonneg_base d
  || List.exists
       (fun gp ->
         List.exists (fun lam -> nonneg_base (sub d (scale lam gp))) [ 1; 2 ])
       (guard_polys guards)

(** Provable [c | p]: every coefficient divisible by [c] (so the value
    is divisible for every assignment), or a [Divides] guard asserting a
    multiple of [c] divides this exact extent. *)
let divides ~guards c (p : t) : bool =
  c > 0
  && (Mmap.for_all (fun _ coef -> coef mod c = 0) p
     || List.exists
          (function
            | Spec.Divides (k, e) -> k mod c = 0 && equal p (of_sdim e)
            | Spec.Ge _ -> false)
          guards)

(** Exact quotient, when every coefficient is divisible ([divides] via a
    guard proves divisibility but cannot name the quotient). *)
let div_exact c (p : t) : t option =
  if c > 0 && Mmap.for_all (fun _ coef -> coef mod c = 0) p then
    Some (Mmap.map (fun coef -> coef / c) p)
  else None

(** Prime factors shared by {e every} value of the extent — the factors
    ({!Shape.factorize}) of the GCD of the coefficients, the symbolic
    counterpart of the F-Tree's candidate fission numbers. *)
let const_factors (p : t) : int list =
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let g = Mmap.fold (fun _ c acc -> gcd (abs c) acc) p 0 in
  if g <= 1 then [] else Shape.factorize g

let guard_sat ~env (g : Spec.guard) : bool =
  match g with
  | Spec.Ge (a, b) -> eval ~env (of_sdim a) >= eval ~env (of_sdim b)
  | Spec.Divides (c, e) -> c > 0 && eval ~env (of_sdim e) mod c = 0

let pp ppf (p : t) =
  if Mmap.is_empty p then Fmt.string ppf "0"
  else
    let mono ppf (m, c) =
      match m with
      | [] -> Fmt.int ppf c
      | _ ->
          if c <> 1 then Fmt.pf ppf "%d*" c;
          Fmt.(list ~sep:(any "*") string) ppf m
    in
    Fmt.(list ~sep:(any " + ") mono) ppf (Mmap.bindings p)

let to_string p = Fmt.str "%a" pp p

(* ------------------------------------------------------------------ *)
(* DIM_DOMAIN instantiation                                           *)
(* ------------------------------------------------------------------ *)

(** Symbolic element type with provable (structural) equality. *)
type sdt = Spec.sdtype

module type DOMAIN =
  Op.DIM_DOMAIN with type dim = t and type dt = sdt

(** The symbolic dimension domain under the given guards, ready to feed
    {!Op.Abstract}. *)
let dim_domain guards : (module DOMAIN) =
  (module struct
    type dim = t
    type dt = sdt

    let const = const
    let add = add
    let sub = sub
    let mul = mul
    let equal = equal
    let geq a b = geq ~guards a b
    let div_exact a c = div_exact c a
    let to_const = to_const
    let dt_equal (a : sdt) b = a = b
  end)
