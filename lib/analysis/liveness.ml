(** Schedule-independent liveness (see the interface).

    Reachability is kept as one ancestor and one descendant bitset per
    node, built by a single pass in topological order (ancestors) and
    its reverse (descendants): [anc v = ∪ (anc p ∪ {p})] over operands
    [p].  Each set costs [n/64] words, so the whole analysis is
    [O(V·E/64)] words of bit-ops — a few microseconds at model-zoo
    scale — and every query below is a constant-time bit test.

    {!delta_update} rebuilds the analysis for a single-rewrite child
    graph in O(Δ): surviving nodes keep their dense slots (their rows
    are shared with the parent by reference — rows are never mutated
    after construction), and only rows reachable from the structural
    diff are recomputed.  Slots of removed nodes become holes
    ([order.(i) = -1], reused by new nodes first); because any row
    containing a removed node's bit necessarily belongs to a dirty node
    (the removed node was its ancestor/descendant through edges the
    diff saw), clean rows never carry stale bits at reused slots. *)

open Magis_ir
open Magis_cost

type t = {
  g : Graph.t;
  order : int array;  (** slot -> node id; [-1] marks a hole *)
  index : (int, int) Hashtbl.t;  (** node id -> dense slot *)
  anc : Bytes.t array;  (** per slot: ancestor bitset (over slots) *)
  des : Bytes.t array;  (** per slot: descendant bitset *)
  n_anc : int array;
  n_des : int array;
  sizes : int array;  (** device bytes per slot *)
  is_weight : bool array;
  is_sink : bool array;  (** graph output: no consumers, not an input *)
  weight_bytes : int;
  pinned_bytes : int;
  n_live : int;  (** number of real nodes (slots minus holes) *)
}

(* ------------------------------------------------------------------ *)
(* Bitsets                                                             *)
(* ------------------------------------------------------------------ *)

let bitset n = Bytes.make ((n + 7) / 8) '\000'

(* Rows of different generations can have different widths (a delta
   update widens when new nodes outnumber freed slots), so reads are
   bounds-checked — a bit beyond a row's width is simply absent — and
   unions iterate the shorter operand. *)
let bit_get b i =
  let k = i lsr 3 in
  k < Bytes.length b
  && Char.code (Bytes.unsafe_get b k) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.unsafe_set b (i lsr 3)
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))

let bit_union ~into src =
  for k = 0 to min (Bytes.length into) (Bytes.length src) - 1 do
    Bytes.unsafe_set into k
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get into k)
         lor Char.code (Bytes.unsafe_get src k)))
  done

let popcount_byte =
  let tbl = Array.init 256 (fun i ->
      let rec go i acc = if i = 0 then acc else go (i lsr 1) (acc + (i land 1)) in
      go i 0)
  in
  fun c -> tbl.(Char.code c)

let bit_count b =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte c) b;
  !acc

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(** Size/weight/pinned side tables, shared by {!compute} and
    {!delta_update} (both recompute them in full: O(n) array fills,
    negligible next to the bitset work, and the child's [size_of] can
    differ from the parent's — F-Tree accounting — so parent values
    cannot be reused). *)
let side_tables ~size_of (g : Graph.t) (order : int array) =
  let cap = Array.length order in
  let sizes = Array.make cap 0 in
  let is_weight = Array.make cap false in
  let is_sink = Array.make cap false in
  let weight_bytes = ref 0 and pinned_bytes = ref 0 in
  for i = 0 to cap - 1 do
    let v = order.(i) in
    if v >= 0 then begin
      sizes.(i) <- size_of v;
      is_weight.(i) <- Op.is_weight (Graph.op g v);
      is_sink.(i) <-
        Graph.out_degree g v = 0 && not (Op.is_input (Graph.op g v));
      if is_weight.(i) then weight_bytes := !weight_bytes + sizes.(i);
      if is_weight.(i) || is_sink.(i) then
        pinned_bytes := !pinned_bytes + sizes.(i)
    end
  done;
  (sizes, is_weight, is_sink, !weight_bytes, !pinned_bytes)

let compute ?size_of (g : Graph.t) : t =
  let size_of =
    match size_of with Some f -> f | None -> Lifetime.default_size g
  in
  let order = Array.of_list (Graph.topo_order g) in
  let n = Array.length order in
  let index = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.replace index v i) order;
  let idx v = Hashtbl.find index v in
  let anc = Array.init n (fun _ -> bitset n) in
  let des = Array.init n (fun _ -> bitset n) in
  (* ancestors: forward pass in topological order *)
  for i = 0 to n - 1 do
    List.iter
      (fun p ->
        let pi = idx p in
        bit_union ~into:anc.(i) anc.(pi);
        bit_set anc.(i) pi)
      (Graph.pre g order.(i))
  done;
  (* descendants: backward pass *)
  for i = n - 1 downto 0 do
    List.iter
      (fun s ->
        let si = idx s in
        bit_union ~into:des.(i) des.(si);
        bit_set des.(i) si)
      (Graph.suc g order.(i))
  done;
  let sizes, is_weight, is_sink, weight_bytes, pinned_bytes =
    side_tables ~size_of g order
  in
  {
    g;
    order;
    index;
    anc;
    des;
    n_anc = Array.map bit_count anc;
    n_des = Array.map bit_count des;
    sizes;
    is_weight;
    is_sink;
    weight_bytes;
    pinned_bytes;
    n_live = n;
  }

(* ------------------------------------------------------------------ *)
(* Delta update                                                        *)
(* ------------------------------------------------------------------ *)

type delta = {
  d_dirty : Util.Int_set.t;
  d_adj_changed : Util.Int_set.t;
}

let empty_delta =
  { d_dirty = Util.Int_set.empty; d_adj_changed = Util.Int_set.empty }

let delta_update ?size_of ?(max_dirty = max_int) (t : t) (g' : Graph.t)
    ~(mutated : Util.Int_set.t) : (t * delta) option =
  let size_of =
    match size_of with Some f -> f | None -> Lifetime.default_size g'
  in
  if t.g == g' then begin
    (* pure F-Tree move: same graph object, only virtual sizes change *)
    let sizes, is_weight, is_sink, weight_bytes, pinned_bytes =
      side_tables ~size_of g' t.order
    in
    Some
      ( { t with sizes; is_weight; is_sink; weight_bytes; pinned_bytes },
        empty_delta )
  end
  else begin
    (* structural diff at the id level: nodes added, nodes removed,
       survivors whose operand array changed.  Operand arrays are
       compared raw — an order-only permutation counts as changed,
       which merely over-seeds the dirty set (sound). *)
    let removed =
      Array.fold_left
        (fun acc v -> if v >= 0 && not (Graph.mem g' v) then v :: acc else acc)
        [] t.order
    in
    let new_ids = ref [] and pred_changed = ref [] in
    List.iter
      (fun v ->
        if not (Hashtbl.mem t.index v) then new_ids := v :: !new_ids
        else if (Graph.node t.g v).Graph.inputs <> (Graph.node g' v).Graph.inputs
        then pred_changed := v :: !pred_changed)
      (Graph.node_ids g');
    let new_ids = List.sort compare !new_ids in
    (* belt and braces: a rule that rewired a surviving node counts as
       changed even if the diff above somehow missed it *)
    let pred_changed =
      Util.Int_set.fold
        (fun v acc ->
          if Graph.mem g' v && Hashtbl.mem t.index v then v :: acc else acc)
        mutated !pred_changed
    in
    (* slot assignment: survivors keep their slots, new nodes fill the
       freed slots (both sides sorted, so the assignment is
       deterministic), overflow appends.  Capacity only grows. *)
    let index' = Hashtbl.copy t.index in
    List.iter (Hashtbl.remove index') removed;
    let freed =
      ref (List.sort compare (List.map (fun v -> Hashtbl.find t.index v) removed))
    in
    let next = ref (Array.length t.order) in
    List.iter
      (fun v ->
        match !freed with
        | s :: rest ->
            freed := rest;
            Hashtbl.replace index' v s
        | [] ->
            Hashtbl.replace index' v !next;
            incr next)
      new_ids;
    let cap = !next in
    let order' = Array.make cap (-1) in
    Hashtbl.iter (fun v i -> order'.(i) <- v) index';
    let idx' v = Hashtbl.find index' v in
    (* dirty closures, dense over slots.  [dirty_anc] = nodes whose
       ancestor row may change = descendants (in g') of the anc seeds;
       [dirty_des] = ancestors (in g') of nodes whose successor list
       changed.  BFS with an explicit stack; bail out once the union
       exceeds [max_dirty] — the caller falls back to a scratch
       analysis, which is cheaper than a near-total row rebuild. *)
    let dirty_anc = Array.make cap false in
    let dirty_des = Array.make cap false in
    let n_dirty = ref 0 in
    let exception Too_dirty in
    (* [mark dir other i]: enter slot [i] into direction [dir]; count it
       toward the union exactly when the other direction hasn't already *)
    let mark dir other i =
      if dir.(i) then false
      else begin
        dir.(i) <- true;
        if not other.(i) then begin
          incr n_dirty;
          if !n_dirty > max_dirty then raise Too_dirty
        end;
        true
      end
    in
    let bfs dir other seeds step =
      let stack = ref [] in
      List.iter
        (fun i -> if mark dir other i then stack := i :: !stack)
        seeds;
      let rec go () =
        match !stack with
        | [] -> ()
        | v :: rest ->
            stack := rest;
            step order'.(v) (fun w ->
                let wi = idx' w in
                if mark dir other wi then stack := wi :: !stack);
            go ()
      in
      go ()
    in
    let attempt () =
      (* anc seeds: new nodes and rewired survivors *)
      let anc_seed_slots =
        List.rev_append
          (List.rev_map idx' new_ids)
          (List.map idx' pred_changed)
      in
      (* succ-changed seeds: surviving preds of added, removed and
         rewired nodes — plus the anc seeds themselves (a new node has
         no parent row to inherit; a rewired node's row may change) *)
      let adj = ref anc_seed_slots in
      let surviving_preds g v =
        Array.iter
          (fun p -> if Graph.mem g' p then adj := idx' p :: !adj)
          (Graph.node g v).Graph.inputs
      in
      List.iter (surviving_preds g') new_ids;
      List.iter (surviving_preds t.g) removed;
      List.iter
        (fun v ->
          surviving_preds t.g v;
          surviving_preds g' v)
        pred_changed;
      bfs dirty_anc dirty_des anc_seed_slots (fun v k ->
          Util.Int_set.iter k (Graph.succ_set g' v));
      bfs dirty_des dirty_anc !adj (fun v k ->
          Array.iter k (Graph.node g' v).Graph.inputs);
      Some !adj
    in
    match (try attempt () with Too_dirty -> None) with
    | None -> None
    | Some adj_slots ->
        let hole_row = Bytes.create 0 in
        let anc' = Array.make cap hole_row and des' = Array.make cap hole_row in
        let n_anc' = Array.make cap 0 and n_des' = Array.make cap 0 in
        (* clean rows: shared with the parent by reference (never
           mutated).  The two directions are independent: a node may
           need a fresh descendant row while its ancestor row is
           provably unchanged. *)
        for i = 0 to cap - 1 do
          if order'.(i) >= 0 then begin
            if not dirty_anc.(i) then begin
              anc'.(i) <- t.anc.(i);
              n_anc'.(i) <- t.n_anc.(i)
            end;
            if not dirty_des.(i) then begin
              des'.(i) <- t.des.(i);
              n_des'.(i) <- t.n_des.(i)
            end
          end
        done;
        (* dirty rows: recomputed by memoised DFS (dependencies first),
           reading clean parent rows and freshly built dirty ones.  The
           graph is a DAG, so the recursion terminates. *)
        let done_anc = Array.make cap false in
        let rec fix_anc v =
          let i = idx' v in
          if dirty_anc.(i) && not done_anc.(i) then begin
            done_anc.(i) <- true;
            let preds = (Graph.node g' v).Graph.inputs in
            Array.iter fix_anc preds;
            let row = bitset cap in
            Array.iter
              (fun p ->
                let pi = idx' p in
                bit_union ~into:row anc'.(pi);
                bit_set row pi)
              preds;
            anc'.(i) <- row;
            n_anc'.(i) <- bit_count row
          end
        in
        let done_des = Array.make cap false in
        let rec fix_des v =
          let i = idx' v in
          if dirty_des.(i) && not done_des.(i) then begin
            done_des.(i) <- true;
            let succs = Graph.succ_set g' v in
            Util.Int_set.iter fix_des succs;
            let row = bitset cap in
            Util.Int_set.iter
              (fun s ->
                let si = idx' s in
                bit_union ~into:row des'.(si);
                bit_set row si)
              succs;
            des'.(i) <- row;
            n_des'.(i) <- bit_count row
          end
        in
        for i = 0 to cap - 1 do
          if order'.(i) >= 0 then begin
            if dirty_anc.(i) then fix_anc order'.(i);
            if dirty_des.(i) then fix_des order'.(i)
          end
        done;
        let sizes, is_weight, is_sink, weight_bytes, pinned_bytes =
          side_tables ~size_of g' order'
        in
        let dirty = ref Util.Int_set.empty in
        for i = 0 to cap - 1 do
          if order'.(i) >= 0 && (dirty_anc.(i) || dirty_des.(i)) then
            dirty := Util.Int_set.add order'.(i) !dirty
        done;
        let adj_changed =
          List.fold_left
            (fun acc i ->
              if order'.(i) >= 0 then Util.Int_set.add order'.(i) acc else acc)
            Util.Int_set.empty adj_slots
        in
        Some
          ( {
              g = g';
              order = order';
              index = index';
              anc = anc';
              des = des';
              n_anc = n_anc';
              n_des = n_des';
              sizes;
              is_weight;
              is_sink;
              weight_bytes;
              pinned_bytes;
              n_live = Graph.n_nodes g';
            },
            { d_dirty = !dirty; d_adj_changed = adj_changed } )
  end

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let graph t = t.g
let length t = t.n_live
let mem t v = Hashtbl.mem t.index v
let idx t v = Hashtbl.find t.index v
let size t v = t.sizes.(idx t v)
let weight_bytes t = t.weight_bytes
let pinned_bytes t = t.pinned_bytes
let is_weight t v = t.is_weight.(idx t v)

let pinned t v =
  let i = idx t v in
  t.is_weight.(i) || t.is_sink.(i)

let must_precede t u v = bit_get t.anc.(idx t v) (idx t u)
let earliest t v = t.n_anc.(idx t v)
let latest t v = t.n_live - 1 - t.n_des.(idx t v)
let mobility t v = latest t v - earliest t v

let envelope t v =
  let lo = earliest t v in
  let hi =
    if pinned t v then t.n_live - 1
    else
      List.fold_left (fun acc c -> max acc (latest t c)) lo (Graph.suc t.g v)
  in
  (lo, hi)

(** The cut at [v] (see the interface): weights, [v]'s own output, and
    ancestors [w] with a consumer forced at-or-after [v].  Every term is
    live at [v]'s step in every schedule — the bound is admissible. *)
let always_live_bytes t v =
  let i = idx t v in
  let acc = ref t.weight_bytes in
  if not t.is_weight.(i) then acc := !acc + t.sizes.(i);
  let anc_v = t.anc.(i) and des_v = t.des.(i) in
  for w = 0 to Array.length t.order - 1 do
    if (not t.is_weight.(w)) && bit_get anc_v w then
      let held =
        List.exists
          (fun c ->
            let ci = idx t c in
            ci = i || bit_get des_v ci)
          (Graph.suc t.g t.order.(w))
      in
      if held then acc := !acc + t.sizes.(w)
  done;
  !acc

let fold f t init =
  Array.fold_left (fun acc v -> if v >= 0 then f v acc else acc) init t.order

let slot_set t row =
  let acc = ref Util.Int_set.empty in
  for w = 0 to Array.length t.order - 1 do
    if t.order.(w) >= 0 && bit_get row w then
      acc := Util.Int_set.add t.order.(w) !acc
  done;
  !acc

let ancestors t v = slot_set t t.anc.(idx t v)
let descendants t v = slot_set t t.des.(idx t v)

(* ------------------------------------------------------------------ *)
(* Equivalence oracle                                                  *)
(* ------------------------------------------------------------------ *)

let equivalent (a : t) (b : t) : bool =
  let ids t = List.sort compare (fold (fun v acc -> v :: acc) t []) in
  a.n_live = b.n_live && ids a = ids b
  && a.weight_bytes = b.weight_bytes
  && a.pinned_bytes = b.pinned_bytes
  && fold
       (fun v ok ->
         ok
         && size a v = size b v
         && is_weight a v = is_weight b v
         && pinned a v = pinned b v
         && Util.Int_set.equal (ancestors a v) (ancestors b v)
         && Util.Int_set.equal (descendants a v) (descendants b v))
       a true
