(** Schedule-independent liveness (see the interface).

    Reachability is kept as one ancestor and one descendant bitset per
    node, built by a single pass in topological order (ancestors) and
    its reverse (descendants): [anc v = ∪ (anc p ∪ {p})] over operands
    [p].  Each set costs [n/64] words, so the whole analysis is
    [O(V·E/64)] words of bit-ops — a few microseconds at model-zoo
    scale — and every query below is a constant-time bit test. *)

open Magis_ir
open Magis_cost

type t = {
  g : Graph.t;
  order : int array;  (** deterministic topological order *)
  index : (int, int) Hashtbl.t;  (** node id -> dense index *)
  anc : Bytes.t array;  (** per dense index: ancestor bitset *)
  des : Bytes.t array;  (** per dense index: descendant bitset *)
  n_anc : int array;
  n_des : int array;
  sizes : int array;  (** device bytes per dense index *)
  is_weight : bool array;
  is_sink : bool array;  (** graph output: no consumers, not an input *)
  weight_bytes : int;
  pinned_bytes : int;
}

(* ------------------------------------------------------------------ *)
(* Bitsets                                                             *)
(* ------------------------------------------------------------------ *)

let bitset n = Bytes.make ((n + 7) / 8) '\000'

let bit_get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.unsafe_set b (i lsr 3)
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))

let bit_union ~into src =
  for k = 0 to Bytes.length into - 1 do
    Bytes.unsafe_set into k
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get into k)
         lor Char.code (Bytes.unsafe_get src k)))
  done

let popcount_byte =
  let tbl = Array.init 256 (fun i ->
      let rec go i acc = if i = 0 then acc else go (i lsr 1) (acc + (i land 1)) in
      go i 0)
  in
  fun c -> tbl.(Char.code c)

let bit_count b =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte c) b;
  !acc

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let compute ?size_of (g : Graph.t) : t =
  let size_of =
    match size_of with Some f -> f | None -> Lifetime.default_size g
  in
  let order = Array.of_list (Graph.topo_order g) in
  let n = Array.length order in
  let index = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.replace index v i) order;
  let idx v = Hashtbl.find index v in
  let anc = Array.init n (fun _ -> bitset n) in
  let des = Array.init n (fun _ -> bitset n) in
  (* ancestors: forward pass in topological order *)
  for i = 0 to n - 1 do
    List.iter
      (fun p ->
        let pi = idx p in
        bit_union ~into:anc.(i) anc.(pi);
        bit_set anc.(i) pi)
      (Graph.pre g order.(i))
  done;
  (* descendants: backward pass *)
  for i = n - 1 downto 0 do
    List.iter
      (fun s ->
        let si = idx s in
        bit_union ~into:des.(i) des.(si);
        bit_set des.(i) si)
      (Graph.suc g order.(i))
  done;
  let sizes = Array.map size_of order in
  let is_weight =
    Array.map (fun v -> Op.is_weight (Graph.op g v)) order
  in
  let is_sink =
    Array.map
      (fun v ->
        Graph.out_degree g v = 0 && not (Op.is_input (Graph.op g v)))
      order
  in
  let weight_bytes = ref 0 and pinned_bytes = ref 0 in
  for i = 0 to n - 1 do
    if is_weight.(i) then weight_bytes := !weight_bytes + sizes.(i);
    if is_weight.(i) || is_sink.(i) then
      pinned_bytes := !pinned_bytes + sizes.(i)
  done;
  {
    g;
    order;
    index;
    anc;
    des;
    n_anc = Array.map bit_count anc;
    n_des = Array.map bit_count des;
    sizes;
    is_weight;
    is_sink;
    weight_bytes = !weight_bytes;
    pinned_bytes = !pinned_bytes;
  }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let graph t = t.g
let length t = Array.length t.order
let idx t v = Hashtbl.find t.index v
let size t v = t.sizes.(idx t v)
let weight_bytes t = t.weight_bytes
let pinned_bytes t = t.pinned_bytes

let pinned t v =
  let i = idx t v in
  t.is_weight.(i) || t.is_sink.(i)

let must_precede t u v = bit_get t.anc.(idx t v) (idx t u)
let earliest t v = t.n_anc.(idx t v)
let latest t v = Array.length t.order - 1 - t.n_des.(idx t v)
let mobility t v = latest t v - earliest t v

let envelope t v =
  let lo = earliest t v in
  let hi =
    if pinned t v then Array.length t.order - 1
    else
      List.fold_left (fun acc c -> max acc (latest t c)) lo (Graph.suc t.g v)
  in
  (lo, hi)

(** The cut at [v] (see the interface): weights, [v]'s own output, and
    ancestors [w] with a consumer forced at-or-after [v].  Every term is
    live at [v]'s step in every schedule — the bound is admissible. *)
let always_live_bytes t v =
  let i = idx t v in
  let acc = ref t.weight_bytes in
  if not t.is_weight.(i) then acc := !acc + t.sizes.(i);
  let anc_v = t.anc.(i) and des_v = t.des.(i) in
  for w = 0 to Array.length t.order - 1 do
    if (not t.is_weight.(w)) && bit_get anc_v w then
      let held =
        List.exists
          (fun c ->
            let ci = idx t c in
            ci = i || bit_get des_v ci)
          (Graph.suc t.g t.order.(w))
      in
      if held then acc := !acc + t.sizes.(w)
  done;
  !acc

let fold f t init = Array.fold_left (fun acc v -> f v acc) init t.order
