(** Global verification switch (see the interface). *)

let flag = ref (Sys.getenv_opt "MAGIS_VERIFY" <> None)
let enabled () = !flag
let set b = flag := b

let assert_state ~what g order =
  let diags = Verify.graph g @ Sched_check.schedule g order in
  match Diagnostic.errors diags with
  | [] -> ()
  | errs ->
      failwith
        (Fmt.str "%s failed verification:@.%a" what Diagnostic.pp_report errs)

let assert_bounds ?(exact = true) ~what ?size_of g ~peak () =
  let diags =
    if exact then Membound.check (Membound.compute ?size_of g) ~peak
    else Membound.quick_check ?size_of g ~peak
  in
  match Diagnostic.errors diags with
  | [] -> ()
  | errs ->
      failwith
        (Fmt.str "%s violated the memory-bound invariant:@.%a" what
           Diagnostic.pp_report errs)

let assert_interference ?strategy ~what ?size_of g order =
  let r = Interfere.check ?strategy ?size_of g order in
  match Diagnostic.errors r.Interfere.diags with
  | [] -> ()
  | errs ->
      failwith
        (Fmt.str "%s has allocator interference:@.%a" what
           Diagnostic.pp_report errs)

let schedule ?(what = "schedule") g order =
  if !flag then assert_state ~what g order;
  order
