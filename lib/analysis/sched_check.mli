(** Legality checker for [(graph, schedule)] pairs.

    A schedule is a permutation of the node set; [schedule g order]
    validates, returning diagnostics instead of raising:

    - ["unknown-node"]: a scheduled id that is not in the graph;
    - ["double-schedule"]: an id scheduled more than once;
    - ["missing-node"]: a graph node never scheduled;
    - ["operand-order"]: an operand scheduled at/after its consumer;
    - ["load-source"] / ["load-before-store"]: a [Load] whose operand is
      not a [Store], or that runs before its [Store] (swapped tensors
      must be written to the host before they are read back);
    - ["use-after-free"]: a consumer positioned after the producer's
      {!Magis_cost.Lifetime} free step (cross-validates the lifetime
      analysis against the edge set; only run once the checks above are
      clean, since the analysis assumes a well-formed permutation);
    - ["use-after-store"] (warning): a direct consumer of a swapped-out
      tensor scheduled after the [Store] — legal for the simulator (the
      tensor stays resident until its last direct use) but it defeats
      the swap, and a backend that frees at [Store] would fault;
    - ["remat-divergence"]: re-materialization clones (same operator,
      same operand slots) whose {!Magis_ir.Wl_hash.node_labels} disagree
      — a clone drifted from its original. *)

open Magis_ir

val schedule : Graph.t -> int list -> Diagnostic.t list

(** [assert_ok ?what g order] raises [Failure] with a rendered report
    when {!schedule} finds errors. *)
val assert_ok : ?what:string -> Graph.t -> int list -> unit
