(** Allocator interference checker.

    Replays the static memory plan ({!Magis_cost.Allocator}) for a graph
    under a schedule and proves, buffer by buffer, that the plan is
    consistent with the lifetime analysis it was derived from:

    - {b interval-mismatch / size-mismatch} — each placement's live
      steps and byte size restate {!Magis_cost.Lifetime} exactly;
    - {b missing-placement} — every non-zero device tensor was planned;
    - {b alloc-overlap} — no two buffers with overlapping live intervals
      share addresses ({!Magis_cost.Allocator.overlaps});
    - {b arena-overflow} — no buffer spills past the arena high-water
      mark;
    - {b view-alias} (warning) — a view output outliving its base's
      buffer: sound under this cost model's copy semantics, but a
      runtime eliding the view would alias reclaimed memory.

    Wired into [Search.config.verify_states] via
    {!Hooks.assert_interference} and into [magis_cli profile] /
    [check-rules --interfere]. *)

open Magis_ir
open Magis_cost

val pass : string
(** Diagnostic pass name, ["interfere"]. *)

type report = {
  arena : Allocator.t;  (** the plan that was checked *)
  n_buffers : int;
  diags : Diagnostic.t list;
}

val check :
  ?strategy:Allocator.strategy ->
  ?size_of:(int -> int) ->
  Graph.t ->
  int list ->
  report

(** Check an externally produced (or deliberately corrupted — the
    mutation tests) plan against the liveness it claims to realize. *)
val check_plan : Graph.t -> Lifetime.t -> Allocator.t -> Diagnostic.t list

val is_clean : report -> bool
(** No errors (warnings allowed). *)

val pp_report : Format.formatter -> report -> unit
