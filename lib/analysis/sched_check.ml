(** Schedule legality checker (see the interface for the check list).

    Structural checks (permutation, operand order, Store/Load order) use
    only first-occurrence positions and never raise; the lifetime
    cross-validation and the WL-label clone check run only once the
    structural checks pass, because {!Magis_cost.Lifetime.analyze} and
    {!Magis_ir.Wl_hash.node_labels} assume a well-formed input. *)

open Magis_ir
open Magis_cost
module Int_map = Util.Int_map

let pass = "sched-check"

let err ?node ~check fmt = Diagnostic.errorf ?node ~pass ~check fmt
let warn ?node ~check fmt = Diagnostic.warningf ?node ~pass ~check fmt

let describe g v =
  match Graph.node_opt g v with
  | None -> Printf.sprintf "%d:?" v
  | Some n ->
      Printf.sprintf "%d:%s%s" v (Op.name n.op)
        (if n.label = "" then "" else "(" ^ n.label ^ ")")

(* ------------------------------------------------------------------ *)
(* Permutation and ordering                                            *)
(* ------------------------------------------------------------------ *)

(** First-occurrence position of every scheduled id. *)
let positions order =
  let pos = Hashtbl.create (List.length order) in
  List.iteri
    (fun i v -> if not (Hashtbl.mem pos v) then Hashtbl.add pos v i)
    order;
  pos

let check_permutation g order pos =
  let counts = Hashtbl.create (List.length order) in
  List.iter
    (fun v ->
      Hashtbl.replace counts v
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
    order;
  let diags =
    Hashtbl.fold
      (fun v count acc ->
        let acc =
          if Graph.mem g v then acc
          else
            err ~node:v ~check:"unknown-node"
              "schedule contains id %d which is not in the graph" v
            :: acc
        in
        if count > 1 then
          err ~node:v ~check:"double-schedule"
            "%s is scheduled %d times" (describe g v) count
          :: acc
        else acc)
      counts []
  in
  Graph.fold
    (fun n acc ->
      if Hashtbl.mem pos n.id then acc
      else
        err ~node:n.id ~check:"missing-node" "%s is never scheduled"
          (describe g n.id)
        :: acc)
    g diags

let check_operand_order g pos =
  Graph.fold
    (fun n acc ->
      match Hashtbl.find_opt pos n.id with
      | None -> acc (* reported as missing-node *)
      | Some i ->
          Array.fold_left
            (fun acc u ->
              match Hashtbl.find_opt pos u with
              | Some j when j < i -> acc
              | Some j ->
                  err ~node:n.id ~check:"operand-order"
                    "%s at step %d consumes %s which only runs at step %d"
                    (describe g n.id) i (describe g u) j
                  :: acc
              | None ->
                  if Graph.mem g u then
                    err ~node:n.id ~check:"operand-order"
                      "%s consumes %s which is never scheduled"
                      (describe g n.id) (describe g u)
                    :: acc
                  else acc (* dangling operand: the verifier's finding *))
            acc n.inputs)
    g []

(* ------------------------------------------------------------------ *)
(* Store / Load pairing                                                 *)
(* ------------------------------------------------------------------ *)

let check_swaps g pos =
  Graph.fold
    (fun n acc ->
      match n.op with
      | Op.Load -> (
          let source =
            if Array.length n.inputs = 1 then
              Graph.node_opt g n.inputs.(0)
            else None
          in
          match source with
          | Some store when store.op = Op.Store -> (
              match (Hashtbl.find_opt pos store.id, Hashtbl.find_opt pos n.id)
              with
              | Some ps, Some pl when ps >= pl ->
                  err ~node:n.id ~check:"load-before-store"
                    "%s at step %d runs before its %s at step %d"
                    (describe g n.id) pl (describe g store.id) ps
                  :: acc
              | _ -> acc)
          | _ ->
              err ~node:n.id ~check:"load-source"
                "%s must consume exactly one Store node" (describe g n.id)
              :: acc)
      | Op.Store -> (
          (* a consumer of the swapped tensor scheduled after the Store
             still reads the device copy the swap meant to free *)
          match
            if Array.length n.inputs = 1 then Some n.inputs.(0) else None
          with
          | None -> acc (* malformed Store arity: the verifier's finding *)
          | Some v -> (
              match Hashtbl.find_opt pos n.id with
              | None -> acc
              | Some ps ->
                  List.fold_left
                    (fun acc c ->
                      if c = n.id || Graph.op g c = Op.Store then acc
                      else
                        match Hashtbl.find_opt pos c with
                        | Some pc when pc > ps ->
                            warn ~node:c ~check:"use-after-store"
                              "%s at step %d reads %s after it was swapped \
                               out at step %d"
                              (describe g c) pc (describe g v) ps
                            :: acc
                        | _ -> acc)
                    acc (Graph.suc g v)))
      | _ -> acc)
    g []

(* ------------------------------------------------------------------ *)
(* Lifetime cross-validation                                            *)
(* ------------------------------------------------------------------ *)

let check_lifetime g order pos =
  let lt = Lifetime.analyze g order in
  Graph.fold
    (fun n acc ->
      match Lifetime.position lt n.id with
      | None -> acc
      | Some i ->
          let _, free = Lifetime.interval lt i in
          List.fold_left
            (fun acc c ->
              match Hashtbl.find_opt pos c with
              | Some pc when pc > free ->
                  err ~node:c ~check:"use-after-free"
                    "%s at step %d reads %s, freed after step %d"
                    (describe g c) pc (describe g n.id) free
                  :: acc
              | _ -> acc)
            acc (Graph.suc g n.id))
    g []

(* ------------------------------------------------------------------ *)
(* Re-materialization clone consistency                                 *)
(* ------------------------------------------------------------------ *)

(** Clones — nodes with the same operator fingerprint and operand slots —
    must carry equal WL labels (label = op ⊕ shape ⊕ operand labels, so a
    difference means a clone's stored shape or dtype diverged). *)
let check_clones g =
  let labels = Wl_hash.node_labels g in
  let groups = Hashtbl.create 64 in
  Graph.iter
    (fun n ->
      if not (Op.is_input n.op) then
        let key = (Op.fingerprint n.op, Array.to_list n.inputs) in
        Hashtbl.replace groups key
          (n.id :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    g;
  Hashtbl.fold
    (fun _ ids acc ->
      match ids with
      | [] | [ _ ] -> acc
      | first :: rest -> (
          match Int_map.find_opt first labels with
          | None -> acc
          | Some l0 ->
              List.fold_left
                (fun acc v ->
                  match Int_map.find_opt v labels with
                  | Some l when not (Int64.equal l l0) ->
                      err ~node:v ~check:"remat-divergence"
                        "%s is a clone of %s but their WL labels differ"
                        (describe g v) (describe g first)
                      :: acc
                  | _ -> acc)
                acc rest))
    groups []

let schedule g order =
  let pos = positions order in
  let structural =
    check_permutation g order pos
    @ check_operand_order g pos
    @ check_swaps g pos
  in
  let deep =
    (* a clean structural pass implies the schedule is a dependency-
       respecting permutation, but the graph itself may still be broken
       (Verify's domain) — never let that escape as an exception *)
    if Diagnostic.is_clean structural then
      try check_lifetime g order pos @ check_clones g
      with e ->
        [
          err ~check:"analysis-crash"
            "lifetime/clone analysis raised %s (is the graph well-formed?)"
            (Printexc.to_string e);
        ]
    else []
  in
  List.sort
    (fun (a : Diagnostic.t) (b : Diagnostic.t) ->
      compare (a.node, a.check, a.message) (b.node, b.check, b.message))
    (structural @ deep)

let assert_ok ?(what = "schedule") g order =
  match Diagnostic.errors (schedule g order) with
  | [] -> ()
  | errs ->
      failwith
        (Fmt.str "%s failed legality checking:@.%a" what Diagnostic.pp_report
           errs)
