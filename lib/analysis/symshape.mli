(** Symbolic shape domain for rule-soundness proofs.

    Tensor extents as multivariate polynomials with integer coefficients
    over dimension variables (each implicitly ranging over integers
    [>= 1]), in a canonical normal form so that structural equality of
    normal forms decides equality of extents for {e every} variable
    assignment.  {!geq} and {!divides} are provability predicates under
    a set of {!Magis_rules.Rule.Spec.guard} side conditions: [false]
    means "cannot prove", never "provably false" — the domain is sound
    but incomplete.

    {!dim_domain} packages the domain as an {!Magis_ir.Op.DIM_DOMAIN},
    so {!Magis_ir.Op.Abstract} re-runs the operator shape-inference
    rules symbolically — the engine behind {!Rule_sound}. *)

open Magis_ir
module Spec = Magis_rules.Rule.Spec

type t

val zero : t
val const : int -> t
val var : string -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Multiply by an integer constant. *)
val scale : int -> t -> t

(** Equal for every variable assignment (normal-form equality). *)
val equal : t -> t -> bool

(** [Some n] iff the polynomial is the constant [n]. *)
val to_const : t -> int option

(** Embed a spec-level symbolic dimension. *)
val of_sdim : Spec.sdim -> t

(** Variables occurring, sorted, without duplicates. *)
val vars : t -> string list

(** Evaluate under a concrete assignment; raises [Invalid_argument] on
    an unbound variable. *)
val eval : env:(string * int) list -> t -> int

(** [geq ~guards p q]: provable [p >= q] whenever all variables are
    [>= 1] and the guards hold. *)
val geq : guards:Spec.guard list -> t -> t -> bool

(** [divides ~guards c p]: provable [c] divides [p]'s value under the
    guards. *)
val divides : guards:Spec.guard list -> int -> t -> bool

(** [div_exact c p]: the exact quotient when every coefficient is
    divisible by [c]. *)
val div_exact : int -> t -> t option

(** Prime factors dividing the extent for every assignment (factors of
    the coefficient GCD, via {!Magis_ir.Shape.factorize}). *)
val const_factors : t -> int list

(** Does the witness assignment satisfy the guard? *)
val guard_sat : env:(string * int) list -> Spec.guard -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Symbolic element type: spec-level dtype (variable or constant). *)
type sdt = Spec.sdtype

module type DOMAIN = Op.DIM_DOMAIN with type dim = t and type dt = sdt

(** The domain under the given guards, for {!Magis_ir.Op.Abstract}. *)
val dim_domain : Spec.guard list -> (module DOMAIN)
