(** IR well-formedness verifier (see the interface for the check list).

    Everything is recomputed from the public [Graph] interface — the
    verifier deliberately does not trust any cached/derived structure it
    is checking, and it must keep working on graphs broken in exactly the
    ways it reports (so no [topo_order], which raises on cycles). *)

open Magis_ir
module Int_set = Util.Int_set

let pass = "verify"

let err ?node ~check fmt = Diagnostic.errorf ?node ~pass ~check fmt

let node_desc (n : Graph.node) =
  Printf.sprintf "%d:%s%s" n.id (Op.name n.op)
    (if n.label = "" then "" else "(" ^ n.label ^ ")")

(* ------------------------------------------------------------------ *)
(* Structure: operand slots, adjacency consistency                     *)
(* ------------------------------------------------------------------ *)

let check_structure g =
  Graph.fold
    (fun n acc ->
      let acc =
        if Op.is_input n.op && Array.length n.inputs > 0 then
          err ~node:n.id ~check:"input-with-operands"
            "%s is an input operator but has %d operand(s)" (node_desc n)
            (Array.length n.inputs)
          :: acc
        else acc
      in
      (* forward: every operand must exist and list us as a consumer *)
      let acc =
        Array.fold_left
          (fun acc u ->
            match Graph.node_opt g u with
            | None ->
                err ~node:n.id ~check:"dangling-input"
                  "%s references unknown operand id %d" (node_desc n) u
                :: acc
            | Some _ ->
                if Int_set.mem n.id (Graph.succ_set g u) then acc
                else
                  err ~node:n.id ~check:"succ-missing"
                    "%s consumes node %d but is missing from its successor \
                     set"
                    (node_desc n) u
                  :: acc)
          acc n.inputs
      in
      (* backward: every recorded consumer must exist and consume us *)
      Int_set.fold
        (fun s acc ->
          match Graph.node_opt g s with
          | None ->
              err ~node:n.id ~check:"succ-stale"
                "%s lists unknown consumer id %d" (node_desc n) s
              :: acc
          | Some c ->
              if Array.exists (( = ) n.id) c.inputs then acc
              else
                err ~node:n.id ~check:"succ-stale"
                  "%s lists consumer %s which does not take it as an operand"
                  (node_desc n) (node_desc c)
                :: acc)
        (Graph.succ_set g n.id) acc)
    g []

(* ------------------------------------------------------------------ *)
(* Acyclicity                                                          *)
(* ------------------------------------------------------------------ *)

(** Three-color DFS over the operand edges that exist; reports one
    representative node per back edge found. *)
let check_acyclic g =
  let color = Hashtbl.create (Graph.n_nodes g) in
  (* 0 = white (absent), 1 = on stack, 2 = done *)
  let diags = ref [] in
  let preds v =
    List.filter (fun u -> Graph.mem g u) (Graph.pre g v)
  in
  let rec visit v =
    match Hashtbl.find_opt color v with
    | Some 2 -> ()
    | Some _ ->
        diags :=
          err ~node:v ~check:"cycle"
            "%s is on a dependency cycle"
            (node_desc (Graph.node g v))
          :: !diags;
        Hashtbl.replace color v 2
    | None ->
        Hashtbl.replace color v 1;
        List.iter visit (preds v);
        Hashtbl.replace color v 2
  in
  Graph.iter (fun n -> visit n.id) g;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Shape consistency                                                   *)
(* ------------------------------------------------------------------ *)

let check_shapes g =
  Graph.fold
    (fun n acc ->
      if Op.is_input n.op then acc
      else if not (Array.for_all (fun u -> Graph.mem g u) n.inputs) then
        acc (* dangling operands already reported; cannot re-infer *)
      else
        let in_shapes = Array.map (fun u -> Graph.shape g u) n.inputs in
        match Op.infer n.op in_shapes with
        | Error msg ->
            err ~node:n.id ~check:"shape-infer"
              "%s no longer shape-checks against its operands: %s"
              (node_desc n) msg
            :: acc
        | Ok inferred ->
            if Shape.equal inferred n.shape then acc
            else
              err ~node:n.id ~check:"shape-mismatch"
                "%s stores shape %s but re-inference yields %s" (node_desc n)
                (Shape.to_string n.shape)
                (Shape.to_string inferred)
              :: acc)
    g []

let graph g =
  let structure = check_structure g in
  let cycles = check_acyclic g in
  let shapes = check_shapes g in
  List.sort
    (fun (a : Diagnostic.t) (b : Diagnostic.t) ->
      compare (a.node, a.check, a.message) (b.node, b.check, b.message))
    (structure @ cycles @ shapes)

let assert_ok ?(what = "graph") g =
  match Diagnostic.errors (graph g) with
  | [] -> ()
  | errs ->
      failwith
        (Fmt.str "%s failed IR verification:@.%a" what Diagnostic.pp_report
           errs)
