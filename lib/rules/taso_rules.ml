(** TASO-style transformation rules (§5, Fig. 1 (a)(b)).

    Aggregation transformations (A-Trans) merge parallel operators that
    share an input into one bigger operator — better hardware utilization,
    temporarily higher memory.  Interim transformations (I-Trans) are
    algebraic rewrites that enable other transformations or remove
    redundant data movement. *)

open Magis_ir
module Int_set = Util.Int_set

(* ------------------------------------------------------------------ *)
(* A-Trans: merge parallel Dense / Matmul / Conv sharing an input      *)
(* ------------------------------------------------------------------ *)

(** Siblings of [x]: consumers with the same mergeable operator kind that
    take [x] as their first operand. *)
let mergeable_siblings ctx g x =
  let same_kind a b =
    match (a, b) with
    | Op.Dense { trans_w = ta }, Op.Dense { trans_w = tb } -> ta = tb
    | Op.Matmul { trans_a = a1; trans_b = b1 }, Op.Matmul { trans_a = a2; trans_b = b2 }
      ->
        a1 = a2 && b1 = b2
    | Op.Conv2d a, Op.Conv2d b -> a = b
    | _ -> false
  in
  let consumers =
    Graph.suc g x
    |> List.filter (fun c ->
           Rule.unfrozen ctx c
           &&
           let n = Graph.node g c in
           Array.length n.inputs = 2
           && n.inputs.(0) = x
           && (match n.op with
              | Op.Dense { trans_w = false } | Op.Matmul { trans_a = false; trans_b = false }
              | Op.Conv2d _ ->
                  true
              | _ -> false))
  in
  (* group by kind *)
  let rec group = function
    | [] -> []
    | c :: rest ->
        let kind = Graph.op g c in
        let same, other =
          List.partition (fun d -> same_kind kind (Graph.op g d)) rest
        in
        (c :: same) :: group other
  in
  List.filter (fun l -> List.length l >= 2) (group consumers)

(** Merge a group of parallel ops [y_i = op(x, w_i)] into
    [y = op(x, concat(w_i))] followed by slices (Fig. 1 (a) — the QKV
    aggregation).  The concat axis is the output-feature axis of the
    weight. *)
let merge_group g x group =
  let first = Graph.node g (List.hd group) in
  let weights = List.map (fun c -> (Graph.node g c).inputs.(1)) group in
  let axis, out_axis =
    match first.op with
    | Op.Dense { trans_w = false } -> (1, Shape.rank first.shape - 1)
    | Op.Matmul _ -> (1, 1)
    | Op.Conv2d _ -> (0, 1)
    | _ -> invalid_arg "merge_group: not mergeable"
  in
  let g, wcat = Graph.add g (Op.Concat axis) weights in
  let g, merged = Graph.add g first.op [ x; wcat ] in
  let g, _ =
    List.fold_left
      (fun (g, lo) c ->
        let extent = Shape.dim (Graph.shape g (Graph.node g c).inputs.(1)) axis in
        let g, sl =
          Graph.add g
            (Op.Slice { axis = out_axis; lo; hi = lo + extent })
            [ merged ]
        in
        let g = Graph.redirect g ~from_:c ~to_:sl in
        let g = Graph.remove g c in
        (g, lo + extent))
      (g, 0) group
  in
  g

let merge_parallel : Rule.t =
  {
    name = "a-trans-merge";
    apply =
      (fun ctx g ->
        let rewrites =
          Graph.fold
            (fun n acc ->
              if Graph.out_degree g n.id < 2 then acc
              else
                List.fold_left
                  (fun acc group ->
                    match merge_group g n.id group with
                    | g' ->
                        (* the group's consumers are rewired onto the new
                           slices — part of the touched region *)
                        let rewired = List.concat_map (Graph.suc g) group in
                        {
                          Rule.rule = "a-trans-merge";
                          graph = g';
                          touched_old =
                            Int_set.of_list ((n.id :: group) @ rewired);
                        }
                        :: acc
                    | exception Invalid_argument _ -> acc)
                  acc
                  (mergeable_siblings ctx g n.id))
            g []
        in
        Rule.cap ctx rewrites);
  }

(* ------------------------------------------------------------------ *)
(* I-Trans: algebraic clean-ups                                        *)
(* ------------------------------------------------------------------ *)

(** concat(slice(x, 0..a), slice(x, a..b)) = slice(x, 0..b); a full cover
    collapses to x itself. *)
let concat_of_slices : Rule.t =
  {
    name = "i-trans-concat-slice";
    apply =
      (fun ctx g ->
        let rewrites =
          Graph.fold
            (fun n acc ->
              match n.op with
              | Op.Concat axis ->
                  let parts =
                    Array.to_list n.inputs
                    |> List.map (fun u ->
                           match Graph.op g u with
                           | Op.Slice { axis = a; lo; hi } when a = axis ->
                               Some (u, (Graph.node g u).inputs.(0), lo, hi)
                           | _ -> None)
                  in
                  if List.exists (( = ) None) parts then acc
                  else
                    let parts = List.filter_map Fun.id parts in
                    let srcs =
                      List.sort_uniq compare (List.map (fun (_, s, _, _) -> s) parts)
                    in
                    let contiguous =
                      let rec chk = function
                        | (_, _, _, h) :: ((_, _, lo, _) :: _ as rest) ->
                            h = lo && chk rest
                        | _ -> true
                      in
                      chk parts
                    in
                    if
                      List.length srcs = 1 && contiguous
                      && List.for_all (fun (u, _, _, _) -> Rule.unfrozen ctx u) parts
                      && Rule.unfrozen ctx n.id
                    then
                      let src = List.hd srcs in
                      let lo = match parts with (_, _, l, _) :: _ -> l | [] -> 0 in
                      let hi =
                        match List.rev parts with (_, _, _, h) :: _ -> h | [] -> 0
                      in
                      let full = Shape.dim (Graph.shape g src) axis in
                      let rewired = Graph.suc g n.id in
                      let g, repl =
                        if lo = 0 && hi = full then (g, src)
                        else Graph.add g (Op.Slice { axis; lo; hi }) [ src ]
                      in
                      if Shape.equal_dims (Graph.shape g repl) n.shape then
                        let keep = Int_set.of_list (Graph.outputs g) in
                        let g = Graph.redirect g ~from_:n.id ~to_:repl in
                        let g = Graph.remove g n.id in
                        let g = Graph.prune_dead ~keep g in
                        {
                          Rule.rule = "i-trans-concat-slice";
                          graph = g;
                          touched_old =
                            Int_set.of_list
                              ((n.id :: rewired)
                              @ List.map (fun (u, _, _, _) -> u) parts);
                        }
                        :: acc
                      else acc
                    else acc
              | _ -> acc)
            g []
        in
        Rule.cap ctx rewrites);
  }

(** transpose(transpose(x)) with inverse permutations collapses to x. *)
let transpose_pairs : Rule.t =
  {
    name = "i-trans-transpose";
    apply =
      (fun ctx g ->
        let rewrites =
          Graph.fold
            (fun n acc ->
              match n.op with
              | Op.Transpose p2 -> (
                  let u = n.inputs.(0) in
                  match Graph.op g u with
                  | Op.Transpose p1
                    when Rule.unfrozen ctx n.id && Rule.unfrozen ctx u
                         && Array.length p1 = Array.length p2
                         && Array.for_all2 ( = )
                              (Array.init (Array.length p1) (fun i -> p1.(p2.(i))))
                              (Array.init (Array.length p1) Fun.id) ->
                      let keep = Int_set.of_list (Graph.outputs g) in
                      let src = (Graph.node g u).inputs.(0) in
                      let rewired = Graph.suc g n.id in
                      let g = Graph.redirect g ~from_:n.id ~to_:src in
                      let g = Graph.remove g n.id in
                      let g = Graph.prune_dead ~keep g in
                      {
                        Rule.rule = "i-trans-transpose";
                        graph = g;
                        touched_old = Int_set.of_list (n.id :: u :: rewired);
                      }
                      :: acc
                  | _ -> acc)
              | _ -> acc)
            g []
        in
        Rule.cap ctx rewrites);
  }

(** add re-association: (a + b) + c -> a + (b + c), enabling different
    lifetime orders for long residual chains. *)
let add_reassociate : Rule.t =
  {
    name = "i-trans-add-assoc";
    apply =
      (fun ctx g ->
        let rewrites =
          Graph.fold
            (fun n acc ->
              match n.op with
              | Op.Binary Op.Add -> (
                  let l = n.inputs.(0) and r = n.inputs.(1) in
                  match Graph.op g l with
                  | Op.Binary Op.Add
                    when Graph.out_degree g l = 1 && Rule.unfrozen ctx n.id
                         && Rule.unfrozen ctx l ->
                      let a = (Graph.node g l).inputs.(0) in
                      let b = (Graph.node g l).inputs.(1) in
                      let keep = Int_set.of_list (Graph.outputs g) in
                      let rewired = Graph.suc g n.id in
                      let g', bc = Graph.add g (Op.Binary Op.Add) [ b; r ] in
                      let g', abc = Graph.add g' (Op.Binary Op.Add) [ a; bc ] in
                      let g' = Graph.redirect g' ~from_:n.id ~to_:abc in
                      let g' = Graph.remove g' n.id in
                      let g' = Graph.prune_dead ~keep g' in
                      {
                        Rule.rule = "i-trans-add-assoc";
                        graph = g';
                        touched_old = Int_set.of_list (n.id :: l :: rewired);
                      }
                      :: acc
                  | _ -> acc)
              | _ -> acc)
            g []
        in
        Rule.cap ctx rewrites);
  }

let a_trans = [ merge_parallel ]
let i_trans = [ concat_of_slices; transpose_pairs; add_reassociate ]
let all = a_trans @ i_trans
