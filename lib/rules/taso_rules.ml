(** TASO-style transformation rules (§5, Fig. 1 (a)(b)).

    Aggregation transformations (A-Trans) merge parallel operators that
    share an input into one bigger operator — better hardware utilization,
    temporarily higher memory.  Interim transformations (I-Trans) are
    algebraic rewrites that enable other transformations or remove
    redundant data movement. *)

open Magis_ir
module Int_set = Util.Int_set
module S = Rule.Spec

(* ------------------------------------------------------------------ *)
(* A-Trans: merge parallel Dense / Matmul / Conv sharing an input      *)
(* ------------------------------------------------------------------ *)

(** Siblings of [x]: consumers with the same mergeable operator kind that
    take [x] as their first operand. *)
let mergeable_siblings ctx g x =
  let same_kind a b =
    match (a, b) with
    | Op.Dense { trans_w = ta }, Op.Dense { trans_w = tb } -> ta = tb
    | Op.Matmul { trans_a = a1; trans_b = b1 }, Op.Matmul { trans_a = a2; trans_b = b2 }
      ->
        a1 = a2 && b1 = b2
    | Op.Conv2d a, Op.Conv2d b -> a = b
    | _ -> false
  in
  let consumers =
    Graph.suc g x
    |> List.filter (fun c ->
           Rule.unfrozen ctx c
           &&
           let n = Graph.node g c in
           Array.length n.inputs = 2
           && n.inputs.(0) = x
           && (match n.op with
              | Op.Dense { trans_w = false } | Op.Matmul { trans_a = false; trans_b = false }
              | Op.Conv2d _ ->
                  true
              | _ -> false))
  in
  (* group by kind *)
  let rec group = function
    | [] -> []
    | c :: rest ->
        let kind = Graph.op g c in
        let same, other =
          List.partition (fun d -> same_kind kind (Graph.op g d)) rest
        in
        (c :: same) :: group other
  in
  List.filter (fun l -> List.length l >= 2) (group consumers)

(** Merge a group of parallel ops [y_i = op(x, w_i)] into
    [y = op(x, concat(w_i))] followed by slices (Fig. 1 (a) — the QKV
    aggregation).  The concat axis is the output-feature axis of the
    weight. *)
let merge_group g x group =
  let first = Graph.node g (List.hd group) in
  let weights = List.map (fun c -> (Graph.node g c).inputs.(1)) group in
  let axis, out_axis =
    match first.op with
    | Op.Dense { trans_w = false } -> (1, Shape.rank first.shape - 1)
    | Op.Matmul _ -> (1, 1)
    | Op.Conv2d _ -> (0, 1)
    | _ -> invalid_arg "merge_group: not mergeable"
  in
  let g, wcat = Graph.add g (Op.Concat axis) weights in
  let g, merged = Graph.add g first.op [ x; wcat ] in
  let g, _ =
    List.fold_left
      (fun (g, lo) c ->
        let extent = Shape.dim (Graph.shape g (Graph.node g c).inputs.(1)) axis in
        let g, sl =
          Graph.add g
            (Op.Slice { axis = out_axis; lo; hi = lo + extent })
            [ merged ]
        in
        let g = Graph.redirect g ~from_:c ~to_:sl in
        let g = Graph.remove g c in
        (g, lo + extent))
      (g, 0) group
  in
  g

(** Shared spec shape of the three merge variants: [y1 = op(x, w1)],
    [y2 = op(x, w2)] becomes one [op(x, concat(w1, w2))] followed by
    slices along the output-feature axis.  [p]/[q] are the two weights'
    output-feature extents throughout. *)
let merge_template ~t_name ~op ~x_dims ~w_dims_of ~axis ~out_axis ~guards
    ~delta ~ground =
  let open S in
  {
    t_name;
    t_sources =
      [
        src 0 x_dims;
        src ~kind:Op.Weight 1 (w_dims_of (V "p"));
        src ~kind:Op.Weight 2 (w_dims_of (V "q"));
      ];
    t_lhs = [ node 10 (Fixed op) [ 0; 1 ]; node 11 (Fixed op) [ 0; 2 ] ];
    t_rhs =
      [
        node 20 (Fixed (Op.Concat axis)) [ 1; 2 ];
        node 21 (Fixed op) [ 0; 20 ];
        node ~same_as:10 22
          (Slice_s { axis = out_axis; lo = K 0; hi = V "p" })
          [ 21 ];
        node ~same_as:11 23
          (Slice_s { axis = out_axis; lo = V "p"; hi = Add (V "p", V "q") })
          [ 21 ];
      ];
    t_guards = guards;
    t_keep = [];
    t_out = [ (10, 22); (11, 23) ];
    t_delta = delta;
    t_ground = ground;
  }

let merge_parallel : Rule.t =
  {
    name = "a-trans-merge";
    spec =
      S.Sound
        [
          (* y[b,p|q] = x[b,k] * w[k,p|q]; the merged operator adds
             k*(p+q) (concat) + b*(p+q) (merged output), the slices
             replace the removed originals one for one *)
          merge_template ~t_name:"dense"
            ~op:(Op.Dense { trans_w = false })
            ~x_dims:[ S.V "b"; S.V "k" ]
            ~w_dims_of:(fun n -> [ S.V "k"; n ])
            ~axis:1 ~out_axis:1 ~guards:[]
            ~delta:(S.Mul (S.Add (S.V "k", S.V "b"), S.Add (S.V "p", S.V "q")))
            ~ground:[ ("b", 2); ("k", 3); ("p", 2); ("q", 3) ];
          merge_template ~t_name:"matmul"
            ~op:(Op.Matmul { trans_a = false; trans_b = false })
            ~x_dims:[ S.V "m"; S.V "k" ]
            ~w_dims_of:(fun n -> [ S.V "k"; n ])
            ~axis:1 ~out_axis:1 ~guards:[]
            ~delta:(S.Mul (S.Add (S.V "k", S.V "m"), S.Add (S.V "p", S.V "q")))
            ~ground:[ ("m", 2); ("k", 3); ("p", 2); ("q", 3) ];
          (* x[n,c,h,w], w[p|q,c,r,s], stride 1, no padding:
             H' = h-r+1, W' = w-s+1 (positive by the guards); the
             concat adds (p+q)*c*r*s, the merged output n*(p+q)*H'*W' *)
          merge_template ~t_name:"conv2d"
            ~op:(Op.Conv2d { stride = 1; padding = 0 })
            ~x_dims:[ S.V "n"; S.V "c"; S.V "h"; S.V "w" ]
            ~w_dims_of:(fun k -> [ k; S.V "c"; S.V "r"; S.V "s" ])
            ~axis:0 ~out_axis:1
            ~guards:[ S.Ge (S.V "h", S.V "r"); S.Ge (S.V "w", S.V "s") ]
            ~delta:
              (S.Mul
                 ( S.Add (S.V "p", S.V "q"),
                   S.Add
                     ( S.Mul (S.V "c", S.Mul (S.V "r", S.V "s")),
                       S.Mul
                         ( S.V "n",
                           S.Mul
                             ( S.Add (S.Sub (S.V "h", S.V "r"), S.K 1),
                               S.Add (S.Sub (S.V "w", S.V "s"), S.K 1) ) ) ) ))
            ~ground:
              [ ("n", 1); ("c", 2); ("h", 4); ("w", 4); ("p", 2); ("q", 3);
                ("r", 3); ("s", 3) ];
        ];
    apply =
      (fun ctx g ->
        let rewrites =
          Graph.fold
            (fun n acc ->
              if Graph.out_degree g n.id < 2 then acc
              else
                List.fold_left
                  (fun acc group ->
                    match merge_group g n.id group with
                    | g' ->
                        (* the group's consumers are rewired onto the new
                           slices — part of the touched region *)
                        let rewired = List.concat_map (Graph.suc g) group in
                        {
                          Rule.rule = "a-trans-merge";
                          graph = g';
                          touched_old =
                            Int_set.of_list ((n.id :: group) @ rewired);
                        }
                        :: acc
                    | exception Invalid_argument _ -> acc)
                  acc
                  (mergeable_siblings ctx g n.id))
            g []
        in
        Rule.cap ctx rewrites);
  }

(* ------------------------------------------------------------------ *)
(* I-Trans: algebraic clean-ups                                        *)
(* ------------------------------------------------------------------ *)

(** concat(slice(x, 0..a), slice(x, a..b)) = slice(x, 0..b); a full cover
    collapses to x itself. *)
let concat_of_slices : Rule.t =
  {
    name = "i-trans-concat-slice";
    spec =
      S.Sound
        [
          (* the two slices cover x[p+q, m] exactly: the concat IS x *)
          {
            S.t_name = "full-cover";
            t_sources = [ S.src 0 [ S.Add (S.V "p", S.V "q"); S.V "m" ] ];
            t_lhs =
              [
                S.node 10 (S.Slice_s { axis = 0; lo = S.K 0; hi = S.V "p" }) [ 0 ];
                S.node 11
                  (S.Slice_s { axis = 0; lo = S.V "p"; hi = S.Add (S.V "p", S.V "q") })
                  [ 0 ];
                S.node 12 (S.Fixed (Op.Concat 0)) [ 10; 11 ];
              ];
            t_rhs = [];
            t_guards = [];
            t_keep = [];
            t_out = [ (12, 0) ];
            t_delta =
              S.Sub (S.K 0, S.Mul (S.K 2, S.Mul (S.Add (S.V "p", S.V "q"), S.V "m")));
            t_ground = [ ("p", 2); ("q", 3); ("m", 2) ];
          };
          (* partial cover of x[p+q+r, m]: the concat becomes one slice *)
          {
            S.t_name = "partial-cover";
            t_sources =
              [ S.src 0 [ S.Add (S.Add (S.V "p", S.V "q"), S.V "r"); S.V "m" ] ];
            t_lhs =
              [
                S.node 10 (S.Slice_s { axis = 0; lo = S.K 0; hi = S.V "p" }) [ 0 ];
                S.node 11
                  (S.Slice_s { axis = 0; lo = S.V "p"; hi = S.Add (S.V "p", S.V "q") })
                  [ 0 ];
                S.node 12 (S.Fixed (Op.Concat 0)) [ 10; 11 ];
              ];
            t_rhs =
              [
                S.node ~same_as:12 20
                  (S.Slice_s { axis = 0; lo = S.K 0; hi = S.Add (S.V "p", S.V "q") })
                  [ 0 ];
              ];
            t_guards = [];
            t_keep = [];
            t_out = [ (12, 20) ];
            t_delta = S.Sub (S.K 0, S.Mul (S.Add (S.V "p", S.V "q"), S.V "m"));
            t_ground = [ ("p", 2); ("q", 2); ("r", 1); ("m", 3) ];
          };
        ];
    apply =
      (fun ctx g ->
        let rewrites =
          Graph.fold
            (fun n acc ->
              match n.op with
              | Op.Concat axis ->
                  let parts =
                    Array.to_list n.inputs
                    |> List.map (fun u ->
                           match Graph.op g u with
                           | Op.Slice { axis = a; lo; hi } when a = axis ->
                               Some (u, (Graph.node g u).inputs.(0), lo, hi)
                           | _ -> None)
                  in
                  if List.exists (( = ) None) parts then acc
                  else
                    let parts = List.filter_map Fun.id parts in
                    let srcs =
                      List.sort_uniq compare (List.map (fun (_, s, _, _) -> s) parts)
                    in
                    let contiguous =
                      let rec chk = function
                        | (_, _, _, h) :: ((_, _, lo, _) :: _ as rest) ->
                            h = lo && chk rest
                        | _ -> true
                      in
                      chk parts
                    in
                    if
                      List.length srcs = 1 && contiguous
                      && List.for_all (fun (u, _, _, _) -> Rule.unfrozen ctx u) parts
                      && Rule.unfrozen ctx n.id
                    then
                      let src = List.hd srcs in
                      let lo = match parts with (_, _, l, _) :: _ -> l | [] -> 0 in
                      let hi =
                        match List.rev parts with (_, _, _, h) :: _ -> h | [] -> 0
                      in
                      let full = Shape.dim (Graph.shape g src) axis in
                      let rewired = Graph.suc g n.id in
                      let g, repl =
                        if lo = 0 && hi = full then (g, src)
                        else Graph.add g (Op.Slice { axis; lo; hi }) [ src ]
                      in
                      if Shape.equal_dims (Graph.shape g repl) n.shape then
                        let keep = Int_set.of_list (Graph.outputs g) in
                        let g = Graph.redirect g ~from_:n.id ~to_:repl in
                        let g = Graph.remove g n.id in
                        let g = Graph.prune_dead ~keep g in
                        {
                          Rule.rule = "i-trans-concat-slice";
                          graph = g;
                          touched_old =
                            Int_set.of_list
                              ((n.id :: rewired)
                              @ List.map (fun (u, _, _, _) -> u) parts);
                        }
                        :: acc
                      else acc
                    else acc
              | _ -> acc)
            g []
        in
        Rule.cap ctx rewrites);
  }

(** transpose(transpose(x)) with inverse permutations collapses to x. *)
let transpose_pairs : Rule.t =
  {
    name = "i-trans-transpose";
    spec =
      S.Sound
        [
          (* inverse rank-3 rotations: t2(t1(x)) = x for all extents *)
          {
            S.t_name = "inverse-rotation";
            t_sources = [ S.src 0 [ S.V "a"; S.V "b"; S.V "c" ] ];
            t_lhs =
              [
                S.node 10 (S.Fixed (Op.Transpose [| 1; 2; 0 |])) [ 0 ];
                S.node 11 (S.Fixed (Op.Transpose [| 2; 0; 1 |])) [ 10 ];
              ];
            t_rhs = [];
            t_guards = [];
            t_keep = [];
            t_out = [ (11, 0) ];
            t_delta =
              S.Sub
                (S.K 0, S.Mul (S.K 2, S.Mul (S.V "a", S.Mul (S.V "b", S.V "c"))));
            t_ground = [ ("a", 2); ("b", 3); ("c", 4) ];
          };
        ];
    apply =
      (fun ctx g ->
        let rewrites =
          Graph.fold
            (fun n acc ->
              match n.op with
              | Op.Transpose p2 -> (
                  let u = n.inputs.(0) in
                  match Graph.op g u with
                  | Op.Transpose p1
                    when Rule.unfrozen ctx n.id && Rule.unfrozen ctx u
                         && Array.length p1 = Array.length p2
                         && Array.for_all2 ( = )
                              (Array.init (Array.length p1) (fun i -> p1.(p2.(i))))
                              (Array.init (Array.length p1) Fun.id) ->
                      let src = (Graph.node g u).inputs.(0) in
                      (* [src] may be left consumer-less when [n] is a
                         sink; it carries the result, so protect it *)
                      let keep = Int_set.add src (Int_set.of_list (Graph.outputs g)) in
                      let rewired = Graph.suc g n.id in
                      let g = Graph.redirect g ~from_:n.id ~to_:src in
                      let g = Graph.remove g n.id in
                      let g = Graph.prune_dead ~keep g in
                      {
                        Rule.rule = "i-trans-transpose";
                        graph = g;
                        touched_old = Int_set.of_list (n.id :: u :: rewired);
                      }
                      :: acc
                  | _ -> acc)
              | _ -> acc)
            g []
        in
        Rule.cap ctx rewrites);
  }

(** add re-association: (a + b) + c -> a + (b + c), enabling different
    lifetime orders for long residual chains. *)
let add_reassociate : Rule.t =
  {
    name = "i-trans-add-assoc";
    spec =
      S.Sound
        [
          (* (a + b) + c = a + (b + c); same two adds either way *)
          {
            S.t_name = "reassociate";
            t_sources =
              [
                S.src 0 [ S.V "m"; S.V "n" ];
                S.src 1 [ S.V "m"; S.V "n" ];
                S.src 2 [ S.V "m"; S.V "n" ];
              ];
            t_lhs =
              [
                S.node 10 (S.Fixed (Op.Binary Op.Add)) [ 0; 1 ];
                S.node 11 (S.Fixed (Op.Binary Op.Add)) [ 10; 2 ];
              ];
            t_rhs =
              [
                S.node 20 (S.Fixed (Op.Binary Op.Add)) [ 1; 2 ];
                S.node ~same_as:11 21 (S.Fixed (Op.Binary Op.Add)) [ 0; 20 ];
              ];
            t_guards = [];
            t_keep = [];
            t_out = [ (11, 21) ];
            t_delta = S.K 0;
            t_ground = [ ("m", 2); ("n", 3) ];
          };
        ];
    apply =
      (fun ctx g ->
        let rewrites =
          Graph.fold
            (fun n acc ->
              match n.op with
              | Op.Binary Op.Add -> (
                  let l = n.inputs.(0) and r = n.inputs.(1) in
                  match Graph.op g l with
                  | Op.Binary Op.Add
                    when Graph.out_degree g l = 1 && Rule.unfrozen ctx n.id
                         && Rule.unfrozen ctx l ->
                      let a = (Graph.node g l).inputs.(0) in
                      let b = (Graph.node g l).inputs.(1) in
                      let rewired = Graph.suc g n.id in
                      let g', bc = Graph.add g (Op.Binary Op.Add) [ b; r ] in
                      let g', abc = Graph.add g' (Op.Binary Op.Add) [ a; bc ] in
                      (* protect the replacement: when [n] is a sink,
                         nothing is rewired onto [abc] and pruning would
                         otherwise sweep the new chain away with it *)
                      let keep = Int_set.add abc (Int_set.of_list (Graph.outputs g)) in
                      let g' = Graph.redirect g' ~from_:n.id ~to_:abc in
                      let g' = Graph.remove g' n.id in
                      let g' = Graph.prune_dead ~keep g' in
                      {
                        Rule.rule = "i-trans-add-assoc";
                        graph = g';
                        touched_old = Int_set.of_list (n.id :: l :: rewired);
                      }
                      :: acc
                  | _ -> acc)
              | _ -> acc)
            g []
        in
        Rule.cap ctx rewrites);
  }

let a_trans = [ merge_parallel ]
let i_trans = [ concat_of_slices; transpose_pairs; add_reassociate ]
let all = a_trans @ i_trans
