(** Scheduling-based transformation rules (§5.2, Fig. 8).

    Re-materialization and swapping are expressed as graph rewrites —
    Store/Load are ordinary operators — so that the subsequent scheduling
    phase only has to re-order.  Per the paper's heuristic, the generative
    rules (Re-mat., Swapping) only target memory hot-spots; the reductive
    duals (De-re-mat., De-swapping) always apply. *)

open Magis_ir
module Int_set = Util.Int_set
module S = Rule.Spec

let tensor_bytes g v = Shape.size_bytes (Graph.shape g v)

(** Candidate hot tensors, largest first, excluding frozen/swap/input
    nodes.  When [restrict_to_hotspots] is off (ablation), every tensor
    with more than a threshold size qualifies. *)
let hot_candidates (ctx : Rule.ctx) g =
  (* Fission regions do not block swapping/re-materialization: inserting a
     Store/Load or a re-computed copy rewires a region's *boundary* (the
     new nodes stay outside the member set), and the F-Tree re-validates
     enabled fissions after every rewrite ({!Magis_ftree.Ftree.prune}). *)
  let _ = ctx.Rule.frozen in
  let eligible v =
    let n = Graph.node g v in
    (not (Op.is_swap n.op))
    && (not (Op.is_input n.op))
    && Graph.out_degree g v >= 1
  in
  let pool =
    if ctx.restrict_to_hotspots then Int_set.elements ctx.hotspots
    else Graph.node_ids g
  in
  List.filter eligible pool
  |> List.sort (fun a b -> compare (tensor_bytes g b) (tensor_bytes g a))

(** Schedule distance between a producer and a consumer — swapping only
    pays off when the gap is large. *)
let distance (ctx : Rule.ctx) u v =
  match (ctx.schedule_pos u, ctx.schedule_pos v) with
  | Some a, Some b -> abs (b - a)
  | _ -> max_int

(* ------------------------------------------------------------------ *)
(* Swapping                                                           *)
(* ------------------------------------------------------------------ *)

(** Fig. 8 (e): insert Store/Load between a producer and its most distant
    consumer, so the tensor's device copy can be freed in between. *)
let swapping : Rule.t =
  {
    name = "swap";
    spec =
      S.Sound
        [
          (* the consumer survives, rewired onto a Load whose value is
             the producer's; only the Load's device copy (m*n elements)
             is new — the Store output lives host-side and counts 0 *)
          {
            S.t_name = "store-load";
            t_sources = [ S.src ~mat:true 0 [ S.V "m"; S.V "n" ] ];
            t_lhs = [ S.node 10 (S.Fixed (Op.Unary Op.Relu)) [ 0 ] ];
            t_rhs =
              [
                S.node 20 (S.Fixed Op.Store) [ 0 ];
                S.node ~same_as:0 21 (S.Fixed Op.Load) [ 20 ];
                S.node 22 (S.Fixed (Op.Unary Op.Relu)) [ 21 ];
              ];
            t_guards = [];
            t_keep = [ (10, 22) ];
            t_out = [ (10, 22) ];
            t_delta = S.Mul (S.V "m", S.V "n");
            t_ground = [ ("m", 2); ("n", 3) ];
          };
        ];
    apply =
      (fun ctx g ->
        let rewrites =
          List.concat_map
            (fun v ->
              (* pick the most distant eligible consumer *)
              let consumers =
                Graph.suc g v
                |> List.filter (fun c -> not (Op.is_swap (Graph.op g c)))
                |> List.sort (fun a b ->
                       compare (distance ctx v b) (distance ctx v a))
              in
              match consumers with
              | c :: _ when distance ctx v c > 3 ->
                  let g, store = Graph.add g Op.Store [ v ] in
                  let g, load = Graph.add g Op.Load [ store ] in
                  let g = Graph.replace_input g ~node_id:c ~old_src:v ~new_src:load in
                  [ { Rule.rule = "swap"; graph = g;
                      touched_old = Int_set.of_list [ v; c ] } ]
              | _ -> [])
            (hot_candidates ctx g)
        in
        Rule.cap ctx rewrites);
  }

(** Fig. 8 (f): remove a Store/Load pair, reconnecting the consumer
    directly. *)
let de_swapping : Rule.t =
  {
    name = "de-swap";
    spec =
      S.Sound
        [
          (* inverse of swap: drop the Store/Load pair, reconnect the
             consumer to the producer it was reading through the pair *)
          {
            S.t_name = "drop-store-load";
            t_sources = [ S.src ~mat:true 0 [ S.V "m"; S.V "n" ] ];
            t_lhs =
              [
                S.node 10 (S.Fixed Op.Store) [ 0 ];
                S.node 11 (S.Fixed Op.Load) [ 10 ];
                S.node 12 (S.Fixed (Op.Unary Op.Relu)) [ 11 ];
              ];
            t_rhs = [ S.node 20 (S.Fixed (Op.Unary Op.Relu)) [ 0 ] ];
            t_guards = [];
            t_keep = [ (12, 20) ];
            t_out = [ (12, 20) ];
            t_delta = S.Sub (S.K 0, S.Mul (S.V "m", S.V "n"));
            t_ground = [ ("m", 2); ("n", 3) ];
          };
        ];
    apply =
      (fun ctx g ->
        let rewrites =
          Graph.fold
            (fun n acc ->
              match n.op with
              | Op.Load ->
                  let store = n.inputs.(0) in
                  let src = (Graph.node g store).inputs.(0) in
                  if Graph.out_degree g store = 1 then
                    (* the Load's consumers are rewired onto [src]:
                       their operand slots change, so they belong to the
                       touched region Algorithm 2 re-schedules around *)
                    let rewired = Graph.suc g n.id in
                    let g = Graph.redirect g ~from_:n.id ~to_:src in
                    let g = Graph.remove g n.id in
                    let g = Graph.remove g store in
                    { Rule.rule = "de-swap"; graph = g;
                      touched_old =
                        Int_set.of_list (n.id :: store :: src :: rewired) }
                    :: acc
                  else acc
              | _ -> acc)
            g []
        in
        Rule.cap ctx rewrites);
  }

(* ------------------------------------------------------------------ *)
(* Re-materialization                                                 *)
(* ------------------------------------------------------------------ *)

(** Fig. 8 (a)(b): give one consumer of a multi-consumer operator its own
    re-computed copy, so the original tensor can die earlier. *)
let rematerialization : Rule.t =
  {
    name = "remat";
    spec =
      S.Sound
        [
          (* v = exp(x) with two consumers; the distant one (neg) moves
             onto a recomputed copy v' = exp(x).  v -> neg is replaced
             by v' -> neg with v' recomputing v — exactly what the
             [same_as] clause of the refinement obligation admits *)
          {
            S.t_name = "detach-consumer";
            t_sources = [ S.src 0 [ S.V "m"; S.V "n" ] ];
            t_lhs =
              [
                S.node 10 (S.Fixed (Op.Unary Op.Exp)) [ 0 ];
                S.node 11 (S.Fixed (Op.Unary Op.Relu)) [ 10 ];
                S.node 12 (S.Fixed (Op.Unary Op.Neg)) [ 10 ];
              ];
            t_rhs =
              [
                S.node 20 (S.Fixed (Op.Unary Op.Exp)) [ 0 ];
                S.node 21 (S.Fixed (Op.Unary Op.Relu)) [ 20 ];
                S.node ~same_as:10 22 (S.Fixed (Op.Unary Op.Exp)) [ 0 ];
                S.node 23 (S.Fixed (Op.Unary Op.Neg)) [ 22 ];
              ];
            t_guards = [];
            t_keep = [ (10, 20); (11, 21); (12, 23) ];
            t_out = [ (11, 21); (12, 23) ];
            t_delta = S.Mul (S.V "m", S.V "n");
            t_ground = [ ("m", 2); ("n", 3) ];
          };
        ];
    apply =
      (fun ctx g ->
        let rewrites =
          List.concat_map
            (fun v ->
              let n = Graph.node g v in
              if Op.is_input n.op || Graph.out_degree g v < 2 then []
              else
                (* detach the most distant consumer onto a re-computed copy *)
                let consumers =
                  Graph.suc g v
                  |> List.sort (fun a b ->
                         compare (distance ctx v b) (distance ctx v a))
                in
                match consumers with
                | c :: _ when distance ctx v c > 3 ->
                    let g, copy =
                      Graph.add ~label:(n.label ^ "'") g n.op
                        (Array.to_list n.inputs)
                    in
                    let g =
                      Graph.replace_input g ~node_id:c ~old_src:v ~new_src:copy
                    in
                    [ { Rule.rule = "remat"; graph = g;
                        touched_old = Int_set.of_list [ v; c ] } ]
                | _ -> [])
            (hot_candidates ctx g)
        in
        Rule.cap ctx rewrites);
  }

(** Fig. 8 (c)(d): merge two same-op same-input operators back into one. *)
let de_rematerialization : Rule.t =
  {
    name = "de-remat";
    spec =
      S.Sound
        [
          (* two identical exp(x) nodes; the later one's consumer moves
             onto the earlier, the duplicate disappears *)
          {
            S.t_name = "merge-duplicates";
            t_sources = [ S.src 0 [ S.V "m"; S.V "n" ] ];
            t_lhs =
              [
                S.node 10 (S.Fixed (Op.Unary Op.Exp)) [ 0 ];
                S.node 11 (S.Fixed (Op.Unary Op.Exp)) [ 0 ];
                S.node 12 (S.Fixed (Op.Unary Op.Relu)) [ 10 ];
                S.node 13 (S.Fixed (Op.Unary Op.Neg)) [ 11 ];
              ];
            t_rhs =
              [
                S.node 20 (S.Fixed (Op.Unary Op.Exp)) [ 0 ];
                S.node 21 (S.Fixed (Op.Unary Op.Relu)) [ 20 ];
                S.node 22 (S.Fixed (Op.Unary Op.Neg)) [ 20 ];
              ];
            t_guards = [];
            t_keep = [ (10, 20); (12, 21); (13, 22) ];
            t_out = [ (12, 21); (13, 22) ];
            t_delta = S.Sub (S.K 0, S.Mul (S.V "m", S.V "n"));
            t_ground = [ ("m", 2); ("n", 3) ];
          };
        ];
    apply =
      (fun ctx g ->
        (* group nodes by (op fingerprint, inputs) *)
        let tbl = Hashtbl.create 64 in
        Graph.iter
          (fun n ->
            if not (Op.is_input n.op) then
              let key = (Op.name n.op, Array.to_list n.inputs) in
              Hashtbl.replace tbl key
                (n.id :: (try Hashtbl.find tbl key with Not_found -> [])))
          g;
        let rewrites =
          Hashtbl.fold
            (fun _ ids acc ->
              match List.sort compare ids with
              | a :: b :: _ when Rule.unfrozen ctx a && Rule.unfrozen ctx b ->
                  let rewired = Graph.suc g b in
                  let g = Graph.redirect g ~from_:b ~to_:a in
                  let g = Graph.remove g b in
                  { Rule.rule = "de-remat"; graph = g;
                    touched_old = Int_set.of_list (a :: b :: rewired) }
                  :: acc
              | _ -> acc)
            tbl []
        in
        Rule.cap ctx rewrites);
  }

(* ------------------------------------------------------------------ *)
(* Compound (sweep) rules                                             *)
(* ------------------------------------------------------------------ *)

(** Producer is memory-bound: recomputing it is almost free (elementwise,
    normalization, view ops — the tensors activation checkpointing always
    recomputes). *)
let cheap_to_recompute g v =
  let n = Graph.node g v in
  let ins = Array.map (fun i -> Graph.shape g i) n.inputs in
  let fl = Op.flops n.op ins n.shape in
  let by = Op.bytes_moved n.op ins n.shape in
  by > 0.0 && fl /. by < 16.0

(** One rewrite that re-materializes *every* cheap hot tensor at once:
    each distant consumer gets a recomputed copy.  A single application
    performs what would otherwise take dozens of single-tensor steps —
    the granularity at which checkpointing decisions are really taken. *)
let sweep_rematerialization : Rule.t =
  {
    name = "sweep-remat";
    spec =
      S.Waiver
        "compound sweep: the rewritten region is the schedule-dependent set \
         of cheap hot tensors, with copies chained through copies — there \
         is no fixed template; covered differentially on the elementwise \
         and swap corpora";
    apply =
      (fun ctx g0 ->
        let targets =
          List.filter
            (fun v ->
              cheap_to_recompute g0 v
              && (not (Op.is_view (Graph.op g0 v)))
              && Graph.out_degree g0 v >= 1)
            (hot_candidates ctx g0)
        in
        if targets = [] then []
        else begin
          (* Copies consume copies: recompute whole cheap sub-chains,
             anchored on the expensive tensors that stay resident — the
             structure activation checkpointing produces.  Without the
             chaining, every copy would pin its original operands and no
             memory would be freed. *)
          let target_set = Int_set.of_list targets in
          let in_topo =
            List.filter (fun v -> Int_set.mem v target_set) (Graph.topo_order g0)
          in
          let g = ref g0 and touched = ref Int_set.empty in
          let copies = Hashtbl.create 16 in
          List.iter
            (fun v ->
              let n = Graph.node g0 v in
              let far =
                List.filter (fun c -> distance ctx v c > 8) (Graph.suc g0 v)
              in
              if far <> [] then begin
                let mapped u =
                  match Hashtbl.find_opt copies u with
                  | Some c -> c
                  | None -> u
                in
                let g', copy =
                  Graph.add ~label:(n.label ^ "'") !g n.op
                    (List.map mapped (Array.to_list n.inputs))
                in
                g := g';
                Hashtbl.replace copies v copy;
                List.iter
                  (fun c ->
                    g := Graph.replace_input !g ~node_id:c ~old_src:v ~new_src:copy)
                  far;
                touched :=
                  Int_set.add v (Int_set.union !touched (Int_set.of_list far))
              end)
            in_topo;
          if Int_set.is_empty !touched then []
          else [ { Rule.rule = "sweep-remat"; graph = !g; touched_old = !touched } ]
        end);
  }

(** Swap the [k] largest hot tensors in one rewrite, for a few values of
    [k] — the coarse-grained counterpart of {!swapping}. *)
let sweep_swapping : Rule.t =
  {
    name = "sweep-swap";
    spec =
      S.Waiver
        "compound sweep: inserts Store/Load pairs for the k largest hot \
         tensors, a schedule- and size-dependent selection with no fixed \
         template; covered differentially on the elementwise and swap \
         corpora";
    apply =
      (fun ctx g0 ->
        let candidates =
          List.filter
            (fun v ->
              List.exists
                (fun c ->
                  distance ctx v c > 8 && not (Op.is_swap (Graph.op g0 c)))
                (Graph.suc g0 v))
            (hot_candidates ctx g0)
        in
        List.filter_map
          (fun k ->
            let chosen = Util.take k candidates in
            if List.length chosen < k then None
            else
              let g = ref g0 and touched = ref Int_set.empty in
              List.iter
                (fun v ->
                  let far =
                    List.filter
                      (fun c ->
                        distance ctx v c > 8
                        && not (Op.is_swap (Graph.op g0 c)))
                      (Graph.suc g0 v)
                  in
                  match
                    List.sort
                      (fun a b -> compare (distance ctx v b) (distance ctx v a))
                      far
                  with
                  | [] -> ()
                  | c :: _ ->
                      let g', store = Graph.add !g Op.Store [ v ] in
                      let g', load = Graph.add g' Op.Load [ store ] in
                      g :=
                        Graph.replace_input g' ~node_id:c ~old_src:v
                          ~new_src:load;
                      touched := Int_set.add v (Int_set.add c !touched))
                chosen;
              if Int_set.is_empty !touched then None
              else
                Some
                  { Rule.rule = Printf.sprintf "sweep-swap(%d)" k;
                    graph = !g; touched_old = !touched })
          [ 2; 4; 8 ]);
  }

(** The paper's four scheduling-based rules (Fig. 8). *)
let basic = [ swapping; de_swapping; rematerialization; de_rematerialization ]

(** Basic rules plus the compound sweep rules. *)
let all = basic @ [ sweep_rematerialization; sweep_swapping ]
