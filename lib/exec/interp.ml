(** Reference interpreter: execute computation graphs on real float
    arrays.

    This is the semantic ground truth of the repository: every graph
    transformation (fission expansion, spatial/halo fission, swap and
    re-materialization rewrites, TASO substitutions) is *numerically*
    checked against it — an optimized graph must compute the same values
    as the original.

    All arithmetic is float (dtype is treated as a sizing concern).
    Backward surrogate operators (see {!Magis_models.Autodiff}) get
    simple deterministic semantics: equivalence testing needs consistency
    between the original and the transformed graph, not analytic
    correctness of gradients. *)

open Magis_ir

let interp_runs = Magis_obs.Metrics.counter "interp.runs"

type tensor = { shape : Shape.t; data : float array }

let numel t = Array.length t.data

let create shape = { shape; data = Array.make (Shape.numel shape) 0.0 }

let of_fn shape f =
  { shape; data = Array.init (Shape.numel shape) f }

(** Deterministic pseudo-random fill (for test inputs). *)
let random ?(seed = 7) shape =
  let st = Random.State.make [| seed; Shape.numel shape |] in
  of_fn shape (fun _ -> Random.State.float st 2.0 -. 1.0)

(** Integer-valued fill in [0, bound) for index tensors. *)
let indices ?(seed = 11) ~bound shape =
  let st = Random.State.make [| seed; bound |] in
  of_fn shape (fun _ -> float_of_int (Random.State.int st bound))

(* ------------------------------------------------------------------ *)
(* Index arithmetic                                                    *)
(* ------------------------------------------------------------------ *)

let strides_of shape =
  let r = Shape.rank shape in
  let s = Array.make r 1 in
  for i = r - 2 downto 0 do
    s.(i) <- s.(i + 1) * Shape.dim shape (i + 1)
  done;
  s

let offset strides idx =
  Array.fold_left ( + ) 0 (Array.mapi (fun i x -> strides.(i) * x) idx)

(** Iterate over every multi-index of [shape]. *)
let iter_indices shape f =
  let r = Shape.rank shape in
  let idx = Array.make r 0 in
  let n = Shape.numel shape in
  for _ = 1 to n do
    f idx;
    (* increment *)
    let rec bump i =
      if i >= 0 then begin
        idx.(i) <- idx.(i) + 1;
        if idx.(i) = Shape.dim shape i then begin
          idx.(i) <- 0;
          bump (i - 1)
        end
      end
    in
    bump (r - 1)
  done

(* ------------------------------------------------------------------ *)
(* Operator semantics                                                  *)
(* ------------------------------------------------------------------ *)

let unary_fn : Op.unary_kind -> float -> float = function
  | Op.Relu -> fun x -> Float.max 0.0 x
  | Op.Gelu ->
      fun x -> 0.5 *. x *. (1.0 +. Float.tanh (0.79788456 *. (x +. (0.044715 *. x *. x *. x))))
  | Op.Tanh -> Float.tanh
  | Op.Sigmoid -> fun x -> 1.0 /. (1.0 +. Float.exp (-.x))
  | Op.Exp -> Float.exp
  | Op.Sqrt -> fun x -> Float.sqrt (Float.abs x)
  | Op.Neg -> fun x -> -.x
  | Op.Identity -> Fun.id
  | Op.Dropout -> Fun.id (* deterministic: the identity *)
  | Op.Scale f -> fun x -> f *. x

let binary_fn : Op.binary_kind -> float -> float -> float = function
  | Op.Add -> ( +. )
  | Op.Sub -> ( -. )
  | Op.Mul -> ( *. )
  | Op.Div -> fun a b -> a /. (if Float.abs b < 1e-9 then 1e-9 else b)
  | Op.Max -> Float.max

let matmul2 a b ~m ~k ~n ~ta ~tb =
  let out = Array.make (m * n) 0.0 in
  let ai i j = if ta then (j * m) + i else (i * k) + j in
  let bi i j = if tb then (j * k) + i else (i * n) + j in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        acc := !acc +. (a.(ai i l) *. b.(bi l j))
      done;
      out.((i * n) + j) <- !acc
    done
  done;
  out

let eval_node (_g : Graph.t) (n : Graph.node) (ins : tensor array) : tensor =
  let out_shape = n.shape in
  let out () = create out_shape in
  let x = if Array.length ins > 0 then ins.(0) else { shape = out_shape; data = [||] } in
  match n.op with
  | Op.Input _ -> invalid_arg "Interp.eval_node: inputs come from the env"
  | Op.Unary k ->
      let f = unary_fn k in
      { shape = out_shape; data = Array.map f x.data }
  | Op.Binary k ->
      let f = binary_fn k in
      { shape = out_shape; data = Array.map2 f ins.(0).data ins.(1).data }
  | Op.Bias_add axis ->
      let t = out () in
      let strides = strides_of out_shape in
      iter_indices out_shape (fun idx ->
          let o = offset strides idx in
          t.data.(o) <- x.data.(o) +. ins.(1).data.(idx.(axis)));
      t
  | Op.Matmul { trans_a; trans_b } ->
      let m = Shape.dim out_shape 0 and nn = Shape.dim out_shape 1 in
      let k =
        if trans_a then Shape.dim ins.(0).shape 0 else Shape.dim ins.(0).shape 1
      in
      { shape = out_shape;
        data = matmul2 ins.(0).data ins.(1).data ~m ~k ~n:nn ~ta:trans_a ~tb:trans_b }
  | Op.Dense { trans_w } ->
      let r = Shape.rank ins.(0).shape in
      let k = Shape.dim ins.(0).shape (r - 1) in
      let nn = Shape.dim out_shape (Shape.rank out_shape - 1) in
      let m = Shape.numel ins.(0).shape / k in
      { shape = out_shape;
        data = matmul2 ins.(0).data ins.(1).data ~m ~k ~n:nn ~ta:false ~tb:trans_w }
  | Op.Dense_bwd_weight ->
      (* dw[k,n] = sum_batch x^T dy *)
      let rx = Shape.rank ins.(0).shape in
      let k = Shape.dim ins.(0).shape (rx - 1) in
      let nn = Shape.dim ins.(1).shape (Shape.rank ins.(1).shape - 1) in
      let m = Shape.numel ins.(0).shape / k in
      (* (x^T dy): transpose the [m,k] view of x *)
      { shape = out_shape;
        data = matmul2 ins.(0).data ins.(1).data ~m:k ~k:m ~n:nn ~ta:true ~tb:false }
  | Op.Batch_matmul { trans_a; trans_b } ->
      let r = Shape.rank out_shape in
      let m = Shape.dim out_shape (r - 2) and nn = Shape.dim out_shape (r - 1) in
      let ka =
        if trans_a then Shape.dim ins.(0).shape (r - 2)
        else Shape.dim ins.(0).shape (r - 1)
      in
      let batches = Shape.numel out_shape / (m * nn) in
      let t = out () in
      let a_sz = m * ka and b_sz = ka * nn and o_sz = m * nn in
      for b = 0 to batches - 1 do
        let slab =
          matmul2
            (Array.sub ins.(0).data (b * a_sz) a_sz)
            (Array.sub ins.(1).data (b * b_sz) b_sz)
            ~m ~k:ka ~n:nn ~ta:trans_a ~tb:trans_b
        in
        Array.blit slab 0 t.data (b * o_sz) o_sz
      done;
      t
  | Op.Conv2d { stride; padding } ->
      let t = out () in
      let xn = ins.(0) and w = ins.(1) in
      let c = Shape.dim xn.shape 1 and h = Shape.dim xn.shape 2
      and wd = Shape.dim xn.shape 3 in
      let kk = Shape.dim w.shape 0 and r = Shape.dim w.shape 2
      and s = Shape.dim w.shape 3 in
      let oh = Shape.dim out_shape 2 and ow = Shape.dim out_shape 3 in
      let xi nb ci hi wi = (((((nb * c) + ci) * h) + hi) * wd) + wi in
      let wi ko ci ri si = (((((ko * c) + ci) * r) + ri) * s) + si in
      let oi nb ko hi wi_ = (((((nb * kk) + ko) * oh) + hi) * ow) + wi_ in
      for nb = 0 to Shape.dim out_shape 0 - 1 do
        for ko = 0 to kk - 1 do
          for ho = 0 to oh - 1 do
            for wo = 0 to ow - 1 do
              let acc = ref 0.0 in
              for ci = 0 to c - 1 do
                for ri = 0 to r - 1 do
                  for si = 0 to s - 1 do
                    let hi = (ho * stride) - padding + ri in
                    let wj = (wo * stride) - padding + si in
                    if hi >= 0 && hi < h && wj >= 0 && wj < wd then
                      acc := !acc +. (ins.(0).data.(xi nb ci hi wj) *. w.data.(wi ko ci ri si))
                  done
                done
              done;
              t.data.(oi nb ko ho wo) <- !acc
            done
          done
        done
      done;
      t
  | Op.Conv2d_bwd_data { stride; padding } ->
      (* dx[n,c,h,w] = sum_{k,r,s} dy[n,k,h',w'] w[k,c,r,s]
         with h = h'*stride - padding' + r.  The 2-operand (deconv) form
         uses padding' = padding; the 3-operand data-gradient uses the
         same relation (the shape carrier fixes the extents). *)
      let t = out () in
      let dy = ins.(0) and w = ins.(1) in
      let kk = Shape.dim w.shape 0 and c = Shape.dim w.shape 1
      and r = Shape.dim w.shape 2 and s = Shape.dim w.shape 3 in
      let oh = Shape.dim dy.shape 2 and ow = Shape.dim dy.shape 3 in
      let h = Shape.dim out_shape 2 and wd = Shape.dim out_shape 3 in
      let dyi nb ko hi wi_ = (((((nb * kk) + ko) * oh) + hi) * ow) + wi_ in
      let wi ko ci ri si = (((((ko * c) + ci) * r) + ri) * s) + si in
      let xi nb ci hi wi_ = (((((nb * c) + ci) * h) + hi) * wd) + wi_ in
      for nb = 0 to Shape.dim out_shape 0 - 1 do
        for ko = 0 to kk - 1 do
          for ho = 0 to oh - 1 do
            for wo = 0 to ow - 1 do
              let v = dy.data.(dyi nb ko ho wo) in
              for ci = 0 to c - 1 do
                for ri = 0 to r - 1 do
                  for si = 0 to s - 1 do
                    let hi = (ho * stride) - padding + ri in
                    let wj = (wo * stride) - padding + si in
                    if hi >= 0 && hi < h && wj >= 0 && wj < wd then
                      t.data.(xi nb ci hi wj) <-
                        t.data.(xi nb ci hi wj) +. (v *. w.data.(wi ko ci ri si))
                  done
                done
              done
            done
          done
        done
      done;
      t
  | Op.Conv2d_bwd_weight { stride; padding } ->
      (* dw[k,c,r,s] = sum_{n,h',w'} dy[n,k,h',w'] x[n,c,h,w] *)
      let t = out () in
      let dy = ins.(0) and xx = ins.(1) in
      let kk = Shape.dim out_shape 0 and c = Shape.dim out_shape 1
      and r = Shape.dim out_shape 2 and s = Shape.dim out_shape 3 in
      let oh = Shape.dim dy.shape 2 and ow = Shape.dim dy.shape 3 in
      let h = Shape.dim xx.shape 2 and wd = Shape.dim xx.shape 3 in
      let dyi nb ko hi wi_ = (((((nb * kk) + ko) * oh) + hi) * ow) + wi_ in
      let xi nb ci hi wi_ = (((((nb * c) + ci) * h) + hi) * wd) + wi_ in
      let wi ko ci ri si = (((((ko * c) + ci) * r) + ri) * s) + si in
      for nb = 0 to Shape.dim dy.shape 0 - 1 do
        for ko = 0 to kk - 1 do
          for ho = 0 to oh - 1 do
            for wo = 0 to ow - 1 do
              let v = dy.data.(dyi nb ko ho wo) in
              for ci = 0 to c - 1 do
                for ri = 0 to r - 1 do
                  for si = 0 to s - 1 do
                    let hi = (ho * stride) - padding + ri in
                    let wj = (wo * stride) - padding + si in
                    if hi >= 0 && hi < h && wj >= 0 && wj < wd then
                      t.data.(wi ko ci ri si) <-
                        t.data.(wi ko ci ri si) +. (v *. xx.data.(xi nb ci hi wj))
                  done
                done
              done
            done
          done
        done
      done;
      t
  | Op.Pool2d { p_kind; kernel; p_stride } ->
      let t = out () in
      let c = Shape.dim x.shape 1 and h = Shape.dim x.shape 2
      and wd = Shape.dim x.shape 3 in
      let oh = Shape.dim out_shape 2 and ow = Shape.dim out_shape 3 in
      let xi nb ci hi wi_ = (((((nb * c) + ci) * h) + hi) * wd) + wi_ in
      let oi nb ci hi wi_ = (((((nb * c) + ci) * oh) + hi) * ow) + wi_ in
      for nb = 0 to Shape.dim out_shape 0 - 1 do
        for ci = 0 to c - 1 do
          for ho = 0 to oh - 1 do
            for wo = 0 to ow - 1 do
              let acc = ref (match p_kind with Op.P_max -> Float.neg_infinity | Op.P_avg -> 0.0) in
              for ri = 0 to kernel - 1 do
                for si = 0 to kernel - 1 do
                  let hi = (ho * p_stride) + ri and wj = (wo * p_stride) + si in
                  if hi < h && wj < wd then
                    let v = x.data.(xi nb ci hi wj) in
                    acc := (match p_kind with
                            | Op.P_max -> Float.max !acc v
                            | Op.P_avg -> !acc +. v)
                done
              done;
              t.data.(oi nb ci ho wo) <-
                (match p_kind with
                | Op.P_max -> !acc
                | Op.P_avg -> !acc /. float_of_int (kernel * kernel))
            done
          done
        done
      done;
      t
  | Op.Pool2d_bwd { p_stride; _ } ->
      (* surrogate: nearest-neighbour upsample of dy to x's extents *)
      let t = out () in
      let dy = ins.(0) in
      let c = Shape.dim out_shape 1 and h = Shape.dim out_shape 2
      and wd = Shape.dim out_shape 3 in
      let oh = Shape.dim dy.shape 2 and ow = Shape.dim dy.shape 3 in
      let dyi nb ci hi wi_ = (((((nb * c) + ci) * oh) + hi) * ow) + wi_ in
      let xi nb ci hi wi_ = (((((nb * c) + ci) * h) + hi) * wd) + wi_ in
      for nb = 0 to Shape.dim out_shape 0 - 1 do
        for ci = 0 to c - 1 do
          for hi = 0 to h - 1 do
            for wj = 0 to wd - 1 do
              let ho = min (oh - 1) (hi / p_stride) in
              let wo = min (ow - 1) (wj / p_stride) in
              t.data.(xi nb ci hi wj) <- dy.data.(dyi nb ci ho wo)
            done
          done
        done
      done;
      t
  | Op.Softmax axis ->
      let t = out () in
      let strides = strides_of out_shape in
      let extent = Shape.dim out_shape axis in
      iter_indices out_shape (fun idx ->
          if idx.(axis) = 0 then begin
            (* one row at a time *)
            let base = offset strides idx in
            let step = strides.(axis) in
            let mx = ref Float.neg_infinity in
            for i = 0 to extent - 1 do
              mx := Float.max !mx x.data.(base + (i * step))
            done;
            let sum = ref 0.0 in
            for i = 0 to extent - 1 do
              let e = Float.exp (x.data.(base + (i * step)) -. !mx) in
              t.data.(base + (i * step)) <- e;
              sum := !sum +. e
            done;
            for i = 0 to extent - 1 do
              t.data.(base + (i * step)) <- t.data.(base + (i * step)) /. !sum
            done
          end);
      t
  | Op.Softmax_bwd axis ->
      (* dx = y * (dy - sum(dy * y)) along the axis *)
      let dy = ins.(0) and y = ins.(1) in
      let t = out () in
      let strides = strides_of out_shape in
      let extent = Shape.dim out_shape axis in
      iter_indices out_shape (fun idx ->
          if idx.(axis) = 0 then begin
            let base = offset strides idx in
            let step = strides.(axis) in
            let dot = ref 0.0 in
            for i = 0 to extent - 1 do
              dot := !dot +. (dy.data.(base + (i * step)) *. y.data.(base + (i * step)))
            done;
            for i = 0 to extent - 1 do
              let o = base + (i * step) in
              t.data.(o) <- y.data.(o) *. (dy.data.(o) -. !dot)
            done
          end);
      t
  | Op.Layer_norm axis ->
      let t = out () in
      let inner = Shape.numel out_shape
                  / (let p = ref 1 in
                     for i = axis to Shape.rank out_shape - 1 do
                       p := !p * Shape.dim out_shape i
                     done;
                     Shape.numel out_shape / !p)
      in
      let rows = Shape.numel out_shape / inner in
      let gamma = ins.(1).data and beta = ins.(2).data in
      for row = 0 to rows - 1 do
        let base = row * inner in
        let mean = ref 0.0 in
        for i = 0 to inner - 1 do mean := !mean +. x.data.(base + i) done;
        let mean = !mean /. float_of_int inner in
        let var = ref 0.0 in
        for i = 0 to inner - 1 do
          let d = x.data.(base + i) -. mean in
          var := !var +. (d *. d)
        done;
        let inv = 1.0 /. Float.sqrt ((!var /. float_of_int inner) +. 1e-5) in
        for i = 0 to inner - 1 do
          t.data.(base + i) <-
            ((x.data.(base + i) -. mean) *. inv *. gamma.(i mod Array.length gamma))
            +. beta.(i mod Array.length beta)
        done
      done;
      t
  | Op.Layer_norm_bwd _ ->
      (* surrogate: dy scaled by gamma (broadcast over the last dims) *)
      let dy = ins.(0) and gamma = ins.(2) in
      let gl = numel gamma in
      { shape = out_shape;
        data = Array.mapi (fun i d -> d *. gamma.data.(i mod gl)) dy.data }
  | Op.Batch_norm ->
      (* frozen affine: x * gamma[c] + beta[c] *)
      let t = out () in
      let c = Shape.dim out_shape 1 in
      let hw = Shape.dim out_shape 2 * Shape.dim out_shape 3 in
      Array.iteri
        (fun i v ->
          let ci = i / hw mod c in
          t.data.(i) <- (v *. ins.(1).data.(ci)) +. ins.(2).data.(ci))
        x.data;
      t
  | Op.Reduce (k, axes) ->
      let t = out () in
      let strides = strides_of x.shape in
      let out_strides = strides_of out_shape in
      (match k with
      | Op.R_max -> Array.fill t.data 0 (Array.length t.data) Float.neg_infinity
      | _ -> ());
      iter_indices x.shape (fun idx ->
          let o_idx =
            Array.of_list
              (List.filteri
                 (fun i _ -> not (List.mem i axes))
                 (Array.to_list idx))
          in
          let o_idx = if Array.length o_idx = 0 then [| 0 |] else o_idx in
          let o = offset out_strides o_idx in
          let v = x.data.(offset strides idx) in
          match k with
          | Op.R_sum | Op.R_mean -> t.data.(o) <- t.data.(o) +. v
          | Op.R_max -> t.data.(o) <- Float.max t.data.(o) v);
      (match k with
      | Op.R_mean ->
          let count =
            List.fold_left (fun acc a -> acc * Shape.dim x.shape a) 1 axes
          in
          Array.iteri (fun i v -> t.data.(i) <- v /. float_of_int count) t.data
      | _ -> ());
      t
  | Op.Broadcast { axes; _ } ->
      let t = out () in
      let in_strides = strides_of x.shape in
      let out_strides = strides_of out_shape in
      iter_indices out_shape (fun idx ->
          let i_idx =
            Array.of_list
              (List.filteri
                 (fun i _ -> not (List.mem i axes))
                 (Array.to_list idx))
          in
          t.data.(offset out_strides idx) <- x.data.(offset in_strides i_idx));
      t
  | Op.Transpose perm ->
      let t = out () in
      let in_strides = strides_of x.shape in
      let out_strides = strides_of out_shape in
      iter_indices out_shape (fun idx ->
          (* out dim j reads in dim perm.(j): in_idx.(perm.(j)) = idx.(j) *)
          let real = Array.make (Shape.rank x.shape) 0 in
          Array.iteri (fun j p -> real.(p) <- idx.(j)) perm;
          t.data.(offset out_strides idx) <- x.data.(offset in_strides real));
      t
  | Op.Reshape _ -> { shape = out_shape; data = Array.copy x.data }
  | Op.Slice { axis; lo; hi = _ } ->
      let t = out () in
      let in_strides = strides_of x.shape in
      let out_strides = strides_of out_shape in
      iter_indices out_shape (fun idx ->
          let i_idx = Array.copy idx in
          i_idx.(axis) <- i_idx.(axis) + lo;
          t.data.(offset out_strides idx) <- x.data.(offset in_strides i_idx));
      t
  | Op.Concat axis ->
      let t = out () in
      let out_strides = strides_of out_shape in
      let base = ref 0 in
      Array.iter
        (fun (inp : tensor) ->
          let in_strides = strides_of inp.shape in
          iter_indices inp.shape (fun idx ->
              let o_idx = Array.copy idx in
              o_idx.(axis) <- o_idx.(axis) + !base;
              t.data.(offset out_strides o_idx) <-
                inp.data.(offset in_strides idx));
          base := !base + Shape.dim inp.shape axis)
        ins;
      t
  | Op.Embedding ->
      let table = ins.(0) and ids = ins.(1) in
      let c = Shape.dim table.shape 1 in
      let v = Shape.dim table.shape 0 in
      let t = out () in
      Array.iteri
        (fun i id ->
          let row = ((int_of_float id mod v) + v) mod v in
          Array.blit table.data (row * c) t.data (i * c) c)
        ids.data;
      t
  | Op.Embedding_bwd ->
      let dy = ins.(0) and ids = ins.(1) in
      let t = out () in
      let c = Shape.dim out_shape 1 in
      let v = Shape.dim out_shape 0 in
      Array.iteri
        (fun i id ->
          let row = ((int_of_float id mod v) + v) mod v in
          for j = 0 to c - 1 do
            t.data.((row * c) + j) <- t.data.((row * c) + j) +. dy.data.((i * c) + j)
          done)
        ids.data;
      t
  | Op.Store | Op.Load -> { shape = out_shape; data = Array.copy x.data }

(* ------------------------------------------------------------------ *)
(* Graph execution                                                     *)
(* ------------------------------------------------------------------ *)

(** Evaluate [g]: inputs come from [env] (node id -> tensor).  Returns all
    node values. *)
let run (g : Graph.t) ~(env : int -> tensor) : (int, tensor) Hashtbl.t =
  Magis_obs.Trace.with_span ~cat:"exec"
    ~args:[ ("nodes", string_of_int (Graph.n_nodes g)) ]
    "interp"
  @@ fun () ->
  Magis_obs.Metrics.incr interp_runs;
  let values = Hashtbl.create (Graph.n_nodes g) in
  List.iter
    (fun v ->
      let n = Graph.node g v in
      let t =
        if Op.is_input n.op then env v
        else
          let ins = Array.map (fun u -> Hashtbl.find values u) n.inputs in
          eval_node g n ins
      in
      if not (Shape.equal_dims t.shape n.shape) then
        invalid_arg
          (Printf.sprintf "Interp.run: node %d (%s) produced %s, expected %s"
             v (Op.name n.op)
             (Shape.to_string t.shape)
             (Shape.to_string n.shape));
      Hashtbl.replace values v t)
    (Graph.topo_order g);
  values

(** Deterministic inputs for a graph: random floats, valid indices for
    I64 tensors (embedding ids). *)
let default_env (g : Graph.t) : int -> tensor =
  let memo = Hashtbl.create 16 in
  fun v ->
    match Hashtbl.find_opt memo v with
    | Some t -> t
    | None ->
        let n = Graph.node g v in
        let t =
          if Shape.dtype n.shape = Shape.I64 then
            (* ids: bound by the consumer's table if any, else 8 *)
            let bound =
              List.fold_left
                (fun acc c ->
                  match (Graph.node g c).op with
                  | Op.Embedding -> Shape.dim (Graph.shape g (Graph.node g c).inputs.(0)) 0
                  | _ -> acc)
                8 (Graph.suc g v)
            in
            indices ~seed:(17 + v) ~bound n.shape
          else random ~seed:(23 + v) n.shape
        in
        Hashtbl.replace memo v t;
        t

(** Maximum absolute difference between two tensors. *)
let max_diff a b =
  if not (Shape.equal_dims a.shape b.shape) then infinity
  else
    let d = ref 0.0 in
    Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.data.(i)))) a.data;
    !d
