(** MAGIS: memory optimization for DNN computation graphs via coordinated
    graph transformation and scheduling (Chen et al., ASPLOS 2024).

    This module is the public facade; the sub-libraries remain directly
    usable.  A typical session:

    {[
      let cache = Magis.Op_cost.create Magis.Hardware.default in
      let graph = Magis.Zoo.(find "UNet").build Magis.Zoo.Quick in
      let result = Magis.Search.optimize_memory cache ~overhead:0.10 graph in
      Fmt.pr "%a@." Magis.Mstate.pp result.best
    ]} *)

(* IR substrate *)
module Shape = Magis_ir.Shape
module Op = Magis_ir.Op
module Graph = Magis_ir.Graph
module Dominator = Magis_ir.Dominator
module Wl_hash = Magis_ir.Wl_hash
module Util = Magis_ir.Util

(* cost model and simulator *)
module Hardware = Magis_cost.Hardware
module Op_cost = Magis_cost.Op_cost
module Lifetime = Magis_cost.Lifetime
module Simulator = Magis_cost.Simulator
module Allocator = Magis_cost.Allocator
module Sim_cache = Magis_cost.Sim_cache

(* observability: tracing, metrics, timeline/profile export *)
module Json = Magis_obs.Json
module Trace = Magis_obs.Trace
module Metrics = Magis_obs.Metrics
module Timeline = Magis_obs.Timeline
module Profile = Magis_obs.Profile

(* parallel runtime: domain pool and striped-lock table *)
module Pool = Magis_par.Pool
module Striped = Magis_par.Striped

(* resilience: fault injection, retry, crash-safe checkpoints *)
module Fault = Magis_resilience.Fault
module Retry = Magis_resilience.Retry
module Checkpoint = Magis_resilience.Checkpoint
module Interrupt = Magis_resilience.Interrupt

(* dimension graph and fission *)
module Dgraph = Magis_dgraph.Dgraph
module Fission = Magis_ftree.Fission
module Ftree = Magis_ftree.Ftree
module Spatial = Magis_ftree.Spatial

(* static analysis: IR verifier, schedule checker, rule lint, symbolic
   rule-soundness proofs and allocator interference *)
module Diagnostic = Magis_analysis.Diagnostic
module Verify = Magis_analysis.Verify
module Sched_check = Magis_analysis.Sched_check
module Rule_lint = Magis_analysis.Rule_lint
module Liveness = Magis_analysis.Liveness
module Membound = Magis_analysis.Membound
module Analysis_hooks = Magis_analysis.Hooks
module Symshape = Magis_analysis.Symshape
module Rule_sound = Magis_analysis.Rule_sound
module Interfere = Magis_analysis.Interfere

(* transformation rules *)
module Rule = Magis_rules.Rule
module Sched_rules = Magis_rules.Sched_rules
module Taso_rules = Magis_rules.Taso_rules

(* scheduling *)
module Partition = Magis_sched.Partition
module Reorder = Magis_sched.Reorder
module Incremental = Magis_sched.Incremental
module Listsched = Magis_sched.Listsched

(* optimizer *)
module Mstate = Magis_opt.Mstate
module Search = Magis_opt.Search

(* model zoo *)
module Builder = Magis_models.Builder
module Autodiff = Magis_models.Autodiff
module Resnet = Magis_models.Resnet
module Transformer = Magis_models.Transformer
module Unet = Magis_models.Unet
module Randnet = Magis_models.Randnet
module Zoo = Magis_models.Zoo

(* baselines *)
module Outcome = Magis_baselines.Outcome
module Chain = Magis_baselines.Chain
module Naive = Magis_baselines.Naive
module Fusion_compiler = Magis_baselines.Fusion_compiler
module Pofo = Magis_baselines.Pofo
module Xla = Magis_baselines.Xla
module Dtr = Magis_baselines.Dtr
module Microbatch = Magis_baselines.Microbatch

(* code generation and export *)
module Pytorch_codegen = Magis_codegen.Pytorch
module Export = Magis_codegen.Export
module Program_parser = Magis_codegen.Parser

(* frontier service: dominance-pruned Pareto sets, cached on disk *)
module Frontier = Magis_frontier.Frontier
module Frontier_cache = Magis_frontier.Frontier_cache
module Frontier_build = Magis_frontier.Frontier_build

(* optimization service *)
module Serve_protocol = Magis_serve.Protocol
module Serve_server = Magis_serve.Server
module Serve_client = Magis_serve.Client
module Serve_loadgen = Magis_serve.Loadgen
