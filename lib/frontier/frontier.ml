(** Dominance-pruned memory–latency Pareto frontier (see the interface
    for the contract).

    Representation: a sorted array of points, peak ascending — the
    dominance invariant then forces latency strictly descending, so a
    budget query is one binary search for the rightmost point with
    [peak <= budget].  Inserts are O(n) (frontiers stay small: one per
    workload × hardware × config), queries O(log n).

    Harvested schedules are delta-encoded with the simulation cache's
    codec ({!Magis_cost.Sim_cache.Codec}) against one shared parent —
    the first schedule ever inserted — mirroring the cache's
    depth-1-chain discipline: most harvested schedules differ from the
    baseline order in one rewritten window, so a point stores the
    window, not the whole permutation. *)

module Json = Magis_obs.Json
module Codec = Magis_cost.Sim_cache.Codec

type point = {
  peak : int;
  latency : float;
  iteration : int;
  sched : int list;
}

type counters = {
  harvested : int;
  pruned : int;
  evicted : int;
  queries : int;
  hits : int;
}

type stored = {
  s_peak : int;
  s_latency : float;
  s_iteration : int;
  s_code : Codec.code;
}

type t = {
  mutable pts : stored array;  (** peak ascending, latency descending *)
  mutable parent : int list option;  (** shared delta parent *)
  mutable harvested : int;
  mutable pruned : int;
  mutable evicted : int;
  mutable queries : int;
  mutable hits : int;
}

let create () =
  {
    pts = [||];
    parent = None;
    harvested = 0;
    pruned = 0;
    evicted = 0;
    queries = 0;
    hits = 0;
  }

let size t = Array.length t.pts

let counters t =
  {
    harvested = t.harvested;
    pruned = t.pruned;
    evicted = t.evicted;
    queries = t.queries;
    hits = t.hits;
  }

let point_of (s : stored) =
  {
    peak = s.s_peak;
    latency = s.s_latency;
    iteration = s.s_iteration;
    sched = Codec.decode s.s_code;
  }

let points t = Array.to_list (Array.map point_of t.pts)

let peak_range t =
  match Array.length t.pts with
  | 0 -> None
  | n -> Some (t.pts.(0).s_peak, t.pts.(n - 1).s_peak)

(* Deterministic tie-break on exact (peak, latency) collisions: the
   earlier iteration wins, then the lexicographically smaller schedule —
   an order-independent rule, so merges commute. *)
let tie_key (s : stored) = (s.s_iteration, Codec.decode s.s_code)

let insert t ~peak ~latency ~iteration sched =
  t.harvested <- t.harvested + 1;
  let tied (s : stored) = s.s_peak = peak && s.s_latency = latency in
  let keep_existing =
    Array.exists
      (fun s ->
        if tied s then tie_key s <= (iteration, sched)
        else s.s_peak <= peak && s.s_latency <= latency)
      t.pts
  in
  if keep_existing then begin
    t.pruned <- t.pruned + 1;
    false
  end
  else begin
    (* the candidate enters; evict everything it (weakly) dominates *)
    let survivors =
      List.filter
        (fun s -> not (peak <= s.s_peak && latency <= s.s_latency))
        (Array.to_list t.pts)
    in
    t.evicted <- t.evicted + (Array.length t.pts - List.length survivors);
    let code =
      match t.parent with
      | None ->
          t.parent <- Some sched;
          Codec.full sched
      | Some parent -> Codec.encode ~parent sched
    in
    let entry =
      { s_peak = peak; s_latency = latency; s_iteration = iteration;
        s_code = code }
    in
    t.pts <-
      Array.of_list
        (List.sort
           (fun a b -> compare (a.s_peak, b.s_latency) (b.s_peak, a.s_latency))
           (entry :: survivors));
    true
  end

let insert_point t (p : point) =
  insert t ~peak:p.peak ~latency:p.latency ~iteration:p.iteration p.sched

let query t ~budget =
  t.queries <- t.queries + 1;
  (* rightmost point with peak <= budget: by the dominance invariant it
     is also the lowest-latency feasible point *)
  let n = Array.length t.pts in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.pts.(mid).s_peak <= budget then lo := mid + 1 else hi := mid
  done;
  if !lo = 0 then None
  else begin
    t.hits <- t.hits + 1;
    Some (point_of t.pts.(!lo - 1))
  end

let merge a b =
  let m = create () in
  List.iter (fun p -> ignore (insert_point m p)) (points a);
  List.iter (fun p -> ignore (insert_point m p)) (points b);
  m

let delta_stats t =
  Array.fold_left
    (fun (fulls, deltas) s ->
      if Codec.is_delta s.s_code then (fulls, deltas + 1)
      else (fulls + 1, deltas))
    (0, 0) t.pts

let resident_ints t =
  let shared =
    match t.parent with Some p -> List.length p | None -> 0
  in
  Array.fold_left (fun acc s -> acc + Codec.stored_ints s.s_code) shared t.pts

(* ------------------------------------------------------------------ *)
(* JSON (de)serialization                                              *)
(* ------------------------------------------------------------------ *)

exception Invalid of string

let () =
  Printexc.register_printer (function
    | Invalid msg ->
        Some (Printf.sprintf "Magis_frontier.Frontier.Invalid(%s)" msg)
    | _ -> None)

let invalid fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt

let json_version = 1

let point_to_json (p : point) =
  Json.Obj
    [
      ("peak", Json.Int p.peak);
      ("latency", Json.Float p.latency);
      ("iteration", Json.Int p.iteration);
      ("sched", Json.List (List.map (fun i -> Json.Int i) p.sched));
    ]

let to_json t =
  Json.Obj
    [
      ("version", Json.Int json_version);
      ("points", Json.List (List.map point_to_json (points t)));
      ("harvested", Json.Int t.harvested);
      ("pruned", Json.Int t.pruned);
      ("evicted", Json.Int t.evicted);
      ("queries", Json.Int t.queries);
      ("hits", Json.Int t.hits);
    ]

let req_int doc key =
  match Option.bind (Json.member key doc) Json.to_int with
  | Some i -> i
  | None -> invalid "missing integer field %S" key

let req_float doc key =
  match Option.bind (Json.member key doc) Json.to_float with
  | Some f -> f
  | None -> invalid "missing number field %S" key

let point_of_json doc =
  let sched =
    match Json.member "sched" doc with
    | Some (Json.List l) ->
        List.map
          (fun v ->
            match Json.to_int v with
            | Some i -> i
            | None -> invalid "field \"sched\" must hold integers")
          l
    | _ -> invalid "missing list field \"sched\""
  in
  {
    peak = req_int doc "peak";
    latency = req_float doc "latency";
    iteration = req_int doc "iteration";
    sched;
  }

let of_json doc =
  (match Json.member "version" doc with
  | Some (Json.Int v) when v = json_version -> ()
  | Some (Json.Int v) -> invalid "frontier version %d, expected %d" v
                           json_version
  | _ -> invalid "missing integer field \"version\"");
  let t = create () in
  (match Json.member "points" doc with
  | Some (Json.List l) ->
      List.iter (fun d -> ignore (insert_point t (point_of_json d))) l
  | _ -> invalid "missing list field \"points\"");
  (* inserting replayed the points; the recorded counters are the
     original frontier's history, so restore them verbatim *)
  t.harvested <- req_int doc "harvested";
  t.pruned <- req_int doc "pruned";
  t.evicted <- req_int doc "evicted";
  t.queries <- req_int doc "queries";
  t.hits <- req_int doc "hits";
  t

let pp ppf t =
  Fmt.pf ppf "frontier(%d points%a, %d harvested, %d pruned, %d evicted)"
    (size t)
    (fun ppf () ->
      match peak_range t with
      | None -> ()
      | Some (lo, hi) ->
          Fmt.pf ppf ", %.1f-%.1f MB" (float_of_int lo /. 1e6)
            (float_of_int hi /. 1e6))
    () t.harvested t.pruned t.evicted
