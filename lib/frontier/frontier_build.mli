(** One search, a whole frontier: harvest every exactly-evaluated
    candidate of a {!Magis_opt.Search} run into a {!Frontier}, persist
    it with {!Frontier_cache}, and answer later memory-budget questions
    without searching again.

    The harvest rides the search's observation-only hook
    ([Search.config.harvest]): it sees every exactly-evaluated candidate
    at the serial merge, in candidate order, and cannot change the
    trajectory — the returned best state is bit-identical with
    harvesting on or off (A/B-enforced in the tests). *)

open Magis_ir
open Magis_cost
module Search = Magis_opt.Search

(** Harvest callback inserting each observed state's
    [(peak_mem, latency, schedule)] into the frontier — the value to put
    in [Search.config.harvest]. *)
val harvest_into :
  Frontier.t -> iteration:int -> Magis_opt.Mstate.t -> unit

(** The frontier cache key: {!Search.trajectory_fingerprint} of the
    configuration, mode, hardware and graph.  [config] defaults to
    {!Search.default_config}; observation-only hooks in it are ignored
    by the fingerprint, so the key is stable across harvesting runs and
    plain runs. *)
val key :
  ?config:Search.config -> Search.mode -> hw:Hardware.t -> Graph.t -> int64

(** Run the search with harvesting on and return the swept frontier
    alongside the ordinary search result.  The unoptimized baseline
    state is inserted as iteration 0, so the frontier's maximum peak is
    the baseline peak — which makes ratio budgets meaningful. *)
val build :
  ?config:Search.config ->
  Op_cost.t ->
  Search.mode ->
  Graph.t ->
  Frontier.t * Search.result

(** Serve the frontier for [(config, mode, hardware, graph)] from
    [dir], building and persisting it on a miss.  [`Hit] answers with
    zero searches. *)
val cached_or_build :
  ?config:Search.config ->
  dir:string ->
  Op_cost.t ->
  Search.mode ->
  Graph.t ->
  Frontier.t * [ `Hit | `Built of Search.result ]

(** A ratio budget in bytes: [ratio] × the frontier's maximum resident
    peak (the baseline peak when built by {!build}); 0 on an empty
    frontier. *)
val budget_of_ratio : Frontier.t -> ratio:float -> int

(** {!Frontier.query} at {!budget_of_ratio}. *)
val query_ratio : Frontier.t -> ratio:float -> Frontier.point option
