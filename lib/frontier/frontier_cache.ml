(** On-disk frontier persistence (see the interface).

    Files reuse {!Magis_resilience.Checkpoint}'s container — magic,
    version, fingerprint, digested Marshal payload, written
    tmp+fsync+rename — so a cached frontier inherits the checkpoint
    subsystem's crash-atomicity and staleness detection.  The payload is
    the frontier's JSON document ({!Frontier.to_json}), which
    round-trips points and counters exactly; reloading re-delta-encodes
    the schedules, so the on-disk format is independent of the codec's
    internals.  The trajectory fingerprint is stored both in the header
    (as the checkpoint fingerprint) and in the file name, so one
    directory holds many frontiers and lookup is a stat, not a scan. *)

module Checkpoint = Magis_resilience.Checkpoint

(* Bump when the payload representation changes. *)
let version = 1

let path ~dir ~key =
  Filename.concat dir (Printf.sprintf "frontier-%016Lx.ckpt" key)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir ~key frontier =
  mkdir_p dir;
  Checkpoint.save
    ~path:(path ~dir ~key)
    ~version ~fingerprint:key
    (Frontier.to_json frontier)

let load ~dir ~key =
  let p = path ~dir ~key in
  if not (Checkpoint.exists p) then None
  else
    match
      Frontier.of_json (Checkpoint.load ~path:p ~version ~fingerprint:key)
    with
    | fr -> Some fr
    | exception (Checkpoint.Incompatible _ | Frontier.Invalid _) ->
        (* stale / foreign / corrupt file: a miss, not an error — the
           caller rebuilds and overwrites it *)
        None
