(** Atomic on-disk persistence for {!Frontier.t} values, keyed by the
    search trajectory fingerprint.

    A cached frontier is valid only for the exact (workload, hardware,
    mode, configuration) combination whose search produced it, so the
    cache key is {!Magis_opt.Search.trajectory_fingerprint} — the same
    digest that guards search checkpoints.  Any drift in the graph, the
    hardware profile or a trajectory-relevant knob changes the key, and
    the stale file simply stops being found; a file whose header
    disagrees with its name (corruption, foreign writer) loads as a
    miss, never as wrong data. *)

(** [path ~dir ~key] — where {!save} puts the frontier for [key]
    (a [frontier-<key>.ckpt] file inside [dir]). *)
val path : dir:string -> key:int64 -> string

(** Atomically write [frontier] for [key], creating [dir] (and parents)
    as needed. *)
val save : dir:string -> key:int64 -> Frontier.t -> unit

(** The frontier previously saved for [key], or [None] when the file is
    missing, stale, foreign or corrupt.  Points and counters round-trip
    exactly. *)
val load : dir:string -> key:int64 -> Frontier.t option
