(** Dominance-pruned memory–latency Pareto frontier.

    A frontier is the set of non-dominated [(peak bytes, latency)]
    points a search swept past, each carrying the schedule that achieved
    it.  Point [a] dominates [b] when [a.peak <= b.peak] and
    [a.latency <= b.latency] (and they differ); the structure keeps only
    non-dominated points, so one search answers every later memory-budget
    question — "what is the best latency under B bytes?" — with a single
    O(log n) lookup instead of a fresh search.

    Schedules are delta-encoded against the first inserted schedule with
    the simulation cache's codec ({!Magis_cost.Sim_cache.Codec}): a
    harvested schedule usually differs from the baseline order in one
    rewritten window, so a point stores the window, not the whole
    permutation. *)

(** A frontier point, schedule decoded. *)
type point = {
  peak : int;  (** peak memory, bytes *)
  latency : float;  (** seconds *)
  iteration : int;  (** search iteration that produced the state *)
  sched : int list;  (** node execution order *)
}

type counters = {
  harvested : int;  (** insert attempts *)
  pruned : int;  (** candidates rejected as dominated (or tie-losers) *)
  evicted : int;  (** resident points displaced by better candidates *)
  queries : int;  (** budget lookups *)
  hits : int;  (** lookups that found a feasible point *)
}

type t

val create : unit -> t

(** Number of resident (non-dominated) points. *)
val size : t -> int

val counters : t -> counters

(** Resident points, peak ascending (hence latency descending). *)
val points : t -> point list

(** [(min, max)] resident peak, or [None] when empty. *)
val peak_range : t -> (int * int) option

(** Offer a point.  Returns [true] when it entered the frontier (any
    points it weakly dominates are evicted), [false] when an existing
    point weakly dominates it.  Exact [(peak, latency)] ties keep the
    point with the smaller [(iteration, sched)] — an order-independent
    rule, so the resident set depends only on the multiset of points
    offered, never on their order. *)
val insert :
  t -> peak:int -> latency:float -> iteration:int -> int list -> bool

val insert_point : t -> point -> bool

(** Best (lowest-latency) point with [peak <= budget], or [None] when no
    resident point fits.  O(log n). *)
val query : t -> budget:int -> point option

(** Fresh frontier holding the non-dominated union of both inputs'
    points (counters start at the inserts the merge itself performed).
    Commutative and idempotent up to resident points. *)
val merge : t -> t -> t

(** [(fulls, deltas)] — how many resident schedules are stored whole vs
    delta-encoded. *)
val delta_stats : t -> int * int

(** Integers resident across the shared parent and all stored codes —
    the footprint delta encoding is saving against [size * n_nodes]. *)
val resident_ints : t -> int

(** Raised by {!of_json} on a malformed or wrong-version document. *)
exception Invalid of string

(** Round-trips exactly: floats print shortest-exact, counters and
    points are preserved verbatim. *)
val to_json : t -> Magis_obs.Json.t

val of_json : Magis_obs.Json.t -> t

val pp : Format.formatter -> t -> unit
