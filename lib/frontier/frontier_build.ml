(** Harvesting frontiers from searches and serving them from the cache
    (see the interface). *)

open Magis_cost
module Search = Magis_opt.Search
module Mstate = Magis_opt.Mstate

let harvest_into fr ~iteration (s : Mstate.t) =
  ignore
    (Frontier.insert fr ~peak:s.peak_mem ~latency:s.latency ~iteration
       s.schedule)

let key ?(config = Search.default_config) mode ~hw graph =
  Search.trajectory_fingerprint config mode
    ~hw:(Hardware.fingerprint hw)
    graph

let build ?(config = Search.default_config) cache mode graph =
  let fr = Frontier.create () in
  let config = { config with Search.harvest = Some (harvest_into fr) } in
  let result = Search.run ~config cache mode graph in
  (* the unoptimized starting state is never a candidate, so the hook
     never sees it; insert it explicitly — it anchors the frontier's
     maximum peak at the baseline, which the ratio-budget helpers below
     rely on *)
  harvest_into fr ~iteration:0 result.Search.initial;
  (fr, result)

let cached_or_build ?(config = Search.default_config) ~dir cache mode graph =
  let key = key ~config mode ~hw:cache.Op_cost.hw graph in
  match Frontier_cache.load ~dir ~key with
  | Some fr -> (fr, `Hit)
  | None ->
      let fr, result = build ~config cache mode graph in
      Frontier_cache.save ~dir ~key fr;
      (fr, `Built result)

let budget_of_ratio fr ~ratio =
  match Frontier.peak_range fr with
  | None -> 0
  | Some (_, max_peak) ->
      int_of_float (ratio *. float_of_int max_peak)

let query_ratio fr ~ratio = Frontier.query fr ~budget:(budget_of_ratio fr ~ratio)
