(** The paper's evaluation workloads (Table 2), buildable at [Full]
    (paper-scale) or [Quick] (depth/resolution-reduced, same per-layer
    structure) scale.

    Also the single home of the model-name lists the benches and tests
    share, and of the batch-size sweep helpers the frontier service uses
    to turn one model into a family of deployment scenarios. *)

open Magis_ir

type scale = Quick | Full

type workload = {
  name : string;
  batch : int;
  config : string;  (** the Table 2 "other configuration" column *)
  build : scale -> Graph.t;
}

val resnet50 : workload
val bert : workload
val vit : workload
val unet : workload
val unetpp : workload
val gpt_neo : workload
val btlm : workload

(** All seven, in Table 2 order. *)
val all : workload list

(** The seven names, in Table 2 order. *)
val names : string list

(** The four-model subset of the Pareto-curve experiments (Fig. 11 and
    the frontier sweeps). *)
val pareto_quad : string list

(** The three-model subset of the design-ablation experiments. *)
val ablation_trio : string list

(** The two small U-Nets the quick smoke tests and load mixes use. *)
val smoke_pair : string list

(** Case-insensitive lookup; raises [Invalid_argument] on unknown names. *)
val find : string -> workload

(** The same workload rebuilt at another batch size (both scales);
    raises [Invalid_argument] on a non-positive batch.  [with_batch w
    ~batch:w.batch] builds graphs identical to [w]'s. *)
val with_batch : workload -> batch:int -> workload

(** [with_batch] over a list of batch sizes, in order. *)
val batch_sweep : workload -> batches:int list -> workload list
