(** A small imperative DSL for constructing computation graphs.

    A {!t} wraps a growing {!Magis_ir.Graph.t}; each combinator adds one
    operator node and returns its id.  [finish] extracts the immutable
    graph. *)

open Magis_ir

type t

val create : unit -> t

(** The accumulated (immutable) graph. *)
val finish : t -> Graph.t

(** Same as {!finish}; reads better mid-construction. *)
val graph : t -> Graph.t

val shape : t -> int -> Shape.t

(* sources *)
val input : ?label:string -> t -> int list -> dtype:Shape.dtype -> int
val weight : ?label:string -> t -> int list -> dtype:Shape.dtype -> int
val label_input : ?label:string -> t -> int list -> dtype:Shape.dtype -> int

(** Add an arbitrary operator node over existing node ids. *)
val op : ?label:string -> t -> Op.kind -> int list -> int

(* shorthand combinators *)
val matmul : ?trans_a:bool -> ?trans_b:bool -> t -> int -> int -> int
val dense : ?trans_w:bool -> t -> int -> int -> int
val bmm : ?trans_a:bool -> ?trans_b:bool -> t -> int -> int -> int
val conv2d : ?stride:int -> ?padding:int -> t -> int -> int -> int
val maxpool2d : ?kernel:int -> ?stride:int -> t -> int -> int
val avgpool2d : ?kernel:int -> ?stride:int -> t -> int -> int
val relu : t -> int -> int
val gelu : t -> int -> int
val tanh_ : t -> int -> int
val sigmoid : t -> int -> int
val dropout : t -> int -> int
val scale : t -> float -> int -> int
val add : t -> int -> int -> int
val sub : t -> int -> int -> int
val mul : t -> int -> int -> int
val bias_add : ?axis:int -> t -> int -> int -> int
val softmax : t -> axis:int -> int -> int
val layer_norm : t -> axis:int -> int -> int -> int -> int
val batch_norm : t -> int -> int -> int -> int
val reduce_sum : t -> axes:int list -> int -> int
val reduce_mean : t -> axes:int list -> int -> int
val transpose : t -> perm:int array -> int -> int
val reshape : t -> dims:int array -> int -> int
val slice : t -> axis:int -> lo:int -> hi:int -> int -> int
val concat : t -> axis:int -> int list -> int
val embedding : t -> int -> int -> int

(** Transposed convolution for decoder upsampling, realized as the data
    gradient of a strided convolution. *)
val deconv2d : ?stride:int -> t -> int -> int -> int

(** Linear layer: dense + bias along the last axis. *)
val linear : t -> int -> int -> int -> int

(** Scalar training loss: sum-reduce every axis of [pred]. *)
val sum_loss : t -> int -> int
