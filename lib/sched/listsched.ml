(** Critical-path list scheduling (see the interface).

    The implementation mirrors {!Reorder.greedy_schedule}'s O((V+E) log V)
    machinery — remaining-consumer counts deciding when a tensor dies, a
    priority map over the ready set, re-keying only the candidates whose
    operands were touched by the last execution — but orders the ready
    set by descending critical-path length first and uses the memory
    delta only to break ties, the VLIW-style priority of SNIPPETS.md
    snippet 2. *)

open Magis_ir
module Int_set = Util.Int_set

let pinned = Partition.pinned

(** Longest [cost_of]-weighted path from each node to a sink, by one
    backward pass over the reverse topological order. *)
let critical_path ~cost_of (g : Graph.t) : (int, float) Hashtbl.t =
  let order = Graph.topo_order g in
  let cp = Hashtbl.create (Graph.n_nodes g) in
  List.iter
    (fun v ->
      let tail =
        List.fold_left
          (fun acc s -> Float.max acc (Hashtbl.find cp s))
          0.0 (Graph.suc g v)
      in
      Hashtbl.replace cp v (cost_of v +. tail))
    (List.rev order);
  cp

let schedule_members ?size_of ~cost_of (g : Graph.t) (members : Int_set.t) :
    int list =
  let size_of =
    match size_of with
    | Some f -> f
    | None -> fun v -> Magis_cost.Lifetime.default_size g v
  in
  let cp = critical_path ~cost_of g in
  let module Km = Map.Make (struct
    (* (-critical path, net memory delta, size, id): longest chain first,
       memory-friendliest on ties, id for determinism *)
    type t = float * int * int * int

    let compare = compare
  end) in
  let remaining = Hashtbl.create 64 in
  let freeable = Hashtbl.create 64 in
  Int_set.iter
    (fun v ->
      let succs = Graph.succ_set g v in
      let in_members = Int_set.filter (fun s -> Int_set.mem s members) succs in
      Hashtbl.replace remaining v (Int_set.cardinal in_members);
      Hashtbl.replace freeable v
        (Int_set.cardinal in_members = Int_set.cardinal succs
        && not (pinned g v)))
    members;
  let in_member_preds v =
    List.filter (fun u -> Int_set.mem u members) (Graph.pre g v)
  in
  let missing = Hashtbl.create 64 in
  Int_set.iter
    (fun v -> Hashtbl.replace missing v (List.length (in_member_preds v)))
    members;
  let potential_freed v =
    let from_preds =
      List.fold_left
        (fun acc u ->
          if Hashtbl.find remaining u = 1 && Hashtbl.find freeable u then
            acc + size_of u
          else acc)
        0
        (List.sort_uniq compare (in_member_preds v))
    in
    if Hashtbl.find remaining v = 0 && Hashtbl.find freeable v then
      from_preds + size_of v
    else from_preds
  in
  let key v =
    (-.Hashtbl.find cp v, size_of v - potential_freed v, size_of v, v)
  in
  let current_key = Hashtbl.create 64 in
  let q = ref Km.empty in
  let enqueue v =
    let k = key v in
    (match Hashtbl.find_opt current_key v with
    | Some old -> q := Km.remove old !q
    | None -> ());
    Hashtbl.replace current_key v k;
    q := Km.add k v !q
  in
  Int_set.iter
    (fun v -> if Hashtbl.find missing v = 0 then enqueue v)
    members;
  let acc = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match Km.min_binding_opt !q with
    | None -> continue_ := false
    | Some (k, v) ->
        q := Km.remove k !q;
        Hashtbl.remove current_key v;
        acc := v :: !acc;
        (* consume operands: the last remaining consumer of a dying
           tensor gets re-keyed (its net delta improved) *)
        let touched = ref [] in
        List.iter
          (fun u ->
            let r = Hashtbl.find remaining u - 1 in
            Hashtbl.replace remaining u r;
            if r = 1 then
              Int_set.iter
                (fun c ->
                  if Hashtbl.mem current_key c then touched := c :: !touched)
                (Graph.succ_set g u))
          (List.sort_uniq compare (in_member_preds v));
        List.iter
          (fun s ->
            if Int_set.mem s members then begin
              let m = Hashtbl.find missing s - 1 in
              Hashtbl.replace missing s m;
              if m = 0 then enqueue s
            end)
          (Graph.suc g v);
        List.iter (fun c -> if Hashtbl.mem current_key c then enqueue c) !touched
  done;
  List.rev !acc

let schedule ?size_of ~cost_of (g : Graph.t) : int list =
  let members = Int_set.of_list (Graph.node_ids g) in
  let order = schedule_members ?size_of ~cost_of g members in
  assert (Graph.is_valid_order g order);
  order
