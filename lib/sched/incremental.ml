(** Incremental scheduling (Algorithm 2 of the paper).

    After a transformation turns [old_graph] into [new_graph] by rewriting
    the nodes [mutated_old], only a window of the old schedule around the
    rewritten region needs rescheduling.  [GetRescheduleInterval] widens
    the window until it hits good cut points — nodes with small
    narrow-waist values — using the paper's empirical thresholds
    (l < 20, nw < 4, n̂ > 10).  The nodes of the new graph that are not in
    the kept prefix/suffix are re-scheduled with the partitioned DP
    scheduler and spliced back in. *)

open Magis_ir
module Int_set = Util.Int_set

type stats = {
  interval : int * int;  (** [beg, end) window in the old schedule *)
  rescheduled : int;  (** number of nodes actually rescheduled *)
  fallback : bool;  (** the splice failed and the whole graph was rescheduled *)
}

let extend_bound (g : Graph.t) (psi : int array) (i : int) (d : int) : int =
  let n = Array.length psi in
  let clamp i = max 0 (min (n - 1) i) in
  let rec go i n_hat l =
    if i < 0 then 0
    else if i >= n then n - 1
    else
      let w = Partition.nw g psi.(i) in
      if l < 20 && (n_hat > 10 || w < 4) && w < n_hat then
        go (i + d) w (l + 1)
      else i
  in
  clamp (go i max_int 0)

let get_reschedule_interval (g : Graph.t) (psi : int array)
    (positions : int list) : int * int =
  let lo = List.fold_left min max_int positions in
  let hi = List.fold_left max min_int positions in
  let beg = extend_bound g psi lo (-1) in
  let end_ = extend_bound g psi hi 1 in
  (beg, end_ + 1)

(** [reschedule ~old_graph ~new_graph ~old_schedule ~mutated_old ~size_of]
    computes a schedule for [new_graph], reusing the parts of
    [old_schedule] outside the rewritten window.  [mutated_old] are the
    nodes of [old_graph] removed or structurally affected by the
    transformation (for a pure F-Tree mutation, the fission region
    itself).  Falls back to full scheduling if splicing fails. *)
let reschedule ?(max_states = 20_000) ~(old_graph : Graph.t)
    ~(new_graph : Graph.t) ~(old_schedule : int list)
    ~(mutated_old : Int_set.t) ~size_of () : int list * stats =
  (* [attempted] preserves the window the splice tried before failing, so
     callers can still see where the rewrite landed instead of the
     meaningless whole-schedule interval the fallback used to report. *)
  let full ?attempted () =
    let order = Reorder.schedule ~max_states ~size_of new_graph in
    let interval =
      match attempted with Some w -> w | None -> (0, List.length order)
    in
    (order, { interval; rescheduled = List.length order; fallback = true })
  in
  let psi = Array.of_list old_schedule in
  let positions =
    List.filteri (fun _ _ -> true) old_schedule
    |> List.mapi (fun i v -> (i, v))
    |> List.filter_map (fun (i, v) ->
           if Int_set.mem v mutated_old then Some i else None)
  in
  if positions = [] || Array.length psi = 0 then full ()
  else
    let beg, end_ = get_reschedule_interval old_graph psi positions in
    let keep v = Graph.mem new_graph v in
    let prefix =
      Array.to_list (Array.sub psi 0 beg) |> List.filter keep
    in
    let suffix =
      Array.to_list (Array.sub psi end_ (Array.length psi - end_))
      |> List.filter keep
    in
    let kept =
      Int_set.union (Int_set.of_list prefix) (Int_set.of_list suffix)
    in
    let s_new =
      List.filter
        (fun v -> not (Int_set.mem v kept))
        (Graph.node_ids new_graph)
      |> Int_set.of_list
    in
    let middle =
      Reorder.schedule_members ~max_states ~size_of new_graph s_new
    in
    let order = prefix @ middle @ suffix in
    if Graph.is_valid_order new_graph order then
      ( order,
        { interval = (beg, end_); rescheduled = Int_set.cardinal s_new;
          fallback = false } )
    else full ~attempted:(beg, end_) ()
