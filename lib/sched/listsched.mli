(** Critical-path list scheduling — the cheap tier of candidate
    evaluation (SNIPPETS.md snippet 2, VLIW-style).

    One dependency-based list-scheduling pass: ready operators are
    ordered by descending critical-path length (the [cost_of]-weighted
    longest path to a sink), with the memory-greedy
    (net delta, size, id) key of {!Reorder.greedy_schedule} breaking
    ties.  O((V+E) log V), no DP, no partitioning, no window
    computation — a fraction of the exact {!Incremental.reschedule}
    cost, at the price of a possibly worse (never invalid) schedule.

    The search uses this as the first tier when [config.cheap_tier] is
    on: every candidate is scheduled here, and only candidates that pass
    the δ-relaxed admission test are promoted to the exact tier
    (incremental reschedule + cached simulation).  A cheap-tier schedule
    is always a legal topological order, so simulated peaks/latencies
    are real — merely not as optimized as the exact tier's. *)

open Magis_ir

(** [schedule ?size_of ~cost_of g] orders the whole graph.  [size_of]
    defaults to {!Magis_cost.Lifetime.default_size}[ g]; [cost_of] is
    the per-operator latency used for critical-path lengths (pass the
    F-Tree accounting's [cost_of] so fission splits are reflected). *)
val schedule : ?size_of:(int -> int) -> cost_of:(int -> float) -> Graph.t -> int list

(** Order a node subset (operands outside [members] are treated as
    already executed, as in {!Reorder.schedule_members}). *)
val schedule_members :
  ?size_of:(int -> int) ->
  cost_of:(int -> float) ->
  Graph.t ->
  Util.Int_set.t ->
  int list
