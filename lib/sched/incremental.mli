(** Incremental scheduling (Algorithm 2): after a transformation, only a
    window of the previous schedule around the rewritten region is
    re-scheduled; the window is widened to narrow-waist cut points using
    the paper's empirical thresholds. *)

open Magis_ir
module Int_set = Util.Int_set

type stats = {
  interval : int * int;
      (** [beg, end) window in the old schedule.  When the splice failed
          and full scheduling ran, this is still the window that was
          {e attempted} (or [(0, n)] when no window could be computed),
          so callers can locate the rewrite either way. *)
  rescheduled : int;  (** number of nodes actually rescheduled *)
  fallback : bool;
      (** true when splicing failed (or was impossible) and the whole
          graph was rescheduled from scratch; surfaced as the
          [n_sched_fallback] search counter and the
          ["search.sched_fallbacks"] metric *)
}

(** The paper's [ExtendBound] (clamped to the schedule). *)
val extend_bound : Graph.t -> int array -> int -> int -> int

(** The paper's [GetRescheduleInterval]. *)
val get_reschedule_interval : Graph.t -> int array -> int list -> int * int

(** Splice a re-scheduled window into the old schedule; falls back to full
    scheduling when splicing fails. *)
val reschedule :
  ?max_states:int ->
  old_graph:Graph.t ->
  new_graph:Graph.t ->
  old_schedule:int list ->
  mutated_old:Int_set.t ->
  size_of:(int -> int) ->
  unit ->
  int list * stats
