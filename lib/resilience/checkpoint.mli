(** Crash-safe, versioned, fingerprinted state snapshots.

    A checkpoint file is [magic | header | payload] where the header
    records a format version, a caller-supplied 64-bit fingerprint (the
    search digests its hardware model, input graph, mode and
    trajectory-relevant configuration into it) and the payload's length
    and MD5 digest.  {!save} writes to a temporary file in the target
    directory, fsyncs and renames, so a crash mid-write can never leave
    a truncated file under the checkpoint's name, and {!load} verifies
    magic, version, fingerprint and digest before unmarshalling — a
    stale, foreign or corrupted file is an {!Incompatible} error, not
    undefined behaviour.

    The payload goes through [Marshal], so {!load} must be applied at
    the type that was saved; the version number and the fingerprint are
    the guard.  Bump the caller's version whenever the payload type
    changes. *)

(** Raised by {!load} with a human-readable reason: missing file, bad
    magic, version or fingerprint mismatch, truncation or corruption. *)
exception Incompatible of string

(** [save ~path ~version ~fingerprint payload] atomically replaces
    [path] with a snapshot of [payload]. *)
val save : path:string -> version:int -> fingerprint:int64 -> 'a -> unit

(** [load ~path ~version ~fingerprint] restores a payload saved with
    the same version and fingerprint.

    @raise Incompatible on any mismatch or corruption. *)
val load : path:string -> version:int -> fingerprint:int64 -> 'a

(** Does a readable file (compatible or not) exist at [path]? *)
val exists : string -> bool
