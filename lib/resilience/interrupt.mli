(** Cooperative SIGINT/SIGTERM handling.

    Long-running searches must not lose their explored frontier to a
    ctrl-C or an orchestrator's TERM: {!with_guard} installs handlers
    that only record the signal, the search loop polls {!requested} at
    iteration boundaries, writes its checkpoint and returns best-so-far.
    The previous signal dispositions are restored on exit, so guarding a
    search never changes the behaviour of the embedding process outside
    the guarded region. *)

(** Run [f] with SIGINT and SIGTERM redirected to a flag readable
    through {!requested}.  Restores the previous handlers and clears the
    flag afterwards, even when [f] raises.  On platforms without these
    signals the function is just [f ()]. *)
val with_guard : (unit -> 'a) -> 'a

(** Has a guarded signal arrived since {!with_guard} started? *)
val requested : unit -> bool

(** Name of the most recent guarded signal (["SIGINT"] / ["SIGTERM"]),
    if any ever arrived.  Unlike {!requested}, this survives the end of
    the guarded region, so a caller can still name the signal after the
    interrupted computation returned. *)
val signal_name : unit -> string option
