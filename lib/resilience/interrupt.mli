(** Cooperative SIGINT/SIGTERM handling, composable with a daemon.

    Long-running searches must not lose their explored frontier to a
    ctrl-C or an orchestrator's TERM: the process-wide handler only
    records the signal, the search loop polls {!requested} at iteration
    boundaries, writes its checkpoint and returns best-so-far.

    Handlers are installed once per process and left installed — a
    persistent service ({!Magis_serve}) and the guarded searches running
    inside it must share one disposition, so nothing is restored on
    guard exit.  Multiple threads may hold guards concurrently: the
    pending flag is cleared only when the outermost guard enters or
    exits.  Independent observers (an accept loop, a drain sequencer)
    register {!on_signal} callbacks instead of polling. *)

(** Install the shared SIGINT/SIGTERM handler.  Idempotent; safe to
    call again after embedding code replaced the disposition.  On
    platforms without these signals it does nothing. *)
val install : unit -> unit

(** [on_signal f] registers [f] to run (with the signal number) each
    time a handled signal arrives, and installs the handler.  Returns
    the unregister function.  Callbacks run inside the signal handler
    at an arbitrary safe point: keep them tiny (set a flag, write a
    byte) — exceptions they raise are swallowed. *)
val on_signal : (int -> unit) -> unit -> unit

(** Run [f] with signals redirected to a flag readable through
    {!requested}.  Guards refcount: the flag is cleared when the
    outermost guard enters and again when it exits (even when [f]
    raises), so concurrent guarded searches all observe one signal and
    a stray signal between runs poisons nothing. *)
val with_guard : (unit -> 'a) -> 'a

(** Has a signal arrived since the outermost {!with_guard} started?
    Only raised while at least one guard is active. *)
val requested : unit -> bool

(** Name of the most recent handled signal (["SIGINT"] / ["SIGTERM"]),
    if any ever arrived.  Unlike {!requested}, this survives the end of
    the guarded region, so a caller can still name the signal after the
    interrupted computation returned. *)
val signal_name : unit -> string option
