(** Cooperative signal flag and per-process callbacks (see the
    interface).

    The handler is installed once per process and left in place: a
    daemon and the guarded searches running inside it share the same
    disposition, so there is nothing to restore and no window where a
    signal falls through to the default (fatal) behaviour.  Guards are
    refcounted — any number of worker threads may run guarded searches
    concurrently, and the pending flag is cleared only when the
    outermost guard enters or exits, never mid-flight under a sibling.

    The callback list lives in an [Atomic] holding an immutable list:
    the handler (which may run at any allocation point) only reads it,
    so registration from another thread can never deadlock against it. *)

(* 0 = no signal pending; otherwise the OCaml signal number *)
let pending = Atomic.make 0

(* last signal the handler ever saw; survives guards so a caller can
   still name the signal after the guarded region returned *)
let last = Atomic.make 0

(* number of concurrently active [with_guard] regions; [pending] is
   only raised while at least one is live, so a stray signal between
   runs cannot poison the next unguarded search *)
let guards = Atomic.make 0

let callbacks : (int * (int -> unit)) list Atomic.t = Atomic.make []
let next_id = Atomic.make 0

let requested () = Atomic.get pending <> 0

let signal_name () =
  match Atomic.get last with
  | 0 -> None
  | s when s = Sys.sigint -> Some "SIGINT"
  | s when s = Sys.sigterm -> Some "SIGTERM"
  | s -> Some (Printf.sprintf "signal %d" s)

(* A callback that raises would surface its exception at an arbitrary
   allocation point in whatever code the signal interrupted — swallow
   it; observers communicate through their own state, not exceptions. *)
let handler s =
  Atomic.set last s;
  if Atomic.get guards > 0 then Atomic.set pending s;
  List.iter (fun (_, f) -> try f s with _ -> ()) (Atomic.get callbacks)

let install () =
  List.iter
    (fun s ->
      try ignore (Sys.signal s (Sys.Signal_handle handler))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let rec update_callbacks f =
  let cur = Atomic.get callbacks in
  if not (Atomic.compare_and_set callbacks cur (f cur)) then
    update_callbacks f

let on_signal f =
  let id = Atomic.fetch_and_add next_id 1 in
  update_callbacks (fun cur -> (id, f) :: cur);
  install ();
  fun () -> update_callbacks (List.filter (fun (i, _) -> i <> id))

let with_guard f =
  (* (re)install on outermost entry: an embedding process (or a test
     backstop) may have replaced the disposition since the last run *)
  if Atomic.fetch_and_add guards 1 = 0 then begin
    Atomic.set pending 0;
    install ()
  end;
  Fun.protect
    ~finally:(fun () ->
      if Atomic.fetch_and_add guards (-1) = 1 then Atomic.set pending 0)
    f
