(** Cooperative signal flag (see the interface). *)

(* 0 = no signal pending; otherwise the OCaml signal number *)
let pending = Atomic.make 0

(* last signal a guard ever saw; survives the guard so a caller can
   still name the signal after the guarded region returned *)
let last = Atomic.make 0

let requested () = Atomic.get pending <> 0

let signal_name () =
  match Atomic.get last with
  | 0 -> None
  | s when s = Sys.sigint -> Some "SIGINT"
  | s when s = Sys.sigterm -> Some "SIGTERM"
  | s -> Some (Printf.sprintf "signal %d" s)

let with_guard f =
  let install s =
    try
      Some
        (Sys.signal s
           (Sys.Signal_handle
              (fun _ ->
                Atomic.set last s;
                Atomic.set pending s)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let restore s = function
    | None -> ()
    | Some behavior -> ( try Sys.set_signal s behavior with _ -> ())
  in
  Atomic.set pending 0;
  let prev_int = install Sys.sigint in
  let prev_term = install Sys.sigterm in
  Fun.protect
    ~finally:(fun () ->
      restore Sys.sigint prev_int;
      restore Sys.sigterm prev_term;
      Atomic.set pending 0)
    f
