(** Bounded retry with exponential backoff.

    The supervised search retries a failed candidate evaluation a few
    times before quarantining it: transient faults (an injected fault
    keyed to one visit, a hiccup of the environment) pass on re-run,
    persistent ones exhaust the budget and surface as a structured
    failure the caller can report without aborting the batch. *)

type policy = {
  attempts : int;  (** maximum re-executions after the first failure *)
  base_delay : float;  (** seconds before the first retry *)
  multiplier : float;  (** backoff factor between consecutive retries *)
}

(** 3 attempts, 1 ms initial backoff, x4 per retry (≤ ~21 ms total). *)
val default : policy

(** Exceptions retrying cannot help and must never swallow: resource
    exhaustion, assertion failures, and user interrupts. *)
val fatal : exn -> bool

type failure = {
  exn : exn;  (** the last exception *)
  backtrace : Printexc.raw_backtrace;  (** of the last failure *)
  attempts : int;  (** executions performed, including the first *)
}

(** [run ~policy f] executes [f] until it returns, retrying with
    backoff up to [policy.attempts] times after the first failure.
    Returns the last failure when the budget is exhausted; re-raises
    {!fatal} exceptions immediately with their backtrace. *)
val run : ?policy:policy -> (unit -> 'a) -> ('a, failure) result
