(** Crash-safe snapshot files (see the interface for the format). *)

module Trace = Magis_obs.Trace
module Metrics = Magis_obs.Metrics

let saves_total = Metrics.counter "checkpoint.saves"
let loads_total = Metrics.counter "checkpoint.loads"

exception Incompatible of string

let () =
  Printexc.register_printer (function
    | Incompatible msg ->
        Some (Printf.sprintf "Magis_resilience.Checkpoint.Incompatible(%s)" msg)
    | _ -> None)

let magic = "MAGISCKP"

type header = {
  h_version : int;
  h_fingerprint : int64;
  h_digest : Digest.t;
  h_length : int;
}

let save ~path ~version ~fingerprint payload =
  Trace.with_span ~cat:"resilience" ~args:[ ("path", path) ] "checkpoint-save"
  @@ fun () ->
  Metrics.incr saves_total;
  let body = Marshal.to_string payload [] in
  let header =
    {
      h_version = version;
      h_fingerprint = fingerprint;
      h_digest = Digest.string body;
      h_length = String.length body;
    }
  in
  (* temp file in the same directory, so the rename is atomic *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc magic;
      Marshal.to_channel oc header [];
      output_string oc body;
      flush oc;
      try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
  Sys.rename tmp path

let incompatible fmt = Printf.ksprintf (fun s -> raise (Incompatible s)) fmt

let load ~path ~version ~fingerprint =
  Trace.with_span ~cat:"resilience" ~args:[ ("path", path) ] "checkpoint-load"
  @@ fun () ->
  Metrics.incr loads_total;
  if not (Sys.file_exists path) then incompatible "%s: no such file" path;
  let ic =
    try open_in_bin path
    with Sys_error msg -> incompatible "%s: %s" path msg
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let fail fmt = incompatible ("%s: " ^^ fmt) path in
  let m = Bytes.create (String.length magic) in
  (try really_input ic m 0 (String.length magic)
   with End_of_file -> fail "truncated before the magic");
  if Bytes.to_string m <> magic then
    fail "not a MAGIS checkpoint (bad magic)";
  let header : header =
    try Marshal.from_channel ic
    with End_of_file | Failure _ -> fail "corrupt header"
  in
  if header.h_version <> version then
    fail "format version %d, expected %d" header.h_version version;
  if header.h_fingerprint <> fingerprint then
    fail
      "fingerprint mismatch (saved for another model, hardware, mode or \
       search configuration)";
  let body = Bytes.create header.h_length in
  (try really_input ic body 0 header.h_length
   with End_of_file -> fail "truncated payload");
  let body = Bytes.unsafe_to_string body in
  if Digest.string body <> header.h_digest then fail "payload digest mismatch";
  try Marshal.from_string body 0
  with Failure msg -> fail "unreadable payload (%s)" msg

let exists path = Sys.file_exists path
