(** Seeded fault injector (see the interface for the contract).

    One mutex guards the plan, the per-site visit counters and the
    fired-fault log; the armed flag is an atomic so the disarmed fast
    path — every production call — is a single load and a branch.
    Sleeping and raising happen outside the critical section so a slow
    fault cannot serialize other sites. *)

module Trace = Magis_obs.Trace
module Metrics = Magis_obs.Metrics

type kind = Exception | Delay of float | Nan_cost | Stall of float
type spec = { site : string; at : int; kind : kind }

let faults_fired = Metrics.counter "fault.fired"

let kind_name = function
  | Exception -> "exception"
  | Delay _ -> "delay"
  | Nan_cost -> "nan_cost"
  | Stall _ -> "stall"

exception Injected of string * int

let () =
  Printexc.register_printer (function
    | Injected (site, visit) ->
        Some (Printf.sprintf "Magis_resilience.Fault.Injected(%s, visit %d)"
                site visit)
    | _ -> None)

let sites =
  [ "op_cost"; "simulator"; "sim_cache"; "pool_worker"; "sock_read";
    "sock_write" ]

type state = {
  plan : (string * int, kind) Hashtbl.t;
  counts : (string, int) Hashtbl.t;
  mutable log : spec list;  (** fired faults, newest first *)
}

let armed_flag = Atomic.make false
let lock = Mutex.create ()
let state = ref None

let arm specs =
  Mutex.lock lock;
  let plan = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace plan (s.site, s.at) s.kind) specs;
  state := Some { plan; counts = Hashtbl.create 8; log = [] };
  Atomic.set armed_flag true;
  Mutex.unlock lock

let observe () = arm []

let disarm () =
  Mutex.lock lock;
  Atomic.set armed_flag false;
  state := None;
  Mutex.unlock lock

let armed () = Atomic.get armed_flag

let visits site =
  Mutex.lock lock;
  let v =
    match !state with
    | None -> 0
    | Some st -> Option.value ~default:0 (Hashtbl.find_opt st.counts site)
  in
  Mutex.unlock lock;
  v

let fired () =
  Mutex.lock lock;
  let l = match !state with None -> [] | Some st -> List.rev st.log in
  Mutex.unlock lock;
  l

let seeded ~seed ~lo ~hi pairs =
  if hi <= lo then invalid_arg "Fault.seeded: empty visit window";
  let rng = Random.State.make [| 0xFA17; seed |] in
  List.map
    (fun (site, kind) ->
      { site; at = lo + Random.State.int rng (hi - lo); kind })
    pairs

let burst ~site ~at ~len kind =
  List.init len (fun i -> { site; at = at + i; kind })

(** Count a visit and look up the planned fault for it, if any. *)
let tick site : spec option =
  if not (Atomic.get armed_flag) then None
  else begin
    Mutex.lock lock;
    let r =
      match !state with
      | None -> None
      | Some st ->
          let v =
            1 + Option.value ~default:0 (Hashtbl.find_opt st.counts site)
          in
          Hashtbl.replace st.counts site v;
          (match Hashtbl.find_opt st.plan (site, v) with
          | None -> None
          | Some kind ->
              let s = { site; at = v; kind } in
              st.log <- s :: st.log;
              Some s)
    in
    Mutex.unlock lock;
    (match r with
    | None -> ()
    | Some s ->
        Metrics.incr faults_fired;
        Trace.instant ~cat:"resilience"
          ~args:
            [ ("site", s.site); ("visit", string_of_int s.at);
              ("kind", kind_name s.kind) ]
          "fault-injected");
    r
  end

let hit site =
  match tick site with
  | None | Some { kind = Nan_cost; _ } -> ()
  | Some { kind = Exception; at; _ } -> raise (Injected (site, at))
  | Some { kind = Delay d | Stall d; _ } -> Unix.sleepf d

let cost site v =
  match tick site with
  | None -> v
  | Some { kind = Exception; at; _ } -> raise (Injected (site, at))
  | Some { kind = Delay d | Stall d; _ } ->
      Unix.sleepf d;
      v
  | Some { kind = Nan_cost; _ } -> Float.nan
