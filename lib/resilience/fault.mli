(** Deterministic, seeded fault injector.

    The optimizer's resilience machinery (supervised expansion,
    quarantine, retry — see {!Magis_opt.Search}) is only trustworthy if
    it can be exercised against real failures.  This module plants those
    failures on purpose: instrumented *sites* in the cost model, the
    simulator, the simulation cache and the worker pool call {!hit} (or
    {!cost} for float-valued sites) on every visit, and an armed
    injector fires a planned fault when a site's visit counter reaches a
    planned trigger count.

    Faults are keyed by [(site, visit)], so a plan is fully
    deterministic: the n-th visit of a site fails, every other visit is
    free.  Because a retry of the failed computation advances the
    counter past the trigger, a single planned fault is *transient* —
    the retry succeeds — while a {!burst} of consecutive trigger counts
    models a *persistent* failure that exhausts retries and must be
    quarantined.

    When the injector is disarmed (the default, and the production
    state) a site visit is one atomic load.  The injector is a process
    global shared by all domains; arming it in concurrent tests requires
    the usual care. *)

type kind =
  | Exception  (** raise {!Injected} at the site *)
  | Delay of float  (** sleep this many seconds, then continue *)
  | Nan_cost
      (** corrupt a float-valued site's result to [nan] (control-flow
          sites treat it as a no-op) *)
  | Stall of float
      (** a long sleep modelling a stalled worker; semantically a
          {!Delay}, reported separately in fired-fault logs *)

type spec = {
  site : string;  (** instrumented site name, e.g. ["op_cost"] *)
  at : int;  (** fire on this visit of the site (1-based) *)
  kind : kind;
}

(** Raised by sites where an [Exception] fault fires; carries the site
    name and the visit count. *)
exception Injected of string * int

(** The instrumented sites of this codebase (other components may add
    their own): operator-cost queries, simulator runs, simulation-cache
    lookups, pool worker task dispatch, and the {!Magis_serve}
    connection layer's socket reads/writes ([sock_read]/[sock_write],
    where [Delay] models a slow client, [Stall] a slow-loris one and
    [Exception] a torn connection). *)
val sites : string list

(** [arm specs] plants the given faults and starts counting site visits
    from zero.  Replaces any previous plan. *)
val arm : spec list -> unit

(** [observe ()] arms the injector with no faults at all: visits are
    counted (see {!visits}) but nothing ever fires.  Used to measure a
    fault-free run before planning where to inject. *)
val observe : unit -> unit

(** Disarm and forget counters, plan and log. *)
val disarm : unit -> unit

val armed : unit -> bool

(** Visits of a site counted since the last {!arm}/{!observe} (0 when
    disarmed or never visited). *)
val visits : string -> int

(** Faults fired since the last {!arm}, oldest first. *)
val fired : unit -> spec list

(** [seeded ~seed ~lo ~hi faults] plans, for each [(site, kind)] pair,
    one fault at a pseudo-random visit in [\[lo, hi)], deterministically
    derived from [seed].  Same seed, same plan. *)
val seeded : seed:int -> lo:int -> hi:int -> (string * kind) list -> spec list

(** [burst ~site ~at ~len kind] is [len] faults at consecutive visits
    [at .. at+len-1] — a persistent failure no bounded retry survives
    (choose [len] larger than the retry budget). *)
val burst : site:string -> at:int -> len:int -> kind -> spec list

(** {1 Site instrumentation}

    Called by instrumented components; near-free when disarmed. *)

(** Control-flow site: may raise {!Injected} or sleep. *)
val hit : string -> unit

(** Float-valued site: may raise, sleep, or corrupt [v] to [nan]. *)
val cost : string -> float -> float
