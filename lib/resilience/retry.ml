(** Bounded retry with exponential backoff (see the interface). *)

module Trace = Magis_obs.Trace
module Metrics = Magis_obs.Metrics

let retries_total = Metrics.counter "retry.attempts"
let exhausted_total = Metrics.counter "retry.exhausted"

type policy = { attempts : int; base_delay : float; multiplier : float }

let default = { attempts = 3; base_delay = 0.001; multiplier = 4.0 }

let fatal = function
  | Out_of_memory | Stack_overflow | Assert_failure _ | Sys.Break -> true
  | _ -> false

type failure = {
  exn : exn;
  backtrace : Printexc.raw_backtrace;
  attempts : int;
}

let run ?(policy = default) f =
  (* [execution] counts runs of [f], the initial one included *)
  let rec go execution =
    match f () with
    | v -> Ok v
    | exception e when fatal e ->
        Printexc.raise_with_backtrace e (Printexc.get_raw_backtrace ())
    | exception e ->
        let backtrace = Printexc.get_raw_backtrace () in
        if execution > policy.attempts then begin
          Metrics.incr exhausted_total;
          Trace.instant ~cat:"resilience"
            ~args:
              [ ("attempts", string_of_int execution);
                ("exn", Printexc.to_string e) ]
            "retry-exhausted";
          Error { exn = e; backtrace; attempts = execution }
        end
        else begin
          Metrics.incr retries_total;
          Trace.instant ~cat:"resilience"
            ~args:
              [ ("execution", string_of_int execution);
                ("exn", Printexc.to_string e) ]
            "retry";
          if policy.base_delay > 0.0 then
            Unix.sleepf
              (policy.base_delay
              *. (policy.multiplier ** float_of_int (execution - 1)));
          go (execution + 1)
        end
  in
  go 1
