(** Bounded retry with exponential backoff (see the interface). *)

type policy = { attempts : int; base_delay : float; multiplier : float }

let default = { attempts = 3; base_delay = 0.001; multiplier = 4.0 }

let fatal = function
  | Out_of_memory | Stack_overflow | Assert_failure _ | Sys.Break -> true
  | _ -> false

type failure = {
  exn : exn;
  backtrace : Printexc.raw_backtrace;
  attempts : int;
}

let run ?(policy = default) f =
  (* [execution] counts runs of [f], the initial one included *)
  let rec go execution =
    match f () with
    | v -> Ok v
    | exception e when fatal e ->
        Printexc.raise_with_backtrace e (Printexc.get_raw_backtrace ())
    | exception e ->
        let backtrace = Printexc.get_raw_backtrace () in
        if execution > policy.attempts then
          Error { exn = e; backtrace; attempts = execution }
        else begin
          if policy.base_delay > 0.0 then
            Unix.sleepf
              (policy.base_delay
              *. (policy.multiplier ** float_of_int (execution - 1)));
          go (execution + 1)
        end
  in
  go 1
