(** Minimal dependency-free JSON values: emission and strict parsing.

    This is the serialization substrate of the observability subsystem:
    {!Trace} and {!Timeline} render Chrome [trace_event] documents
    through it, {!Metrics} snapshots and {!Profile} run logs are built
    from its values, and the parser lets tests (and callers) validate
    every emitted artifact by reading it back.

    Deliberately small: no streaming, no number-preserving bignums, no
    duplicate-key detection — exactly what the exporters need and
    nothing more.  Integer literals that fit [int] parse as {!Int};
    everything else numeric parses as {!Float}.  Emission never
    produces invalid JSON: strings are escaped, non-finite floats
    become [null], and a finite float always renders with a fractional
    part or exponent so it re-parses as a float. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Raised by {!of_string} with a position-annotated message. *)
exception Parse_error of string

(** Compact (no whitespace) rendering. *)
val to_string : t -> string

(** Same, appending to an existing buffer. *)
val to_buffer : Buffer.t -> t -> unit

(** Nesting-depth cap applied by {!of_string} when none is given: deep
    enough for any artifact this codebase emits, shallow enough that a
    hostile [[[[…] document raises {!Parse_error} long before the
    recursive-descent parser can exhaust the stack. *)
val default_max_depth : int

(** Strict parse of a complete JSON document (trailing garbage is an
    error).  Raises {!Parse_error}.

    The parser is used on adversarial input (the {!Magis_serve} wire
    protocol), so it enforces two resource limits with a structured
    error instead of undefined behaviour: [max_depth] bounds
    list/object nesting (default {!default_max_depth}) and [max_len]
    rejects documents longer than the given byte count before any
    parsing work ([None], the default, accepts any length — large
    trusted artifacts like Chrome traces are parsed back in tests). *)
val of_string : ?max_depth:int -> ?max_len:int -> string -> t

(** Field lookup on an object ([None] on other constructors). *)
val member : string -> t -> t option

val to_int : t -> int option

(** Numeric coercion: accepts {!Int} and {!Float}. *)
val to_float : t -> float option

val to_list : t -> t list option
