(** Schedule timeline export (see the interface).

    This module is pure data-in, text-out: it knows nothing about
    graphs, simulators or lifetime analysis.  Callers (the cost layer,
    the CLI) map their simulated events to {!span} records and their
    memory curves to plain int arrays; keeping the types flat here is
    what lets [Magis_obs] sit below every other library without a
    dependency cycle. *)

type lane = Compute | Copy

type span = {
  name : string;
  lane : lane;
  t_start : float;  (** seconds from schedule start *)
  t_dur : float;  (** seconds *)
  bytes : int;  (** bytes produced by the op; 0 when not applicable *)
}

let lane_tid = function Compute -> 0 | Copy -> 1

(* The schedule view lives in its own Chrome process (pid 2) so it gets
   a lane group separate from the wall-clock trace (pid 1, see
   {!Trace.chrome_events}).  Metadata events name the process and both
   lanes up front, so the compute and copy lanes exist in the viewer
   even for a schedule with no swap traffic. *)
let pid = 2

let metadata_events =
  let meta name tid args =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj args);
      ]
  in
  [
    meta "process_name" 0 [ ("name", Json.String "schedule") ];
    meta "thread_name" 0 [ ("name", Json.String "compute") ];
    meta "thread_name" 1 [ ("name", Json.String "copy") ];
  ]

let chrome_events spans =
  let span_event s =
    let args =
      ("lane", Json.String (match s.lane with Compute -> "compute" | Copy -> "copy"))
      :: (if s.bytes > 0 then [ ("bytes", Json.Int s.bytes) ] else [])
    in
    Json.Obj
      [
        ("name", Json.String s.name);
        ("cat", Json.String "schedule");
        ("ph", Json.String "X");
        ("pid", Json.Int pid);
        ("tid", Json.Int (lane_tid s.lane));
        ("ts", Json.Float (Float.max 0.0 (s.t_start *. 1e6)));
        ("dur", Json.Float (Float.max 0.0 (s.t_dur *. 1e6)));
        ("args", Json.Obj args);
      ]
  in
  metadata_events @ List.map span_event spans

let chrome ?(extra = []) spans =
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (chrome_events spans @ extra));
         ("displayTimeUnit", Json.String "ms");
       ])

let memory_max timeline = Array.fold_left max 0 timeline

let memory_csv ?lower ?upper timeline =
  let b = Buffer.create 256 in
  let opt_col v = match v with Some _ -> true | None -> false in
  Buffer.add_string b "step,bytes";
  if opt_col lower then Buffer.add_string b ",lower_bound";
  if opt_col upper then Buffer.add_string b ",upper_bound";
  Buffer.add_char b '\n';
  Array.iteri
    (fun i v ->
      Buffer.add_string b (Printf.sprintf "%d,%d" i v);
      (match lower with
      | Some l -> Buffer.add_string b (Printf.sprintf ",%d" l)
      | None -> ());
      (match upper with
      | Some u -> Buffer.add_string b (Printf.sprintf ",%d" u)
      | None -> ());
      Buffer.add_char b '\n')
    timeline;
  Buffer.contents b
