(** Minimal JSON values (see the interface).

    The emitter is careful about the two places hand-rolled JSON usually
    goes wrong: string escaping (control characters, quotes, backslash)
    and float formatting (a non-finite float has no JSON representation
    and is emitted as [null]; finite floats use the shortest [%g]
    rendering that round-trips, with a forced [".0"] so a float never
    re-parses as an integer).  The parser is a plain recursive descent
    over the input string — small, dependency-free, and strict enough to
    act as the well-formedness oracle in the test suite. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let () =
  Printexc.register_printer (function
    | Parse_error msg -> Some (Printf.sprintf "Magis_obs.Json.Parse_error(%s)" msg)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(** Shortest [%g] rendering that re-parses to the same float; integral
    values are suffixed with [".0"] so emission never changes the type
    of a round-tripped value. *)
let float_repr f =
  let s = Printf.sprintf "%.12g" f in
  let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int; max_depth : int }

let fail c fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" c.pos m))) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c "expected %c, found %c" ch x
  | None -> fail c "expected %c, found end of input" ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c "invalid literal"

(** Append the UTF-8 encoding of [u] (a BMP code point from [\uXXXX]). *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
        advance c;
        (match peek c with
        | Some '"' -> Buffer.add_char buf '"'; advance c
        | Some '\\' -> Buffer.add_char buf '\\'; advance c
        | Some '/' -> Buffer.add_char buf '/'; advance c
        | Some 'n' -> Buffer.add_char buf '\n'; advance c
        | Some 'r' -> Buffer.add_char buf '\r'; advance c
        | Some 't' -> Buffer.add_char buf '\t'; advance c
        | Some 'b' -> Buffer.add_char buf '\b'; advance c
        | Some 'f' -> Buffer.add_char buf '\012'; advance c
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
            let hex = String.sub c.src c.pos 4 in
            let u =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail c "invalid \\u escape %s" hex
            in
            c.pos <- c.pos + 4;
            add_utf8 buf u
        | _ -> fail c "invalid escape");
        go ()
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> advance c; true | _ -> false do
    ()
  done;
  let s = String.sub c.src start (c.pos - start) in
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c "invalid number %s" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        (* an integer literal too large for [int]: keep it as a float *)
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail c "invalid number %s" s)

let rec parse_value depth c =
  if depth > c.max_depth then
    fail c "nesting deeper than %d levels" c.max_depth;
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else
        let rec items acc =
          let v = parse_value (depth + 1) c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List (List.rev (v :: acc))
          | _ -> fail c "expected , or ] in array"
        in
        items []
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value (depth + 1) c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance c;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail c "expected , or } in object"
        in
        fields []
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c "unexpected character %c" ch

let default_max_depth = 512

let of_string ?(max_depth = default_max_depth) ?max_len s =
  (match max_len with
  | Some limit when String.length s > limit ->
      raise
        (Parse_error
           (Printf.sprintf "document of %d bytes exceeds the %d-byte limit"
              (String.length s) limit))
  | _ -> ());
  let c = { src = s; pos = 0; max_depth } in
  let v = parse_value 0 c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_list = function List l -> Some l | _ -> None
