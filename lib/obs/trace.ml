(** Lightweight tracing (see the interface for the contract).

    One atomic flag gates every recording call, so the disabled path —
    the production default — is a single load and a branch, with no
    allocation.  When enabled, events go into a fixed-capacity ring
    buffer under one mutex; overflow overwrites the oldest event and
    counts it in [dropped], so a long run degrades to "most recent
    window" instead of unbounded memory.  Recording never blocks on
    I/O: export is a separate, explicit step. *)

type kind = Span of float | Instant

type event = {
  name : string;
  cat : string;
  ts : float;  (** absolute monotonized seconds (see {!now}) *)
  tid : int;  (** domain id of the recording domain *)
  kind : kind;
  args : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* Monotonized clock                                                   *)
(* ------------------------------------------------------------------ *)

(* [Unix.gettimeofday] can step backwards (NTP adjustments); busy-time
   deltas and span durations must not go negative.  The stdlib exposes
   no CLOCK_MONOTONIC, so we monotonize the wall clock: an atomic holds
   the latest timestamp ever returned (as int64 bits, CAS-able), and
   [now] never returns less than it — across all domains. *)
let last_now = Atomic.make (Int64.bits_of_float 0.0)

let rec now () =
  let t = Unix.gettimeofday () in
  let prev_bits = Atomic.get last_now in
  let prev = Int64.float_of_bits prev_bits in
  if t <= prev then prev
  else if Atomic.compare_and_set last_now prev_bits (Int64.bits_of_float t)
  then t
  else now ()

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

type ring = {
  buf : event option array;
  mutable head : int;  (** index of the oldest event *)
  mutable count : int;
  mutable dropped : int;
  epoch : float;  (** [now] at {!enable} time; export is relative to it *)
}

let on = Atomic.make false
let lock = Mutex.create ()
let ring : ring option ref = ref None

let enable ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Magis_obs.Trace.enable: capacity < 1";
  Mutex.lock lock;
  ring :=
    Some
      { buf = Array.make capacity None; head = 0; count = 0; dropped = 0;
        epoch = now () };
  Atomic.set on true;
  Mutex.unlock lock

(** Stop recording; the buffer stays readable until the next {!enable}
    or {!clear}. *)
let disable () = Atomic.set on false

let enabled () = Atomic.get on

let clear () =
  Mutex.lock lock;
  Atomic.set on false;
  ring := None;
  Mutex.unlock lock

let record ev =
  Mutex.lock lock;
  (match !ring with
  | None -> ()
  | Some r ->
      let cap = Array.length r.buf in
      if r.count < cap then begin
        r.buf.((r.head + r.count) mod cap) <- Some ev;
        r.count <- r.count + 1
      end
      else begin
        r.buf.(r.head) <- Some ev;
        r.head <- (r.head + 1) mod cap;
        r.dropped <- r.dropped + 1
      end);
  Mutex.unlock lock

let domain_id () = (Domain.self () :> int)

let instant ?(cat = "app") ?(args = []) name =
  if Atomic.get on then
    record { name; cat; ts = now (); tid = domain_id (); kind = Instant; args }

let with_span ?(cat = "app") ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        record
          { name; cat; ts = t0; tid = domain_id ();
            kind = Span (now () -. t0); args })
      f
  end

let events () =
  Mutex.lock lock;
  let l =
    match !ring with
    | None -> []
    | Some r ->
        let cap = Array.length r.buf in
        List.init r.count (fun i ->
            match r.buf.((r.head + i) mod cap) with
            | Some e -> e
            | None -> assert false (* count covers only written cells *))
  in
  Mutex.unlock lock;
  l

let dropped () =
  Mutex.lock lock;
  let d = match !ring with None -> 0 | Some r -> r.dropped in
  Mutex.unlock lock;
  d

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let epoch () =
  Mutex.lock lock;
  let e = match !ring with None -> 0.0 | Some r -> r.epoch in
  Mutex.unlock lock;
  e

(** One Chrome [trace_event] object per recorded event: complete events
    ([ph = "X"]) for spans, thread-scoped instants ([ph = "i"]) for
    instants; timestamps microseconds relative to the enable epoch. *)
let chrome_events () : Json.t list =
  let e0 = epoch () in
  List.map
    (fun e ->
      let us t = Json.Float (Float.max 0.0 (t *. 1e6)) in
      let common =
        [
          ("name", Json.String e.name);
          ("cat", Json.String e.cat);
          ("pid", Json.Int 1);
          ("tid", Json.Int e.tid);
          ("ts", us (e.ts -. e0));
        ]
      in
      let kind =
        match e.kind with
        | Span dur -> [ ("ph", Json.String "X"); ("dur", us dur) ]
        | Instant -> [ ("ph", Json.String "i"); ("s", Json.String "t") ]
      in
      let args =
        match e.args with
        | [] -> []
        | l ->
            [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) l)) ]
      in
      Json.Obj (common @ kind @ args))
    (events ())

let to_chrome () =
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (chrome_events ()));
         ("displayTimeUnit", Json.String "ms");
       ])
