(** Process-wide metrics: counters, gauges, and fixed-bucket
    histograms.

    Metrics are registered by name in a global registry — the same name
    always returns the same metric, so call sites can look up their
    instruments lazily without threading handles through APIs.
    Registering one name as two different kinds raises
    [Invalid_argument].

    Recording is gated on a single process-wide flag ({!set_enabled},
    default [false]): while disabled, {!incr}/{!add}/{!set}/{!observe}
    cost one atomic load and a branch.  While enabled, counters stripe
    their increments over per-domain atomic cells (the
    [Magis_par.Striped] pattern) so parallel search workers do not
    contend; values are summed at read time.

    Snapshots ({!snapshot}, {!to_text}, {!to_json}) read a consistent
    list of registered metrics but each value individually — metrics
    recorded concurrently with a snapshot may or may not be included,
    which is the usual (and sufficient) monitoring contract. *)

type counter
type gauge
type histogram

(** Enable or disable all recording (default: disabled). *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Get or create the counter registered under this name. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit

(** Current value (sum over stripes); reads even while disabled. *)
val counter_value : counter -> int

(** Get or create the gauge registered under this name. *)
val gauge : string -> gauge

(** Set the gauge (last write wins across domains). *)
val set : gauge -> float -> unit

val gauge_value : gauge -> float

(** Default histogram bucket edges: an exponential seconds ladder from
    1 µs to 10 s. *)
val default_buckets : float array

(** Get or create a histogram with the given strictly-increasing upper
    bucket edges (default {!default_buckets}).  Bucket [i] counts
    observations in [(edges.(i-1), edges.(i)]]; an implicit final
    bucket counts overflow above the last edge.  Re-registering an
    existing histogram with different edges raises. *)
val histogram : ?buckets:float array -> string -> histogram

val observe : histogram -> float -> unit

(** Per-bucket counts: one cell per edge plus the final overflow cell. *)
val histogram_counts : histogram -> int array

val histogram_sum : histogram -> float

type histogram_snapshot = {
  edges : float array;
  counts : int array;  (** one cell per edge, plus a final overflow cell *)
  count : int;  (** total observations *)
  sum : float;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
}

val snapshot : unit -> snapshot

(** Snapshot as a JSON value
    [{"counters":{...},"gauges":{...},"histograms":{...}}]. *)
val json : unit -> Json.t

(** {!json} rendered to a string. *)
val to_json : unit -> string

(** Prometheus-flavoured plain-text rendering, one [name value] line
    per metric (histograms expand to [name{le=EDGE} count] lines plus
    [_count]/[_sum]). *)
val to_text : unit -> string

(** Zero every registered metric (the registry itself is kept). *)
val reset : unit -> unit
