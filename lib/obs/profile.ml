(** Search-telemetry JSONL sink (see the interface).

    One JSON object per line, flushed as written, so a run that is
    killed mid-search still leaves every completed iteration on disk —
    the same crash-tolerance posture as the checkpoint subsystem.  The
    sink is mutex-guarded: the search loop records from one domain, but
    nothing in the API forbids concurrent writers. *)

type t = {
  oc : out_channel;
  path : string;
  lock : Mutex.t;
  mutable count : int;
  mutable closed : bool;
}

let create path =
  { oc = open_out path; path; lock = Mutex.create (); count = 0; closed = false }

let path t = t.path

let record t fields =
  let line = Json.to_string (Json.Obj fields) in
  Mutex.lock t.lock;
  if not t.closed then begin
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    t.count <- t.count + 1
  end;
  Mutex.unlock t.lock

let count t =
  Mutex.lock t.lock;
  let n = t.count in
  Mutex.unlock t.lock;
  n

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    close_out t.oc
  end;
  Mutex.unlock t.lock

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | "" -> go acc
        | line -> go (Json.of_string line :: acc)
      in
      go [])
