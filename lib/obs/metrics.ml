(** Process-wide metrics registry (see the interface).

    Counters follow the striped pattern of [Magis_par.Striped]: each
    counter owns a small power-of-two array of atomic cells and a
    domain increments the cell indexed by its domain id, so parallel
    expansion workers never contend on one cache line; reads sum the
    stripes.  Gauges store float bits in one atomic.  Histograms keep
    one atomic cell per bucket plus a CAS-accumulated float sum.

    Recording is gated on one atomic [enabled] flag (default off), so
    the production cost of an instrumented call is a load and a branch.
    The registry itself (name → metric) is guarded by a mutex and only
    touched at creation and snapshot time. *)

let stripe_count = 8 (* power of two *)

type counter = { c_name : string; c_cells : int Atomic.t array }
type gauge = { g_name : string; g_bits : int64 Atomic.t }

type histogram = {
  h_name : string;
  h_edges : float array;
  h_counts : int Atomic.t array;  (** one cell per edge, last = overflow *)
  h_sum : int64 Atomic.t;  (** float bits of the sum of observations *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let lock = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

(** Get-or-create under the registry lock; re-registering a name as a
    different kind is a programming error. *)
let register name make match_existing =
  Mutex.lock lock;
  let r =
    match Hashtbl.find_opt registry name with
    | Some m -> (
        match match_existing m with
        | Some v -> v
        | None ->
            Mutex.unlock lock;
            invalid_arg
              (Printf.sprintf
                 "Magis_obs.Metrics: %s already registered as a %s" name
                 (kind_name m)))
    | None ->
        let v, m = make () in
        Hashtbl.replace registry name m;
        v
  in
  Mutex.unlock lock;
  r

let counter name =
  register name
    (fun () ->
      let c =
        { c_name = name;
          c_cells = Array.init stripe_count (fun _ -> Atomic.make 0) }
      in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = { g_name = name; g_bits = Atomic.make (Int64.bits_of_float 0.0) } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

(** Default histogram buckets: exponential seconds ladder from 1 µs to
    10 s — suitable for the latencies this codebase measures. *)
let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]

let histogram ?(buckets = default_buckets) name =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Magis_obs.Metrics.histogram: no buckets";
  for i = 1 to n - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Magis_obs.Metrics.histogram: buckets must increase strictly"
  done;
  register name
    (fun () ->
      let h =
        { h_name = name; h_edges = Array.copy buckets;
          h_counts = Array.init (n + 1) (fun _ -> Atomic.make 0);
          h_sum = Atomic.make (Int64.bits_of_float 0.0) }
      in
      (h, Histogram h))
    (function
      | Histogram h when h.h_edges = buckets -> Some h
      | Histogram _ -> None
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let stripe () = (Domain.self () :> int) land (stripe_count - 1)

let add c n =
  if Atomic.get enabled_flag then
    ignore (Atomic.fetch_and_add c.c_cells.(stripe ()) n)

let incr c = add c 1

let counter_value c = Array.fold_left (fun a cell -> a + Atomic.get cell) 0 c.c_cells

let set g v =
  if Atomic.get enabled_flag then Atomic.set g.g_bits (Int64.bits_of_float v)

let gauge_value g = Int64.float_of_bits (Atomic.get g.g_bits)

(** Bucket of [v]: the first [i] with [v <= edges.(i)], the overflow
    cell otherwise — i.e. bucket [i] covers [(edges.(i-1), edges.(i)]],
    with an observation on an edge landing in the bucket the edge
    closes. *)
let bucket_of (h : histogram) v =
  let n = Array.length h.h_edges in
  let rec go i = if i >= n then n else if v <= h.h_edges.(i) then i else go (i + 1) in
  go 0

let rec cas_add_float cell v =
  let old = Atomic.get cell in
  let updated = Int64.bits_of_float (Int64.float_of_bits old +. v) in
  if not (Atomic.compare_and_set cell old updated) then cas_add_float cell v

let observe h v =
  if Atomic.get enabled_flag then begin
    Atomic.incr h.h_counts.(bucket_of h v);
    cas_add_float h.h_sum v
  end

let histogram_counts h =
  Array.map Atomic.get h.h_counts

let histogram_sum h = Int64.float_of_bits (Atomic.get h.h_sum)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type histogram_snapshot = {
  edges : float array;
  counts : int array;  (** one cell per edge, plus a final overflow cell *)
  count : int;  (** total observations *)
  sum : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
}

let snapshot () =
  Mutex.lock lock;
  let metrics = Hashtbl.fold (fun _ m acc -> m :: acc) registry [] in
  Mutex.unlock lock;
  let by_name f = List.sort (fun (a, _) (b, _) -> compare a b) f in
  let counters, gauges, histograms =
    List.fold_left
      (fun (cs, gs, hs) -> function
        | Counter c -> ((c.c_name, counter_value c) :: cs, gs, hs)
        | Gauge g -> (cs, (g.g_name, gauge_value g) :: gs, hs)
        | Histogram h ->
            let counts = histogram_counts h in
            let snap =
              { edges = Array.copy h.h_edges; counts;
                count = Array.fold_left ( + ) 0 counts;
                sum = histogram_sum h }
            in
            (cs, gs, (h.h_name, snap) :: hs))
      ([], [], []) metrics
  in
  { counters = by_name counters; gauges = by_name gauges;
    histograms = by_name histograms }

let json () : Json.t =
  let s = snapshot () in
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.counters) );
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, h) ->
               ( n,
                 Json.Obj
                   [
                     ( "edges",
                       Json.List
                         (Array.to_list (Array.map (fun e -> Json.Float e) h.edges))
                     );
                     ( "counts",
                       Json.List
                         (Array.to_list (Array.map (fun c -> Json.Int c) h.counts))
                     );
                     ("count", Json.Int h.count);
                     ("sum", Json.Float h.sum);
                   ] ))
             s.histograms) );
    ]

let to_json () = Json.to_string (json ())

let to_text () =
  let b = Buffer.create 256 in
  let s = snapshot () in
  List.iter
    (fun (n, v) -> Buffer.add_string b (Printf.sprintf "%s %d\n" n v))
    s.counters;
  List.iter
    (fun (n, v) -> Buffer.add_string b (Printf.sprintf "%s %g\n" n v))
    s.gauges;
  List.iter
    (fun (n, h) ->
      Array.iteri
        (fun i c ->
          let le =
            if i < Array.length h.edges then Printf.sprintf "%g" h.edges.(i)
            else "+inf"
          in
          Buffer.add_string b (Printf.sprintf "%s{le=%s} %d\n" n le c))
        h.counts;
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.count);
      Buffer.add_string b (Printf.sprintf "%s_sum %g\n" n h.sum))
    s.histograms;
  Buffer.contents b

let reset () =
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> Array.iter (fun cell -> Atomic.set cell 0) c.c_cells
      | Gauge g -> Atomic.set g.g_bits (Int64.bits_of_float 0.0)
      | Histogram h ->
          Array.iter (fun cell -> Atomic.set cell 0) h.h_counts;
          Atomic.set h.h_sum (Int64.bits_of_float 0.0))
    registry;
  Mutex.unlock lock
