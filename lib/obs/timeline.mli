(** Export a simulated schedule as a Chrome-trace lane view, and a
    memory-over-time curve as CSV.

    Deliberately decoupled from the rest of the codebase: inputs are
    plain {!span} records and [int array] memory curves.  The cost
    layer's [Simulator.run_events] produces per-node events that the
    CLI maps to spans (compute stream → {!Compute} lane, swap traffic →
    {!Copy} lane); [Lifetime.timeline] produces the memory curve, and
    [Membound] the lower/upper annotation lines. *)

type lane = Compute | Copy

type span = {
  name : string;
  lane : lane;
  t_start : float;  (** seconds from schedule start *)
  t_dur : float;  (** seconds *)
  bytes : int;  (** bytes produced by the op; 0 when not applicable *)
}

(** Chrome [trace_event] objects for the schedule: one complete event
    per span on pid 2 (tid 0 = compute lane, tid 1 = copy lane),
    preceded by metadata naming the process and both lanes — so both
    lanes exist in the viewer even when the schedule has no swaps. *)
val chrome_events : span list -> Json.t list

(** A complete Chrome trace JSON document for the schedule.  [extra]
    events (e.g. {!Trace.chrome_events} of the wall-clock trace) are
    appended, producing a single file with both views. *)
val chrome : ?extra:Json.t list -> span list -> string

(** CSV rendering of a memory-vs-step curve: header plus one
    [step,bytes] line per entry; [lower]/[upper] add constant
    bound columns (e.g. from [Membound.compute]). *)
val memory_csv : ?lower:int -> ?upper:int -> int array -> string

(** Peak of the curve (0 for an empty curve). *)
val memory_max : int array -> int
