(** Lightweight span/instant tracing with a Chrome [trace_event]
    exporter.

    Instrumented code calls {!with_span} around units of work and
    {!instant} at point events; both are near-free while the tracer is
    disabled (the default): one atomic load, one branch, no allocation.
    When enabled, events carry a monotonized timestamp and the
    recording domain's id, and land in a fixed-capacity ring buffer
    shared by all domains — overflow overwrites the oldest events (see
    {!dropped}), never blocks, and never grows memory.

    {!to_chrome} renders the buffer as a Chrome [trace_event] JSON
    document loadable in [chrome://tracing] or Perfetto; spans become
    complete events on one lane per domain, so a parallel search shows
    its worker fan-out directly.

    The tracer is a process-wide singleton: libraries instrument
    unconditionally, and whoever owns [main] (CLI, bench, a test)
    decides whether to {!enable} it. *)

(** A completed span of [float] seconds, or a point event. *)
type kind = Span of float | Instant

type event = {
  name : string;
  cat : string;  (** coarse grouping: ["search"], ["cost"], ["resilience"], … *)
  ts : float;  (** absolute monotonized seconds (see {!now}) *)
  tid : int;  (** domain id of the recording domain *)
  kind : kind;
  args : (string * string) list;
}

(** Monotonized wall clock, in seconds: never decreases, across all
    domains, even when the system clock steps backwards.  Usable (and
    used, e.g. by {!Magis_par.Pool} busy accounting) independently of
    whether tracing is enabled. *)
val now : unit -> float

(** Start recording into a fresh ring buffer of [capacity] events
    (default 65536).  Timestamps exported by {!to_chrome} are relative
    to this call. *)
val enable : ?capacity:int -> unit -> unit

(** Stop recording; the buffer stays readable ({!events}, {!to_chrome})
    until the next {!enable} or {!clear}. *)
val disable : unit -> unit

val enabled : unit -> bool

(** Disable and drop the buffer. *)
val clear : unit -> unit

(** [with_span name f] runs [f] and, when enabled, records a span
    covering its execution — also when [f] raises.  Disabled cost: one
    atomic load. *)
val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Record a point event (no-op while disabled; allocation-free on that
    path). *)
val instant : ?cat:string -> ?args:(string * string) list -> string -> unit

(** Recorded events, oldest first. *)
val events : unit -> event list

(** Events overwritten by ring-buffer overflow since {!enable}. *)
val dropped : unit -> int

(** The buffer as Chrome [trace_event] JSON objects (no enclosing
    document), for embedding alongside other lanes (see
    {!Timeline.chrome}). *)
val chrome_events : unit -> Json.t list

(** The buffer as a complete Chrome trace JSON document. *)
val to_chrome : unit -> string
