(** Search-telemetry sink: one JSON object per line (JSONL).

    The search loop records one object per iteration (queue depth, best
    peak and latency so far, cache hit rate, prune and quarantine
    counts, per-phase wall time, pool busy fractions, …); each record
    is flushed as it is written, so an interrupted run keeps every
    completed iteration.  {!read} parses a file back for analysis and
    for the round-trip tests. *)

type t

(** Open (truncating) a JSONL file for writing. *)
val create : string -> t

val path : t -> string

(** Append one record as a single line and flush.  No-op after
    {!close}. *)
val record : t -> (string * Json.t) list -> unit

(** Records written so far. *)
val count : t -> int

(** Close the underlying channel (idempotent). *)
val close : t -> unit

(** Parse a JSONL file back into its records (empty lines skipped).
    Raises {!Json.Parse_error} on a malformed line. *)
val read : string -> Json.t list
