(** Blocking client (see the interface). *)

module P = Protocol

type t = { fd : Unix.file_descr; rbuf : Buffer.t }

let sockaddr = function
  | P.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | P.Tcp port ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let connect ?(retries = 50) addr =
  let domain, sa = sockaddr addr in
  let rec go n =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | () -> { fd; rbuf = Buffer.create 256 }
    | exception e ->
        (try Unix.close fd with _ -> ());
        if n <= 0 then raise e
        else begin
          Unix.sleepf 0.1;
          go (n - 1)
        end
  in
  go retries

let send_raw t s =
  let n = String.length s in
  let rec go off =
    if off < n then begin
      let w =
        try Unix.write_substring t.fd s off (n - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + w)
    end
  in
  go 0

let send t cmd = send_raw t (P.command_to_string cmd ^ "\n")

(* Read until one full line is buffered; the reply-side length limit
   protects the client from a runaway server the same way the server
   protects itself from a hostile client. *)
let recv_line t =
  let chunk = Bytes.create 8192 in
  let rec take () =
    let data = Buffer.contents t.rbuf in
    match String.index_opt data '\n' with
    | Some nl ->
        Buffer.clear t.rbuf;
        Buffer.add_substring t.rbuf data (nl + 1)
          (String.length data - nl - 1);
        String.sub data 0 nl
    | None ->
        if String.length data > P.max_reply_line then
          raise (P.Invalid "reply line exceeds the client limit");
        let n =
          try Unix.read t.fd chunk 0 (Bytes.length chunk) with
          | Unix.Unix_error (Unix.EINTR, _, _) -> max_int
          | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              (* a reset peer is just a closed connection to the caller *)
              0
        in
        if n = max_int then take ()
        else if n = 0 then raise End_of_file
        else begin
          Buffer.add_subbytes t.rbuf chunk 0 n;
          take ()
        end
  in
  take ()

let recv t = P.reply_of_string (recv_line t)

let optimize ?(on_progress = fun _ -> ()) t (req : P.request) =
  send t (P.Optimize req);
  let rec pump () =
    match recv t with
    | P.Progress p when p.p_id = req.id ->
        on_progress p;
        pump ()
    | P.Result o as r when o.o_id = req.id -> r
    | P.Error { e_id = Some id; _ } as r when id = req.id -> r
    | P.Error { e_id = None; _ } as r -> r
    | _ -> pump ()
  in
  pump ()

let frontier t (f : P.frontier_request) =
  send t (P.Frontier f);
  let rec pump () =
    match recv t with
    | P.Frontier_reply a as r when a.fr_id = f.f_id -> r
    | P.Error { e_id = Some id; _ } as r when id = f.f_id -> r
    | P.Error { e_id = None; _ } as r -> r
    | _ -> pump ()
  in
  pump ()

let health t =
  send t P.Health;
  let rec pump () =
    match recv t with P.Health_reply h -> h | _ -> pump ()
  in
  pump ()

let metrics_text t =
  send t P.Metrics;
  let rec pump () =
    match recv t with P.Metrics_reply text -> text | _ -> pump ()
  in
  pump ()

let shutdown_send t = try Unix.shutdown t.fd Unix.SHUTDOWN_SEND with _ -> ()
let close t = try Unix.close t.fd with _ -> ()
