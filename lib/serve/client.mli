(** Blocking client for the optimization service.

    Thin line-framing over a connected socket plus the {!Protocol}
    codec; used by the CLI, the load generator, the chaos harness and
    the tests.  One client = one connection; not thread-safe (give each
    concurrent client its own [t]). *)

type t

(** Connect to a daemon.  [retries] poll the socket for a daemon that
    is still starting up (100 ms apart) before giving up with the
    underlying [Unix.Unix_error]. *)
val connect : ?retries:int -> Protocol.addr -> t

val send : t -> Protocol.command -> unit

(** Send raw bytes verbatim — the chaos harness's garbage generator. *)
val send_raw : t -> string -> unit

(** Next reply line (blocking).  Raises [End_of_file] when the daemon
    closed the connection, {!Protocol.Invalid} /
    {!Magis_obs.Json.Parse_error} on an undecodable line. *)
val recv : t -> Protocol.reply

(** Send an [Optimize] command and pump replies until the terminal one
    for that id ([Result] or [Error]), feeding each [Progress] to
    [on_progress].  Replies for other ids are ignored, so a pipelined
    connection can drive one request at a time per call. *)
val optimize :
  ?on_progress:(Protocol.progress -> unit) ->
  t ->
  Protocol.request ->
  Protocol.reply

(** Send a [Frontier] query and pump replies until its terminal one
    ([Frontier_reply] or [Error]).  A cache hit returns without the
    daemon running any search. *)
val frontier : t -> Protocol.frontier_request -> Protocol.reply

val health : t -> Protocol.health
val metrics_text : t -> string

(** Half-close the sending side, keeping receives open. *)
val shutdown_send : t -> unit

val close : t -> unit
