(** Wire protocol codec (see the interface).

    Encoding goes through {!Magis_obs.Json} values, never string
    concatenation, so escaping is inherited from the one JSON emitter in
    the codebase.  Decoding is strict both syntactically (the hardened
    parser with depth/length limits) and structurally: an unknown op, a
    missing field or a wrong type raises {!Invalid} with the offending
    key, which the server maps to a [malformed] error reply. *)

module Json = Magis_obs.Json
module Zoo = Magis_models.Zoo

type addr = Unix_sock of string | Tcp of int
type mode = Memory of float | Latency of float

type request = {
  id : string;
  model : string;
  scale : Zoo.scale;
  mode : mode;
  deadline_s : float option;
  max_iterations : int;
  progress_every : int;
  sched_states : int;
}

type frontier_request = {
  f_id : string;
  f_model : string;
  f_scale : Zoo.scale;
  f_hw : string;
  f_budget_ratio : float;
  f_max_iterations : int;
  f_sched_states : int;
}

type command =
  | Optimize of request
  | Frontier of frontier_request
  | Health
  | Metrics
  | Pause
  | Resume
  | Shutdown

type error_kind =
  | Malformed
  | Oversized
  | Overloaded
  | Deadline
  | Duplicate
  | Incompatible
  | Shutting_down
  | Internal

type progress = {
  p_id : string;
  p_iterations : int;
  p_peak : int;
  p_latency : float;
  p_elapsed : float;
}

type outcome = {
  o_id : string;
  o_initial_peak : int;
  o_peak : int;
  o_latency : float;
  o_iterations : int;
  o_interrupted : bool;
  o_resumed : bool;
  o_deadline_hit : bool;
  o_quarantined : int;
}

type health = {
  status : string;
  queue_depth : int;
  inflight : int;
  shed_level : int;
  served : int;
  rejected : int;
  quarantined : int;
  cache_hit_rate : float;
}

type frontier_answer = {
  fr_id : string;
  fr_cache_hit : bool;
  fr_points : int;
  fr_budget : int;
  fr_feasible : bool;
  fr_peak : int;
  fr_latency : float;
}

type reply =
  | Ack of string
  | Progress of progress
  | Result of outcome
  | Frontier_reply of frontier_answer
  | Error of { e_id : string option; kind : error_kind; detail : string }
  | Health_reply of health
  | Metrics_reply of string

exception Invalid of string

let () =
  Printexc.register_printer (function
    | Invalid msg -> Some (Printf.sprintf "Magis_serve.Protocol.Invalid(%s)" msg)
    | _ -> None)

let invalid fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt

let max_request_line = 16 * 1024
let max_reply_line = 1024 * 1024

(* Requests are flat objects; a few levels of headroom keep the limit
   far from anything a legitimate client sends. *)
let max_depth = 16

let request ~id ~model =
  {
    id;
    model;
    scale = Zoo.Quick;
    mode = Memory 0.1;
    deadline_s = None;
    max_iterations = 32;
    progress_every = 0;
    sched_states = 0;
  }

let frontier_request ~id ~model =
  {
    f_id = id;
    f_model = model;
    f_scale = Zoo.Quick;
    f_hw = "rtx3090";
    f_budget_ratio = 0.8;
    f_max_iterations = 32;
    f_sched_states = 0;
  }

let error_kind_name = function
  | Malformed -> "malformed"
  | Oversized -> "oversized"
  | Overloaded -> "overloaded"
  | Deadline -> "deadline"
  | Duplicate -> "duplicate"
  | Incompatible -> "incompatible"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let error_kind_of_name = function
  | "malformed" -> Malformed
  | "oversized" -> Oversized
  | "overloaded" -> Overloaded
  | "deadline" -> Deadline
  | "duplicate" -> Duplicate
  | "incompatible" -> Incompatible
  | "shutting_down" -> Shutting_down
  | "internal" -> Internal
  | s -> invalid "unknown error kind %S" s

(* ------------------------------------------------------------------ *)
(* Field accessors                                                     *)
(* ------------------------------------------------------------------ *)

let str_field doc key =
  match Json.member key doc with
  | Some (Json.String s) -> s
  | Some _ -> invalid "field %S must be a string" key
  | None -> invalid "missing field %S" key

let opt_int doc key ~default =
  match Json.member key doc with
  | None | Some Json.Null -> default
  | Some v -> (
      match Json.to_int v with
      | Some i -> i
      | None -> invalid "field %S must be an integer" key)

let req_int doc key =
  match Option.bind (Json.member key doc) Json.to_int with
  | Some i -> i
  | None -> invalid "missing integer field %S" key

let req_float doc key =
  match Option.bind (Json.member key doc) Json.to_float with
  | Some f -> f
  | None -> invalid "missing number field %S" key

let opt_float doc key ~default =
  match Json.member key doc with
  | None | Some Json.Null -> default
  | Some v -> (
      match Json.to_float v with
      | Some f -> f
      | None -> invalid "field %S must be a number" key)

let req_bool doc key =
  match Json.member key doc with
  | Some (Json.Bool b) -> b
  | _ -> invalid "missing boolean field %S" key

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let command_to_string cmd =
  let doc =
    match cmd with
    | Health -> Json.Obj [ ("op", Json.String "health") ]
    | Metrics -> Json.Obj [ ("op", Json.String "metrics") ]
    | Pause -> Json.Obj [ ("op", Json.String "pause") ]
    | Resume -> Json.Obj [ ("op", Json.String "resume") ]
    | Shutdown -> Json.Obj [ ("op", Json.String "shutdown") ]
    | Optimize r ->
        let mode_fields =
          match r.mode with
          | Memory overhead ->
              [ ("mode", Json.String "memory");
                ("overhead", Json.Float overhead) ]
          | Latency ratio ->
              [ ("mode", Json.String "latency");
                ("mem_ratio", Json.Float ratio) ]
        in
        let deadline =
          match r.deadline_s with
          | None -> []
          | Some d -> [ ("deadline_s", Json.Float d) ]
        in
        Json.Obj
          ([ ("op", Json.String "optimize");
             ("id", Json.String r.id);
             ("model", Json.String r.model);
             ("scale",
              Json.String
                (match r.scale with Zoo.Quick -> "quick" | Zoo.Full -> "full"))
           ]
          @ mode_fields @ deadline
          @ [ ("max_iterations", Json.Int r.max_iterations);
              ("progress_every", Json.Int r.progress_every);
              ("sched_states", Json.Int r.sched_states) ])
    | Frontier f ->
        Json.Obj
          [ ("op", Json.String "frontier");
            ("id", Json.String f.f_id);
            ("model", Json.String f.f_model);
            ("scale",
             Json.String
               (match f.f_scale with
               | Zoo.Quick -> "quick"
               | Zoo.Full -> "full"));
            ("hw", Json.String f.f_hw);
            ("budget_ratio", Json.Float f.f_budget_ratio);
            ("max_iterations", Json.Int f.f_max_iterations);
            ("sched_states", Json.Int f.f_sched_states) ]
  in
  Json.to_string doc

let request_of_json doc =
  let id = str_field doc "id" in
  let model = str_field doc "model" in
  let scale =
    match Json.member "scale" doc with
    | None | Some Json.Null -> Zoo.Quick
    | Some (Json.String "quick") -> Zoo.Quick
    | Some (Json.String "full") -> Zoo.Full
    | Some _ -> invalid "field \"scale\" must be \"quick\" or \"full\""
  in
  let mode =
    match Json.member "mode" doc with
    | None | Some Json.Null | Some (Json.String "memory") ->
        Memory (opt_float doc "overhead" ~default:0.1)
    | Some (Json.String "latency") ->
        Latency (opt_float doc "mem_ratio" ~default:0.5)
    | Some _ -> invalid "field \"mode\" must be \"memory\" or \"latency\""
  in
  let deadline_s =
    match Json.member "deadline_s" doc with
    | None | Some Json.Null -> None
    | Some v -> (
        match Json.to_float v with
        | Some f -> Some f
        | None -> invalid "field \"deadline_s\" must be a number")
  in
  {
    id;
    model;
    scale;
    mode;
    deadline_s;
    max_iterations = opt_int doc "max_iterations" ~default:32;
    progress_every = opt_int doc "progress_every" ~default:0;
    sched_states = opt_int doc "sched_states" ~default:0;
  }

let frontier_request_of_json doc =
  let scale =
    match Json.member "scale" doc with
    | None | Some Json.Null -> Zoo.Quick
    | Some (Json.String "quick") -> Zoo.Quick
    | Some (Json.String "full") -> Zoo.Full
    | Some _ -> invalid "field \"scale\" must be \"quick\" or \"full\""
  in
  let ratio = opt_float doc "budget_ratio" ~default:0.8 in
  if not (ratio > 0. && ratio <= 1.) then
    invalid "field \"budget_ratio\" must be in (0, 1]";
  {
    f_id = str_field doc "id";
    f_model = str_field doc "model";
    f_scale = scale;
    f_hw =
      (match Json.member "hw" doc with
      | None | Some Json.Null -> "rtx3090"
      | Some (Json.String s) -> s
      | Some _ -> invalid "field \"hw\" must be a string");
    f_budget_ratio = ratio;
    f_max_iterations = opt_int doc "max_iterations" ~default:32;
    f_sched_states = opt_int doc "sched_states" ~default:0;
  }

let command_of_string s =
  let doc = Json.of_string ~max_depth ~max_len:max_request_line s in
  match str_field doc "op" with
  | "optimize" -> Optimize (request_of_json doc)
  | "frontier" -> Frontier (frontier_request_of_json doc)
  | "health" -> Health
  | "metrics" -> Metrics
  | "pause" -> Pause
  | "resume" -> Resume
  | "shutdown" -> Shutdown
  | op -> invalid "unknown op %S" op

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

let reply_to_string reply =
  let doc =
    match reply with
    | Ack op -> Json.Obj [ ("reply", Json.String "ack"); ("op", Json.String op) ]
    | Progress p ->
        Json.Obj
          [ ("reply", Json.String "progress");
            ("id", Json.String p.p_id);
            ("iterations", Json.Int p.p_iterations);
            ("peak_mem", Json.Int p.p_peak);
            ("latency", Json.Float p.p_latency);
            ("elapsed_s", Json.Float p.p_elapsed) ]
    | Result o ->
        Json.Obj
          [ ("reply", Json.String "result");
            ("id", Json.String o.o_id);
            ("initial_peak", Json.Int o.o_initial_peak);
            ("peak_mem", Json.Int o.o_peak);
            ("latency", Json.Float o.o_latency);
            ("iterations", Json.Int o.o_iterations);
            ("interrupted", Json.Bool o.o_interrupted);
            ("resumed", Json.Bool o.o_resumed);
            ("deadline_hit", Json.Bool o.o_deadline_hit);
            ("quarantined", Json.Int o.o_quarantined) ]
    | Frontier_reply f ->
        Json.Obj
          [ ("reply", Json.String "frontier");
            ("id", Json.String f.fr_id);
            ("cache_hit", Json.Bool f.fr_cache_hit);
            ("points", Json.Int f.fr_points);
            ("budget", Json.Int f.fr_budget);
            ("feasible", Json.Bool f.fr_feasible);
            ("peak_mem", Json.Int f.fr_peak);
            ("latency", Json.Float f.fr_latency) ]
    | Error { e_id; kind; detail } ->
        Json.Obj
          ([ ("reply", Json.String "error") ]
          @ (match e_id with
            | None -> []
            | Some id -> [ ("id", Json.String id) ])
          @ [ ("kind", Json.String (error_kind_name kind));
              ("detail", Json.String detail) ])
    | Health_reply h ->
        Json.Obj
          [ ("reply", Json.String "health");
            ("status", Json.String h.status);
            ("queue_depth", Json.Int h.queue_depth);
            ("inflight", Json.Int h.inflight);
            ("shed_level", Json.Int h.shed_level);
            ("served", Json.Int h.served);
            ("rejected", Json.Int h.rejected);
            ("quarantined", Json.Int h.quarantined);
            ("cache_hit_rate", Json.Float h.cache_hit_rate) ]
    | Metrics_reply text ->
        Json.Obj
          [ ("reply", Json.String "metrics"); ("text", Json.String text) ]
  in
  Json.to_string doc

let reply_of_string s =
  let doc = Json.of_string ~max_depth ~max_len:max_reply_line s in
  match str_field doc "reply" with
  | "ack" -> Ack (str_field doc "op")
  | "progress" ->
      Progress
        {
          p_id = str_field doc "id";
          p_iterations = req_int doc "iterations";
          p_peak = req_int doc "peak_mem";
          p_latency = req_float doc "latency";
          p_elapsed = req_float doc "elapsed_s";
        }
  | "result" ->
      Result
        {
          o_id = str_field doc "id";
          o_initial_peak = req_int doc "initial_peak";
          o_peak = req_int doc "peak_mem";
          o_latency = req_float doc "latency";
          o_iterations = req_int doc "iterations";
          o_interrupted = req_bool doc "interrupted";
          o_resumed = req_bool doc "resumed";
          o_deadline_hit = req_bool doc "deadline_hit";
          o_quarantined = req_int doc "quarantined";
        }
  | "frontier" ->
      Frontier_reply
        {
          fr_id = str_field doc "id";
          fr_cache_hit = req_bool doc "cache_hit";
          fr_points = req_int doc "points";
          fr_budget = req_int doc "budget";
          fr_feasible = req_bool doc "feasible";
          fr_peak = req_int doc "peak_mem";
          fr_latency = req_float doc "latency";
        }
  | "error" ->
      let e_id =
        match Json.member "id" doc with
        | Some (Json.String id) -> Some id
        | _ -> None
      in
      Error
        {
          e_id;
          kind = error_kind_of_name (str_field doc "kind");
          detail = str_field doc "detail";
        }
  | "health" ->
      Health_reply
        {
          status = str_field doc "status";
          queue_depth = req_int doc "queue_depth";
          inflight = req_int doc "inflight";
          shed_level = req_int doc "shed_level";
          served = req_int doc "served";
          rejected = req_int doc "rejected";
          quarantined = req_int doc "quarantined";
          cache_hit_rate = req_float doc "cache_hit_rate";
        }
  | "metrics" -> Metrics_reply (str_field doc "text")
  | r -> invalid "unknown reply %S" r
