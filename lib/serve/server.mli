(** The optimization daemon: accept loop, admission control, worker
    dispatch, crash recovery, drain.

    One IO domain runs a [select] event loop over the listening socket,
    a signal self-pipe and every client connection; [workers] domains
    pop admitted requests from a bounded queue and run the search
    slice-by-slice (checkpoint-resumed), streaming progress and the
    final result back over the client's connection.  The robustness
    contract, the request lifecycle state machine and the load-shedding
    ladder are specified in DESIGN.md §13.

    Robustness summary:
    - a malformed line, oversized line, torn read/write or quarantined
      request produces a structured error reply and a quarantine
      record; no client behaviour crashes the daemon;
    - the request queue is bounded; beyond it (or beyond the per-client
      in-flight limit) requests are rejected [overloaded], and queued
      depth degrades admitted quality ([sched_states], bound probes)
      before anything is rejected;
    - deadlines map onto the search's [time_budget], so expiry returns
      best-so-far, flagged [deadline_hit];
    - client disconnect cancels the in-flight search at the next
      expansion boundary via the [cancel] hook;
    - every in-flight request checkpoints under
      [ckpt_dir/req-<id>.ckpt]; a restarted daemon resumes a
      re-submitted id bit-identically (same spec) or answers
      [incompatible] (changed spec);
    - SIGTERM (or {!stop}, or a [shutdown] command) drains: no new
      admissions, queued and in-flight requests finish (in-flight
      searches observe the signal and return best-so-far), then the
      daemon exits. *)

type config = {
  addr : Protocol.addr;
  workers : int;  (** request-executor domains *)
  queue_cap : int;  (** bounded admission queue *)
  per_client_limit : int;  (** max queued+running requests per connection *)
  ckpt_dir : string;  (** created if missing; one file per request id *)
  ckpt_every : float;  (** seconds between periodic snapshots *)
  slice_iterations : int;
      (** iteration granularity of progress/cancellation when a request
          does not set [progress_every] *)
  write_timeout : float;
      (** [SO_SNDTIMEO] on client sockets: a slow-loris reader is
          declared dead after this many seconds of a blocked write *)
  verbose : bool;  (** log lifecycle events to stderr *)
}

val default_config : config

type t

val create : config -> t

(** Run the daemon until drained.  Blocking: spawns the worker domains,
    installs the shared signal handler ({!Magis_resilience.Interrupt}),
    ignores SIGPIPE, and returns only after a SIGTERM/SIGINT, {!stop}
    or [shutdown] command has drained the queue.  The Unix socket file
    is unlinked on exit. *)
val run : t -> unit

(** Initiate drain from another domain (or a signal callback); safe to
    call repeatedly.  {!run} returns once the queue and in-flight
    requests finish. *)
val stop : t -> unit

(** The search configuration the daemon would use for [req] admitted at
    shed level [shed] — exposed so tests and benches can run the exact
    same search out-of-process and compare results bit-for-bit. *)
val search_config :
  t -> shed:int -> Protocol.request -> Magis_opt.Search.config

(** Checkpoint path the daemon uses for a request id. *)
val ckpt_path : config -> string -> string
