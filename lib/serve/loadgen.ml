(** Load generator and chaos harness (see the interface). *)

module P = Protocol

type load_report = {
  sent : int;
  completed : int;
  overloaded : int;
  deadline : int;
  errors : int;
  p50_ms : float;
  p99_ms : float;
  rejection_rate : float;
  cache_hit_rate : float;
  wall_s : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

type client_tally = {
  mutable c_sent : int;
  mutable c_done : int;
  mutable c_over : int;
  mutable c_dead : int;
  mutable c_err : int;
  mutable c_lat : float list;  (** seconds per completed request *)
}

let run_load ~addr ~clients ~per_client ~models ?(max_iterations = 8)
    ?deadline_s ?(progress_every = 0) () =
  let t0 = Unix.gettimeofday () in
  let one_client ci =
    let tally =
      { c_sent = 0; c_done = 0; c_over = 0; c_dead = 0; c_err = 0; c_lat = [] }
    in
    (match Client.connect addr with
    | exception _ -> ()
    | c ->
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        for r = 0 to per_client - 1 do
          let model = List.nth models ((ci + r) mod List.length models) in
          let req =
            {
              (P.request ~id:(Printf.sprintf "load-c%d-r%d" ci r) ~model) with
              max_iterations;
              deadline_s;
              progress_every;
            }
          in
          tally.c_sent <- tally.c_sent + 1;
          let tr0 = Unix.gettimeofday () in
          match Client.optimize c req with
          | exception _ -> tally.c_err <- tally.c_err + 1
          | P.Result o ->
              tally.c_done <- tally.c_done + 1;
              if o.o_deadline_hit then tally.c_dead <- tally.c_dead + 1;
              tally.c_lat <- (Unix.gettimeofday () -. tr0) :: tally.c_lat
          | P.Error { kind = P.Overloaded; _ } ->
              tally.c_over <- tally.c_over + 1
          | P.Error { kind = P.Deadline; _ } ->
              tally.c_dead <- tally.c_dead + 1
          | _ -> tally.c_err <- tally.c_err + 1
        done);
    tally
  in
  let tallies =
    Array.init clients (fun ci -> Domain.spawn (fun () -> one_client ci))
    |> Array.map Domain.join
  in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let sent = sum (fun t -> t.c_sent)
  and completed = sum (fun t -> t.c_done)
  and overloaded = sum (fun t -> t.c_over)
  and deadline = sum (fun t -> t.c_dead)
  and errors = sum (fun t -> t.c_err) in
  let lat =
    Array.of_list
      (List.concat_map (fun t -> t.c_lat) (Array.to_list tallies))
  in
  Array.sort compare lat;
  let cache_hit_rate =
    match Client.connect ~retries:5 addr with
    | exception _ -> 0.0
    | c ->
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        (Client.health c).cache_hit_rate
  in
  {
    sent;
    completed;
    overloaded;
    deadline;
    errors;
    p50_ms = percentile lat 0.50 *. 1000.0;
    p99_ms = percentile lat 0.99 *. 1000.0;
    rejection_rate =
      (if sent = 0 then 0.0
       else float_of_int (overloaded + deadline + errors) /. float_of_int sent);
    cache_hit_rate;
    wall_s = Unix.gettimeofday () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Chaos harness                                                       *)
(* ------------------------------------------------------------------ *)

type chaos_report = {
  scenarios : (string * bool) list;
  passed : int;
  failed : int;
}

(* After every adversarial act: a fresh connection must still get a
   health reply.  This is the daemon-survives assertion. *)
let probe addr =
  match Client.connect ~retries:5 addr with
  | exception _ -> false
  | c ->
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (try (Client.health c).status <> "" with _ -> false)

let small_req ~id ~model =
  { (P.request ~id ~model) with max_iterations = 3 }

(* Garbage bytes: expect a structured [malformed] error (the daemon may
   close the connection right after). *)
let scenario_garbage addr rng () =
  let len = 16 + Random.State.int rng 64 in
  let garbage =
    String.init len (fun _ -> Char.chr (1 + Random.State.int rng 255))
  in
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  Client.send_raw c (garbage ^ "\n");
  match Client.recv c with
  | P.Error { kind = P.Malformed; _ } -> true
  | exception End_of_file -> true
  | _ -> false

(* A line longer than the server limit, never terminated: expect the
   [oversized] error (or an immediate drop). *)
let scenario_oversized addr _rng () =
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  Client.send_raw c (String.make (P.max_request_line + 512) 'a');
  match Client.recv c with
  | P.Error { kind = P.Oversized; _ } -> true
  | exception End_of_file -> true
  | _ -> false

(* Disconnect mid-stream: start a long request with progress events,
   read one, vanish.  The daemon must cancel and keep serving. *)
let scenario_disconnect addr _rng () =
  let c = Client.connect addr in
  let req =
    {
      (P.request ~id:"chaos-disconnect" ~model:"unet") with
      max_iterations = 64;
      progress_every = 1;
    }
  in
  Client.send c (P.Optimize req);
  let got_progress =
    match Client.recv c with P.Progress _ -> true | _ -> false
  in
  Client.close c;
  got_progress

(* A slow client: the request arrives in two chunks with a pause in the
   middle; the line-buffering accept loop must assemble and serve it. *)
let scenario_slow addr _rng () =
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let line =
    P.command_to_string (P.Optimize (small_req ~id:"chaos-slow" ~model:"unet"))
    ^ "\n"
  in
  let half = String.length line / 2 in
  Client.send_raw c (String.sub line 0 half);
  Unix.sleepf 0.3;
  Client.send_raw c (String.sub line half (String.length line - half));
  match Client.recv c with
  | P.Result o -> o.o_id = "chaos-slow"
  | P.Progress _ -> true
  | _ -> false

(* Duplicate ids: pause dispatch so the first copy stays queued, then
   resubmit the same id — the daemon must reject the duplicate and
   still serve the original after resume. *)
let scenario_duplicate addr _rng () =
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  Client.send c P.Pause;
  let req = small_req ~id:"chaos-dup" ~model:"unet" in
  Client.send c (P.Optimize req);
  Client.send c (P.Optimize req);
  Client.send c P.Resume;
  let dup = ref false and result = ref false and acks = ref 0 in
  (try
     while not (!dup && !result) && !acks < 100 do
       match Client.recv c with
       | P.Error { kind = P.Duplicate; _ } -> dup := true
       | P.Result o when o.o_id = "chaos-dup" -> result := true
       | _ -> incr acks
     done
   with End_of_file -> ());
  !dup && !result

(* Mixed optimize / frontier traffic on one connection: an ordinary
   request, then the same frontier query twice — the first may build or
   hit, the second MUST be a cache hit (the daemon just built it), and
   both must agree on the answer. *)
let scenario_frontier_mix addr _rng () =
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let opt_ok =
    match Client.optimize c (small_req ~id:"chaos-fmix-opt" ~model:"unet") with
    | P.Result o -> o.o_id = "chaos-fmix-opt"
    | _ -> false
  in
  let fq id =
    { (P.frontier_request ~id ~model:"unet") with P.f_max_iterations = 3 }
  in
  match
    (Client.frontier c (fq "chaos-fmix-f1"), Client.frontier c (fq "chaos-fmix-f2"))
  with
  | P.Frontier_reply a, P.Frontier_reply b ->
      opt_ok && b.fr_cache_hit
      && a.fr_points = b.fr_points
      && a.fr_budget = b.fr_budget
      && a.fr_peak = b.fr_peak
      && a.fr_latency = b.fr_latency
  | _ -> false

let run_chaos ~addr ~seed =
  let rng = Random.State.make [| 0xC4A05; seed |] in
  let scenarios =
    [
      ("garbage", scenario_garbage addr rng);
      ("oversized", scenario_oversized addr rng);
      ("disconnect", scenario_disconnect addr rng);
      ("slow", scenario_slow addr rng);
      ("duplicate", scenario_duplicate addr rng);
      ("frontier-mix", scenario_frontier_mix addr rng);
    ]
  in
  let results =
    List.map
      (fun (name, f) ->
        let acted = try f () with _ -> false in
        (* the scenario's own outcome AND the daemon still answering *)
        (name, acted && probe addr))
      scenarios
  in
  let passed = List.length (List.filter snd results) in
  {
    scenarios = results;
    passed;
    failed = List.length results - passed;
  }
