(** Wire protocol of the optimization service: line-delimited JSON.

    One request or reply per line, encoded with {!Magis_obs.Json}; the
    decoder applies the parser's depth and length limits so a hostile
    client cannot make the daemon recurse or buffer without bound.  The
    grammar is documented in DESIGN.md §13; this module is the single
    source of truth for both the server and every client (CLI, load
    generator, chaos harness, tests).

    Commands travel client → server, replies server → client.  A
    connection may carry any number of commands; each [Optimize] is
    answered by zero or more [Progress] lines followed by exactly one
    terminal line ([Result] or [Error]), matched by request id. *)

(** Where the daemon listens. *)
type addr =
  | Unix_sock of string  (** filesystem socket path *)
  | Tcp of int  (** 127.0.0.1 port *)

(** Optimization objective, relative to the unoptimized baseline. *)
type mode =
  | Memory of float  (** minimize peak memory; latency overhead bound *)
  | Latency of float  (** minimize latency; peak-memory ratio bound *)

type request = {
  id : string;  (** client-chosen; duplicate in-flight ids are rejected *)
  model : string;  (** {!Magis_models.Zoo} workload name *)
  scale : Magis_models.Zoo.scale;
  mode : mode;
  deadline_s : float option;
      (** total seconds from admission; maps onto the search's
          [time_budget], so an expiring request returns best-so-far *)
  max_iterations : int;
  progress_every : int;  (** iterations between progress events; 0 = none *)
  sched_states : int;  (** DP budget; may be shed under load *)
}

(** A frontier query: "best latency for [model] on [hw] under
    [budget_ratio] × the baseline peak".  Answered from the daemon's
    frontier cache when the (model, hardware, search configuration)
    combination was built before — a cache hit costs one O(log n)
    lookup on the IO domain and never enters the admission queue. *)
type frontier_request = {
  f_id : string;  (** same id discipline as {!request.id} *)
  f_model : string;
  f_scale : Magis_models.Zoo.scale;
  f_hw : string;  (** {!Magis_cost.Hardware} profile name *)
  f_budget_ratio : float;  (** memory budget in (0, 1] of baseline peak *)
  f_max_iterations : int;  (** search knobs for the cache-miss build; *)
  f_sched_states : int;  (** both are part of the cache key *)
}

type command =
  | Optimize of request
  | Frontier of frontier_request
  | Health
  | Metrics
  | Pause  (** stop dispatching queued requests (admin; deterministic tests) *)
  | Resume
  | Shutdown  (** drain the queue and exit, like SIGTERM *)

type error_kind =
  | Malformed  (** unparseable or ill-typed request *)
  | Oversized  (** request line longer than the server limit *)
  | Overloaded  (** queue full or per-client in-flight limit hit *)
  | Deadline  (** deadline expired before the request was dispatched *)
  | Duplicate  (** request id already in flight *)
  | Incompatible  (** checkpoint under this id belongs to another spec *)
  | Shutting_down  (** daemon is draining *)
  | Internal  (** quarantined failure or optimizer bug *)

type progress = {
  p_id : string;
  p_iterations : int;
  p_peak : int;  (** best-so-far peak memory, bytes *)
  p_latency : float;  (** best-so-far simulated latency, seconds *)
  p_elapsed : float;  (** seconds since the request was admitted *)
}

type outcome = {
  o_id : string;
  o_initial_peak : int;
  o_peak : int;
  o_latency : float;
  o_iterations : int;
  o_interrupted : bool;  (** cut short by SIGTERM / drain *)
  o_resumed : bool;  (** continued from a checkpoint of the same id *)
  o_deadline_hit : bool;  (** budget expired; this is best-so-far *)
  o_quarantined : int;  (** candidates quarantined during the search *)
}

type health = {
  status : string;  (** ["ok"] | ["paused"] | ["draining"] *)
  queue_depth : int;
  inflight : int;
  shed_level : int;  (** current load-shedding rung (0 = full quality) *)
  served : int;
  rejected : int;  (** overloaded + deadline + duplicate + shutdown *)
  quarantined : int;  (** connection-layer quarantine records *)
  cache_hit_rate : float;  (** shared cross-request simulation cache *)
}

type frontier_answer = {
  fr_id : string;
  fr_cache_hit : bool;  (** answered without running a search *)
  fr_points : int;  (** resident frontier points *)
  fr_budget : int;  (** the ratio resolved to bytes *)
  fr_feasible : bool;  (** some point fits the budget *)
  fr_peak : int;  (** chosen point's peak bytes (0 when infeasible) *)
  fr_latency : float;  (** chosen point's latency (0 when infeasible) *)
}

type reply =
  | Ack of string  (** admin command acknowledged; carries the op name *)
  | Progress of progress
  | Result of outcome
  | Frontier_reply of frontier_answer
  | Error of { e_id : string option; kind : error_kind; detail : string }
  | Health_reply of health
  | Metrics_reply of string  (** Prometheus text exposition *)

(** Raised by the decoders on well-formed JSON that is not a valid
    message (unknown op, missing field, wrong type). *)
exception Invalid of string

(** Longest request line the server accepts (bytes, newline included). *)
val max_request_line : int

(** Longest reply line a client accepts — larger than the request limit
    because a metrics exposition is a single line. *)
val max_reply_line : int

(** Request with every optional knob at its default; [id] and [model]
    are the only mandatory choices. *)
val request : id:string -> model:string -> request

(** Frontier query with every optional knob at its default (rtx3090
    hardware, 0.8 budget ratio). *)
val frontier_request : id:string -> model:string -> frontier_request

val error_kind_name : error_kind -> string

(** {1 Codec}.  [to_string] never emits a newline; the framing layer
    appends it.  Decoders parse with the hardened limits and raise
    {!Magis_obs.Json.Parse_error} on syntax errors or {!Invalid} on
    schema errors. *)

val command_to_string : command -> string
val command_of_string : string -> command
val reply_to_string : reply -> string
val reply_of_string : string -> reply
