(** Load generator and chaos harness for the optimization service.

    Both speak to a running daemon through {!Client} — in-process
    (tests, [bench serve]) or across processes (the CLI and the CI
    smoke job).  The load generator measures what the ISSUE's bench
    acceptance asks for: latency percentiles, rejection rate and the
    cross-request simulation-cache hit rate.  The chaos harness drives
    the adversarial client behaviours (garbage bytes, oversized lines,
    mid-stream disconnects, slow requests, duplicate ids, mixed
    optimize/frontier traffic with a mandatory repeat-query cache hit)
    and reports, per scenario, whether the daemon survived and kept
    answering with structured replies. *)

type load_report = {
  sent : int;
  completed : int;  (** terminal [Result] replies *)
  overloaded : int;
  deadline : int;  (** deadline error replies + deadline-hit results *)
  errors : int;  (** other error replies *)
  p50_ms : float;  (** request latency percentiles over completed *)
  p99_ms : float;
  rejection_rate : float;  (** (overloaded + deadline + errors) / sent *)
  cache_hit_rate : float;  (** daemon health probe after the run *)
  wall_s : float;
}

(** [run_load ~addr ~clients ~per_client ~models ()] drives [clients]
    concurrent connections (one domain each), each sending
    [per_client] optimization requests round-robin over [models] and
    waiting for the terminal reply.  Request ids are unique per
    (client, sequence) pair. *)
val run_load :
  addr:Protocol.addr ->
  clients:int ->
  per_client:int ->
  models:string list ->
  ?max_iterations:int ->
  ?deadline_s:float ->
  ?progress_every:int ->
  unit ->
  load_report

type chaos_report = {
  scenarios : (string * bool) list;  (** scenario name, survived+answered *)
  passed : int;
  failed : int;
}

(** Run the client-side chaos scenarios against a live daemon, seeded
    for reproducible garbage.  Every scenario ends with a fresh-
    connection health probe; a scenario passes only when the adversarial
    behaviour produced the expected structured reaction and the daemon
    still answers. *)
val run_chaos : addr:Protocol.addr -> seed:int -> chaos_report
