(** The optimization daemon (see the interface for the contract).

    Threading model: the caller of {!run} becomes the IO domain — a
    [select] event loop over the listening socket, a self-pipe and every
    client connection.  It never blocks on a client: reads happen only
    when [select] reports data, writes carry an [SO_SNDTIMEO] so a
    slow-loris reader is declared dead instead of wedging anyone.
    [workers] extra domains execute admitted requests; they write
    progress and terminal replies directly to the client socket under a
    per-connection mutex.  Workers never close file descriptors — they
    only mark the connection dead and wake the IO loop, which owns every
    fd, so no worker can race a close against a concurrent write.

    Signals: the {!Magis_resilience.Interrupt} callback only flips an
    atomic and writes one byte to the self-pipe (both safe inside a
    signal handler); the IO loop performs the actual drain transition
    under the queue lock in normal context.  In-flight searches observe
    SIGTERM through the interrupt guard; a drain initiated by {!stop} or
    a [shutdown] command instead stops each search at its next slice
    boundary, so both paths return best-so-far results.

    Each request runs as a sequence of checkpoint-resumed search slices:
    the trajectory fingerprint excludes iteration and time budgets, so a
    slice continues bit-identically from the previous one — the same
    mechanism gives progress streaming, prompt cancellation, deadline
    best-so-far and crash recovery. *)

module Json = Magis_obs.Json
module Trace = Magis_obs.Trace
module Metrics = Magis_obs.Metrics
module Fault = Magis_resilience.Fault
module Retry = Magis_resilience.Retry
module Checkpoint = Magis_resilience.Checkpoint
module Interrupt = Magis_resilience.Interrupt
module Graph = Magis_ir.Graph
module Hardware = Magis_cost.Hardware
module Op_cost = Magis_cost.Op_cost
module Simulator = Magis_cost.Simulator
module Sim_cache = Magis_cost.Sim_cache
module Search = Magis_opt.Search
module Zoo = Magis_models.Zoo
module Frontier = Magis_frontier.Frontier
module Frontier_cache = Magis_frontier.Frontier_cache
module Frontier_build = Magis_frontier.Frontier_build
module P = Protocol

type config = {
  addr : P.addr;
  workers : int;
  queue_cap : int;
  per_client_limit : int;
  ckpt_dir : string;
  ckpt_every : float;
  slice_iterations : int;
  write_timeout : float;
  verbose : bool;
}

let default_config =
  {
    addr = P.Unix_sock "magis.sock";
    workers = 2;
    queue_cap = 16;
    per_client_limit = 4;
    ckpt_dir = "_serve_ckpt";
    ckpt_every = 0.25;
    slice_iterations = 8;
    write_timeout = 5.0;
    verbose = false;
  }

(* request-level counters in the shared registry; the daemon also keeps
   its own atomics (authoritative for health replies — the registry can
   be reset by a metrics scrape consumer) *)
let m_conns = Metrics.counter "serve.connections"
let m_requests = Metrics.counter "serve.requests"
let m_served = Metrics.counter "serve.served"
let m_rejected = Metrics.counter "serve.rejected"
let m_quarantined = Metrics.counter "serve.quarantined"
let m_cancelled = Metrics.counter "serve.cancelled"
let m_deadline = Metrics.counter "serve.deadline"
let m_resumed = Metrics.counter "serve.resumed"
let m_frontier_hits = Metrics.counter "serve.frontier_hits"
let m_frontier_built = Metrics.counter "serve.frontier_built"
let g_queue = Metrics.gauge "serve.queue_depth"
let g_inflight = Metrics.gauge "serve.inflight"
let g_shed = Metrics.gauge "serve.shed_level"

type conn = {
  cid : int;
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  wlock : Mutex.t;
  alive : bool Atomic.t;
  inflight : int Atomic.t;  (** queued + running requests of this client *)
}

(* What a worker executes: an ordinary optimization, or a frontier
   build for a query that missed the cache (hits never become jobs —
   the IO domain answers them directly). *)
type task = Opt_task of P.request | Frontier_task of P.frontier_request

let task_id = function
  | Opt_task (r : P.request) -> r.id
  | Frontier_task (f : P.frontier_request) -> f.f_id

let task_model = function
  | Opt_task (r : P.request) -> r.model
  | Frontier_task (f : P.frontier_request) -> f.f_model

type job = { jconn : conn; jtask : task; t_admit : float; jshed : int }

type t = {
  cfg : config;
  qlock : Mutex.t;
  qcond : Condition.t;
  queue : job Queue.t;
  mutable paused : bool;
  mutable draining : bool;  (** mirrors [drain_flag], guarded by [qlock] *)
  drain_flag : bool Atomic.t;
  running : int Atomic.t;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  cache : Op_cost.t;
  sim_cache : Sim_cache.t;
  flock : Mutex.t;
  frontiers : (int64, Magis_frontier.Frontier.t) Hashtbl.t;
      (** in-memory frontier memo over the on-disk cache; [flock] *)
  ids : (string, unit) Hashtbl.t;  (** in-flight request ids; [qlock] *)
  mutable quarantine : (int * string * string) list;  (** newest first *)
  served : int Atomic.t;
  rejected : int Atomic.t;
  n_quar : int Atomic.t;
  cancelled : int Atomic.t;
}

let create cfg =
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_w;
  {
    cfg;
    qlock = Mutex.create ();
    qcond = Condition.create ();
    queue = Queue.create ();
    paused = false;
    draining = false;
    drain_flag = Atomic.make false;
    running = Atomic.make 0;
    pipe_r;
    pipe_w;
    cache = Op_cost.create Hardware.default;
    sim_cache = Sim_cache.create ();
    flock = Mutex.create ();
    frontiers = Hashtbl.create 16;
    ids = Hashtbl.create 64;
    quarantine = [];
    served = Atomic.make 0;
    rejected = Atomic.make 0;
    n_quar = Atomic.make 0;
    cancelled = Atomic.make 0;
  }

let log t fmt =
  if t.cfg.verbose then Fmt.epr ("magis-serve: " ^^ fmt ^^ "@.")
  else Format.ifprintf Format.err_formatter fmt

(* Wake the IO loop; safe from workers and from a signal handler (the
   pipe is non-blocking, so a full pipe is simply an already-pending
   wakeup). *)
let wake t = try ignore (Unix.write_substring t.pipe_w "x" 0 1) with _ -> ()

let stop t =
  Atomic.set t.drain_flag true;
  wake t

(* ------------------------------------------------------------------ *)
(* Checkpoint naming                                                   *)
(* ------------------------------------------------------------------ *)

(* Request ids are client-chosen: sanitize before using one as a file
   name (no traversal), and append a hash of the original so distinct
   ids cannot collide after sanitization. *)
let ckpt_path cfg id =
  let safe =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
      id
  in
  Filename.concat cfg.ckpt_dir
    (Printf.sprintf "req-%s-%08x.ckpt" safe (Hashtbl.hash id))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Connection IO                                                       *)
(* ------------------------------------------------------------------ *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

(* Mark a connection dead: in-flight searches observe this through
   their [cancel] hook; the IO loop closes the fd once nothing is
   running against it. *)
let mark_dead t conn =
  if Atomic.exchange conn.alive false then begin
    log t "client %d gone" conn.cid;
    wake t
  end

(* Serialize and send one reply line.  Any write failure — injected
   [sock_write] fault, broken pipe, [SO_SNDTIMEO] expiry on a
   slow-loris reader — declares the connection dead; it never escapes
   to the caller, and never kills the daemon. *)
let send t conn reply =
  if Atomic.get conn.alive then begin
    let line = P.reply_to_string reply ^ "\n" in
    Mutex.lock conn.wlock;
    let ok =
      try
        Fault.hit "sock_write";
        write_all conn.fd line 0 (String.length line);
        true
      with _ -> false
    in
    Mutex.unlock conn.wlock;
    if not ok then mark_dead t conn
  end

let send_error t conn ?id kind detail =
  send t conn (P.Error { e_id = id; kind; detail })

let add_quarantine t conn reason detail =
  Mutex.lock t.qlock;
  t.quarantine <- (conn.cid, reason, detail) :: t.quarantine;
  (match t.quarantine with
  | _ :: _ :: _ when List.length t.quarantine > 100 ->
      t.quarantine <- List.filteri (fun i _ -> i < 100) t.quarantine
  | _ -> ());
  Mutex.unlock t.qlock;
  Atomic.incr t.n_quar;
  Metrics.incr m_quarantined;
  log t "quarantine client=%d %s: %s" conn.cid reason detail

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

(* Load-shedding ladder, mirroring the search's own degradation ladder:
   past half the queue capacity new admissions run with a quarter of
   the DP budget, past three quarters bound probes are disabled too;
   only a full queue rejects. *)
let shed_of_depth cfg depth =
  if depth >= cfg.queue_cap * 3 / 4 then 2
  else if depth >= cfg.queue_cap / 2 then 1
  else 0

let reject t conn ?id kind detail =
  Atomic.incr t.rejected;
  Metrics.incr m_rejected;
  send_error t conn ?id kind detail

let admit t conn (task : task) =
  Metrics.incr m_requests;
  let id = task_id task in
  Mutex.lock t.qlock;
  let depth = Queue.length t.queue in
  let verdict =
    if t.draining then `Reject (P.Shutting_down, "daemon is draining")
    else if Hashtbl.mem t.ids id then
      `Reject (P.Duplicate, Printf.sprintf "request id %S is in flight" id)
    else if Atomic.get conn.inflight >= t.cfg.per_client_limit then
      `Reject
        ( P.Overloaded,
          Printf.sprintf "per-client in-flight limit (%d) reached"
            t.cfg.per_client_limit )
    else if depth >= t.cfg.queue_cap then
      `Reject (P.Overloaded, Printf.sprintf "queue full (%d)" t.cfg.queue_cap)
    else begin
      let shed = shed_of_depth t.cfg depth in
      Hashtbl.add t.ids id ();
      Atomic.incr conn.inflight;
      Queue.add
        { jconn = conn; jtask = task; t_admit = Unix.gettimeofday ();
          jshed = shed }
        t.queue;
      Metrics.set g_queue (float_of_int (Queue.length t.queue));
      Metrics.set g_shed (float_of_int shed);
      Condition.broadcast t.qcond;
      `Admitted
    end
  in
  Mutex.unlock t.qlock;
  match verdict with
  | `Admitted -> log t "admitted %s (%s)" id (task_model task)
  | `Reject (kind, detail) -> reject t conn ~id kind detail

(* ------------------------------------------------------------------ *)
(* Request execution (worker domains)                                  *)
(* ------------------------------------------------------------------ *)

let search_config t ~shed (req : P.request) =
  let sched_states =
    if shed >= 1 then req.sched_states / 4 else req.sched_states
  in
  {
    Search.default_config with
    sched_states;
    prune_bounds = shed < 2;
    max_iterations = req.max_iterations;
    sim_cache = Some t.sim_cache;
    jobs = 1;
  }

(* One terminal outcome per executed job.  [settle] mirrors the outcome
   into the counters and frees the request id BEFORE the terminal reply
   goes out, so a client that reacts to the reply (health probe,
   resubmission of the same id) observes consistent daemon state;
   [finish] releases the in-flight slot and wakes the IO loop AFTER the
   reply, because the IO loop may close the connection's fd as soon as
   the slot count reaches zero. *)
let settle t (job : job) outcome =
  Mutex.lock t.qlock;
  Hashtbl.remove t.ids (task_id job.jtask);
  if t.draining then Condition.broadcast t.qcond;
  Mutex.unlock t.qlock;
  Atomic.decr t.running;
  Metrics.set g_inflight (float_of_int (Atomic.get t.running));
  (match outcome with
  | `Served ->
      Atomic.incr t.served;
      Metrics.incr m_served
  | `Cancelled ->
      Atomic.incr t.cancelled;
      Metrics.incr m_cancelled
  | `Rejected ->
      Atomic.incr t.rejected;
      Metrics.incr m_rejected)

let finish t (job : job) =
  Atomic.decr job.jconn.inflight;
  wake t

let run_search t (job : job) (req : P.request) (workload : Zoo.workload)
    deadline_left =
  let conn = job.jconn in
  let alive () = Atomic.get conn.alive in
  let elapsed () = Unix.gettimeofday () -. job.t_admit in
  let graph = workload.build req.scale in
  (* Baseline simulation establishes the mode limit; its fault site
     ("simulator") is retried, and a persistent failure quarantines the
     request instead of the daemon. *)
  match
    Retry.run (fun () -> Simulator.run t.cache graph (Graph.topo_order graph))
  with
  | Error (f : Retry.failure) ->
      let detail =
        Printf.sprintf "quarantined after %d attempts: %s" f.attempts
          (Printexc.to_string f.exn)
      in
      add_quarantine t conn "request" detail;
      settle t job `Rejected;
      send_error t conn ~id:req.id P.Internal detail;
      finish t job
  | Ok base -> (
      let mode =
        match req.mode with
        | P.Memory overhead ->
            Search.Min_memory { lat_limit = base.latency *. (1.0 +. overhead) }
        | P.Latency ratio ->
            Search.Min_latency
              {
                mem_limit =
                  int_of_float (float_of_int base.peak_mem *. ratio);
              }
      in
      let path = ckpt_path t.cfg req.id in
      let resumed = Checkpoint.exists path in
      if resumed then Metrics.incr m_resumed;
      let budget = Option.value deadline_left ~default:3600.0 in
      let total = req.max_iterations in
      let step =
        if req.progress_every > 0 then req.progress_every
        else t.cfg.slice_iterations
      in
      let base_cfg = search_config t ~shed:job.jshed req in
      let cfg_for target =
        {
          base_cfg with
          Search.max_iterations = target;
          time_budget = budget;
          cancel = (fun () -> not (alive ()));
          checkpoint =
            Some
              {
                Search.ckpt_path = path;
                ckpt_every = t.cfg.ckpt_every;
                ckpt_resume = true;
              };
        }
      in
      let rec slices target =
        let r = Search.run ~config:(cfg_for target) t.cache mode graph in
        let done_ = r.Search.stats.iterations in
        if r.Search.interrupted && not (alive ()) then `Cancelled
        else if r.Search.interrupted then `Interrupted r
        else if done_ >= total then `Done r
        else if done_ >= target then begin
          if req.progress_every > 0 then
            send t conn
              (P.Progress
                 {
                   p_id = req.id;
                   p_iterations = done_;
                   p_peak = r.Search.best.peak_mem;
                   p_latency = r.Search.best.latency;
                   p_elapsed = elapsed ();
                 });
          if Atomic.get t.drain_flag then `Interrupted r
          else slices (min (done_ + step) total)
        end
        else `Budget r
      in
      let result ~interrupted ~deadline_hit (r : Search.result) =
        send t conn
          (P.Result
             {
               o_id = req.id;
               o_initial_peak = r.initial.peak_mem;
               o_peak = r.best.peak_mem;
               o_latency = r.best.latency;
               o_iterations = r.stats.iterations;
               o_interrupted = interrupted;
               o_resumed = resumed;
               o_deadline_hit = deadline_hit;
               o_quarantined = r.stats.n_quarantined;
             })
      in
      match slices (min step total) with
      | exception Checkpoint.Incompatible msg ->
          settle t job `Rejected;
          send_error t conn ~id:req.id P.Incompatible msg;
          finish t job
      | exception Search.Verification_failure msg ->
          add_quarantine t conn "verification" msg;
          settle t job `Rejected;
          send_error t conn ~id:req.id P.Internal
            ("verification failure: " ^ msg);
          finish t job
      | exception e ->
          let detail = Printexc.to_string e in
          add_quarantine t conn "request" detail;
          settle t job `Rejected;
          send_error t conn ~id:req.id P.Internal detail;
          finish t job
      | `Cancelled ->
          (* checkpoint kept for resume *)
          settle t job `Cancelled;
          finish t job
      | `Interrupted r ->
          (* drain: best-so-far out, checkpoint kept for the restart *)
          settle t job `Served;
          result ~interrupted:true ~deadline_hit:false r;
          finish t job
      | `Budget r ->
          let deadline_hit =
            match deadline_left with
            | Some b -> elapsed () >= b *. 0.9
            | None -> false
          in
          if deadline_hit then Metrics.incr m_deadline;
          (try Sys.remove path with Sys_error _ -> ());
          settle t job `Served;
          result ~interrupted:false ~deadline_hit r;
          finish t job
      | `Done r ->
          (try Sys.remove path with Sys_error _ -> ());
          settle t job `Served;
          result ~interrupted:false ~deadline_hit:false r;
          finish t job)

(* ------------------------------------------------------------------ *)
(* Frontier queries                                                     *)
(* ------------------------------------------------------------------ *)

(* Frontier builds always run the widest sweep — minimize memory with
   no latency bound — so one cached frontier answers every budget.
   The configuration deliberately ignores load shedding: shed knobs are
   part of the trajectory fingerprint, and a frontier built under shed
   would silently occupy a different cache key. *)
let frontier_mode = Search.Min_memory { lat_limit = infinity }

let frontier_config (f : P.frontier_request) =
  {
    Search.default_config with
    sched_states = f.f_sched_states;
    max_iterations = f.f_max_iterations;
  }

(* Workload, hardware, graph and cache key of a query; raises
   [Invalid_argument] on an unknown model or hardware profile. *)
let frontier_spec (f : P.frontier_request) =
  let workload = Zoo.find f.f_model in
  let hw = Hardware.find f.f_hw in
  let graph = workload.Zoo.build f.f_scale in
  let key = Frontier_build.key ~config:(frontier_config f) frontier_mode ~hw graph in
  (hw, graph, key)

let frontier_answer (f : P.frontier_request) ~cache_hit fr =
  let budget = Frontier_build.budget_of_ratio fr ~ratio:f.f_budget_ratio in
  match Frontier.query fr ~budget with
  | Some (p : Frontier.point) ->
      {
        P.fr_id = f.f_id;
        fr_cache_hit = cache_hit;
        fr_points = Frontier.size fr;
        fr_budget = budget;
        fr_feasible = true;
        fr_peak = p.peak;
        fr_latency = p.latency;
      }
  | None ->
      {
        P.fr_id = f.f_id;
        fr_cache_hit = cache_hit;
        fr_points = Frontier.size fr;
        fr_budget = budget;
        fr_feasible = false;
        fr_peak = 0;
        fr_latency = 0.0;
      }

(* Memo-then-disk lookup.  A disk hit is promoted into the memo so a
   daemon restarted over a warm cache directory pays the file read
   once. *)
let frontier_cached t key =
  Mutex.lock t.flock;
  let memo = Hashtbl.find_opt t.frontiers key in
  Mutex.unlock t.flock;
  match memo with
  | Some _ as hit -> hit
  | None -> (
      match Frontier_cache.load ~dir:t.cfg.ckpt_dir ~key with
      | Some fr ->
          Mutex.lock t.flock;
          Hashtbl.replace t.frontiers key fr;
          Mutex.unlock t.flock;
          Some fr
      | None -> None)

(* Cache-miss path, on a worker domain: run one harvesting search and
   persist the swept frontier.  Different queries may name different
   hardware, so the op-cost cache is private per build (sharing the
   daemon's default-hardware simulation cache across profiles would
   poison it). *)
let run_frontier t (job : job) (f : P.frontier_request) =
  let conn = job.jconn in
  match frontier_spec f with
  | exception Invalid_argument msg ->
      settle t job `Rejected;
      send_error t conn ~id:f.f_id P.Malformed msg;
      finish t job
  | hw, graph, key -> (
      match frontier_cached t key with
      | Some fr ->
          (* another worker (or a previous run) built it since the IO
             domain missed *)
          Metrics.incr m_frontier_hits;
          settle t job `Served;
          send t conn (P.Frontier_reply (frontier_answer f ~cache_hit:true fr));
          finish t job
      | None -> (
          let config =
            {
              (frontier_config f) with
              Search.cancel = (fun () -> not (Atomic.get conn.alive));
            }
          in
          let cache = Op_cost.create hw in
          match Frontier_build.build ~config cache frontier_mode graph with
          | exception e ->
              let detail = Printexc.to_string e in
              add_quarantine t conn "frontier" detail;
              settle t job `Rejected;
              send_error t conn ~id:f.f_id P.Internal detail;
              finish t job
          | fr, result when result.Search.interrupted ->
              (* partial sweep: answer the live client best-so-far but
                 never cache it — a cached frontier must be the full
                 sweep or later budgets silently get worse answers *)
              if Atomic.get conn.alive then begin
                settle t job `Served;
                send t conn
                  (P.Frontier_reply (frontier_answer f ~cache_hit:false fr));
                finish t job
              end
              else begin
                settle t job `Cancelled;
                finish t job
              end
          | fr, _result ->
              Frontier_cache.save ~dir:t.cfg.ckpt_dir ~key fr;
              Mutex.lock t.flock;
              Hashtbl.replace t.frontiers key fr;
              Mutex.unlock t.flock;
              Metrics.incr m_frontier_built;
              log t "frontier built for %s on %s (%d points)" f.f_model f.f_hw
                (Frontier.size fr);
              settle t job `Served;
              send t conn
                (P.Frontier_reply (frontier_answer f ~cache_hit:false fr));
              finish t job))

let execute t (job : job) =
  let conn = job.jconn in
  let elapsed () = Unix.gettimeofday () -. job.t_admit in
  if not (Atomic.get conn.alive) then begin
    settle t job `Cancelled;
    finish t job
  end
  else
    match job.jtask with
    | Frontier_task f ->
        Trace.with_span ~cat:"serve"
          ~args:[ ("id", f.f_id); ("model", f.f_model) ]
          "frontier"
        @@ fun () -> run_frontier t job f
    | Opt_task req -> (
        let deadline_left =
          Option.map (fun d -> d -. elapsed ()) req.deadline_s
        in
        match deadline_left with
        | Some left when left <= 0.0 ->
            Metrics.incr m_deadline;
            settle t job `Rejected;
            send_error t conn ~id:req.id P.Deadline
              "deadline expired before dispatch";
            finish t job
        | _ -> (
            match Zoo.find req.model with
            | exception Invalid_argument msg ->
                settle t job `Rejected;
                send_error t conn ~id:req.id P.Malformed msg;
                finish t job
            | workload ->
                Trace.with_span ~cat:"serve"
                  ~args:[ ("id", req.id); ("model", req.model) ]
                  "request"
                @@ fun () -> run_search t job req workload deadline_left))

let rec worker_loop t =
  Mutex.lock t.qlock;
  let runnable () =
    (not (Queue.is_empty t.queue)) && ((not t.paused) || t.draining)
  in
  while (not (runnable ())) && not (t.draining && Queue.is_empty t.queue) do
    Condition.wait t.qcond t.qlock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.qlock (* draining: exit *)
  else begin
    let job = Queue.pop t.queue in
    (* claim the in-flight slot before releasing the lock, so drain and
       health snapshots never observe a popped-but-uncounted request;
       [settle] releases it before the terminal reply goes out *)
    Atomic.incr t.running;
    Metrics.set g_queue (float_of_int (Queue.length t.queue));
    Metrics.set g_inflight (float_of_int (Atomic.get t.running));
    Mutex.unlock t.qlock;
    (try execute t job
     with e ->
       (* belt and braces: [execute] replies on every known path, so
          this only fires on daemon bugs — reply and keep serving *)
       settle t job `Rejected;
       send_error t job.jconn ~id:(task_id job.jtask) P.Internal
         (Printexc.to_string e);
       finish t job);
    worker_loop t
  end

(* ------------------------------------------------------------------ *)
(* Command handling (IO domain)                                        *)
(* ------------------------------------------------------------------ *)

let health_snapshot t =
  Mutex.lock t.qlock;
  let depth = Queue.length t.queue in
  let status =
    if t.draining then "draining" else if t.paused then "paused" else "ok"
  in
  Mutex.unlock t.qlock;
  {
    P.status;
    queue_depth = depth;
    inflight = Atomic.get t.running;
    shed_level = shed_of_depth t.cfg depth;
    served = Atomic.get t.served;
    rejected = Atomic.get t.rejected;
    quarantined = Atomic.get t.n_quar;
    cache_hit_rate = Sim_cache.hit_rate t.sim_cache;
  }

let set_paused t paused =
  Mutex.lock t.qlock;
  t.paused <- paused;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qlock

(* Returns [true] when the line requested a drain. *)
let handle_line t conn line =
  match P.command_of_string line with
  | exception Json.Parse_error msg ->
      add_quarantine t conn "malformed" msg;
      send_error t conn P.Malformed msg;
      mark_dead t conn;
      false
  | exception P.Invalid msg ->
      add_quarantine t conn "malformed" msg;
      send_error t conn P.Malformed msg;
      false
  | P.Optimize req ->
      admit t conn (Opt_task req);
      false
  | P.Frontier f -> (
      (* cache hits are answered right here on the IO domain — a hit is
         one O(log n) lookup, so it never competes with searches for a
         worker slot or a queue position *)
      match frontier_spec f with
      | exception Invalid_argument msg ->
          reject t conn ~id:f.f_id P.Malformed msg;
          false
      | _, _, key -> (
          match frontier_cached t key with
          | Some fr ->
              Metrics.incr m_frontier_hits;
              Atomic.incr t.served;
              Metrics.incr m_served;
              send t conn
                (P.Frontier_reply (frontier_answer f ~cache_hit:true fr));
              false
          | None ->
              admit t conn (Frontier_task f);
              false))
  | P.Health ->
      send t conn (P.Health_reply (health_snapshot t));
      false
  | P.Metrics ->
      send t conn (P.Metrics_reply (Metrics.to_text ()));
      false
  | P.Pause ->
      set_paused t true;
      send t conn (P.Ack "pause");
      false
  | P.Resume ->
      set_paused t false;
      send t conn (P.Ack "resume");
      false
  | P.Shutdown ->
      send t conn (P.Ack "shutdown");
      true

(* Split the read buffer into complete lines; a buffer exceeding the
   request-line limit without a newline is an attack or a bug — reply,
   quarantine, drop the client. *)
let drain_lines t conn =
  let data = Buffer.contents conn.rbuf in
  Buffer.clear conn.rbuf;
  let n = String.length data in
  let drain = ref false in
  let rec go start =
    match String.index_from_opt data start '\n' with
    | Some nl ->
        let line = String.sub data start (nl - start) in
        if String.length line > 0 then
          if handle_line t conn line then drain := true;
        go (nl + 1)
    | None ->
        let rest = n - start in
        if rest > P.max_request_line then begin
          add_quarantine t conn "oversized"
            (Printf.sprintf "request line exceeds %d bytes" P.max_request_line);
          send_error t conn P.Oversized
            (Printf.sprintf "line longer than %d bytes" P.max_request_line);
          mark_dead t conn
        end
        else Buffer.add_substring conn.rbuf data start rest
  in
  go 0;
  !drain

(* One readable connection: a torn read (injected [sock_read] fault or
   a real socket error) quarantines and drops the client; EOF marks it
   dead so in-flight work cancels at the next expansion boundary. *)
let service_read t conn scratch =
  match
    (Fault.hit "sock_read";
     Unix.read conn.fd scratch 0 (Bytes.length scratch))
  with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  | exception e ->
      add_quarantine t conn "sock_read" (Printexc.to_string e);
      mark_dead t conn;
      false
  | 0 ->
      mark_dead t conn;
      false
  | n ->
      Buffer.add_subbytes conn.rbuf scratch 0 n;
      drain_lines t conn

(* ------------------------------------------------------------------ *)
(* Listener setup and the event loop                                   *)
(* ------------------------------------------------------------------ *)

let make_listener (addr : P.addr) =
  match addr with
  | P.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      if Sys.file_exists path then (try Unix.unlink path with _ -> ());
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      (fd, Some path)
  | P.Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      (fd, None)

let run t =
  let cfg = t.cfg in
  mkdir_p cfg.ckpt_dir;
  let metrics_were_on = Metrics.enabled () in
  Metrics.set_enabled true;
  let prev_pipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let unregister = Interrupt.on_signal (fun _ -> stop t) in
  let listen_fd, sock_path = make_listener cfg.addr in
  let workers =
    Array.init cfg.workers (fun _ -> Domain.spawn (fun () -> worker_loop t))
  in
  let conns = ref [] in
  let next_cid = ref 0 in
  let scratch = Bytes.create 8192 in
  let drain_requested = ref false in
  let apply_drain () =
    if not !drain_requested then begin
      drain_requested := true;
      log t "draining";
      Mutex.lock t.qlock;
      t.draining <- true;
      Condition.broadcast t.qcond;
      Mutex.unlock t.qlock
    end
  in
  let accept_all () =
    let rec go () =
      match Unix.accept ~cloexec:true listen_fd with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception _ -> ()
      | fd, _ ->
          (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO cfg.write_timeout
           with _ -> ());
          incr next_cid;
          Metrics.incr m_conns;
          conns :=
            {
              cid = !next_cid;
              fd;
              rbuf = Buffer.create 256;
              wlock = Mutex.create ();
              alive = Atomic.make true;
              inflight = Atomic.make 0;
            }
            :: !conns;
          log t "client %d connected" !next_cid;
          go ()
    in
    go ()
  in
  let finished = ref false in
  while not !finished do
    if Atomic.get t.drain_flag then apply_drain ();
    (* reap connections nothing references anymore *)
    conns :=
      List.filter
        (fun c ->
          if (not (Atomic.get c.alive)) && Atomic.get c.inflight = 0 then begin
            (try Unix.close c.fd with _ -> ());
            false
          end
          else true)
        !conns;
    let live = List.filter (fun c -> Atomic.get c.alive) !conns in
    let rset =
      t.pipe_r
      :: (if !drain_requested then [] else [ listen_fd ])
      @ List.map (fun c -> c.fd) live
    in
    (match Unix.select rset [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        if List.mem t.pipe_r readable then begin
          try ignore (Unix.read t.pipe_r scratch 0 (Bytes.length scratch))
          with _ -> ()
        end;
        if List.mem listen_fd readable && not !drain_requested then
          accept_all ();
        List.iter
          (fun c ->
            if List.mem c.fd readable then
              if service_read t c scratch then Atomic.set t.drain_flag true)
          live);
    if !drain_requested then begin
      Mutex.lock t.qlock;
      let idle = Queue.is_empty t.queue && Atomic.get t.running = 0 in
      Mutex.unlock t.qlock;
      if idle then finished := true
    end
  done;
  Array.iter Domain.join workers;
  List.iter (fun c -> try Unix.close c.fd with _ -> ()) !conns;
  (try Unix.close listen_fd with _ -> ());
  (match sock_path with
  | Some p -> ( try Unix.unlink p with _ -> ())
  | None -> ());
  unregister ();
  (match prev_pipe with
  | Some b -> ( try Sys.set_signal Sys.sigpipe b with _ -> ())
  | None -> ());
  Metrics.set_enabled metrics_were_on;
  log t "drained, exiting"
