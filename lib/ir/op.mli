(** DNN operator set.

    Each operator kind carries output-shape inference ({!infer}), analytic
    work estimates ({!flops}, {!bytes_moved}) and *dimension semantics*
    ({!links}, {!reduce_arity}, {!unsplittable_out_dims}, {!reduce_merge}):
    which input dimensions correspond to which output dimensions or reduce
    axes.  The dimension graph (§4.1) and the fission transformation
    (§4.2) are built entirely from these.

    Sliding-window axes (conv/pool H and W) produce no dimension links,
    matching the paper's footnote 2. *)

type input_kind =
  | Placeholder  (** network input (images, token ids) *)
  | Weight  (** trainable parameter; resident for the whole run *)
  | Label  (** training target or gradient seed *)

type unary_kind =
  | Relu
  | Gelu
  | Tanh
  | Sigmoid
  | Exp
  | Sqrt
  | Neg
  | Identity
  | Dropout
  | Scale of float

type binary_kind = Add | Sub | Mul | Div | Max
type reduce_kind = R_sum | R_mean | R_max
type conv_attrs = { stride : int; padding : int }
type pool_kind = P_max | P_avg
type pool_attrs = { p_kind : pool_kind; kernel : int; p_stride : int }

type kind =
  | Input of input_kind
  | Matmul of { trans_a : bool; trans_b : bool }
  | Dense of { trans_w : bool }
      (** [x[...,k] * w[k,n] -> y[...,n]]: contraction over the last input
          dim only, so leading (batch/sequence) dims stay linked for
          fission *)
  | Dense_bwd_weight
      (** [x[...,k], dy[...,n] -> dw[k,n]]; leading dims are reduce axes —
          batch fission yields partial gradients summed together (Fig. 5) *)
  | Batch_matmul of { trans_a : bool; trans_b : bool }
  | Conv2d of conv_attrs
  | Conv2d_bwd_data of conv_attrs
      (** 2 operands: transposed convolution; 3 operands: data gradient
          with the forward input as a shape carrier *)
  | Conv2d_bwd_weight of conv_attrs
  | Pool2d of pool_attrs
  | Pool2d_bwd of pool_attrs
  | Unary of unary_kind
  | Binary of binary_kind
  | Bias_add of int
  | Softmax of int
  | Softmax_bwd of int
  | Layer_norm of int
  | Layer_norm_bwd of int
  | Batch_norm  (** frozen affine BN (see DESIGN.md) *)
  | Reduce of reduce_kind * int list
  | Broadcast of { dims : int array; axes : int list }
  | Transpose of int array
  | Reshape of int array
  | Slice of { axis : int; lo : int; hi : int }
  | Concat of int
  | Embedding
  | Embedding_bwd
  | Store  (** swap-out to host storage (copy stream) *)
  | Load  (** swap-in from host storage (copy stream) *)

(** Dimension correspondence of one input dimension. *)
type dim_link =
  | To_out of int  (** matches this output dimension *)
  | To_reduce of int  (** feeds this reduce axis *)

val input_kind_name : input_kind -> string
val name : kind -> string

(** Structural fingerprint (for WL hashing). *)
val fingerprint : kind -> int64

val is_input : kind -> bool
val is_weight : kind -> bool
val is_swap : kind -> bool

(** Zero-cost view operators (transpose/reshape/slice/identity). *)
val is_view : kind -> bool

(** Output shape from input shapes; [Error] on malformed use. *)
val infer : kind -> Shape.t array -> (Shape.t, string) result

(** Dimension domain over which {!Abstract} re-interprets shape
    inference.  [equal]/[geq]/[div_exact] are *provability* predicates: a
    [false]/[None] answer means "cannot prove", not "provably false" —
    the abstract interpreter is sound but partial. *)
module type DIM_DOMAIN = sig
  type dim
  type dt

  val const : int -> dim
  val add : dim -> dim -> dim
  val sub : dim -> dim -> dim
  val mul : dim -> dim -> dim

  (** Provable equality of two extents. *)
  val equal : dim -> dim -> bool

  (** Provable [a >= b]. *)
  val geq : dim -> dim -> bool

  (** Provable exact division by a positive constant. *)
  val div_exact : dim -> int -> dim option

  val to_const : dim -> int option

  (** Provable equality of two element types. *)
  val dt_equal : dt -> dt -> bool
end

(** Shape inference re-interpreted over an abstract dimension domain:
    instantiated with a symbolic domain (Magis_analysis.Symshape) it
    proves inference facts for *all* extents at once; instantiated with
    {!Int_dims} it coincides with {!infer} wherever {!infer} succeeds. *)
module Abstract (D : DIM_DOMAIN) : sig
  type shape = D.dim array * D.dt

  val infer : kind -> shape array -> (shape, string) result
end

(** Concrete [int] instantiation of {!DIM_DOMAIN} (division is
    provable-exact only); lets tests assert {!Abstract} agrees with
    {!infer}. *)
module Int_dims : sig
  include DIM_DOMAIN with type dim = int and type dt = Shape.dtype
end

(** Floating-point work of one execution. *)
val flops : kind -> Shape.t array -> Shape.t -> float

(** Device-memory traffic of one execution. *)
val bytes_moved : kind -> Shape.t array -> Shape.t -> float

(** Number of reduce axes ([r_v] in the paper). *)
val reduce_arity : kind -> Shape.t array -> int

(** [(slot, input_dim, link)] triples; unlisted dimensions are opaque
    (windows, gather indices). *)
val links : kind -> Shape.t array -> Shape.t -> (int * int * dim_link) list

(** Output dimensions along which the operator must not be sliced. *)
val unsplittable_out_dims : kind -> Shape.t array -> Shape.t -> int list

(** How partial outputs combine when splitting along a reduce axis. *)
val reduce_merge : kind -> [ `Sum | `Max | `No_merge ]
