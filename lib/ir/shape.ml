(** Tensor shapes and element types.

    A shape is a non-empty list of positive dimension extents plus a data
    type.  Sizes are reported in bytes; all memory accounting in the cost
    layer is derived from {!size_bytes}. *)

type dtype = F32 | TF32 | BF16 | F16 | I64 | I32 | Bool

type t = { dims : int array; dtype : dtype }

let dtype_bytes = function
  | F32 | TF32 -> 4
  | BF16 | F16 -> 2
  | I64 -> 8
  | I32 -> 4
  | Bool -> 1

let dtype_name = function
  | F32 -> "f32"
  | TF32 -> "tf32"
  | BF16 -> "bf16"
  | F16 -> "f16"
  | I64 -> "i64"
  | I32 -> "i32"
  | Bool -> "bool"

let create ?(dtype = F32) dims =
  let dims = Array.of_list dims in
  if Array.length dims = 0 then invalid_arg "Shape.create: empty shape";
  Array.iter
    (fun d -> if d <= 0 then invalid_arg "Shape.create: non-positive dim")
    dims;
  { dims; dtype }

let of_array ?(dtype = F32) dims = create ~dtype (Array.to_list dims)

let rank t = Array.length t.dims
let dim t i = t.dims.(i)
let dims t = Array.copy t.dims
let dtype t = t.dtype

let numel t = Array.fold_left ( * ) 1 t.dims
let size_bytes t = numel t * dtype_bytes t.dtype

let equal a b = a.dtype = b.dtype && a.dims = b.dims
let equal_dims a b = a.dims = b.dims

(** [with_dim t i d] is [t] with dimension [i] replaced by extent [d]. *)
let with_dim t i d =
  if d <= 0 then invalid_arg "Shape.with_dim: non-positive dim";
  let dims = Array.copy t.dims in
  dims.(i) <- d;
  { t with dims }

(** [split_dim t i n] divides dimension [i] by [n]; fails unless [n] divides
    the extent. Used to derive the shape of one fission part. *)
let split_dim t i n =
  let d = t.dims.(i) in
  if n <= 0 || d mod n <> 0 then
    invalid_arg
      (Printf.sprintf "Shape.split_dim: %d does not divide dim %d (=%d)" n i d);
  with_dim t i (d / n)

let concat_dim t i extra = with_dim t i (t.dims.(i) + extra)

(** [factorize n] is the prime factorization of [n] in ascending order
    (with multiplicity); [factorize 1 = []].  The F-Tree's candidate
    fission numbers and the symbolic shape domain's constant-divisibility
    proofs are built from it. *)
let factorize n =
  if n <= 0 then invalid_arg "Shape.factorize: non-positive extent";
  let rec strip n p acc =
    if n mod p = 0 then strip (n / p) p (p :: acc) else (n, acc)
  in
  let rec go n p acc =
    if n = 1 then acc
    else if p * p > n then n :: acc
    else
      let n, acc = strip n p acc in
      go n (if p = 2 then 3 else p + 2) acc
  in
  List.rev (go n 2 [])

let pp ppf t =
  Fmt.pf ppf "%s[%a]" (dtype_name t.dtype)
    Fmt.(array ~sep:(any ",") int)
    t.dims

let to_string t = Fmt.str "%a" pp t

let hash t =
  let h = Util.hash_string (dtype_name t.dtype) in
  Util.hash_combine h (Util.hash_int_list (Array.to_list t.dims))
