(** Computation graphs.

    A graph is a DAG of operator nodes.  Each node has an ordered array of
    input node ids (the operand slots) and an inferred output shape.  The
    representation is persistent (balanced maps), so the optimizer can hold
    thousands of candidate graphs cheaply — mutations share structure.

    The operations mirror Table 1 of the paper: [pre]/[suc],
    [anc]/[des], [inps_of]/[outs_of] for node subsets, induced sub-graphs,
    topological orders, weak connectivity and convexity tests. *)

module Int_map = Util.Int_map
module Int_set = Util.Int_set

type node = {
  id : int;
  op : Op.kind;
  shape : Shape.t;
  label : string;  (** human-readable name, for debugging/printing *)
  inputs : int array;  (** operand slots, in order *)
}

type t = {
  nodes : node Int_map.t;
  succs : Int_set.t Int_map.t;  (** consumers of each node *)
  next_id : int;
}

let empty = { nodes = Int_map.empty; succs = Int_map.empty; next_id = 0 }

let n_nodes g = Int_map.cardinal g.nodes
let mem g id = Int_map.mem id g.nodes

let node g id =
  match Int_map.find_opt id g.nodes with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Graph.node: unknown id %d" id)

let node_opt g id = Int_map.find_opt id g.nodes
let shape g id = (node g id).shape
let op g id = (node g id).op
let size_bytes g id = Shape.size_bytes (node g id).shape

let nodes g = Int_map.fold (fun _ n acc -> n :: acc) g.nodes [] |> List.rev
let node_ids g = Int_map.fold (fun id _ acc -> id :: acc) g.nodes [] |> List.rev
let fold f g acc = Int_map.fold (fun _ n acc -> f n acc) g.nodes acc
let iter f g = Int_map.iter (fun _ n -> f n) g.nodes

let succ_set g id =
  match Int_map.find_opt id g.succs with Some s -> s | None -> Int_set.empty

let suc g id = Int_set.elements (succ_set g id)

let pre g id =
  let n = node g id in
  Array.to_list n.inputs |> List.sort_uniq compare

let in_degree g id = Array.length (node g id).inputs
let out_degree g id = Int_set.cardinal (succ_set g id)

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let add_succ succs src dst =
  let s =
    match Int_map.find_opt src succs with
    | Some s -> s
    | None -> Int_set.empty
  in
  Int_map.add src (Int_set.add dst s) succs

let remove_succ succs src dst =
  match Int_map.find_opt src succs with
  | None -> succs
  | Some s ->
      let s = Int_set.remove dst s in
      if Int_set.is_empty s then Int_map.remove src succs
      else Int_map.add src s succs

(** [add_input g kind shape] adds a graph input (placeholder / weight /
    label) and returns the extended graph and the new node id. *)
let add_input ?(label = "") g kind shape =
  let id = g.next_id in
  let n = { id; op = Op.Input kind; shape; label; inputs = [||] } in
  ({ g with nodes = Int_map.add id n g.nodes; next_id = id + 1 }, id)

(** [add g op inputs] adds an operator node; the output shape is inferred
    from the input shapes.  Raises [Invalid_argument] on malformed use. *)
let add ?(label = "") g op inputs =
  let ins = Array.of_list inputs in
  let describe () =
    if label = "" then Op.name op
    else Printf.sprintf "%s(%s)" (Op.name op) label
  in
  Array.iter
    (fun i ->
      if not (mem g i) then
        invalid_arg
          (Printf.sprintf "Graph.add: %s: unknown input id %d" (describe ()) i))
    ins;
  let in_shapes = Array.map (fun i -> (node g i).shape) ins in
  match Op.infer op in_shapes with
  | Error msg ->
      invalid_arg (Printf.sprintf "Graph.add: %s: %s" (describe ()) msg)
  | Ok shape ->
      let id = g.next_id in
      let n = { id; op; shape; label; inputs = ins } in
      let succs = Array.fold_left (fun s src -> add_succ s src id) g.succs ins in
      ({ nodes = Int_map.add id n g.nodes; succs; next_id = id + 1 }, id)

(** Remove a node with no consumers. *)
let remove g id =
  let n = node g id in
  let consumers = succ_set g id in
  if not (Int_set.is_empty consumers) then
    invalid_arg
      (Printf.sprintf
         "Graph.remove: node %d:%s%s still has consumers [%s]" id
         (Op.name n.op)
         (if n.label = "" then "" else "(" ^ n.label ^ ")")
         (String.concat ","
            (List.map string_of_int (Int_set.elements consumers))));
  let succs = Array.fold_left (fun s src -> remove_succ s src id) g.succs n.inputs in
  { g with nodes = Int_map.remove id g.nodes; succs = Int_map.remove id succs }

(** [redirect g ~from_ ~to_] rewires every consumer of [from_] to consume
    [to_] instead.  Shapes must match. *)
let redirect g ~from_ ~to_ =
  if not (Shape.equal_dims (shape g from_) (shape g to_)) then
    invalid_arg "Graph.redirect: shape mismatch";
  let consumers = succ_set g from_ in
  Int_set.fold
    (fun c g ->
      let n = node g c in
      let inputs =
        Array.map (fun i -> if i = from_ then to_ else i) n.inputs
      in
      let nodes = Int_map.add c { n with inputs } g.nodes in
      let succs = remove_succ g.succs from_ c in
      let succs = add_succ succs to_ c in
      { g with nodes; succs })
    consumers g

(** Replace one operand slot of [node_id]: the occurrence(s) of [old_src]
    become [new_src]. *)
let replace_input g ~node_id ~old_src ~new_src =
  let n = node g node_id in
  if not (Array.exists (( = ) old_src) n.inputs) then
    invalid_arg "Graph.replace_input: not an input";
  let inputs =
    Array.map (fun i -> if i = old_src then new_src else i) n.inputs
  in
  let nodes = Int_map.add node_id { n with inputs } g.nodes in
  let succs = remove_succ g.succs old_src node_id in
  let succs = add_succ succs new_src node_id in
  { g with nodes; succs }

(** [prune_dead ~keep g] removes consumer-less operator nodes except graph
    inputs and the protected [keep] set (pass the intended graph outputs —
    losses, gradients — or they would be swept away). *)
let prune_dead ~keep g =
  let rec loop g =
    let dead =
      Int_map.fold
        (fun id n acc ->
          if
            Int_set.is_empty (succ_set g id)
            && (not (Op.is_input n.op))
            && not (Int_set.mem id keep)
          then id :: acc
          else acc)
        g.nodes []
    in
    match dead with
    | [] -> g
    | _ -> loop (List.fold_left (fun g id -> remove g id) g dead)
  in
  loop g

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

(** Graph inputs: nodes with no operands. *)
let inputs g =
  Int_map.fold
    (fun id n acc -> if Array.length n.inputs = 0 then id :: acc else acc)
    g.nodes []
  |> List.rev

(** Graph outputs: nodes with no consumers. *)
let outputs g =
  Int_map.fold
    (fun id _ acc -> if Int_set.is_empty (succ_set g id) then id :: acc else acc)
    g.nodes []
  |> List.rev

let reachable step start =
  let rec go visited frontier =
    match frontier with
    | [] -> visited
    | v :: rest ->
        let nexts = step v in
        let visited, frontier =
          List.fold_left
            (fun (vis, fr) u ->
              if Int_set.mem u vis then (vis, fr) else (Int_set.add u vis, u :: fr))
            (visited, rest) nexts
        in
        go visited frontier
  in
  go (Int_set.of_list start) start

(** Strict ancestors of [id] (everything it transitively depends on). *)
let anc g id = reachable (pre g) (pre g id)

(** Strict descendants of [id]. *)
let des g id = reachable (suc g) (suc g id)

(** Ancestors of a set (union of strict ancestors, minus the set). *)
let anc_of_set g set =
  let start = Int_set.fold (fun v acc -> pre g v @ acc) set [] in
  Int_set.diff (reachable (pre g) start) set

let des_of_set g set =
  let start = Int_set.fold (fun v acc -> suc g v @ acc) set [] in
  Int_set.diff (reachable (suc g) start) set

(** [G.inps(S)]: nodes outside [S] consumed by members of [S]. *)
let inps_of g set =
  Int_set.fold
    (fun v acc ->
      List.fold_left
        (fun acc p -> if Int_set.mem p set then acc else Int_set.add p acc)
        acc (pre g v))
    set Int_set.empty

(** [G.outs(S)]: members of [S] whose value is consumed outside [S] (or is a
    graph output). *)
let outs_of g set =
  Int_set.filter
    (fun v ->
      let succs = succ_set g v in
      Int_set.is_empty succs
      || Int_set.exists (fun s -> not (Int_set.mem s set)) succs)
    set

(** Weak connectivity of the sub-graph induced by [set]. *)
let is_weakly_connected g set =
  match Int_set.choose_opt set with
  | None -> true
  | Some seed ->
      let neighbors v =
        List.filter (fun u -> Int_set.mem u set) (pre g v @ suc g v)
      in
      let visited = reachable neighbors [ seed ] in
      Int_set.subset set visited

(** Convexity: no path from an output of [S] back into [S] through outside
    nodes ([G.inps(S) ∩ ⋃_{v∈outs(S)} des(v) = ∅]). *)
let is_convex g set =
  let outs = outs_of g set in
  let desc = des_of_set g outs in
  let inps = inps_of g set in
  Int_set.is_empty (Int_set.inter inps desc)

(** Weakly-connected components of the sub-graph induced by [set]. *)
let components_of g set =
  let rec all acc remaining =
    match Int_set.choose_opt remaining with
    | None -> List.rev acc
    | Some seed ->
        let neighbors v =
          List.filter (fun u -> Int_set.mem u remaining) (pre g v @ suc g v)
        in
        let comp = reachable neighbors [ seed ] in
        let comp = Int_set.add seed comp in
        all (comp :: acc) (Int_set.diff remaining comp)
  in
  all [] set

(* ------------------------------------------------------------------ *)
(* Topological order                                                  *)
(* ------------------------------------------------------------------ *)

(** Deterministic Kahn topological order (smallest ready id first). *)
let topo_order g =
  let indeg = Hashtbl.create (n_nodes g) in
  iter
    (fun n ->
      Hashtbl.replace indeg n.id
        (List.length (List.filter (fun p -> mem g p) (pre g n.id))))
    g;
  let module Pq = Set.Make (Int) in
  let ready =
    Hashtbl.fold (fun id d acc -> if d = 0 then Pq.add id acc else acc) indeg Pq.empty
  in
  let rec go ready acc =
    match Pq.min_elt_opt ready with
    | None -> List.rev acc
    | Some v ->
        let ready = Pq.remove v ready in
        let ready =
          List.fold_left
            (fun r s ->
              let d = Hashtbl.find indeg s - 1 in
              Hashtbl.replace indeg s d;
              if d = 0 then Pq.add s r else r)
            ready (suc g v)
        in
        go ready (v :: acc)
  in
  let order = go ready [] in
  if List.length order <> n_nodes g then
    invalid_arg "Graph.topo_order: graph has a cycle";
  order

(** Check that [order] is a permutation of the node set respecting all data
    dependencies. *)
let is_valid_order g order =
  let pos = Hashtbl.create (List.length order) in
  List.iteri (fun i v -> Hashtbl.replace pos v i) order;
  Hashtbl.length pos = n_nodes g
  && List.for_all (fun v -> mem g v) order
  && List.for_all
       (fun v ->
         List.for_all
           (fun p -> Hashtbl.find pos p < Hashtbl.find pos v)
           (pre g v))
       order

(** DFS-based order that visits operands right before their first consumer;
    corresponds to the eager execution order of a define-by-run framework. *)
let program_order g = topo_order g

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let pp_node g ppf id =
  let n = node g id in
  Fmt.pf ppf "%d:%s%s %a <- [%a]" n.id (Op.name n.op)
    (if n.label = "" then "" else "(" ^ n.label ^ ")")
    Shape.pp n.shape
    Fmt.(array ~sep:(any ",") int)
    n.inputs

let pp ppf g =
  List.iter (fun id -> Fmt.pf ppf "%a@." (pp_node g) id) (topo_order g)

let to_string g = Fmt.str "%a" pp g

(** Total bytes of all weight tensors (always-resident memory). *)
let weight_bytes g =
  fold
    (fun n acc -> if Op.is_weight n.op then acc + Shape.size_bytes n.shape else acc)
    g 0
