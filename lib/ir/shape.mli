(** Tensor shapes and element types.

    A shape is a non-empty vector of positive dimension extents plus a
    data type; all memory accounting in the cost layer derives from
    {!size_bytes}. *)

type dtype = F32 | TF32 | BF16 | F16 | I64 | I32 | Bool

type t

val dtype_bytes : dtype -> int
val dtype_name : dtype -> string

(** [create ?dtype dims] builds a shape.  Raises [Invalid_argument] on an
    empty dimension list or non-positive extents. *)
val create : ?dtype:dtype -> int list -> t

val of_array : ?dtype:dtype -> int array -> t

val rank : t -> int
val dim : t -> int -> int
val dims : t -> int array
val dtype : t -> dtype
val numel : t -> int
val size_bytes : t -> int

val equal : t -> t -> bool

(** Structural equality of dimensions, ignoring the dtype. *)
val equal_dims : t -> t -> bool

(** [with_dim t i d] replaces dimension [i] by extent [d]. *)
val with_dim : t -> int -> int -> t

(** [split_dim t i n] divides dimension [i] by [n]; raises unless [n]
    divides the extent.  Derives the per-part shape of a fission. *)
val split_dim : t -> int -> int -> t

(** [concat_dim t i extra] grows dimension [i] by [extra]. *)
val concat_dim : t -> int -> int -> t

(** Prime factorization of a positive extent, ascending, with
    multiplicity ([factorize 1 = []]; raises [Invalid_argument] on
    non-positive input).  Source of candidate fission numbers and of
    constant-divisibility facts in the symbolic shape domain. *)
val factorize : int -> int list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val hash : t -> int64
