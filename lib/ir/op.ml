(** DNN operator set.

    Each operator kind carries enough semantics for the rest of the system:
    - output-shape inference ({!infer}),
    - an analytic work estimate ({!flops}, used by the cost model),
    - *dimension semantics* ({!links}, {!reduce_arity},
      {!unsplittable_out_dims}): which input dimensions correspond to which
      output dimensions or reduce axes.  The dimension graph (D-Graph, §4.1
      of the paper) and the fission transformation (§4.2) are built entirely
      from these.

    Sliding-window axes (the H/W axes of convolutions and poolings) produce
    no dimension links, matching the paper's footnote 2 which excludes
    spatial axes with sliding windows from the D-Graph. *)

type input_kind =
  | Placeholder  (** network input (e.g. images, token ids) *)
  | Weight  (** trainable parameter; resident for the whole run *)
  | Label  (** training target *)

type unary_kind =
  | Relu
  | Gelu
  | Tanh
  | Sigmoid
  | Exp
  | Sqrt
  | Neg
  | Identity
  | Dropout
  | Scale of float  (** multiply by a compile-time constant *)

type binary_kind = Add | Sub | Mul | Div | Max

type reduce_kind = R_sum | R_mean | R_max

type conv_attrs = { stride : int; padding : int }

type pool_kind = P_max | P_avg

type pool_attrs = { p_kind : pool_kind; kernel : int; p_stride : int }

type kind =
  | Input of input_kind
  | Matmul of { trans_a : bool; trans_b : bool }
      (** [a[m,k] x b[k,n] -> c[m,n]]; flags transpose the operand view *)
  | Dense of { trans_w : bool }
      (** [x[...,k] * w[k,n] -> y[...,n]]: contraction over the last input
          dim only, so leading (batch/sequence) dims stay linked for
          fission.  [trans_w] views the weight as [n,k]. *)
  | Dense_bwd_weight
      (** [x[...,k], dy[...,n] -> dw[k,n]]; the leading dims are reduce
          axes — splitting the batch yields partial weight gradients that
          are summed (the paper's Fig. 5 pattern) *)
  | Batch_matmul of { trans_a : bool; trans_b : bool }
      (** leading batch dims broadcast-free: [[b..,m,k] x [b..,k,n]] *)
  | Conv2d of conv_attrs  (** x[N,C,H,W], w[K,C,R,S] -> [N,K,H',W'] *)
  | Conv2d_bwd_data of conv_attrs  (** dy[N,K,H',W'], w -> dx[N,C,H,W] *)
  | Conv2d_bwd_weight of conv_attrs  (** dy, x -> dw[K,C,R,S] *)
  | Pool2d of pool_attrs  (** x[N,C,H,W] -> [N,C,H',W'] *)
  | Pool2d_bwd of pool_attrs  (** dy, x -> dx *)
  | Unary of unary_kind
  | Binary of binary_kind  (** elementwise, equal shapes *)
  | Bias_add of int  (** x + broadcast b along the given axis *)
  | Softmax of int  (** normalized axis *)
  | Softmax_bwd of int  (** dy, y -> dx *)
  | Layer_norm of int  (** x, gamma, beta; normalize dims [axis..] *)
  | Layer_norm_bwd of int  (** dy, x, gamma -> dx *)
  | Batch_norm  (** frozen affine BN: x[N,C,H,W], gamma[C], beta[C] *)
  | Reduce of reduce_kind * int list  (** axes removed (no keepdims) *)
  | Broadcast of { dims : int array; axes : int list }
      (** inverse of {!Reduce}: replicate the input along the output [axes]
          (sorted, 0-based in the output) to reach shape [dims] *)
  | Transpose of int array  (** out dim i = in dim perm.(i) *)
  | Reshape of int array  (** target dims *)
  | Slice of { axis : int; lo : int; hi : int }
  | Concat of int  (** n>=2 inputs, concatenated along axis *)
  | Embedding  (** table[V,C], ids[N,T] -> [N,T,C] *)
  | Embedding_bwd  (** dy[N,T,C], ids[N,T] -> dtable[V,C] *)
  | Store  (** swap-out: output resides in external (host) storage *)
  | Load  (** swap-in: output restored to device memory *)

type dim_link =
  | To_out of int  (** input dim corresponds to this output dim *)
  | To_reduce of int  (** input dim feeds this reduce axis *)

(* ------------------------------------------------------------------ *)
(* Names and fingerprints                                             *)
(* ------------------------------------------------------------------ *)

let input_kind_name = function
  | Placeholder -> "placeholder"
  | Weight -> "weight"
  | Label -> "label"

let unary_name = function
  | Relu -> "relu"
  | Gelu -> "gelu"
  | Tanh -> "tanh"
  | Sigmoid -> "sigmoid"
  | Exp -> "exp"
  | Sqrt -> "sqrt"
  | Neg -> "neg"
  | Identity -> "identity"
  | Dropout -> "dropout"
  | Scale f -> Printf.sprintf "scale(%g)" f

let binary_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Max -> "max"

let reduce_name = function R_sum -> "sum" | R_mean -> "mean" | R_max -> "max"

let name = function
  | Input k -> input_kind_name k
  | Matmul { trans_a; trans_b } ->
      Printf.sprintf "matmul%s%s"
        (if trans_a then "_ta" else "")
        (if trans_b then "_tb" else "")
  | Batch_matmul { trans_a; trans_b } ->
      Printf.sprintf "bmm%s%s"
        (if trans_a then "_ta" else "")
        (if trans_b then "_tb" else "")
  | Dense { trans_w } -> if trans_w then "dense_tw" else "dense"
  | Dense_bwd_weight -> "dense_bwd_weight"
  | Conv2d a -> Printf.sprintf "conv2d(s%d,p%d)" a.stride a.padding
  | Conv2d_bwd_data a -> Printf.sprintf "conv2d_bwd_data(s%d,p%d)" a.stride a.padding
  | Conv2d_bwd_weight a ->
      Printf.sprintf "conv2d_bwd_weight(s%d,p%d)" a.stride a.padding
  | Pool2d a ->
      Printf.sprintf "%spool2d(k%d,s%d)"
        (match a.p_kind with P_max -> "max" | P_avg -> "avg")
        a.kernel a.p_stride
  | Pool2d_bwd a -> Printf.sprintf "pool2d_bwd(k%d,s%d)" a.kernel a.p_stride
  | Unary k -> unary_name k
  | Binary k -> binary_name k
  | Bias_add axis -> Printf.sprintf "bias_add(%d)" axis
  | Softmax axis -> Printf.sprintf "softmax(%d)" axis
  | Softmax_bwd axis -> Printf.sprintf "softmax_bwd(%d)" axis
  | Layer_norm axis -> Printf.sprintf "layer_norm(%d)" axis
  | Layer_norm_bwd axis -> Printf.sprintf "layer_norm_bwd(%d)" axis
  | Batch_norm -> "batch_norm"
  | Reduce (k, axes) ->
      Printf.sprintf "reduce_%s(%s)" (reduce_name k)
        (String.concat "," (List.map string_of_int axes))
  | Broadcast { axes; _ } ->
      Printf.sprintf "broadcast(%s)"
        (String.concat "," (List.map string_of_int axes))
  | Transpose perm ->
      Printf.sprintf "transpose(%s)"
        (String.concat "," (Array.to_list (Array.map string_of_int perm)))
  | Reshape dims ->
      Printf.sprintf "reshape(%s)"
        (String.concat "," (Array.to_list (Array.map string_of_int dims)))
  | Slice { axis; lo; hi } -> Printf.sprintf "slice(%d,%d:%d)" axis lo hi
  | Concat axis -> Printf.sprintf "concat(%d)" axis
  | Embedding -> "embedding"
  | Embedding_bwd -> "embedding_bwd"
  | Store -> "store"
  | Load -> "load"

(** Structural fingerprint, used by the Weisfeiler-Lehman graph hash. *)
let fingerprint (k : kind) : int64 = Util.hash_string (name k)

let is_input = function Input _ -> true | _ -> false
let is_weight = function Input Weight -> true | _ -> false
let is_swap = function Store | Load -> true | _ -> false

(** Zero-cost "view" operators: pure data movement the runtime can often
    elide; they still occupy memory for their output. *)
let is_view = function
  | Transpose _ | Reshape _ | Slice _ | Unary Identity -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Shape inference                                                    *)
(* ------------------------------------------------------------------ *)

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let mm_view trans (s : Shape.t) =
  let r = Shape.rank s in
  if r < 2 then invalid_arg "matmul operand of rank < 2";
  let a = Shape.dim s (r - 2) and b = Shape.dim s (r - 1) in
  if trans then (b, a) else (a, b)

let conv_out_extent ~extent ~kernel ~stride ~padding =
  ((extent + (2 * padding) - kernel) / stride) + 1

let infer (k : kind) (ins : Shape.t array) : (Shape.t, string) result =
  let arity_err expected =
    fail "%s expects %d inputs, got %d" (name k) expected (Array.length ins)
  in
  match k with
  | Input _ -> fail "input nodes carry their own shape"
  | Matmul { trans_a; trans_b } ->
      if Array.length ins <> 2 then arity_err 2
      else
        let a = ins.(0) and b = ins.(1) in
        if Shape.rank a <> 2 || Shape.rank b <> 2 then
          fail "matmul expects rank-2 operands"
        else
          let m, ka = mm_view trans_a a and kb, n = mm_view trans_b b in
          if ka <> kb then fail "matmul: contraction mismatch %d vs %d" ka kb
          else Ok (Shape.create ~dtype:(Shape.dtype a) [ m; n ])
  | Dense { trans_w } ->
      if Array.length ins <> 2 then arity_err 2
      else
        let x = ins.(0) and w = ins.(1) in
        if Shape.rank w <> 2 then fail "dense: weight must be rank 2"
        else if Shape.rank x < 2 then fail "dense: input rank < 2"
        else
          let k = if trans_w then Shape.dim w 1 else Shape.dim w 0 in
          let n = if trans_w then Shape.dim w 0 else Shape.dim w 1 in
          let r = Shape.rank x in
          if Shape.dim x (r - 1) <> k then
            fail "dense: contraction mismatch %d vs %d" (Shape.dim x (r - 1)) k
          else
            let dims = List.init r (fun i -> if i = r - 1 then n else Shape.dim x i) in
            Ok (Shape.create ~dtype:(Shape.dtype x) dims)
  | Dense_bwd_weight ->
      if Array.length ins <> 2 then arity_err 2
      else
        let x = ins.(0) and dy = ins.(1) in
        let rx = Shape.rank x and ry = Shape.rank dy in
        if rx <> ry || rx < 2 then fail "dense_bwd_weight: rank mismatch"
        else
          Ok
            (Shape.create ~dtype:(Shape.dtype x)
               [ Shape.dim x (rx - 1); Shape.dim dy (ry - 1) ])
  | Batch_matmul { trans_a; trans_b } ->
      if Array.length ins <> 2 then arity_err 2
      else
        let a = ins.(0) and b = ins.(1) in
        let ra = Shape.rank a and rb = Shape.rank b in
        if ra <> rb || ra < 3 then fail "bmm expects equal ranks >= 3"
        else
          let batch_ok = ref true in
          for i = 0 to ra - 3 do
            if Shape.dim a i <> Shape.dim b i then batch_ok := false
          done;
          if not !batch_ok then fail "bmm: batch dims mismatch"
          else
            let m, ka = mm_view trans_a a and kb, n = mm_view trans_b b in
            if ka <> kb then fail "bmm: contraction mismatch %d vs %d" ka kb
            else
              let dims =
                List.init ra (fun i ->
                    if i < ra - 2 then Shape.dim a i
                    else if i = ra - 2 then m
                    else n)
              in
              Ok (Shape.create ~dtype:(Shape.dtype a) dims)
  | Conv2d { stride; padding } ->
      if Array.length ins <> 2 then arity_err 2
      else
        let x = ins.(0) and w = ins.(1) in
        if Shape.rank x <> 4 || Shape.rank w <> 4 then
          fail "conv2d expects NCHW and KCRS"
        else if Shape.dim x 1 <> Shape.dim w 1 then
          fail "conv2d: channel mismatch"
        else
          let oh =
            conv_out_extent ~extent:(Shape.dim x 2) ~kernel:(Shape.dim w 2)
              ~stride ~padding
          and ow =
            conv_out_extent ~extent:(Shape.dim x 3) ~kernel:(Shape.dim w 3)
              ~stride ~padding
          in
          if oh <= 0 || ow <= 0 then fail "conv2d: empty output"
          else
            Ok
              (Shape.create ~dtype:(Shape.dtype x)
                 [ Shape.dim x 0; Shape.dim w 0; oh; ow ])
  | Conv2d_bwd_data { stride; padding } ->
      (* two operands: transposed convolution (decoder upsampling);
         three operands: data gradient, with the forward input as a
         shape carrier (strided convolutions floor away the exact
         extent, so it cannot always be recovered from dy alone) *)
      if Array.length ins <> 2 && Array.length ins <> 3 then arity_err 2
      else
        let dy = ins.(0) and w = ins.(1) in
        if Shape.rank dy <> 4 || Shape.rank w <> 4 then
          fail "conv2d_bwd_data expects rank-4 inputs"
        else if Array.length ins = 3 then Ok ins.(2)
        else
          let r = Shape.dim w 2 and s = Shape.dim w 3 in
          let h = ((Shape.dim dy 2 - 1) * stride) - (2 * padding) + r in
          let wd = ((Shape.dim dy 3 - 1) * stride) - (2 * padding) + s in
          if h <= 0 || wd <= 0 then fail "conv2d_bwd_data: empty output"
          else
            Ok
              (Shape.create ~dtype:(Shape.dtype dy)
                 [ Shape.dim dy 0; Shape.dim w 1; h; wd ])
  | Conv2d_bwd_weight { stride = _; padding = _ } ->
      if Array.length ins <> 3 then arity_err 3
      else
        let dy = ins.(0) and x = ins.(1) and wshape = ins.(2) in
        if Shape.rank dy <> 4 || Shape.rank x <> 4 || Shape.rank wshape <> 4
        then fail "conv2d_bwd_weight expects rank-4 inputs"
        else Ok (Shape.create ~dtype:(Shape.dtype dy) (Array.to_list (Shape.dims wshape)))
  | Pool2d { kernel; p_stride; _ } ->
      if Array.length ins <> 1 then arity_err 1
      else
        let x = ins.(0) in
        if Shape.rank x <> 4 then fail "pool2d expects NCHW"
        else
          let oh =
            conv_out_extent ~extent:(Shape.dim x 2) ~kernel ~stride:p_stride
              ~padding:0
          and ow =
            conv_out_extent ~extent:(Shape.dim x 3) ~kernel ~stride:p_stride
              ~padding:0
          in
          if oh <= 0 || ow <= 0 then fail "pool2d: empty output"
          else
            Ok
              (Shape.create ~dtype:(Shape.dtype x)
                 [ Shape.dim x 0; Shape.dim x 1; oh; ow ])
  | Pool2d_bwd _ ->
      if Array.length ins <> 2 then arity_err 2
      else Ok ins.(1) (* dx has the forward input's shape *)
  | Unary _ ->
      if Array.length ins <> 1 then arity_err 1 else Ok ins.(0)
  | Binary _ ->
      if Array.length ins <> 2 then arity_err 2
      else if not (Shape.equal_dims ins.(0) ins.(1)) then
        fail "%s: shape mismatch %s vs %s" (name k)
          (Shape.to_string ins.(0))
          (Shape.to_string ins.(1))
      else if Shape.dtype ins.(0) <> Shape.dtype ins.(1) then
        fail "%s: dtype mismatch %s vs %s" (name k)
          (Shape.dtype_name (Shape.dtype ins.(0)))
          (Shape.dtype_name (Shape.dtype ins.(1)))
      else Ok ins.(0)
  | Bias_add axis ->
      if Array.length ins <> 2 then arity_err 2
      else
        let x = ins.(0) and b = ins.(1) in
        if axis < 0 || axis >= Shape.rank x then fail "bias_add: bad axis"
        else if Shape.rank b <> 1 || Shape.dim b 0 <> Shape.dim x axis then
          fail "bias_add: bias extent mismatch"
        else Ok x
  | Softmax axis | Softmax_bwd axis ->
      let expected = match k with Softmax _ -> 1 | _ -> 2 in
      if Array.length ins <> expected then arity_err expected
      else if axis < 0 || axis >= Shape.rank ins.(0) then
        fail "softmax: bad axis"
      else Ok ins.(0)
  | Layer_norm axis ->
      if Array.length ins <> 3 then arity_err 3
      else
        let x = ins.(0) in
        if axis < 0 || axis >= Shape.rank x then fail "layer_norm: bad axis"
        else Ok x
  | Layer_norm_bwd axis ->
      if Array.length ins <> 3 then arity_err 3
      else if axis < 0 || axis >= Shape.rank ins.(1) then
        fail "layer_norm_bwd: bad axis"
      else Ok ins.(1)
  | Batch_norm ->
      if Array.length ins <> 3 then arity_err 3
      else
        let x = ins.(0) in
        if Shape.rank x <> 4 then fail "batch_norm expects NCHW" else Ok x
  | Reduce (_, axes) ->
      if Array.length ins <> 1 then arity_err 1
      else
        let x = ins.(0) in
        let r = Shape.rank x in
        if List.exists (fun a -> a < 0 || a >= r) axes then
          fail "reduce: bad axis"
        else if List.length (List.sort_uniq compare axes) <> List.length axes
        then fail "reduce: duplicate axes"
        else
          let kept =
            List.filteri (fun i _ -> not (List.mem i axes))
              (Array.to_list (Shape.dims x))
          in
          let kept = if kept = [] then [ 1 ] else kept in
          Ok (Shape.create ~dtype:(Shape.dtype x) kept)
  | Broadcast { dims; axes } ->
      if Array.length ins <> 1 then arity_err 1
      else
        let x = ins.(0) in
        let rout = Array.length dims in
        if Shape.rank x + List.length axes <> rout then
          fail "broadcast: rank mismatch"
        else if List.exists (fun a -> a < 0 || a >= rout) axes then
          fail "broadcast: bad axis"
        else
          let kept =
            List.filter (fun i -> not (List.mem i axes)) (List.init rout Fun.id)
          in
          if
            List.for_all2
              (fun i j -> dims.(j) = Shape.dim x i)
              (List.init (Shape.rank x) Fun.id)
              kept
          then Ok (Shape.create ~dtype:(Shape.dtype x) (Array.to_list dims))
          else fail "broadcast: kept dims mismatch"
  | Transpose perm ->
      if Array.length ins <> 1 then arity_err 1
      else
        let x = ins.(0) in
        let r = Shape.rank x in
        if Array.length perm <> r then fail "transpose: perm rank mismatch"
        else if
          List.sort_uniq compare (Array.to_list perm) <> List.init r Fun.id
        then fail "transpose: invalid permutation"
        else
          Ok
            (Shape.create ~dtype:(Shape.dtype x)
               (List.init r (fun i -> Shape.dim x perm.(i))))
  | Reshape dims ->
      if Array.length ins <> 1 then arity_err 1
      else
        let x = ins.(0) in
        let target = Array.fold_left ( * ) 1 dims in
        if target <> Shape.numel x then
          fail "reshape: element count mismatch (%d vs %d)" target
            (Shape.numel x)
        else Ok (Shape.create ~dtype:(Shape.dtype x) (Array.to_list dims))
  | Slice { axis; lo; hi } ->
      if Array.length ins <> 1 then arity_err 1
      else
        let x = ins.(0) in
        if axis < 0 || axis >= Shape.rank x then fail "slice: bad axis"
        else if lo < 0 || hi > Shape.dim x axis || lo >= hi then
          fail "slice: bad range %d:%d of %d" lo hi (Shape.dim x axis)
        else Ok (Shape.with_dim x axis (hi - lo))
  | Concat axis ->
      if Array.length ins < 2 then fail "concat expects >= 2 inputs"
      else
        let first = ins.(0) in
        if axis < 0 || axis >= Shape.rank first then fail "concat: bad axis"
        else
          let ok = ref true and total = ref 0 in
          Array.iter
            (fun s ->
              if Shape.rank s <> Shape.rank first then ok := false
              else
                Array.iteri
                  (fun i d ->
                    if i <> axis && d <> Shape.dim first i then ok := false)
                  (Shape.dims s);
              total := !total + Shape.dim s axis)
            ins;
          if not !ok then fail "concat: incompatible shapes"
          else if
            Array.exists (fun s -> Shape.dtype s <> Shape.dtype first) ins
          then fail "concat: dtype mismatch"
          else Ok (Shape.with_dim first axis !total)
  | Embedding ->
      if Array.length ins <> 2 then arity_err 2
      else
        let table = ins.(0) and ids = ins.(1) in
        if Shape.rank table <> 2 then fail "embedding: table must be rank 2"
        else
          Ok
            (Shape.create ~dtype:(Shape.dtype table)
               (Array.to_list (Shape.dims ids) @ [ Shape.dim table 1 ]))
  | Embedding_bwd ->
      if Array.length ins <> 3 then arity_err 3
      else Ok ins.(2) (* dtable has the table's shape *)
  | Store | Load ->
      if Array.length ins <> 1 then arity_err 1 else Ok ins.(0)

(* ------------------------------------------------------------------ *)
(* Work estimates                                                     *)
(* ------------------------------------------------------------------ *)

(** Floating-point operations performed by one execution of the operator. *)
let flops (k : kind) (ins : Shape.t array) (out : Shape.t) : float =
  let f = float_of_int in
  let numel_out = f (Shape.numel out) in
  match k with
  | Input _ | Store | Load -> 0.0
  | Matmul { trans_a; _ } ->
      let _, ka = mm_view trans_a ins.(0) in
      2.0 *. numel_out *. f ka
  | Batch_matmul { trans_a; _ } ->
      let _, ka = mm_view trans_a ins.(0) in
      2.0 *. numel_out *. f ka
  | Dense _ ->
      let x = ins.(0) in
      2.0 *. numel_out *. f (Shape.dim x (Shape.rank x - 1))
  | Dense_bwd_weight ->
      let x = ins.(0) in
      let leading = Shape.numel x / Shape.dim x (Shape.rank x - 1) in
      2.0 *. numel_out *. f leading
  | Conv2d _ ->
      let w = ins.(1) in
      2.0 *. numel_out *. f (Shape.dim w 1 * Shape.dim w 2 * Shape.dim w 3)
  | Conv2d_bwd_data _ ->
      let w = ins.(1) in
      2.0 *. numel_out *. f (Shape.dim w 0 * Shape.dim w 2 * Shape.dim w 3)
  | Conv2d_bwd_weight _ ->
      let dy = ins.(0) in
      2.0 *. f (Shape.numel dy) *. f (Shape.dim out 1 * Shape.dim out 2 * Shape.dim out 3)
  | Pool2d { kernel; _ } | Pool2d_bwd { kernel; _ } ->
      numel_out *. f (kernel * kernel)
  | Unary (Gelu | Tanh | Sigmoid | Exp) -> 8.0 *. numel_out
  | Unary _ -> numel_out
  | Binary _ -> numel_out
  | Bias_add _ -> numel_out
  | Softmax _ -> 5.0 *. numel_out
  | Softmax_bwd _ -> 6.0 *. numel_out
  | Layer_norm _ -> 8.0 *. numel_out
  | Layer_norm_bwd _ -> 12.0 *. numel_out
  | Batch_norm -> 2.0 *. numel_out
  | Reduce _ -> f (Shape.numel ins.(0))
  | Transpose _ | Reshape _ | Slice _ | Concat _ | Broadcast _ -> 0.0
  | Embedding -> 0.0
  | Embedding_bwd -> f (Shape.numel ins.(0))

(** Bytes read from / written to device memory by one execution. *)
let bytes_moved (k : kind) (ins : Shape.t array) (out : Shape.t) : float =
  match k with
  | Input _ -> 0.0
  | _ ->
      let input_bytes =
        Array.fold_left (fun acc s -> acc + Shape.size_bytes s) 0 ins
      in
      float_of_int (input_bytes + Shape.size_bytes out)

(* ------------------------------------------------------------------ *)
(* Dimension semantics                                                *)
(* ------------------------------------------------------------------ *)

(** Number of reduce axes ([r_v] in the paper). *)
let reduce_arity (k : kind) (ins : Shape.t array) : int =
  match k with
  | Matmul _ | Batch_matmul _ | Conv2d _ | Conv2d_bwd_data _ | Dense _ -> 1
  | Conv2d_bwd_weight _ -> 1 (* batch axis *)
  | Dense_bwd_weight ->
      if Array.length ins > 0 then Shape.rank ins.(0) - 1 else 1
  | Reduce (_, axes) -> List.length axes
  | Embedding_bwd -> if Array.length ins > 0 then Shape.rank ins.(1) else 2
  | _ -> 0

(** [links k ins out] lists [(slot, in_dim, link)] triples describing how
    each input dimension corresponds to an output dimension or reduce axis.
    Dimensions with no entry are opaque (sliding windows, gather indices,
    broadcast remainders). *)
let links (k : kind) (ins : Shape.t array) (out : Shape.t) :
    (int * int * dim_link) list =
  let all_same slot shape =
    List.init (Shape.rank shape) (fun i -> (slot, i, To_out i))
  in
  match k with
  | Input _ -> []
  | Matmul { trans_a; trans_b } ->
      let a_m = if trans_a then 1 else 0 in
      let a_k = 1 - a_m in
      let b_n = if trans_b then 0 else 1 in
      let b_k = 1 - b_n in
      [ (0, a_m, To_out 0); (0, a_k, To_reduce 0);
        (1, b_k, To_reduce 0); (1, b_n, To_out 1) ]
  | Batch_matmul { trans_a; trans_b } ->
      let r = Shape.rank ins.(0) in
      let batch =
        List.concat_map
          (fun i -> [ (0, i, To_out i); (1, i, To_out i) ])
          (List.init (r - 2) Fun.id)
      in
      let a_m = if trans_a then r - 1 else r - 2 in
      let a_k = if trans_a then r - 2 else r - 1 in
      let b_n = if trans_b then r - 2 else r - 1 in
      let b_k = if trans_b then r - 1 else r - 2 in
      batch
      @ [ (0, a_m, To_out (r - 2)); (0, a_k, To_reduce 0);
          (1, b_k, To_reduce 0); (1, b_n, To_out (r - 1)) ]
  | Dense { trans_w } ->
      let r = Shape.rank ins.(0) in
      let w_k = if trans_w then 1 else 0 in
      List.init (r - 1) (fun i -> (0, i, To_out i))
      @ [ (0, r - 1, To_reduce 0); (1, w_k, To_reduce 0);
          (1, 1 - w_k, To_out (r - 1)) ]
  | Dense_bwd_weight ->
      let r = Shape.rank ins.(0) in
      List.init (r - 1) (fun i -> (0, i, To_reduce i))
      @ [ (0, r - 1, To_out 0) ]
      @ List.init (r - 1) (fun i -> (1, i, To_reduce i))
      @ [ (1, r - 1, To_out 1) ]
  | Conv2d _ ->
      [ (0, 0, To_out 0); (0, 1, To_reduce 0);
        (1, 0, To_out 1); (1, 1, To_reduce 0) ]
  | Conv2d_bwd_data _ ->
      let base =
        [ (0, 0, To_out 0); (0, 1, To_reduce 0);
          (1, 0, To_reduce 0); (1, 1, To_out 1) ]
      in
      if Array.length ins = 3 then
        base @ [ (2, 0, To_out 0); (2, 1, To_out 1) ]
      else base
  | Conv2d_bwd_weight _ ->
      (* dy[N,K,H',W'], x[N,C,H,W], w_shape -> dw[K,C,R,S]; N is the reduce
         axis: splitting the batch yields partial weight gradients summed
         together (the Fig. 5 pattern). *)
      [ (0, 0, To_reduce 0); (0, 1, To_out 0);
        (1, 0, To_reduce 0); (1, 1, To_out 1) ]
  | Pool2d _ -> [ (0, 0, To_out 0); (0, 1, To_out 1) ]
  | Pool2d_bwd _ ->
      [ (0, 0, To_out 0); (0, 1, To_out 1); (1, 0, To_out 0); (1, 1, To_out 1) ]
  | Unary _ -> all_same 0 ins.(0)
  | Binary _ -> all_same 0 ins.(0) @ all_same 1 ins.(1)
  | Bias_add axis -> all_same 0 ins.(0) @ [ (1, 0, To_out axis) ]
  | Softmax _ -> all_same 0 ins.(0)
  | Softmax_bwd _ -> all_same 0 ins.(0) @ all_same 1 ins.(1)
  | Layer_norm axis ->
      (* gamma/beta have the trailing (normalized) dims *)
      let x = ins.(0) in
      let trailing slot s =
        List.init (Shape.rank s) (fun i -> (slot, i, To_out (axis + i)))
      in
      all_same 0 x @ trailing 1 ins.(1) @ trailing 2 ins.(2)
  | Layer_norm_bwd axis ->
      let trailing slot s =
        List.init (Shape.rank s) (fun i -> (slot, i, To_out (axis + i)))
      in
      all_same 0 ins.(0) @ all_same 1 ins.(1) @ trailing 2 ins.(2)
  | Batch_norm ->
      all_same 0 ins.(0) @ [ (1, 0, To_out 1); (2, 0, To_out 1) ]
  | Reduce (_, axes) ->
      let x = ins.(0) in
      let r = Shape.rank x in
      let kept = List.filter (fun i -> not (List.mem i axes)) (List.init r Fun.id) in
      (* a full reduce keeps a single [1] dim: no spatial links then *)
      let spatial =
        if kept = [] then []
        else List.mapi (fun j i -> (0, i, To_out j)) kept
      in
      let reduces = List.mapi (fun j a -> (0, a, To_reduce j)) axes in
      spatial @ reduces
  | Broadcast { dims; axes } ->
      let rout = Array.length dims in
      let kept =
        List.filter (fun i -> not (List.mem i axes)) (List.init rout Fun.id)
      in
      List.mapi (fun i j -> (0, i, To_out j)) kept
  | Transpose perm ->
      List.init (Array.length perm) (fun i -> (0, perm.(i), To_out i))
  | Reshape dims ->
      (* Link dimensions that are preserved verbatim from the left and from
         the right (prefix/suffix products equal). *)
      let x = ins.(0) in
      let rin = Shape.rank x and rout = Array.length dims in
      let rec from_left i acc =
        if i < rin && i < rout && Shape.dim x i = dims.(i) then
          from_left (i + 1) ((0, i, To_out i) :: acc)
        else (i, acc)
      in
      let stop_l, left = from_left 0 [] in
      let rec from_right j acc =
        let i = rin - 1 - j and o = rout - 1 - j in
        if i >= stop_l && o >= stop_l && i >= 0 && o >= 0
           && Shape.dim x i = dims.(o)
        then from_right (j + 1) ((0, i, To_out o) :: acc)
        else acc
      in
      left @ from_right 0 []
  | Slice _ -> all_same 0 ins.(0)
  | Concat _ ->
      List.concat
        (List.init (Array.length ins) (fun slot -> all_same slot ins.(slot)))
  | Embedding ->
      let ids = ins.(1) in
      let id_links =
        List.init (Shape.rank ids) (fun i -> (1, i, To_out i))
      in
      (1, 0, To_out 0) :: List.tl id_links
      @ [ (0, 1, To_out (Shape.rank out - 1)) ]
  | Embedding_bwd ->
      let dy = ins.(0) and ids = ins.(1) in
      let rd = Shape.rank dy in
      List.init (rd - 1) (fun i -> (0, i, To_reduce i))
      @ [ (0, rd - 1, To_out 1) ]
      @ List.init (Shape.rank ids) (fun i -> (1, i, To_reduce i))
  | Store | Load -> all_same 0 ins.(0)

(** Output dimensions along which the operator must not be sliced: either
    the semantics couple the whole extent (softmax / layer-norm normalized
    axes, concat/slice axes) or the axis carries a sliding window. *)
let unsplittable_out_dims (k : kind) (ins : Shape.t array) (out : Shape.t) :
    int list =
  let _ = ins in
  match k with
  | Softmax axis | Softmax_bwd axis -> [ axis ]
  | Layer_norm axis | Layer_norm_bwd axis ->
      List.init (Shape.rank out - axis) (fun i -> axis + i)
  | Conv2d _ | Pool2d _ | Conv2d_bwd_data _ | Pool2d_bwd _ -> [ 2; 3 ]
  | Conv2d_bwd_weight _ -> [ 2; 3 ]
  | Slice { axis; _ } -> [ axis ]
  | Concat axis -> [ axis ]
  | Broadcast { axes; _ } -> axes
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Abstract shape inference                                           *)
(* ------------------------------------------------------------------ *)

(** Dimension domain over which {!Abstract} re-interprets shape
    inference.  [equal]/[geq]/[div_exact] are *provability* predicates: a
    [false]/[None] answer means "cannot prove", not "provably false" —
    the abstract interpreter is sound but partial. *)
module type DIM_DOMAIN = sig
  type dim
  type dt

  val const : int -> dim
  val add : dim -> dim -> dim
  val sub : dim -> dim -> dim
  val mul : dim -> dim -> dim

  (** Provable equality of two extents. *)
  val equal : dim -> dim -> bool

  (** Provable [a >= b]. *)
  val geq : dim -> dim -> bool

  (** Provable exact division by a positive constant. *)
  val div_exact : dim -> int -> dim option

  val to_const : dim -> int option

  (** Provable equality of two element types. *)
  val dt_equal : dt -> dt -> bool
end

(** Shape inference re-interpreted over an abstract dimension domain.
    [Abstract (Int_dims)] coincides with {!infer} wherever it succeeds
    (asserted by the test suite); instantiated with a symbolic domain it
    proves inference facts for *all* extents at once.  Shapes are
    [(dims, dtype)] pairs so the result type is shared across
    instantiations. *)
module Abstract (D : DIM_DOMAIN) = struct
  type shape = D.dim array * D.dt

  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt
  let rank ((d, _) : shape) = Array.length d
  let dim ((d, _) : shape) i = d.(i)
  let dt ((_, t) : shape) = t

  let mm_view trans (s : shape) =
    let r = rank s in
    let a = dim s (r - 2) and b = dim s (r - 1) in
    if trans then (b, a) else (a, b)

  (** [(extent + 2*padding - kernel) / stride + 1], provable-exact
      division only (stride 1 is always exact). *)
  let conv_out ~extent ~kernel ~stride ~padding =
    let numer = D.sub (D.add extent (D.const (2 * padding))) kernel in
    if stride = 1 then Some (D.add numer (D.const 1))
    else
      Option.map (fun q -> D.add q (D.const 1)) (D.div_exact numer stride)

  let positive what d =
    if D.geq d (D.const 1) then Ok d
    else fail "%s: cannot prove the extent positive" what

  let infer (k : kind) (ins : shape array) : (shape, string) result =
    let arity_err expected =
      fail "%s expects %d inputs, got %d" (name k) expected (Array.length ins)
    in
    let ( let* ) = Result.bind in
    match k with
    | Input _ -> fail "input nodes carry their own shape"
    | Matmul { trans_a; trans_b } ->
        if Array.length ins <> 2 then arity_err 2
        else
          let a = ins.(0) and b = ins.(1) in
          if rank a <> 2 || rank b <> 2 then
            fail "matmul expects rank-2 operands"
          else
            let m, ka = mm_view trans_a a and kb, n = mm_view trans_b b in
            if not (D.equal ka kb) then
              fail "matmul: cannot prove the contraction extents equal"
            else Ok ([| m; n |], dt a)
    | Dense { trans_w } ->
        if Array.length ins <> 2 then arity_err 2
        else
          let x = ins.(0) and w = ins.(1) in
          if rank w <> 2 then fail "dense: weight must be rank 2"
          else if rank x < 2 then fail "dense: input rank < 2"
          else
            let kd = if trans_w then dim w 1 else dim w 0 in
            let n = if trans_w then dim w 0 else dim w 1 in
            let r = rank x in
            if not (D.equal (dim x (r - 1)) kd) then
              fail "dense: cannot prove the contraction extents equal"
            else
              Ok
                ( Array.init r (fun i -> if i = r - 1 then n else dim x i),
                  dt x )
    | Dense_bwd_weight ->
        if Array.length ins <> 2 then arity_err 2
        else
          let x = ins.(0) and dy = ins.(1) in
          let rx = rank x and ry = rank dy in
          if rx <> ry || rx < 2 then fail "dense_bwd_weight: rank mismatch"
          else Ok ([| dim x (rx - 1); dim dy (ry - 1) |], dt x)
    | Batch_matmul { trans_a; trans_b } ->
        if Array.length ins <> 2 then arity_err 2
        else
          let a = ins.(0) and b = ins.(1) in
          let ra = rank a and rb = rank b in
          if ra <> rb || ra < 3 then fail "bmm expects equal ranks >= 3"
          else
            let batch_ok = ref true in
            for i = 0 to ra - 3 do
              if not (D.equal (dim a i) (dim b i)) then batch_ok := false
            done;
            if not !batch_ok then
              fail "bmm: cannot prove the batch extents equal"
            else
              let m, ka = mm_view trans_a a and kb, n = mm_view trans_b b in
              if not (D.equal ka kb) then
                fail "bmm: cannot prove the contraction extents equal"
              else
                Ok
                  ( Array.init ra (fun i ->
                        if i < ra - 2 then dim a i
                        else if i = ra - 2 then m
                        else n),
                    dt a )
    | Conv2d { stride; padding } ->
        if Array.length ins <> 2 then arity_err 2
        else
          let x = ins.(0) and w = ins.(1) in
          if rank x <> 4 || rank w <> 4 then fail "conv2d expects NCHW and KCRS"
          else if not (D.equal (dim x 1) (dim w 1)) then
            fail "conv2d: cannot prove the channel extents equal"
          else (
            match
              ( conv_out ~extent:(dim x 2) ~kernel:(dim w 2) ~stride ~padding,
                conv_out ~extent:(dim x 3) ~kernel:(dim w 3) ~stride ~padding )
            with
            | Some oh, Some ow ->
                let* oh = positive "conv2d" oh in
                let* ow = positive "conv2d" ow in
                Ok ([| dim x 0; dim w 0; oh; ow |], dt x)
            | _ -> fail "conv2d: cannot prove the strided extent exact")
    | Conv2d_bwd_data { stride; padding } ->
        if Array.length ins <> 2 && Array.length ins <> 3 then arity_err 2
        else
          let dy = ins.(0) and w = ins.(1) in
          if rank dy <> 4 || rank w <> 4 then
            fail "conv2d_bwd_data expects rank-4 inputs"
          else if Array.length ins = 3 then Ok ins.(2)
          else
            let ext d kd =
              D.add
                (D.sub (D.mul (D.sub d (D.const 1)) (D.const stride))
                   (D.const (2 * padding)))
                kd
            in
            let* h = positive "conv2d_bwd_data" (ext (dim dy 2) (dim w 2)) in
            let* wd = positive "conv2d_bwd_data" (ext (dim dy 3) (dim w 3)) in
            Ok ([| dim dy 0; dim w 1; h; wd |], dt dy)
    | Conv2d_bwd_weight _ ->
        if Array.length ins <> 3 then arity_err 3
        else
          let dy = ins.(0) and x = ins.(1) and wshape = ins.(2) in
          if rank dy <> 4 || rank x <> 4 || rank wshape <> 4 then
            fail "conv2d_bwd_weight expects rank-4 inputs"
          else Ok (fst wshape, dt dy)
    | Pool2d { kernel; p_stride; _ } ->
        if Array.length ins <> 1 then arity_err 1
        else
          let x = ins.(0) in
          if rank x <> 4 then fail "pool2d expects NCHW"
          else (
            match
              ( conv_out ~extent:(dim x 2) ~kernel:(D.const kernel)
                  ~stride:p_stride ~padding:0,
                conv_out ~extent:(dim x 3) ~kernel:(D.const kernel)
                  ~stride:p_stride ~padding:0 )
            with
            | Some oh, Some ow ->
                let* oh = positive "pool2d" oh in
                let* ow = positive "pool2d" ow in
                Ok ([| dim x 0; dim x 1; oh; ow |], dt x)
            | _ -> fail "pool2d: cannot prove the strided extent exact")
    | Pool2d_bwd _ ->
        if Array.length ins <> 2 then arity_err 2 else Ok ins.(1)
    | Unary _ -> if Array.length ins <> 1 then arity_err 1 else Ok ins.(0)
    | Binary _ ->
        if Array.length ins <> 2 then arity_err 2
        else
          let a = ins.(0) and b = ins.(1) in
          if rank a <> rank b then fail "%s: rank mismatch" (name k)
          else if
            not (Array.for_all2 D.equal (fst a) (fst b))
          then fail "%s: cannot prove the operand shapes equal" (name k)
          else if not (D.dt_equal (dt a) (dt b)) then
            fail "%s: cannot prove the operand dtypes equal" (name k)
          else Ok a
    | Bias_add axis ->
        if Array.length ins <> 2 then arity_err 2
        else
          let x = ins.(0) and b = ins.(1) in
          if axis < 0 || axis >= rank x then fail "bias_add: bad axis"
          else if rank b <> 1 then fail "bias_add: bias must be rank 1"
          else if not (D.equal (dim b 0) (dim x axis)) then
            fail "bias_add: cannot prove the bias extent equal"
          else Ok x
    | Softmax axis | Softmax_bwd axis ->
        let expected = match k with Softmax _ -> 1 | _ -> 2 in
        if Array.length ins <> expected then arity_err expected
        else if axis < 0 || axis >= rank ins.(0) then fail "softmax: bad axis"
        else Ok ins.(0)
    | Layer_norm axis ->
        if Array.length ins <> 3 then arity_err 3
        else if axis < 0 || axis >= rank ins.(0) then fail "layer_norm: bad axis"
        else Ok ins.(0)
    | Layer_norm_bwd axis ->
        if Array.length ins <> 3 then arity_err 3
        else if axis < 0 || axis >= rank ins.(1) then
          fail "layer_norm_bwd: bad axis"
        else Ok ins.(1)
    | Batch_norm ->
        if Array.length ins <> 3 then arity_err 3
        else if rank ins.(0) <> 4 then fail "batch_norm expects NCHW"
        else Ok ins.(0)
    | Reduce (_, axes) ->
        if Array.length ins <> 1 then arity_err 1
        else
          let x = ins.(0) in
          let r = rank x in
          if List.exists (fun a -> a < 0 || a >= r) axes then
            fail "reduce: bad axis"
          else if
            List.length (List.sort_uniq compare axes) <> List.length axes
          then fail "reduce: duplicate axes"
          else
            let kept =
              List.filteri (fun i _ -> not (List.mem i axes))
                (Array.to_list (fst x))
            in
            let kept = if kept = [] then [ D.const 1 ] else kept in
            Ok (Array.of_list kept, dt x)
    | Broadcast { dims; axes } ->
        if Array.length ins <> 1 then arity_err 1
        else
          let x = ins.(0) in
          let rout = Array.length dims in
          if rank x + List.length axes <> rout then fail "broadcast: rank mismatch"
          else if List.exists (fun a -> a < 0 || a >= rout) axes then
            fail "broadcast: bad axis"
          else
            let kept =
              List.filter
                (fun i -> not (List.mem i axes))
                (List.init rout Fun.id)
            in
            if
              List.for_all2
                (fun i j -> D.equal (D.const dims.(j)) (dim x i))
                (List.init (rank x) Fun.id)
                kept
            then Ok (Array.map D.const dims, dt x)
            else fail "broadcast: cannot prove the kept extents equal"
    | Transpose perm ->
        if Array.length ins <> 1 then arity_err 1
        else
          let x = ins.(0) in
          let r = rank x in
          if Array.length perm <> r then fail "transpose: perm rank mismatch"
          else if
            List.sort_uniq compare (Array.to_list perm) <> List.init r Fun.id
          then fail "transpose: invalid permutation"
          else Ok (Array.init r (fun i -> dim x perm.(i)), dt x)
    | Reshape dims ->
        if Array.length ins <> 1 then arity_err 1
        else
          let x = ins.(0) in
          let numel s = Array.fold_left D.mul (D.const 1) (fst s) in
          let target = Array.fold_left ( * ) 1 dims in
          if not (D.equal (D.const target) (numel x)) then
            fail "reshape: cannot prove the element counts equal"
          else Ok (Array.map D.const dims, dt x)
    | Slice { axis; lo; hi } ->
        if Array.length ins <> 1 then arity_err 1
        else
          let x = ins.(0) in
          if axis < 0 || axis >= rank x then fail "slice: bad axis"
          else if lo < 0 || lo >= hi then fail "slice: bad range %d:%d" lo hi
          else if not (D.geq (dim x axis) (D.const hi)) then
            fail "slice: cannot prove the extent covers %d" hi
          else
            let out = Array.copy (fst x) in
            out.(axis) <- D.const (hi - lo);
            Ok (out, dt x)
    | Concat axis ->
        if Array.length ins < 2 then fail "concat expects >= 2 inputs"
        else
          let first = ins.(0) in
          if axis < 0 || axis >= rank first then fail "concat: bad axis"
          else
            let ok = ref true and total = ref (D.const 0) in
            Array.iter
              (fun s ->
                if rank s <> rank first then ok := false
                else
                  Array.iteri
                    (fun i d ->
                      if i <> axis && not (D.equal d (dim first i)) then
                        ok := false)
                    (fst s);
                total := D.add !total (dim s axis))
              ins;
            if not !ok then fail "concat: cannot prove the shapes compatible"
            else if
              Array.exists (fun s -> not (D.dt_equal (dt s) (dt first))) ins
            then fail "concat: cannot prove the dtypes equal"
            else
              let out = Array.copy (fst first) in
              out.(axis) <- !total;
              Ok (out, dt first)
    | Embedding ->
        if Array.length ins <> 2 then arity_err 2
        else
          let table = ins.(0) and ids = ins.(1) in
          if rank table <> 2 then fail "embedding: table must be rank 2"
          else Ok (Array.append (fst ids) [| dim table 1 |], dt table)
    | Embedding_bwd ->
        if Array.length ins <> 3 then arity_err 3 else Ok ins.(2)
    | Store | Load ->
        if Array.length ins <> 1 then arity_err 1 else Ok ins.(0)
end

(** Concrete [int] instantiation of {!DIM_DOMAIN}: division is
    provable-exact only, everything else is ordinary arithmetic.  Used
    by the test suite to assert {!Abstract} agrees with {!infer}. *)
module Int_dims = struct
  type dim = int
  type dt = Shape.dtype

  let const n = n
  let add = ( + )
  let sub = ( - )
  let mul = ( * )
  let equal = Int.equal
  let geq a b = a >= b
  let div_exact a k = if k > 0 && a mod k = 0 then Some (a / k) else None
  let to_const a = Some a
  let dt_equal (a : Shape.dtype) b = a = b
end

(** How partial outputs combine when an operator is split along a reduce
    axis: [`Sum] (partial sums added), [`Max], or [`No_merge] when such a
    split is not allowed. *)
let reduce_merge (k : kind) : [ `Sum | `Max | `No_merge ] =
  match k with
  | Matmul _ | Batch_matmul _ | Conv2d _ | Conv2d_bwd_data _
  | Conv2d_bwd_weight _ | Embedding_bwd | Dense _ | Dense_bwd_weight ->
      `Sum
  | Reduce (R_sum, _) -> `Sum
  | Reduce (R_max, _) -> `Max
  | Reduce (R_mean, _) -> `No_merge
  | _ -> `No_merge
