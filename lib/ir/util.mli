(** Small shared utilities for the IR layer: integer maps/sets and a
    deterministic 64-bit mixing hash used by {!Wl_hash}. *)

module Int_map : Map.S with type key = int
module Int_set : Set.S with type elt = int

val int_set_of_list : int list -> Int_set.t

(** SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer with a
    stable definition across OCaml versions (unlike [Hashtbl.hash]). *)
val mix64 : int64 -> int64

val hash_combine : int64 -> int64 -> int64
val hash_string : string -> int64
val hash_int_list : int list -> int64

(** [take n xs] is the first [n] elements of [xs] (all of them if
    shorter). *)
val take : int -> 'a list -> 'a list

(** [drop n xs] is [xs] without its first [n] elements. *)
val drop : int -> 'a list -> 'a list

val sum_by : ('a -> int) -> 'a list -> int
val sum_by_f : ('a -> float) -> 'a list -> float
