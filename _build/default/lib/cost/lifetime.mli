(** Tensor lifetime analysis (§2.1): per-schedule liveness, peak memory
    and memory hot-spots.

    Conventions: weights are pinned for the whole run; graph outputs
    (losses, gradients) stay live until the end; [size_of] can override
    device sizes (fission accounting, Store outputs). *)

open Magis_ir
module Int_set = Util.Int_set

type t = private {
  order : int array;
  pos : (int, int) Hashtbl.t;
  birth : int array;  (** per position: step the output appears *)
  free : int array;  (** per position: last step the output is live *)
  mem : int array;  (** per step: active bytes *)
  peak : int;
  hotspots : Int_set.t;  (** node ids live at some peak step *)
  sizes : int array;  (** device bytes per position *)
}

(** Device size of a node's output (0 for Store: host-side). *)
val default_size : Graph.t -> int -> int

val analyze : ?size_of:(int -> int) -> Graph.t -> int list -> t
val peak_memory : t -> int
val hotspots : t -> Int_set.t

(** Memory-vs-step curve (bytes live after each operator executes). *)
val timeline : t -> int array

(** Position of a node in the analyzed schedule. *)
val position : t -> int -> int option

(** Total size of hot-spot tensors. *)
val hotspot_bytes : t -> int

(** Live interval [(birth, free)] of the node at schedule position [i]. *)
val interval : t -> int -> int * int
