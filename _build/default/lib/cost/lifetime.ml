(** Tensor lifetime analysis (§2.1 of the paper).

    Given a schedule [s = (v_1 … v_n)], the output tensor of [v_i] is live
    from its production ([S_i = i]) until its last consumer's step
    ([F_i = max_{v_j ∈ suc(v_i)} j]).  The active memory at step [i] is the
    sum of sizes of live tensors; the peak over all steps is [M_peak], and
    the *memory hot-spots* are the tensors live at peak steps.

    Conventions:
    - weights are pinned for the whole run (training keeps parameters
      resident);
    - graph outputs (losses, gradients) stay live until the end;
    - the device size of a node can be overridden via [size_of] — the
      fission layer divides sizes of split intermediates, and Store outputs
      occupy no device memory. *)

open Magis_ir
module Int_set = Util.Int_set

type t = {
  order : int array;
  pos : (int, int) Hashtbl.t;  (** node id -> schedule position *)
  birth : int array;  (** per position: step the output appears *)
  free : int array;  (** per position: last step the output is live *)
  mem : int array;  (** per step: active bytes *)
  peak : int;
  hotspots : Int_set.t;  (** node ids live at some peak step *)
  sizes : int array;  (** device bytes per position *)
}

(** Default device size of a node's output: its tensor size, except Store
    whose output lives in host memory. *)
let default_size (g : Graph.t) (id : int) : int =
  let n = Graph.node g id in
  match n.op with Op.Store -> 0 | _ -> Shape.size_bytes n.shape

let analyze ?size_of (g : Graph.t) (order : int list) : t =
  let size_of = match size_of with Some f -> f | None -> default_size g in
  let order = Array.of_list order in
  let n = Array.length order in
  let pos = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.replace pos v i) order;
  let sizes = Array.map (fun v -> size_of v) order in
  let birth = Array.init n (fun i -> i) in
  let free = Array.make n 0 in
  let last = n - 1 in
  for i = 0 to n - 1 do
    let v = order.(i) in
    let node = Graph.node g v in
    if Op.is_weight node.op then begin
      birth.(i) <- 0;
      free.(i) <- last
    end
    else if
      Int_set.is_empty (Graph.succ_set g v) && not (Op.is_input node.op)
    then free.(i) <- last (* graph output: live to the end *)
    else
      free.(i) <-
        List.fold_left
          (fun acc s ->
            match Hashtbl.find_opt pos s with
            | Some j -> max acc j
            | None -> acc)
          i (Graph.suc g v)
  done;
  (* Sweep 1: memory per step via birth/death deltas. *)
  let mem = Array.make (max n 1) 0 in
  if n > 0 then begin
    let delta = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      delta.(birth.(i)) <- delta.(birth.(i)) + sizes.(i);
      delta.(free.(i) + 1) <- delta.(free.(i) + 1) - sizes.(i)
    done;
    let current = ref 0 in
    for step = 0 to n - 1 do
      current := !current + delta.(step);
      mem.(step) <- !current
    done
  end;
  let peak = Array.fold_left max 0 mem in
  (* Sweep 2: a tensor is a hot-spot iff its live interval contains a peak
     step; [next_peak.(s)] is the first peak step >= s. *)
  let next_peak = Array.make (n + 1) max_int in
  for step = n - 1 downto 0 do
    next_peak.(step) <-
      (if mem.(step) = peak then step else next_peak.(step + 1))
  done;
  let hotspots = ref Int_set.empty in
  for i = 0 to n - 1 do
    if n > 0 && next_peak.(birth.(i)) <= free.(i) then
      hotspots := Int_set.add order.(i) !hotspots
  done;
  { order; pos; birth; free; mem; peak; hotspots = !hotspots; sizes }

let peak_memory t = t.peak
let hotspots t = t.hotspots

(** Memory-vs-step curve (bytes live after each operator executes). *)
let timeline t = Array.copy t.mem

(** Position of a node in the analyzed schedule. *)
let position t v = Hashtbl.find_opt t.pos v

(** Total size of hot-spot tensors using the analysis' size function. *)
let hotspot_bytes t =
  Int_set.fold
    (fun v acc ->
      match Hashtbl.find_opt t.pos v with
      | Some i -> acc + t.sizes.(i)
      | None -> acc)
    t.hotspots 0

(** Lifetime interval of the node at schedule position [i]. *)
let interval t i = (t.birth.(i), t.free.(i))
