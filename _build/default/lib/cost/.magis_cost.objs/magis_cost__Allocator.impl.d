lib/cost/allocator.ml: Array Graph Lifetime List Magis_ir
