lib/cost/op_cost.mli: Graph Hardware Hashtbl Magis_ir Op Shape
