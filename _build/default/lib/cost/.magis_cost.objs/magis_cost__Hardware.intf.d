lib/cost/hardware.mli: Format
