lib/cost/simulator.ml: Graph Hashtbl Lifetime List Magis_ir Op Op_cost Shape
