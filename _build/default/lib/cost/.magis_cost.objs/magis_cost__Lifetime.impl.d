lib/cost/lifetime.ml: Array Graph Hashtbl List Magis_ir Op Shape Util
