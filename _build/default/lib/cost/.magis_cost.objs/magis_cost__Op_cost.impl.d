lib/cost/op_cost.ml: Array Graph Hardware Hashtbl Magis_ir Op Shape Util
