lib/cost/simulator.mli: Graph Lifetime Magis_ir Op_cost
