lib/cost/hardware.ml: Fmt
