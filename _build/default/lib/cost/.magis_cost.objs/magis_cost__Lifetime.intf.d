lib/cost/lifetime.mli: Graph Hashtbl Magis_ir Util
