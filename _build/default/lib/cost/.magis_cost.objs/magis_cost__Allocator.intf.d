lib/cost/allocator.mli: Graph Lifetime Magis_ir
