lib/sched/incremental.mli: Graph Magis_ir Util
