lib/sched/partition.ml: Array Graph Hashtbl List Magis_ir Op Util
