lib/sched/reorder.ml: Graph Hashtbl Int List Magis_cost Magis_ir Map Partition Util
