lib/sched/incremental.ml: Array Graph List Magis_ir Partition Reorder Util
