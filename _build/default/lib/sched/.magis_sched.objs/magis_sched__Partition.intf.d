lib/sched/partition.mli: Graph Magis_ir Util
