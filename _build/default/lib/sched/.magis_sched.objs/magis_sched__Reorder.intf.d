lib/sched/reorder.mli: Graph Magis_ir Util
