(** Memory-aware re-ordering: the paper's [DpSchedule] primitive (a
    Serenity-style uniform-cost search over executed-set states, optimal
    in peak memory) plus a near-linear memory-greedy list scheduler used
    as the fallback and for cheap candidate evaluation. *)

open Magis_ir
module Int_set = Util.Int_set

(** Weights and graph outputs: never freed. *)
val pinned : Graph.t -> int -> bool

(** Bytes freed by executing [v] given the executed set. *)
val freed_by :
  size_of:(int -> int) -> Graph.t -> Int_set.t -> Int_set.t -> int -> int

val initial_ready : Graph.t -> Int_set.t -> Int_set.t

val next_ready :
  Graph.t -> Int_set.t -> Int_set.t -> Int_set.t -> int -> Int_set.t

(** O((V+E) log V) list scheduling by (net memory delta, size). *)
val greedy_schedule : size_of:(int -> int) -> Graph.t -> Int_set.t -> int list

(** Peak-memory-optimal order, or [None] past the state budget. *)
val dp_schedule :
  ?max_states:int -> size_of:(int -> int) -> Graph.t -> Int_set.t ->
  int list option

(** DP with greedy fallback ([max_states = 0] skips the DP). *)
val schedule_block :
  ?max_states:int -> size_of:(int -> int) -> Graph.t -> Int_set.t -> int list

(** Narrow-waist partition, then per-block scheduling, concatenated. *)
val schedule_members :
  ?max_states:int -> size_of:(int -> int) -> Graph.t -> Int_set.t -> int list

(** Schedule the whole graph. *)
val schedule : ?max_states:int -> ?size_of:(int -> int) -> Graph.t -> int list
