(** Memory-aware re-ordering.

    [dp_schedule] is the dynamic-programming scheduler of Serenity (Ahn et
    al., MLSys'20) that the paper uses as its [DpSchedule] primitive: a
    uniform-cost search over "executed set" states whose path cost is the
    peak memory so far.  Because the live set (and hence the current
    memory) is a function of the executed set alone, each state is visited
    at most once with its best achievable peak, and the first completed
    state is memory-optimal.

    The state space is exponential in the antichain width, so the search
    carries a state budget; [schedule] first cuts the problem at narrow
    waists ({!Partition}) and falls back to a memory-greedy list scheduler
    ([greedy_schedule]) for blocks whose DP exceeds the budget. *)

open Magis_ir
module Int_set = Util.Int_set
module Set_map = Map.Make (Int_set)

let pinned = Partition.pinned

(** Bytes freed by executing [v] when [executed] already ran: operands (and
    [v] itself) whose consumers within [members] are now all executed and
    which have no consumer outside [members].  Operands outside [members]
    are never freed here (the enclosing block owns them). *)
let freed_by ~size_of (g : Graph.t) (members : Int_set.t)
    (executed : Int_set.t) (v : int) : int =
  let executed' = Int_set.add v executed in
  let dead u =
    Int_set.mem u members
    && (not (pinned g u))
    && Int_set.for_all
         (fun c -> (not (Int_set.mem c members)) || Int_set.mem c executed')
         (Graph.succ_set g u)
    && Int_set.for_all (fun c -> Int_set.mem c members) (Graph.succ_set g u)
  in
  let preds = List.filter (fun u -> Int_set.mem u members) (Graph.pre g v) in
  let candidates = if dead v then v :: preds else preds in
  List.fold_left
    (fun acc u -> if u <> v && not (dead u) then acc else acc + size_of u)
    0
    (List.sort_uniq compare candidates)

let initial_ready (g : Graph.t) (members : Int_set.t) =
  Int_set.filter
    (fun v ->
      List.for_all
        (fun p -> not (Int_set.mem p members))
        (Graph.pre g v))
    members

let next_ready (g : Graph.t) (members : Int_set.t) (executed : Int_set.t)
    (ready : Int_set.t) (v : int) =
  let ready = Int_set.remove v ready in
  List.fold_left
    (fun r s ->
      if
        Int_set.mem s members
        && (not (Int_set.mem s executed))
        && List.for_all
             (fun p ->
               (not (Int_set.mem p members)) || Int_set.mem p executed)
             (Graph.pre g s)
      then Int_set.add s r
      else r)
    ready (Graph.suc g v)

(* ------------------------------------------------------------------ *)
(* Memory-greedy list scheduling                                      *)
(* ------------------------------------------------------------------ *)

(** Fallback scheduler: at each step execute the ready node with the best
    (net memory delta, transient size) pair.

    Runs in O((V+E) log V): remaining-consumer counts decide when a tensor
    dies; ready nodes live in a priority map keyed by
    (size - potentially-freed bytes, size, id), and only the candidates
    whose operands were touched by the last execution get re-keyed. *)
let greedy_schedule ~size_of (g : Graph.t) (members : Int_set.t) : int list =
  let module Km = Map.Make (struct
    type t = int * int * int

    let compare = compare
  end) in
  (* remaining in-member consumers; a tensor with an out-of-member consumer
     or pinned never dies inside this block *)
  let remaining = Hashtbl.create 64 in
  let freeable = Hashtbl.create 64 in
  Int_set.iter
    (fun v ->
      let succs = Graph.succ_set g v in
      let in_members = Int_set.filter (fun s -> Int_set.mem s members) succs in
      Hashtbl.replace remaining v (Int_set.cardinal in_members);
      Hashtbl.replace freeable v
        (Int_set.cardinal in_members = Int_set.cardinal succs
        && not (pinned g v)))
    members;
  let in_member_preds v =
    List.filter (fun u -> Int_set.mem u members) (Graph.pre g v)
  in
  let missing = Hashtbl.create 64 in
  Int_set.iter
    (fun v -> Hashtbl.replace missing v (List.length (in_member_preds v)))
    members;
  (* net bytes freed if v ran now *)
  let potential_freed v =
    let from_preds =
      List.fold_left
        (fun acc u ->
          if Hashtbl.find remaining u = 1 && Hashtbl.find freeable u then
            acc + size_of u
          else acc)
        0
        (List.sort_uniq compare (in_member_preds v))
    in
    if Hashtbl.find remaining v = 0 && Hashtbl.find freeable v then
      from_preds + size_of v
    else from_preds
  in
  let key v = (size_of v - potential_freed v, size_of v, v) in
  let current_key = Hashtbl.create 64 in
  let q = ref Km.empty in
  let enqueue v =
    let k = key v in
    (match Hashtbl.find_opt current_key v with
    | Some old -> q := Km.remove old !q
    | None -> ());
    Hashtbl.replace current_key v k;
    q := Km.add k v !q
  in
  Int_set.iter
    (fun v -> if Hashtbl.find missing v = 0 then enqueue v)
    members;
  let acc = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match Km.min_binding_opt !q with
    | None -> continue_ := false
    | Some (k, v) ->
        q := Km.remove k !q;
        Hashtbl.remove current_key v;
        acc := v :: !acc;
        (* consume operands *)
        let touched = ref [] in
        List.iter
          (fun u ->
            let r = Hashtbl.find remaining u - 1 in
            Hashtbl.replace remaining u r;
            if r = 1 then
              (* u's last consumer becomes the one that frees it: re-key
                 u's remaining ready consumer *)
              Int_set.iter
                (fun c ->
                  if Hashtbl.mem current_key c then touched := c :: !touched)
                (Graph.succ_set g u))
          (List.sort_uniq compare (in_member_preds v));
        (* release newly ready successors *)
        List.iter
          (fun s ->
            if Int_set.mem s members then begin
              let m = Hashtbl.find missing s - 1 in
              Hashtbl.replace missing s m;
              if m = 0 then enqueue s
            end)
          (Graph.suc g v);
        List.iter (fun c -> if Hashtbl.mem current_key c then enqueue c) !touched
  done;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* DP (uniform-cost search on peak memory)                            *)
(* ------------------------------------------------------------------ *)

type state = {
  executed : Int_set.t;
  ready : Int_set.t;
  mem : int;
  order_rev : int list;
}

module Bucket_queue = struct
  (* min-priority queue keyed by peak memory, FIFO within a bucket *)
  module M = Map.Make (Int)

  type 'a t = 'a list M.t

  let empty : 'a t = M.empty

  let push k v q =
    M.update k (function None -> Some [ v ] | Some l -> Some (v :: l)) q

  let pop (q : 'a t) : (int * 'a * 'a t) option =
    match M.min_binding_opt q with
    | None -> None
    | Some (k, [ v ]) -> Some (k, v, M.remove k q)
    | Some (k, v :: rest) -> Some (k, v, M.add k rest q)
    | Some (_, []) -> assert false
end

(** Memory-optimal order of [members], or [None] if the search exceeds
    [max_states] expansions. *)
let dp_schedule ?(max_states = 20_000) ~size_of (g : Graph.t)
    (members : Int_set.t) : int list option =
  let target = Int_set.cardinal members in
  if target = 0 then Some []
  else
    let start =
      {
        executed = Int_set.empty;
        ready = initial_ready g members;
        mem = 0;
        order_rev = [];
      }
    in
    let best = ref Set_map.empty in
    let q = ref (Bucket_queue.push 0 start Bucket_queue.empty) in
    let pops = ref 0 in
    let result = ref None in
    (try
       while !result = None do
         match Bucket_queue.pop !q with
         | None -> raise Exit
         | Some (peak, st, q') ->
             q := q';
             incr pops;
             if !pops > max_states then raise Exit;
             let seen =
               match Set_map.find_opt st.executed !best with
               | Some p -> p < peak
               | None -> false
             in
             if not seen then begin
               best := Set_map.add st.executed peak !best;
               if Int_set.cardinal st.executed = target then
                 result := Some (List.rev st.order_rev)
               else
                 Int_set.iter
                   (fun v ->
                     let transient = st.mem + size_of v in
                     let freed = freed_by ~size_of g members st.executed v in
                     let executed' = Int_set.add v st.executed in
                     let st' =
                       {
                         executed = executed';
                         ready = next_ready g members executed' st.ready v;
                         mem = transient - freed;
                         order_rev = v :: st.order_rev;
                       }
                     in
                     let peak' = max peak transient in
                     let dominated =
                       match Set_map.find_opt st'.executed !best with
                       | Some p -> p <= peak'
                       | None -> false
                     in
                     if not dominated then
                       q := Bucket_queue.push peak' st' !q)
                   st.ready
             end
       done
     with Exit -> ());
    !result

(* ------------------------------------------------------------------ *)
(* Full scheduling: partition, DP per block, fallback                 *)
(* ------------------------------------------------------------------ *)

(** Schedule one block: DP if it fits the budget ([max_states = 0] skips
    the DP entirely), greedy otherwise. *)
let schedule_block ?(max_states = 20_000) ~size_of g block =
  if max_states <= 0 then greedy_schedule ~size_of g block
  else
    match dp_schedule ~max_states ~size_of g block with
    | Some order -> order
    | None -> greedy_schedule ~size_of g block

(** Schedule a node subset: narrow-waist partition, then per-block DP with
    greedy fallback, concatenated in dependency order. *)
let schedule_members ?(max_states = 20_000) ~size_of (g : Graph.t)
    (members : Int_set.t) : int list =
  let blocks = Partition.partition g members in
  List.concat_map (fun b -> schedule_block ~max_states ~size_of g b) blocks

(** Schedule the whole graph. *)
let schedule ?(max_states = 20_000) ?size_of (g : Graph.t) : int list =
  let size_of =
    match size_of with
    | Some f -> f
    | None -> fun v -> Magis_cost.Lifetime.default_size g v
  in
  let members = Int_set.of_list (Graph.node_ids g) in
  let order = schedule_members ~max_states ~size_of g members in
  assert (Graph.is_valid_order g order);
  order
