(** Narrow-waist analysis and graph partitioning (§6.1 of the paper).

    The narrow-waist value of a node [v] in graph [G] is
    [nw(v) = |V(G)| - |anc(v)| - |des(v)| - 1] — the number of nodes
    independent of [v].  A node with [nw(v) = 0] splits the scheduling
    problem into two independent halves; the paper's [GraphPartition] cuts
    each weakly-connected component at nodes with [nw(v) <= 1]. *)

open Magis_ir
module Int_set = Util.Int_set

(** Is the output of [v] pinned (never freed): weights stay resident,
    graph outputs live to the end.  Pinned tensors cross every schedule
    boundary, so they are ignored when looking for cut points. *)
let pinned (g : Graph.t) (v : int) =
  let n = Graph.node g v in
  Op.is_weight n.op
  || (Int_set.is_empty (Graph.succ_set g v) && not (Op.is_input n.op))

(** Narrow-waist value of [v] within the sub-graph induced by [members]
    (defaults to the whole graph). *)
let nw ?members (g : Graph.t) (v : int) : int =
  let keep =
    match members with
    | None -> fun _ -> true
    | Some s -> fun u -> Int_set.mem u s
  in
  let total =
    match members with
    | None -> Graph.n_nodes g
    | Some s -> Int_set.cardinal s
  in
  let bfs step =
    let rec go visited frontier =
      match frontier with
      | [] -> visited
      | u :: rest ->
          let nexts =
            List.filter
              (fun w -> keep w && not (Int_set.mem w visited))
              (step u)
          in
          go
            (List.fold_left (fun acc w -> Int_set.add w acc) visited nexts)
            (nexts @ rest)
    in
    go Int_set.empty [ v ]
  in
  let anc = bfs (Graph.pre g) and des = bfs (Graph.suc g) in
  total - Int_set.cardinal anc - Int_set.cardinal des - 1

(** Partition the sub-graph induced by [members] into blocks that can be
    scheduled independently and concatenated.  A cut is taken after
    position [i] of a component's topological order when the dependence
    frontier narrows to (at most) the node just executed — the linear-time
    equivalent of cutting at narrow-waist nodes with [nw <= 1]: any
    schedule must pass through such a point, so the blocks on either side
    can be ordered independently.  Blocks are returned in a
    dependency-compatible order.

    [max_crossing] (default 1) is the number of live tensors a cut is
    allowed to carry; larger values sequentialize more aggressively (used
    by the POFO baseline's chainification). *)
let partition ?(max_crossing = 1) (g : Graph.t) (members : Int_set.t) :
    Int_set.t list =
  let topo = Graph.topo_order g in
  let topo_pos = Hashtbl.create (List.length topo) in
  List.iteri (fun i v -> Hashtbl.replace topo_pos v i) topo;
  let blocks =
    List.concat_map
      (fun comp ->
        let ordered = List.filter (fun v -> Int_set.mem v comp) topo in
        let n = List.length ordered in
        let pos_in = Hashtbl.create n in
        List.iteri (fun i v -> Hashtbl.replace pos_in v i) ordered;
        (* last in-component consumer position of each node *)
        let last_use = Hashtbl.create n in
        List.iter
          (fun v ->
            let i = Hashtbl.find pos_in v in
            let l =
              List.fold_left
                (fun acc s ->
                  match Hashtbl.find_opt pos_in s with
                  | Some j -> max acc j
                  | None -> acc)
                i (Graph.suc g v)
            in
            Hashtbl.replace last_use v l)
          ordered;
        (* sweep: number of tensors produced at <= i and used at > i *)
        let crossing = Array.make (max n 1) 0 in
        List.iter
          (fun v ->
            let i = Hashtbl.find pos_in v in
            let l = Hashtbl.find last_use v in
            (* v crosses every boundary between i and l-1 *)
            if l > i && not (pinned g v) then begin
              crossing.(i) <- crossing.(i) + 1;
              if l < n then crossing.(l) <- crossing.(l) - 1
            end)
          ordered;
        let segments = ref [] and current = ref [] in
        let open_count = ref 0 in
        List.iteri
          (fun i v ->
            current := v :: !current;
            open_count := !open_count + crossing.(i);
            (* cut when at most one tensor crosses the boundary after i:
               the problem separates here *)
            if !open_count <= max_crossing then begin
              segments := List.rev !current :: !segments;
              current := []
            end)
          ordered;
        if !current <> [] then segments := List.rev !current :: !segments;
        List.rev_map Int_set.of_list !segments)
      (Graph.components_of g members)
  in
  (* order blocks by the topological position of their earliest node *)
  List.sort
    (fun a b ->
      let key s =
        Int_set.fold (fun v acc -> min acc (Hashtbl.find topo_pos v)) s max_int
      in
      compare (key a) (key b))
    blocks
