(** Narrow-waist analysis and graph partitioning (§6.1). *)

open Magis_ir
module Int_set = Util.Int_set

(** Weights and graph outputs: never freed, ignored when cutting. *)
val pinned : Graph.t -> int -> bool

(** Narrow-waist value [nw(v) = |V| - |anc(v)| - |des(v)| - 1], within the
    sub-graph induced by [members] when given. *)
val nw : ?members:Int_set.t -> Graph.t -> int -> int

(** Cut each weakly-connected component where the dependence frontier
    narrows to at most [max_crossing] live tensors (linear-time
    equivalent of cutting at nw <= 1); blocks are returned in a
    dependency-compatible order. *)
val partition : ?max_crossing:int -> Graph.t -> Int_set.t -> Int_set.t list
