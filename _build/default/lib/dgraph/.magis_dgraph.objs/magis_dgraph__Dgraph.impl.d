lib/dgraph/dgraph.ml: Array Fmt Graph List Magis_ir Map Op Set Shape Util
