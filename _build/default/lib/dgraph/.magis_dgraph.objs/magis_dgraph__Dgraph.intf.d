lib/dgraph/dgraph.mli: Format Graph Magis_ir Map Set Util
