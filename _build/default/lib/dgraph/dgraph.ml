(** Dimension graphs (D-Graphs, §4.1 of the paper).

    For a computation graph [G], the D-Graph [D(G)] has a node [⟨v,i⟩] for
    every operator [v] and every dimension of its output tensor
    ([i = 1 … s_v], 1-based) as well as every reduce axis of its
    computation ([i = -1 … -r_v]).  There is an edge [⟨u,i⟩ → ⟨v,j⟩]
    whenever the [i]-th dimension of [u]'s output and the [j]-th dimension
    (or [-j]-th reduce axis) of [v] correspond to the same spatial axis.

    Connected components of the D-Graph identify graph-level dimensions
    (batch, heads, sequence, …) along which a sub-graph can be split by the
    fission transformation. *)

open Magis_ir
module Int_map = Util.Int_map

type dnode = { node : int; dim : int }
(** [dim > 0]: output dimension [dim] (1-based).
    [dim < 0]: reduce axis [-dim] (1-based). *)

let compare_dnode a b =
  match compare a.node b.node with 0 -> compare a.dim b.dim | c -> c

module Dnode_set = Set.Make (struct
  type t = dnode

  let compare = compare_dnode
end)

module Dnode_map = Map.Make (struct
  type t = dnode

  let compare = compare_dnode
end)

type t = {
  nodes : Dnode_set.t;
  adj : Dnode_set.t Dnode_map.t;  (** undirected adjacency *)
}

let pp_dnode ppf d =
  if d.dim > 0 then Fmt.pf ppf "<%d,%d>" d.node d.dim
  else Fmt.pf ppf "<%d,-%d>" d.node (-d.dim)

let in_shapes g (n : Graph.node) =
  Array.map (fun i -> Graph.shape g i) n.inputs

(** All D-nodes of one graph node. *)
let dnodes_of (g : Graph.t) (v : int) : dnode list =
  let n = Graph.node g v in
  let s = Shape.rank n.shape in
  let r = Op.reduce_arity n.op (in_shapes g n) in
  List.init s (fun i -> { node = v; dim = i + 1 })
  @ List.init r (fun i -> { node = v; dim = -(i + 1) })

let add_edge adj a b =
  let get k m =
    match Dnode_map.find_opt k m with Some s -> s | None -> Dnode_set.empty
  in
  let adj = Dnode_map.add a (Dnode_set.add b (get a adj)) adj in
  Dnode_map.add b (Dnode_set.add a (get b adj)) adj

let build (g : Graph.t) : t =
  let nodes =
    Graph.fold
      (fun n acc ->
        List.fold_left (fun s d -> Dnode_set.add d s) acc (dnodes_of g n.id))
      g Dnode_set.empty
  in
  let adj =
    Graph.fold
      (fun n adj ->
        let ins = in_shapes g n in
        let links = Op.links n.op ins n.shape in
        List.fold_left
          (fun adj (slot, in_dim, link) ->
            let u = n.inputs.(slot) in
            let src = { node = u; dim = in_dim + 1 } in
            let dst =
              match link with
              | Op.To_out j -> { node = n.id; dim = j + 1 }
              | Op.To_reduce j -> { node = n.id; dim = -(j + 1) }
            in
            add_edge adj src dst)
          adj links)
      g Dnode_map.empty
  in
  { nodes; adj }

let neighbors t d =
  match Dnode_map.find_opt d t.adj with
  | Some s -> s
  | None -> Dnode_set.empty

(** Connected components with at least two distinct graph nodes (singleton
    dimension components cannot drive a fission).  Deterministic order. *)
let components (t : t) : Dnode_set.t list =
  let visited = ref Dnode_set.empty in
  let comps = ref [] in
  Dnode_set.iter
    (fun seed ->
      if not (Dnode_set.mem seed !visited) then begin
        let rec bfs acc frontier =
          match frontier with
          | [] -> acc
          | d :: rest ->
              let next =
                Dnode_set.filter
                  (fun x -> not (Dnode_set.mem x acc))
                  (neighbors t d)
              in
              bfs (Dnode_set.union acc next) (Dnode_set.elements next @ rest)
        in
        let comp = bfs (Dnode_set.singleton seed) [ seed ] in
        visited := Dnode_set.union !visited comp;
        let distinct_nodes =
          Dnode_set.fold
            (fun d acc -> Util.Int_set.add d.node acc)
            comp Util.Int_set.empty
        in
        if Util.Int_set.cardinal distinct_nodes >= 2 then
          comps := comp :: !comps
      end)
    t.nodes;
  List.rev !comps

(** Graph nodes touched by a component. *)
let graph_nodes_of_component (comp : Dnode_set.t) : Util.Int_set.t =
  Dnode_set.fold
    (fun d acc -> Util.Int_set.add d.node acc)
    comp Util.Int_set.empty

(** Restrict a component to a node subset [s]; gives the dimension
    assignment used by a fission candidate.  Returns [None] if some node of
    [s] covered by the component has *more than one* D-node in it (the
    paper's constraint (3): exactly one ⟨v,i⟩ per v — e.g. a softmax whose
    normalized axis couples two dims of one node) — such sub-graphs cannot
    split along this dimension. *)
let restrict (comp : Dnode_set.t) (s : Util.Int_set.t) :
    int Int_map.t option =
  let exception Conflict in
  try
    Some
      (Dnode_set.fold
         (fun d acc ->
           if not (Util.Int_set.mem d.node s) then acc
           else if Int_map.mem d.node acc then raise Conflict
           else Int_map.add d.node d.dim acc)
         comp Int_map.empty)
  with Conflict -> None
