(** Dimension graphs (D-Graphs, §4.1): one node [⟨v,i⟩] per output
    dimension ([i = 1…s_v]) and reduce axis ([i = -1…-r_v]) of every
    operator, with edges between dimensions that share a spatial axis.
    Connected components identify the graph-level dimensions (batch,
    heads, sequence, …) a fission can split along. *)

open Magis_ir
module Int_map = Util.Int_map

type dnode = { node : int; dim : int }
(** [dim > 0]: output dimension (1-based); [dim < 0]: reduce axis. *)

val compare_dnode : dnode -> dnode -> int

module Dnode_set : Set.S with type elt = dnode
module Dnode_map : Map.S with type key = dnode

type t

val pp_dnode : Format.formatter -> dnode -> unit

(** All D-nodes of one graph node. *)
val dnodes_of : Graph.t -> int -> dnode list

val build : Graph.t -> t
val neighbors : t -> dnode -> Dnode_set.t

(** Connected components spanning at least two graph nodes, in
    deterministic order. *)
val components : t -> Dnode_set.t list

val graph_nodes_of_component : Dnode_set.t -> Util.Int_set.t

(** Restrict a component to a node subset: the per-node dimension
    assignment of a fission candidate; [None] when some node has more
    than one D-node in the component (constraint (3) of §4.2). *)
val restrict : Dnode_set.t -> Util.Int_set.t -> int Int_map.t option
