(** POFO-style baseline (Beaumont et al., NeurIPS'21): optimal combination
    of re-materialization and offloading over a sequentialized network —
    a DP over (stage, freed bytes, offloaded bytes) choosing
    Keep/Recompute/Offload per stage, pricing the offload stall per link
    direction and bounding frees by the backward re-peak. *)

open Magis_ir
open Magis_cost

type policy = Keep | Recompute | Offload

(** Run under a device-memory [budget]. *)
val run : Op_cost.t -> Graph.t -> budget:int -> Outcome.t

(** Smallest memory whose plan stays within the latency limit (Fig. 9). *)
val min_memory : Op_cost.t -> Graph.t -> lat_limit:float -> Outcome.t
