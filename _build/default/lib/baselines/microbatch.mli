(** Micro-batching pre-processing (Fig. 12): build the model at
    [batch/factor], optimize one micro-batch with POFO, scale latency by
    the factor. *)

open Magis_ir
open Magis_cost

val run :
  Op_cost.t -> build:(int -> Graph.t) -> batch:int -> factor:int ->
  budget:int -> Outcome.t

val min_memory :
  Op_cost.t -> build:(int -> Graph.t) -> batch:int -> factor:int ->
  lat_limit:float -> Outcome.t
