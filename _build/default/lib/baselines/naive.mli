(** The unoptimized PyTorch baseline (§7.1): simple topological order with
    basic memory saving (free-when-dead). *)

open Magis_ir
open Magis_cost

val run : Op_cost.t -> Graph.t -> Outcome.t
