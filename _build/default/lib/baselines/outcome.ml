(** Common result type for the baseline memory optimizers. *)

type t = {
  system : string;
  peak_mem : int;  (** device bytes at the memory peak *)
  latency : float;  (** seconds per training iteration *)
  feasible : bool;  (** whether the requested constraint was met *)
}

let infeasible system = { system; peak_mem = max_int; latency = infinity; feasible = false }

let pp ppf t =
  if t.feasible then
    Fmt.pf ppf "%s: peak=%.1fMB lat=%.2fms" t.system
      (float_of_int t.peak_mem /. 1e6)
      (t.latency *. 1e3)
  else Fmt.pf ppf "%s: FAILURE" t.system

(** Binary-search the smallest memory budget whose outcome keeps latency
    within [lat_limit]; used to run budget-driven baselines under the
    paper's latency-constrained experiments (Fig. 9). *)
let min_memory_under_latency ~(run : int -> t) ~(lo : int) ~(hi : int)
    ~(lat_limit : float) : t =
  let rec bisect lo hi best iters =
    if iters = 0 || hi - lo <= max 1 (hi / 64) then best
    else
      let mid = (lo + hi) / 2 in
      let o = run mid in
      if o.feasible && o.latency <= lat_limit then
        bisect lo mid o (iters - 1)
      else bisect mid hi best (iters - 1)
  in
  let top = run hi in
  if not (top.feasible && top.latency <= lat_limit) then
    { top with feasible = false }
  else bisect lo hi top 12
