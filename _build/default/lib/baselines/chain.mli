(** Chain (stage) analysis of training graphs: the substrate of the
    POFO- and XLA-style baselines.  The forward part is chainified at its
    narrow waists; each stage records its compute cost and the activation
    bytes the backward pass consumes. *)

open Magis_ir
open Magis_cost
module Int_set = Util.Int_set

type stage = {
  members : Int_set.t;  (** forward nodes of this stage *)
  cost : float;  (** compute seconds of the stage *)
  saved_bytes : int;  (** activations consumed by the backward pass *)
}

type t = {
  stages : stage list;
  forward : Int_set.t;
  backward : Int_set.t;
  resident_bytes : int;  (** weights: always resident *)
  output_bytes : int;  (** graph outputs (gradients): pinned to the end *)
  fwd_compute : float;
  bwd_compute : float;
}

(** Forward/backward split: the backward part is everything reachable from
    label-kind inputs (the gradient seed). *)
val split : Graph.t -> Int_set.t * Int_set.t

val analyze : ?max_crossing:int -> Op_cost.t -> Graph.t -> t
val n_stages : t -> int
val total_saved : t -> int
val total_cost : t -> float

(** Per-tensor view for the greedy XLA baseline:
    [(bytes, recompute cost x backward uses, stage transient bytes)]. *)
val saved_tensors : Op_cost.t -> Graph.t -> t -> (int * float * int) list
