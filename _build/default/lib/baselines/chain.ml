(** Chain (stage) analysis of training graphs, the substrate for the
    POFO- and XLA-style baselines.

    A training graph splits into a *forward* part (not reachable from the
    gradient seed) and a *backward* part.  The forward part is chainified
    at its narrow waists; for each stage we record its compute cost and
    the bytes of activations it produces that the backward pass consumes
    (the tensors a rematerialization policy can trade). *)

open Magis_ir
open Magis_cost
module Int_set = Util.Int_set

type stage = {
  members : Int_set.t;  (** forward nodes of this stage *)
  cost : float;  (** compute seconds of the stage *)
  saved_bytes : int;  (** activations consumed by the backward pass *)
}

type t = {
  stages : stage list;
  forward : Int_set.t;
  backward : Int_set.t;
  resident_bytes : int;  (** weights + other always-resident tensors *)
  output_bytes : int;  (** graph outputs (gradients): pinned to the end *)
  fwd_compute : float;  (** compute seconds of the forward pass *)
  bwd_compute : float;  (** compute seconds of the backward pass *)
}

(** Backward part: descendants of label-kind inputs (the gradient seed is
    a label input).  Everything else is forward. *)
let split (g : Graph.t) : Int_set.t * Int_set.t =
  let seeds =
    Graph.fold
      (fun n acc ->
        match n.op with Op.Input Op.Label -> n.id :: acc | _ -> acc)
      g []
  in
  let backward =
    List.fold_left
      (fun acc s -> Int_set.union acc (Int_set.add s (Graph.des g s)))
      Int_set.empty seeds
  in
  let all = Int_set.of_list (Graph.node_ids g) in
  (Int_set.diff all backward, backward)

let analyze ?(max_crossing = 3) (cache : Op_cost.t) (g : Graph.t) : t =
  let forward, backward = split g in
  let blocks = Magis_sched.Partition.partition ~max_crossing g forward in
  let stages =
    List.map
      (fun members ->
        let cost =
          Int_set.fold
            (fun v acc -> acc +. Op_cost.node_cost cache g v)
            members 0.0
        in
        let saved_bytes =
          Int_set.fold
            (fun v acc ->
              let consumed_by_backward =
                List.exists
                  (fun s -> Int_set.mem s backward)
                  (Graph.suc g v)
              in
              if consumed_by_backward && not (Op.is_weight (Graph.op g v))
              then acc + Shape.size_bytes (Graph.shape g v)
              else acc)
            members 0
        in
        { members; cost; saved_bytes })
      blocks
  in
  let compute_of set =
    Int_set.fold (fun v acc -> acc +. Op_cost.node_cost cache g v) set 0.0
  in
  let output_bytes =
    List.fold_left
      (fun acc v ->
        if Op.is_input (Graph.op g v) then acc
        else acc + Shape.size_bytes (Graph.shape g v))
      0 (Graph.outputs g)
  in
  {
    stages;
    forward;
    backward;
    resident_bytes = Graph.weight_bytes g;
    output_bytes;
    fwd_compute = compute_of forward;
    bwd_compute = compute_of backward;
  }

let n_stages t = List.length t.stages
let total_saved t = Util.sum_by (fun s -> s.saved_bytes) t.stages
let total_cost t = Util.sum_by_f (fun s -> s.cost) t.stages

(** Individual saved activations: (bytes, recompute cost) for every
    forward tensor the backward pass consumes — the tensor-granular view
    used by the greedy XLA baseline.  Greedy rematerialization re-computes
    a discarded tensor once per backward use (no sharing across uses), so
    the cost carries the backward-consumer count. *)
let saved_tensors (cache : Op_cost.t) (g : Graph.t) (t : t) :
    (int * float * int) list =
  (* stage_saved of the tensor's stage: rematerializing any of a stage's
     activations transiently re-materializes its neighbours, so the
     stage's saved bytes bound the backward re-peak *)
  let stage_of = Hashtbl.create 64 in
  List.iter
    (fun (st : stage) ->
      Int_set.iter (fun v -> Hashtbl.replace stage_of v st.saved_bytes) st.members)
    t.stages;
  Int_set.fold
    (fun v acc ->
      let backward_uses =
        List.length
          (List.filter (fun s -> Int_set.mem s t.backward) (Graph.suc g v))
      in
      if
        backward_uses > 0
        && (not (Op.is_weight (Graph.op g v)))
        && not (Op.is_input (Graph.op g v))
      then
        ( Shape.size_bytes (Graph.shape g v),
          float_of_int backward_uses *. Op_cost.node_cost cache g v,
          match Hashtbl.find_opt stage_of v with
          | Some s -> s
          | None -> Shape.size_bytes (Graph.shape g v) )
        :: acc
      else acc)
    t.forward []
