(** Common result type for the baseline memory optimizers, plus the
    bisection driver used by the latency-constrained experiments. *)

type t = {
  system : string;
  peak_mem : int;  (** device bytes at the memory peak *)
  latency : float;  (** seconds per training iteration *)
  feasible : bool;  (** whether the requested constraint was met *)
}

val infeasible : string -> t
val pp : Format.formatter -> t -> unit

(** Smallest memory budget whose outcome keeps latency within
    [lat_limit] (binary search over [run]). *)
val min_memory_under_latency :
  run:(int -> t) -> lo:int -> hi:int -> lat_limit:float -> t
