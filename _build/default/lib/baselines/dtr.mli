(** DTR baseline (Kirisame et al., ICLR'21), simulated as the runtime it
    is: execution under a hard memory budget with on-demand eviction by
    the DTR heuristic [h(t) = cost / (size x staleness)] and recursive
    recomputation; thrashing runs are reported as failures. *)

open Magis_ir
open Magis_cost

val run : ?thrash_factor:int -> Op_cost.t -> Graph.t -> budget:int -> Outcome.t
val min_memory : Op_cost.t -> Graph.t -> lat_limit:float -> Outcome.t
