(** TVM / Torch-Inductor stand-ins (§7.1): element-wise-chain fusion
    improves latency (fused intermediates skip launches and memory
    writes) while the reported peak memory stays at the basic-saving
    level — exactly how the paper characterizes both compilers. *)

open Magis_ir
open Magis_cost

type aggressiveness = Tvm | Torch_inductor

val fusable : aggressiveness -> Op.kind -> bool
val fused_intermediates : aggressiveness -> Graph.t -> Magis_ir.Util.Int_set.t
val run : aggressiveness -> Op_cost.t -> Graph.t -> Outcome.t

(** Fails when the budget is below the compiler's natural peak. *)
val constrained :
  aggressiveness -> Op_cost.t -> Graph.t -> mem_limit:int -> Outcome.t
