(** XLA-style baseline (§7.1): greedy rematerialization — largest saved
    activations evicted first, re-computed once per backward use, with a
    compounding transitive-recompute factor and a backward re-peak floor. *)

open Magis_ir
open Magis_cost

val run : Op_cost.t -> Graph.t -> budget:int -> Outcome.t
val min_memory : Op_cost.t -> Graph.t -> lat_limit:float -> Outcome.t
