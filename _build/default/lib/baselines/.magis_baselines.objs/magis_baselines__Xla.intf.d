lib/baselines/xla.mli: Graph Magis_cost Magis_ir Op_cost Outcome
