lib/baselines/chain.mli: Graph Magis_cost Magis_ir Op_cost Util
