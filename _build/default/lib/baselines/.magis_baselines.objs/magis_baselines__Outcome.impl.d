lib/baselines/outcome.ml: Fmt
