lib/baselines/naive.ml: Graph Magis_cost Magis_ir Op_cost Outcome Simulator
