lib/baselines/fusion_compiler.mli: Graph Magis_cost Magis_ir Op Op_cost Outcome
