lib/baselines/pofo.ml: Array Chain Float Graph Hardware Magis_cost Magis_ir Op_cost Outcome Simulator
