lib/baselines/dtr.ml: Array Graph Hashtbl Lifetime List Magis_cost Magis_ir Magis_sched Op_cost Outcome Simulator Util
