lib/baselines/chain.ml: Graph Hashtbl List Magis_cost Magis_ir Magis_sched Op Op_cost Shape Util
