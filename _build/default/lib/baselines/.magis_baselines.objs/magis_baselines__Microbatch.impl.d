lib/baselines/microbatch.ml: Graph Magis_cost Magis_ir Op_cost Outcome Pofo Printf Simulator
