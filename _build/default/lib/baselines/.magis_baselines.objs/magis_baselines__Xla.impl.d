lib/baselines/xla.ml: Chain Graph List Magis_cost Magis_ir Op_cost Outcome Simulator Util
