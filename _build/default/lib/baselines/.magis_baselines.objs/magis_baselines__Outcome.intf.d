lib/baselines/outcome.mli: Format
