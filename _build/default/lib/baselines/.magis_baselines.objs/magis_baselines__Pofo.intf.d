lib/baselines/pofo.mli: Graph Magis_cost Magis_ir Op_cost Outcome
