lib/baselines/naive.mli: Graph Magis_cost Magis_ir Op_cost Outcome
