lib/baselines/fusion_compiler.ml: Array Float Graph Hardware Magis_cost Magis_ir Op Op_cost Outcome Shape Simulator Util
