(** Spatial (halo) fission — the extension the paper's footnote 2 leaves
    to future work: splitting along sliding-window axes.

    Regular F-Trans cannot split the H/W axes of convolutions because a
    window at a part boundary needs rows from the neighbouring part.  For
    chains of *stride-1, "same"-padded* convolutions (and window-free
    operators), the fix is classic halo exchange: each part's input slice
    is widened by the chain's accumulated halo, every layer runs on the
    widened slab, and the part's output slab is trimmed back before
    concatenation.  Rows within the halo band are recomputed by both
    neighbouring parts — a small compute overhead that buys a 1/n cut of
    the chain's intermediate memory.

    This matters exactly where batch fission has no leverage: batch-1
    high-resolution inference (the paper's mobile-deployment motivation).

    The region grammar is deliberately restricted so the rewrite is easy
    to verify: a *chain* [v_1 -> v_2 -> … -> v_k] in NCHW layout where
    every operator is either a stride-1 odd-kernel "same" convolution /
    pooling or a window-free elementwise/normalization operator, each
    feeding only the next. *)

open Magis_ir
open Magis_cost
module Int_set = Util.Int_set

type t = {
  chain : int list;  (** v_1 … v_k in dataflow order *)
  axis : int;  (** split axis: 2 (H) or 3 (W) *)
  n : int;  (** number of parts *)
}

(** Halo contributed by one operator (rows needed beyond the slab on each
    side), or [None] if the operator cannot join a spatial chain. *)
let halo_of (g : Graph.t) (v : int) : int option =
  let node = Graph.node g v in
  match node.op with
  | Op.Conv2d { stride = 1; padding }
    when Shape.dim (Graph.shape g node.inputs.(1)) 2 = (2 * padding) + 1 ->
      Some padding
  | Op.Pool2d { kernel = 1; p_stride = 1; _ } -> Some 0
      (* unpadded k>1 pooling shrinks the extent: it cannot join a
         same-extent chain *)
  | Op.Unary _ | Op.Binary _ | Op.Bias_add _ | Op.Batch_norm -> Some 0
  | _ -> None

(** Accumulated halo of the whole chain. *)
let chain_halo (g : Graph.t) (chain : int list) : int option =
  List.fold_left
    (fun acc v ->
      match (acc, halo_of g v) with
      | Some a, Some h -> Some (a + h)
      | _ -> None)
    (Some 0) chain

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let validate (g : Graph.t) (f : t) : (unit, string) result =
  if f.n < 2 then err "need n >= 2"
  else if f.axis <> 2 && f.axis <> 3 then err "axis must be H (2) or W (3)"
  else
    match f.chain with
    | [] -> err "empty chain"
    | first :: _ ->
        let rec check = function
          | [] -> Ok ()
          | v :: rest ->
              let node = Graph.node g v in
              if Shape.rank node.shape <> 4 then
                err "node %d: not NCHW" v
              else if halo_of g v = None then
                err "node %d (%s): not spatially splittable" v
                  (Op.name node.op)
              else if
                rest <> []
                && (Graph.suc g v <> [ List.hd rest ]
                   || not (Array.exists (( = ) v) (Graph.node g (List.hd rest)).inputs))
              then err "node %d: chain must be linear" v
              else check rest
        in
        let ( let* ) r k = match r with Error _ as e -> e | Ok () -> k () in
        let* () = check f.chain in
        let extent = Shape.dim (Graph.shape g first) f.axis in
        let* () =
          if extent mod f.n <> 0 then
            err "extent %d not divisible by %d" extent f.n
          else Ok ()
        in
        (* every member must preserve the split extent ("same" layers) *)
        let* () =
          List.fold_left
            (fun acc v ->
              let* () = acc in
              if Shape.dim (Graph.shape g v) f.axis = extent then Ok ()
              else err "node %d changes the extent along axis %d" v f.axis)
            (Ok ()) f.chain
        in
        (match chain_halo g f.chain with
        | None -> err "chain has a non-splittable operator"
        | Some h ->
            if extent / f.n <= h then
              err "parts of %d rows thinner than the %d-row halo"
                (extent / f.n) h
            else Ok ())

let is_valid g f = match validate g f with Ok () -> true | Error _ -> false

(* ------------------------------------------------------------------ *)
(* Expansion                                                           *)
(* ------------------------------------------------------------------ *)

type expansion = { graph : Graph.t; replacement : int }

(** Rewrite the chain into [n] sequentially executed haloed parts joined
    by a concat along the split axis. *)
let expand (g : Graph.t) (f : t) : expansion =
  (match validate g f with
  | Ok () -> ()
  | Error m -> invalid_arg ("Spatial.expand: " ^ m));
  let first = List.hd f.chain in
  let last = List.nth f.chain (List.length f.chain - 1) in
  let source = (Graph.node g first).inputs.(0) in
  let extent = Shape.dim (Graph.shape g first) f.axis in
  let step = extent / f.n in
  let halo = Option.get (chain_halo g f.chain) in
  let graph = ref g in
  let parts =
    List.init f.n (fun p ->
        (* widened input slab *)
        let lo = max 0 ((p * step) - halo) in
        let hi = min extent (((p + 1) * step) + halo) in
        let g', slab =
          Graph.add !graph (Op.Slice { axis = f.axis; lo; hi }) [ source ]
        in
        graph := g';
        (* run the chain on the slab: every member's chain-input becomes
           the slab-local version *)
        let slab_out =
          List.fold_left
            (fun acc v ->
              let node = Graph.node !graph v in
              let inputs =
                Array.to_list
                  (Array.map
                     (fun u -> if u = source || List.mem u f.chain then acc else u)
                     node.inputs)
              in
              (* a linear chain: the previous member (or the source) is
                 the only in-chain operand *)
              let g', id = Graph.add ~label:node.label !graph node.op inputs in
              graph := g';
              id)
            slab f.chain
        in
        (* trim the slab back to the exact rows of this part *)
        let trim_lo = (p * step) - lo in
        let g', exact =
          Graph.add !graph
            (Op.Slice { axis = f.axis; lo = trim_lo; hi = trim_lo + step })
            [ slab_out ]
        in
        graph := g';
        exact)
  in
  let g', merged = Graph.add !graph (Op.Concat f.axis) parts in
  graph := g';
  graph := Graph.redirect !graph ~from_:last ~to_:merged;
  (* drop the original chain, last to first *)
  List.iter
    (fun v -> graph := Graph.remove !graph v)
    (List.rev f.chain);
  let keep =
    Int_set.add merged
      (Int_set.of_list
         (List.filter (fun v -> Graph.mem !graph v) (Graph.outputs g)))
  in
  graph := Graph.prune_dead ~keep !graph;
  { graph = !graph; replacement = merged }

(* ------------------------------------------------------------------ *)
(* Candidates and virtual accounting                                   *)
(* ------------------------------------------------------------------ *)

(** Maximal spatially splittable chains of [g] (length >= 2, single-use
    links), longest first. *)
let candidates (g : Graph.t) : t list =
  let in_chainable v = halo_of g v <> None in
  let continues v =
    match Graph.suc g v with
    | [ s ] -> in_chainable s && Graph.pre g s |> List.length >= 1
    | _ -> false
  in
  let starts v =
    in_chainable v
    &&
    let preds =
      List.filter (fun u -> not (Op.is_weight (Graph.op g u))) (Graph.pre g v)
    in
    match preds with
    | [ p ] -> not (in_chainable p && Graph.suc g p = [ v ])
    | _ -> false
  in
  let rec extend v acc =
    let acc = v :: acc in
    if continues v then
      match Graph.suc g v with
      | [ s ]
        when List.length
               (List.filter
                  (fun u -> not (Op.is_weight (Graph.op g u)))
                  (Graph.pre g s))
             = 1 ->
          extend s acc
      | _ -> List.rev acc
    else List.rev acc
  in
  Graph.fold
    (fun n acc ->
      if starts n.id && Shape.rank n.shape = 4 then
        let chain = extend n.id [] in
        if List.length chain >= 2 then
          let t = { chain; axis = 2; n = 2 } in
          if is_valid g t then t :: acc else acc
        else acc
      else acc)
    g []
  |> List.sort (fun a b -> compare (List.length b.chain) (List.length a.chain))

(** Virtual accounting, mirroring {!Ftree.accounting}: chain intermediates
    shrink to (step + 2·halo)/extent of their size; operators run [n]
    times on slabs, paying the halo recomputation and the boundary
    slice/concat traffic. *)
let accounting (cache : Op_cost.t) (g : Graph.t) (f : t) :
    (int -> int) * (int -> float) * float =
  let members = Int_set.of_list f.chain in
  let extent = Shape.dim (Graph.shape g (List.hd f.chain)) f.axis in
  let step = extent / f.n in
  let halo = Option.get (chain_halo g f.chain) in
  let slab_fraction =
    Float.min 1.0 (float_of_int (step + (2 * halo)) /. float_of_int extent)
  in
  let last = List.nth f.chain (List.length f.chain - 1) in
  let size_of v =
    let base = Lifetime.default_size g v in
    if Int_set.mem v members && v <> last then
      int_of_float (float_of_int base *. slab_fraction)
    else base
  in
  let cost_of v =
    let base = Op_cost.node_cost cache g v in
    if Int_set.mem v members then
      float_of_int f.n *. base *. slab_fraction
    else base
  in
  let hw = cache.Op_cost.hw in
  let boundary_bytes =
    2 * (Graph.size_bytes g (List.hd f.chain) + Graph.size_bytes g last)
  in
  let extra =
    (float_of_int boundary_bytes /. hw.Hardware.mem_bandwidth)
    +. (float_of_int (2 * f.n) *. hw.Hardware.launch_overhead)
  in
  (size_of, cost_of, extra)

let pp ppf f =
  Fmt.pf ppf "spatial(axis=%d, n=%d, chain=[%a])" f.axis f.n
    Fmt.(list ~sep:(any ",") int)
    f.chain
