(** Fission transformation (F-Trans, §4.2): split a sub-graph along a
    graph-level dimension into [n] sequentially executed parts.

    [validate] checks the paper's constraints (weak connectivity,
    convexity, unique dimension assignment, per-edge dimension links) plus
    the semantic side conditions (splittable axes, divisibility,
    consistent input slicing).  [expand] performs the real graph rewrite;
    the optimizer normally uses the virtual accounting in {!Ftree} and
    expands only final results. *)

open Magis_ir
module Int_map = Util.Int_map
module Int_set = Util.Int_set

type t = {
  members : Int_set.t;  (** the sub-graph S *)
  dims : int Int_map.t;
      (** node -> signed assigned dim (1-based; negative = reduce axis) *)
  n : int;  (** fission number; 1 = candidate not yet applied *)
}

val members : t -> Int_set.t
val fission_number : t -> int
val with_n : t -> int -> t

(** [(slot, input_dim_1based)] pairs of [v]'s operands feeding its
    assigned dimension [d]. *)
val feeding_slots : Graph.t -> int -> int -> (int * int) list

(** Extent of the assigned dimension (positive assignments only). *)
val assigned_extent : Graph.t -> int -> int -> int option

(** How each input of S participates in the split. *)
type input_role = Sliced of int  (** along this 1-based dim *) | Shared

(** Per-input roles; [Error] on inconsistent slicing requirements. *)
val input_roles : Graph.t -> t -> (input_role Int_map.t, string) result

val validate : Graph.t -> t -> (unit, string) result
val is_valid : Graph.t -> t -> bool

type expansion = {
  graph : Graph.t;
  replacements : int Int_map.t;
      (** original output node -> merged replacement node *)
  part_nodes : int list array;  (** nodes of each sequential part *)
}

(** Really rewrite the graph into [n] parts (slices, per-part copies,
    concat/reduction merges).  Raises [Invalid_argument] if invalid. *)
val expand : Graph.t -> t -> expansion

(** Per-part shapes of one member (assigned dims divided by [n]). *)
val scaled_shapes : Graph.t -> t -> int -> Shape.t array * Shape.t

val pp : Format.formatter -> t -> unit
