(** Spatial (halo) fission — the sliding-window splitting the paper's
    footnote 2 leaves to future work, restricted to *linear chains* of
    stride-1 "same"-padded convolutions/poolings and window-free
    operators in NCHW layout.  Each part's input slice is widened by the
    chain's accumulated halo, every layer runs on the widened slab, and
    the output slab is trimmed before concatenation.  The only fission
    lever for batch-1 high-resolution inference. *)

open Magis_ir
open Magis_cost

type t = {
  chain : int list;  (** chain members in dataflow order *)
  axis : int;  (** split axis: 2 (H) or 3 (W) *)
  n : int;  (** number of parts *)
}

(** Halo contributed by one operator, or [None] when it cannot join a
    spatial chain. *)
val halo_of : Graph.t -> int -> int option

(** Accumulated halo of the chain. *)
val chain_halo : Graph.t -> int list -> int option

val validate : Graph.t -> t -> (unit, string) result
val is_valid : Graph.t -> t -> bool

type expansion = { graph : Graph.t; replacement : int }

(** The real rewrite: haloed slices → chain-on-slab → trim → concat.
    Raises [Invalid_argument] if the fission does not validate. *)
val expand : Graph.t -> t -> expansion

(** Maximal spatially splittable chains, longest first. *)
val candidates : Graph.t -> t list

(** Virtual accounting [(size_of, cost_of, extra_latency)], mirroring
    {!Ftree.accounting}. *)
val accounting :
  Op_cost.t -> Graph.t -> t -> (int -> int) * (int -> float) * float

val pp : Format.formatter -> t -> unit
