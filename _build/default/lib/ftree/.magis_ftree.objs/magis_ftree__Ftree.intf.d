lib/ftree/ftree.mli: Fission Format Graph Magis_cost Magis_ir Op_cost Util
