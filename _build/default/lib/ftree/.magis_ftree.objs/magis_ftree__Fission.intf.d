lib/ftree/fission.mli: Format Graph Magis_ir Shape Util
