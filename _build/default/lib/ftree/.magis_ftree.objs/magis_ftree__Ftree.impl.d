lib/ftree/ftree.ml: Array Dgraph Dominator Fission Fmt Graph Hardware Int64 Lifetime List Magis_cost Magis_dgraph Magis_ir Op Op_cost Random Shape Util
