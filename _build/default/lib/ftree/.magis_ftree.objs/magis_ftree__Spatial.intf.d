lib/ftree/spatial.mli: Format Graph Magis_cost Magis_ir Op_cost
