lib/ftree/spatial.ml: Array Float Fmt Graph Hardware Lifetime List Magis_cost Magis_ir Op Op_cost Option Printf Shape Util
