lib/ftree/fission.ml: Array Fmt Graph Hashtbl List Magis_ir Op Printf Shape Util
