(** Fission Hierarchy Tree (F-Tree, §4.3 and §5.1 of the paper).

    The F-Tree abstracts the F-Trans search space: each tree node records a
    fission candidate [f = (S, D, n)]; a child's member set is contained in
    its parent's.  Nodes with [n = 1] are *disabled* candidates; [n > 1]
    means the sub-graph is (virtually) split into [n] parts.

    Construction follows Algorithm 1: memory hot-spots from the current
    schedule, one dominator tree per D-Graph component, the heat/score
    metrics of Eq. (3)/(4), and score-interval binning with [max_level]
    bins.

    Mutation rules (§5.1, Fig. 7): Enable, Lift, Disable, Mutate.

    [accounting] implements the virtual-fission cost/memory model used by
    the simulator during search: intermediate tensor sizes are divided by
    the enclosing split factors, operator costs multiply by the factor with
    per-part shapes (smaller operators ⇒ lower utilization ⇒ latency
    overhead), and the slicing/merging boundary work is charged as extra
    latency. *)

open Magis_ir
open Magis_cost
open Magis_dgraph
module Int_map = Util.Int_map
module Int_set = Util.Int_set

type entry = {
  fission : Fission.t;
  parent : int;  (** index of parent entry, or [-1] for roots *)
  children : int list;
}

type t = { entries : entry array }

let empty = { entries = [||] }
let n_entries t = Array.length t.entries
let entry t i = t.entries.(i)
let fission_at t i = t.entries.(i).fission
let n_at t i = (t.entries.(i).fission : Fission.t).n
let is_enabled t i = n_at t i > 1

let enabled_indices t =
  Array.to_list (Array.mapi (fun i _ -> i) t.entries)
  |> List.filter (fun i -> is_enabled t i)

let has_enabled_ancestor t i =
  let rec climb j =
    let p = t.entries.(j).parent in
    p >= 0 && (is_enabled t p || climb p)
  in
  climb i

let has_enabled_descendant t i =
  let rec down j =
    List.exists
      (fun c -> is_enabled t c || down c)
      t.entries.(j).children
  in
  down i

(** Union of member sets of all enabled entries — graph regions that other
    transformation rules must not cut across (§3). *)
let frozen_region t =
  List.fold_left
    (fun acc i -> Int_set.union acc (Fission.members (fission_at t i)))
    Int_set.empty (enabled_indices t)

(* ------------------------------------------------------------------ *)
(* Construction (Algorithm 1)                                         *)
(* ------------------------------------------------------------------ *)

(** Heat of every node (Eq. (3)) in one bottom-up pass over the dominator
    tree: [heat(v) = Σ_{w ∈ H ∩ T.des(v)} |w|]. *)
let heat_all (g : Graph.t) (dom : Dominator.t) (hotspots : Int_set.t)
    (members : Int_set.t) : int Int_map.t =
  let rec go v acc =
    let children = Dominator.children dom v in
    let acc = Int_set.fold go children acc in
    let own =
      Int_set.fold
        (fun c total ->
          total
          + (match Int_map.find_opt c acc with Some h -> h | None -> 0)
          + (if Int_set.mem c hotspots then Graph.size_bytes g c else 0))
        children 0
    in
    Int_map.add v own acc
  in
  (* roots: members whose idom is the virtual root or absent *)
  Int_set.fold
    (fun v acc ->
      match Dominator.idom dom v with
      | Some p when p = Dominator.virtual_root -> go v acc
      | _ -> acc)
    members Int_map.empty

(** Exact score of Eq. (4) for one node (needs its subtree's inputs). *)
let score_of (g : Graph.t) (dom : Dominator.t) (hotspots : Int_set.t)
    ~(heat : int) (v : int) : int =
  let sub = Dominator.strict_subtree dom v in
  let input_cost =
    Int_set.fold
      (fun u acc ->
        if Int_set.mem u hotspots then acc else acc + Graph.size_bytes g u)
      (Graph.inps_of g sub) 0
  in
  (* n = 2 in Eq. (4): (1 - 1/2) heat - Σ inputs *)
  (heat / 2) - input_cost

(** Smallest [n >= 2] for which the candidate validates, if any. *)
let smallest_valid_n (g : Graph.t) (f : Fission.t) : int option =
  let extent =
    Int_set.fold
      (fun v acc ->
        match Int_map.find_opt v (f : Fission.t).dims with
        | Some d when d > 0 -> (
            let e = Shape.dim (Graph.shape g v) (d - 1) in
            match acc with Some a -> Some (min a e) | None -> Some e)
        | _ -> acc)
      (Fission.members f) None
  in
  match extent with
  | None -> None
  | Some e ->
      let rec try_n n =
        if n > e then None
        else if e mod n = 0 && Fission.is_valid g (Fission.with_n f n) then
          Some n
        else try_n (n + 1)
      in
      try_n 2

(** Algorithm 1: construct the fission candidates for [g], given the
    memory hot-spots of its current schedule.  [max_level] is the paper's
    [L] hyper-parameter (default 4). *)
let construct ?(max_level = 4) (g : Graph.t) ~(hotspots : Int_set.t) : t =
  let dg = Dgraph.build g in
  let candidates = ref [] in
  List.iter
    (fun comp ->
      let gn = Dgraph.graph_nodes_of_component comp in
      if Util.Int_set.cardinal gn >= 2 then begin
        let dom = Dominator.compute ~members:gn g in
        let heats = heat_all g dom hotspots gn in
        (* exact scores only for the hottest nodes: score <= heat/2, so
           cool nodes cannot enter any band *)
        let by_heat =
          Int_map.bindings heats
          |> List.filter (fun (_, h) -> h > 0)
          |> List.sort (fun (_, a) (_, b) -> compare b a)
        in
        let scores =
          List.fold_left
            (fun acc (v, heat) ->
              Int_map.add v (score_of g dom hotspots ~heat v) acc)
            Int_map.empty
            (Util.take 96 by_heat)
        in
        let smax = Int_map.fold (fun _ s acc -> max s acc) scores 0 in
        if smax > 0 then
          for i = 1 to max_level do
            let in_band v =
              match Int_map.find_opt v scores with
              | None -> false
              | Some s ->
                  let lo = float_of_int i /. float_of_int max_level in
                  let hi = float_of_int (i + 1) /. float_of_int max_level in
                  let r = float_of_int s /. float_of_int smax in
                  r >= lo && r < hi
            in
            let band = Int_set.filter in_band gn in
            Int_set.iter
              (fun vdom ->
                let sub = Dominator.strict_subtree dom vdom in
                let deeper = Int_set.inter sub band in
                if Int_set.is_empty deeper && not (Int_set.is_empty sub)
                then
                  match Dgraph.restrict comp sub with
                  | None -> ()
                  | Some dims ->
                      if Int_map.cardinal dims = Int_set.cardinal sub then
                        let f : Fission.t = { members = sub; dims; n = 1 } in
                        if smallest_valid_n g f <> None then
                          candidates := f :: !candidates)
              band
          done
      end)
    (Dgraph.components dg);
  (* Deduplicate by member set, then assemble the forest by inclusion. *)
  let dedup =
    List.sort_uniq
      (fun (a : Fission.t) (b : Fission.t) ->
        Int_set.compare a.members b.members)
      !candidates
  in
  let sorted =
    List.sort
      (fun (a : Fission.t) (b : Fission.t) ->
        compare
          (Int_set.cardinal a.members, Int_set.min_elt_opt a.members)
          (Int_set.cardinal b.members, Int_set.min_elt_opt b.members))
      dedup
    |> Array.of_list
  in
  let n = Array.length sorted in
  let parent = Array.make n (-1) in
  for i = 0 to n - 1 do
    (* parent = smallest strictly-larger candidate containing i *)
    let rec find j =
      if j >= n then -1
      else if
        Int_set.cardinal (sorted.(j) : Fission.t).members
        > Int_set.cardinal (sorted.(i) : Fission.t).members
        && Int_set.subset (sorted.(i) : Fission.t).members
             (sorted.(j) : Fission.t).members
      then j
      else find (j + 1)
    in
    parent.(i) <- find (i + 1)
  done;
  let children = Array.make n [] in
  for i = n - 1 downto 0 do
    if parent.(i) >= 0 then children.(parent.(i)) <- i :: children.(parent.(i))
  done;
  let entries =
    Array.init n (fun i ->
        { fission = sorted.(i); parent = parent.(i); children = children.(i) })
  in
  { entries }

(* ------------------------------------------------------------------ *)
(* Mutation rules (§5.1)                                              *)
(* ------------------------------------------------------------------ *)

type mutation =
  | Enable of int  (** enable a disabled frontier node *)
  | Lift of int  (** move an enabled node's fission to its parent *)
  | Disable of int  (** disable an enabled node *)
  | Mutate of int  (** increase the fission number *)

let pp_mutation ppf = function
  | Enable i -> Fmt.pf ppf "enable(%d)" i
  | Lift i -> Fmt.pf ppf "lift(%d)" i
  | Disable i -> Fmt.pf ppf "disable(%d)" i
  | Mutate i -> Fmt.pf ppf "mutate(%d)" i

(** Combined split factor that entry [i] at fission number [n] would impose
    on member [v] along [v]'s dimension, counting enabled entries that
    assign the same dimension to [v]. *)
let combined_factor_on t v dim ~candidate ~n =
  List.fold_left
    (fun acc j ->
      if j = candidate then acc
      else
        let f = fission_at t j in
        match Int_map.find_opt v (f : Fission.t).dims with
        | Some d when d = dim -> acc * f.n
        | _ -> acc)
    n (enabled_indices t)

(** Would setting entry [i] to fission number [n] keep all extents
    divisible, accounting for other enabled entries splitting the same
    dimensions? *)
let n_is_feasible (g : Graph.t) (t : t) (i : int) (n : int) : bool =
  let f = fission_at t i in
  Fission.is_valid g (Fission.with_n f n)
  && Int_set.for_all
       (fun v ->
         match Int_map.find_opt v (f : Fission.t).dims with
         | Some d when d > 0 ->
             let total = combined_factor_on t v d ~candidate:i ~n in
             Shape.dim (Graph.shape g v) (d - 1) mod total = 0
         | _ -> true)
       (Fission.members f)

let smallest_feasible_n (g : Graph.t) (t : t) (i : int) : int option =
  let f = fission_at t i in
  match smallest_valid_n g f with
  | None -> None
  | Some n0 ->
      let rec go n =
        if n > 1024 then None
        else if n_is_feasible g t i n then Some n
        else go (n + 1)
      in
      go n0

let set_n (t : t) (i : int) (n : int) : t =
  let entries = Array.copy t.entries in
  entries.(i) <-
    { (entries.(i)) with fission = Fission.with_n entries.(i).fission n };
  { entries }

(** All mutations applicable to the current tree. *)
let mutations (g : Graph.t) (t : t) : mutation list =
  let ms = ref [] in
  Array.iteri
    (fun i e ->
      let enabled = is_enabled t i in
      if enabled then begin
        (* Disable: enabled node with no enabled descendant *)
        if not (has_enabled_descendant t i) then ms := Disable i :: !ms;
        (* Mutate: next feasible fission number *)
        let f = fission_at t i in
        let rec next n =
          if n > 1024 then None
          else if n_is_feasible g t i n then Some n
          else next (n + 1)
        in
        (match next ((f : Fission.t).n + 1) with
        | Some _ -> ms := Mutate i :: !ms
        | None -> ());
        (* Lift: enabled node without enabled ancestor, disabled parent *)
        if
          (not (has_enabled_ancestor t i))
          && e.parent >= 0
          && not (is_enabled t e.parent)
        then ms := Lift i :: !ms
      end
      else if not (has_enabled_ancestor t i) then begin
        (* Enable: disabled leaf, or disabled parent of an enabled node *)
        let frontier =
          e.children = [] || List.exists (fun c -> is_enabled t c) e.children
        in
        if frontier && smallest_feasible_n g t i <> None then
          ms := Enable i :: !ms
      end)
    t.entries;
  List.rev !ms

(** Apply a mutation; [None] if it is not applicable. *)
let apply (g : Graph.t) (t : t) (m : mutation) : t option =
  match m with
  | Enable i -> (
      if is_enabled t i || has_enabled_ancestor t i then None
      else
        match smallest_feasible_n g t i with
        | Some n -> Some (set_n t i n)
        | None -> None)
  | Disable i ->
      if is_enabled t i && not (has_enabled_descendant t i) then
        Some (set_n t i 1)
      else None
  | Lift i ->
      let e = t.entries.(i) in
      if
        is_enabled t i
        && (not (has_enabled_ancestor t i))
        && e.parent >= 0
        && not (is_enabled t e.parent)
      then
        let t' = set_n t i 1 in
        match smallest_feasible_n g t' e.parent with
        | Some n -> Some (set_n t' e.parent n)
        | None -> None
      else None
  | Mutate i ->
      if not (is_enabled t i) then None
      else
        let f = fission_at t i in
        let rec next n =
          if n > 1024 then None
          else if n_is_feasible g t i n then Some n
          else next (n + 1)
        in
        (match next ((f : Fission.t).n + 1) with
        | Some n -> Some (set_n t i n)
        | None -> None)

(* ------------------------------------------------------------------ *)
(* Virtual accounting                                                 *)
(* ------------------------------------------------------------------ *)

type accounting = {
  size_of : int -> int;  (** device bytes of a node's output *)
  cost_of : int -> float;  (** per-node latency incl. split execution *)
  extra_latency : float;  (** boundary slice/merge overhead *)
}

(** Build the virtual-fission accounting for graph [g] under tree [t].
    See the module header for the model. *)
let accounting (cache : Op_cost.t) (g : Graph.t) (t : t) : accounting =
  let enabled = enabled_indices t in
  match enabled with
  | [] ->
      {
        size_of = (fun v -> Lifetime.default_size g v);
        cost_of = (fun v -> Op_cost.node_cost cache g v);
        extra_latency = 0.0;
      }
  | _ ->
      let entries =
        List.map
          (fun i ->
            let f = fission_at t i in
            let outs = Graph.outs_of g (Fission.members f) in
            (i, f, outs))
          enabled
      in
      (* ancestor-product factor of each entry (nested regions execute
         their boundary work once per enclosing part) *)
      let ancestor_factor i =
        let rec climb j acc =
          let p = t.entries.(j).parent in
          if p < 0 then acc
          else climb p (if is_enabled t p then acc * n_at t p else acc)
        in
        climb i 1
      in
      let size_of v =
        let base = Lifetime.default_size g v in
        List.fold_left
          (fun acc (_, f, outs) ->
            if
              Int_set.mem v (Fission.members f)
              && not (Int_set.mem v outs)
            then acc / (f : Fission.t).n
            else acc)
          base entries
      in
      let cost_of v =
        let node = Graph.node g v in
        match node.op with
        | Op.Input _ | Op.Store | Op.Load -> 0.0
        | _ ->
            (* progressively scale shapes through each enclosing entry *)
            let ins =
              Array.map (fun i -> Graph.shape g i) node.inputs
            in
            let out = node.shape in
            let factor = ref 1 in
            let ins = ref ins and out = ref out in
            List.iter
              (fun (_, f, _) ->
                if Int_set.mem v (Fission.members f) then begin
                  factor := !factor * (f : Fission.t).n;
                  let d = Int_map.find v (f : Fission.t).dims in
                  let feeding = Fission.feeding_slots g v d in
                  ins :=
                    Array.mapi
                      (fun slot s ->
                        List.fold_left
                          (fun s (sl, i) ->
                            if
                              sl = slot
                              && Shape.dim s (i - 1) mod (f : Fission.t).n = 0
                            then Shape.split_dim s (i - 1) (f : Fission.t).n
                            else s)
                          s feeding)
                      !ins;
                  if
                    d > 0
                    && Shape.dim !out (d - 1) mod (f : Fission.t).n = 0
                  then out := Shape.split_dim !out (d - 1) (f : Fission.t).n
                end)
              entries;
            if !factor = 1 then Op_cost.node_cost cache g v
            else
              float_of_int !factor *. Op_cost.cost cache node.op !ins !out
      in
      let hw = (cache : Op_cost.t).hw in
      let extra_latency =
        List.fold_left
          (fun acc (i, f, outs) ->
            let fa = float_of_int (ancestor_factor i) in
            let n = float_of_int (f : Fission.t).n in
            let roles =
              match Fission.input_roles g f with
              | Ok r -> r
              | Error _ -> Int_map.empty
            in
            let sliced_bytes =
              Int_map.fold
                (fun u role acc ->
                  match role with
                  | Fission.Sliced _ -> acc + Graph.size_bytes g u
                  | Fission.Shared -> acc)
                roles 0
            in
            let out_bytes =
              Int_set.fold
                (fun v acc -> acc + Graph.size_bytes g v)
                outs 0
            in
            let bytes = float_of_int (2 * (sliced_bytes + out_bytes)) in
            let launches =
              n
              *. float_of_int
                   (Int_map.cardinal roles + Int_set.cardinal outs)
            in
            acc
            +. fa
               *. ((bytes /. hw.Hardware.mem_bandwidth)
                  +. (launches *. hw.Hardware.launch_overhead)))
          0.0 entries
      in
      { size_of; cost_of; extra_latency }

let pp ppf t =
  Array.iteri
    (fun i e ->
      Fmt.pf ppf "[%d] parent=%d n=%d |S|=%d@." i e.parent
        (e.fission : Fission.t).n
        (Int_set.cardinal (Fission.members e.fission)))
    t.entries

(** Build a tree directly from explicit fissions (tests, manual use);
    nesting is derived from member-set inclusion. *)
let of_fissions (fs : Fission.t list) : t =
  let sorted =
    List.sort
      (fun (a : Fission.t) (b : Fission.t) ->
        compare (Int_set.cardinal a.members) (Int_set.cardinal b.members))
      fs
    |> Array.of_list
  in
  let n = Array.length sorted in
  let parent = Array.make n (-1) in
  for i = 0 to n - 1 do
    let rec find j =
      if j >= n then -1
      else if
        j <> i
        && Int_set.cardinal (sorted.(j) : Fission.t).members
           > Int_set.cardinal (sorted.(i) : Fission.t).members
        && Int_set.subset (sorted.(i) : Fission.t).members
             (sorted.(j) : Fission.t).members
      then j
      else find (j + 1)
    in
    parent.(i) <- find (i + 1)
  done;
  let children = Array.make n [] in
  for i = n - 1 downto 0 do
    if parent.(i) >= 0 then children.(parent.(i)) <- i :: children.(parent.(i))
  done;
  {
    entries =
      Array.init n (fun i ->
          { fission = sorted.(i); parent = parent.(i); children = children.(i) });
  }

(* ------------------------------------------------------------------ *)
(* Maintenance across graph rewrites                                  *)
(* ------------------------------------------------------------------ *)

(** Structural fingerprint of the *enabled* fissions — combined with the
    graph hash to deduplicate search states (two states with the same
    graph but different virtual fissions are different). *)
let fingerprint (t : t) : int64 =
  List.fold_left
    (fun h i ->
      let f = fission_at t i in
      let h = Util.hash_combine h (Int64.of_int (f : Fission.t).n) in
      Int_set.fold
        (fun v h -> Util.hash_combine h (Int64.of_int v))
        (Fission.members f) h)
    0x5bd1e995L (enabled_indices t)

(** Drop entries whose member nodes no longer all exist in [g] (after a
    graph rewrite), re-parenting children to the nearest surviving
    ancestor. *)
let prune (g : Graph.t) (t : t) : t =
  let alive = Array.map
      (fun e ->
        Int_set.for_all (fun v -> Graph.mem g v) (Fission.members e.fission)
        && ((e.fission : Fission.t).n = 1 || Fission.is_valid g e.fission))
      t.entries
  in
  let n = Array.length t.entries in
  let new_index = Array.make n (-1) in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if alive.(i) then begin
      new_index.(i) <- !count;
      incr count
    end
  done;
  let rec surviving_parent i =
    let p = t.entries.(i).parent in
    if p < 0 then -1
    else if alive.(p) then new_index.(p)
    else surviving_parent p
  in
  let entries = Array.make !count { fission = { members = Int_set.empty; dims = Util.Int_map.empty; n = 1 }; parent = -1; children = [] } in
  for i = 0 to n - 1 do
    if alive.(i) then
      entries.(new_index.(i)) <-
        { fission = t.entries.(i).fission; parent = surviving_parent i; children = [] }
  done;
  (* rebuild children lists *)
  let children = Array.make !count [] in
  Array.iteri
    (fun i e -> if e.parent >= 0 then children.(e.parent) <- i :: children.(e.parent))
    entries;
  Array.iteri (fun i e -> entries.(i) <- { e with children = children.(i) }) entries;
  { entries }

(** Rebuild the candidate tree for a rewritten graph (Algorithm 1) while
    preserving the enabled fissions of [old_tree] that still validate:
    surviving enabled entries are matched by member set or appended as
    extra roots. *)
let refresh ?(max_level = 4) (g : Graph.t) ~(old_tree : t)
    ~(hotspots : Int_set.t) : t =
  let fresh = construct ~max_level g ~hotspots in
  let survivors =
    List.filter_map
      (fun i ->
        let f = fission_at old_tree i in
        if
          Int_set.for_all (fun v -> Graph.mem g v) (Fission.members f)
          && Fission.is_valid g f
        then Some f
        else None)
      (enabled_indices old_tree)
  in
  List.fold_left
    (fun t (f : Fission.t) ->
      let matching = ref (-1) in
      Array.iteri
        (fun i e ->
          if Int_set.equal (Fission.members e.fission) (Fission.members f)
          then matching := i)
        t.entries;
      if !matching >= 0 then set_n t !matching f.n
      else
        (* append as a root entry, adopting contained candidates *)
        let entries = Array.append t.entries [| { fission = f; parent = -1; children = [] } |] in
        { entries })
    fresh survivors

(** Naive candidate construction for the ablation study (Fig. 13,
    "naïve-fission"): pick random dominator nodes instead of the
    heat/score heuristic. *)
let construct_naive ?(seed = 42) ?(per_component = 4) (g : Graph.t) : t =
  let rng = Random.State.make [| seed |] in
  let dg = Dgraph.build g in
  let candidates = ref [] in
  List.iter
    (fun comp ->
      let gn = Dgraph.graph_nodes_of_component comp in
      if Util.Int_set.cardinal gn >= 2 then begin
        let dom = Dominator.compute ~members:gn g in
        let nodes = Array.of_list (Int_set.elements gn) in
        for _ = 1 to per_component do
          let v = nodes.(Random.State.int rng (Array.length nodes)) in
          let sub = Dominator.strict_subtree dom v in
          if not (Int_set.is_empty sub) then
            match Dgraph.restrict comp sub with
            | Some dims when Int_map.cardinal dims = Int_set.cardinal sub ->
                let f : Fission.t = { members = sub; dims; n = 1 } in
                if smallest_valid_n g f <> None then
                  candidates := f :: !candidates
            | _ -> ()
        done
      end)
    (Dgraph.components dg);
  let dedup =
    List.sort_uniq
      (fun (a : Fission.t) (b : Fission.t) ->
        Int_set.compare a.members b.members)
      !candidates
  in
  let entries =
    Array.of_list
      (List.map (fun f -> { fission = f; parent = -1; children = [] }) dedup)
  in
  { entries }
