(** Fission Hierarchy Tree (F-Tree, §4.3 / §5.1): the search space of
    fission transformations.

    Entries are fission candidates nested by member-set inclusion; a
    candidate with [n = 1] is disabled, [n > 1] means its region is
    (virtually) split into [n] parts.  Construction follows Algorithm 1;
    the mutation rules are the paper's Enable / Lift / Disable / Mutate;
    [accounting] is the virtual-fission cost/memory model the simulator
    uses during search. *)

open Magis_ir
open Magis_cost
module Int_map = Util.Int_map
module Int_set = Util.Int_set

type entry = {
  fission : Fission.t;
  parent : int;  (** index of the parent entry, or [-1] for roots *)
  children : int list;
}

type t

val empty : t
val n_entries : t -> int
val entry : t -> int -> entry
val fission_at : t -> int -> Fission.t
val n_at : t -> int -> int
val is_enabled : t -> int -> bool
val enabled_indices : t -> int list
val has_enabled_ancestor : t -> int -> bool
val has_enabled_descendant : t -> int -> bool
val set_n : t -> int -> int -> t

(** Union of enabled member sets: regions that structural rules must not
    cut across. *)
val frozen_region : t -> Int_set.t

(** Smallest feasible fission number of a candidate, if any. *)
val smallest_valid_n : Graph.t -> Fission.t -> int option

(** Algorithm 1: construct candidates from the memory hot-spots of the
    current schedule.  [max_level] is the paper's [L] (default 4). *)
val construct : ?max_level:int -> Graph.t -> hotspots:Int_set.t -> t

(** Build a tree from explicit fissions (nesting derived by inclusion). *)
val of_fissions : Fission.t list -> t

(** Random candidate selection (the Fig. 13 "naïve-fission" ablation). *)
val construct_naive : ?seed:int -> ?per_component:int -> Graph.t -> t

(** {1 Mutation rules (§5.1, Fig. 7)} *)

type mutation =
  | Enable of int
  | Lift of int
  | Disable of int
  | Mutate of int

val pp_mutation : Format.formatter -> mutation -> unit

(** Mutations applicable to the current tree. *)
val mutations : Graph.t -> t -> mutation list

(** Apply a mutation; [None] if not applicable. *)
val apply : Graph.t -> t -> mutation -> t option

(** {1 Maintenance across graph rewrites} *)

(** Fingerprint of the enabled fissions (combined with the WL graph hash
    to deduplicate search states). *)
val fingerprint : t -> int64

(** Drop entries invalidated by a graph rewrite, re-parenting children. *)
val prune : Graph.t -> t -> t

(** Rebuild candidates for a rewritten graph while preserving surviving
    enabled fissions. *)
val refresh : ?max_level:int -> Graph.t -> old_tree:t -> hotspots:Int_set.t -> t

(** {1 Virtual accounting} *)

type accounting = {
  size_of : int -> int;  (** device bytes of a node's output *)
  cost_of : int -> float;  (** per-node latency incl. split execution *)
  extra_latency : float;  (** boundary slice/merge overhead *)
}

(** Cost/memory model of the enabled fissions: split intermediates
    shrink, split operators run [n] times at per-part shapes, region
    boundaries pay slice/merge work. *)
val accounting : Op_cost.t -> Graph.t -> t -> accounting

val pp : Format.formatter -> t -> unit
