(** Fission transformation (F-Trans, §4.2 of the paper).

    An F-Trans [f = (S, D, n)] splits the sub-graph induced by [S] along a
    graph-level dimension [D] (a connected component of the D-Graph
    restricted to [S], represented as a per-node dimension assignment) into
    [n] parts executed sequentially:

    - inputs of [S] whose dims link into the split dimension are sliced per
      part, the others are shared;
    - outputs assigned a positive (spatial) dimension are merged by
      concatenation; outputs assigned a reduce axis are merged by the
      operator's reduction (e.g. partial weight-gradients are added);
    - intermediates live only during their part, which is where the memory
      saving comes from (Eq. (1)).

    [validate] checks the paper's constraints (weak connectivity,
    convexity, exactly one assigned dim per member, dimension links along
    every internal edge) plus the semantic side-conditions (splittable
    axes, divisibility, consistent input slicing).  [expand] performs the
    real graph rewrite; the optimizer instead uses the *virtual*
    accounting in {!Ftree} and only expands the final result. *)

open Magis_ir
module Int_map = Util.Int_map
module Int_set = Util.Int_set

type t = {
  members : Int_set.t;  (** S *)
  dims : int Int_map.t;  (** node -> signed assigned dim (1-based) *)
  n : int;  (** fission number; 1 = candidate not yet applied *)
}

let members f = f.members
let fission_number f = f.n
let with_n f n = { f with n }

(* ------------------------------------------------------------------ *)
(* Dimension-link helpers                                             *)
(* ------------------------------------------------------------------ *)

let in_shapes g (n : Graph.node) =
  Array.map (fun i -> Graph.shape g i) n.inputs

(** All (slot, input-dim, link) triples of node [v]. *)
let links_of g v =
  let n = Graph.node g v in
  Op.links n.op (in_shapes g n) n.shape

(** Signed dim targeted by a link. *)
let link_target = function
  | Op.To_out j -> j + 1
  | Op.To_reduce j -> -(j + 1)

(** For node [v] with assigned signed dim [d], the input slicing it
    requires: [(slot, input_dim_1based)] pairs whose input dims feed [d]. *)
let feeding_slots g v d =
  List.filter_map
    (fun (slot, in_dim, link) ->
      if link_target link = d then Some (slot, in_dim + 1) else None)
    (links_of g v)

(** Extent of the assigned dimension of [v] (positive assignments only). *)
let assigned_extent g v d =
  if d > 0 then Some (Shape.dim (Graph.shape g v) (d - 1)) else None

(* ------------------------------------------------------------------ *)
(* Input slicing map                                                  *)
(* ------------------------------------------------------------------ *)

(** How each input of [S] participates: [Sliced dim] (1-based) or
    [Shared].  Fails on inconsistent requirements. *)
type input_role = Sliced of int | Shared

let input_roles (g : Graph.t) (f : t) : (input_role Int_map.t, string) result
    =
  let exception Conflict of string in
  try
    let roles =
      Int_set.fold
        (fun v acc ->
          match Int_map.find_opt v f.dims with
          | None -> acc
          | Some d ->
              let node = Graph.node g v in
              List.fold_left
                (fun acc (slot, in_dim) ->
                  let u = node.inputs.(slot) in
                  if Int_set.mem u f.members then acc
                  else
                    match Int_map.find_opt u acc with
                    | Some (Sliced i) when i <> in_dim ->
                        raise
                          (Conflict
                             (Printf.sprintf
                                "input %d sliced along both dim %d and %d" u
                                i in_dim))
                    | _ -> Int_map.add u (Sliced in_dim) acc)
                acc (feeding_slots g v d))
        f.members Int_map.empty
    in
    (* remaining inputs are shared *)
    let all =
      Int_set.fold
        (fun u acc ->
          if Int_map.mem u acc then acc else Int_map.add u Shared acc)
        (Graph.inps_of g f.members)
        roles
    in
    Ok all
  with Conflict msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Validation                                                         *)
(* ------------------------------------------------------------------ *)

let validate (g : Graph.t) (f : t) : (unit, string) result =
  let ( let* ) r k = match r with Error _ as e -> e | Ok x -> k x in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Int_set.is_empty f.members then err "empty member set"
  else if f.n < 1 then err "fission number < 1"
  else if not (Int_set.for_all (fun v -> Graph.mem g v) f.members) then
    err "members not in graph"
  else if
    not (Int_set.for_all (fun v -> Int_map.mem v f.dims) f.members)
    || Int_map.cardinal f.dims <> Int_set.cardinal f.members
  then err "dimension assignment must cover exactly the members"
  else if not (Graph.is_weakly_connected g f.members) then
    err "sub-graph not weakly connected"
  else if not (Graph.is_convex g f.members) then err "sub-graph not convex"
  else
    (* member-level checks *)
    let* () =
      Int_set.fold
        (fun v acc ->
          let* () = acc in
          let node = Graph.node g v in
          let d = Int_map.find v f.dims in
          if Op.is_input node.op then
            if d > 0 then Ok () else err "input node assigned a reduce axis"
          else if d > 0 then begin
            let ins = in_shapes g node in
            let bad = Op.unsplittable_out_dims node.op ins node.shape in
            if List.mem (d - 1) bad then
              err "node %d: dim %d not splittable for %s" v d
                (Op.name node.op)
            else if d > Shape.rank node.shape then
              err "node %d: dim %d out of range" v d
            else if Shape.dim node.shape (d - 1) mod f.n <> 0 then
              err "node %d: extent %d not divisible by %d" v
                (Shape.dim node.shape (d - 1))
                f.n
            else Ok ()
          end
          else if Op.reduce_merge node.op = `No_merge then
            err "node %d: %s cannot merge partial results" v
              (Op.name node.op)
          else Ok ())
        f.members (Ok ())
    in
    (* every internal edge must link the two assigned dims *)
    let* () =
      Int_set.fold
        (fun v acc ->
          let* () = acc in
          let node = Graph.node g v in
          if Op.is_input node.op then Ok ()
          else
            let d = Int_map.find v f.dims in
            let feeding = feeding_slots g v d in
            Array.to_list node.inputs
            |> List.mapi (fun slot u -> (slot, u))
            |> List.fold_left
                 (fun acc (slot, u) ->
                   let* () = acc in
                   if not (Int_set.mem u f.members) then Ok ()
                   else
                     let du = Int_map.find u f.dims in
                     if du <= 0 then
                       err "edge %d->%d: producer merged by reduction" u v
                     else if
                       List.exists
                         (fun (s, i) -> s = slot && i = du)
                         feeding
                     then Ok ()
                     else
                       err "edge %d->%d: dims %d/%d not linked" u v du d)
                 (Ok ())
        )
        f.members (Ok ())
    in
    (* input slicing must be consistent and divisible *)
    let* roles = input_roles g f in
    Int_map.fold
      (fun u role acc ->
        let* () = acc in
        match role with
        | Shared -> Ok ()
        | Sliced i ->
            let s = Graph.shape g u in
            if Shape.dim s (i - 1) mod f.n <> 0 then
              err "input %d: extent %d not divisible by %d" u
                (Shape.dim s (i - 1))
                f.n
            else Ok ())
      roles (Ok ())

let is_valid g f = match validate g f with Ok () -> true | Error _ -> false

(* ------------------------------------------------------------------ *)
(* Expansion: the real graph rewrite                                  *)
(* ------------------------------------------------------------------ *)

(** Shape-bearing operator attributes must shrink along the assigned
    dimension of a split copy (a reshape's target dims, a broadcast's
    target dims); every other attribute is extent-free. *)
let split_op_attrs (op : Op.kind) ~(d : int) ~(n : int) : Op.kind =
  match op with
  | Op.Reshape dims when d >= 1 && d <= Array.length dims && dims.(d - 1) mod n = 0 ->
      let dims = Array.copy dims in
      dims.(d - 1) <- dims.(d - 1) / n;
      Op.Reshape dims
  | Op.Broadcast { dims; axes }
    when d >= 1 && d <= Array.length dims && dims.(d - 1) mod n = 0 ->
      let dims = Array.copy dims in
      dims.(d - 1) <- dims.(d - 1) / n;
      Op.Broadcast { dims; axes }
  | op -> op

type expansion = {
  graph : Graph.t;
  replacements : int Int_map.t;
      (** original output node -> merged replacement node *)
  part_nodes : int list array;  (** nodes of each sequential part *)
}

(** [expand g f] rewrites [g], really splitting the sub-graph into [f.n]
    sequentially executed parts.  Raises [Invalid_argument] if [f] does not
    validate. *)
let expand (g : Graph.t) (f : t) : expansion =
  (match validate g f with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fission.expand: " ^ msg));
  if f.n = 1 then
    { graph = g; replacements = Int_map.empty; part_nodes = [| [] |] }
  else
    let roles =
      match input_roles g f with Ok r -> r | Error m -> invalid_arg m
    in
    let outs = Graph.outs_of g f.members in
    (* members in topological order *)
    let member_order =
      List.filter (fun v -> Int_set.mem v f.members) (Graph.topo_order g)
    in
    let graph = ref g in
    (* slices of sliced inputs, per part *)
    let input_slices : (int, int array) Hashtbl.t = Hashtbl.create 8 in
    Int_map.iter
      (fun u role ->
        match role with
        | Shared -> ()
        | Sliced i ->
            let extent = Shape.dim (Graph.shape g u) (i - 1) in
            let step = extent / f.n in
            let ids =
              Array.init f.n (fun p ->
                  let g', id =
                    Graph.add !graph
                      (Op.Slice { axis = i - 1; lo = p * step; hi = (p + 1) * step })
                      [ u ]
                  in
                  graph := g';
                  id)
            in
            Hashtbl.replace input_slices u ids)
      roles;
    (* copy members per part *)
    let copies : (int, int array) Hashtbl.t = Hashtbl.create 16 in
    let part_nodes = Array.make f.n [] in
    List.iter
      (fun v ->
        let node = Graph.node !graph v in
        let ids =
          Array.init f.n (fun p ->
              if Op.is_input node.op then begin
                (* an input node *inside* S: split it by slicing itself *)
                let d = Int_map.find v f.dims in
                let extent = Shape.dim node.shape (d - 1) in
                let step = extent / f.n in
                let g', id =
                  Graph.add !graph
                    (Op.Slice { axis = d - 1; lo = p * step; hi = (p + 1) * step })
                    [ v ]
                in
                graph := g';
                id
              end
              else begin
                let map_input u =
                  if Int_set.mem u f.members then (Hashtbl.find copies u).(p)
                  else
                    match Hashtbl.find_opt input_slices u with
                    | Some ids -> ids.(p)
                    | None -> u
                in
                let inputs =
                  Array.to_list (Array.map map_input node.inputs)
                in
                let d = Int_map.find v f.dims in
                let op =
                  if d > 0 then split_op_attrs node.op ~d ~n:f.n else node.op
                in
                let g', id = Graph.add ~label:node.label !graph op inputs in
                graph := g';
                id
              end)
        in
        Hashtbl.replace copies v ids;
        Array.iteri (fun p id -> part_nodes.(p) <- id :: part_nodes.(p)) ids)
      member_order;
    Array.iteri (fun p l -> part_nodes.(p) <- List.rev l) part_nodes;
    (* merge outputs and redirect consumers *)
    let replacements = ref Int_map.empty in
    Int_set.iter
      (fun v ->
        let d = Int_map.find v f.dims in
        let parts = Array.to_list (Hashtbl.find copies v) in
        let merged =
          if d > 0 then begin
            let g', id = Graph.add !graph (Op.Concat (d - 1)) parts in
            graph := g';
            id
          end
          else
            let merge_op =
              match Op.reduce_merge (Graph.op g v) with
              | `Sum -> Op.Binary Op.Add
              | `Max -> Op.Binary Op.Max
              | `No_merge -> assert false (* excluded by validate *)
            in
            List.fold_left
              (fun acc p ->
                let g', id = Graph.add !graph merge_op [ acc; p ] in
                graph := g';
                id)
              (List.hd parts) (List.tl parts)
        in
        replacements := Int_map.add v merged !replacements;
        graph := Graph.redirect !graph ~from_:v ~to_:merged)
      outs;
    (* remove the original member nodes (reverse topological order) *)
    List.iter
      (fun v ->
        if not (Op.is_input (Graph.op !graph v)) then graph := Graph.remove !graph v)
      (List.rev member_order);
    let keep =
      Int_set.union
        (Int_map.fold (fun _ id acc -> Int_set.add id acc) !replacements
           Int_set.empty)
        (Int_set.of_list
           (List.filter (fun v -> Graph.mem !graph v) (Graph.outputs g)))
    in
    graph := Graph.prune_dead ~keep !graph;
    { graph = !graph; replacements = !replacements; part_nodes }

(* ------------------------------------------------------------------ *)
(* Virtual (analytic) accounting helpers                              *)
(* ------------------------------------------------------------------ *)

(** Scaled shapes of node [v] under this fission (its share of one part):
    the assigned output dim and the input dims feeding it are divided by
    [f.n].  Used for the per-part cost estimate. *)
let scaled_shapes (g : Graph.t) (f : t) (v : int) :
    Shape.t array * Shape.t =
  let node = Graph.node g v in
  let d = Int_map.find v f.dims in
  let ins = in_shapes g node in
  let feeding = feeding_slots g v d in
  let ins =
    Array.mapi
      (fun slot s ->
        List.fold_left
          (fun s (sl, i) ->
            if sl = slot && Shape.dim s (i - 1) mod f.n = 0 then
              Shape.split_dim s (i - 1) f.n
            else s)
          s feeding)
      ins
  in
  let out =
    if d > 0 && Shape.dim node.shape (d - 1) mod f.n = 0 then
      Shape.split_dim node.shape (d - 1) f.n
    else node.shape
  in
  (ins, out)

let pp ppf f =
  Fmt.pf ppf "fission(n=%d, S={%a})" f.n
    Fmt.(list ~sep:(any ",") int)
    (Int_set.elements f.members)
