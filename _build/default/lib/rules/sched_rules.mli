(** Scheduling-based transformation rules (§5.2, Fig. 8):
    re-materialization and swapping as graph rewrites — Store/Load are
    ordinary operators — so the scheduling phase only re-orders. *)

open Magis_ir

(** Producer whose recomputation is nearly free (memory-bound). *)
val cheap_to_recompute : Graph.t -> int -> bool

(** Fig. 8 (e): Store/Load between a producer and a distant consumer. *)
val swapping : Rule.t

(** Fig. 8 (f): remove a Store/Load pair. *)
val de_swapping : Rule.t

(** Fig. 8 (a)(b): detach one consumer onto a re-computed copy. *)
val rematerialization : Rule.t

(** Fig. 8 (c)(d): merge same-op same-input duplicates. *)
val de_rematerialization : Rule.t

(** Compound: re-materialize every cheap hot tensor in one rewrite, with
    copies consuming copies (checkpointing-style chains). *)
val sweep_rematerialization : Rule.t

(** Compound: swap the k largest hot tensors at once (k = 2, 4, 8). *)
val sweep_swapping : Rule.t

(** The paper's four rules. *)
val basic : Rule.t list

(** [basic] plus the compound sweep rules. *)
val all : Rule.t list
