(** TASO-style transformation rules (§5, Fig. 1 (a)(b)): A-Trans merges
    parallel operators sharing an input (the QKV aggregation); I-Trans are
    algebraic clean-ups enabling other transformations. *)

(** Merge parallel Dense/Matmul/Conv2d siblings into one operator followed
    by slices. *)
val merge_parallel : Rule.t

(** concat(slice, slice) of one tensor collapses. *)
val concat_of_slices : Rule.t

(** transpose∘transpose with inverse permutations collapses. *)
val transpose_pairs : Rule.t

(** (a + b) + c -> a + (b + c). *)
val add_reassociate : Rule.t

val a_trans : Rule.t list
val i_trans : Rule.t list
val all : Rule.t list
