lib/rules/taso_rules.ml: Array Fun Graph List Magis_ir Op Rule Shape Util
