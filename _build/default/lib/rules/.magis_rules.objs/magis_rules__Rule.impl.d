lib/rules/rule.ml: Graph Magis_ir Util
