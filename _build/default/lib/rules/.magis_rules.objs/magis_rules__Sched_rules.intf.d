lib/rules/sched_rules.mli: Graph Magis_ir Rule
