lib/rules/taso_rules.mli: Rule
