lib/rules/sched_rules.ml: Array Graph Hashtbl List Magis_ir Op Printf Rule Shape Util
