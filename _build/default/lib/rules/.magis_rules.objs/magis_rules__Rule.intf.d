lib/rules/rule.mli: Graph Magis_ir Util
