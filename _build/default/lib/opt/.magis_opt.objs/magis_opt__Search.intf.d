lib/opt/search.mli: Graph Magis_cost Magis_ir Mstate Op_cost
