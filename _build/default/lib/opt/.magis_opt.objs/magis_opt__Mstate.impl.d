lib/opt/mstate.ml: Fmt Ftree Graph Lifetime Magis_cost Magis_ftree Magis_ir Magis_sched Op_cost Reorder Simulator Util
