lib/opt/mstate.mli: Format Ftree Graph Magis_cost Magis_ftree Magis_ir Op_cost Util
