(** Convolutional workload builders: U-Net and U-Net++ (the paper's
    complex inter-cell-connection subjects), plus VDSR-style
    super-resolution and DenseNet stacks used by the extension
    experiments. *)

open Magis_ir

val conv_block :
  ?convs:int -> Builder.t -> int -> in_ch:int -> out_ch:int ->
  dtype:Shape.dtype -> int

(** 2x transposed-convolution upsampling. *)
val up : Builder.t -> int -> in_ch:int -> out_ch:int -> dtype:Shape.dtype -> int

(** Forward U-Net inside an existing builder; returns the logits node. *)
val forward_unet :
  ?dtype:Shape.dtype -> ?classes:int -> batch:int -> image:int -> base:int ->
  depth:int -> Builder.t -> int

(** U-Net training graph. *)
val build_unet :
  ?dtype:Shape.dtype -> ?classes:int -> batch:int -> image:int -> base:int ->
  depth:int -> unit -> Graph.t

(** Inference-only U-Net (edge deployment). *)
val unet_inference :
  ?dtype:Shape.dtype -> ?classes:int -> batch:int -> image:int -> base:int ->
  depth:int -> unit -> Graph.t

(** U-Net++ training graph (dense nested skip pathways). *)
val build_unetpp :
  ?dtype:Shape.dtype -> ?classes:int -> batch:int -> image:int -> base:int ->
  depth:int -> unit -> Graph.t

(** VDSR-style super-resolution chain (batch-1 inference; the spatial
    fission subject). *)
val srnet_inference :
  ?dtype:Shape.dtype -> ?channels:int -> ?depth:int -> image:int -> unit ->
  Graph.t

(** DenseNet-style training graph (the paper's §2.3 long-skip citation). *)
val densenet_training :
  ?dtype:Shape.dtype -> ?growth:int -> ?layers:int -> ?blocks:int ->
  batch:int -> image:int -> unit -> Graph.t
