(** A small imperative DSL for constructing computation graphs.

    A [Builder.t] wraps a growing {!Magis_ir.Graph.t}; each combinator adds
    one operator node and returns its id.  [finish] extracts the immutable
    graph. *)

open Magis_ir

type t = { mutable g : Graph.t }

let create () = { g = Graph.empty }
let finish b = b.g
let graph b = b.g
let shape b id = Graph.shape b.g id

let input ?(label = "x") b dims ~dtype =
  let g, id = Graph.add_input ~label b.g Op.Placeholder (Shape.create ~dtype dims) in
  b.g <- g;
  id

let weight ?(label = "w") b dims ~dtype =
  let g, id = Graph.add_input ~label b.g Op.Weight (Shape.create ~dtype dims) in
  b.g <- g;
  id

let label_input ?(label = "y") b dims ~dtype =
  let g, id = Graph.add_input ~label b.g Op.Label (Shape.create ~dtype dims) in
  b.g <- g;
  id

let op ?(label = "") b kind inputs =
  let g, id = Graph.add ~label b.g kind inputs in
  b.g <- g;
  id

(* shorthand combinators *)
let matmul ?(trans_a = false) ?(trans_b = false) b a w =
  op b (Op.Matmul { trans_a; trans_b }) [ a; w ]

let dense ?(trans_w = false) b x w = op b (Op.Dense { trans_w }) [ x; w ]
let bmm ?(trans_a = false) ?(trans_b = false) b a c =
  op b (Op.Batch_matmul { trans_a; trans_b }) [ a; c ]

let conv2d ?(stride = 1) ?(padding = 0) b x w =
  op b (Op.Conv2d { stride; padding }) [ x; w ]

let maxpool2d ?(kernel = 2) ?(stride = 2) b x =
  op b (Op.Pool2d { p_kind = Op.P_max; kernel; p_stride = stride }) [ x ]

let avgpool2d ?(kernel = 2) ?(stride = 2) b x =
  op b (Op.Pool2d { p_kind = Op.P_avg; kernel; p_stride = stride }) [ x ]

let relu b x = op b (Op.Unary Op.Relu) [ x ]
let gelu b x = op b (Op.Unary Op.Gelu) [ x ]
let tanh_ b x = op b (Op.Unary Op.Tanh) [ x ]
let sigmoid b x = op b (Op.Unary Op.Sigmoid) [ x ]
let dropout b x = op b (Op.Unary Op.Dropout) [ x ]
let scale b f x = op b (Op.Unary (Op.Scale f)) [ x ]
let add b x y = op b (Op.Binary Op.Add) [ x; y ]
let sub b x y = op b (Op.Binary Op.Sub) [ x; y ]
let mul b x y = op b (Op.Binary Op.Mul) [ x; y ]
let bias_add ?(axis = 1) b x bias = op b (Op.Bias_add axis) [ x; bias ]
let softmax b ~axis x = op b (Op.Softmax axis) [ x ]
let layer_norm b ~axis x gamma beta = op b (Op.Layer_norm axis) [ x; gamma; beta ]
let batch_norm b x gamma beta = op b Op.Batch_norm [ x; gamma; beta ]
let reduce_sum b ~axes x = op b (Op.Reduce (Op.R_sum, axes)) [ x ]
let reduce_mean b ~axes x = op b (Op.Reduce (Op.R_mean, axes)) [ x ]
let transpose b ~perm x = op b (Op.Transpose perm) [ x ]
let reshape b ~dims x = op b (Op.Reshape dims) [ x ]
let slice b ~axis ~lo ~hi x = op b (Op.Slice { axis; lo; hi }) [ x ]
let concat b ~axis xs = op b (Op.Concat axis) xs
let embedding b table ids = op b Op.Embedding [ table; ids ]

(** Transposed convolution for decoder upsampling, realized as the data
    gradient of a strided convolution. *)
let deconv2d ?(stride = 2) b x w =
  op b (Op.Conv2d_bwd_data { stride; padding = 0 }) [ x; w ]

(** Linear layer: dense + bias along the last axis. *)
let linear b x w bias =
  let y = dense b x w in
  let r = Shape.rank (shape b y) in
  bias_add ~axis:(r - 1) b y bias

(** Scalar training loss: sum-reduce every axis of [pred]. *)
let sum_loss b pred =
  let r = Shape.rank (shape b pred) in
  reduce_sum b ~axes:(List.init r Fun.id) pred
