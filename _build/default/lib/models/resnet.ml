(** ResNet (He et al., CVPR'16) training-graph builder.

    Bottleneck-block ResNet in NCHW layout with frozen batch-norm (the
    memory optimizer treats BN as a per-channel affine transform; see
    DESIGN.md).  [resnet50] matches the paper's Table 2 row
    (batch 64, image 224); [build ~blocks ~image] allows depth-reduced
    variants for quick benchmarking. *)

open Magis_ir
module B = Builder

let conv_bn_relu ?(relu = true) ?(stride = 1) ?(padding = 0) b x ~in_ch
    ~out_ch ~kernel ~dtype =
  let w = B.weight b [ out_ch; in_ch; kernel; kernel ] ~dtype in
  let y = B.conv2d ~stride ~padding b x w in
  let gamma = B.weight b [ out_ch ] ~dtype in
  let beta = B.weight b [ out_ch ] ~dtype in
  let y = B.batch_norm b y gamma beta in
  if relu then B.relu b y else y

let bottleneck b x ~in_ch ~mid ~out_ch ~stride ~dtype =
  let y = conv_bn_relu b x ~in_ch ~out_ch:mid ~kernel:1 ~dtype in
  let y = conv_bn_relu ~stride ~padding:1 b y ~in_ch:mid ~out_ch:mid ~kernel:3 ~dtype in
  let y = conv_bn_relu ~relu:false b y ~in_ch:mid ~out_ch ~kernel:1 ~dtype in
  let skip =
    if in_ch <> out_ch || stride <> 1 then
      conv_bn_relu ~relu:false ~stride b x ~in_ch ~out_ch ~kernel:1 ~dtype
    else x
  in
  B.relu b (B.add b y skip)

(** [build ~batch ~image ~blocks ()] constructs the ResNet training graph.
    [blocks] gives the number of bottlenecks per stage
    (ResNet-50 = [3;4;6;3]). *)
let build ?(dtype = Shape.TF32) ~batch ~image ~blocks () : Graph.t =
  let b = B.create () in
  let x = B.input b [ batch; 3; image; image ] ~dtype in
  (* stem: 7x7/2 conv + 2x2 pool *)
  let y = conv_bn_relu ~stride:2 ~padding:3 b x ~in_ch:3 ~out_ch:64 ~kernel:7 ~dtype in
  let y = B.maxpool2d ~kernel:2 ~stride:2 b y in
  let stage y ~n ~in_ch ~mid ~out_ch ~stride =
    let y = ref (bottleneck b y ~in_ch ~mid ~out_ch ~stride ~dtype) in
    for _ = 2 to n do
      y := bottleneck b !y ~in_ch:out_ch ~mid ~out_ch ~stride:1 ~dtype
    done;
    !y
  in
  let n1, n2, n3, n4 =
    match blocks with
    | [ a; b; c; d ] -> (a, b, c, d)
    | _ -> invalid_arg "Resnet.build: blocks must have 4 stages"
  in
  let y = stage y ~n:n1 ~in_ch:64 ~mid:64 ~out_ch:256 ~stride:1 in
  let y = stage y ~n:n2 ~in_ch:256 ~mid:128 ~out_ch:512 ~stride:2 in
  let y = stage y ~n:n3 ~in_ch:512 ~mid:256 ~out_ch:1024 ~stride:2 in
  let y = stage y ~n:n4 ~in_ch:1024 ~mid:512 ~out_ch:2048 ~stride:2 in
  (* head: global average pool + classifier *)
  let hw = Shape.dim (B.shape b y) 2 in
  let y = B.avgpool2d ~kernel:hw ~stride:hw b y in
  let y = B.reshape b ~dims:[| batch; 2048 |] y in
  let w = B.weight b [ 2048; 1000 ] ~dtype in
  let bias = B.weight b [ 1000 ] ~dtype in
  let logits = B.linear b y w bias in
  let loss = B.sum_loss b logits in
  Autodiff.backward (B.finish b) ~loss

let resnet50 ?(batch = 64) ?(image = 224) () =
  build ~batch ~image ~blocks:[ 3; 4; 6; 3 ] ()
