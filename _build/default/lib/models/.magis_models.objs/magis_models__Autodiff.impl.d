lib/models/autodiff.ml: Array Fun Graph List Magis_ir Op Shape Util
