lib/models/transformer.mli: Builder Graph Magis_ir Shape
