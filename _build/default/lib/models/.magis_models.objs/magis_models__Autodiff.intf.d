lib/models/autodiff.mli: Graph Magis_ir Util
