lib/models/randnet.mli: Graph Magis_ir
