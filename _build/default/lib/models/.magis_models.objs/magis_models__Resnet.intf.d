lib/models/resnet.mli: Graph Magis_ir Shape
