lib/models/transformer.ml: Autodiff Builder Graph Magis_ir Shape
