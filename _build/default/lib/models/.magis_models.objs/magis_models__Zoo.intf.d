lib/models/zoo.mli: Graph Magis_ir
