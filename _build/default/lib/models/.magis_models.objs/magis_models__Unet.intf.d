lib/models/unet.mli: Builder Graph Magis_ir Shape
