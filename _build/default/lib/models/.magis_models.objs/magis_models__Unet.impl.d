lib/models/unet.ml: Array Autodiff Builder Graph List Magis_ir Shape
