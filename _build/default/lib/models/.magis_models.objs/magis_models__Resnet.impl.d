lib/models/resnet.ml: Autodiff Builder Graph Magis_ir Shape
