lib/models/zoo.ml: Graph List Magis_ir Printf Resnet String Transformer Unet
