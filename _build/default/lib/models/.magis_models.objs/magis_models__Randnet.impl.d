lib/models/randnet.ml: Array Autodiff Builder Graph Hashtbl List Magis_ir Random Shape
