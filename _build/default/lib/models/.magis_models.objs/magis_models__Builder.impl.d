lib/models/builder.ml: Fun Graph List Magis_ir Op Shape
