(** U-Net (Ronneberger et al., MICCAI'15) and U-Net++ (Zhou et al.,
    DLMIA'18) training-graph builders.

    These are the paper's "complicated inter-cell connection" workloads:
    long skip connections keep encoder activations alive deep into the
    decoder, creating the memory hot-spots MAGIS exploits.  Upsampling is a
    transposed convolution (realized as [Conv2d_bwd_data]). *)

open Magis_ir
module B = Builder

let conv_block ?(convs = 2) b x ~in_ch ~out_ch ~dtype =
  let y = ref x and ch = ref in_ch in
  for _ = 1 to convs do
    let w = B.weight b [ out_ch; !ch; 3; 3 ] ~dtype in
    let c = B.conv2d ~padding:1 b !y w in
    let gamma = B.weight b [ out_ch ] ~dtype in
    let beta = B.weight b [ out_ch ] ~dtype in
    y := B.relu b (B.batch_norm b c gamma beta);
    ch := out_ch
  done;
  !y

(** 2x transposed-convolution upsampling from [in_ch] to [out_ch]. *)
let up b x ~in_ch ~out_ch ~dtype =
  let w = B.weight b [ in_ch; out_ch; 2; 2 ] ~dtype in
  B.deconv2d ~stride:2 b x w

(** Forward pass of a U-Net inside an existing builder; returns the
    logits node.  Used for inference graphs (edge deployment) and as the
    body of {!build_unet}. *)
let forward_unet ?(dtype = Shape.TF32) ?(classes = 2) ~batch ~image ~base
    ~depth (b : B.t) : int =
  let x = B.input b [ batch; 3; image; image ] ~dtype in
  (* encoder *)
  let skips = ref [] in
  let y = ref x and ch = ref 3 in
  for level = 0 to depth - 1 do
    let out_ch = base * (1 lsl level) in
    let conv = conv_block b !y ~in_ch:!ch ~out_ch ~dtype in
    skips := conv :: !skips;
    y := B.maxpool2d b conv;
    ch := out_ch
  done;
  (* bottleneck *)
  let bot_ch = base * (1 lsl depth) in
  let y = ref (conv_block b !y ~in_ch:!ch ~out_ch:bot_ch ~dtype) in
  let ch = ref bot_ch in
  (* decoder *)
  List.iteri
    (fun i skip ->
      let level = depth - 1 - i in
      let out_ch = base * (1 lsl level) in
      let u = up b !y ~in_ch:!ch ~out_ch ~dtype in
      let cat = B.concat b ~axis:1 [ skip; u ] in
      y := conv_block b cat ~in_ch:(2 * out_ch) ~out_ch ~dtype;
      ch := out_ch)
    !skips;
  let w_out = B.weight b [ classes; !ch; 1; 1 ] ~dtype in
  B.conv2d b !y w_out

(** [build_unet ~batch ~image ~base ~depth ()] builds the U-Net *training*
    graph ([depth] encoder levels, [base] channels at the top level). *)
let build_unet ?dtype ?classes ~batch ~image ~base ~depth () : Graph.t =
  let b = B.create () in
  let logits = forward_unet ?dtype ?classes ~batch ~image ~base ~depth b in
  let loss = B.sum_loss b logits in
  Autodiff.backward (B.finish b) ~loss

(** Inference-only U-Net (the paper's mobile-deployment motivation:
    high-resolution image models on memory-limited devices). *)
let unet_inference ?dtype ?classes ~batch ~image ~base ~depth () : Graph.t =
  let b = B.create () in
  let _ = forward_unet ?dtype ?classes ~batch ~image ~base ~depth b in
  B.finish b

(** U-Net++ with dense nested skip pathways:
    [x.(i).(j) = conv(concat(x.(i).(0..j-1), up(x.(i+1).(j-1))))]. *)
let build_unetpp ?(dtype = Shape.TF32) ?(classes = 2) ~batch ~image ~base
    ~depth () : Graph.t =
  let b = B.create () in
  let input = B.input b [ batch; 3; image; image ] ~dtype in
  let ch level = base * (1 lsl level) in
  (* backbone column x.(i).(0) *)
  let x = Array.make_matrix (depth + 1) (depth + 1) (-1) in
  let y = ref input and c = ref 3 in
  for i = 0 to depth do
    if i > 0 then y := B.maxpool2d b !y;
    x.(i).(0) <- conv_block b !y ~in_ch:!c ~out_ch:(ch i) ~dtype;
    y := x.(i).(0);
    c := ch i
  done;
  (* nested decoder nodes *)
  for j = 1 to depth do
    for i = 0 to depth - j do
      let u = up b x.(i + 1).(j - 1) ~in_ch:(ch (i + 1)) ~out_ch:(ch i) ~dtype in
      let prior = List.init j (fun k -> x.(i).(k)) in
      let cat = B.concat b ~axis:1 (prior @ [ u ]) in
      let in_ch = (j + 1) * ch i in
      x.(i).(j) <- conv_block ~convs:1 b cat ~in_ch ~out_ch:(ch i) ~dtype
    done
  done;
  let w_out = B.weight b [ classes; ch 0; 1; 1 ] ~dtype in
  let logits = B.conv2d b x.(0).(depth) w_out in
  let loss = B.sum_loss b logits in
  Autodiff.backward (B.finish b) ~loss

(** VDSR-style super-resolution network: a deep chain of stride-1
    "same"-padded convolutions at full resolution with a global residual —
    the classic mobile image-restoration workload, and the ideal subject
    for the spatial (halo) fission extension: at batch 1 every big
    intermediate lives on the conv chain. *)
let srnet_inference ?(dtype = Shape.TF32) ?(channels = 64) ?(depth = 12)
    ~image () : Graph.t =
  let b = B.create () in
  let x = B.input b [ 1; 3; image; image ] ~dtype in
  let w_in = B.weight b [ channels; 3; 3; 3 ] ~dtype in
  let h = ref (B.relu b (B.conv2d ~padding:1 b x w_in)) in
  for _ = 1 to depth do
    let w = B.weight b [ channels; channels; 3; 3 ] ~dtype in
    h := B.relu b (B.conv2d ~padding:1 b !h w)
  done;
  let w_out = B.weight b [ 3; channels; 3; 3 ] ~dtype in
  let residual = B.conv2d ~padding:1 b !h w_out in
  let _ = B.add b x residual in
  B.finish b

(** DenseNet-style block stack (Huang et al., CVPR'17 — the paper's §2.3
    citation for long skip connections): every layer's input is the
    concatenation of all earlier feature maps in the block, so early
    activations stay live through the whole block — a dense version of
    the memory hot-spot pattern. *)
let densenet_training ?(dtype = Shape.TF32) ?(growth = 8) ?(layers = 6)
    ?(blocks = 2) ~batch ~image () : Graph.t =
  let b = B.create () in
  let x = B.input b [ batch; 3; image; image ] ~dtype in
  let w0 = B.weight b [ 2 * growth; 3; 3; 3 ] ~dtype in
  let stem = B.relu b (B.conv2d ~padding:1 b x w0) in
  let block input in_ch =
    let features = ref [ input ] and ch = ref in_ch in
    for _ = 1 to layers do
      let cat =
        match !features with [ one ] -> one | l -> B.concat b ~axis:1 (List.rev l)
      in
      let w = B.weight b [ growth; !ch; 3; 3 ] ~dtype in
      let f = B.relu b (B.conv2d ~padding:1 b cat w) in
      features := f :: !features;
      ch := !ch + growth
    done;
    (B.concat b ~axis:1 (List.rev !features), !ch)
  in
  let y = ref stem and ch = ref (2 * growth) in
  for i = 1 to blocks do
    let out, out_ch = block !y !ch in
    (* transition: 1x1 conv + pool, except after the last block *)
    if i < blocks then begin
      let w = B.weight b [ out_ch / 2; out_ch; 1; 1 ] ~dtype in
      y := B.maxpool2d b (B.relu b (B.conv2d b out w));
      ch := out_ch / 2
    end
    else begin
      y := out;
      ch := out_ch
    end
  done;
  let w_out = B.weight b [ 10; !ch; 1; 1 ] ~dtype in
  let logits = B.conv2d b !y w_out in
  let loss = B.sum_loss b logits in
  Autodiff.backward (B.finish b) ~loss
