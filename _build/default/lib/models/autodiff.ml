(** Reverse-mode automatic differentiation over computation graphs.

    [backward g ~loss] extends [g] with the gradient computation of every
    weight reachable from [loss], producing the *training graph* that the
    memory optimizer operates on.  The structural property that matters for
    the paper is faithfully reproduced: forward activations are consumed by
    backward operators, so they stay live across the whole forward pass —
    the dominant source of peak memory in DNN training.

    Numerical shortcuts (documented, cost-neutral):
    - activation derivatives use a same-family surrogate unary op (e.g. the
      backward of ReLU is [dy * relu(x)] instead of [dy * 1_{x>0}]) — same
      shapes, same operator class, same cost;
    - the loss must be a full reduction; its gradient seed is a placeholder
      with the pre-reduction shape (ones in a real system). *)

open Magis_ir
module Int_map = Util.Int_map

type grad_env = { mutable g : Graph.t; mutable grads : int Int_map.t }

let add_op env kind inputs =
  let g, id = Graph.add env.g kind inputs in
  env.g <- g;
  id

(** Accumulate gradient [dg] into node [v]'s gradient slot. *)
let accumulate env v dg =
  match Int_map.find_opt v env.grads with
  | None -> env.grads <- Int_map.add v dg env.grads
  | Some existing ->
      let sum = add_op env (Op.Binary Op.Add) [ existing; dg ] in
      env.grads <- Int_map.add v sum env.grads

let inv_perm perm =
  let inv = Array.make (Array.length perm) 0 in
  Array.iteri (fun i p -> inv.(p) <- i) perm;
  inv

(** Propagate [dy] through node [n], accumulating input gradients. *)
let backprop_node env (g0 : Graph.t) (n : Graph.node) (dy : int) : unit =
  let in_ i = n.inputs.(i) in
  let in_shape i = Graph.shape g0 (in_ i) in
  let acc i dg = accumulate env (in_ i) dg in
  match n.op with
  | Op.Input _ -> ()
  | Op.Matmul { trans_a; trans_b } ->
      (* c = a.b (with views); da = dc.b^T, db = a^T.dc for the plain case;
         transposed views permute the flags accordingly *)
      let da =
        if trans_a then
          add_op env (Op.Matmul { trans_a = trans_b; trans_b = true }) [ in_ 1; dy ]
        else add_op env (Op.Matmul { trans_a = false; trans_b = not trans_b }) [ dy; in_ 1 ]
      in
      let db =
        if trans_b then
          add_op env (Op.Matmul { trans_a = true; trans_b = trans_a }) [ dy; in_ 0 ]
        else add_op env (Op.Matmul { trans_a = not trans_a; trans_b = false }) [ in_ 0; dy ]
      in
      acc 0 da;
      acc 1 db
  | Op.Dense { trans_w } ->
      let dx = add_op env (Op.Dense { trans_w = not trans_w }) [ dy; in_ 1 ] in
      let dw =
        if trans_w then add_op env Op.Dense_bwd_weight [ dy; in_ 0 ]
        else add_op env Op.Dense_bwd_weight [ in_ 0; dy ]
      in
      acc 0 dx;
      acc 1 dw
  | Op.Dense_bwd_weight -> () (* not differentiated further *)
  | Op.Batch_matmul { trans_a; trans_b } ->
      let da =
        if trans_a then
          add_op env (Op.Batch_matmul { trans_a = trans_b; trans_b = true }) [ in_ 1; dy ]
        else
          add_op env (Op.Batch_matmul { trans_a = false; trans_b = not trans_b }) [ dy; in_ 1 ]
      in
      let db =
        if trans_b then
          add_op env (Op.Batch_matmul { trans_a = true; trans_b = trans_a }) [ dy; in_ 0 ]
        else
          add_op env (Op.Batch_matmul { trans_a = not trans_a; trans_b = false }) [ in_ 0; dy ]
      in
      acc 0 da;
      acc 1 db
  | Op.Conv2d attrs ->
      let dx = add_op env (Op.Conv2d_bwd_data attrs) [ dy; in_ 1; in_ 0 ] in
      let dw = add_op env (Op.Conv2d_bwd_weight attrs) [ dy; in_ 0; in_ 1 ] in
      acc 0 dx;
      acc 1 dw
  | Op.Conv2d_bwd_data _ | Op.Conv2d_bwd_weight _ | Op.Pool2d_bwd _
  | Op.Softmax_bwd _ | Op.Layer_norm_bwd _ | Op.Embedding_bwd | Op.Store
  | Op.Load ->
      () (* backward-only operators *)
  | Op.Pool2d attrs -> acc 0 (add_op env (Op.Pool2d_bwd attrs) [ dy; in_ 0 ])
  | Op.Unary Op.Identity -> acc 0 dy
  | Op.Unary Op.Neg -> acc 0 (add_op env (Op.Unary Op.Neg) [ dy ])
  | Op.Unary (Op.Scale f) -> acc 0 (add_op env (Op.Unary (Op.Scale f)) [ dy ])
  | Op.Unary u ->
      (* surrogate derivative from the same unary family (cost-neutral) *)
      let deriv = add_op env (Op.Unary u) [ in_ 0 ] in
      acc 0 (add_op env (Op.Binary Op.Mul) [ dy; deriv ])
  | Op.Binary Op.Add ->
      acc 0 dy;
      acc 1 dy
  | Op.Binary Op.Sub ->
      acc 0 dy;
      acc 1 (add_op env (Op.Unary Op.Neg) [ dy ])
  | Op.Binary Op.Mul ->
      acc 0 (add_op env (Op.Binary Op.Mul) [ dy; in_ 1 ]);
      acc 1 (add_op env (Op.Binary Op.Mul) [ dy; in_ 0 ])
  | Op.Binary Op.Div ->
      acc 0 (add_op env (Op.Binary Op.Div) [ dy; in_ 1 ]);
      let num = add_op env (Op.Binary Op.Mul) [ dy; in_ 0 ] in
      acc 1 (add_op env (Op.Unary Op.Neg) [ num ])
  | Op.Binary Op.Max ->
      (* surrogate: route the gradient through both branches halved *)
      acc 0 (add_op env (Op.Unary (Op.Scale 0.5)) [ dy ]);
      acc 1 (add_op env (Op.Unary (Op.Scale 0.5)) [ dy ])
  | Op.Bias_add axis ->
      acc 0 dy;
      let r = Shape.rank n.shape in
      let axes = List.filter (fun i -> i <> axis) (List.init r Fun.id) in
      acc 1 (add_op env (Op.Reduce (Op.R_sum, axes)) [ dy ])
  | Op.Softmax axis ->
      acc 0 (add_op env (Op.Softmax_bwd axis) [ dy; n.id ])
  | Op.Layer_norm axis ->
      let dx = add_op env (Op.Layer_norm_bwd axis) [ dy; in_ 0; in_ 2 ] in
      acc 0 dx;
      let r = Shape.rank n.shape in
      let lead = List.init axis Fun.id in
      let dyx = add_op env (Op.Binary Op.Mul) [ dy; n.id ] in
      if lead <> [] then begin
        acc 2 (add_op env (Op.Reduce (Op.R_sum, lead)) [ dyx ]);
        acc 1 (add_op env (Op.Reduce (Op.R_sum, lead)) [ dy ])
      end;
      ignore r
  | Op.Batch_norm ->
      (* frozen affine BN: dx is another affine transform of dy *)
      let zero = in_ 2 in
      let dx = add_op env Op.Batch_norm [ dy; in_ 1; zero ] in
      acc 0 dx;
      let dyx = add_op env (Op.Binary Op.Mul) [ dy; in_ 0 ] in
      acc 1 (add_op env (Op.Reduce (Op.R_sum, [ 0; 2; 3 ])) [ dyx ]);
      acc 2 (add_op env (Op.Reduce (Op.R_sum, [ 0; 2; 3 ])) [ dy ])
  | Op.Reduce (kind, axes) ->
      let dims = Shape.dims (in_shape 0) in
      let bc = add_op env (Op.Broadcast { dims; axes }) [ dy ] in
      let dg =
        match kind with
        | Op.R_sum | Op.R_max -> bc
        | Op.R_mean ->
            let k =
              List.fold_left (fun acc a -> acc * dims.(a)) 1 axes
            in
            add_op env (Op.Unary (Op.Scale (1.0 /. float_of_int k))) [ bc ]
      in
      acc 0 dg
  | Op.Broadcast { axes; _ } ->
      acc 0 (add_op env (Op.Reduce (Op.R_sum, axes)) [ dy ])
  | Op.Transpose perm ->
      acc 0 (add_op env (Op.Transpose (inv_perm perm)) [ dy ])
  | Op.Reshape _ ->
      let dims = Shape.dims (in_shape 0) in
      acc 0 (add_op env (Op.Reshape dims) [ dy ])
  | Op.Slice _ -> () (* no padding op; slices only appear post-optimization *)
  | Op.Concat axis ->
      let lo = ref 0 in
      Array.iteri
        (fun slot u ->
          let extent = Shape.dim (Graph.shape g0 u) axis in
          let dslice =
            add_op env
              (Op.Slice { axis; lo = !lo; hi = !lo + extent })
              [ dy ]
          in
          lo := !lo + extent;
          accumulate env n.inputs.(slot) dslice)
        n.inputs
  | Op.Embedding ->
      acc 0 (add_op env Op.Embedding_bwd [ dy; in_ 1; in_ 0 ])

(** [grad_table g ~loss] extends [g] with the backward pass and returns the
    new graph together with the node->gradient mapping.  [loss] must be a
    full sum/mean reduction; the backward pass is seeded at the reduction's
    input with a placeholder of the same shape. *)
let grad_table (g : Graph.t) ~(loss : int) : Graph.t * int Int_map.t =
  let loss_node = Graph.node g loss in
  let seed_at, seed_shape =
    match loss_node.op with
    | Op.Reduce (_, _) -> (loss_node.inputs.(0), Graph.shape g loss_node.inputs.(0))
    | _ -> (loss, loss_node.shape)
  in
  let env = { g; grads = Int_map.empty } in
  let g', seed =
    Graph.add_input ~label:"grad_seed" env.g Op.Label seed_shape
  in
  env.g <- g';
  env.grads <- Int_map.add seed_at seed env.grads;
  let order = List.rev (Graph.topo_order g) in
  List.iter
    (fun v ->
      match Int_map.find_opt v env.grads with
      | None -> ()
      | Some dy -> backprop_node env g (Graph.node g v) dy)
    order;
  (env.g, env.grads)

(** Training graph: forward plus gradients of every reachable weight. *)
let backward (g : Graph.t) ~(loss : int) : Graph.t =
  fst (grad_table g ~loss)
