(** Transformer training-graph builders: BERT-style encoders, ViT and
    GPT-style decoder LMs (pre-LN blocks: LN -> QKV -> scaled dot-product
    attention -> projection -> residual -> LN -> 4x MLP -> residual). *)

open Magis_ir

type config = {
  batch : int;
  seq_len : int;
  hidden : int;
  heads : int;
  layers : int;
  vocab : int;
  dtype : Shape.dtype;
}

val bert_base :
  ?batch:int -> ?seq_len:int -> ?layers:int -> ?vocab:int -> unit -> config

val vit_base :
  ?batch:int -> ?image:int -> ?patch:int -> ?layers:int -> unit -> config

val gpt_neo_1_3b :
  ?batch:int -> ?seq_len:int -> ?layers:int -> ?vocab:int -> unit -> config

val btlm_3b :
  ?batch:int -> ?seq_len:int -> ?layers:int -> ?vocab:int -> unit -> config

(** One pre-LN transformer block on a [B,T,C] tensor (exposed for the
    examples and tests). *)
val block : Builder.t -> int -> config -> int

(** Language-model training graph: embedding, blocks, LM head, loss,
    backward. *)
val build_lm : config -> Graph.t

(** Vision-transformer training graph: conv patch embedding, blocks,
    mean-pooled classifier. *)
val build_vit : ?image:int -> ?patch:int -> config -> Graph.t
