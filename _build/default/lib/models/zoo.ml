(** The paper's evaluation workloads (Table 2), each buildable at two
    scales: [Full] matches the paper's configuration; [Quick] keeps the
    architecture and per-layer shapes but reduces depth / resolution /
    vocabulary so the whole benchmark suite runs in minutes on a CPU. *)

open Magis_ir

type scale = Quick | Full

type workload = {
  name : string;
  batch : int;
  config : string;  (** Table 2 "other configuration" column *)
  build : scale -> Graph.t;
}

let resnet50 =
  {
    name = "ResNet-50";
    batch = 64;
    config = "image-size=224";
    build =
      (function
      | Full -> Resnet.resnet50 ~batch:64 ~image:224 ()
      | Quick -> Resnet.build ~batch:64 ~image:64 ~blocks:[ 1; 1; 1; 1 ] ());
  }

let bert =
  {
    name = "BERT-base";
    batch = 32;
    config = "sequence-length=512";
    build =
      (function
      | Full -> Transformer.build_lm (Transformer.bert_base ())
      | Quick ->
          Transformer.build_lm
            (Transformer.bert_base ~seq_len:128 ~layers:2 ~vocab:2048 ()));
  }

let vit =
  {
    name = "ViT-base";
    batch = 64;
    config = "image-size=224, patch-size=16";
    build =
      (function
      | Full ->
          Transformer.build_vit ~image:224 ~patch:16 (Transformer.vit_base ())
      | Quick ->
          Transformer.build_vit ~image:128 ~patch:16
            (Transformer.vit_base ~image:128 ~patch:16 ~layers:2 ()));
  }

let unet =
  {
    name = "UNet";
    batch = 32;
    config = "image-size=256";
    build =
      (function
      | Full -> Unet.build_unet ~batch:32 ~image:256 ~base:64 ~depth:4 ()
      | Quick -> Unet.build_unet ~batch:32 ~image:64 ~base:16 ~depth:3 ());
  }

let unetpp =
  {
    name = "UNet++";
    batch = 16;
    config = "image-size=256";
    build =
      (function
      | Full -> Unet.build_unetpp ~batch:16 ~image:256 ~base:32 ~depth:4 ()
      | Quick -> Unet.build_unetpp ~batch:16 ~image:64 ~base:8 ~depth:3 ());
  }

let gpt_neo =
  {
    name = "GPT-Neo";
    batch = 32;
    config = "sequence-length=512";
    build =
      (function
      | Full -> Transformer.build_lm (Transformer.gpt_neo_1_3b ())
      | Quick ->
          Transformer.build_lm
            (Transformer.gpt_neo_1_3b ~seq_len:128 ~layers:2 ~vocab:4096 ()));
  }

let btlm =
  {
    name = "BTLM";
    batch = 32;
    config = "sequence-length=512";
    build =
      (function
      | Full -> Transformer.build_lm (Transformer.btlm_3b ())
      | Quick ->
          Transformer.build_lm
            (Transformer.btlm_3b ~seq_len:128 ~layers:2 ~vocab:4096 ()));
  }

let all = [ resnet50; bert; vit; unet; unetpp; gpt_neo; btlm ]

let find name =
  match
    List.find_opt
      (fun w -> String.lowercase_ascii w.name = String.lowercase_ascii name)
      all
  with
  | Some w -> w
  | None ->
      invalid_arg
        (Printf.sprintf "Zoo.find: unknown workload %s (expected one of %s)"
           name
           (String.concat ", " (List.map (fun w -> w.name) all)))
