(** Random NASNet-like DNN generator (used by the paper's Fig. 14 to stress
    incremental vs full scheduling on irregularly wired networks).

    Each cell has [nodes_per_cell] internal nodes; every internal node
    combines two randomly chosen earlier tensors with a random operation
    (1x1 conv, 3x3 conv, pooling+projection, or add); the cell output
    concatenates the loose ends and projects back to the cell width. *)

open Magis_ir
module B = Builder

type config = {
  cells : int;
  nodes_per_cell : int;
  channels : int;
  image : int;
  batch : int;
  seed : int;
}

let default =
  { cells = 4; nodes_per_cell = 5; channels = 32; image = 32; batch = 8; seed = 1 }

let conv1x1 b x ~ch ~dtype =
  let in_ch = Shape.dim (B.shape b x) 1 in
  let w = B.weight b [ ch; in_ch; 1; 1 ] ~dtype in
  B.relu b (B.conv2d b x w)

let conv3x3 b x ~ch ~dtype =
  let in_ch = Shape.dim (B.shape b x) 1 in
  let w = B.weight b [ ch; in_ch; 3; 3 ] ~dtype in
  B.relu b (B.conv2d ~padding:1 b x w)

let cell rng b x ~cfg ~dtype =
  let ch = cfg.channels in
  let tensors = ref [| x |] in
  let used = Hashtbl.create 8 in
  for _ = 1 to cfg.nodes_per_cell do
    let pick () =
      let i = Random.State.int rng (Array.length !tensors) in
      Hashtbl.replace used i ();
      !tensors.(i)
    in
    let a = pick () and c = pick () in
    let combined =
      match Random.State.int rng 4 with
      | 0 -> B.add b (conv1x1 b a ~ch ~dtype) (conv1x1 b c ~ch ~dtype)
      | 1 -> B.add b (conv3x3 b a ~ch ~dtype) (conv1x1 b c ~ch ~dtype)
      | 2 -> B.add b (conv3x3 b a ~ch ~dtype) (conv3x3 b c ~ch ~dtype)
      | _ ->
          let p = B.maxpool2d ~kernel:1 ~stride:1 b a in
          B.add b (conv1x1 b p ~ch ~dtype) (conv1x1 b c ~ch ~dtype)
    in
    tensors := Array.append !tensors [| combined |]
  done;
  (* concat loose ends, project back to the cell width *)
  let loose =
    Array.to_list !tensors
    |> List.filteri (fun i _ -> not (Hashtbl.mem used i))
  in
  match loose with
  | [] -> !tensors.(Array.length !tensors - 1)
  | [ one ] -> conv1x1 b one ~ch ~dtype
  | many -> conv1x1 b (B.concat b ~axis:1 many) ~ch ~dtype

(** Build the training graph of a random network with the given seed. *)
let build ?(cfg = default) () : Graph.t =
  let rng = Random.State.make [| cfg.seed |] in
  let dtype = Shape.TF32 in
  let b = B.create () in
  let x = B.input b [ cfg.batch; 3; cfg.image; cfg.image ] ~dtype in
  let y = ref (conv1x1 b x ~ch:cfg.channels ~dtype) in
  for _ = 1 to cfg.cells do
    y := cell rng b !y ~cfg ~dtype
  done;
  let w = B.weight b [ 10; cfg.channels; 1; 1 ] ~dtype in
  let logits = B.conv2d b !y w in
  let loss = B.sum_loss b logits in
  Autodiff.backward (B.finish b) ~loss
