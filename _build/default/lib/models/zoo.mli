(** The paper's evaluation workloads (Table 2), buildable at [Full]
    (paper-scale) or [Quick] (depth/resolution-reduced, same per-layer
    structure) scale. *)

open Magis_ir

type scale = Quick | Full

type workload = {
  name : string;
  batch : int;
  config : string;  (** the Table 2 "other configuration" column *)
  build : scale -> Graph.t;
}

val resnet50 : workload
val bert : workload
val vit : workload
val unet : workload
val unetpp : workload
val gpt_neo : workload
val btlm : workload

(** All seven, in Table 2 order. *)
val all : workload list

(** Case-insensitive lookup; raises [Invalid_argument] on unknown names. *)
val find : string -> workload
