(** Reverse-mode automatic differentiation: extend a forward graph with
    its backward pass, producing the training graphs the optimizer works
    on.  Activation derivatives use cost-neutral same-family surrogates;
    the loss must be a full reduction (the gradient seed is a label-kind
    placeholder at the reduction's input).  See the implementation header
    for the documented numerical shortcuts. *)

open Magis_ir
module Int_map = Util.Int_map

(** Extend [g] with the backward pass; returns the new graph and the
    node -> gradient-node mapping. *)
val grad_table : Graph.t -> loss:int -> Graph.t * int Int_map.t

(** Training graph: forward plus gradients of every reachable weight. *)
val backward : Graph.t -> loss:int -> Graph.t
