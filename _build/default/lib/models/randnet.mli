(** Random NASNet-like DNN generator (the paper's Fig. 14 subjects):
    cells of randomly wired convolution/add nodes with a concat-project
    output, deterministic per seed. *)

open Magis_ir

type config = {
  cells : int;
  nodes_per_cell : int;
  channels : int;
  image : int;
  batch : int;
  seed : int;
}

val default : config

(** Training graph of the random network. *)
val build : ?cfg:config -> unit -> Graph.t
