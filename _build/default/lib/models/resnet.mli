(** ResNet (He et al., CVPR'16) training-graph builder: bottleneck blocks
    in NCHW layout with frozen batch-norm (see DESIGN.md). *)

open Magis_ir

(** [build ~batch ~image ~blocks ()] with [blocks] the bottleneck counts
    of the four stages (ResNet-50 = [3;4;6;3]). *)
val build :
  ?dtype:Shape.dtype -> batch:int -> image:int -> blocks:int list -> unit ->
  Graph.t

val resnet50 : ?batch:int -> ?image:int -> unit -> Graph.t
