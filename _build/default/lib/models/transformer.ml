(** Transformer training-graph builders: BERT-style encoders, ViT, and
    GPT-style decoder LMs (GPT-Neo, BTLM).

    Blocks follow the standard pre-LN architecture: LN → QKV projections →
    scaled dot-product attention (batched matmuls + softmax) → output
    projection → residual, then LN → 4x MLP → residual.  Positional
    embeddings are folded into the token embedding (a LayerNorm follows it)
    — structurally irrelevant for memory optimization. *)

open Magis_ir
module B = Builder

type config = {
  batch : int;
  seq_len : int;
  hidden : int;
  heads : int;
  layers : int;
  vocab : int;
  dtype : Shape.dtype;
}

let bert_base ?(batch = 32) ?(seq_len = 512) ?(layers = 12) ?(vocab = 30522)
    () =
  { batch; seq_len; hidden = 768; heads = 12; layers; vocab; dtype = Shape.TF32 }

let vit_base ?(batch = 64) ?(image = 224) ?(patch = 16) ?(layers = 12) () =
  let seq_len = image / patch * (image / patch) in
  { batch; seq_len; hidden = 768; heads = 12; layers; vocab = 1000; dtype = Shape.TF32 }

let gpt_neo_1_3b ?(batch = 32) ?(seq_len = 512) ?(layers = 24) ?(vocab = 50257)
    () =
  { batch; seq_len; hidden = 2048; heads = 16; layers; vocab; dtype = Shape.BF16 }

let btlm_3b ?(batch = 32) ?(seq_len = 512) ?(layers = 32) ?(vocab = 50257) () =
  { batch; seq_len; hidden = 2560; heads = 20; layers; vocab; dtype = Shape.BF16 }

let layer_norm_last b x ~hidden ~dtype =
  let gamma = B.weight b [ hidden ] ~dtype in
  let beta = B.weight b [ hidden ] ~dtype in
  let r = Shape.rank (B.shape b x) in
  B.layer_norm b ~axis:(r - 1) x gamma beta

(** One pre-LN transformer block on a [B,T,C] tensor. *)
let block b x (c : config) =
  let { batch; seq_len; hidden; heads; dtype; _ } = c in
  let hd = hidden / heads in
  let to_heads t =
    let t = B.reshape b ~dims:[| batch; seq_len; heads; hd |] t in
    B.transpose b ~perm:[| 0; 2; 1; 3 |] t
  in
  let ln1 = layer_norm_last b x ~hidden ~dtype in
  let proj label =
    let w = B.weight ~label b [ hidden; hidden ] ~dtype in
    to_heads (B.dense b ln1 w)
  in
  let q = proj "wq" and k = proj "wk" and v = proj "wv" in
  let att = B.bmm ~trans_b:true b q k in
  let att = B.scale b (1.0 /. sqrt (float_of_int hd)) att in
  let att = B.softmax b ~axis:3 att in
  let ctx = B.bmm b att v in
  let ctx = B.transpose b ~perm:[| 0; 2; 1; 3 |] ctx in
  let ctx = B.reshape b ~dims:[| batch; seq_len; hidden |] ctx in
  let wo = B.weight ~label:"wo" b [ hidden; hidden ] ~dtype in
  let x = B.add b x (B.dense b ctx wo) in
  (* MLP *)
  let ln2 = layer_norm_last b x ~hidden ~dtype in
  let w1 = B.weight ~label:"w_up" b [ hidden; 4 * hidden ] ~dtype in
  let w2 = B.weight ~label:"w_down" b [ 4 * hidden; hidden ] ~dtype in
  let h = B.gelu b (B.dense b ln2 w1) in
  B.add b x (B.dense b h w2)

(** Language-model training graph (BERT / GPT-Neo / BTLM): token embedding,
    [c.layers] blocks, final LN, vocabulary projection, sum loss. *)
let build_lm (c : config) : Graph.t =
  let b = B.create () in
  let ids = B.input ~label:"ids" b [ c.batch; c.seq_len ] ~dtype:Shape.I64 in
  let table = B.weight ~label:"tok_emb" b [ c.vocab; c.hidden ] ~dtype:c.dtype in
  let x = B.embedding b table ids in
  let x = layer_norm_last b x ~hidden:c.hidden ~dtype:c.dtype in
  let x = ref x in
  for _ = 1 to c.layers do
    x := block b !x c
  done;
  let x = layer_norm_last b !x ~hidden:c.hidden ~dtype:c.dtype in
  let w_lm = B.weight ~label:"lm_head" b [ c.hidden; c.vocab ] ~dtype:c.dtype in
  let logits = B.dense b x w_lm in
  let loss = B.sum_loss b logits in
  Autodiff.backward (B.finish b) ~loss

(** Vision-transformer training graph: conv patch embedding, transformer
    blocks, mean-pooled classifier head. *)
let build_vit ?(image = 224) ?(patch = 16) (c : config) : Graph.t =
  let b = B.create () in
  let x = B.input b [ c.batch; 3; image; image ] ~dtype:c.dtype in
  let w_patch = B.weight ~label:"patch" b [ c.hidden; 3; patch; patch ] ~dtype:c.dtype in
  let y = B.conv2d ~stride:patch b x w_patch in
  let n_patches = image / patch * (image / patch) in
  let y = B.reshape b ~dims:[| c.batch; c.hidden; n_patches |] y in
  let y = B.transpose b ~perm:[| 0; 2; 1 |] y in
  let y = ref y in
  for _ = 1 to c.layers do
    y := block b !y c
  done;
  let y = layer_norm_last b !y ~hidden:c.hidden ~dtype:c.dtype in
  let pooled = B.reduce_sum b ~axes:[ 1 ] y in
  let w_cls = B.weight ~label:"cls" b [ c.hidden; c.vocab ] ~dtype:c.dtype in
  let bias = B.weight b [ c.vocab ] ~dtype:c.dtype in
  let logits = B.linear b pooled w_cls bias in
  let loss = B.sum_loss b logits in
  Autodiff.backward (B.finish b) ~loss
